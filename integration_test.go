package hpbdc

// Cross-module integration tests: plan shapes that combine several engine
// features (unions of shuffles, caches above shuffles, checkpoints under
// failure, broadcast vs shuffle join equivalence).

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/workload"
)

func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	c := testCtx(Config{})
	var facts []Pair[string, int64]
	for i := 0; i < 1000; i++ {
		facts = append(facts, Pair[string, int64]{
			Key:   fmt.Sprintf("dim-%d", i%20),
			Value: int64(i),
		})
	}
	dims := make([]Pair[string, string], 0, 15)
	for i := 0; i < 15; i++ { // some dims missing: inner-join semantics
		dims = append(dims, Pair[string, string]{
			Key:   fmt.Sprintf("dim-%d", i),
			Value: fmt.Sprintf("name-%d", i),
		})
	}
	large := Parallelize(c, facts, 8)
	small := Parallelize(c, dims, 2)

	viaShuffle, err := Join(large, small, StringCodec, Int64Codec, StringCodec, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := BroadcastJoin(large, small, 1024)
	if err != nil {
		t.Fatal(err)
	}
	viaBroadcast, err := bj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	canon := func(rows []Pair[string, Joined[int64, string]]) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			out[i] = fmt.Sprintf("%s|%d|%s", r.Key, r.Value.Left, r.Value.Right)
		}
		sort.Strings(out)
		return out
	}
	a, b := canon(viaShuffle), canon(viaBroadcast)
	if len(a) != len(b) {
		t.Fatalf("join row counts differ: shuffle %d vs broadcast %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	if c.Engine().Reg.Counter("broadcast_bytes").Value() == 0 {
		t.Fatal("broadcast cost not charged")
	}
}

func TestUnionOfShuffledPlans(t *testing.T) {
	// Union two independently shuffled datasets, then aggregate again —
	// three shuffle boundaries in one DAG.
	c := testCtx(Config{})
	mk := func(seed uint64) *Dataset[Pair[string, int64]] {
		lines := Parallelize(c, workload.Text(40, 6, 30, 0.8, seed), 4)
		words := FlatMap(lines, strings.Fields)
		ones := MapValues(KeyBy(words, func(w string) string { return w }),
			func(string) int64 { return 1 })
		return ReduceByKey(ones, StringCodec, Int64Codec, 3,
			func(a, b int64) int64 { return a + b })
	}
	u := Union(mk(1), mk(2))
	final, err := ReduceByKey(u, StringCodec, Int64Codec, 4,
		func(a, b int64) int64 { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, p := range final {
		total += p.Value
	}
	if total != 2*40*6 {
		t.Fatalf("total word count %d, want %d", total, 2*40*6)
	}
}

func TestCacheAboveShuffleSurvivesNodeKill(t *testing.T) {
	// Cache the post-shuffle dataset; after a node dies, cached partitions
	// that survive avoid recomputation while lost ones recompute via
	// lineage.
	c := testCtx(Config{Racks: 2, NodesPerRack: 4, Seed: 4})
	lines := Parallelize(c, workload.Text(60, 8, 50, 0.9, 5), 8)
	words := FlatMap(lines, strings.Fields)
	counts := ReduceByKey(
		MapValues(KeyBy(words, func(w string) string { return w }), func(string) int64 { return 1 }),
		StringCodec, Int64Codec, 4, func(a, b int64) int64 { return a + b }).Cache()

	first, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Cluster().Kill(topology.NodeID(2))
	second, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sum := func(ps []Pair[string, int64]) int64 {
		var s int64
		for _, p := range ps {
			s += p.Value
		}
		return s
	}
	if sum(first) != sum(second) || sum(first) != 480 {
		t.Fatalf("cached result drifted after node kill: %d vs %d", sum(first), sum(second))
	}
}

func TestCheckpointSurvivesKillingMostExecutors(t *testing.T) {
	c := testCtx(Config{Racks: 2, NodesPerRack: 4, Seed: 6})
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 4)
	squares := Map(d, func(x int) int { return x * x })
	if err := squares.Checkpoint("/ckpt/squares", IntCodec); err != nil {
		t.Fatal(err)
	}
	// Kill half the cluster (checkpoint is 3-way replicated).
	for _, n := range []topology.NodeID{0, 2, 4, 6} {
		_ = c.Cluster().Kill(n)
	}
	got, err := squares.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	want := []int{1, 4, 9, 16, 25, 36, 49, 64, 81, 100}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v", got)
	}
}

func TestSortAfterJoinPipeline(t *testing.T) {
	// join → aggregate → global sort, end to end through the facade.
	c := testCtx(Config{})
	var orders []Pair[string, int64]
	for i := 0; i < 200; i++ {
		orders = append(orders, Pair[string, int64]{
			Key: fmt.Sprintf("cust-%02d", i%10), Value: int64(i),
		})
	}
	tiers := []Pair[string, string]{}
	for i := 0; i < 10; i++ {
		tier := "basic"
		if i%3 == 0 {
			tier = "gold"
		}
		tiers = append(tiers, Pair[string, string]{Key: fmt.Sprintf("cust-%02d", i), Value: tier})
	}
	joined := Join(Parallelize(c, orders, 4), Parallelize(c, tiers, 1),
		StringCodec, Int64Codec, StringCodec, 4)
	byTier := ReduceByKey(
		Map(joined, func(p Pair[string, Joined[int64, string]]) Pair[string, int64] {
			return Pair[string, int64]{Key: p.Value.Right, Value: p.Value.Left}
		}),
		StringCodec, Int64Codec, 2, func(a, b int64) int64 { return a + b })
	sorted, err := SortByKey(byTier, StringCodec, Int64Codec, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "basic" || rows[1].Key != "gold" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Value+rows[1].Value != 199*200/2 {
		t.Fatalf("totals = %v", rows)
	}
}
