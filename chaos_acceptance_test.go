package hpbdc

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/workload"
)

// chaosWordCount runs the canonical shuffled job under a chaos schedule
// and returns the resulting counts plus the context for metric checks.
func chaosWordCount(t *testing.T, sched chaos.Schedule, seed uint64, speculation bool) (map[string]int64, *Context) {
	t.Helper()
	ctx := New(Config{
		Racks:        2,
		NodesPerRack: 4,
		Seed:         seed,
		Speculation:  speculation,
		Chaos:        sched,
	})
	corpus := workload.Text(400, 10, 300, 0.9, 3)
	words := FlatMap(Parallelize(ctx, corpus, 16), strings.Fields)
	pairs := KeyBy(words, func(w string) string { return w })
	ones := MapValues(pairs, func(string) int64 { return 1 })
	counts := ReduceByKey(ones, StringCodec, Int64Codec, 8,
		func(a, b int64) int64 { return a + b })
	got, err := counts.Collect()
	if err != nil {
		t.Fatalf("job under chaos failed: %v", err)
	}
	out := map[string]int64{}
	for _, p := range got {
		out[p.Key] += p.Value
	}
	return out, ctx
}

// recoverySnapshot extracts the recovery-relevant counters: the metrics a
// deterministic replay must reproduce exactly.
func recoverySnapshot(ctx *Context) map[string]int64 {
	reg := ctx.Metrics()
	snap := map[string]int64{"chaos_applied": int64(ctx.Chaos().Applied())}
	for _, name := range []string{
		"tasks_launched", "task_retries", "task_backoffs", "backoff_ns_total",
		"quarantined_nodes", "quarantine_releases", "fetch_failures",
		"partition_blocked_fetches", "partition_heals", "stages_run",
		"shuffle_records_written",
	} {
		snap[name] = reg.Counter(name).Value()
	}
	return snap
}

// TestChaosDeterministicReplay runs the same (schedule, seed) twice with
// speculation off — the one timing-dependent mechanism — and requires
// identical results and identical recovery metrics. This is the paper's
// reproducibility claim for the fault scheduler: a chaos run is a pure
// function of (schedule, seed).
func TestChaosDeterministicReplay(t *testing.T) {
	sched, err := chaos.Parse(`
1 flaky 2 0.7
2 crash 5
3 partition 0-3|4-7
5 heal
6 revive 5
8 unflaky 2
`)
	if err != nil {
		t.Fatal(err)
	}
	got1, ctx1 := chaosWordCount(t, sched, 42, false)
	got2, ctx2 := chaosWordCount(t, sched, 42, false)

	if len(got1) != len(got2) {
		t.Fatalf("result cardinality diverged: %d vs %d", len(got1), len(got2))
	}
	for w, c := range got1 {
		if got2[w] != c {
			t.Fatalf("count[%q] diverged: %d vs %d", w, c, got2[w])
		}
	}
	s1, s2 := recoverySnapshot(ctx1), recoverySnapshot(ctx2)
	for name, v1 := range s1 {
		if v2 := s2[name]; v2 != v1 {
			t.Errorf("recovery metric %s diverged: %d vs %d", name, v1, v2)
		}
	}
	// The run must actually have exercised recovery, or the determinism
	// claim is vacuous.
	if s1["task_retries"] == 0 {
		t.Error("schedule injected no retries")
	}
	if s1["chaos_applied"] == 0 {
		t.Error("no chaos events applied")
	}
}

// TestChaosCrashPartitionRecovery drives the full gauntlet — a straggler
// node, a flaky node, a crashed node and a network partition — with
// speculation on, and requires the job to complete correctly having used
// every recovery mechanism: speculative wins, node quarantine, and a
// partition heal.
func TestChaosCrashPartitionRecovery(t *testing.T) {
	sched, err := chaos.Parse(`
1 slow 7 40ms
1 flaky 2 0.95
2 crash 5
3 partition 0-3|4-7
5 heal
6 revive 5
9 unflaky 2
12 unslow 7
`)
	if err != nil {
		t.Fatal(err)
	}

	got, ctx := chaosWordCount(t, sched, 7, true)

	// Correctness first: compare against a clean, chaos-free run.
	want, _ := chaosWordCount(t, nil, 7, false)
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d", len(got), len(want))
	}
	for w, c := range want {
		if got[w] != c {
			t.Fatalf("count[%q] = %d, want %d", w, got[w], c)
		}
	}

	reg := ctx.Metrics()
	if v := reg.Counter("speculative_wins").Value(); v < 1 {
		t.Errorf("speculative_wins = %d, want >= 1", v)
	}
	if v := reg.Counter("quarantined_nodes").Value(); v < 1 {
		t.Errorf("quarantined_nodes = %d, want >= 1", v)
	}
	if v := reg.Counter("partition_heals").Value(); v < 1 {
		t.Errorf("partition_heals = %d, want >= 1", v)
	}
}
