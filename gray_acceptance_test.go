package hpbdc

// Acceptance gate for gray-failure tolerance (ISSUE 10, E-GRAY): under
// asymmetric faults — a one-way link cut that inbound-isolates a node,
// and a non-transitive partial partition — a vanilla Raft cluster must
// visibly livelock or wedge (runaway terms, or unavailability while a
// connected majority exists), while the hardened cluster (PreVote +
// CheckQuorum + randomized election backoff) bounds both on the same
// (schedule, seed). The run must be deterministic. The E-GRAY oracle
// verdicts (defended bounds, control teeth, and the linearizable
// ha-register capture) are gated by TestEGRAYShapes in
// internal/experiments, which the gray CI job also runs under -race.
// Runs under -race in CI (scripts/verify.sh). Extra seeds:
// GRAY_SEEDS="7,42".

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/metrics"
)

// Defended bounds and control-teeth thresholds, matching the E-GRAY
// experiment's gates (internal/experiments/exp_gray.go).
const (
	grayNodes        = 5
	grayHorizon      = 300
	grayMaxLongest   = 80
	grayMaxTotal     = 120
	grayMaxTermDelta = 8
	grayCtlTermDelta = 4
	grayCtlUnavail   = 10
)

// grayGateSchedules are the gated asymmetric shapes (flap is
// informational in E-GRAY — vanilla Raft may ride out a given coin — so
// it is not part of the acceptance gate).
var grayGateSchedules = []struct{ name, text string }{
	{"one-way", "4 link-cut 0-3 4\n154 link-heal 0-3 4\n"},
	{"partial", "4 partial-partition 0|2-4\n154 heal\n"},
}

func graySeeds(t *testing.T) []uint64 {
	t.Helper()
	env := os.Getenv("GRAY_SEEDS")
	if env == "" {
		return []uint64{7, 42}
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("GRAY_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

// grayEpisode boots a cluster with the leader rigged to node 0, replays
// one gray schedule while probing with a commit-confirmed proposal per
// tick, and reports availability, term growth and CheckQuorum step-downs.
func grayEpisode(t *testing.T, hardened bool, text string, seed uint64) (check.AvailReport, uint64, uint64) {
	t.Helper()
	sched, err := chaos.Parse(text)
	if err != nil {
		t.Fatalf("schedule: %v", err)
	}
	var c *consensus.Cluster
	if hardened {
		c = consensus.NewHardenedCluster(grayNodes, seed)
	} else {
		c = consensus.NewCluster(grayNodes, seed)
	}
	if l := c.RunUntilLeader(400); l < 0 {
		t.Fatal("no boot leader")
	}
	if !c.TransferLeadership(0, 80) {
		t.Fatal("could not rig leader to node 0")
	}
	ctl := chaos.New(sched, seed, chaos.Targets{Nodes: grayNodes, Consensus: c}, metrics.NewRegistry())
	boot := c.MaxTerm()
	pts := make([]check.AvailPoint, 0, grayHorizon)
	for tick := int64(1); tick <= grayHorizon; tick++ {
		ctl.AdvanceTo(tick)
		c.Tick()
		_, ok := c.ProposeAndCountRounds([]byte{byte(tick), byte(tick >> 8)})
		pts = append(pts, check.AvailPoint{T: tick, OK: ok, MajorityConnected: c.HasConnectedMajority()})
	}
	return check.Availability(pts), c.MaxTerm() - boot, c.StepDowns()
}

// TestGrayAcceptance is the headline gate: for every (schedule, seed)
// the control run must show the gray failure's teeth and the defended
// run must bound unavailability and term growth — and be no less
// available than the control it defends against.
func TestGrayAcceptance(t *testing.T) {
	for _, gs := range grayGateSchedules {
		for _, seed := range graySeeds(t) {
			t.Run(fmt.Sprintf("%s/seed-%d", gs.name, seed), func(t *testing.T) {
				ctl, ctlTerm, _ := grayEpisode(t, false, gs.text, seed)
				def, defTerm, _ := grayEpisode(t, true, gs.text, seed)

				if ctlTerm < grayCtlTermDelta && ctl.Total < grayCtlUnavail {
					t.Errorf("control shows no livelock: term growth %d, unavailable %d (defense would gate a strawman)",
						ctlTerm, ctl.Total)
				}
				if d := check.DiffAvailability("defended", def, grayMaxLongest, grayMaxTotal); !d.OK {
					t.Errorf("defended availability out of bounds: %s", d)
				}
				if defTerm > grayMaxTermDelta {
					t.Errorf("defended term growth %d > bound %d", defTerm, grayMaxTermDelta)
				}
				if def.Total > ctl.Total {
					t.Errorf("defended unavailability %d exceeds control %d", def.Total, ctl.Total)
				}
			})
		}
	}
}

// TestGrayAcceptanceDeterministicReplay pins reproducibility: the same
// (schedule, seed, mode) run twice must produce identical availability
// reports, term growth and step-down counts.
func TestGrayAcceptanceDeterministicReplay(t *testing.T) {
	for _, gs := range grayGateSchedules {
		for _, hardened := range []bool{false, true} {
			rep1, term1, sd1 := grayEpisode(t, hardened, gs.text, 42)
			rep2, term2, sd2 := grayEpisode(t, hardened, gs.text, 42)
			if rep1 != rep2 || term1 != term2 || sd1 != sd2 {
				t.Errorf("%s hardened=%v diverged: (%v, %d, %d) vs (%v, %d, %d)",
					gs.name, hardened, rep1, term1, sd1, rep2, term2, sd2)
			}
		}
	}
}
