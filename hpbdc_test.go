package hpbdc

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

func testCtx(cfg Config) *Context {
	if cfg.Racks == 0 {
		cfg.Racks = 2
	}
	if cfg.NodesPerRack == 0 {
		cfg.NodesPerRack = 2
	}
	return New(cfg)
}

func TestParallelizeCollect(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize(c, []int{5, 3, 1, 4, 2}, 3)
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if fmt.Sprint(got) != "[1 2 3 4 5]" {
		t.Fatalf("got %v", got)
	}
}

func TestMapFilterCount(t *testing.T) {
	c := testCtx(Config{})
	nums := make([]int, 100)
	for i := range nums {
		nums[i] = i
	}
	d := Parallelize(c, nums, 4)
	squares := Map(d, func(x int) int { return x * x })
	big := squares.Filter(func(x int) bool { return x >= 2500 })
	n, err := big.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("count = %d, want 50", n)
	}
}

func TestReduce(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize(c, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 4)
	sum, err := d.Reduce(func(a, b int) int { return a + b })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 55 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestReduceEmptyFails(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize[int](c, nil, 2)
	if _, err := d.Reduce(func(a, b int) int { return a + b }); err == nil {
		t.Fatal("empty Reduce succeeded")
	}
}

func TestWordCountEndToEnd(t *testing.T) {
	c := testCtx(Config{})
	lines := Parallelize(c, []string{
		"the quick brown fox",
		"the lazy dog",
		"the fox",
	}, 2)
	words := FlatMap(lines, strings.Fields)
	pairs := KeyBy(words, func(w string) string { return w })
	counts, err := CountByKey(pairs, StringCodec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if counts["the"] != 3 || counts["fox"] != 2 || counts["dog"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestReduceByKeyAggregates(t *testing.T) {
	c := testCtx(Config{})
	var sales []Pair[string, int64]
	for i := 0; i < 300; i++ {
		sales = append(sales, Pair[string, int64]{
			Key:   fmt.Sprintf("store-%d", i%3),
			Value: int64(i),
		})
	}
	d := Parallelize(c, sales, 4)
	totals, err := ReduceByKey(d, StringCodec, Int64Codec, 3,
		func(a, b int64) int64 { return a + b }).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(totals) != 3 {
		t.Fatalf("totals = %v", totals)
	}
	var grand int64
	for _, p := range totals {
		grand += p.Value
	}
	if grand != 299*300/2 {
		t.Fatalf("grand total = %d", grand)
	}
}

func TestGroupByKey(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize(c, []Pair[string, int64]{
		{"a", 1}, {"b", 2}, {"a", 3}, {"a", 5}, {"b", 7},
	}, 3)
	groups, err := GroupByKey(d, StringCodec, Int64Codec, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]int64{}
	for _, g := range groups {
		vals := append([]int64(nil), g.Value...)
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		byKey[g.Key] = vals
	}
	if fmt.Sprint(byKey["a"]) != "[1 3 5]" || fmt.Sprint(byKey["b"]) != "[2 7]" {
		t.Fatalf("groups = %v", byKey)
	}
}

func TestJoin(t *testing.T) {
	c := testCtx(Config{})
	users := Parallelize(c, []Pair[string, string]{
		{"u1", "alice"}, {"u2", "bob"}, {"u3", "carol"},
	}, 2)
	orders := Parallelize(c, []Pair[string, int64]{
		{"u1", 100}, {"u1", 200}, {"u3", 50}, {"u9", 1},
	}, 2)
	joined, err := Join(users, orders, StringCodec, StringCodec, Int64Codec, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(joined) != 3 {
		t.Fatalf("joined %d rows, want 3 (u1 x2, u3 x1): %v", len(joined), joined)
	}
	total := int64(0)
	for _, j := range joined {
		if j.Key == "u2" || j.Key == "u9" {
			t.Fatalf("non-matching key joined: %v", j)
		}
		total += j.Value.Right
	}
	if total != 350 {
		t.Fatalf("joined order total = %d", total)
	}
}

func TestSortByKeyGlobalOrder(t *testing.T) {
	c := testCtx(Config{Seed: 3})
	recs := workload.TeraGen(2000, 7)
	pairs := make([]Pair[string, string], len(recs))
	for i, r := range recs {
		pairs[i] = Pair[string, string]{Key: string(r.Key), Value: string(r.Value)}
	}
	d := Parallelize(c, pairs, 8)
	sorted, err := SortByKey(d, StringCodec, StringCodec, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := sorted.CollectPartitions()
	if err != nil {
		t.Fatal(err)
	}
	var flat []string
	for _, part := range parts {
		for _, p := range part {
			flat = append(flat, p.Key)
		}
	}
	if len(flat) != 2000 {
		t.Fatalf("sorted %d records", len(flat))
	}
	if !sort.StringsAreSorted(flat) {
		t.Fatal("concatenated partitions not globally sorted")
	}
	// Range partitioning balance: no partition holds more than half.
	for i, part := range parts {
		if len(part) > 1000 {
			t.Fatalf("partition %d holds %d of 2000 records", i, len(part))
		}
	}
}

func TestTextFileRoundTrip(t *testing.T) {
	c := testCtx(Config{BlockSize: 1 << 12})
	var lines []string
	for i := 0; i < 500; i++ {
		lines = append(lines, fmt.Sprintf("line-%04d with some payload text", i))
	}
	d := Parallelize(c, lines, 4)
	if err := SaveAsTextFile(d, "/data/corpus"); err != nil {
		t.Fatal(err)
	}
	back := TextFile(c, "/data/corpus")
	if back.Partitions() != 4 {
		t.Fatalf("TextFile partitions = %d, want 4 (one per part file)", back.Partitions())
	}
	got, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(lines)
	if len(got) != len(lines) {
		t.Fatalf("read back %d lines, want %d", len(got), len(lines))
	}
	for i := range got {
		if got[i] != lines[i] {
			t.Fatalf("line %d = %q, want %q", i, got[i], lines[i])
		}
	}
	if c.Engine().Reg.Counter("input_bytes").Value() == 0 {
		t.Fatal("TextFile read no accounted bytes")
	}
}

func TestTextFileMissingPrefix(t *testing.T) {
	c := testCtx(Config{})
	d := TextFile(c, "/nothing/here")
	got, err := d.Collect()
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestUnionAndCache(t *testing.T) {
	c := testCtx(Config{})
	a := Parallelize(c, []int{1, 2}, 1)
	b := Parallelize(c, []int{3, 4}, 1)
	u := Union(a, b).Cache()
	n1, err := u.Count()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := u.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 4 || n2 != 4 {
		t.Fatalf("counts %d, %d", n1, n2)
	}
}

func TestCheckpointThenCollect(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize(c, []int{10, 20, 30}, 2)
	if err := d.Checkpoint("/ckpt/ints", IntCodec); err != nil {
		t.Fatal(err)
	}
	got, err := d.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if fmt.Sprint(got) != "[10 20 30]" {
		t.Fatalf("got %v", got)
	}
}

func TestFaultInjectionStillCorrect(t *testing.T) {
	c := testCtx(Config{TaskFailProb: 0.25, Seed: 11})
	lines := Parallelize(c, workload.Text(50, 8, 40, 0.9, 2), 6)
	words := FlatMap(lines, strings.Fields)
	counts, err := CountByKey(KeyBy(words, func(w string) string { return w }), StringCodec, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, n := range counts {
		total += n
	}
	if total != 400 {
		t.Fatalf("total words %d, want 400", total)
	}
}

func TestTransportAffectsNetTime(t *testing.T) {
	run := func(transport string) int64 {
		c := testCtx(Config{Transport: transport, Seed: 5})
		d := Parallelize(c, workload.Text(100, 10, 50, 0.9, 3), 8)
		words := FlatMap(d, strings.Fields)
		_, err := CountByKey(KeyBy(words, func(w string) string { return w }), StringCodec, 8)
		if err != nil {
			t.Fatal(err)
		}
		return int64(c.Engine().NetTime())
	}
	tcp := run("tcp")
	rdma := run("rdma")
	if rdma >= tcp {
		t.Fatalf("rdma net time %d not below tcp %d", rdma, tcp)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown transport accepted")
		}
	}()
	New(Config{Transport: "carrier-pigeon"})
}

func TestKeysValuesProjections(t *testing.T) {
	c := testCtx(Config{})
	d := Parallelize(c, []Pair[string, int64]{{"a", 1}, {"b", 2}}, 1)
	ks, err := Keys(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	vs, err := Values(d).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(ks)
	if fmt.Sprint(ks) != "[a b]" || len(vs) != 2 {
		t.Fatalf("keys %v values %v", ks, vs)
	}
}
