#!/usr/bin/env sh
# Per-package statement coverage with failing floors on the packages the
# correctness story leans on. internal/check is the checker of record —
# an untested oracle is worse than no oracle — so it carries the highest
# floor. Run from anywhere; FULL=1 additionally prints coverage for
# every package in the module (floors still apply).
set -eu

cd "$(dirname "$0")/.."

# package:floor pairs. Floors sit safely below current coverage (check
# 98%, kvstore 91%, stream 91%, query 81%, table 86%) so routine changes
# pass, while a test deletion or a big untested addition fails the gate.
floors="
./internal/check:90
./internal/kvstore:85
./internal/stream:85
./internal/query:75
./internal/table:80
"

fail=0
echo "== coverage floors =="
for entry in $floors; do
    pkg=${entry%:*}
    floor=${entry#*:}
    line=$(go test -count=1 -cover "$pkg" | tail -n 1)
    pct=$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
    if [ -z "$pct" ]; then
        echo "FAIL  $pkg: no coverage reported ($line)" >&2
        fail=1
        continue
    fi
    # Integer compare on the whole-percent part keeps this POSIX-sh clean.
    whole=${pct%.*}
    if [ "$whole" -lt "$floor" ]; then
        echo "FAIL  $pkg: ${pct}% < floor ${floor}%" >&2
        fail=1
    else
        echo "ok    $pkg: ${pct}% (floor ${floor}%)"
    fi
done

if [ "${FULL:-0}" = "1" ]; then
    echo "== full per-package coverage (FULL=1) =="
    go test -count=1 -cover ./... | grep -v '^---' || true
fi

if [ "$fail" -ne 0 ]; then
    echo "coverage: FAILED" >&2
    exit 1
fi
echo "coverage: OK"
