#!/usr/bin/env sh
# Tier-1 verification gate (see ROADMAP.md), plus the hygiene and race
# checks added with the observability layer. Run from the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrent instrumentation) =="
go test -race ./internal/metrics/... ./internal/trace/... \
    ./internal/obs/... ./internal/core/... ./internal/shuffle/... \
    ./internal/dfs/... ./internal/sched/... ./internal/netsim/... \
    ./internal/cluster/... ./internal/chaos/... ./internal/stream/... \
    ./internal/check/... ./internal/kvstore/... ./internal/ha/... \
    ./internal/consensus/... ./internal/perf/... ./internal/admission/... \
    ./internal/query/... ./internal/table/...

echo "== overload acceptance (race) =="
go test -race -run 'TestOverloadAcceptance' . -count=1

echo "== txn acceptance (race) =="
go test -race -run 'TestTxnAcceptance' . -count=1

echo "== gray-failure acceptance (race) =="
# Control cluster must livelock under asymmetric faults, hardened
# cluster must bound unavailability and terms, deterministically; the
# E-GRAY oracle verdicts (incl. ha-register linearizability) ride along.
go test -race -run 'TestGray' . -count=1
go test -race -run 'TestEGRAYShapes' ./internal/experiments/ -count=1

sh scripts/coverage.sh

if [ "${FUZZ:-0}" = "1" ]; then
    echo "== fuzz smoke (FUZZ=1) =="
    # ~10s of wall clock spread over the decode/round-trip targets; the
    # checked-in corpora under testdata/fuzz run on every plain `go test`.
    go test -fuzz=FuzzReaderDecode -fuzztime=3s -run '^$' ./internal/serde
    go test -fuzz=FuzzIntColumnDecode -fuzztime=2s -run '^$' ./internal/serde
    go test -fuzz=FuzzRoundTrip -fuzztime=3s -run '^$' ./internal/compress
    go test -fuzz=FuzzDecompress -fuzztime=2s -run '^$' ./internal/compress
    go test -fuzz=FuzzPlanEquivalence -fuzztime=5s -run '^$' ./internal/query
    go test -fuzz=FuzzParseSchedule -fuzztime=3s -run '^$' ./internal/chaos
fi

if [ "${CHAOS:-0}" = "1" ]; then
    echo "== chaos sweep (CHAOS=1) =="
    sh scripts/chaos.sh
fi

echo "verify: OK"
