#!/usr/bin/env sh
# Perf-trajectory driver: regenerates or checks the committed
# BENCH_<family>.json baselines (internal/perf). Run from the repo root.
#
#   scripts/bench.sh                regenerate the quick baselines in-place
#   scripts/bench.sh --diff         run fresh and diff against the committed
#                                   baselines; exit 1 on any shape break or
#                                   regression past the noise threshold
#   scripts/bench.sh --selftest     prove the gate can fail: inject a
#                                   synthetic 70% throughput regression and
#                                   require the diff to reject it
#
# BENCH_THRESHOLD overrides the relative noise threshold (default 0.5);
# BENCH_SEED overrides the workload seed (default 42). Baselines are
# quick-mode: the differ pins mode via Params, so quick runs only ever
# compare against quick baselines.
set -eu

cd "$(dirname "$0")/.."

mode="${1:-generate}"
threshold="${BENCH_THRESHOLD:-0.5}"
seed="${BENCH_SEED:-42}"

case "$mode" in
generate)
    echo "== bench: regenerating quick baselines =="
    go run ./cmd/hpbdc-bench -bench all -bench-quick \
        -bench-seed "$seed" -bench-out .
    echo "baselines written; review and commit BENCH_*.json"
    ;;
--diff)
    echo "== bench: diffing against committed baselines (threshold ${threshold}) =="
    go run ./cmd/hpbdc-bench -bench all -bench-quick \
        -bench-seed "$seed" -bench-threshold "$threshold" -bench-diff .
    ;;
--selftest)
    echo "== bench: gate selftest (injected 70% throughput regression must fail) =="
    if go run ./cmd/hpbdc-bench -bench all -bench-quick \
        -bench-seed "$seed" -bench-threshold "$threshold" \
        -bench-diff . -bench-inject 0.3 >/dev/null 2>&1; then
        echo "selftest FAILED: injected regression passed the gate" >&2
        exit 1
    fi
    echo "selftest ok: injected regression was rejected"
    ;;
*)
    echo "usage: scripts/bench.sh [--diff|--selftest]" >&2
    exit 2
    ;;
esac
