#!/usr/bin/env sh
# Multi-seed chaos smoke sweep: run the TeraSort binary under each fault
# preset with several seeds, all with the race detector enabled, and fail
# on any incorrect or aborted run. This is the long-form confidence check
# behind `CHAOS=1 scripts/verify.sh`; run directly for a quick sweep:
#
#   scripts/chaos.sh               # default presets x seeds
#   SEEDS="1 2 3 4" scripts/chaos.sh
#   PRESETS="mixed" scripts/chaos.sh
set -eu

cd "$(dirname "$0")/.."

SEEDS=${SEEDS:-"1 7 42"}
PRESETS=${PRESETS:-"crash partition straggler flaky mixed"}
RECORDS=${RECORDS:-20000}

echo "== chaos acceptance tests (race, seeds: $SEEDS) =="
# Includes the checked sweep (TestChaosCheckedSweep: every preset x seed
# diffed against the sequential reference oracle), the KV
# linearizability sweep and the stale-read checker self-test.
CHAOS_SEEDS="$SEEDS" go test -race -run 'TestChaos' . -count=1

echo "== control-plane HA sweep (race, seeds: $SEEDS) =="
# Namenode leader crash + coordinator crash mid-job under the "ha"
# preset: the job must finish, record a failover and resume journaled
# stages (TestHAAcceptance), deterministically (TestHADeterministicReplay).
HA_SEEDS="$SEEDS" go test -race -run 'TestHA' . -count=1

echo "== stream exactly-once recovery sweep (race, seeds: $SEEDS) =="
STREAM_SEEDS="$SEEDS" go test -race -run 'TestStream' . -count=1
go test -race -run 'TestPipelineCloseRace|TestSessionizerCloseRace|TestRunner' \
    ./internal/stream/ -count=1

echo "== overload admission sweep (race, seeds: $SEEDS) =="
# The defended stack must hold goodput flat and histories linearizable
# at 2x saturation for every seed; the control run must collapse.
OVL_SEEDS=$(echo "$SEEDS" | tr ' ' ',') go test -race -run 'TestOverload' . -count=1

echo "== sharded txn gauntlet (race, seeds: $SEEDS) =="
# Cross-range 2PC under rotating coordinator crash points, partitions
# spanning the commit point and splits racing live transactions: every
# history strictly serializable, zero dangling locks/records, and the
# dirty-read injection caught (TestTxnAcceptance*).
TXN_SEEDS=$(echo "$SEEDS" | tr ' ' ',') go test -race -run 'TestTxnAcceptance' . -count=1

echo "== gray-failure sweep (race, seeds: $SEEDS) =="
# Asymmetric faults (one-way cuts, non-transitive partial partitions):
# the vanilla control must livelock, the hardened cluster must bound
# unavailability and term growth on the same (schedule, seed), and the
# replay must be deterministic (TestGrayAcceptance*).
GRAY_SEEDS=$(echo "$SEEDS" | tr ' ' ',') go test -race -run 'TestGray' . -count=1

echo "== building race-enabled terasort =="
tmpbin=$(mktemp -d)
trap 'rm -rf "$tmpbin"' EXIT
go build -race -o "$tmpbin/hpbdc-terasort" ./cmd/hpbdc-terasort

for preset in $PRESETS; do
    for seed in $SEEDS; do
        echo "== chaos sweep: preset=$preset seed=$seed =="
        "$tmpbin/hpbdc-terasort" -records "$RECORDS" -seed "$seed" \
            -chaos "$preset" -speculation
    done
done

echo "== oracle-checked experiment pass (EFT, E-SFT, E-HA, E-OVL, E-TXN, E-GRAY, E-SQL, E5) =="
# Every chaos run above re-ran the job; this pass ends the sweep with the
# experiment suite's own verdicts: batch oracle diffs (EFT), stream
# window oracles (E-SFT), control-plane failover oracles (E-HA),
# overload-with-shedding linearizability (E-OVL), sharded-txn strict
# serializability (E-TXN), gray-failure availability bounds and teeth
# (E-GRAY), relational differential checks incl. a crash-preset replay
# (E-SQL) and plain quorum linearizability (E5). -check exits nonzero on
# any mismatch.
go run ./cmd/hpbdc-bench -small -run EFT,E-SFT,E-HA,E-OVL,E-TXN,E-GRAY,E-SQL,E5 -check

echo "== linearizability checker self-test (must fail under -stale) =="
if go run ./cmd/hpbdc-kvbench -ops 2000 -keys 200 -check -stale >/dev/null 2>&1; then
    echo "chaos sweep: stale-read injection was NOT caught by the checker" >&2
    exit 1
fi
echo "stale-read injection correctly rejected"

echo "chaos sweep: OK"
