package hpbdc

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/workload"
)

// haSeeds returns the seed sweep for the HA acceptance gauntlet,
// overridable via HA_SEEDS (space-separated integers).
func haSeeds(t *testing.T) []uint64 {
	env := os.Getenv("HA_SEEDS")
	if env == "" {
		return []uint64{1, 7, 42}
	}
	var seeds []uint64
	for _, f := range strings.Fields(env) {
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			t.Fatalf("HA_SEEDS: bad seed %q: %v", f, err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// haTwoStageJob runs the E-HA job shape — wordcount, then regroup by
// count — so the coordinator journals two shuffle stages before the
// result stage. Returns the collected groups and the plan's sequential
// reference output.
func haTwoStageJob(t *testing.T, ctx *Context) (got, want []Pair[int64, []string]) {
	t.Helper()
	corpus := workload.Text(400, 10, 300, 0.9, 3)
	words := FlatMap(Parallelize(ctx, corpus, 16), strings.Fields)
	ones := MapValues(KeyBy(words, func(w string) string { return w }),
		func(string) int64 { return 1 })
	counts := ReduceByKey(ones, StringCodec, Int64Codec, 8,
		func(a, b int64) int64 { return a + b })
	byCount := GroupByKey(
		MapValues(
			KeyBy(counts, func(p Pair[string, int64]) int64 { return p.Value }),
			func(p Pair[string, int64]) string { return p.Key }),
		Int64Codec, StringCodec, 4)
	got, err := byCount.Collect()
	if err != nil {
		t.Fatalf("job under ha chaos failed: %v", err)
	}
	return got, ReferenceCollect(byCount)
}

// encodeCountGroup canonicalizes one (count, words) group for the
// multiset oracle: GroupByKey may deliver words in any order.
func encodeCountGroup(p Pair[int64, []string]) string {
	words := append([]string(nil), p.Value...)
	sort.Strings(words)
	return fmt.Sprintf("%d=%s", p.Key, strings.Join(words, ","))
}

// TestHAAcceptance is the control-plane HA gauntlet: under the "ha"
// chaos preset — namenode leader crash, coordinator crash mid-job,
// member revival — the job must finish with output identical to the
// sequential reference, a leader failover must have been recorded, and
// the coordinator must have resumed at least one journaled stage
// instead of recomputing it.
func TestHAAcceptance(t *testing.T) {
	sched, err := chaos.Preset("ha", 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range haSeeds(t) {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			ctx := New(Config{
				Racks:        2,
				NodesPerRack: 4,
				Seed:         seed,
				HA:           true,
				Chaos:        sched,
			})
			got, want := haTwoStageJob(t, ctx)
			if d := check.DiffMultiset("ha-acceptance", got, want, encodeCountGroup); !d.OK {
				t.Errorf("post-failover output diverged from reference: %s", d)
			}
			reg := ctx.Metrics()
			if v := reg.Counter("ha_failovers").Value(); v < 1 {
				t.Errorf("ha_failovers = %d, want >= 1 (leader crash went unnoticed)", v)
			}
			if v := reg.Counter("ha_member_restarts").Value(); v < 1 {
				t.Errorf("ha_member_restarts = %d, want >= 1 (nn-revive never fired)", v)
			}
			if v := reg.Counter("coord_crashes").Value(); v < 1 {
				t.Errorf("coord_crashes = %d, want >= 1", v)
			}
			if v := reg.Counter("coord_stages_resumed").Value(); v < 1 {
				t.Errorf("coord_stages_resumed = %d, want >= 1 (journal salvaged nothing)", v)
			}
			if v := reg.Counter("journal_append_failures").Value(); v != 0 {
				t.Errorf("journal_append_failures = %d, want 0", v)
			}
		})
	}
}

// TestHADeterministicReplay pins the reproducibility claim to the HA
// path: the same (schedule, seed) run twice must produce identical
// output and identical failover/recovery metrics.
func TestHADeterministicReplay(t *testing.T) {
	sched, err := chaos.Preset("ha", 8)
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]Pair[int64, []string], map[string]int64) {
		ctx := New(Config{Racks: 2, NodesPerRack: 4, Seed: 42, HA: true, Chaos: sched})
		got, _ := haTwoStageJob(t, ctx)
		reg := ctx.Metrics()
		snap := map[string]int64{}
		for _, name := range []string{
			"ha_failovers", "ha_member_crashes", "ha_member_restarts",
			"ha_proposals", "coord_crashes", "coord_stages_resumed",
			"coord_stages_restarted", "stages_run",
		} {
			snap[name] = reg.Counter(name).Value()
		}
		return got, snap
	}
	got1, snap1 := run()
	got2, snap2 := run()
	if d := check.DiffMultiset("ha-replay", got1, got2, encodeCountGroup); !d.OK {
		t.Errorf("output diverged across identical runs: %s", d)
	}
	for name, v1 := range snap1 {
		if v2 := snap2[name]; v2 != v1 {
			t.Errorf("metric %s diverged: %d vs %d", name, v1, v2)
		}
	}
}
