package hpbdc

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/workload"
)

func TestDistinct(t *testing.T) {
	c := testCtx(Config{})
	var data []int
	for i := 0; i < 300; i++ {
		data = append(data, i%40)
	}
	d := Parallelize(c, data, 6)
	got, err := Distinct(d, IntCodec, 4).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(got)
	if len(got) != 40 {
		t.Fatalf("distinct = %d values, want 40", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestSampleFractionAndDeterminism(t *testing.T) {
	c := testCtx(Config{})
	data := make([]int, 20000)
	for i := range data {
		data[i] = i
	}
	d := Parallelize(c, data, 8)
	s1, err := d.Sample(0.3, 7).Collect()
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(s1)) / 20000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("sample fraction %.3f, want ~0.3", frac)
	}
	s2, err := d.Sample(0.3, 7).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s2) {
		t.Fatal("same seed produced different samples")
	}
	full, err := d.Sample(1.0, 7).Count()
	if err != nil || full != 20000 {
		t.Fatalf("frac>=1 should be identity: %d", full)
	}
}

func TestRepartitionEvensSkew(t *testing.T) {
	c := testCtx(Config{})
	// All data in one of 8 partitions.
	d := SourceFunc(c, 8, func(part int) []int64 {
		if part != 0 {
			return nil
		}
		out := make([]int64, 1000)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	})
	re := Repartition(d, Int64Codec, 8)
	parts, err := re.CollectPartitions()
	if err != nil {
		t.Fatal(err)
	}
	var total, max int
	for _, p := range parts {
		total += len(p)
		if len(p) > max {
			max = len(p)
		}
	}
	if total != 1000 {
		t.Fatalf("repartition lost rows: %d", total)
	}
	if max > 300 {
		t.Fatalf("repartition still skewed: max partition %d of 1000", max)
	}
}

func TestChaosRandomNodeKillsExactResults(t *testing.T) {
	// A chaos goroutine kills and revives random executors while jobs
	// run; every job must still return exactly correct results or a clean
	// abort (never a wrong answer).
	c := testCtx(Config{Racks: 2, NodesPerRack: 4, Seed: 99})
	corpus := workload.Text(200, 8, 100, 0.9, 1)
	want := map[string]int64{}
	for _, line := range corpus {
		for _, w := range strings.Fields(line) {
			want[w]++
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		gen := rng.New(123)
		for {
			select {
			case <-stop:
				// Revive everyone on exit.
				for i := 0; i < 8; i++ {
					_ = c.Cluster().Revive(topology.NodeID(i))
				}
				return
			default:
			}
			victim := topology.NodeID(gen.Intn(8))
			_ = c.Cluster().Kill(victim)
			time.Sleep(time.Millisecond)
			_ = c.Cluster().Revive(victim)
			time.Sleep(time.Millisecond)
		}
	}()

	aborted, succeeded := 0, 0
	for run := 0; run < 10; run++ {
		lines := Parallelize(c, corpus, 8)
		words := FlatMap(lines, strings.Fields)
		counts, err := CountByKey(KeyBy(words, func(w string) string { return w }), StringCodec, 4)
		if err != nil {
			aborted++ // acceptable: too much carnage, but never wrong
			continue
		}
		succeeded++
		if len(counts) != len(want) {
			t.Fatalf("run %d: %d words, want %d", run, len(counts), len(want))
		}
		for w, n := range want {
			if counts[w] != n {
				t.Fatalf("run %d: count[%q] = %d, want %d", run, w, counts[w], n)
			}
		}
	}
	close(stop)
	wg.Wait()
	if succeeded == 0 {
		t.Fatalf("no run succeeded under chaos (%d aborted)", aborted)
	}
}

func TestRepartitionExactUnderFaultInjection(t *testing.T) {
	// Repartition's spread key must be deterministic: with injected task
	// failures forcing map-task recomputation, the result must still be
	// the exact multiset (a global-counter key would duplicate/lose rows).
	c := testCtx(Config{TaskFailProb: 0.3, Seed: 77})
	var data []int64
	for i := 0; i < 400; i++ {
		data = append(data, int64(i))
	}
	d := Parallelize(c, data, 6)
	got, err := Repartition(d, Int64Codec, 5).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("repartition under faults returned %d rows, want 400", len(got))
	}
	seen := map[int64]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate row %d after recovery", v)
		}
		seen[v] = true
	}
}

func TestDistinctEmpty(t *testing.T) {
	c := testCtx(Config{})
	got, err := Distinct(Parallelize[int](c, nil, 2), IntCodec, 2).Collect()
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestRepartitionRoundTripsValues(t *testing.T) {
	c := testCtx(Config{})
	var data []string
	for i := 0; i < 500; i++ {
		data = append(data, fmt.Sprintf("value-%03d", i))
	}
	d := Parallelize(c, data, 3)
	got, err := Repartition(d, StringCodec, 7).Collect()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	sort.Strings(data)
	if len(got) != len(data) {
		t.Fatalf("lost rows: %d vs %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("row %d = %q, want %q", i, got[i], data[i])
		}
	}
}
