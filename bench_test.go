package hpbdc_test

// One benchmark per experiment in the reconstructed evaluation suite
// (DESIGN.md, E1..E12). Each iteration runs the experiment end to end at
// CI scale and reports its headline metric; `go run ./cmd/hpbdc-bench`
// prints the full tables at paper scale.

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// runExperiment drives one experiment per b.N iteration and sanity-checks
// that it produced a table.
func runExperiment(b *testing.B, fn func(experiments.Scale) *experiments.Table) *experiments.Table {
	b.Helper()
	var last *experiments.Table
	for i := 0; i < b.N; i++ {
		last = fn(experiments.Small)
		if len(last.Rows) == 0 {
			b.Fatalf("%s produced no rows", last.ID)
		}
	}
	return last
}

// cell parses a numeric table cell like "123", "1.50x" or "95%".
func cell(t *experiments.Table, row, col int) float64 {
	s := t.Rows[row][col]
	s = strings.TrimSuffix(strings.TrimSuffix(s, "x"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

func BenchmarkE1Transport(b *testing.B) {
	t := runExperiment(b, experiments.E1Transport)
	// Shape check: TCP/RDMA latency ratio at the smallest message >= 5x.
	if r := cell(t, 0, len(t.Cols)-1); r < 5 {
		b.Fatalf("E1 small-message tcp/rdma ratio = %v, want >= 5", r)
	}
	b.ReportMetric(cell(t, 0, len(t.Cols)-1), "tcp/rdma-64B")
}

func BenchmarkE2Shuffle(b *testing.B) {
	t := runExperiment(b, experiments.E2Shuffle)
	b.ReportMetric(cell(t, 0, 5), "hash-none-MB/s")
	b.ReportMetric(cell(t, 2, 5), "sort-none-MB/s")
}

func BenchmarkE3TeraSort(b *testing.B) {
	t := runExperiment(b, experiments.E3TeraSort)
	b.ReportMetric(cell(t, 0, 4), "rec/s-2nodes")
	b.ReportMetric(cell(t, len(t.Rows)-1, 4), "rec/s-16nodes")
}

func BenchmarkE4WordCount(b *testing.B) {
	t := runExperiment(b, experiments.E4WordCount)
	// Dataflow must not lose to the materializing baseline (at CI scale
	// the gap is small; the full-scale table shows the real margin).
	if sp := cell(t, 1, 4); sp > 1.1 {
		b.Fatalf("E4 dataflow/mapreduce ratio = %v, want <= 1.1", sp)
	}
	b.ReportMetric(cell(t, 1, 4), "dataflow/mapreduce")
}

func BenchmarkE5KVQuorum(b *testing.B) {
	t := runExperiment(b, experiments.E5KVQuorum)
	b.ReportMetric(cell(t, 0, 3), "R1W1-ops/s")
	b.ReportMetric(cell(t, 4, 3), "R2W2-ops/s")
}

func BenchmarkE6Scheduler(b *testing.B) {
	t := runExperiment(b, experiments.E6Scheduler)
	// Delay scheduling must achieve the best locality.
	delayLoc := cell(t, 3, 4)
	fairLoc := cell(t, 1, 4)
	if delayLoc <= fairLoc {
		b.Fatalf("E6 delay locality %v%% <= fair %v%%", delayLoc, fairLoc)
	}
	b.ReportMetric(delayLoc, "delay-locality-%")
}

func BenchmarkE7Stream(b *testing.B) {
	t := runExperiment(b, experiments.E7Stream)
	b.ReportMetric(float64(len(t.Rows)), "load-points")
}

func BenchmarkE8PageRank(b *testing.B) {
	t := runExperiment(b, experiments.E8PageRank)
	// Modeled speedup must rise with workers (even if sublinear), and
	// hashed partitioning must beat contiguous at 8 workers.
	if s8, s1 := cell(t, 3, 3), cell(t, 0, 3); s8 <= s1 {
		b.Fatalf("E8 speedup did not grow: %v vs %v", s8, s1)
	}
	if hashed, contig := cell(t, 7, 3), cell(t, 3, 3); hashed <= contig {
		b.Fatalf("E8 hashed speedup %v <= contiguous %v", hashed, contig)
	}
	b.ReportMetric(cell(t, 7, 3), "speedup-8w-hashed")
}

func BenchmarkE9Recovery(b *testing.B) {
	t := runExperiment(b, experiments.E9Recovery)
	// Checkpoint restore must rerun fewer tasks than lineage recovery.
	if ck, lin := cell(t, 1, 3), cell(t, 0, 3); ck >= lin {
		b.Fatalf("E9 checkpoint reran %v tasks vs lineage %v", ck, lin)
	}
	b.ReportMetric(cell(t, 0, 3), "lineage-tasks-rerun")
}

func BenchmarkE10ParamServer(b *testing.B) {
	t := runExperiment(b, experiments.E10ParamServer)
	b.ReportMetric(cell(t, 0, 4), "bsp-accuracy")
	b.ReportMetric(cell(t, 1, 4), "asp-accuracy")
}

func BenchmarkE11Autoscale(b *testing.B) {
	t := runExperiment(b, experiments.E11Autoscale)
	// Autoscaler cost must undercut peak-static.
	if auto, static := cell(t, 2, 1), cell(t, 0, 1); auto >= static {
		b.Fatalf("E11 autoscaler cost %v >= peak-static %v", auto, static)
	}
	b.ReportMetric(cell(t, 2, 1), "autoscaler-node-steps")
}

func BenchmarkE12Raft(b *testing.B) {
	t := runExperiment(b, experiments.E12Raft)
	b.ReportMetric(cell(t, 0, 4), "3node-proposals/s")
}

func BenchmarkESFTStream(b *testing.B) {
	t := runExperiment(b, experiments.ESFTStream)
	// The exactly-once claim holds in every sweep cell.
	for i := range t.Rows {
		if t.Rows[i][len(t.Cols)-1] != "yes" {
			b.Fatalf("E-SFT row %d: faulted output diverged from clean run", i)
		}
	}
	b.ReportMetric(cell(t, 4, 6), "replayed-ckpt-1crash")
}
