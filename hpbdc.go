// Package hpbdc is a high-performance big data and cloud computing
// framework: a typed, Spark-style dataset API over a lineage-based DAG
// engine, backed by a simulated datacenter (topology, RDMA/TCP transport
// cost models, an HDFS-like DFS, slot-based executors) plus the companion
// systems the domain leans on — a quorum-replicated KV store, Raft
// metadata consensus, SWIM membership, an event-time streaming engine, a
// Pregel-style graph engine, a parameter server and a cloud autoscaler.
//
// Quick start:
//
//	ctx := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4})
//	lines := hpbdc.Parallelize(ctx, []string{"a b", "b c"}, 2)
//	words := hpbdc.FlatMap(lines, func(l string) []string { return strings.Fields(l) })
//	pairs := hpbdc.KeyBy(words, func(w string) string { return w })
//	ones := hpbdc.MapValues(pairs, func(string) int64 { return 1 })
//	counts := hpbdc.ReduceByKey(ones, hpbdc.StringCodec, hpbdc.Int64Codec, 4,
//		func(a, b int64) int64 { return a + b })
//	result, err := counts.Collect()
//
// Everything runs in-process: tasks are real goroutines over real bytes;
// the network, failures and placement are simulated deterministically.
// See DESIGN.md for the architecture and EXPERIMENTS.md for the
// reproduced evaluation suite.
package hpbdc

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/dfs"
	"repro/internal/ha"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Config describes the simulated datacenter and engine settings.
type Config struct {
	// Racks and NodesPerRack define the cluster shape. Defaults: 2 x 4.
	Racks, NodesPerRack int
	// Oversub is the core oversubscription factor (>= 1). Default 2.
	Oversub float64
	// Transport selects the network cost model: "rdma" (default), "tcp"
	// or "ipoib".
	Transport string
	// SlotsPerNode is per-node task concurrency. Default 2.
	SlotsPerNode int
	// BlockSize is the DFS split size. Default 4 MiB.
	BlockSize int64
	// Replication is the DFS replica count. Default 3.
	Replication int
	// ShuffleCodec names the shuffle compression codec: "none" (default),
	// "rle", "lz", "flate".
	ShuffleCodec string
	// ForceSortShuffle routes all shuffles through the sort-based writer.
	ForceSortShuffle bool
	// TaskFailProb injects transient task failures (fault experiments).
	TaskFailProb float64
	// Seed drives all randomness (placement, failures, chaos wildcards,
	// retry jitter). Default 1.
	Seed uint64
	// Speculation enables backup launches for straggler tasks; the first
	// copy to finish wins. See core.Config.Speculation.
	Speculation bool
	// JobDeadline bounds each job; past it the job aborts cleanly with
	// core.ErrDeadlineExceeded and a partial report can still be cut.
	JobDeadline time.Duration
	// Chaos, when non-nil, replays the fault schedule against the whole
	// context (executors, DFS, network fabric, per-node task faults) as
	// the engine advances virtual time. Runs are reproducible from
	// (Chaos, Seed). Build schedules with chaos.Parse, chaos.Preset or
	// chaos.Load.
	Chaos chaos.Schedule
	// EnableTracing attaches a span recorder to the engine so every task
	// and stage is recorded. Required for Context.Report and Chrome-trace
	// export; off by default because span recording allocates per task.
	EnableTracing bool
	// HA replicates the control plane: the DFS namenode runs as a Raft
	// state machine on a 3-member group (metadata survives a leader
	// crash), and the job coordinator journals stage completions into the
	// same group so a coordinator crash resumes from the last completed
	// stage. Chaos schedules gain nn-crash/nn-revive/coord-crash targets;
	// the datanode/block layer is unchanged.
	HA bool
}

// Context owns one simulated cluster and its engine. Create with New.
type Context struct {
	top     *topology.Topology
	fabric  *netsim.Fabric
	cluster *cluster.Cluster
	fs      *dfs.DFS
	engine  *core.Engine
	tracer  *trace.Recorder
	chaos   *chaos.Controller
	group   *ha.Group
	seed    uint64
}

// jobMachine names the coordinator-journal state machine inside the
// replicated control-plane group ("nn" hosts the namenode).
const jobMachine = "job"

// TransportModel resolves a transport name to its cost model.
func TransportModel(name string) (netsim.Model, error) {
	switch name {
	case "rdma", "":
		return netsim.RDMA40G, nil
	case "tcp":
		return netsim.TCP40G, nil
	case "ipoib":
		return netsim.IPoIB40G, nil
	default:
		return netsim.Model{}, fmt.Errorf("hpbdc: unknown transport %q", name)
	}
}

// New builds a context. Invalid configuration panics: a bad cluster shape
// is a programming error, not a runtime condition.
func New(cfg Config) *Context {
	if cfg.Racks <= 0 {
		cfg.Racks = 2
	}
	if cfg.NodesPerRack <= 0 {
		cfg.NodesPerRack = 4
	}
	if cfg.Oversub < 1 {
		cfg.Oversub = 2
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 4 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	model, err := TransportModel(cfg.Transport)
	if err != nil {
		panic(err)
	}
	codec, err := compress.ByName(cfg.ShuffleCodec)
	if err != nil {
		panic(err)
	}
	top := topology.TwoTier(cfg.Racks, cfg.NodesPerRack, cfg.Oversub)
	fabric := netsim.NewFabric(top, model)
	cl := cluster.New(cluster.Config{Fabric: fabric, SlotsPerNode: cfg.SlotsPerNode})
	dfsCfg := dfs.Config{
		BlockSize:   cfg.BlockSize,
		Replication: cfg.Replication,
		Topology:    top,
		Seed:        cfg.Seed,
	}
	eng := core.NewEngine(core.Config{
		Cluster:          cl,
		Codec:            codec,
		ForceSortShuffle: cfg.ForceSortShuffle,
		TaskFailProb:     cfg.TaskFailProb,
		Seed:             cfg.Seed,
		Speculation:      cfg.Speculation,
		JobDeadline:      cfg.JobDeadline,
	})
	// With HA the namenode state machine and the coordinator journal share
	// one replicated group; without it the namenode is embedded and the
	// coordinator keeps no journal. Either way the engine sees the same
	// DFS API — placement is seed-identical across the two modes.
	var group *ha.Group
	var fs *dfs.DFS
	if cfg.HA {
		group = ha.NewGroup(ha.Config{
			Seed: cfg.Seed,
			Machines: map[string]func() ha.StateMachine{
				dfs.MachineName: dfs.NameMachine(dfsCfg),
				jobMachine:      func() ha.StateMachine { return ha.NewJournalMachine() },
			},
			Metrics: eng.Reg,
		})
		fs = dfs.NewReplicated(dfsCfg, group)
		eng.SetJournal(ha.NewJournal(group, jobMachine))
	} else {
		fs = dfs.New(dfsCfg)
	}
	eng.SetDFS(fs)
	// One registry for the whole context: the DFS and fabric feed their
	// counters into the engine's registry so a single scrape sees compute,
	// storage and network side by side.
	fs.Instrument(eng.Reg)
	fabric.Instrument(eng.Reg)
	c := &Context{top: top, fabric: fabric, cluster: cl, fs: fs, engine: eng, group: group, seed: cfg.Seed}
	if len(cfg.Chaos) > 0 {
		targets := chaos.Targets{
			Nodes:       top.Size(),
			Compute:     cl,
			Storage:     fs,
			Network:     fabric,
			Faults:      eng,
			Coordinator: eng,
			Corrupt:     fs,
		}
		if group != nil {
			targets.Namenode = group
		}
		c.chaos = chaos.New(cfg.Chaos, cfg.Seed, targets, eng.Reg)
		eng.SetChaos(c.chaos)
	}
	if cfg.EnableTracing {
		c.tracer = trace.New()
		eng.SetTracer(c.tracer)
		// The same recorder reaches every layer that emits causally
		// linked spans: the fabric records shuffle fetches under the
		// fetching task, the control-plane group records failovers and
		// journal proposals, and the chaos controller marks injected
		// faults as instant events on the affected track — one merged
		// cross-node timeline per job.
		fabric.SetTracer(c.tracer)
		if group != nil {
			group.SetTracer(c.tracer)
		}
		c.chaos.SetTracer(c.tracer)
	}
	return c
}

// Engine exposes the underlying dataflow engine (metrics, checkpoints).
func (c *Context) Engine() *core.Engine { return c.engine }

// Metrics exposes the context-wide registry: engine, shuffle, DFS and
// network counters all land here. Serve it with metrics.Handler or
// obs.NewMux.
func (c *Context) Metrics() *metrics.Registry { return c.engine.Reg }

// Tracer returns the span recorder, or nil unless Config.EnableTracing
// was set. A nil recorder is safe to pass to obs.NewMux and
// trace.WriteChromeTrace.
func (c *Context) Tracer() *trace.Recorder { return c.tracer }

// Report analyzes everything recorded so far — per-stage wall clock and
// task percentiles, stragglers, shuffle partition skew — under the given
// job name. Stage breakdown and straggler detection need
// Config.EnableTracing; shuffle-skew analysis works regardless because it
// reads the metrics registry.
func (c *Context) Report(job string) *obs.Report {
	return obs.Build(job, c.tracer.Spans(), c.engine.Reg.Snapshot(), obs.Options{})
}

// Chaos exposes the fault-schedule controller, or nil unless Config.Chaos
// was set. Useful for asserting Done() after a run and for manual ticks.
func (c *Context) Chaos() *chaos.Controller { return c.chaos }

// ControlPlane exposes the replicated control-plane group, or nil unless
// Config.HA was set. Useful for crashing/reviving members and reading
// failover metrics in tests and experiments.
func (c *Context) ControlPlane() *ha.Group { return c.group }

// Cluster exposes the executor cluster (failure injection, capacity).
func (c *Context) Cluster() *cluster.Cluster { return c.cluster }

// DFS exposes the distributed file system.
func (c *Context) DFS() *dfs.DFS { return c.fs }

// Fabric exposes the network cost model.
func (c *Context) Fabric() *netsim.Fabric { return c.fabric }

// Topology exposes the cluster shape.
func (c *Context) Topology() *topology.Topology { return c.top }

// NewKVStore starts a Dynamo-style KV store across the cluster's nodes
// with the given replication and quorum settings.
func (c *Context) NewKVStore(n, r, w int) (*kvstore.Store, error) {
	return kvstore.New(kvstore.Config{Fabric: c.fabric, N: n, R: r, W: w})
}

// NewStream starts an event-time streaming pipeline.
func (c *Context) NewStream(cfg stream.Config) *stream.Pipeline {
	return stream.New(cfg)
}
