package hpbdc

import (
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/shuffle"
)

// Distinct removes duplicates (by codec-encoded identity) with one
// shuffle.
func Distinct[T comparable](d *Dataset[T], codec Codec[T], parts int) *Dataset[T] {
	if parts <= 0 {
		parts = d.Partitions()
	}
	plan := d.ctx.engine.NewShuffled(d.plan, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return codec.Encode(r.(T)) },
		ValueOf:    func(core.Row) []byte { return nil },
		// Map-side combiner collapses duplicates before they move.
		Combiner: func(a, b []byte) []byte { return a },
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			seen := map[string]bool{}
			var out []core.Row
			for _, rec := range recs {
				k := string(rec.Key)
				if !seen[k] {
					seen[k] = true
					out = append(out, codec.Decode(rec.Key))
				}
			}
			return out
		},
	})
	return &Dataset[T]{ctx: d.ctx, plan: plan}
}

// Sample keeps each element independently with probability frac,
// deterministically per partition (so lineage recovery reproduces the
// same sample).
func (d *Dataset[T]) Sample(frac float64, seed uint64) *Dataset[T] {
	if frac >= 1 {
		return d
	}
	plan := d.ctx.engine.NewNarrow(d.plan, func(ctx *core.TaskContext, rows []core.Row) []core.Row {
		gen := rng.New(seed + uint64(ctx.Partition)*0x9e3779b9)
		var out []core.Row
		for _, r := range rows {
			if gen.Float64() < frac {
				out = append(out, r)
			}
		}
		return out
	})
	return &Dataset[T]{ctx: d.ctx, plan: plan}
}

// indexedRow carries a deterministic spread key alongside the row.
type indexedRow struct {
	key uint64
	row core.Row
}

// Repartition redistributes the dataset into `parts` partitions via a
// shuffle keyed on a deterministic per-(partition, position) index — the
// fix for skewed or too-few partitions before an expensive stage. The key
// must be deterministic (not a global counter): lineage recovery may
// recompute a subset of map tasks, and only a reproducible key assignment
// keeps rows in the same reduce partitions across attempts.
func Repartition[T any](d *Dataset[T], codec Codec[T], parts int) *Dataset[T] {
	if parts <= 0 {
		parts = d.ctx.cluster.Size()
	}
	indexed := d.ctx.engine.NewNarrow(d.plan, func(ctx *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			// Golden-ratio stride decorrelates partition and position so
			// hash partitioning spreads evenly.
			key := uint64(ctx.Partition)*0x9E3779B97F4A7C15 + uint64(i)
			out[i] = indexedRow{key: key, row: r}
		}
		return out
	})
	plan := d.ctx.engine.NewShuffled(indexed, core.ShuffleDep{
		Partitions: parts,
		KeyOf: func(r core.Row) []byte {
			v := r.(indexedRow).key
			var b [8]byte
			for k := 0; k < 8; k++ {
				b[k] = byte(v)
				v >>= 8
			}
			return b[:]
		},
		ValueOf: func(r core.Row) []byte { return codec.Encode(r.(indexedRow).row.(T)) },
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			out := make([]core.Row, len(recs))
			for i, rec := range recs {
				out[i] = codec.Decode(rec.Value)
			}
			return out
		},
	})
	return &Dataset[T]{ctx: d.ctx, plan: plan}
}
