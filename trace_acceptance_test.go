package hpbdc

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/trace"
)

// TestCrossNodeTraceAcceptance is the causal-tracing acceptance
// criterion: a chaos run (crash preset) must produce a single merged
// cross-node trace in which the shuffle fetch spans of the recovered
// stage causally link back to the coordinator's stage span, and the
// injected crash appears as an annotated instant event on the victim
// node's track.
func TestCrossNodeTraceAcceptance(t *testing.T) {
	sched, err := chaos.Preset("crash", 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := New(Config{Racks: 2, NodesPerRack: 4, Seed: 11,
		EnableTracing: true, Chaos: sched})

	lines := Parallelize(ctx, []string{
		"a b c", "b c d", "c d e", "d e f", "e f g", "f g h",
	}, 6)
	words := FlatMap(lines, func(l string) []string { return strings.Fields(l) })
	pairs := KeyBy(words, func(w string) string { return w })
	ones := MapValues(pairs, func(string) int64 { return 1 })
	counts := ReduceByKey(ones, StringCodec, Int64Codec, 4,
		func(a, b int64) int64 { return a + b })
	got, err := counts.Collect()
	if err != nil {
		t.Fatal(err)
	}
	sum := map[string]int64{}
	for _, p := range got {
		sum[p.Key] = p.Value
	}
	if sum["c"] != 3 {
		t.Fatalf("counts = %v", sum)
	}
	// The crash (vtime 2) must have landed mid-job; the revive (vtime 8)
	// may still be pending after a short job, so flush it.
	if ctx.Chaos().Applied() < 1 {
		t.Fatal("crash event never applied")
	}
	ctx.Chaos().AdvanceTo(16)
	if !ctx.Chaos().Done() {
		t.Fatalf("chaos schedule incomplete: %d events applied", ctx.Chaos().Applied())
	}

	spans := ctx.Tracer().Spans()

	// One merged trace: every causally-linked span shares one trace id.
	ids := trace.TraceIDs(spans)
	if len(ids) != 1 {
		t.Fatalf("trace ids = %v, want exactly one merged trace", ids)
	}
	tl := trace.BuildTimeline(spans, ids[0])
	if len(tl.Roots) != 1 || tl.Roots[0].Span.Category != "job" {
		t.Fatalf("timeline roots = %d (root category %q), want single job root",
			len(tl.Roots), tl.Roots[0].Span.Category)
	}

	// Fetch spans exist (the reduce stage pulled shuffle blocks over the
	// fabric) and each links back through its task to a driver-side stage
	// span.
	fetches := 0
	for _, s := range spans {
		if s.Category != "net" {
			continue
		}
		fetches++
		path := tl.PathToRoot(s.ID)
		foundStage := false
		for _, n := range path {
			if n.Span.Category == "stage" && n.Span.Track == "driver" {
				foundStage = true
			}
		}
		if !foundStage {
			t.Fatalf("fetch span %q (id %d) does not path back to a driver stage span; path len %d",
				s.Name, s.ID, len(path))
		}
	}
	if fetches == 0 {
		t.Fatal("no shuffle fetch spans recorded")
	}

	// The injected crash is an instant event annotated on a node track,
	// attached to the job timeline as an annotation.
	crashAnnotated := false
	for _, a := range tl.Annotations {
		if a.Category == "chaos" && a.Args["kind"] == "crash" &&
			strings.HasPrefix(a.Track, "node-") {
			crashAnnotated = true
		}
	}
	if !crashAnnotated {
		t.Fatalf("crash instant event missing from timeline annotations: %+v", tl.Annotations)
	}

	// The rendered timeline mentions the fault inline.
	if out := tl.String(); !strings.Contains(out, "! chaos crash") {
		t.Fatalf("timeline render missing chaos annotation:\n%s", out)
	}
}
