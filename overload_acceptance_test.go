package hpbdc

// Acceptance gate for the overload-robustness stack (ISSUE 7, E-OVL):
// past saturation the defended serving path must hold goodput flat and
// the admitted tail bounded, the undefended control run must exhibit the
// metastable collapse, runs must be seed-deterministic, and shedding
// must never corrupt the store's linearizable history. Runs under -race
// in CI (scripts/verify.sh). Extra seeds: OVL_SEEDS="7,11,13".

import (
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ovlStore builds the acceptance cluster: an 8-node R2W2 quorum store on
// the TCP fabric, the same build E-OVL sweeps.
func ovlStore(t *testing.T) *kvstore.Store {
	t.Helper()
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// ovlCalibrate measures mean closed-loop service latency on a throwaway
// store and returns it with the implied saturation capacity.
func ovlCalibrate(t *testing.T) (time.Duration, float64) {
	t.Helper()
	store := ovlStore(t)
	ops := workload.KVOps(1_000, 1_024, 0, 0.9, 128, 3)
	var total time.Duration
	for i, op := range ops {
		coord := topology.NodeID(i % 8)
		var lat time.Duration
		var err error
		if op.Kind == workload.OpPut {
			lat, err = store.Put(coord, op.Key, op.Value)
		} else {
			_, lat, err = store.Get(coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		total += lat
	}
	mean := total / time.Duration(len(ops))
	if mean <= 0 {
		mean = time.Microsecond
	}
	return mean, float64(time.Second) / float64(mean)
}

// ovlRun executes one overload run at mult x capacity and returns the
// result plus the store it ran against (for history capture).
func ovlRun(t *testing.T, seed uint64, mult float64, mean time.Duration, capacity float64, defended bool) (admission.SimResult, *kvstore.Store) {
	t.Helper()
	store := ovlStore(t)
	tenants := make([]workload.TenantSpec, 3)
	ids := make([]string, 3)
	weights := make([]float64, 3)
	prios := make([]int, 3)
	for i, m := range []string{"A", "B", "C"} {
		rf, _ := workload.YCSBMix(m)
		tenants[i] = workload.TenantSpec{
			ID: "ycsb-" + m, RatePerSec: mult * capacity / 3,
			Weight: 1, Priority: i, ReadFrac: rf, Keys: 512, Skew: 0.99, ValueSize: 128,
		}
		ids[i], weights[i], prios[i] = tenants[i].ID, 1, i
	}
	cfg := admission.SimConfig{
		Tenants:     tenants,
		Duration:    500 * time.Millisecond,
		Seed:        seed,
		Nodes:       8,
		Deadline:    50 * mean,
		MaxAttempts: 3,
		Backoff:     5 * mean,
	}
	if defended {
		quotas := admission.QuotasFor(ids, weights, prios, 0.95*capacity)
		for i := range quotas {
			quotas[i].Burst = quotas[i].Rate * 0.02
		}
		cfg.Admission = &admission.Config{
			Tenants:  quotas,
			Target:   4 * mean,
			Interval: 40 * mean,
			MaxQueue: 256,
		}
		cfg.RetryRatio = 0.1
		cfg.Serve = func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
			if op.Kind == workload.OpPut {
				return store.PutCtx(ctx, coord, op.Key, op.Value)
			}
			_, lat, err := store.GetCtx(ctx, coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
			return lat, err
		}
	} else {
		cfg.Serve = func(_ context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
			if op.Kind == workload.OpPut {
				return store.Put(coord, op.Key, op.Value)
			}
			_, lat, err := store.Get(coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
			return lat, err
		}
	}
	return admission.NewSim(cfg).Run(), store
}

func ovlSeeds(t *testing.T) []uint64 {
	t.Helper()
	env := os.Getenv("OVL_SEEDS")
	if env == "" {
		return []uint64{7}
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("OVL_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

func TestOverloadAcceptance(t *testing.T) {
	mean, capacity := ovlCalibrate(t)
	deadline := 50 * mean
	for _, seed := range ovlSeeds(t) {
		// Defended sweep: goodput must be flat past saturation.
		byMult := map[float64]admission.SimResult{}
		var lastStore *kvstore.Store
		for _, mult := range []float64{0.5, 1, 2} {
			byMult[mult], lastStore = ovlRun(t, seed, mult, mean, capacity, true)
		}
		peak := 0.0
		for _, res := range byMult {
			if res.GoodputPerSec > peak {
				peak = res.GoodputPerSec
			}
		}
		at2x := byMult[2]
		if at2x.GoodputPerSec < 0.9*peak {
			t.Fatalf("seed %d: defended goodput at 2x = %.0f/s, below 90%% of peak %.0f/s",
				seed, at2x.GoodputPerSec, peak)
		}
		// The admitted tail stays bounded: CoDel + the bounded queue keep
		// even p999 within a small multiple of the deadline (the control
		// run's tail, asserted below, runs two orders of magnitude past it).
		if p999 := time.Duration(at2x.AdmittedLatency.P999); p999 > 4*deadline {
			t.Fatalf("seed %d: admitted p999 %v exceeds 4x deadline %v", seed, p999, 4*deadline)
		}
		if at2x.ShedQuota+at2x.ShedQueue+at2x.ShedSojourn == 0 {
			t.Fatalf("seed %d: defended run at 2x shed nothing", seed)
		}

		// Control run at 2x: the metastable collapse. Unbudgeted retries
		// and no shedding drive the backlog far past the arrival window
		// and goodput through the floor.
		ctrl, _ := ovlRun(t, seed, 2, mean, capacity, false)
		if ctrl.GoodputPerSec >= 0.5*at2x.GoodputPerSec {
			t.Fatalf("seed %d: control goodput %.0f/s did not collapse vs defended %.0f/s",
				seed, ctrl.GoodputPerSec, at2x.GoodputPerSec)
		}
		if ctrl.VirtualElapsed < 750*time.Millisecond {
			t.Fatalf("seed %d: control backlog drained in %v; expected the drain to run far past the 500ms arrival window",
				seed, ctrl.VirtualElapsed)
		}
		if ctrlTail := time.Duration(ctrl.AdmittedLatency.P999); ctrlTail < 10*deadline {
			t.Fatalf("seed %d: control p999 %v under 10x deadline — collapse regime not reached", seed, ctrlTail)
		}

		// Determinism: same seed, same config => identical checksums.
		again, _ := ovlRun(t, seed, 2, mean, capacity, true)
		if again.Checksum != at2x.Checksum || again.Goodput != at2x.Goodput {
			t.Fatalf("seed %d: re-run diverged: checksum %x vs %x, goodput %d vs %d",
				seed, again.Checksum, at2x.Checksum, again.Goodput, at2x.Goodput)
		}

		// Shedding must not corrupt the store: the defended store's
		// concurrent history stays linearizable.
		h := check.CaptureHistory(lastStore, check.CaptureConfig{
			Clients: 4, Waves: 20, Keys: 6, Nodes: 8,
			ReadFraction: 0.4, DeleteFraction: 0.1, Seed: seed,
			IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
		})
		if verdict := check.Linearizable(h); !verdict.OK {
			t.Fatalf("seed %d: history not linearizable: %s", seed, verdict)
		}
	}
}
