package hpbdc

import (
	"repro/internal/serde"
)

// Codec serializes values of type T for shuffles and checkpoints. Encode
// and Decode must be inverses. For SortByKey, the key codec must be
// order-preserving: byte-wise comparison of encodings must match the
// intended ordering (StringCodec and Uint64SortableCodec are; Int64Codec's
// varints are not).
type Codec[T any] struct {
	Encode func(T) []byte
	Decode func([]byte) T
}

// StringCodec encodes strings as raw bytes (order-preserving).
var StringCodec = Codec[string]{
	Encode: func(s string) []byte { return []byte(s) },
	Decode: func(b []byte) string { return string(b) },
}

// BytesCodec passes byte slices through (order-preserving).
var BytesCodec = Codec[[]byte]{
	Encode: func(b []byte) []byte { return b },
	Decode: func(b []byte) []byte { return append([]byte(nil), b...) },
}

// Int64Codec encodes int64 as zigzag varints (compact, NOT
// order-preserving; use Uint64SortableCodec for sorts).
var Int64Codec = Codec[int64]{
	Encode: serde.EncodeInt64,
	Decode: func(b []byte) int64 {
		v, err := serde.DecodeInt64(b)
		if err != nil {
			panic("hpbdc: corrupt int64 encoding: " + err.Error())
		}
		return v
	},
}

// IntCodec encodes int via Int64Codec.
var IntCodec = Codec[int]{
	Encode: func(v int) []byte { return serde.EncodeInt64(int64(v)) },
	Decode: func(b []byte) int { return int(Int64Codec.Decode(b)) },
}

// Float64Codec encodes float64 as fixed 8 bytes (not order-preserving).
var Float64Codec = Codec[float64]{
	Encode: serde.EncodeFloat64,
	Decode: func(b []byte) float64 {
		v, err := serde.DecodeFloat64(b)
		if err != nil {
			panic("hpbdc: corrupt float64 encoding: " + err.Error())
		}
		return v
	},
}

// Uint64SortableCodec encodes uint64 big-endian so byte order equals
// numeric order — the key codec for numeric sorts.
var Uint64SortableCodec = Codec[uint64]{
	Encode: serde.SortableUint64Key,
	Decode: func(b []byte) uint64 {
		v, err := serde.FromSortableUint64Key(b)
		if err != nil {
			panic("hpbdc: corrupt sortable uint64: " + err.Error())
		}
		return v
	},
}
