package hpbdc

// Acceptance gate for the range-sharded transactional data plane
// (ISSUE 8, E-TXN): concurrent cross-range 2PC transactions survive a
// gauntlet of coordinator crashes at every protocol point, replication-
// group partitions spanning the commit point, and range splits/merges
// racing in-flight transactions — and after recovery the history must
// verdict strictly serializable with zero dangling locks and zero
// pending transaction records. A coordinator crash between prepare and
// commit must always resolve (abort or resume, never dangling), and a
// deliberate dirty-read injection must be caught by the checker. Runs
// under -race in CI (scripts/verify.sh). Extra seeds: TXN_SEEDS="7,42".

import (
	"errors"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/kvstore"
)

func txnSeeds(t *testing.T) []uint64 {
	t.Helper()
	env := os.Getenv("TXN_SEEDS")
	if env == "" {
		return []uint64{7, 42}
	}
	var seeds []uint64
	for _, f := range strings.Split(env, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
		if err != nil {
			t.Fatalf("TXN_SEEDS: %v", err)
		}
		seeds = append(seeds, v)
	}
	return seeds
}

func txnPlane(seed uint64) *kvstore.Sharded {
	return kvstore.NewSharded(kvstore.ShardedConfig{
		Seed: seed, Groups: 2, InitialSplits: []string{"k04"},
		MaxOpAttempts: 16, MaxTxnAttempts: 8,
	})
}

// txnCleanAbort classifies errors that guarantee no effect on the store.
func txnCleanAbort(err error) bool {
	return errors.Is(err, kvstore.ErrTxnConflict) ||
		errors.Is(err, kvstore.ErrTxnAborted) ||
		errors.Is(err, kvstore.ErrKeyLocked) ||
		errors.Is(err, kvstore.ErrDeadlineExceeded)
}

// drainAndVerify recovers the plane and asserts the three acceptance
// invariants: strictly serializable history, zero locks, zero records.
func drainAndVerify(t *testing.T, s *kvstore.Sharded, ops []check.TxnOp, label string) {
	t.Helper()
	if err := s.Recover(); err != nil {
		t.Fatalf("%s: Recover: %v", label, err)
	}
	if n, err := s.LockCount(); err != nil || n != 0 {
		t.Fatalf("%s: locks after recovery = (%d, %v), want 0", label, n, err)
	}
	if n, err := s.PendingTxnRecords(); err != nil || n != 0 {
		t.Fatalf("%s: dangling txn records = (%d, %v), want 0", label, n, err)
	}
	if out := check.CheckTxns(ops); !out.OK {
		t.Fatalf("%s: history not strictly serializable over %d ops: %s", label, out.Ops, out.Detail)
	}
}

// TestTxnAcceptanceGauntlet is the headline gate: every seed runs the
// full chaos mix — rotating coordinator crash points, periodic recovery,
// splits and a merge mid-run, and a partition of the control group
// spanning several waves — and must come out strictly serializable with
// nothing dangling.
func TestTxnAcceptanceGauntlet(t *testing.T) {
	crashPoints := []string{"begin", "prepare", "before-commit", "commit", "apply"}
	for _, seed := range txnSeeds(t) {
		t.Run(strconv.FormatUint(seed, 10), func(t *testing.T) {
			s := txnPlane(seed)
			ops := check.CaptureTxnHistory(s, check.TxnCaptureConfig{
				Clients: 4, Waves: 24, Keys: 8, TxnKeys: 2,
				ReadFraction: 0.3, TxnFraction: 0.4,
				Seed:     seed,
				NoEffect: txnCleanAbort,
				BetweenWaves: func(wave int) {
					switch {
					case wave == 3:
						_ = s.Split("k02")
					case wave == 11:
						leader := s.GroupLeader(0)
						rest := make([]int, 0, 2)
						for id := 0; id < 3; id++ {
							if id != leader {
								rest = append(rest, id)
							}
						}
						s.PartitionGroup(0, []int{leader}, rest)
					case wave == 14:
						s.HealGroup(0)
						_ = s.Recover()
					case wave == 18:
						_ = s.Merge("k02")
					case wave%4 == 1:
						_ = s.OrphanNext(crashPoints[(wave/4)%len(crashPoints)])
					case wave%4 == 3:
						_ = s.Recover()
					}
				},
			})
			if len(ops) == 0 {
				t.Fatal("gauntlet produced an empty history")
			}
			drainAndVerify(t, s, ops, "gauntlet")
		})
	}
}

// TestTxnAcceptanceEveryCrashPointResolves pins the per-point contract:
// a coordinator orphaned at any protocol point leaves a plane that one
// recovery pass returns to zero locks and zero records, with the
// transaction either fully applied or fully absent.
func TestTxnAcceptanceEveryCrashPointResolves(t *testing.T) {
	for _, point := range []string{"begin", "prepare", "before-commit", "commit", "apply"} {
		t.Run(point, func(t *testing.T) {
			s := txnPlane(7)
			ops := check.CaptureTxnHistory(s, check.TxnCaptureConfig{
				Clients: 3, Waves: 8, Keys: 6, TxnKeys: 2,
				TxnFraction: 0.6, ReadFraction: 0.2,
				Seed:     99,
				NoEffect: txnCleanAbort,
				BetweenWaves: func(wave int) {
					if wave == 2 {
						_ = s.OrphanNext(point)
					}
				},
			})
			drainAndVerify(t, s, ops, point)
		})
	}
}

// TestTxnAcceptanceDirtyReadCaught proves the verdict has teeth: serving
// reads from overwritten versions mid-run must flip the checker to NOT
// strictly serializable on at least one seed, and the clean re-run on
// the same plane must pass again.
func TestTxnAcceptanceDirtyReadCaught(t *testing.T) {
	caught := false
	for seed := uint64(7); seed < 12 && !caught; seed++ {
		s := txnPlane(seed)
		ops := check.CaptureTxnHistory(s, check.TxnCaptureConfig{
			Clients: 4, Waves: 10, Keys: 4, TxnKeys: 2,
			ReadFraction: 0.5, TxnFraction: 0.3,
			Seed:         seed,
			NoEffect:     txnCleanAbort,
			BetweenWaves: func(wave int) { s.SetDirtyReads(wave >= 2) },
		})
		s.SetDirtyReads(false)
		caught = !check.CheckTxns(ops).OK
		if caught {
			// Same config with the injection off: the verdict flips back.
			// A fresh plane, because the checker models a store that
			// starts empty and the dirty run left unexplained residue.
			fresh := txnPlane(seed)
			clean := check.CaptureTxnHistory(fresh, check.TxnCaptureConfig{
				Clients: 3, Waves: 6, Keys: 4, TxnKeys: 2,
				Seed:     seed + 100,
				NoEffect: txnCleanAbort,
			})
			drainAndVerify(t, fresh, clean, "clean-after-dirty")
		}
	}
	if !caught {
		t.Fatal("dirty-read injection never produced a non-serializable history")
	}
}
