// Tracing & observability: run a job with tracing enabled and injected
// task failures, print the job report (stage breakdown, stragglers,
// shuffle skew), export a Chrome trace (chrome://tracing / Perfetto), and
// optionally serve the whole thing over HTTP.
//
//	go run ./examples/tracing > job-trace.json            # report on stderr
//	go run ./examples/tracing -serve :9090                # then curl /metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	hpbdc "repro"
	"repro/internal/obs"
	"repro/internal/workload"
)

func main() {
	serve := flag.String("serve", "", "serve /metrics, /debug/trace and /debug/jobs on this address")
	flag.Parse()

	ctx := hpbdc.New(hpbdc.Config{
		Racks:         2,
		NodesPerRack:  4,
		TaskFailProb:  0.15, // make some retries happen so the trace shows them
		Seed:          8,
		EnableTracing: true,
	})

	lines := hpbdc.Parallelize(ctx, workload.Text(500, 10, 200, 1.0, 2), 12)
	words := hpbdc.FlatMap(lines, strings.Fields)
	counts, err := hpbdc.CountByKey(
		hpbdc.KeyBy(words, func(w string) string { return w }), hpbdc.StringCodec, 6)
	if err != nil {
		log.Fatal(err)
	}

	// The job report: per-stage wall clock and task percentiles, stragglers
	// with the node they ran on, per-partition shuffle skew.
	report := ctx.Report("wordcount")
	fmt.Fprintf(os.Stderr, "job counted %d distinct words\n", len(counts))
	fmt.Fprint(os.Stderr, report.String())

	// A few lines of the Prometheus exposition the /metrics endpoint serves.
	var prom strings.Builder
	if err := ctx.Metrics().WritePrometheus(&prom); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "\nexposition sample:")
	for i, line := range strings.Split(prom.String(), "\n") {
		if i >= 8 {
			fmt.Fprintln(os.Stderr, "  ...")
			break
		}
		fmt.Fprintf(os.Stderr, "  %s\n", line)
	}

	if *serve != "" {
		store := obs.NewReportStore()
		store.Add(report)
		fmt.Fprintf(os.Stderr, "serving /metrics, /debug/trace, /debug/jobs on %s — Ctrl-C to exit\n", *serve)
		log.Fatal(http.ListenAndServe(*serve, obs.NewMux(ctx.Metrics(), ctx.Tracer(), store)))
	}

	// The Chrome trace JSON goes to stdout.
	if err := ctx.Tracer().WriteChromeTrace(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
