// Tracing: attach the execution tracer to a job with injected task
// failures, then export a Chrome trace (chrome://tracing / Perfetto) that
// makes the retries and per-executor timeline visible.
//
//	go run ./examples/tracing > job-trace.json
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	hpbdc "repro"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	ctx := hpbdc.New(hpbdc.Config{
		Racks:        2,
		NodesPerRack: 4,
		TaskFailProb: 0.15, // make some retries happen so the trace shows them
		Seed:         8,
	})
	rec := trace.New()
	ctx.Engine().SetTracer(rec)

	lines := hpbdc.Parallelize(ctx, workload.Text(500, 10, 200, 1.0, 2), 12)
	words := hpbdc.FlatMap(lines, strings.Fields)
	counts, err := hpbdc.CountByKey(
		hpbdc.KeyBy(words, func(w string) string { return w }), hpbdc.StringCodec, 6)
	if err != nil {
		log.Fatal(err)
	}

	// Summary to stderr; the Chrome trace JSON goes to stdout.
	spans := rec.Spans()
	perTrack := map[string]int{}
	retries, failures := 0, 0
	var busy time.Duration
	for _, s := range spans {
		perTrack[s.Track]++
		busy += s.Duration
		if s.Args["outcome"] != "ok" {
			failures++
		}
		if !strings.HasSuffix(s.Name, "a0") {
			retries++
		}
	}
	fmt.Fprintf(os.Stderr, "job counted %d distinct words\n", len(counts))
	fmt.Fprintf(os.Stderr, "trace: %d task spans on %d executors, %d failed attempts, %d retries, %v total busy time\n",
		len(spans), len(perTrack), failures, retries, busy.Round(time.Millisecond))
	for track, n := range perTrack {
		fmt.Fprintf(os.Stderr, "  %s ran %d tasks\n", track, n)
	}
	if err := rec.WriteChromeTrace(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
