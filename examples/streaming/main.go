// Streaming: per-user click counts over 1-second tumbling windows with
// event-time watermarks, allowed lateness, and backpressure, fed by a
// skewed clickstream with out-of-order arrivals.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	hpbdc "repro"
	"repro/internal/stream"
	"repro/internal/workload"
)

func main() {
	ctx := hpbdc.New(hpbdc.Config{Racks: 1, NodesPerRack: 4})
	p := ctx.NewStream(stream.Config{
		Workers:         4,
		Buffer:          1024, // bounded: backpressure on overload
		Window:          time.Second,
		AllowedLateness: 500 * time.Millisecond,
	})

	clicks := workload.Clickstream(50_000, 2_000, 100, 10_000, 200*time.Millisecond, 9)
	var watermark time.Duration
	for i, c := range clicks {
		if err := p.Send(stream.Event{Key: c.User, Value: 1, EventTime: c.EventTime}); err != nil {
			log.Fatal(err)
		}
		// Source-driven watermark: trail max event time by 300 ms.
		if i%2000 == 1999 && c.EventTime-300*time.Millisecond > watermark {
			watermark = c.EventTime - 300*time.Millisecond
			if err := p.Advance(watermark); err != nil {
				log.Fatal(err)
			}
		}
	}
	results := p.Close()

	// Aggregate: busiest window and overall stats.
	perWindow := map[time.Duration]int64{}
	for _, r := range results {
		perWindow[r.WindowStart] += r.Count
	}
	var busiest time.Duration
	var peak int64
	var total int64
	for w, n := range perWindow {
		total += n
		if n > peak {
			peak = n
			busiest = w
		}
	}
	sojourn := p.Reg.Histogram("sojourn_ns")
	fmt.Printf("windows fired: %d panes over %d windows, %d events counted\n",
		len(results), len(perWindow), total)
	fmt.Printf("busiest window: [%v, %v) with %d clicks\n",
		busiest, busiest+time.Second, peak)
	fmt.Printf("late events dropped: %d\n", p.Reg.Counter("late_dropped").Value())
	fmt.Printf("sojourn latency: p50 %v, p99 %v\n",
		time.Duration(sojourn.Quantile(0.5)), time.Duration(sojourn.Quantile(0.99)))
}
