// Analytics: a SQL-shaped reporting pipeline on the table layer — derive
// a revenue column, join a dimension table, aggregate per group with
// map-side partial aggregation, and ORDER BY the result globally.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"time"

	hpbdc "repro"
	"repro/internal/rng"
	"repro/internal/table"
)

func main() {
	ctx := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Seed: 3})
	eng := ctx.Engine()

	// Fact table: 200k sales rows, generated distributed.
	salesSchema := table.Schema{Cols: []table.Col{
		{Name: "region", Type: table.String},
		{Name: "product", Type: table.String},
		{Name: "units", Type: table.Int64},
		{Name: "price", Type: table.Float64},
	}}
	regions := []string{"emea", "apac", "amer", "anz"}
	products := []string{"widget", "gadget", "doohickey", "gizmo", "whatsit"}
	sales, err := table.FromSource(eng, salesSchema, 16, func(part int) []table.Row {
		gen := rng.New(uint64(part) + 1)
		rows := make([]table.Row, 12_500)
		for i := range rows {
			rows[i] = table.Row{
				regions[gen.Intn(len(regions))],
				products[gen.Intn(len(products))],
				int64(1 + gen.Intn(20)),
				float64(gen.Intn(50000)) / 100,
			}
		}
		return rows
	})
	if err != nil {
		log.Fatal(err)
	}

	// Dimension table.
	managers, err := table.FromSlice(eng, table.Schema{Cols: []table.Col{
		{Name: "region", Type: table.String},
		{Name: "manager", Type: table.String},
	}}, []table.Row{
		{"emea", "ada"}, {"apac", "grace"}, {"amer", "katherine"}, {"anz", "hedy"},
	}, 1)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	// SELECT manager, product, SUM(units*price) AS revenue, COUNT(*)
	// FROM sales JOIN managers USING (region)
	// WHERE units >= 5
	// GROUP BY manager, product ORDER BY revenue DESC
	withRevenue, err := sales.WithColumn("revenue", table.Float64, func(r table.Row) any {
		return float64(r[2].(int64)) * r[3].(float64)
	})
	if err != nil {
		log.Fatal(err)
	}
	filtered := withRevenue.Where(func(r table.Row) bool { return r[2].(int64) >= 5 })
	joined, err := filtered.HashJoin(managers, "region", "region", 8)
	if err != nil {
		log.Fatal(err)
	}
	report, err := joined.GroupBy("manager", "product").Agg(4,
		table.Agg{Op: table.Sum, Col: "revenue", As: "revenue"},
		table.Agg{Op: table.Count, As: "orders"},
		table.Agg{Op: table.Avg, Col: "price", As: "avg_price"},
	)
	if err != nil {
		log.Fatal(err)
	}
	ranked, err := report.OrderBy("revenue", true, 4)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := ranked.Collect()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%-10s %-10s %14s %8s %10s\n", "manager", "product", "revenue", "orders", "avg-price")
	for i, r := range rows {
		if i >= 8 {
			fmt.Printf("  ... %d more rows\n", len(rows)-8)
			break
		}
		fmt.Printf("%-10s %-10s %14.2f %8d %10.2f\n",
			r[0].(string), r[1].(string), r[2].(float64), r[3].(int64), r[4].(float64))
	}
	fmt.Printf("\n%d groups from 200k rows in %v (%d tasks, shuffle %d B)\n",
		len(rows), elapsed.Round(time.Millisecond),
		eng.Reg.Counter("tasks_launched").Value(),
		eng.Reg.Counter("shuffle_raw_bytes").Value())
}
