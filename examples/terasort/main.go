// TeraSort: generate random 100-byte records, range-partition and sort
// them globally with the sort-based shuffle, and validate the output —
// the distributed sorting benchmark every big-data engine reports.
//
//	go run ./examples/terasort
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	hpbdc "repro"
	"repro/internal/workload"
)

func main() {
	const records = 100_000
	const parts = 16

	ctx := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Transport: "rdma", Seed: 1})

	// Generate partitions on demand so the data is born distributed.
	gen := hpbdc.SourceFunc(ctx, parts, func(part int) []hpbdc.Pair[string, string] {
		recs := workload.TeraGen(records/parts, uint64(part)+1)
		out := make([]hpbdc.Pair[string, string], len(recs))
		for i, r := range recs {
			out[i] = hpbdc.Pair[string, string]{Key: string(r.Key), Value: string(r.Value)}
		}
		return out
	})

	start := time.Now()
	sorted, err := hpbdc.SortByKey(gen, hpbdc.StringCodec, hpbdc.StringCodec, parts, 128)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sorted.CollectPartitions()
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Validate: concatenation of partitions must be globally sorted.
	var prev string
	n := 0
	for _, part := range out {
		for _, p := range part {
			if p.Key < prev {
				log.Fatalf("output not sorted at record %d", n)
			}
			prev = p.Key
			n++
		}
	}
	if n != records {
		log.Fatalf("sorted %d records, want %d", n, records)
	}

	sizes := make([]int, len(out))
	for i, part := range out {
		sizes[i] = len(part)
	}
	sort.Ints(sizes)
	reg := ctx.Engine().Reg
	fmt.Printf("TeraSort: %d records (%.1f MB) in %v (+%v simulated network)\n",
		n, float64(n*100)/1e6, elapsed.Round(time.Millisecond), ctx.Engine().NetTime().Round(time.Millisecond))
	fmt.Printf("partition sizes: min %d, median %d, max %d\n",
		sizes[0], sizes[len(sizes)/2], sizes[len(sizes)-1])
	fmt.Printf("shuffle: %d B raw, %d spills\n",
		reg.Counter("shuffle_raw_bytes").Value(), reg.Counter("shuffle_spills").Value())
}
