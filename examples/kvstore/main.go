// KV store: a Dynamo-style session through failure and repair — skewed
// load, a node failure with hinted handoff, recovery with hint delivery,
// and an anti-entropy sweep restoring exact replication.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"time"

	hpbdc "repro"
	"repro/internal/kvstore"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	ctx := hpbdc.New(hpbdc.Config{Racks: 2, NodesPerRack: 4, Transport: "tcp"})
	store, err := ctx.NewKVStore(3, 2, 2) // N=3, R=2, W=2: read-your-writes
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: skewed steady-state load.
	ops := workload.KVOps(100_000, 20_000, 0.99, 0.9, 128, 7)
	start := time.Now()
	for i, op := range ops {
		coord := topology.NodeID(i % 8)
		switch op.Kind {
		case workload.OpPut:
			if _, err := store.Put(coord, op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		case workload.OpGet:
			if _, _, err := store.Get(coord, op.Key); err != nil && err != kvstore.ErrNotFound {
				log.Fatal(err)
			}
		}
	}
	get := store.Reg.Histogram("get_latency_ns").Snapshot()
	fmt.Printf("steady state: %d ops in %v (get mean %v, p99 %v)\n",
		len(ops), time.Since(start).Round(time.Millisecond),
		time.Duration(int64(get.Mean)).Round(time.Microsecond),
		time.Duration(get.P99).Round(time.Microsecond))

	// Phase 2: fail a node; writes keep succeeding via hinted handoff.
	victim := topology.NodeID(3)
	_ = store.FailNode(victim)
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("during-outage-%d", i)
		if _, err := store.Put(topology.NodeID(i%8), key, []byte("v")); err != nil {
			log.Fatalf("write failed during outage: %v", err)
		}
	}
	fmt.Printf("outage: 10k writes succeeded with node %d down; %d hinted handoffs pending %d hints\n",
		victim, store.Reg.Counter("hinted_handoffs").Value(), store.PendingHints())

	// Phase 3: recover; hints drain, anti-entropy restores exact placement.
	_ = store.RecoverNode(victim)
	written, removed := store.AntiEntropy()
	fmt.Printf("recovery: %d hints delivered; anti-entropy wrote %d replicas, removed %d sloppy copies\n",
		store.Reg.Counter("hints_delivered").Value(), written, removed)

	// Verify: every outage-era key reads back.
	missing := 0
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("during-outage-%d", i)
		if _, _, err := store.Get(topology.NodeID(i%8), key); err != nil {
			missing++
		}
	}
	fmt.Printf("verification: %d/10000 outage-era keys missing after repair\n", missing)
	if missing > 0 {
		log.Fatal("durability hole detected")
	}
}
