// PageRank: rank the vertices of an R-MAT power-law graph with the
// Pregel-style BSP engine, then cross-check the top vertices against
// in-degree (on power-law graphs the two correlate strongly).
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/workload"
)

func main() {
	const scale = 14 // 16k vertices
	const edgeFactor = 16

	edges := workload.RMAT(scale, edgeFactor, 11)
	g := graph.FromEdges(1<<scale, edges)
	maxDeg, meanDeg := g.DegreeStats()
	fmt.Printf("graph: %d vertices, %d edges (max out-degree %d, mean %.1f)\n",
		g.NumVertices(), g.NumEdges(), maxDeg, meanDeg)

	start := time.Now()
	res := g.PageRank(0.85, 20, 8)
	fmt.Printf("pagerank: %d supersteps, %d messages, %v\n",
		res.Supersteps, res.Messages, time.Since(start).Round(time.Millisecond))

	type ranked struct {
		v    int64
		rank float64
	}
	top := make([]ranked, 0, len(res.State))
	for v, r := range res.State {
		top = append(top, ranked{int64(v), r})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })

	fmt.Println("top 10 vertices by rank:")
	for i := 0; i < 10; i++ {
		fmt.Printf("  %2d. vertex %-6d rank %.5f  in-degree %d\n",
			i+1, top[i].v, top[i].rank, g.InDegree(top[i].v))
	}

	// Connected components of the same graph.
	cc := g.ConnectedComponents(8)
	comps := map[float64]int{}
	for _, label := range cc.State {
		comps[label]++
	}
	largest := 0
	for _, size := range comps {
		if size > largest {
			largest = size
		}
	}
	fmt.Printf("connected components: %d total, largest has %d vertices (%.1f%%)\n",
		len(comps), largest, 100*float64(largest)/float64(g.NumVertices()))
}
