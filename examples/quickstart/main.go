// Quickstart: the canonical WordCount on the hpbdc dataset API, including
// DFS text I/O and the metrics the engine collects along the way.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	hpbdc "repro"
	"repro/internal/workload"
)

func main() {
	// An 8-node, 2-rack simulated cluster over the RDMA transport model.
	ctx := hpbdc.New(hpbdc.Config{
		Racks:        2,
		NodesPerRack: 4,
		Transport:    "rdma",
		BlockSize:    64 << 10,
		Seed:         42,
	})

	// Generate a Zipf-worded corpus and store it in the DFS.
	corpus := workload.Text(2000, 12, 500, 1.0, 7)
	if err := hpbdc.SaveAsTextFile(hpbdc.Parallelize(ctx, corpus, 8), "/corpus"); err != nil {
		log.Fatal(err)
	}

	// The classic pipeline: read → split → key → count.
	lines := hpbdc.TextFile(ctx, "/corpus")
	words := hpbdc.FlatMap(lines, strings.Fields)
	pairs := hpbdc.KeyBy(words, func(w string) string { return w })
	counts, err := hpbdc.CountByKey(pairs, hpbdc.StringCodec, 8)
	if err != nil {
		log.Fatal(err)
	}

	type wc struct {
		word string
		n    int64
	}
	var ranked []wc
	var total int64
	for w, n := range counts {
		ranked = append(ranked, wc{w, n})
		total += n
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })

	fmt.Printf("counted %d words, %d distinct; top 10:\n", total, len(ranked))
	for i := 0; i < 10 && i < len(ranked); i++ {
		fmt.Printf("  %2d. %-12s %6d\n", i+1, ranked[i].word, ranked[i].n)
	}

	reg := ctx.Engine().Reg
	fmt.Printf("\nengine: %d tasks, %d retries, shuffle %d B raw / %d B wire, net time %v\n",
		reg.Counter("tasks_launched").Value(),
		reg.Counter("task_retries").Value(),
		reg.Counter("shuffle_raw_bytes").Value(),
		reg.Counter("shuffle_wire_bytes").Value(),
		ctx.Engine().NetTime())
}
