// Parameter server: train logistic regression data-parallel under BSP,
// ASP and SSP with injected transient stragglers, showing the classic
// trade-off — ASP speed, BSP consistency, SSP close to both.
//
//	go run ./examples/mltrain
package main

import (
	"fmt"
	"time"

	"repro/internal/ml"
	"repro/internal/workload"
)

func main() {
	data := workload.Logistic(20_000, 20, 5)
	fmt.Printf("dataset: %d examples, %d features (true-weight accuracy %.3f)\n",
		len(data.X), len(data.TrueWeights), ml.Accuracy(data, data.TrueWeights))

	base := ml.Config{
		Workers:         8,
		Steps:           100,
		BatchSize:       64,
		LearningRate:    0.2,
		Staleness:       4,
		StragglerWorker: -1,
		HiccupProb:      0.1,
		HiccupDelay:     time.Millisecond,
		Seed:            3,
	}

	fmt.Printf("%-5s %12s %12s %10s %10s\n", "mode", "wall", "sync-wait", "loss", "accuracy")
	for _, mode := range []ml.Mode{ml.BSP, ml.ASP, ml.SSP} {
		cfg := base
		cfg.Mode = mode
		res := ml.Train(data, cfg)
		fmt.Printf("%-5s %12v %12v %10.4f %10.3f\n",
			mode, res.WallTime.Round(time.Millisecond),
			res.WaitTime.Round(time.Millisecond),
			res.FinalLoss, res.Accuracy)
	}
}
