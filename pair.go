package hpbdc

import (
	"sort"

	"repro/internal/core"
	"repro/internal/shuffle"
)

// Pair is a keyed element — the currency of shuffle operations.
type Pair[K comparable, V any] struct {
	Key   K
	Value V
}

// Joined is one inner-join match.
type Joined[V, W any] struct {
	Left  V
	Right W
}

// KeyBy keys each element by f.
func KeyBy[T any, K comparable](d *Dataset[T], f func(T) K) *Dataset[Pair[K, T]] {
	return Map(d, func(t T) Pair[K, T] { return Pair[K, T]{Key: f(t), Value: t} })
}

// MapValues transforms values, keeping keys (and partitioning) intact.
func MapValues[K comparable, V, W any](d *Dataset[Pair[K, V]], f func(V) W) *Dataset[Pair[K, W]] {
	return Map(d, func(p Pair[K, V]) Pair[K, W] {
		return Pair[K, W]{Key: p.Key, Value: f(p.Value)}
	})
}

// Keys projects the keys.
func Keys[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[K] {
	return Map(d, func(p Pair[K, V]) K { return p.Key })
}

// Values projects the values.
func Values[K comparable, V any](d *Dataset[Pair[K, V]]) *Dataset[V] {
	return Map(d, func(p Pair[K, V]) V { return p.Value })
}

// ReduceByKey shuffles pairs into `parts` partitions and merges values
// with equal keys using `merge` (associative and commutative). A map-side
// combiner runs before the shuffle, so highly repetitive keys move once.
func ReduceByKey[K comparable, V any](d *Dataset[Pair[K, V]], kc Codec[K], vc Codec[V], parts int, merge func(V, V) V) *Dataset[Pair[K, V]] {
	if parts <= 0 {
		parts = d.Partitions()
	}
	combiner := func(a, b []byte) []byte {
		return vc.Encode(merge(vc.Decode(a), vc.Decode(b)))
	}
	plan := d.ctx.engine.NewShuffled(d.plan, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return kc.Encode(r.(Pair[K, V]).Key) },
		ValueOf:    func(r core.Row) []byte { return vc.Encode(r.(Pair[K, V]).Value) },
		Combiner:   combiner,
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			acc := map[string][]byte{}
			for _, rec := range recs {
				k := string(rec.Key)
				if prev, ok := acc[k]; ok {
					acc[k] = combiner(prev, rec.Value)
				} else {
					acc[k] = append([]byte(nil), rec.Value...)
				}
			}
			keys := make([]string, 0, len(acc))
			for k := range acc {
				keys = append(keys, k)
			}
			sort.Strings(keys) // deterministic output order
			out := make([]core.Row, 0, len(acc))
			for _, k := range keys {
				out = append(out, Pair[K, V]{Key: kc.Decode([]byte(k)), Value: vc.Decode(acc[k])})
			}
			return out
		},
	})
	return &Dataset[Pair[K, V]]{ctx: d.ctx, plan: plan}
}

// GroupByKey shuffles pairs and gathers each key's values into a slice.
// Prefer ReduceByKey when a merge function exists — GroupByKey moves every
// value across the network.
func GroupByKey[K comparable, V any](d *Dataset[Pair[K, V]], kc Codec[K], vc Codec[V], parts int) *Dataset[Pair[K, []V]] {
	if parts <= 0 {
		parts = d.Partitions()
	}
	plan := d.ctx.engine.NewShuffled(d.plan, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return kc.Encode(r.(Pair[K, V]).Key) },
		ValueOf:    func(r core.Row) []byte { return vc.Encode(r.(Pair[K, V]).Value) },
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			groups := map[string][]V{}
			for _, rec := range recs {
				k := string(rec.Key)
				groups[k] = append(groups[k], vc.Decode(rec.Value))
			}
			keys := make([]string, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]core.Row, 0, len(groups))
			for _, k := range keys {
				out = append(out, Pair[K, []V]{Key: kc.Decode([]byte(k)), Value: groups[k]})
			}
			return out
		},
	})
	return &Dataset[Pair[K, []V]]{ctx: d.ctx, plan: plan}
}

// CountByKey is an action: the number of occurrences of each key.
func CountByKey[K comparable, V any](d *Dataset[Pair[K, V]], kc Codec[K], parts int) (map[K]int64, error) {
	ones := MapValues(d, func(V) int64 { return 1 })
	counted := ReduceByKey(ones, kc, Int64Codec, parts, func(a, b int64) int64 { return a + b })
	pairs, err := counted.Collect()
	if err != nil {
		return nil, err
	}
	out := make(map[K]int64, len(pairs))
	for _, p := range pairs {
		out[p.Key] += p.Value
	}
	return out, nil
}

// Join inner-joins two pair datasets on key, emitting one Joined per
// matching (left, right) combination. Implementation: tagged union of both
// sides, one shuffle, reduce-side hash join.
func Join[K comparable, V, W any](a *Dataset[Pair[K, V]], b *Dataset[Pair[K, W]], kc Codec[K], vc Codec[V], wc Codec[W], parts int) *Dataset[Pair[K, Joined[V, W]]] {
	if parts <= 0 {
		parts = a.Partitions()
	}
	type tagged struct {
		key   K
		left  bool
		value []byte
	}
	left := Map(a, func(p Pair[K, V]) tagged {
		return tagged{key: p.Key, left: true, value: vc.Encode(p.Value)}
	})
	right := Map(b, func(p Pair[K, W]) tagged {
		return tagged{key: p.Key, left: false, value: wc.Encode(p.Value)}
	})
	both := Union(left, right)
	plan := a.ctx.engine.NewShuffled(both.plan, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return kc.Encode(r.(tagged).key) },
		ValueOf: func(r core.Row) []byte {
			t := r.(tagged)
			tag := byte(0)
			if t.left {
				tag = 1
			}
			return append([]byte{tag}, t.value...)
		},
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			type sides struct {
				lefts  [][]byte
				rights [][]byte
			}
			groups := map[string]*sides{}
			for _, rec := range recs {
				k := string(rec.Key)
				g, ok := groups[k]
				if !ok {
					g = &sides{}
					groups[k] = g
				}
				if rec.Value[0] == 1 {
					g.lefts = append(g.lefts, rec.Value[1:])
				} else {
					g.rights = append(g.rights, rec.Value[1:])
				}
			}
			keys := make([]string, 0, len(groups))
			for k := range groups {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var out []core.Row
			for _, k := range keys {
				g := groups[k]
				key := kc.Decode([]byte(k))
				for _, l := range g.lefts {
					for _, r := range g.rights {
						out = append(out, Pair[K, Joined[V, W]]{
							Key:   key,
							Value: Joined[V, W]{Left: vc.Decode(l), Right: wc.Decode(r)},
						})
					}
				}
			}
			return out
		},
	})
	return &Dataset[Pair[K, Joined[V, W]]]{ctx: a.ctx, plan: plan}
}

// BroadcastJoin inner-joins a large dataset against a small one without a
// shuffle: the small side is collected at the driver, broadcast to every
// executor (charged to the fabric), and probed map-side. Use when the
// small side fits in memory; it removes the large side's shuffle entirely
// — the classic broadcast-vs-shuffle join trade-off.
func BroadcastJoin[K comparable, V, W any](large *Dataset[Pair[K, V]], small *Dataset[Pair[K, W]], smallBytes int64) (*Dataset[Pair[K, Joined[V, W]]], error) {
	rows, err := small.Collect()
	if err != nil {
		return nil, err
	}
	index := make(map[K][]W, len(rows))
	for _, p := range rows {
		index[p.Key] = append(index[p.Key], p.Value)
	}
	handle := large.ctx.engine.Broadcast(index, smallBytes)
	joined := FlatMap(large, func(p Pair[K, V]) []Pair[K, Joined[V, W]] {
		m := handle.Value().(map[K][]W)
		matches := m[p.Key]
		out := make([]Pair[K, Joined[V, W]], 0, len(matches))
		for _, w := range matches {
			out = append(out, Pair[K, Joined[V, W]]{
				Key:   p.Key,
				Value: Joined[V, W]{Left: p.Value, Right: w},
			})
		}
		return out
	})
	return joined, nil
}

// SortByKey globally sorts the dataset by key into `parts` key-ranged
// partitions: concatenating CollectPartitions' output in partition order
// yields the fully sorted sequence. The key codec must be
// order-preserving (see Codec). Range boundaries come from sampling up to
// sampleSize keys per input partition.
func SortByKey[K comparable, V any](d *Dataset[Pair[K, V]], kc Codec[K], vc Codec[V], parts, sampleSize int) (*Dataset[Pair[K, V]], error) {
	if parts <= 0 {
		parts = d.Partitions()
	}
	if sampleSize <= 0 {
		sampleSize = 64
	}
	// Sampling job: up to sampleSize encoded keys per partition.
	samples := MapPartitions(d, func(_ int, rows []Pair[K, V]) [][]byte {
		stride := len(rows)/sampleSize + 1
		var out [][]byte
		for i := 0; i < len(rows); i += stride {
			out = append(out, kc.Encode(rows[i].Key))
		}
		return out
	})
	keys, err := samples.Collect()
	if err != nil {
		return nil, err
	}
	splits := splitPoints(keys, parts)
	rp := shuffle.NewRangePartitioner(splits)
	plan := d.ctx.engine.NewShuffled(d.plan, core.ShuffleDep{
		Partitions:  rp.Partitions(),
		Partitioner: rp.Partition,
		Sorted:      true,
		KeyOf:       func(r core.Row) []byte { return kc.Encode(r.(Pair[K, V]).Key) },
		ValueOf:     func(r core.Row) []byte { return vc.Encode(r.(Pair[K, V]).Value) },
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			out := make([]core.Row, len(recs))
			for i, rec := range recs {
				out[i] = Pair[K, V]{Key: kc.Decode(rec.Key), Value: vc.Decode(rec.Value)}
			}
			return out
		},
	})
	return &Dataset[Pair[K, V]]{ctx: d.ctx, plan: plan}, nil
}

// splitPoints picks parts-1 ascending split keys from the sample.
func splitPoints(sample [][]byte, parts int) [][]byte {
	sort.Slice(sample, func(i, j int) bool {
		return string(sample[i]) < string(sample[j])
	})
	var splits [][]byte
	for i := 1; i < parts && len(sample) > 0; i++ {
		idx := i * len(sample) / parts
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		splits = append(splits, sample[idx])
	}
	// Deduplicate adjacent equal splits (skewed samples).
	var out [][]byte
	for _, s := range splits {
		if len(out) == 0 || string(out[len(out)-1]) != string(s) {
			out = append(out, s)
		}
	}
	return out
}
