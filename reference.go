package hpbdc

import "repro/internal/core"

// ReferenceCollect evaluates the dataset's plan with the sequential
// single-node reference oracle (core.Reference) and returns all rows in
// partition order. It shares the job spec — the user functions captured
// in the plan — with the distributed engine but none of its execution
// machinery (stages, tasks, shuffle writers, caching, recovery), so
// comparing it against Collect is a differential correctness test: see
// internal/check and DESIGN.md "Correctness checking".
//
// Record order matches CollectPartitions only where the engine
// guarantees one (sorted shuffles, narrow pipelines); compare unsorted
// shuffle output as a multiset.
func ReferenceCollect[T any](d *Dataset[T]) []T {
	parts := core.Reference(d.Plan())
	var out []T
	for _, rows := range parts {
		for _, r := range rows {
			out = append(out, r.(T))
		}
	}
	return out
}

// ReferenceCollectPartitions is ReferenceCollect keeping the partition
// structure, aligned with CollectPartitions.
func ReferenceCollectPartitions[T any](d *Dataset[T]) [][]T {
	parts := core.Reference(d.Plan())
	out := make([][]T, len(parts))
	for i, rows := range parts {
		typed := make([]T, len(rows))
		for j, r := range rows {
			typed[j] = r.(T)
		}
		out[i] = typed
	}
	return out
}
