package hpbdc

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/topology"
)

// Dataset is a typed, immutable, partitioned collection — the user-facing
// handle on a plan in the engine's lineage graph. Transformations are lazy;
// actions (Collect, Count, Reduce, Save) trigger execution.
type Dataset[T any] struct {
	ctx  *Context
	plan *core.Plan
}

// Context returns the dataset's owning context.
func (d *Dataset[T]) Context() *Context { return d.ctx }

// Plan exposes the underlying logical plan (for engine-level operations
// such as core.Engine.Checkpoint).
func (d *Dataset[T]) Plan() *core.Plan { return d.plan }

// Partitions returns the dataset's partition count.
func (d *Dataset[T]) Partitions() int { return d.plan.Partitions() }

// Parallelize distributes data across parts partitions round-robin.
func Parallelize[T any](c *Context, data []T, parts int) *Dataset[T] {
	if parts <= 0 {
		parts = c.cluster.Size()
	}
	owned := append([]T(nil), data...)
	plan := c.engine.NewSource(parts, func(_ *core.TaskContext, part int) []core.Row {
		var rows []core.Row
		for i := part; i < len(owned); i += parts {
			rows = append(rows, owned[i])
		}
		return rows
	}, nil)
	return &Dataset[T]{ctx: c, plan: plan}
}

// SourceFunc builds a dataset whose partitions are generated on demand by
// fn — the entry point for synthetic workloads. fn must be deterministic
// per partition: it may be re-invoked for lineage recovery.
func SourceFunc[T any](c *Context, parts int, fn func(part int) []T) *Dataset[T] {
	plan := c.engine.NewSource(parts, func(_ *core.TaskContext, part int) []core.Row {
		data := fn(part)
		rows := make([]core.Row, len(data))
		for i, v := range data {
			rows[i] = v
		}
		return rows
	}, nil)
	return &Dataset[T]{ctx: c, plan: plan}
}

// Map applies f to every element.
func Map[T, U any](d *Dataset[T], f func(T) U) *Dataset[U] {
	plan := d.ctx.engine.NewNarrow(d.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			out[i] = f(r.(T))
		}
		return out
	})
	return &Dataset[U]{ctx: d.ctx, plan: plan}
}

// FlatMap applies f and flattens the results.
func FlatMap[T, U any](d *Dataset[T], f func(T) []U) *Dataset[U] {
	plan := d.ctx.engine.NewNarrow(d.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		var out []core.Row
		for _, r := range rows {
			for _, u := range f(r.(T)) {
				out = append(out, u)
			}
		}
		return out
	})
	return &Dataset[U]{ctx: d.ctx, plan: plan}
}

// Filter keeps elements where f is true.
func (d *Dataset[T]) Filter(f func(T) bool) *Dataset[T] {
	plan := d.ctx.engine.NewNarrow(d.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		var out []core.Row
		for _, r := range rows {
			if f(r.(T)) {
				out = append(out, r)
			}
		}
		return out
	})
	return &Dataset[T]{ctx: d.ctx, plan: plan}
}

// MapPartitions applies f to whole partitions at once (for per-partition
// setup such as building a local index).
func MapPartitions[T, U any](d *Dataset[T], f func(part int, rows []T) []U) *Dataset[U] {
	plan := d.ctx.engine.NewNarrow(d.plan, func(ctx *core.TaskContext, rows []core.Row) []core.Row {
		in := make([]T, len(rows))
		for i, r := range rows {
			in[i] = r.(T)
		}
		outs := f(ctx.Partition, in)
		out := make([]core.Row, len(outs))
		for i, u := range outs {
			out[i] = u
		}
		return out
	})
	return &Dataset[U]{ctx: d.ctx, plan: plan}
}

// Union concatenates datasets of the same type.
func Union[T any](a *Dataset[T], more ...*Dataset[T]) *Dataset[T] {
	plans := []*core.Plan{a.plan}
	for _, d := range more {
		plans = append(plans, d.plan)
	}
	return &Dataset[T]{ctx: a.ctx, plan: a.ctx.engine.NewUnion(plans...)}
}

// Cache memoizes computed partitions in memory for reuse across jobs.
func (d *Dataset[T]) Cache() *Dataset[T] {
	d.plan.Cache()
	return d
}

// Collect computes the dataset and returns all elements.
func (d *Dataset[T]) Collect() ([]T, error) {
	rows, err := d.ctx.engine.Collect(d.plan)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(rows))
	for i, r := range rows {
		out[i] = r.(T)
	}
	return out, nil
}

// CollectPartitions computes the dataset preserving partition boundaries.
func (d *Dataset[T]) CollectPartitions() ([][]T, error) {
	parts, err := d.ctx.engine.Run(d.plan)
	if err != nil {
		return nil, err
	}
	out := make([][]T, len(parts))
	for i, rows := range parts {
		out[i] = make([]T, len(rows))
		for j, r := range rows {
			out[i][j] = r.(T)
		}
	}
	return out, nil
}

// Count returns the number of elements.
func (d *Dataset[T]) Count() (int64, error) {
	return d.ctx.engine.Count(d.plan)
}

// Reduce folds all elements with f (which must be associative and
// commutative). It fails on an empty dataset.
func (d *Dataset[T]) Reduce(f func(T, T) T) (T, error) {
	var zero T
	// Per-partition partial reduce runs in parallel; the driver folds the
	// partials.
	partials := MapPartitions(d, func(_ int, rows []T) []T {
		if len(rows) == 0 {
			return nil
		}
		acc := rows[0]
		for _, r := range rows[1:] {
			acc = f(acc, r)
		}
		return []T{acc}
	})
	vals, err := partials.Collect()
	if err != nil {
		return zero, err
	}
	if len(vals) == 0 {
		return zero, errors.New("hpbdc: Reduce of empty dataset")
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = f(acc, v)
	}
	return acc, nil
}

// Checkpoint materializes the dataset to the DFS, truncating its lineage:
// failures after the checkpoint restore from storage instead of
// recomputing upstream stages.
func (d *Dataset[T]) Checkpoint(path string, codec Codec[T]) error {
	return d.ctx.engine.Checkpoint(d.plan, path,
		func(r core.Row) []byte { return codec.Encode(r.(T)) },
		func(b []byte) core.Row { return codec.Decode(b) },
	)
}

// ---------------------------------------------------------------------------
// DFS text I/O

// SaveAsTextFile writes one DFS file per partition under prefix
// (prefix/part-00000, ...), each line one element, written node-locally.
// It is an action.
func SaveAsTextFile(d *Dataset[string], prefix string) error {
	fs := d.ctx.fs
	sink := d.ctx.engine.NewNarrow(d.plan, func(ctx *core.TaskContext, rows []core.Row) []core.Row {
		path := fmt.Sprintf("%s/part-%05d", prefix, ctx.Partition)
		_ = fs.Delete(path) // idempotence under task retry
		w, err := fs.CreateWith(path, 0, ctx.Node)
		if err != nil {
			panic(fmt.Sprintf("hpbdc: SaveAsTextFile: %v", err))
		}
		for _, r := range rows {
			if _, err := io.WriteString(w, r.(string)); err != nil {
				panic(err)
			}
			if _, err := w.Write([]byte{'\n'}); err != nil {
				panic(err)
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		return nil
	})
	_, err := d.ctx.engine.Run(sink)
	return err
}

// TextFile reads every DFS file under prefix as a dataset of lines, one
// partition per file, scheduled next to the file's first block replicas.
// Remote reads charge the fabric.
func TextFile(c *Context, prefix string) *Dataset[string] {
	files := c.fs.List(prefix)
	if len(files) == 0 {
		return Parallelize[string](c, nil, 1)
	}
	prefs := func(part int) []topology.NodeID {
		locs, err := c.fs.BlockLocations(files[part])
		if err != nil || len(locs) == 0 {
			return nil
		}
		return locs[0].Replicas
	}
	plan := c.engine.NewSource(len(files), func(ctx *core.TaskContext, part int) []core.Row {
		locs, err := c.fs.BlockLocations(files[part])
		if err != nil {
			panic(fmt.Sprintf("hpbdc: TextFile: %v", err))
		}
		var data []byte
		for _, b := range locs {
			blockData, served, err := c.fs.ReadBlock(b.ID, ctx.Node)
			if err != nil {
				panic(fmt.Sprintf("hpbdc: TextFile: %v", err))
			}
			cost := c.fabric.Cost(served, ctx.Node, b.Length)
			c.engine.Reg.Counter("net_time_ns").Add(int64(cost))
			c.engine.Reg.Counter("input_bytes").Add(b.Length)
			data = append(data, blockData...)
		}
		var rows []core.Row
		for _, line := range strings.Split(string(data), "\n") {
			if line != "" {
				rows = append(rows, line)
			}
		}
		return rows
	}, prefs)
	return &Dataset[string]{ctx: c, plan: plan}
}
