// Command hpbdc-bench runs the reconstructed evaluation suite (DESIGN.md,
// experiments E1..E12) and prints each experiment's table. With -bench it
// instead runs the perf-trajectory families and reads/writes the
// BENCH_<family>.json baselines.
//
//	hpbdc-bench                 # run everything at full scale
//	hpbdc-bench -small          # quick pass (CI-sized inputs)
//	hpbdc-bench -run E1,E5,E12  # a subset
//	hpbdc-bench -metrics-addr :9090 -trace-out run.json
//	                            # scrapeable /metrics + Perfetto trace file
//	hpbdc-bench -bench all -bench-quick -bench-out .
//	                            # regenerate the committed quick baselines
//	hpbdc-bench -bench all -bench-quick -bench-diff .
//	                            # compare a fresh run against them; exit 1
//	                            # on any shape break or regression
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/perf"
	"repro/internal/trace"
)

func main() {
	small := flag.Bool("small", false, "run CI-sized inputs instead of full scale")
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	metricsAddr := flag.String("metrics-addr", "",
		"serve /metrics, /debug/trace and /debug/jobs on this address (e.g. :9090)")
	traceOut := flag.String("trace-out", "",
		"write a Chrome/Perfetto trace JSON of all instrumented jobs to this file")
	seed := flag.Uint64("seed", 0, "fault-injection seed for the EFT experiment (0: default)")
	failProb := flag.Float64("fail-prob", 0, "global transient task failure probability for EFT")
	chaosSpec := flag.String("chaos", "",
		"chaos schedule for EFT: a preset name (crash, partition, straggler, flaky, mixed) or a schedule file")
	ckptInterval := flag.Int("ckpt-interval", 0,
		"fixed checkpoint interval (events) for E-SFT, replacing its interval sweep (0: sweep)")
	streamChaos := flag.String("stream-chaos", "",
		"chaos schedule for E-SFT: the stream preset or a schedule file with stream-crash/stream-restore events")
	haFlag := flag.Bool("ha", false,
		"run the E-HA control-plane HA experiment (alone unless -run adds more); "+
			"-seed and -chaos override its seed and schedule sweeps, -check verifies the oracle")
	grayFlag := flag.Bool("gray", false,
		"run the E-GRAY gray-failure availability experiment (alone unless -run adds more); "+
			"-seed and -chaos override its seed and schedule sweeps, -check verifies the bounds")
	checkFlag := flag.Bool("check", false,
		"after the run, print the oracle/linearizability harness verdict and exit nonzero on any mismatch")
	bench := flag.String("bench", "",
		"run perf-trajectory families instead of experiments: a comma list of "+
			strings.Join(perf.Families(), ",")+" or 'all'")
	benchOut := flag.String("bench-out", "",
		"directory to write BENCH_<family>.json results into (with -bench)")
	benchDiff := flag.String("bench-diff", "",
		"directory holding baseline BENCH_<family>.json files to diff against; exit 1 on regression (with -bench)")
	benchQuick := flag.Bool("bench-quick", false, "CI-sized bench inputs (quick baselines only diff against quick runs)")
	benchSeed := flag.Uint64("bench-seed", 42, "workload seed for -bench")
	benchThreshold := flag.Float64("bench-threshold", perf.DefaultThreshold,
		"relative metric change treated as a regression by -bench-diff")
	benchInject := flag.Float64("bench-inject", 0,
		"TESTING: scale measured throughput metrics by this factor before diffing "+
			"(e.g. 0.3 fakes a 70% slowdown so the gate can be self-tested)")
	flag.Parse()

	if *bench != "" {
		os.Exit(runBench(*bench, *benchOut, *benchDiff, *benchQuick, *benchSeed, *benchThreshold, *benchInject))
	}

	if *haFlag {
		spec, err := loadChaosSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-chaos: %v\n", err)
			os.Exit(2)
		}
		experiments.SetHAConfig(*seed, spec)
		if *runList == "" {
			*runList = "E-HA"
		} else {
			*runList += ",E-HA"
		}
	}

	if *grayFlag {
		spec, err := loadChaosSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-chaos: %v\n", err)
			os.Exit(2)
		}
		experiments.SetGrayConfig(*seed, spec)
		if *runList == "" {
			*runList = "E-GRAY"
		} else {
			*runList += ",E-GRAY"
		}
	}

	if *seed != 0 || *failProb != 0 || *chaosSpec != "" {
		spec, err := loadChaosSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-chaos: %v\n", err)
			os.Exit(2)
		}
		experiments.SetFaultConfig(*seed, *failProb, spec)
	}
	if *seed != 0 || *ckptInterval != 0 || *streamChaos != "" {
		spec, err := loadChaosSpec(*streamChaos)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-stream-chaos: %v\n", err)
			os.Exit(2)
		}
		experiments.SetStreamFaultConfig(*seed, *ckptInterval, spec)
	}

	var (
		reg   *metrics.Registry
		rec   *trace.Recorder
		store *obs.ReportStore
	)
	if *metricsAddr != "" || *traceOut != "" {
		reg = metrics.NewRegistry()
		rec = trace.New()
		store = obs.NewReportStore()
		experiments.EnableObservability(reg, rec, store)
	}
	if *metricsAddr != "" {
		go func() {
			if err := http.ListenAndServe(*metricsAddr, obs.NewMux(reg, rec, store)); err != nil {
				fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
				os.Exit(1)
			}
		}()
		fmt.Fprintf(os.Stderr, "serving /metrics, /debug/trace, /debug/jobs on %s\n", *metricsAddr)
	}

	scale := experiments.Full
	if *small {
		scale = experiments.Small
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t0 := time.Now()
		table := r.Run(scale)
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n", r.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q\n", *runList)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))

	if *checkFlag {
		summary, ok := experiments.CheckReport()
		fmt.Println(summary)
		if experiments.CheckCount() == 0 {
			fmt.Fprintln(os.Stderr, "-check: no oracle comparisons ran (include EFT, E-SFT, E-HA, E-GRAY or E5 in -run)")
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := rec.WriteChromeTrace(f); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d spans to %s (load in chrome://tracing or ui.perfetto.dev)\n",
			rec.Len(), *traceOut)
	}
	if *metricsAddr != "" {
		// Keep the endpoint alive so the finished run can still be scraped
		// and inspected; Ctrl-C exits.
		fmt.Fprintf(os.Stderr, "done; still serving on %s — Ctrl-C to exit\n", *metricsAddr)
		select {}
	}
}

// runBench executes the selected perf families, optionally writes their
// BENCH_<family>.json files and/or diffs them against a baseline
// directory. Returns the process exit code: 0 clean, 1 on regression or
// shape break, 2 on usage/run errors.
func runBench(list, outDir, diffDir string, quickMode bool, seed uint64, threshold, inject float64) int {
	var fams []string
	if list == "all" {
		fams = perf.Families()
	} else {
		for _, f := range strings.Split(list, ",") {
			fams = append(fams, strings.TrimSpace(f))
		}
	}
	failed := false
	for _, fam := range fams {
		t0 := time.Now()
		res, err := perf.Run(fam, perf.Options{Quick: quickMode, Seed: seed})
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench %s: %v\n", fam, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "bench %s: %d windows in %v\n",
			fam, len(res.Windows), time.Since(t0).Round(time.Millisecond))
		if inject > 0 && inject != 1 {
			for k, v := range res.Metrics {
				if strings.HasSuffix(k, "_per_sec") {
					res.Metrics[k] = v * inject
				}
			}
			fmt.Fprintf(os.Stderr, "bench %s: throughput metrics scaled by %g (-bench-inject)\n", fam, inject)
		}
		if outDir != "" {
			path, err := res.WriteFile(outDir)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench %s: %v\n", fam, err)
				return 2
			}
			fmt.Fprintf(os.Stderr, "bench %s: wrote %s\n", fam, path)
		}
		if diffDir != "" {
			basePath := diffDir + string(os.PathSeparator) + perf.Filename(fam)
			base, err := perf.Load(basePath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench %s: baseline: %v\n", fam, err)
				return 2
			}
			rep := perf.Diff(base, res, perf.DiffOptions{Threshold: threshold})
			fmt.Print(rep.String())
			if !rep.OK() {
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

// loadChaosSpec resolves the -chaos flag: a path to a schedule file is
// read, anything else (a preset name or inline schedule text) passes
// through for the experiment to parse against its cluster size.
func loadChaosSpec(spec string) (string, error) {
	if spec == "" {
		return "", nil
	}
	if b, err := os.ReadFile(spec); err == nil {
		return string(b), nil
	}
	return spec, nil
}
