// Command hpbdc-bench runs the reconstructed evaluation suite (DESIGN.md,
// experiments E1..E12) and prints each experiment's table.
//
//	hpbdc-bench                 # run everything at full scale
//	hpbdc-bench -small          # quick pass (CI-sized inputs)
//	hpbdc-bench -run E1,E5,E12  # a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	small := flag.Bool("small", false, "run CI-sized inputs instead of full scale")
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	flag.Parse()

	scale := experiments.Full
	if *small {
		scale = experiments.Small
	}
	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	start := time.Now()
	ran := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		t0 := time.Now()
		table := r.Run(scale)
		table.Fprint(os.Stdout)
		fmt.Printf("  [%s completed in %v]\n", r.ID, time.Since(t0).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%q\n", *runList)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
}
