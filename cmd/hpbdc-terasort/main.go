// Command hpbdc-terasort runs a configurable TeraSort on the simulated
// cluster and validates the output.
//
//	hpbdc-terasort -records 1000000 -nodes 16 -transport rdma
//	hpbdc-terasort -report -trace-out sort.json
//	hpbdc-terasort -json > terasort.json       # perf-schema result JSON
//	hpbdc-terasort -json -bench-diff .         # diff vs BENCH_terasort.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	hpbdc "repro"
	"repro/internal/chaos"
	"repro/internal/perf"
	"repro/internal/workload"
)

func main() {
	records := flag.Int("records", 200_000, "records to sort (100 bytes each)")
	nodes := flag.Int("nodes", 8, "cluster size")
	transport := flag.String("transport", "rdma", "network model: rdma, tcp, ipoib")
	codec := flag.String("codec", "none", "shuffle compression: none, rle, lz, flate")
	seed := flag.Uint64("seed", 1, "workload, fault-injection and chaos seed")
	failProb := flag.Float64("fail-prob", 0, "transient task failure probability")
	chaosSpec := flag.String("chaos", "",
		"chaos schedule: a preset name (crash, partition, straggler, flaky, mixed), schedule text or a schedule file")
	speculation := flag.Bool("speculation", false, "launch speculative backups for straggler tasks")
	report := flag.Bool("report", false, "print the job report (stage breakdown, stragglers, shuffle skew)")
	traceOut := flag.String("trace-out", "", "write a Chrome/Perfetto trace JSON to this file")
	jsonOut := flag.Bool("json", false,
		"run through the perf harness and print a BENCH-schema result JSON instead of the human summary "+
			"(uses the shared perf topology so results are comparable to BENCH_terasort.json)")
	quick := flag.Bool("quick", false, "CI-sized workload defaults (with -json)")
	benchOut := flag.String("bench-out", "", "also write BENCH_terasort.json into this directory (with -json)")
	benchDiff := flag.String("bench-diff", "",
		"diff the result against BENCH_terasort.json in this directory; exit 1 on regression (with -json)")
	flag.Parse()

	if *jsonOut {
		// Workload-shaping flags only carry over when set explicitly, so a
		// bare -json run stays comparable to the committed baseline.
		opts := perf.Options{Quick: *quick}
		if flagWasSet("seed") {
			opts.Seed = *seed
		}
		if flagWasSet("records") {
			opts.Records = *records
		}
		if flagWasSet("transport") {
			opts.Transport = *transport
		}
		os.Exit(emitPerfResult("terasort", opts, *benchOut, *benchDiff))
	}

	racks := *nodes / 4
	if racks < 1 {
		racks = 1
	}
	var sched chaos.Schedule
	if *chaosSpec != "" {
		spec := *chaosSpec
		if b, err := os.ReadFile(spec); err == nil {
			spec = string(b)
		}
		var err error
		sched, err = chaos.Load(spec, *nodes)
		if err != nil {
			log.Fatalf("-chaos: %v", err)
		}
	}
	ctx := hpbdc.New(hpbdc.Config{
		Racks:         racks,
		NodesPerRack:  *nodes / racks,
		Transport:     *transport,
		ShuffleCodec:  *codec,
		Seed:          *seed,
		TaskFailProb:  *failProb,
		Speculation:   *speculation,
		Chaos:         sched,
		EnableTracing: *report || *traceOut != "",
	})
	parts := *nodes * 2
	gen := hpbdc.SourceFunc(ctx, parts, func(part int) []hpbdc.Pair[string, string] {
		recs := workload.TeraGen(*records/parts, *seed+uint64(part))
		out := make([]hpbdc.Pair[string, string], len(recs))
		for i, r := range recs {
			out[i] = hpbdc.Pair[string, string]{Key: string(r.Key), Value: string(r.Value)}
		}
		return out
	})

	start := time.Now()
	sorted, err := hpbdc.SortByKey(gen, hpbdc.StringCodec, hpbdc.StringCodec, parts, 128)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sorted.CollectPartitions()
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	n, prev := 0, ""
	for _, part := range out {
		for _, p := range part {
			if p.Key < prev {
				log.Fatalf("output not sorted at record %d", n)
			}
			prev = p.Key
			n++
		}
	}
	reg := ctx.Engine().Reg
	fmt.Printf("sorted %d records (%.1f MB) on %d nodes over %s in %v\n",
		n, float64(n)*100/1e6, *nodes, *transport, wall.Round(time.Millisecond))
	fmt.Printf("simulated network time: %v; shuffle raw %d B, wire %d B, %d spills\n",
		ctx.Engine().NetTime().Round(time.Millisecond),
		reg.Counter("shuffle_raw_bytes").Value(),
		reg.Counter("shuffle_wire_bytes").Value(),
		reg.Counter("shuffle_spills").Value())
	if sched != nil || *failProb > 0 {
		fmt.Printf("recovery: %d retries, %d speculative wins, %d quarantined nodes, %d blocked fetches, %d/%d chaos events\n",
			reg.Counter("task_retries").Value(),
			reg.Counter("speculative_wins").Value(),
			reg.Counter("quarantined_nodes").Value(),
			reg.Counter("partition_blocked_fetches").Value(),
			ctx.Chaos().Applied(), len(sched))
	}
	if *report {
		fmt.Print(ctx.Report("terasort").String())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := ctx.Tracer().WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", *traceOut)
	}
}

// flagWasSet reports whether the named flag was passed explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// emitPerfResult runs a perf family and prints its BENCH-schema JSON to
// stdout; optionally writes/diffs the baseline file. Returns the exit
// code.
func emitPerfResult(family string, opts perf.Options, outDir, diffDir string) int {
	res, err := perf.Run(family, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := res.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	os.Stdout.Write(b)
	if outDir != "" {
		if _, err := res.WriteFile(outDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if diffDir != "" {
		base, err := perf.Load(filepath.Join(diffDir, perf.Filename(family)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		rep := perf.Diff(base, res, perf.DiffOptions{})
		fmt.Fprint(os.Stderr, rep.String())
		if !rep.OK() {
			return 1
		}
	}
	return 0
}
