// Command hpbdc-kvbench drives the Dynamo-style KV store with a skewed
// operation mix and prints throughput, latency and consistency-machinery
// activity.
//
//	hpbdc-kvbench -ops 500000 -r 2 -w 2 -skew 0.99 -transport tcp
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	ops := flag.Int("ops", 200_000, "operations to run")
	keys := flag.Int("keys", 100_000, "distinct keys")
	n := flag.Int("n", 3, "replication factor")
	r := flag.Int("r", 2, "read quorum")
	w := flag.Int("w", 2, "write quorum")
	skew := flag.Float64("skew", 0.99, "Zipf exponent (0 = uniform)")
	readFrac := flag.Float64("reads", 0.9, "fraction of reads")
	valueSize := flag.Int("value", 128, "value size in bytes")
	transport := flag.String("transport", "tcp", "network model: rdma, tcp, ipoib")
	nodes := flag.Int("nodes", 8, "cluster size")
	checkFlag := flag.Bool("check", false,
		"after the benchmark, capture a concurrent client history and verify linearizability; exit nonzero on violation")
	stale := flag.Bool("stale", false,
		"enable the stale-read fault injection (with -check, demonstrates the checker catching the violation)")
	flag.Parse()

	var model netsim.Model
	switch *transport {
	case "rdma":
		model = netsim.RDMA40G
	case "ipoib":
		model = netsim.IPoIB40G
	default:
		model = netsim.TCP40G
	}
	racks := *nodes / 4
	if racks < 1 {
		racks = 1
	}
	fab := netsim.NewFabric(topology.TwoTier(racks, *nodes/racks, 2), model)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: *n, R: *r, W: *w})
	if err != nil {
		log.Fatal(err)
	}

	trace := workload.KVOps(*ops, *keys, *skew, *readFrac, *valueSize, 7)
	start := time.Now()
	notFound := 0
	for i, op := range trace {
		coord := topology.NodeID(i % *nodes)
		switch op.Kind {
		case workload.OpPut:
			if _, err := store.Put(coord, op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		case workload.OpGet:
			if _, _, err := store.Get(coord, op.Key); err != nil {
				if err == kvstore.ErrNotFound {
					notFound++
					continue
				}
				log.Fatal(err)
			}
		}
	}
	elapsed := time.Since(start)

	get := store.Reg.Histogram("get_latency_ns").Snapshot()
	put := store.Reg.Histogram("put_latency_ns").Snapshot()
	fmt.Printf("%d ops on %d nodes (N=%d R=%d W=%d, %s, zipf %.2f) in %v: %.0f ops/s\n",
		*ops, *nodes, *n, *r, *w, model.Name, *skew, elapsed.Round(time.Millisecond),
		float64(*ops)/elapsed.Seconds())
	fmt.Printf("get: mean %v p99 %v  (%d misses)\n",
		time.Duration(int64(get.Mean)).Round(time.Microsecond),
		time.Duration(get.P99).Round(time.Microsecond), notFound)
	fmt.Printf("put: mean %v p99 %v\n",
		time.Duration(int64(put.Mean)).Round(time.Microsecond),
		time.Duration(put.P99).Round(time.Microsecond))
	fmt.Printf("read repairs: %d, hinted handoffs: %d\n",
		store.Reg.Counter("read_repairs").Value(),
		store.Reg.Counter("hinted_handoffs").Value())

	if *checkFlag {
		if *stale {
			store.SetStaleReads(true)
			fmt.Println("stale-read fault injection ENABLED — the check below should fail")
		}
		h := check.CaptureHistory(store, check.CaptureConfig{
			Clients: 4, Waves: 50, Keys: 8, Nodes: *nodes,
			ReadFraction: 0.4, DeleteFraction: 0.1, Seed: 7,
			IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
		})
		verdict := check.Linearizable(h)
		fmt.Printf("linearizability: %s\n", verdict)
		if !verdict.OK {
			os.Exit(1)
		}
	}
}
