// Command hpbdc-kvbench drives the Dynamo-style KV store with a skewed
// operation mix and prints throughput, latency and consistency-machinery
// activity.
//
//	hpbdc-kvbench -ops 500000 -r 2 -w 2 -skew 0.99 -transport tcp
//	hpbdc-kvbench -json -ops 20000 > kv.json   # perf-schema result JSON
//	hpbdc-kvbench -json -bench-diff .          # diff against BENCH_kv.json
//	hpbdc-kvbench -txn -ops 2000 -check        # sharded 2PC mix + strict serializability
//	hpbdc-kvbench -txn -txn-chaos -check       # same, under the "txn" chaos preset
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/perf"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	ops := flag.Int("ops", 200_000, "operations to run")
	keys := flag.Int("keys", 100_000, "distinct keys")
	n := flag.Int("n", 3, "replication factor")
	r := flag.Int("r", 2, "read quorum")
	w := flag.Int("w", 2, "write quorum")
	skew := flag.Float64("skew", 0.99, "Zipf exponent (0 = uniform)")
	readFrac := flag.Float64("reads", 0.9, "fraction of reads")
	valueSize := flag.Int("value", 128, "value size in bytes")
	transport := flag.String("transport", "tcp", "network model: rdma, tcp, ipoib")
	nodes := flag.Int("nodes", 8, "cluster size")
	deadline := flag.Duration("deadline", 0,
		"per-op virtual budget: run the mix through GetCtx/PutCtx with this deadline; overruns count as timeouts instead of results")
	admissionMult := flag.Float64("admission", 0,
		"after the mix, drive an open-loop overload run at this multiple of the measured capacity through the admission stack and print goodput/shed")
	checkFlag := flag.Bool("check", false,
		"after the benchmark, capture a concurrent client history and verify linearizability; exit nonzero on violation")
	stale := flag.Bool("stale", false,
		"enable the stale-read fault injection (with -check, demonstrates the checker catching the violation)")
	jsonOut := flag.Bool("json", false,
		"run through the perf harness and print a BENCH-schema result JSON instead of the human summary "+
			"(uses the shared perf topology and quorum so results are comparable to BENCH_kv.json)")
	benchSeed := flag.Uint64("seed", 42, "workload seed (with -json)")
	quick := flag.Bool("quick", false, "CI-sized workload defaults (with -json)")
	benchOut := flag.String("bench-out", "", "also write BENCH_kv.json into this directory (with -json)")
	benchDiff := flag.String("bench-diff", "",
		"diff the result against BENCH_kv.json in this directory; exit 1 on regression (with -json)")
	txnMode := flag.Bool("txn", false,
		"drive the range-sharded transactional plane instead of the quorum store: multi-key 2PC mix "+
			"with a mid-run split and merge; -check verifies strict serializability, -stale injects dirty reads")
	txnSpan := flag.Int("txn-span", 2, "distinct keys touched per transaction (with -txn)")
	txnGroups := flag.Int("txn-groups", 2, "raft replication groups backing the ranges (with -txn)")
	txnChaos := flag.Bool("txn-chaos", false,
		"replay the \"txn\" chaos preset (coordinator crashes bracketing the commit point) during the run (with -txn)")
	gray := flag.Bool("gray", false,
		"inject gray one-way link faults mid-run (with -txn): every group's leader is inbound-isolated "+
			"for a quarter of the mix then healed; prints per-group term growth and CheckQuorum step-downs")
	flag.Parse()

	if *txnMode {
		runTxn(*ops, *keys, *skew, *valueSize, *txnSpan, *txnGroups, *benchSeed, *txnChaos, *gray, *checkFlag, *stale)
		return
	}
	if *gray {
		fmt.Fprintln(os.Stderr, "-gray requires -txn (gray faults target the raft-backed sharded plane)")
		os.Exit(2)
	}

	if *jsonOut {
		// Workload-shaping flags only carry over when the user set them
		// explicitly; otherwise the perf harness defaults apply, keeping the
		// result comparable to the committed baseline.
		opts := perf.Options{Quick: *quick, Seed: *benchSeed}
		if flagWasSet("ops") {
			opts.Ops = *ops
		}
		if flagWasSet("keys") {
			opts.Keys = *keys
		}
		if flagWasSet("skew") {
			opts.Skew = *skew
		}
		if flagWasSet("reads") {
			opts.ReadFrac = *readFrac
		}
		if flagWasSet("value") {
			opts.ValueSize = *valueSize
		}
		if flagWasSet("transport") {
			opts.Transport = *transport
		}
		os.Exit(emitPerfResult("kv", opts, *benchOut, *benchDiff))
	}

	runClassic(ops, keys, n, r, w, skew, readFrac, valueSize, transport, nodes, checkFlag, stale,
		*deadline, *admissionMult)
}

// runTxn drives the range-sharded transactional plane: a read-modify-write
// 2PC mix from workload.TxnOps with a split and a merge mid-run, optionally
// under the "txn" chaos preset and/or a gray one-way fault episode,
// finishing with orphan recovery and the zero-locks / zero-records
// invariants. With -check it additionally captures a concurrent
// multi-client history and verdicts strict serializability.
func runTxn(ops, keys int, skew float64, valueSize, span, groups int, seed uint64,
	withChaos, gray, checkFlag, dirty bool) {
	if !flagWasSet("ops") {
		ops = 2000 // 2PC through the raft sim is heavier than a quorum op
	}
	s := kvstore.NewSharded(kvstore.ShardedConfig{
		Seed: seed, Groups: groups,
		InitialSplits: []string{fmt.Sprintf("key-%08d", keys/2)},
		MaxOpAttempts: 16, MaxTxnAttempts: 8,
	})

	var ctl *chaos.Controller
	if withChaos {
		sched, err := chaos.Preset("txn", groups)
		if err != nil {
			log.Fatal(err)
		}
		ctl = chaos.New(sched, seed, chaos.Targets{Nodes: groups, Txn: s}, s.Reg)
	}

	grayBase := make([]uint64, groups)
	if gray {
		for g := 0; g < groups; g++ {
			grayBase[g] = s.GroupMaxTerm(g)
		}
	}

	trace := workload.TxnOps(workload.TxnSpec{
		N: ops, Keys: keys, Span: span, Skew: skew, ValueSize: valueSize, Seed: seed,
	})
	ctx := context.Background()
	conflicts, orphaned := 0, 0
	tickEvery := ops / 12
	if tickEvery < 1 {
		tickEvery = 1
	}
	for i, tx := range trace {
		if ctl != nil && i%tickEvery == 0 {
			ctl.Tick()
		}
		if gray {
			switch i {
			case ops / 4: // inbound-isolate every leader: one-way gray cut
				for g := 0; g < groups; g++ {
					lead := s.GroupLeader(g)
					for m := 0; m < s.GroupMembers(g); m++ {
						if m != lead && lead >= 0 {
							s.CutGroupLink(g, m, lead)
						}
					}
				}
			case ops / 2:
				for g := 0; g < groups; g++ {
					for from := 0; from < s.GroupMembers(g); from++ {
						for to := 0; to < s.GroupMembers(g); to++ {
							if from != to {
								s.HealGroupLink(g, from, to)
							}
						}
					}
				}
			}
		}
		switch i {
		case ops / 3:
			if err := s.Split(fmt.Sprintf("key-%08d", keys/4)); err != nil && err != kvstore.ErrRangeBusy {
				log.Fatalf("split: %v", err)
			}
		case 2 * ops / 3:
			if err := s.Merge(fmt.Sprintf("key-%08d", keys/4)); err != nil && err != kvstore.ErrRangeBusy {
				log.Fatalf("merge: %v", err)
			}
		}
		switch _, err := s.Txn(ctx, tx.Reads, tx.Writes); {
		case err == nil:
		case errors.Is(err, kvstore.ErrTxnConflict),
			errors.Is(err, kvstore.ErrTxnAborted),
			errors.Is(err, kvstore.ErrKeyLocked),
			errors.Is(err, kvstore.ErrDeadlineExceeded):
			conflicts++
		case errors.Is(err, kvstore.ErrTxnOrphaned):
			orphaned++ // ambiguous: resolved below by recovery, never dangling
		default:
			log.Fatalf("txn %d: %v", i, err)
		}
	}
	for ctl != nil && !ctl.Done() {
		ctl.Tick()
	}
	if err := s.Recover(); err != nil {
		log.Fatalf("recover: %v", err)
	}
	locks, err := s.LockCount()
	if err != nil {
		log.Fatal(err)
	}
	pending, err := s.PendingTxnRecords()
	if err != nil {
		log.Fatal(err)
	}

	virtual := s.VirtualCost()
	committed := s.Reg.Counter("txn_committed").Value()
	recovered := s.Reg.Counter("txn_recovered_aborted").Value() +
		s.Reg.Counter("txn_recovered_resumed").Value()
	fmt.Printf("%d txns (span %d) over %d ranges x %d groups in %v virtual: %.0f txn/s\n",
		ops, span, s.RangeCount(), groups, virtual.Round(time.Millisecond),
		float64(ops)/virtual.Seconds())
	fmt.Printf("committed %d, clean aborts %d, ambiguous %d (recovery resolved %d)\n",
		committed, conflicts, orphaned, recovered)
	fmt.Printf("after recovery: %d locks, %d pending txn records\n", locks, pending)
	if locks != 0 || pending != 0 {
		fmt.Println("INVARIANT VIOLATION: locks/records left dangling")
		os.Exit(1)
	}
	if gray {
		for g := 0; g < groups; g++ {
			fmt.Printf("gray group %d: term +%d, step-downs %d\n",
				g, s.GroupMaxTerm(g)-grayBase[g], s.GroupStepDowns(g))
		}
	}

	if checkFlag {
		if dirty {
			s.SetDirtyReads(true)
			fmt.Println("dirty-read fault injection ENABLED — the check below should fail")
		}
		ops := check.CaptureTxnHistory(s, check.TxnCaptureConfig{
			Clients: 4, Waves: 20, Keys: 8, TxnKeys: span,
			ReadFraction: 0.3, TxnFraction: 0.4, Seed: seed,
			NoEffect: func(err error) bool {
				return errors.Is(err, kvstore.ErrTxnConflict) ||
					errors.Is(err, kvstore.ErrTxnAborted) ||
					errors.Is(err, kvstore.ErrKeyLocked) ||
					errors.Is(err, kvstore.ErrDeadlineExceeded)
			},
		})
		s.SetDirtyReads(false)
		verdict := check.CheckTxns(ops)
		fmt.Printf("strict serializability: %s\n", verdict)
		if !verdict.OK {
			os.Exit(1)
		}
	}
}

// flagWasSet reports whether the named flag was passed explicitly.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// emitPerfResult runs a perf family and prints its BENCH-schema JSON to
// stdout; optionally writes/diffs the baseline file. Returns the exit
// code.
func emitPerfResult(family string, opts perf.Options, outDir, diffDir string) int {
	res, err := perf.Run(family, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := res.Encode()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	os.Stdout.Write(b)
	if outDir != "" {
		if _, err := res.WriteFile(outDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if diffDir != "" {
		base, err := perf.Load(filepath.Join(diffDir, perf.Filename(family)))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		rep := perf.Diff(base, res, perf.DiffOptions{})
		fmt.Fprint(os.Stderr, rep.String())
		if !rep.OK() {
			return 1
		}
	}
	return 0
}

func runClassic(ops, keys, n, r, w *int, skew, readFrac *float64, valueSize *int,
	transport *string, nodes *int, checkFlag, stale *bool,
	deadline time.Duration, admissionMult float64) {
	var model netsim.Model
	switch *transport {
	case "rdma":
		model = netsim.RDMA40G
	case "ipoib":
		model = netsim.IPoIB40G
	default:
		model = netsim.TCP40G
	}
	racks := *nodes / 4
	if racks < 1 {
		racks = 1
	}
	fab := netsim.NewFabric(topology.TwoTier(racks, *nodes/racks, 2), model)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: *n, R: *r, W: *w})
	if err != nil {
		log.Fatal(err)
	}

	trace := workload.KVOps(*ops, *keys, *skew, *readFrac, *valueSize, 7)
	start := time.Now()
	notFound, timeouts := 0, 0
	for i, op := range trace {
		coord := topology.NodeID(i % *nodes)
		ctx := context.Background()
		if deadline > 0 {
			ctx = admission.WithBudget(ctx, deadline)
		}
		var err error
		switch op.Kind {
		case workload.OpPut:
			if deadline > 0 {
				_, err = store.PutCtx(ctx, coord, op.Key, op.Value)
			} else {
				_, err = store.Put(coord, op.Key, op.Value)
			}
		case workload.OpGet:
			if deadline > 0 {
				_, _, err = store.GetCtx(ctx, coord, op.Key)
			} else {
				_, _, err = store.Get(coord, op.Key)
			}
		}
		switch {
		case err == nil:
		case err == kvstore.ErrNotFound:
			notFound++
		case admission.IsDeadline(err):
			timeouts++
		default:
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	get := store.Reg.Histogram("get_latency_ns").Snapshot()
	put := store.Reg.Histogram("put_latency_ns").Snapshot()
	fmt.Printf("%d ops on %d nodes (N=%d R=%d W=%d, %s, zipf %.2f) in %v: %.0f ops/s\n",
		*ops, *nodes, *n, *r, *w, model.Name, *skew, elapsed.Round(time.Millisecond),
		float64(*ops)/elapsed.Seconds())
	fmt.Printf("get: mean %v p99 %v  (%d misses)\n",
		time.Duration(int64(get.Mean)).Round(time.Microsecond),
		time.Duration(get.P99).Round(time.Microsecond), notFound)
	fmt.Printf("put: mean %v p99 %v\n",
		time.Duration(int64(put.Mean)).Round(time.Microsecond),
		time.Duration(put.P99).Round(time.Microsecond))
	fmt.Printf("read repairs: %d, hinted handoffs: %d\n",
		store.Reg.Counter("read_repairs").Value(),
		store.Reg.Counter("hinted_handoffs").Value())
	if deadline > 0 {
		fmt.Printf("deadline %v: %d timeouts (%.2f%%)\n",
			deadline, timeouts, 100*float64(timeouts)/float64(*ops))
	}

	if admissionMult > 0 {
		runOverload(store, *nodes, admissionMult)
	}

	if *checkFlag {
		if *stale {
			store.SetStaleReads(true)
			fmt.Println("stale-read fault injection ENABLED — the check below should fail")
		}
		h := check.CaptureHistory(store, check.CaptureConfig{
			Clients: 4, Waves: 50, Keys: 8, Nodes: *nodes,
			ReadFraction: 0.4, DeleteFraction: 0.1, Seed: 7,
			IsNotFound: func(err error) bool { return err == kvstore.ErrNotFound },
		})
		verdict := check.Linearizable(h)
		fmt.Printf("linearizability: %s\n", verdict)
		if !verdict.OK {
			os.Exit(1)
		}
	}
}

// runOverload measures the store's closed-loop capacity from the mix it
// just served and then drives an open-loop multi-tenant arrival stream
// at mult x that capacity through the admission stack (WFQ quotas, CoDel
// shedding, retry budgets, deadline propagation) — the E-OVL regime,
// against this CLI's store build.
func runOverload(store *kvstore.Store, nodes int, mult float64) {
	get := store.Reg.Histogram("get_latency_ns").Snapshot()
	put := store.Reg.Histogram("put_latency_ns").Snapshot()
	var mean time.Duration
	if n := get.Count + put.Count; n > 0 {
		mean = time.Duration((get.Sum + put.Sum) / n)
	}
	if mean <= 0 {
		mean = time.Microsecond
	}
	capacity := float64(time.Second) / float64(mean)

	tenants := make([]workload.TenantSpec, 3)
	ids := make([]string, 3)
	weights := make([]float64, 3)
	prios := make([]int, 3)
	for i, m := range []string{"A", "B", "C"} {
		rf, _ := workload.YCSBMix(m)
		tenants[i] = workload.TenantSpec{
			ID: "ycsb-" + m, RatePerSec: mult * capacity / 3,
			Weight: 1, Priority: i, ReadFrac: rf, Keys: 512, Skew: 0.99, ValueSize: 128,
		}
		ids[i], weights[i], prios[i] = tenants[i].ID, 1, i
	}
	quotas := admission.QuotasFor(ids, weights, prios, 0.95*capacity)
	for i := range quotas {
		quotas[i].Burst = quotas[i].Rate * 0.02
	}
	res := admission.NewSim(admission.SimConfig{
		Tenants:     tenants,
		Duration:    time.Second,
		Seed:        7,
		Nodes:       nodes,
		Deadline:    50 * mean,
		MaxAttempts: 3,
		Backoff:     5 * mean,
		RetryRatio:  0.1,
		Admission: &admission.Config{
			Tenants:  quotas,
			Target:   4 * mean,
			Interval: 40 * mean,
			MaxQueue: 256,
		},
		Serve: func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
			if op.Kind == workload.OpPut {
				return store.PutCtx(ctx, coord, op.Key, op.Value)
			}
			_, lat, err := store.GetCtx(ctx, coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
			return lat, err
		},
	}).Run()

	fmt.Printf("overload %.1fx capacity (%.0f ops/s, mean %v, deadline %v):\n",
		mult, capacity, mean, 50*mean)
	fmt.Printf("  offered %d, goodput %d (%.0f/s), shed %d (quota %d, queue %d, sojourn %d)\n",
		res.Offered, res.Goodput, res.GoodputPerSec,
		res.ShedQuota+res.ShedQueue+res.ShedSojourn,
		res.ShedQuota, res.ShedQueue, res.ShedSojourn)
	fmt.Printf("  timeouts %d, retries %d (suppressed %d), admitted p99 %v p999 %v\n",
		res.Timeouts, res.Retries, res.RetriesSuppressed,
		time.Duration(res.AdmittedLatency.P99).Round(time.Microsecond),
		time.Duration(res.AdmittedLatency.P999).Round(time.Microsecond))
}
