package hpbdc

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// runStreamFT runs the windowed-aggregation pipeline over a deterministic
// generated stream, optionally checkpointing and optionally under a chaos
// schedule of stream-crash/stream-restore events driven off the runner's
// virtual-time ticks.
func runStreamFT(t *testing.T, seed uint64, ckptEvery int, spec string) ([]stream.Result, *metrics.Registry) {
	t.Helper()
	const workers = 4
	src := stream.NewGeneratorSource(seed, 12_000, 32, time.Millisecond, 4*time.Millisecond)
	r := stream.NewRunner(stream.RunConfig{
		Pipeline:        stream.Config{Workers: workers, Window: 200 * time.Millisecond},
		CheckpointEvery: ckptEvery,
		WatermarkEvery:  150,
		WatermarkLag:    5 * time.Millisecond,
		TickEvery:       250,
	}, src)
	if spec != "" {
		sched, err := chaos.Load(spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		ctl := chaos.New(sched, seed, chaos.Targets{Nodes: workers, Stream: r}, r.Metrics())
		r.OnTick(ctl.Tick)
	}
	out, err := r.Run()
	if err != nil {
		t.Fatalf("stream run failed: %v", err)
	}
	return out, r.Metrics()
}

// streamSeeds returns the seeds to sweep: STREAM_SEEDS="1 2 3" overrides
// the default single seed (scripts/chaos.sh uses this).
func streamSeeds(t *testing.T) []uint64 {
	env := os.Getenv("STREAM_SEEDS")
	if env == "" {
		return []uint64{7}
	}
	var seeds []uint64
	for _, f := range strings.Fields(env) {
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			t.Fatalf("STREAM_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// TestStreamExactlyOnce is the headline acceptance test for streaming
// fault tolerance: a fixed-seed run that crashes workers mid-window —
// twice, with recovery from the last committed checkpoint and source-tail
// replay — must produce output byte-identical to the fault-free run, and
// the recovery machinery (checkpoints, replay, sink dedup) must actually
// have fired.
func TestStreamExactlyOnce(t *testing.T) {
	sched := `
6 stream-crash *
14 stream-restore *
20 stream-crash *
26 stream-restore *
`
	for _, seed := range streamSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			clean, cleanReg := runStreamFT(t, seed, 0, "")
			if len(clean) == 0 {
				t.Fatal("clean run produced no panes")
			}
			if v := cleanReg.Counter("panes_deduped").Value(); v != 0 {
				t.Fatalf("clean run deduped %d panes", v)
			}

			// Checkpointing alone must not perturb the output.
			ckptOnly, ckptReg := runStreamFT(t, seed, 2_000, "")
			if !reflect.DeepEqual(ckptOnly, clean) {
				t.Fatal("checkpointing a fault-free run changed its output")
			}
			if v := ckptReg.Counter("checkpoints_committed").Value(); v < 5 {
				t.Fatalf("checkpoints_committed = %d, want >= 5", v)
			}

			faulted, reg := runStreamFT(t, seed, 2_000, sched)
			if !reflect.DeepEqual(faulted, clean) {
				t.Fatalf("faulted output diverged from clean run: %d vs %d panes",
					len(faulted), len(clean))
			}
			// Byte-identical, not just structurally equal.
			if fmt.Sprint(faulted) != fmt.Sprint(clean) {
				t.Fatal("faulted output not byte-identical to clean run")
			}
			for name, min := range map[string]int64{
				"stream_worker_crashes":    2,
				"stream_recoveries":        2,
				"recovery_replayed_events": 1,
				"panes_deduped":            1,
				"checkpoints_committed":    1,
				"checkpoint_bytes":         1,
			} {
				if v := reg.Counter(name).Value(); v < min {
					t.Errorf("%s = %d, want >= %d", name, v, min)
				}
			}
		})
	}
}

// TestStreamExactlyOnceWithoutCheckpoints covers the degenerate recovery
// path: with checkpointing disabled, recovery rolls back to the implicit
// genesis checkpoint and replays the whole stream — slower, but still
// exactly-once.
func TestStreamExactlyOnceWithoutCheckpoints(t *testing.T) {
	clean, _ := runStreamFT(t, 7, 0, "")
	faulted, reg := runStreamFT(t, 7, 0, "8 stream-crash *\n16 stream-restore *\n")
	if !reflect.DeepEqual(faulted, clean) {
		t.Fatal("genesis-replay recovery diverged from clean run")
	}
	if v := reg.Counter("recovery_replayed_events").Value(); v < 2_000 {
		t.Fatalf("recovery_replayed_events = %d, want a full-prefix replay", v)
	}
	if v := reg.Counter("panes_deduped").Value(); v < 1 {
		t.Fatalf("panes_deduped = %d", v)
	}
}
