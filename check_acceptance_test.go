package hpbdc

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/kvstore"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/workload"
)

// This file is the acceptance gate for the differential-oracle and
// linearizability-checking subsystem (internal/check): every chaos
// preset, across several seeds, must reproduce the sequential reference
// output for the batch engine and a linearizable history for the KV
// store — and the deliberate stale-read fault injection must make the
// checker FAIL, proving the harness has teeth.

// chaosSeeds returns the seeds the checked sweep runs under:
// CHAOS_SEEDS="1 2 3" overrides the default trio (scripts/chaos.sh uses
// this to widen the sweep).
func chaosSeeds(t *testing.T) []uint64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return []uint64{1, 7, 42}
	}
	var seeds []uint64
	for _, f := range strings.Fields(env) {
		s, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEEDS: %v", err)
		}
		seeds = append(seeds, s)
	}
	return seeds
}

// checkedWordCount runs the canonical shuffled job under a chaos
// schedule and returns the collected rows plus the dataset handle (for
// ReferenceCollect).
func checkedWordCount(t *testing.T, sched chaos.Schedule, seed uint64) ([]Pair[string, int64], *Dataset[Pair[string, int64]]) {
	t.Helper()
	ctx := New(Config{
		Racks:        2,
		NodesPerRack: 4,
		Seed:         seed,
		Speculation:  true,
		Chaos:        sched,
	})
	corpus := workload.Text(300, 10, 250, 0.9, 3)
	words := FlatMap(Parallelize(ctx, corpus, 16), strings.Fields)
	pairs := KeyBy(words, func(w string) string { return w })
	ones := MapValues(pairs, func(string) int64 { return 1 })
	counts := ReduceByKey(ones, StringCodec, Int64Codec, 8,
		func(a, b int64) int64 { return a + b })
	rows, err := counts.Collect()
	if err != nil {
		t.Fatalf("job under chaos failed: %v", err)
	}
	return rows, counts
}

// TestChaosCheckedSweep runs every compute chaos preset under every
// sweep seed and diffs each run's output against the sequential
// single-node reference evaluation of the same plan. Recovery may
// permute records across partitions, so the comparison is a multiset.
// This is the tentpole claim: chaos never changes answers, and now a
// reference oracle — not a second distributed run — says so.
func TestChaosCheckedSweep(t *testing.T) {
	encode := func(p Pair[string, int64]) string {
		return fmt.Sprintf("%s=%d", p.Key, p.Value)
	}
	// The reference is computed once, from the clean run's plan: the
	// corpus and transforms are identical across presets and seeds.
	rows, counts := checkedWordCount(t, nil, 1)
	want := ReferenceCollect(counts)
	if len(want) == 0 {
		t.Fatal("reference evaluation produced no rows")
	}
	harness := check.NewHarness()
	harness.Record(check.DiffMultiset("clean", rows, want, encode))

	presets := chaos.PresetNames()
	if len(presets) < 5 {
		t.Fatalf("preset sweep too small: %v", presets)
	}
	seeds := chaosSeeds(t)
	for _, name := range presets {
		sched, err := chaos.Preset(name, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range seeds {
			job := fmt.Sprintf("%s/seed-%d", name, seed)
			rows, _ := checkedWordCount(t, sched, seed)
			harness.Record(check.DiffMultiset(job, rows, want, encode))
		}
	}
	if wantRuns := 1 + len(presets)*len(seeds); harness.Len() != wantRuns {
		t.Fatalf("harness recorded %d diffs, want %d", harness.Len(), wantRuns)
	}
	if !harness.OK() {
		t.Fatalf("oracle diffs failed:\n%s", harness.Summary())
	}
}

// TestChaosKVLinearizability captures a concurrent client history
// against the quorum store while each chaos preset fires between waves
// (wave-synchronized, so failure transitions never race an in-flight
// op), and requires a valid sequential witness for every preset x seed.
// Only crash/revive events act on the store — the KV layer tracks node
// liveness itself, not fabric reachability — but the sweep still runs
// every preset so a future KV/network coupling is automatically covered.
func TestChaosKVLinearizability(t *testing.T) {
	seeds := chaosSeeds(t)
	for _, name := range chaos.PresetNames() {
		for _, seed := range seeds {
			t.Run(fmt.Sprintf("%s/seed-%d", name, seed), func(t *testing.T) {
				sched, err := chaos.Preset(name, 8)
				if err != nil {
					t.Fatal(err)
				}
				fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
				store, err := kvstore.New(kvstore.Config{Fabric: fab, N: 3, R: 2, W: 2})
				if err != nil {
					t.Fatal(err)
				}
				ctl := chaos.New(sched, seed, chaos.Targets{Nodes: 8, KV: store}, store.Reg)
				h := check.CaptureHistory(store, check.CaptureConfig{
					Clients: 4, Waves: 30, Keys: 8, Nodes: 8,
					ReadFraction: 0.4, DeleteFraction: 0.1,
					Seed:         seed,
					IsNotFound:   func(err error) bool { return err == kvstore.ErrNotFound },
					BetweenWaves: func(int) { ctl.Tick() },
				})
				// Every preset's schedule fits inside 30 waves, so the whole
				// schedule must have fired — the verdict covers real chaos.
				if !ctl.Done() {
					t.Fatalf("schedule only applied %d events", ctl.Applied())
				}
				verdict := check.Linearizable(h)
				if !verdict.OK {
					t.Fatalf("history not linearizable: %s", verdict)
				}
				if verdict.Ops == 0 {
					t.Fatal("empty history: capture drove no operations")
				}
			})
		}
	}
}

// TestChaosStaleReadSelfTest proves the linearizability checker has
// teeth: with the stale-read fault injection enabled, a read that
// returns an overwritten version must be rejected, and with the
// injection disabled the same sequence must pass. A checker that cannot
// fail this test verifies nothing.
func TestChaosStaleReadSelfTest(t *testing.T) {
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
	store, err := kvstore.New(kvstore.Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	record := func(h *check.History, kind check.OpKind, key string, do func() (string, bool)) {
		inv := h.Stamp()
		val, found := do()
		ret := h.Stamp()
		h.Append(check.Op{Client: 0, Kind: kind, Key: key, Value: val,
			Found: found, Invoke: inv, Return: ret})
	}
	put := func(h *check.History, key, val string) {
		record(h, check.OpWrite, key, func() (string, bool) {
			if _, err := store.Put(0, key, []byte(val)); err != nil {
				t.Fatal(err)
			}
			return val, true
		})
	}
	get := func(h *check.History, key string) string {
		var got string
		record(h, check.OpRead, key, func() (string, bool) {
			v, _, err := store.Get(0, key)
			if err != nil {
				t.Fatal(err)
			}
			got = string(v)
			return got, true
		})
		return got
	}

	// Faulted: write v1, overwrite with v2, then read with the injection
	// serving retained overwritten versions. The read must observe v1 —
	// and the checker must reject the history.
	faulted := check.NewHistory()
	put(faulted, "k", "v1")
	put(faulted, "k", "v2")
	store.SetStaleReads(true)
	if got := get(faulted, "k"); got != "v1" {
		t.Fatalf("stale injection served %q, want the overwritten v1", got)
	}
	verdict := check.Linearizable(faulted)
	if verdict.OK {
		t.Fatal("checker accepted a stale read — the harness has no teeth")
	}
	if !strings.Contains(verdict.Detail, "k") {
		t.Fatalf("failure detail %q does not name the violating key", verdict.Detail)
	}

	// Healed: the identical sequence without the injection must pass,
	// pinning the failure above on the injected fault, not the harness.
	store.SetStaleReads(false)
	healthy := check.NewHistory()
	put(healthy, "k2", "v1")
	put(healthy, "k2", "v2")
	if got := get(healthy, "k2"); got != "v2" {
		t.Fatalf("healthy read got %q, want v2", got)
	}
	if verdict := check.Linearizable(healthy); !verdict.OK {
		t.Fatalf("healthy history rejected: %s", verdict)
	}
}
