package hpbdc

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestObservabilityAcceptance runs a job with tracing enabled, an injected
// straggler task and an injected hot-key skew, and checks the report
// catches all three: stage walls that sum within the job wall-clock, the
// slow task flagged as a straggler, and partition imbalance at least as
// large as the injected skew.
func TestObservabilityAcceptance(t *testing.T) {
	ctx := testCtx(Config{EnableTracing: true, Seed: 5})
	const parts = 6
	src := SourceFunc(ctx, parts, func(part int) []Pair[string, string] {
		if part == 0 {
			time.Sleep(30 * time.Millisecond) // injected straggler
		} else {
			time.Sleep(2 * time.Millisecond)
		}
		out := make([]Pair[string, string], 0, 33)
		for i := 0; i < 30; i++ {
			// One hot key: every map task sends ~95% of its bytes to a
			// single reduce partition.
			out = append(out, Pair[string, string]{Key: "hot", Value: strings.Repeat("x", 64)})
		}
		for i := 0; i < 3; i++ {
			out = append(out, Pair[string, string]{Key: fmt.Sprintf("u%d-%d", part, i), Value: "y"})
		}
		return out
	})
	grouped := GroupByKey(src, StringCodec, StringCodec, 4)
	if _, err := grouped.Collect(); err != nil {
		t.Fatal(err)
	}

	rep := ctx.Report("acceptance")
	if rep.Wall <= 0 || len(rep.Stages) < 2 {
		t.Fatalf("report = %+v", rep)
	}

	// Stages run sequentially, so their walls must fit in the job wall.
	var sum time.Duration
	for _, st := range rep.Stages {
		sum += st.Wall
	}
	if sum > rep.Wall {
		t.Fatalf("stage walls sum to %v, beyond job wall %v", sum, rep.Wall)
	}

	// The sleeping task must be flagged, attributed to its executor.
	var mapStage *obs.StageStats
	for i := range rep.Stages {
		if rep.Stages[i].Tasks == parts {
			mapStage = &rep.Stages[i]
		}
	}
	if mapStage == nil {
		t.Fatalf("no %d-task map stage in %+v", parts, rep.Stages)
	}
	if len(mapStage.Stragglers) == 0 {
		t.Fatalf("no stragglers detected in map stage %+v", mapStage)
	}
	top := mapStage.Stragglers[0]
	if !strings.Contains(top.Task, "p0") {
		t.Fatalf("top straggler is %q, want the sleeping task p0", top.Task)
	}
	if top.Track == "" || top.Ratio < 2 {
		t.Fatalf("straggler = %+v", top)
	}

	// The hot key concentrates ~95% of bytes in one of 4 partitions, an
	// imbalance of ~3.8x; the report must see at least 2x.
	if len(rep.Shuffles) == 0 {
		t.Fatal("no shuffle skew summary in report")
	}
	sh := rep.Shuffles[0]
	if sh.Partitions != 4 {
		t.Fatalf("shuffle partitions = %d, want 4", sh.Partitions)
	}
	if sh.Imbalance < 2 {
		t.Fatalf("imbalance = %.2f, want >= 2 for the injected hot key", sh.Imbalance)
	}
}
