// Package graph is a Pregel-style, vertex-centric BSP graph engine:
// computation proceeds in synchronized supersteps, each vertex runs a
// compute function over its inbox and sends messages along out-edges, and
// vertices vote to halt until a message reawakens them. Partitions run on
// parallel workers. PageRank, single-source shortest paths, connected
// components and degree statistics are provided as vertex programs, and
// experiment E8 measures strong scaling on R-MAT graphs.
package graph

import (
	"math"
	"sync"

	"repro/internal/workload"
)

// Graph is an immutable adjacency-list directed graph with int64 vertex
// IDs in [0, N).
type Graph struct {
	n   int64
	adj [][]workload.Edge
	in  []int64 // in-degree
}

// FromEdges builds a graph over n vertices. Edges referencing vertices
// outside [0, n) are dropped.
func FromEdges(n int64, edges []workload.Edge) *Graph {
	g := &Graph{n: n, adj: make([][]workload.Edge, n), in: make([]int64, n)}
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			continue
		}
		g.adj[e.From] = append(g.adj[e.From], e)
		g.in[e.To]++
	}
	return g
}

// NumVertices returns N.
func (g *Graph) NumVertices() int64 { return g.n }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int64 {
	var m int64
	for _, es := range g.adj {
		m += int64(len(es))
	}
	return m
}

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int64) int { return len(g.adj[v]) }

// InDegree returns vertex v's in-degree.
func (g *Graph) InDegree(v int64) int64 { return g.in[v] }

// Message is one vertex-to-vertex message.
type Message struct {
	To    int64
	Value float64
}

// VertexContext is passed to compute functions.
type VertexContext struct {
	// Superstep is the current BSP round (0-based).
	Superstep int
	// Vertex is the vertex being computed.
	Vertex int64
	// OutEdges are the vertex's outgoing edges.
	OutEdges []workload.Edge
	send     *[]Message
}

// Send emits a message for delivery next superstep.
func (c *VertexContext) Send(to int64, value float64) {
	*c.send = append(*c.send, Message{To: to, Value: value})
}

// Program is a vertex-centric computation: given the vertex's current
// state and inbox, return the new state and whether to vote to halt.
type Program func(ctx *VertexContext, state float64, inbox []float64) (float64, bool)

// RunResult reports a BSP execution.
type RunResult struct {
	State      []float64
	Supersteps int
	Messages   int64
	// TotalWork is the sum over supersteps and workers of per-worker work
	// units (vertices computed + messages handled + edges scanned).
	// CriticalWork sums, per superstep, the *maximum* per-worker work —
	// the BSP critical path. TotalWork / CriticalWork is the modeled
	// parallel speedup: what the partitioning achieves on real hardware,
	// independent of how many physical cores this host has.
	TotalWork    int64
	CriticalWork int64
}

// ModeledSpeedup returns the partitioning-limited parallel speedup
// (TotalWork / CriticalWork); 0 when the run did no work.
func (r RunResult) ModeledSpeedup() float64 {
	if r.CriticalWork == 0 {
		return 0
	}
	return float64(r.TotalWork) / float64(r.CriticalWork)
}

// Partitioning selects how vertices map to workers.
type Partitioning int

// Partitioning strategies.
const (
	// Contiguous gives each worker a consecutive vertex range — best
	// memory locality, but on power-law graphs the hub-dense low-ID range
	// overloads one worker.
	Contiguous Partitioning = iota
	// Hashed assigns vertex v to worker mix(v) mod workers, spreading
	// hubs — the standard mitigation (the E8 ablation). A bit-mixing hash
	// is essential: R-MAT hubs sit at power-of-two IDs, which a plain
	// modulo would pile back onto one worker.
	Hashed
)

// mix is the SplitMix64 finalizer.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (p Partitioning) String() string {
	if p == Hashed {
		return "hashed"
	}
	return "contiguous"
}

// RunConfig parameterizes RunWith.
type RunConfig struct {
	Workers       int
	MaxSupersteps int
	Partitioning  Partitioning
}

// Run executes program until every vertex halts with no messages in
// flight, or maxSupersteps passes. init provides each vertex's initial
// state; workers is the partition-level parallelism (contiguous ranges).
func (g *Graph) Run(program Program, init func(v int64) float64, workers, maxSupersteps int) RunResult {
	return g.RunWith(program, init, RunConfig{Workers: workers, MaxSupersteps: maxSupersteps})
}

// RunWith is Run with explicit partitioning control.
func (g *Graph) RunWith(program Program, init func(v int64) float64, cfg RunConfig) RunResult {
	workers := cfg.Workers
	maxSupersteps := cfg.MaxSupersteps
	if workers <= 0 {
		workers = 1
	}
	n := g.n
	state := make([]float64, n)
	active := make([]bool, n)
	for v := int64(0); v < n; v++ {
		state[v] = init(v)
		active[v] = true
	}
	inbox := make([][]float64, n)
	var totalMsgs int64

	res := RunResult{}
	for step := 0; step < maxSupersteps; step++ {
		// Check for quiescence.
		anyWork := false
		for v := int64(0); v < n; v++ {
			if active[v] || len(inbox[v]) > 0 {
				anyWork = true
				break
			}
		}
		if !anyWork {
			break
		}
		res.Supersteps++

		// Partition vertices across workers. Each worker routes its
		// outgoing messages into per-destination-worker buckets so
		// delivery can also run in parallel.
		chunk := (n + int64(workers) - 1) / int64(workers)
		ownerOf := func(v int64) int {
			if cfg.Partitioning == Hashed {
				return int(mix(uint64(v)) % uint64(workers))
			}
			return int(v / chunk)
		}
		outboxes := make([][][]Message, workers) // [src][dst][]Message
		workDone := make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				buckets := make([][]Message, workers)
				var flat []Message // staging slice reused by VertexContext
				var work int64
				for v := int64(0); v < n; v++ {
					if ownerOf(v) != w {
						continue
					}
					msgs := inbox[v]
					if !active[v] && len(msgs) == 0 {
						continue
					}
					flat = flat[:0]
					ctx := &VertexContext{
						Superstep: step,
						Vertex:    v,
						OutEdges:  g.adj[v],
						send:      &flat,
					}
					newState, halt := program(ctx, state[v], msgs)
					state[v] = newState
					active[v] = !halt
					work += 1 + int64(len(msgs)) + int64(len(flat))
					for _, m := range flat {
						if m.To >= 0 && m.To < n {
							d := ownerOf(m.To)
							buckets[d] = append(buckets[d], m)
						}
					}
				}
				outboxes[w] = buckets
				workDone[w] = work
			}()
		}
		wg.Wait()

		var stepMax, stepTotal int64
		for _, w := range workDone {
			stepTotal += w
			if w > stepMax {
				stepMax = w
			}
		}
		res.TotalWork += stepTotal
		res.CriticalWork += stepMax

		// Barrier: clear inboxes and deliver, one goroutine per
		// destination worker (its vertex range is private to it).
		for v := range inbox {
			inbox[v] = nil
		}
		var dwg sync.WaitGroup
		deliverWork := make([]int64, workers)
		for d := 0; d < workers; d++ {
			d := d
			dwg.Add(1)
			go func() {
				defer dwg.Done()
				var count int64
				for src := 0; src < workers; src++ {
					if outboxes[src] == nil {
						continue
					}
					for _, m := range outboxes[src][d] {
						inbox[m.To] = append(inbox[m.To], m.Value)
						count++
					}
				}
				deliverWork[d] = count
			}()
		}
		dwg.Wait()
		var dMax int64
		for _, c := range deliverWork {
			totalMsgs += c
			res.TotalWork += c
			if c > dMax {
				dMax = c
			}
		}
		res.CriticalWork += dMax
	}
	res.State = state
	res.Messages = totalMsgs
	return res
}

// ---------------------------------------------------------------------------
// Standard vertex programs

// PageRank runs `iters` fixed iterations of damped PageRank and returns
// per-vertex ranks summing to ~1.
func (g *Graph) PageRank(damping float64, iters, workers int) RunResult {
	return g.PageRankWith(damping, iters, RunConfig{Workers: workers, MaxSupersteps: iters + 2})
}

// PageRankWith is PageRank with explicit partitioning control.
func (g *Graph) PageRankWith(damping float64, iters int, cfg RunConfig) RunResult {
	if cfg.MaxSupersteps == 0 {
		cfg.MaxSupersteps = iters + 2
	}
	n := float64(g.n)
	program := func(ctx *VertexContext, state float64, inbox []float64) (float64, bool) {
		rank := state
		if ctx.Superstep > 0 {
			sum := 0.0
			for _, m := range inbox {
				sum += m
			}
			rank = (1-damping)/n + damping*sum
		}
		if ctx.Superstep < iters {
			if deg := len(ctx.OutEdges); deg > 0 {
				share := rank / float64(deg)
				for _, e := range ctx.OutEdges {
					ctx.Send(e.To, share)
				}
			}
			return rank, false
		}
		return rank, true
	}
	return g.RunWith(program, func(int64) float64 { return 1 / n }, cfg)
}

// SSSP computes shortest-path distances from source over edge weights.
// Unreachable vertices end at +Inf.
func (g *Graph) SSSP(source int64, workers int) RunResult {
	program := func(ctx *VertexContext, state float64, inbox []float64) (float64, bool) {
		best := state
		if ctx.Superstep == 0 && ctx.Vertex == source {
			best = 0
		}
		for _, m := range inbox {
			if m < best {
				best = m
			}
		}
		if best < state || (ctx.Superstep == 0 && ctx.Vertex == source) {
			for _, e := range ctx.OutEdges {
				ctx.Send(e.To, best+e.Weight)
			}
		}
		return best, true // halt; messages reactivate
	}
	return g.Run(program, func(int64) float64 { return math.Inf(1) }, workers, int(g.n)+2)
}

// ConnectedComponents labels every vertex with the smallest vertex ID
// reachable in its weakly connected component. Directed edges are treated
// as undirected via a symmetrized copy.
func (g *Graph) ConnectedComponents(workers int) RunResult {
	// Symmetrize.
	var edges []workload.Edge
	for _, es := range g.adj {
		for _, e := range es {
			edges = append(edges, e, workload.Edge{From: e.To, To: e.From, Weight: e.Weight})
		}
	}
	sym := FromEdges(g.n, edges)
	program := func(ctx *VertexContext, state float64, inbox []float64) (float64, bool) {
		best := state
		for _, m := range inbox {
			if m < best {
				best = m
			}
		}
		if best < state || ctx.Superstep == 0 {
			for _, e := range ctx.OutEdges {
				ctx.Send(e.To, best)
			}
		}
		return best, true
	}
	return sym.Run(program, func(v int64) float64 { return float64(v) }, workers, int(g.n)+2)
}

// DegreeStats returns the maximum out-degree and the mean out-degree.
func (g *Graph) DegreeStats() (maxDeg int, mean float64) {
	total := 0
	for _, es := range g.adj {
		d := len(es)
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	if g.n > 0 {
		mean = float64(total) / float64(g.n)
	}
	return maxDeg, mean
}
