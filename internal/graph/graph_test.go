package graph

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// chain builds 0 -> 1 -> 2 -> ... -> n-1 with unit weights.
func chain(n int64) *Graph {
	var edges []workload.Edge
	for i := int64(0); i < n-1; i++ {
		edges = append(edges, workload.Edge{From: i, To: i + 1, Weight: 1})
	}
	return FromEdges(n, edges)
}

func TestFromEdgesDropsOutOfRange(t *testing.T) {
	g := FromEdges(3, []workload.Edge{
		{From: 0, To: 1}, {From: 5, To: 0}, {From: 1, To: 99},
	})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.NumVertices() != 3 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
}

func TestDegrees(t *testing.T) {
	g := FromEdges(4, []workload.Edge{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 0, To: 3}, {From: 1, To: 0},
	})
	if g.OutDegree(0) != 3 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("out degrees wrong")
	}
	if g.InDegree(0) != 1 || g.InDegree(3) != 1 {
		t.Fatal("in degrees wrong")
	}
	maxDeg, mean := g.DegreeStats()
	if maxDeg != 3 || mean != 1.0 {
		t.Fatalf("stats = %d, %v", maxDeg, mean)
	}
}

func TestSSSPChain(t *testing.T) {
	g := chain(10)
	res := g.SSSP(0, 2)
	for v := int64(0); v < 10; v++ {
		if res.State[v] != float64(v) {
			t.Fatalf("dist[%d] = %v, want %d", v, res.State[v], v)
		}
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g := FromEdges(4, []workload.Edge{{From: 0, To: 1, Weight: 2}})
	res := g.SSSP(0, 1)
	if res.State[1] != 2 {
		t.Fatalf("dist[1] = %v", res.State[1])
	}
	if !math.IsInf(res.State[2], 1) || !math.IsInf(res.State[3], 1) {
		t.Fatal("unreachable vertices should be +Inf")
	}
}

func TestSSSPShorterPathWins(t *testing.T) {
	// 0->1 (10), 0->2 (1), 2->1 (2): best 0->1 is 3.
	g := FromEdges(3, []workload.Edge{
		{From: 0, To: 1, Weight: 10},
		{From: 0, To: 2, Weight: 1},
		{From: 2, To: 1, Weight: 2},
	})
	res := g.SSSP(0, 2)
	if res.State[1] != 3 {
		t.Fatalf("dist[1] = %v, want 3", res.State[1])
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	edges := workload.RMAT(8, 4, 1)
	g := FromEdges(1<<8, edges)
	res := g.PageRank(0.85, 20, 4)
	sum := 0.0
	for _, r := range res.State {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Dangling vertices leak rank in the simple formulation; the sum stays
	// in a sane band.
	if sum < 0.5 || sum > 1.01 {
		t.Fatalf("rank sum = %v", sum)
	}
}

func TestPageRankStar(t *testing.T) {
	// Star: all point to 0. Vertex 0 must have the top rank.
	var edges []workload.Edge
	for i := int64(1); i < 20; i++ {
		edges = append(edges, workload.Edge{From: i, To: 0, Weight: 1})
	}
	g := FromEdges(20, edges)
	res := g.PageRank(0.85, 15, 2)
	for v := int64(1); v < 20; v++ {
		if res.State[0] <= res.State[v] {
			t.Fatalf("hub rank %v <= leaf rank %v", res.State[0], res.State[v])
		}
	}
}

func TestPageRankDeterministicAcrossWorkerCounts(t *testing.T) {
	edges := workload.RMAT(8, 4, 9)
	g := FromEdges(1<<8, edges)
	a := g.PageRank(0.85, 10, 1)
	b := g.PageRank(0.85, 10, 8)
	for v := range a.State {
		if math.Abs(a.State[v]-b.State[v]) > 1e-12 {
			t.Fatalf("rank[%d] differs across worker counts: %v vs %v", v, a.State[v], b.State[v])
		}
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} via directed edges, {3,4} via 4->3.
	g := FromEdges(5, []workload.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 4, To: 3},
	})
	res := g.ConnectedComponents(2)
	if res.State[0] != 0 || res.State[1] != 0 || res.State[2] != 0 {
		t.Fatalf("component A labels: %v", res.State[:3])
	}
	if res.State[3] != 3 || res.State[4] != 3 {
		t.Fatalf("component B labels: %v", res.State[3:])
	}
}

func TestConnectedComponentsSingletons(t *testing.T) {
	g := FromEdges(4, nil)
	res := g.ConnectedComponents(1)
	for v := int64(0); v < 4; v++ {
		if res.State[v] != float64(v) {
			t.Fatalf("isolated vertex %d labeled %v", v, res.State[v])
		}
	}
}

func TestSupersteptTermination(t *testing.T) {
	g := chain(50)
	res := g.SSSP(0, 4)
	// A 50-chain needs ~50 supersteps, not the cap.
	if res.Supersteps < 49 || res.Supersteps > 52 {
		t.Fatalf("supersteps = %d", res.Supersteps)
	}
	if res.Messages == 0 {
		t.Fatal("no messages counted")
	}
}

func TestRMATPageRankSkew(t *testing.T) {
	edges := workload.RMAT(10, 8, 21)
	g := FromEdges(1<<10, edges)
	res := g.PageRank(0.85, 15, 4)
	var max, sum float64
	for _, r := range res.State {
		if r > max {
			max = r
		}
		sum += r
	}
	mean := sum / float64(len(res.State))
	if max < 10*mean {
		t.Fatalf("max rank %v not ≫ mean %v on a power-law graph", max, mean)
	}
}

func BenchmarkPageRank(b *testing.B) {
	edges := workload.RMAT(12, 8, 1)
	g := FromEdges(1<<12, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.PageRank(0.85, 10, 4)
	}
}

func BenchmarkSSSP(b *testing.B) {
	edges := workload.RMAT(12, 8, 2)
	g := FromEdges(1<<12, edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SSSP(0, 4)
	}
}
