package compress

import (
	"bytes"
	"errors"
	"testing"
)

// Fuzz targets: every codec must round-trip arbitrary payloads exactly,
// and every decoder must reject (never panic on) arbitrary compressed
// input.

func fuzzCodecs() []Codec {
	return []Codec{None{}, RLE{}, LZ{}, Flate{}}
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello hello hello hello"))
	f.Add(bytes.Repeat([]byte{0xAB}, 300))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range fuzzCodecs() {
			enc := c.Compress(data)
			dec, err := c.Decompress(enc)
			if err != nil {
				t.Fatalf("%s: decompress own output: %v", c.Name(), err)
			}
			if !bytes.Equal(dec, data) {
				t.Fatalf("%s: round trip changed %d bytes to %d", c.Name(), len(data), len(dec))
			}
		}
	})
}

func FuzzDecompress(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x10})
	f.Add(LZ{}.Compress([]byte("seed the corpus with a valid stream")))
	f.Add(RLE{}.Compress(bytes.Repeat([]byte("ab"), 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, c := range fuzzCodecs() {
			out, err := c.Decompress(data)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("%s: decode error is not ErrCorrupt: %v", c.Name(), err)
				}
				continue
			}
			// Whatever decoded must survive this codec's own round trip.
			redec, err := c.Decompress(c.Compress(out))
			if err != nil {
				t.Fatalf("%s: re-decode: %v", c.Name(), err)
			}
			if !bytes.Equal(redec, out) {
				t.Fatalf("%s: recompression changed the payload", c.Name())
			}
		}
	})
}
