package compress

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func codecs() []Codec {
	return []Codec{None{}, RLE{}, LZ{}, Flate{}}
}

func TestRoundTripFixtures(t *testing.T) {
	fixtures := map[string][]byte{
		"empty":      {},
		"one":        {42},
		"zeros":      make([]byte, 10000),
		"text":       []byte(strings.Repeat("the quick brown fox jumps over the lazy dog ", 200)),
		"alternate":  []byte(strings.Repeat("ab", 5000)),
		"boundary":   bytes.Repeat([]byte{0xff}, 131),
		"short-runs": []byte("aaabbbcccdddeee"),
	}
	for _, c := range codecs() {
		for name, data := range fixtures {
			comp := c.Compress(data)
			got, err := c.Decompress(comp)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Name(), name, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%s: round trip mismatch (%d vs %d bytes)", c.Name(), name, len(got), len(data))
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(data []byte) bool {
			got, err := c.Decompress(c.Compress(data))
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestRoundTripRandomLarge(t *testing.T) {
	r := rng.New(99)
	data := make([]byte, 1<<18)
	r.Bytes(data)
	for _, c := range codecs() {
		got, err := c.Decompress(c.Compress(data))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("%s failed on 256KB random data", c.Name())
		}
	}
}

func TestCompressibleDataShrinks(t *testing.T) {
	data := []byte(strings.Repeat("GET /index.html HTTP/1.1 host=example.com ", 1000))
	for _, c := range []Codec{RLE{}, LZ{}, Flate{}} {
		ratio := float64(len(c.Compress(data))) / float64(len(data))
		switch c.Name() {
		case "lz":
			if ratio > 0.2 {
				t.Fatalf("lz ratio on repetitive text = %.2f, want < 0.2", ratio)
			}
		case "flate":
			if ratio > 0.1 {
				t.Fatalf("flate ratio = %.2f, want < 0.1", ratio)
			}
		}
	}
}

func TestRLEShrinksRuns(t *testing.T) {
	data := make([]byte, 100000) // all zeros
	ratio := float64(len(RLE{}.Compress(data))) / float64(len(data))
	if ratio > 0.02 {
		t.Fatalf("RLE ratio on zeros = %.3f, want < 0.02", ratio)
	}
}

func TestOrderingFlateBeatsLZBeatsNone(t *testing.T) {
	data := []byte(strings.Repeat("user=1234 action=click page=/home referrer=/search ", 2000))
	n := len(None{}.Compress(data))
	l := len(LZ{}.Compress(data))
	f := len(Flate{}.Compress(data))
	if !(f < l && l < n) {
		t.Fatalf("ratio ordering violated: flate=%d lz=%d none=%d", f, l, n)
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	garbage := [][]byte{
		{0x7f},             // literal claims 128 bytes, none present
		{0x80},             // RLE run missing byte / LZ match missing offset
		{0x90, 0x00, 0x00}, // LZ match with offset 0
		{0x85, 0xff, 0xff}, // LZ match offset beyond output
	}
	for _, g := range garbage {
		if _, err := (LZ{}).Decompress(g); err == nil {
			t.Fatalf("LZ accepted garbage %v", g)
		}
	}
	if _, err := (RLE{}).Decompress([]byte{0x7f}); err == nil {
		t.Fatal("RLE accepted truncated literal")
	}
	if _, err := (Flate{}).Decompress([]byte{1, 2, 3}); err == nil {
		t.Fatal("flate accepted garbage")
	}
}

func TestLZOverlappingMatch(t *testing.T) {
	// "aaaa..." forces matches that overlap their own output.
	data := bytes.Repeat([]byte("a"), 1000)
	got, err := (LZ{}).Decompress((LZ{}).Compress(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("overlapping match round trip failed")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"none", "rle", "lz", "flate", ""} {
		if _, err := ByName(name); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func benchData() []byte {
	r := rng.New(7)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	var sb strings.Builder
	for sb.Len() < 1<<20 {
		sb.WriteString(words[r.Intn(len(words))])
		sb.WriteByte(' ')
	}
	return []byte(sb.String())
}

func BenchmarkCompress(b *testing.B) {
	data := benchData()
	for _, c := range codecs() {
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				_ = c.Compress(data)
			}
		})
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := benchData()
	for _, c := range codecs() {
		comp := c.Compress(data)
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := c.Decompress(comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
