// Package compress provides the block compressors the shuffle and DFS can
// route data through: a byte-level RLE codec, an LZ77-style codec with a
// hash-table matcher (Snappy-class speed/ratio trade-off), a DEFLATE
// wrapper, and a passthrough. All share one interface so experiments can
// ablate compression choice (experiment E2).
package compress

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt is returned when compressed input fails validation.
var ErrCorrupt = errors.New("compress: corrupt input")

// Codec compresses and decompresses byte blocks. Implementations are
// stateless and safe for concurrent use.
type Codec interface {
	// Name identifies the codec in reports.
	Name() string
	// Compress returns the compressed form of src.
	Compress(src []byte) []byte
	// Decompress inverts Compress.
	Decompress(src []byte) ([]byte, error)
}

// None is the passthrough codec.
type None struct{}

// Name implements Codec.
func (None) Name() string { return "none" }

// Compress implements Codec.
func (None) Compress(src []byte) []byte {
	out := make([]byte, len(src))
	copy(out, src)
	return out
}

// Decompress implements Codec.
func (None) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// RLE is byte-level run-length encoding: (count, byte) pairs for runs of 4+,
// literal blocks otherwise. Effective only on long byte runs (zero pages,
// padded records); it is the cheap baseline in the codec ablation.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Compress implements Codec. Format: sequence of blocks, each headed by a
// tag byte: 0x00-0x7f = literal run of tag+1 bytes follows; 0x80-0xff = the
// next byte repeats (tag-0x80)+4 times.
func (RLE) Compress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 128 {
				n = 128
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] && j-i < 127+4 {
			j++
		}
		if run := j - i; run >= 4 {
			flushLit(i)
			out = append(out, byte(0x80+run-4), src[i])
			i = j
			litStart = i
		} else {
			i = j
		}
	}
	flushLit(len(src))
	return out
}

// Decompress implements Codec.
func (RLE) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		if tag < 0x80 {
			n := int(tag) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: literal overruns input", ErrCorrupt)
			}
			out = append(out, src[i:i+n]...)
			i += n
		} else {
			if i >= len(src) {
				return nil, fmt.Errorf("%w: run missing byte", ErrCorrupt)
			}
			n := int(tag-0x80) + 4
			b := src[i]
			i++
			for k := 0; k < n; k++ {
				out = append(out, b)
			}
		}
	}
	return out, nil
}

// LZ is a greedy LZ77 codec with a 16-bit offset window and a hash-table
// matcher over 4-byte sequences — the Snappy-class point in the ablation:
// much faster than DEFLATE, weaker ratio.
type LZ struct{}

// Name implements Codec.
func (LZ) Name() string { return "lz" }

const (
	lzMinMatch = 4
	lzMaxMatch = 0x7f + lzMinMatch
	lzWindow   = 1 << 16
	lzHashBits = 14
)

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// Compress implements Codec. Format: tag byte per token. Tag < 0x80:
// literal run of tag+1 bytes. Tag >= 0x80: match of (tag-0x80)+4 bytes at
// 2-byte little-endian offset back.
func (LZ) Compress(src []byte) []byte {
	out := make([]byte, 0, len(src)/2+16)
	var table [1 << lzHashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	flushLit := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > 128 {
				n = 128
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i+lzMinMatch <= len(src) {
		h := lzHash(load32(src, i))
		cand := int(table[h])
		table[h] = int32(i)
		if cand >= 0 && i-cand < lzWindow && load32(src, cand) == load32(src, i) {
			// Extend the match.
			length := lzMinMatch
			for i+length < len(src) && length < lzMaxMatch && src[cand+length] == src[i+length] {
				length++
			}
			flushLit(i)
			off := i - cand
			out = append(out, byte(0x80+length-lzMinMatch), byte(off), byte(off>>8))
			i += length
			litStart = i
		} else {
			i++
		}
	}
	flushLit(len(src))
	return out
}

// Decompress implements Codec.
func (LZ) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*2)
	i := 0
	for i < len(src) {
		tag := src[i]
		i++
		if tag < 0x80 {
			n := int(tag) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("%w: literal overruns input", ErrCorrupt)
			}
			out = append(out, src[i:i+n]...)
			i += n
			continue
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("%w: match missing offset", ErrCorrupt)
		}
		length := int(tag-0x80) + lzMinMatch
		off := int(src[i]) | int(src[i+1])<<8
		i += 2
		if off == 0 || off > len(out) {
			return nil, fmt.Errorf("%w: match offset %d out of range", ErrCorrupt, off)
		}
		// Byte-at-a-time copy: matches may overlap their own output.
		pos := len(out) - off
		for k := 0; k < length; k++ {
			out = append(out, out[pos+k])
		}
	}
	return out, nil
}

// Flate wraps compress/flate at the given level — the "heavy" point in the
// codec ablation (best ratio, highest CPU).
type Flate struct {
	// Level is the flate compression level; 0 means flate.DefaultCompression.
	Level int
}

// Name implements Codec.
func (f Flate) Name() string { return "flate" }

// Compress implements Codec.
func (f Flate) Compress(src []byte) []byte {
	level := f.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		panic(err) // only on invalid level, a programming error
	}
	if _, err := w.Write(src); err != nil {
		panic(err) // bytes.Buffer cannot fail
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// Decompress implements Codec.
func (f Flate) Decompress(src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return out, nil
}

// ByName returns the codec registered under name, for CLI flags.
func ByName(name string) (Codec, error) {
	switch name {
	case "none", "":
		return None{}, nil
	case "rle":
		return RLE{}, nil
	case "lz":
		return LZ{}, nil
	case "flate":
		return Flate{}, nil
	default:
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
}
