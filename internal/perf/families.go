// The benchmark families. Each runs a fixed-seed workload against the
// simulated cluster and reduces it to a Result: a per-window trajectory
// plus Shape (seed-deterministic invariants, exact-matched by the
// differ) and Metrics (wall- or cost-model-dependent numbers, threshold
// compared). Families:
//
//	shuffle  — ShuffleBench-style matching records: generate records,
//	           select the ~1/16 that match a rule, key by rule, count
//	           per rule through a full shuffle. One window per round.
//	stream   — sustained-throughput run of the checkpointed stream
//	           engine over a replayable generator source, measuring
//	           event throughput and checkpoint cost.
//	kv       — YCSB-ish zipf read/write mix against the quorum KV
//	           store. Latencies are fully simulated (deterministic), so
//	           the trajectory is windowed by accumulated virtual time.
//	terasort — rounds of TeraGen + sampled range-partitioned sort.
//	query    — the E-SQL star-schema suite through the cost-based
//	           planner: one round per window, outputs checksummed and
//	           the columnar pushdown counters pinned as shape.
//	avail    — the E-GRAY gray-failure sweep as a trajectory: asymmetric
//	           fault schedules against control and hardened Raft
//	           clusters, one commit-confirmed probe per virtual tick.
//	           Every availability stat is a pure function of the seed,
//	           so the whole sweep gates as shape.
package perf

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	hpbdc "repro"
	"repro/internal/admission"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/cluster"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/kvstore"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/stream"
	qtable "repro/internal/table"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Options configures a family run. Zero values take family defaults;
// the binaries map their flags here so all three share one harness.
type Options struct {
	// Quick shrinks the workload for CI (same shape of measurement,
	// smaller sizes — quick results diff only against quick baselines,
	// enforced through Params).
	Quick bool
	// Seed drives all workload randomness. Default 42.
	Seed uint64
	// Transport is the netsim model name ("rdma", "tcp", "ipoib").
	// Default "rdma".
	Transport string

	// KV family: operation count, key-space size, zipf skew, read
	// fraction, value size.
	Ops, Keys int
	Skew      float64
	ReadFrac  float64
	ValueSize int

	// Shuffle/terasort: rounds and records per round.
	Rounds, Records int

	// Stream: total events and barrier cadence.
	Events          int64
	CheckpointEvery int
}

// Families lists the runnable family names in canonical order.
func Families() []string { return []string{"shuffle", "stream", "kv", "terasort", "query", "avail"} }

// Run executes one named family and returns its result.
func Run(family string, o Options) (*Result, error) {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Transport == "" {
		o.Transport = "rdma"
	}
	switch family {
	case "shuffle":
		return runShuffle(o)
	case "stream":
		return runStream(o)
	case "kv":
		return runKV(o)
	case "terasort":
		return runTerasort(o)
	case "query":
		return runQuery(o)
	case "avail":
		return runAvail(o)
	default:
		return nil, fmt.Errorf("perf: unknown family %q (have %v)", family, Families())
	}
}

// newResult stamps the invariant header fields.
func newResult(family string, o Options, params map[string]string) *Result {
	params["seed"] = fmt.Sprint(o.Seed)
	params["transport"] = o.Transport
	params["quick"] = fmt.Sprint(o.Quick)
	return &Result{
		Schema:  SchemaVersion,
		Family:  family,
		Params:  params,
		Env:     CaptureEnv(),
		Shape:   map[string]int64{},
		Metrics: map[string]float64{},
	}
}

// windowsFromSamples converts a WindowedHistogram series.
func windowsFromSamples(samples []metrics.WindowSample) []Window {
	out := make([]Window, len(samples))
	for i, s := range samples {
		out[i] = Window{
			StartNs: int64(s.Start),
			Count:   s.Count,
			PerSec:  s.PerSec,
			MeanNs:  s.Mean,
			P50Ns:   s.P50,
			P95Ns:   s.P95,
			P99Ns:   s.P99,
			P999Ns:  s.P999,
			MaxNs:   s.Max,
		}
	}
	return out
}

// ---- kv --------------------------------------------------------------------

// runKV replays a zipf-skewed read/write mix against the quorum store.
// Every operation's latency is computed by the fabric cost model, so
// the whole trajectory — windows included — is a pure function of the
// seed: windows advance by accumulated virtual time, not wall clock.
func runKV(o Options) (*Result, error) {
	if o.Ops <= 0 {
		o.Ops = 20_000
		if o.Quick {
			o.Ops = 5_000
		}
	}
	if o.Keys <= 0 {
		o.Keys = 512
	}
	if o.Skew == 0 {
		o.Skew = 0.99
	}
	if o.ReadFrac == 0 {
		o.ReadFrac = 0.8
	}
	if o.ValueSize <= 0 {
		o.ValueSize = 128
	}
	model, err := transportModel(o.Transport)
	if err != nil {
		return nil, err
	}
	top := topology.TwoTier(2, 4, 2)
	fabric := netsim.NewFabric(top, model)
	store, err := kvstore.New(kvstore.Config{Fabric: fabric, N: 3, R: 2, W: 2})
	if err != nil {
		return nil, err
	}
	ops := workload.KVOps(o.Ops, o.Keys, o.Skew, o.ReadFrac, o.ValueSize, o.Seed)

	// Window by virtual time so the series is deterministic. Width is
	// sized to the op count so both modes produce a useful handful of
	// windows; it is pinned in Params, so baselines stay comparable.
	width := 5 * time.Millisecond
	if o.Quick {
		width = 2 * time.Millisecond
	}
	reads := metrics.NewWindowedHistogram(width)
	writes := metrics.NewWindowedHistogram(width)
	all := metrics.NewWindowedHistogram(width)

	var virtual time.Duration
	var nGet, nPut, hits, misses int64
	sum := fnv.New64a()
	nodes := top.Size()
	for i, op := range ops {
		coord := topology.NodeID(i % nodes)
		switch op.Kind {
		case workload.OpPut:
			lat, err := store.Put(coord, op.Key, op.Value)
			if err != nil {
				return nil, fmt.Errorf("perf: kv put: %w", err)
			}
			virtual += lat
			writes.ObserveDuration(virtual, lat)
			all.ObserveDuration(virtual, lat)
			nPut++
		case workload.OpGet:
			v, lat, err := store.Get(coord, op.Key)
			switch {
			case err == nil:
				hits++
				sum.Write([]byte(op.Key))
				sum.Write(v)
			case err == kvstore.ErrNotFound:
				misses++
			default:
				return nil, fmt.Errorf("perf: kv get: %w", err)
			}
			virtual += lat
			reads.ObserveDuration(virtual, lat)
			all.ObserveDuration(virtual, lat)
			nGet++
		}
	}

	r := newResult("kv", o, map[string]string{
		"ops":        fmt.Sprint(o.Ops),
		"keys":       fmt.Sprint(o.Keys),
		"skew":       fmt.Sprint(o.Skew),
		"read_frac":  fmt.Sprint(o.ReadFrac),
		"value_size": fmt.Sprint(o.ValueSize),
		"window_ms":  fmt.Sprint(width.Milliseconds()),
		"quorum":     "n3r2w2",
	})
	r.Windows = windowsFromSamples(all.Series())
	r.Shape["ops"] = int64(o.Ops)
	r.Shape["reads"] = nGet
	r.Shape["writes"] = nPut
	r.Shape["hits"] = hits
	r.Shape["misses"] = misses
	r.Shape["read_checksum"] = int64(sum.Sum64() >> 1) // >>1: stay positive in JSON
	r.Shape["windows"] = int64(len(r.Windows))
	rt, wt := reads.Total(), writes.Total()
	r.Metrics["get_p50_ns"] = float64(rt.P50)
	r.Metrics["get_p99_ns"] = float64(rt.P99)
	r.Metrics["get_p999_ns"] = float64(rt.P999)
	r.Metrics["put_p50_ns"] = float64(wt.P50)
	r.Metrics["put_p99_ns"] = float64(wt.P99)
	r.Metrics["put_p999_ns"] = float64(wt.P999)
	r.Metrics["virtual_elapsed_ns"] = float64(virtual)
	if virtual > 0 {
		r.Metrics["ops_per_sec"] = float64(o.Ops) / virtual.Seconds()
	}

	// Overload segment: drive the same store build at 2x its measured
	// closed-loop capacity through the admission stack, open-loop. The
	// whole segment is virtual time, so goodput-at-saturation and the
	// admitted tail are seed-deterministic; its windows are appended
	// after the mix's, offset by the mix's virtual elapsed time.
	mean := virtual / time.Duration(o.Ops)
	if mean <= 0 {
		mean = time.Microsecond
	}
	capacity := float64(time.Second) / float64(mean)
	ovlDur := 500 * time.Millisecond
	if o.Quick {
		ovlDur = 200 * time.Millisecond
	}
	ovlStore, err := kvstore.New(kvstore.Config{Fabric: netsim.NewFabric(top, model), N: 3, R: 2, W: 2})
	if err != nil {
		return nil, err
	}
	ovl := admission.NewSim(overloadSimConfig(ovlStore, nodes, capacity, mean, ovlDur, o.Seed)).Run()
	for _, w := range windowsFromSamples(ovl.Windows) {
		w.StartNs += int64(virtual)
		r.Windows = append(r.Windows, w)
	}
	r.Params["overload_mult"] = "2"
	r.Params["overload_ms"] = fmt.Sprint(ovlDur.Milliseconds())
	r.Shape["overload_offered"] = ovl.Offered
	r.Shape["overload_goodput"] = ovl.Goodput
	r.Shape["overload_shed"] = ovl.ShedQuota + ovl.ShedQueue + ovl.ShedSojourn
	r.Shape["overload_checksum"] = int64(ovl.Checksum >> 1)
	r.Metrics["overload_goodput_per_sec"] = ovl.GoodputPerSec
	r.Metrics["overload_admitted_p999_ns"] = float64(ovl.AdmittedLatency.P999)

	// Transactional segment: the same zipf key pressure as multi-key 2PC
	// against the range-sharded plane, with a mid-run split and merge so
	// the trajectory crosses topology changes. The plane's virtual cost
	// model is the clock, so windows, counters and the read checksum are
	// all seed-deterministic; windows append after the overload segment's.
	txnN := 600
	if o.Quick {
		txnN = 200
	}
	sh := kvstore.NewSharded(kvstore.ShardedConfig{
		Seed: o.Seed, Groups: 2, InitialSplits: []string{"key-00000040"},
		MaxOpAttempts: 16, MaxTxnAttempts: 8,
	})
	txns := workload.TxnOps(workload.TxnSpec{
		N: txnN, Keys: 128, Span: 2, Skew: o.Skew, ValueSize: 32, Seed: o.Seed,
	})
	txnWindows := metrics.NewWindowedHistogram(width)
	txnSum := fnv.New64a()
	txnBase := int64(virtual) + int64(ovlDur)
	prevCost := sh.VirtualCost()
	ctx := context.Background()
	for i, tx := range txns {
		got, err := sh.Txn(ctx, tx.Reads, tx.Writes)
		cost := sh.VirtualCost()
		lat := cost - prevCost
		prevCost = cost
		if err != nil {
			if errors.Is(err, kvstore.ErrTxnConflict) || errors.Is(err, kvstore.ErrTxnAborted) {
				continue // clean aborts are part of the measured mix
			}
			return nil, fmt.Errorf("perf: kv txn %d: %w", i, err)
		}
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			txnSum.Write([]byte(k))
			txnSum.Write(got[k])
		}
		txnWindows.ObserveDuration(cost, lat)
		switch i {
		case txnN / 3:
			if err := sh.Split("key-00000020"); err != nil && !errors.Is(err, kvstore.ErrRangeBusy) {
				return nil, fmt.Errorf("perf: kv txn split: %w", err)
			}
		case 2 * txnN / 3:
			if err := sh.Merge("key-00000020"); err != nil && !errors.Is(err, kvstore.ErrRangeBusy) {
				return nil, fmt.Errorf("perf: kv txn merge: %w", err)
			}
		}
	}
	for _, w := range windowsFromSamples(txnWindows.Series()) {
		w.StartNs += txnBase
		r.Windows = append(r.Windows, w)
	}
	r.Params["txn_ops"] = fmt.Sprint(txnN)
	r.Params["txn_span"] = "2"
	r.Shape["txn_committed"] = sh.Reg.Counter("txn_committed").Value()
	r.Shape["txn_conflicts"] = sh.Reg.Counter("txn_conflicts").Value()
	r.Shape["txn_checksum"] = int64(txnSum.Sum64() >> 1)
	r.Shape["txn_ranges"] = int64(sh.RangeCount())
	r.Shape["windows"] = int64(len(r.Windows)) // recount: overload + txn windows included
	txnTotal := txnWindows.Total()
	r.Metrics["txn_p50_ns"] = float64(txnTotal.P50)
	r.Metrics["txn_p99_ns"] = float64(txnTotal.P99)
	r.Metrics["txn_virtual_elapsed_ns"] = float64(sh.VirtualCost())
	return r, nil
}

// overloadSimConfig assembles the kv family's fixed overload run: three
// equal-weight YCSB tenants at twice the measured capacity, quotas at
// 95% of capacity, CoDel and deadline knobs scaled off the measured
// mean service latency (the same sizing rule E-OVL uses).
func overloadSimConfig(store *kvstore.Store, nodes int, capacity float64, mean, dur time.Duration, seed uint64) admission.SimConfig {
	tenants := make([]workload.TenantSpec, 3)
	for i, m := range []string{"A", "B", "C"} {
		rf, _ := workload.YCSBMix(m)
		tenants[i] = workload.TenantSpec{
			ID:         "ycsb-" + m,
			RatePerSec: 2 * capacity / 3,
			Weight:     1,
			Priority:   i,
			ReadFrac:   rf,
			Keys:       512,
			Skew:       0.99,
			ValueSize:  128,
		}
	}
	ids := make([]string, len(tenants))
	weights := make([]float64, len(tenants))
	prios := make([]int, len(tenants))
	for i, t := range tenants {
		ids[i], weights[i], prios[i] = t.ID, t.Weight, t.Priority
	}
	quotas := admission.QuotasFor(ids, weights, prios, 0.95*capacity)
	for i := range quotas {
		quotas[i].Burst = quotas[i].Rate * 0.02
	}
	return admission.SimConfig{
		Tenants:     tenants,
		Duration:    dur,
		Seed:        seed,
		Nodes:       nodes,
		Deadline:    50 * mean,
		MaxAttempts: 3,
		Backoff:     5 * mean,
		RetryRatio:  0.1,
		WindowWidth: dur / 8,
		Admission: &admission.Config{
			Tenants:  quotas,
			Target:   4 * mean,
			Interval: 40 * mean,
			MaxQueue: 256,
		},
		Serve: func(ctx context.Context, op workload.Op, coord topology.NodeID) (time.Duration, error) {
			if op.Kind == workload.OpPut {
				return store.PutCtx(ctx, coord, op.Key, op.Value)
			}
			_, lat, err := store.GetCtx(ctx, coord, op.Key)
			if err == kvstore.ErrNotFound {
				err = nil
			}
			return lat, err
		},
	}
}

func transportModel(name string) (netsim.Model, error) {
	switch name {
	case "rdma", "":
		return netsim.RDMA40G, nil
	case "tcp":
		return netsim.TCP40G, nil
	case "ipoib":
		return netsim.IPoIB40G, nil
	default:
		return netsim.Model{}, fmt.Errorf("perf: unknown transport %q", name)
	}
}

// ---- shuffle ---------------------------------------------------------------

// runShuffle is the matching-records workload: each round generates
// seeded records across source partitions, keeps the ~1/16 that match,
// keys the matches by rule id and counts per rule through a full
// shuffle. One round = one window; the checksum folds every round's
// sorted (rule, count) pairs, so any change in what got shuffled is a
// shape break.
func runShuffle(o Options) (*Result, error) {
	if o.Rounds <= 0 {
		o.Rounds = 5
		if o.Quick {
			o.Rounds = 3
		}
	}
	if o.Records <= 0 {
		o.Records = 48_000
		if o.Quick {
			o.Records = 16_000
		}
	}
	const parts = 8
	const reduceParts = 4
	const rules = 64

	var windows []Window
	var totalRecords, totalMatched, totalGroups int64
	sum := fnv.New64a()
	var totalWall time.Duration
	var lastFetches fetchCost

	for round := 0; round < o.Rounds; round++ {
		ctx := hpbdc.New(hpbdc.Config{
			Racks: 2, NodesPerRack: 4,
			Transport: o.Transport,
			Seed:      o.Seed + uint64(round),
		})
		roundSeed := o.Seed + uint64(round)*1_000_003
		perPart := o.Records / parts
		src := hpbdc.SourceFunc(ctx, parts, func(part int) []uint64 {
			out := make([]uint64, perPart)
			// SplitMix-style stream decorrelated per (round, partition).
			x := roundSeed + uint64(part)*0x9e3779b97f4a7c15
			for i := range out {
				x += 0x9e3779b97f4a7c15
				z := x
				z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
				z = (z ^ (z >> 27)) * 0x94d049bb133111eb
				out[i] = z ^ (z >> 31)
			}
			return out
		})
		matched := hpbdc.FlatMap(src, func(rec uint64) []hpbdc.Pair[int64, int64] {
			if rec%16 != 0 { // the matching rule: ~1/16 selectivity
				return nil
			}
			return []hpbdc.Pair[int64, int64]{{Key: int64(rec % rules), Value: 1}}
		})
		counts := hpbdc.ReduceByKey(matched, hpbdc.Int64Codec, hpbdc.Int64Codec, reduceParts,
			func(a, b int64) int64 { return a + b })

		start := time.Now()
		got, err := counts.Collect()
		if err != nil {
			return nil, fmt.Errorf("perf: shuffle round %d: %w", round, err)
		}
		wall := time.Since(start)
		totalWall += wall

		sort.Slice(got, func(i, j int) bool { return got[i].Key < got[j].Key })
		var matchedN int64
		for _, p := range got {
			matchedN += p.Value
			fmt.Fprintf(sum, "%d=%d;", p.Key, p.Value)
		}
		roundRecords := int64(perPart * parts)
		totalRecords += roundRecords
		totalMatched += matchedN
		totalGroups += int64(len(got))

		lastFetches = readFetchCost(ctx)
		lastTasks := ctx.Metrics().Histogram("task_duration_ns").Snapshot()
		windows = append(windows, Window{
			StartNs: int64(totalWall - wall),
			Count:   roundRecords,
			PerSec:  float64(roundRecords) / wall.Seconds(),
			MeanNs:  lastTasks.Mean,
			P50Ns:   lastTasks.P50,
			P95Ns:   lastTasks.P95,
			P99Ns:   lastTasks.P99,
			P999Ns:  lastTasks.P999,
			MaxNs:   lastTasks.Max,
		})
	}

	r := newResult("shuffle", o, map[string]string{
		"rounds":       fmt.Sprint(o.Rounds),
		"records":      fmt.Sprint(o.Records),
		"parts":        fmt.Sprint(parts),
		"reduce_parts": fmt.Sprint(reduceParts),
		"rules":        fmt.Sprint(rules),
		"selectivity":  "1/16",
	})
	r.Windows = windows
	r.Shape["records"] = totalRecords
	r.Shape["matched"] = totalMatched
	r.Shape["groups"] = totalGroups
	r.Shape["match_checksum"] = int64(sum.Sum64() >> 1)
	r.Shape["windows"] = int64(len(windows))
	// Summary metrics are the robust ones: wall throughput (threshold-
	// compared) and the cost model's simulated per-fetch time (stable).
	// Task wall percentiles live in Windows only — at microsecond task
	// sizes they carry too much scheduler noise to gate CI on.
	r.Metrics["records_per_sec"] = float64(totalRecords) / totalWall.Seconds()
	if q := lastFetches.queries; q > 0 {
		r.Metrics["sim_fetch_mean_ns"] = float64(lastFetches.timeNs) / float64(q)
	}
	return r, nil
}

// fetchCost is the fabric's simulated shuffle-fetch aggregate for one
// round, read from the context registry. Simulated time is a pure
// function of (topology, model, placement), so it is far more stable
// across runs than any wall-clock latency.
type fetchCost struct {
	queries, timeNs int64
}

func readFetchCost(ctx *hpbdc.Context) fetchCost {
	reg := ctx.Metrics()
	return fetchCost{
		queries: reg.Counter("net_cost_queries").Value(),
		timeNs:  reg.Counter("net_cost_time_ns").Value(),
	}
}

// ---- stream ----------------------------------------------------------------

// runStream drives the checkpointed stream engine to source exhaustion
// and measures sustained event throughput alongside checkpoint cost.
// Wall throughput is windowed by event blocks via the Runner's tick
// hook; the result set, its checksum and the committed checkpoint
// bytes are seed-deterministic shape.
func runStream(o Options) (*Result, error) {
	if o.Events <= 0 {
		o.Events = 60_000
		if o.Quick {
			o.Events = 20_000
		}
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 2_000
	}
	const keys = 64
	const workers = 4
	src := stream.NewGeneratorSource(o.Seed, o.Events, keys, time.Millisecond, 4*time.Millisecond)

	blockEvery := int(o.Events / 12)
	if blockEvery < 1 {
		blockEvery = 1
	}
	var windows []Window
	start := time.Now()
	lastBoundary := time.Duration(0)
	runner := stream.NewRunner(stream.RunConfig{
		Pipeline: stream.Config{
			Workers: workers,
			Buffer:  256,
			Window:  50 * time.Millisecond,
		},
		CheckpointEvery: o.CheckpointEvery,
		WatermarkEvery:  256,
		WatermarkLag:    5 * time.Millisecond,
		TickEvery:       blockEvery,
		Tick: func() {
			now := time.Since(start)
			wall := now - lastBoundary
			if wall <= 0 {
				wall = time.Nanosecond
			}
			windows = append(windows, Window{
				StartNs: int64(lastBoundary),
				Count:   int64(blockEvery),
				PerSec:  float64(blockEvery) / wall.Seconds(),
			})
			lastBoundary = now
		},
	}, src)

	results, err := runner.Run()
	if err != nil {
		return nil, fmt.Errorf("perf: stream: %w", err)
	}
	totalWall := time.Since(start)

	sort.Slice(results, func(i, j int) bool {
		if results[i].WindowStart != results[j].WindowStart {
			return results[i].WindowStart < results[j].WindowStart
		}
		return results[i].Key < results[j].Key
	})
	sum := fnv.New64a()
	for _, res := range results {
		fmt.Fprintf(sum, "%d|%s|%.6f|%d;", res.WindowStart, res.Key, res.Sum, res.Count)
	}

	reg := runner.Metrics()
	ckpt := reg.Histogram("checkpoint_duration_ns").Snapshot()

	r := newResult("stream", o, map[string]string{
		"events":           fmt.Sprint(o.Events),
		"keys":             fmt.Sprint(keys),
		"workers":          fmt.Sprint(workers),
		"checkpoint_every": fmt.Sprint(o.CheckpointEvery),
		"window_ms":        "50",
	})
	r.Windows = windows
	r.Shape["events"] = o.Events
	r.Shape["results"] = int64(len(results))
	r.Shape["results_checksum"] = int64(sum.Sum64() >> 1)
	r.Shape["checkpoints_committed"] = reg.Counter("checkpoints_committed").Value()
	r.Shape["checkpoint_bytes"] = reg.Counter("checkpoint_bytes").Value()
	r.Shape["windows"] = int64(len(windows))
	// Throughput gates; checkpoint encode time is wall-measured over few
	// samples, so only its mean is summarized (percentiles stay in the
	// run's histogram for interactive inspection).
	r.Metrics["events_per_sec"] = float64(o.Events) / totalWall.Seconds()
	r.Metrics["checkpoint_mean_ns"] = ckpt.Mean
	return r, nil
}

// ---- terasort --------------------------------------------------------------

// runTerasort runs rounds of TeraGen + sampled range-partitioned sort.
// The checksum folds the first and last key of every output partition
// — enough to pin both the partition boundaries and the sort order.
func runTerasort(o Options) (*Result, error) {
	if o.Rounds <= 0 {
		o.Rounds = 3
		if o.Quick {
			o.Rounds = 2
		}
	}
	if o.Records <= 0 {
		o.Records = 60_000
		if o.Quick {
			o.Records = 24_000
		}
	}
	const parts = 8

	var windows []Window
	var totalRecords int64
	sum := fnv.New64a()
	var totalWall time.Duration
	var lastFetches fetchCost

	for round := 0; round < o.Rounds; round++ {
		ctx := hpbdc.New(hpbdc.Config{
			Racks: 2, NodesPerRack: 4,
			Transport: o.Transport,
			Seed:      o.Seed + uint64(round),
		})
		perPart := o.Records / parts
		roundSeed := o.Seed + uint64(round)*7_919
		gen := hpbdc.SourceFunc(ctx, parts, func(part int) []hpbdc.Pair[string, string] {
			recs := workload.TeraGen(perPart, roundSeed+uint64(part))
			out := make([]hpbdc.Pair[string, string], len(recs))
			for i, rec := range recs {
				out[i] = hpbdc.Pair[string, string]{Key: string(rec.Key), Value: string(rec.Value)}
			}
			return out
		})

		start := time.Now()
		sorted, err := hpbdc.SortByKey(gen, hpbdc.StringCodec, hpbdc.StringCodec, parts, 128)
		if err != nil {
			return nil, fmt.Errorf("perf: terasort round %d: %w", round, err)
		}
		out, err := sorted.CollectPartitions()
		if err != nil {
			return nil, fmt.Errorf("perf: terasort round %d: %w", round, err)
		}
		wall := time.Since(start)
		totalWall += wall

		var n int64
		prev := ""
		for _, part := range out {
			if len(part) > 0 {
				fmt.Fprintf(sum, "%x|%x;", part[0].Key, part[len(part)-1].Key)
			}
			for _, p := range part {
				if p.Key < prev {
					return nil, fmt.Errorf("perf: terasort round %d: output not sorted", round)
				}
				prev = p.Key
				n++
			}
		}
		totalRecords += n

		lastFetches = readFetchCost(ctx)
		lastTasks := ctx.Metrics().Histogram("task_duration_ns").Snapshot()
		windows = append(windows, Window{
			StartNs: int64(totalWall - wall),
			Count:   n,
			PerSec:  float64(n) / wall.Seconds(),
			MeanNs:  lastTasks.Mean,
			P50Ns:   lastTasks.P50,
			P95Ns:   lastTasks.P95,
			P99Ns:   lastTasks.P99,
			P999Ns:  lastTasks.P999,
			MaxNs:   lastTasks.Max,
		})
	}

	r := newResult("terasort", o, map[string]string{
		"rounds":  fmt.Sprint(o.Rounds),
		"records": fmt.Sprint(o.Records),
		"parts":   fmt.Sprint(parts),
	})
	r.Windows = windows
	r.Shape["records"] = totalRecords
	r.Shape["order_checksum"] = int64(sum.Sum64() >> 1)
	r.Shape["windows"] = int64(len(windows))
	r.Metrics["records_per_sec"] = float64(totalRecords) / totalWall.Seconds()
	if q := lastFetches.queries; q > 0 {
		r.Metrics["sim_fetch_mean_ns"] = float64(lastFetches.timeNs) / float64(q)
	}
	return r, nil
}

// ---- query -----------------------------------------------------------------

// runQuery executes the E-SQL star-schema suite through the cost-based
// planner, one round (fresh engine + regenerated star data) per window.
// The result rows fold into a checksum — any planner change that alters
// a relational answer is a shape break, caught without the oracle in
// the loop — and the columnar scan counters (rows pruned, bytes
// decoded/skipped) pin pushdown behavior, which is a pure function of
// the seed. Wall throughput is threshold-compared.
func runQuery(o Options) (*Result, error) {
	if o.Rounds <= 0 {
		o.Rounds = 3
		if o.Quick {
			o.Rounds = 2
		}
	}
	if o.Records <= 0 {
		o.Records = 6_000
		if o.Quick {
			o.Records = 2_000
		}
	}
	model, err := transportModel(o.Transport)
	if err != nil {
		return nil, err
	}
	const parts = 4
	custN, prodN, dateN := 120, 40, 48
	broadcastRows := int64(o.Records / 4)

	var windows []Window
	var totalRows, totalQueries int64
	var scans perfScanCost
	sum := fnv.New64a()
	var totalWall time.Duration

	suite := query.StarQueries()
	for round := 0; round < o.Rounds; round++ {
		fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), model)
		cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
		eng := core.NewEngine(core.Config{Cluster: cl, Seed: o.Seed})
		env := query.NewEnv(eng, nil)
		rels := query.GenStar(o.Seed+uint64(round)*1_000_003, o.Records, custN, prodN, dateN)
		if err := query.RegisterStar(env, rels, parts); err != nil {
			return nil, fmt.Errorf("perf: query round %d: %w", round, err)
		}

		start := time.Now()
		var roundRows int64
		for _, q := range suite {
			plan, err := env.SQL(q.SQL, query.Options{Optimize: true, Parts: parts, BroadcastRows: broadcastRows})
			if err != nil {
				return nil, fmt.Errorf("perf: query %s: %w", q.ID, err)
			}
			rows, err := plan.Execute()
			if err != nil {
				return nil, fmt.Errorf("perf: query %s: %w", q.ID, err)
			}
			roundRows += int64(len(rows))
			// Ordered plans have one valid order; unordered ones are
			// multisets — sort the encoded rows so the fold is stable.
			enc := make([]string, len(rows))
			for i, r := range rows {
				enc[i] = check.FormatRow(r)
			}
			if !plan.Ordered() {
				sort.Strings(enc)
			}
			fmt.Fprintf(sum, "%s:", q.ID)
			for _, e := range enc {
				fmt.Fprintf(sum, "%s;", e)
			}
		}
		wall := time.Since(start)
		totalWall += wall
		totalRows += roundRows
		totalQueries += int64(len(suite))
		scans = scans.add(readScanCost(eng.Reg))

		tasks := eng.Reg.Histogram("task_duration_ns").Snapshot()
		windows = append(windows, Window{
			StartNs: int64(totalWall - wall),
			Count:   int64(len(suite)),
			PerSec:  float64(len(suite)) / wall.Seconds(),
			MeanNs:  tasks.Mean,
			P50Ns:   tasks.P50,
			P95Ns:   tasks.P95,
			P99Ns:   tasks.P99,
			P999Ns:  tasks.P999,
			MaxNs:   tasks.Max,
		})
	}

	r := newResult("query", o, map[string]string{
		"rounds":         fmt.Sprint(o.Rounds),
		"fact_rows":      fmt.Sprint(o.Records),
		"parts":          fmt.Sprint(parts),
		"queries":        fmt.Sprint(len(suite)),
		"broadcast_rows": fmt.Sprint(broadcastRows),
	})
	r.Windows = windows
	r.Shape["queries"] = totalQueries
	r.Shape["result_rows"] = totalRows
	r.Shape["result_checksum"] = int64(sum.Sum64() >> 1)
	r.Shape["rows_scanned"] = scans.scanned
	r.Shape["rows_pruned"] = scans.pruned
	r.Shape["bytes_decoded"] = scans.decoded
	r.Shape["bytes_skipped"] = scans.skipped
	r.Shape["windows"] = int64(len(windows))
	r.Metrics["queries_per_sec"] = float64(totalQueries) / totalWall.Seconds()
	r.Metrics["result_rows_per_sec"] = float64(totalRows) / totalWall.Seconds()
	return r, nil
}

// ---- avail -----------------------------------------------------------------

// runAvail replays the gray-failure availability sweep as a trajectory:
// three asymmetric fault schedules (one-way inbound isolation, a
// non-transitive partial partition, link flapping) against a 5-node Raft
// cluster, control (vanilla) vs defended (PreVote + CheckQuorum +
// randomized backoff). One commit-confirmed proposal probes every
// virtual tick; check.Availability charges only failures that coincide
// with a connected majority. Everything but the wall probe rate is a
// pure function of the seed, so the unavailability windows, term growth
// and step-down counts all gate as exact-match shape — a liveness
// regression (say, a PreVote bug reintroducing term inflation) breaks
// the baseline the same way a lost record breaks the shuffle checksum.
func runAvail(o Options) (*Result, error) {
	const nodes = 5
	const horizon = 300
	// One virtual tick is modeled as 1ms for window bookkeeping.
	const tickNs = int64(time.Millisecond)

	schedules := []struct{ name, text string }{
		{"one_way", "4 link-cut 0-3 4\n154 link-heal 0-3 4\n"},
		{"partial", "4 partial-partition 0|2-4\n154 heal\n"},
		{"flap", "4 flap 0-4 0-4 0.25\n104 unflap 0-4 0-4\n105 heal\n"},
	}

	r := newResult("avail", o, map[string]string{
		"nodes":   fmt.Sprint(nodes),
		"horizon": fmt.Sprint(horizon),
	})
	start := time.Now()
	var offset, totalProbes, totalFailed int64
	for _, sc := range schedules {
		sched, err := chaos.Parse(sc.text)
		if err != nil {
			return nil, fmt.Errorf("perf: avail %s: %w", sc.name, err)
		}
		for _, mode := range []string{"control", "defended"} {
			var c *consensus.Cluster
			if mode == "defended" {
				c = consensus.NewHardenedCluster(nodes, o.Seed)
			} else {
				c = consensus.NewCluster(nodes, o.Seed)
			}
			if l := c.RunUntilLeader(400); l < 0 {
				return nil, fmt.Errorf("perf: avail %s/%s: no boot leader", sc.name, mode)
			}
			if !c.TransferLeadership(0, 80) {
				return nil, fmt.Errorf("perf: avail %s/%s: could not rig leader", sc.name, mode)
			}
			ctl := chaos.New(sched, o.Seed, chaos.Targets{Nodes: nodes, Consensus: c}, nil)
			boot := c.MaxTerm()

			pts := make([]check.AvailPoint, 0, horizon)
			var ok, commitRounds int64
			for tick := int64(1); tick <= horizon; tick++ {
				ctl.AdvanceTo(tick)
				c.Tick()
				rounds, committed := c.ProposeAndCountRounds([]byte{byte(tick), byte(tick >> 8)})
				if committed {
					ok++
					commitRounds += int64(rounds)
				}
				pts = append(pts, check.AvailPoint{T: tick, OK: committed, MajorityConnected: c.HasConnectedMajority()})
			}
			rep := check.Availability(pts)
			totalProbes += int64(rep.Probes)
			totalFailed += int64(rep.Failed)

			key := sc.name + "_" + mode
			r.Shape[key+"_failed"] = int64(rep.Failed)
			r.Shape[key+"_windows"] = int64(rep.Windows)
			r.Shape[key+"_longest"] = rep.Longest
			r.Shape[key+"_unavail"] = rep.Total
			r.Shape[key+"_term_delta"] = int64(c.MaxTerm() - boot)
			r.Shape[key+"_stepdowns"] = int64(c.StepDowns())

			meanRounds := int64(0)
			if ok > 0 {
				meanRounds = commitRounds / ok
			}
			r.Windows = append(r.Windows, Window{
				StartNs: offset,
				Count:   int64(rep.Probes),
				PerSec:  float64(ok) / (float64(horizon*tickNs) / float64(time.Second)),
				MeanNs:  float64(meanRounds),
			})
			offset += horizon * tickNs
		}
	}
	wall := time.Since(start)

	r.Shape["probes"] = totalProbes
	r.Shape["failed"] = totalFailed
	r.Shape["windows"] = int64(len(r.Windows))
	// The only wall-clock number: probe throughput, threshold-compared.
	r.Metrics["probes_per_sec"] = float64(totalProbes) / wall.Seconds()
	return r, nil
}

// perfScanCost aggregates the columnar scan counters across rounds; all
// four are seed-deterministic (encoding and plans are pure functions of
// the generated data), so they gate as shape.
type perfScanCost struct {
	scanned, pruned, decoded, skipped int64
}

func (a perfScanCost) add(b perfScanCost) perfScanCost {
	return perfScanCost{a.scanned + b.scanned, a.pruned + b.pruned, a.decoded + b.decoded, a.skipped + b.skipped}
}

func readScanCost(reg *metrics.Registry) perfScanCost {
	return perfScanCost{
		scanned: reg.Counter(qtable.CtrRowsScanned).Value(),
		pruned:  reg.Counter(qtable.CtrRowsPruned).Value(),
		decoded: reg.Counter(qtable.CtrBytesDecoded).Value(),
		skipped: reg.Counter(qtable.CtrBytesSkipped).Value(),
	}
}
