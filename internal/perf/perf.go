// Package perf is the benchmark-trajectory subsystem: it runs named
// workload families (shuffle matching-records in the ShuffleBench
// style, stream sustained-throughput with checkpoint cost, a YCSB-ish
// KV read/write mix, terasort) under fixed seeds, samples time-windowed
// throughput and latency percentiles, and writes versioned
// BENCH_<family>.json files that CI diffs against the committed
// trajectory. The split that makes this workable is Shape vs Metrics:
// Shape fields (record counts, checksums, checkpoint bytes, window
// counts) are pure functions of the seed and must match exactly — a
// mismatch means the workload changed, not its speed — while Metrics
// fields (throughput, latency percentiles) carry wall-clock noise and
// are compared against a relative threshold by the differ (diff.go).
package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump on any
// incompatible change; the differ refuses to compare across versions.
const SchemaVersion = 1

// Window is one time-window of the trajectory. StartNs is the window's
// offset from the run epoch (wall or virtual, per family); latency
// fields are nanoseconds.
type Window struct {
	StartNs int64   `json:"start_ns"`
	Count   int64   `json:"count"`
	PerSec  float64 `json:"per_sec"`
	MeanNs  float64 `json:"mean_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	P999Ns  int64   `json:"p999_ns"`
	MaxNs   int64   `json:"max_ns"`
}

// Env records where a result was produced. The differ ignores it — it
// exists so a surprising number in a committed baseline can be traced
// to the toolchain and revision that produced it.
type Env struct {
	GoVersion string `json:"go_version"`
	GitRev    string `json:"git_rev"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
}

// Result is one benchmark run of one family, the unit BENCH_<family>.json
// stores.
type Result struct {
	Schema int    `json:"schema"`
	Family string `json:"family"`
	// Params pin the workload configuration (sizes, seed, transport).
	// The differ hard-fails on any mismatch: comparing runs of different
	// workloads is meaningless.
	Params map[string]string `json:"params"`
	Env    Env               `json:"env"`
	// Windows is the per-window series — the trajectory proper.
	Windows []Window `json:"windows"`
	// Shape holds seed-deterministic workload invariants (record counts,
	// checksums, committed checkpoints). Exact-match in the differ.
	Shape map[string]int64 `json:"shape"`
	// Metrics holds wall-noisy summary numbers (throughput, latency
	// percentiles). Threshold-compared in the differ; names ending in
	// "_per_sec" regress downward, names ending in "_ns" regress upward.
	Metrics map[string]float64 `json:"metrics"`
}

// Filename returns the canonical baseline file name for a family.
func Filename(family string) string {
	return fmt.Sprintf("BENCH_%s.json", family)
}

// CaptureEnv fills an Env from the running toolchain. The git revision
// comes from BENCH_GIT_REV when set (CI exports it), else best-effort
// `git rev-parse`; "unknown" when neither works.
func CaptureEnv() Env {
	rev := os.Getenv("BENCH_GIT_REV")
	if rev == "" {
		if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			rev = strings.TrimSpace(string(out))
		}
	}
	if rev == "" {
		rev = "unknown"
	}
	return Env{
		GoVersion: runtime.Version(),
		GitRev:    rev,
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
}

// Encode renders the result as stable, indented JSON (struct field
// order is fixed; map keys are sorted by encoding/json).
func (r *Result) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the result to dir/BENCH_<family>.json and returns
// the path.
func (r *Result) WriteFile(dir string) (string, error) {
	b, err := r.Encode()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, Filename(r.Family))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a result file and validates its schema version.
func Load(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("perf: %s: schema %d, this build speaks %d",
			path, r.Schema, SchemaVersion)
	}
	if r.Family == "" {
		return nil, fmt.Errorf("perf: %s: missing family", path)
	}
	return &r, nil
}
