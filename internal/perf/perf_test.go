package perf

import (
	"path/filepath"
	"reflect"
	"testing"
)

// quick returns CI-sized options with a fixed seed.
func quick(seed uint64) Options { return Options{Quick: true, Seed: seed} }

func TestRunUnknownFamily(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("unknown family must error")
	}
}

// Every family must be seed-deterministic in Shape: two runs with the
// same options produce byte-identical Shape maps and the same window
// count, even though wall-clock Metrics differ. This is the invariant
// the differ's exact-match side leans on.
func TestFamiliesShapeDeterminism(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			t.Parallel()
			a, err := Run(fam, quick(7))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(fam, quick(7))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a.Shape, b.Shape) {
				t.Fatalf("same seed, different shape:\n  a=%v\n  b=%v", a.Shape, b.Shape)
			}
			if len(a.Windows) != len(b.Windows) {
				t.Fatalf("window counts differ: %d vs %d", len(a.Windows), len(b.Windows))
			}
			if !reflect.DeepEqual(a.Params, b.Params) {
				t.Fatalf("params differ: %v vs %v", a.Params, b.Params)
			}
			// And the differ agrees the two runs are comparable.
			if rep := Diff(a, b, DiffOptions{}); !rep.OK() {
				t.Fatalf("self-diff failed:\n%s", rep)
			}
		})
	}
}

// Different seeds must actually change the workload — otherwise the
// checksums are not pinning anything.
func TestSeedChangesShape(t *testing.T) {
	a, err := Run("kv", quick(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("kv", quick(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Shape["read_checksum"] == b.Shape["read_checksum"] {
		t.Fatal("different seeds produced identical read checksums")
	}
}

// The kv family windows by accumulated virtual latency, so the full
// trajectory — percentiles included — reproduces exactly.
func TestKVTrajectoryFullyDeterministic(t *testing.T) {
	a, err := Run("kv", quick(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("kv", quick(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Windows, b.Windows) {
		t.Fatalf("kv windows are virtual-time derived and must match exactly:\n  a=%v\n  b=%v",
			a.Windows, b.Windows)
	}
	for k := range a.Metrics {
		if k == "ops_per_sec" {
			continue // derived from virtual time too, but float division — compare raw
		}
		if a.Metrics[k] != b.Metrics[k] {
			t.Fatalf("kv metric %s differs: %v vs %v", k, a.Metrics[k], b.Metrics[k])
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	r, err := Run("kv", quick(5))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_kv.json" {
		t.Fatalf("path = %s", path)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Shape, r.Shape) || !reflect.DeepEqual(got.Params, r.Params) {
		t.Fatal("round trip lost shape or params")
	}
	if rep := Diff(r, got, DiffOptions{}); !rep.OK() {
		t.Fatalf("round-tripped result must diff clean:\n%s", rep)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	r, err := Run("kv", quick(5))
	if err != nil {
		t.Fatal(err)
	}
	r.Schema = SchemaVersion + 10
	dir := t.TempDir()
	path, err := r.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("wrong schema must be rejected at load")
	}
}

func TestEncodeStable(t *testing.T) {
	r, err := Run("kv", quick(5))
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("Encode must be byte-stable for the same Result")
	}
}
