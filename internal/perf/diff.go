// The trajectory differ: compares a fresh benchmark result against the
// committed baseline and classifies every divergence. Shape fields and
// workload params must match exactly — a mismatch means the two runs
// measured different work and no speed comparison is valid. Metrics
// are compared with a relative noise threshold, directionally: a
// throughput ("*_per_sec") only regresses when it drops, a latency
// ("*_ns") only when it rises. Improvements and in-threshold drift
// pass silently; CI runs with a generous threshold because shared
// runners are noisy, while local runs can tighten it.
package perf

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// DefaultThreshold is the relative change beyond which a metric counts
// as a regression. Generous by design: the harness measures a simulated
// cluster on real, shared hardware.
const DefaultThreshold = 0.5

// DiffOptions configures a comparison.
type DiffOptions struct {
	// Threshold is the allowed relative change in a Metrics field
	// (0.5 = 50%). <= 0 uses DefaultThreshold.
	Threshold float64
}

// FindingKind classifies one divergence.
type FindingKind string

const (
	// KindShape is a hard failure: params or shape fields differ, so the
	// runs are not comparable (or determinism broke).
	KindShape FindingKind = "shape"
	// KindRegression is a metric past the noise threshold in the bad
	// direction.
	KindRegression FindingKind = "regression"
)

// Finding is one divergence between baseline and current.
type Finding struct {
	Kind  FindingKind
	Field string
	Base  float64
	Cur   float64
	// Rel is the relative change (cur-base)/base, NaN-safe.
	Rel float64
	Msg string
}

// Report is the outcome of one Diff call.
type Report struct {
	Family   string
	Findings []Finding // failures only, sorted by field
	// Checked counts the comparisons performed (shape + metric fields).
	Checked int
}

// OK reports whether the comparison passed.
func (r *Report) OK() bool { return len(r.Findings) == 0 }

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	if r.OK() {
		fmt.Fprintf(&b, "perf[%s]: ok (%d fields checked)\n", r.Family, r.Checked)
		return b.String()
	}
	fmt.Fprintf(&b, "perf[%s]: %d finding(s) across %d fields:\n", r.Family, len(r.Findings), r.Checked)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %-10s %s: %s\n", f.Kind, f.Field, f.Msg)
	}
	return b.String()
}

// regressionDirection returns +1 if the metric regresses when it rises
// (latencies), -1 if it regresses when it falls (throughputs), 0 if
// unknown (then any move past threshold in either direction flags).
func regressionDirection(name string) int {
	switch {
	case strings.HasSuffix(name, "_per_sec") || strings.Contains(name, "throughput"):
		return -1
	case strings.HasSuffix(name, "_ns") || strings.Contains(name, "latency"):
		return +1
	default:
		return 0
	}
}

// Diff compares cur against base. Any schema/family/params/shape
// mismatch yields KindShape findings; metric moves past the threshold
// in the regressing direction yield KindRegression findings. Metric
// fields present on only one side are shape findings too — a vanished
// metric usually means the harness silently stopped measuring it.
func Diff(base, cur *Result, opts DiffOptions) *Report {
	th := opts.Threshold
	if th <= 0 {
		th = DefaultThreshold
	}
	rep := &Report{Family: cur.Family}
	fail := func(kind FindingKind, field string, b, c float64, msg string) {
		rel := math.NaN()
		if b != 0 {
			rel = (c - b) / b
		}
		rep.Findings = append(rep.Findings, Finding{Kind: kind, Field: field, Base: b, Cur: c, Rel: rel, Msg: msg})
	}

	if base.Family != cur.Family {
		fail(KindShape, "family", 0, 0, fmt.Sprintf("baseline %q vs current %q", base.Family, cur.Family))
	}
	if base.Schema != cur.Schema {
		fail(KindShape, "schema", float64(base.Schema), float64(cur.Schema),
			fmt.Sprintf("baseline schema %d vs current %d", base.Schema, cur.Schema))
	}

	// Params: exact match both ways.
	for _, k := range sortedKeys(base.Params) {
		rep.Checked++
		if cv, ok := cur.Params[k]; !ok || cv != base.Params[k] {
			fail(KindShape, "params."+k, 0, 0,
				fmt.Sprintf("baseline %q vs current %q — different workloads are not comparable", base.Params[k], cv))
		}
	}
	for _, k := range sortedKeys(cur.Params) {
		if _, ok := base.Params[k]; !ok {
			rep.Checked++
			fail(KindShape, "params."+k, 0, 0, fmt.Sprintf("param %q absent from baseline", k))
		}
	}

	// Shape: exact match, both directions, plus the window count (a run
	// that stalled into extra/missing windows changed shape, not speed).
	for _, k := range sortedKeys(base.Shape) {
		rep.Checked++
		cv, ok := cur.Shape[k]
		if !ok {
			fail(KindShape, "shape."+k, float64(base.Shape[k]), 0, "field missing from current run")
			continue
		}
		if cv != base.Shape[k] {
			fail(KindShape, "shape."+k, float64(base.Shape[k]), float64(cv),
				fmt.Sprintf("%d vs %d — same seed must reproduce the same workload", base.Shape[k], cv))
		}
	}
	for _, k := range sortedKeys(cur.Shape) {
		if _, ok := base.Shape[k]; !ok {
			rep.Checked++
			fail(KindShape, "shape."+k, 0, float64(cur.Shape[k]), "field absent from baseline")
		}
	}
	rep.Checked++
	if len(base.Windows) != len(cur.Windows) {
		fail(KindShape, "windows", float64(len(base.Windows)), float64(len(cur.Windows)),
			fmt.Sprintf("%d windows vs %d", len(base.Windows), len(cur.Windows)))
	}

	// Metrics: threshold compare in the regressing direction.
	for _, k := range sortedKeys(base.Metrics) {
		rep.Checked++
		bv := base.Metrics[k]
		cv, ok := cur.Metrics[k]
		if !ok {
			fail(KindShape, "metrics."+k, bv, 0, "metric missing from current run")
			continue
		}
		if bv == 0 {
			// Nothing sane to compare against; only flag appearing-from-zero.
			continue
		}
		rel := (cv - bv) / bv
		switch regressionDirection(k) {
		case -1: // throughput: lower is worse
			if rel < -th {
				fail(KindRegression, k, bv, cv,
					fmt.Sprintf("%.4g -> %.4g (%.0f%%, threshold %.0f%%)", bv, cv, rel*100, th*100))
			}
		case +1: // latency: higher is worse
			if rel > th {
				fail(KindRegression, k, bv, cv,
					fmt.Sprintf("%.4g -> %.4g (+%.0f%%, threshold %.0f%%)", bv, cv, rel*100, th*100))
			}
		default:
			if math.Abs(rel) > th {
				fail(KindRegression, k, bv, cv,
					fmt.Sprintf("%.4g -> %.4g (%.0f%%, threshold %.0f%%)", bv, cv, rel*100, th*100))
			}
		}
	}
	for _, k := range sortedKeys(cur.Metrics) {
		if _, ok := base.Metrics[k]; !ok {
			rep.Checked++
			fail(KindShape, "metrics."+k, 0, cur.Metrics[k], "metric absent from baseline — refresh baselines")
		}
	}

	sort.Slice(rep.Findings, func(i, j int) bool { return rep.Findings[i].Field < rep.Findings[j].Field })
	return rep
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
