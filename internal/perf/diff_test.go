package perf

import (
	"strings"
	"testing"
)

func baseResult() *Result {
	return &Result{
		Schema: SchemaVersion,
		Family: "kv",
		Params: map[string]string{"ops": "1000", "seed": "42"},
		Shape:  map[string]int64{"ops": 1000, "checksum": 77},
		Metrics: map[string]float64{
			"ops_per_sec": 1000,
			"get_p99_ns":  5000,
		},
		Windows: []Window{{Count: 500}, {Count: 500}},
	}
}

func TestDiffIdenticalPasses(t *testing.T) {
	rep := Diff(baseResult(), baseResult(), DiffOptions{})
	if !rep.OK() {
		t.Fatalf("identical results should pass:\n%s", rep)
	}
	if rep.Checked == 0 {
		t.Fatal("no fields checked")
	}
}

func TestDiffFlagsThroughputRegression(t *testing.T) {
	cur := baseResult()
	cur.Metrics["ops_per_sec"] = 400 // -60%, past the 50% threshold
	rep := Diff(baseResult(), cur, DiffOptions{})
	if rep.OK() {
		t.Fatal("60% throughput drop must be flagged")
	}
	if len(rep.Findings) != 1 || rep.Findings[0].Kind != KindRegression ||
		rep.Findings[0].Field != "ops_per_sec" {
		t.Fatalf("findings = %+v", rep.Findings)
	}
}

func TestDiffFlagsLatencyRegression(t *testing.T) {
	cur := baseResult()
	cur.Metrics["get_p99_ns"] = 9000 // +80%
	rep := Diff(baseResult(), cur, DiffOptions{})
	if rep.OK() || rep.Findings[0].Field != "get_p99_ns" {
		t.Fatalf("latency rise must be flagged: %+v", rep.Findings)
	}
}

func TestDiffImprovementsPass(t *testing.T) {
	cur := baseResult()
	cur.Metrics["ops_per_sec"] = 5000 // 5x faster
	cur.Metrics["get_p99_ns"] = 100   // 50x lower latency
	rep := Diff(baseResult(), cur, DiffOptions{})
	if !rep.OK() {
		t.Fatalf("improvements must pass silently:\n%s", rep)
	}
}

func TestDiffInThresholdDriftPasses(t *testing.T) {
	cur := baseResult()
	cur.Metrics["ops_per_sec"] = 700 // -30%, inside 50%
	cur.Metrics["get_p99_ns"] = 7000 // +40%, inside 50%
	rep := Diff(baseResult(), cur, DiffOptions{})
	if !rep.OK() {
		t.Fatalf("in-threshold drift must pass:\n%s", rep)
	}
}

func TestDiffThresholdOption(t *testing.T) {
	cur := baseResult()
	cur.Metrics["ops_per_sec"] = 850 // -15%
	if rep := Diff(baseResult(), cur, DiffOptions{Threshold: 0.10}); rep.OK() {
		t.Fatal("tightened threshold must flag a 15% drop")
	}
	if rep := Diff(baseResult(), cur, DiffOptions{Threshold: 0.20}); !rep.OK() {
		t.Fatal("15% drop is inside a 20% threshold")
	}
}

func TestDiffShapeMismatchFails(t *testing.T) {
	cur := baseResult()
	cur.Shape["checksum"] = 78
	rep := Diff(baseResult(), cur, DiffOptions{})
	if rep.OK() {
		t.Fatal("shape mismatch must fail")
	}
	if rep.Findings[0].Kind != KindShape {
		t.Fatalf("kind = %q, want shape", rep.Findings[0].Kind)
	}
}

func TestDiffParamMismatchFails(t *testing.T) {
	cur := baseResult()
	cur.Params["ops"] = "2000"
	rep := Diff(baseResult(), cur, DiffOptions{})
	if rep.OK() {
		t.Fatal("param mismatch must fail — different workloads are not comparable")
	}
	if !strings.Contains(rep.String(), "params.ops") {
		t.Fatalf("report missing params.ops:\n%s", rep)
	}
}

func TestDiffMissingAndExtraFields(t *testing.T) {
	cur := baseResult()
	delete(cur.Metrics, "get_p99_ns")
	cur.Metrics["brand_new_ns"] = 1
	rep := Diff(baseResult(), cur, DiffOptions{})
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %+v, want missing + extra", rep.Findings)
	}
	for _, f := range rep.Findings {
		if f.Kind != KindShape {
			t.Fatalf("asymmetric metric sets are shape findings, got %q", f.Kind)
		}
	}
}

func TestDiffWindowCountMismatch(t *testing.T) {
	cur := baseResult()
	cur.Windows = cur.Windows[:1]
	rep := Diff(baseResult(), cur, DiffOptions{})
	if rep.OK() {
		t.Fatal("window count change must fail as shape")
	}
}

func TestDiffSchemaMismatch(t *testing.T) {
	cur := baseResult()
	cur.Schema = SchemaVersion + 1
	if rep := Diff(baseResult(), cur, DiffOptions{}); rep.OK() {
		t.Fatal("schema mismatch must fail")
	}
}
