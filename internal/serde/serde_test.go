package serde

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	records := [][2]string{
		{"alpha", "1"},
		{"", "empty key"},
		{"empty value", ""},
		{"", ""},
		{"binary\x00key", "binary\xffvalue"},
	}
	for _, r := range records {
		if err := w.Write([]byte(r[0]), []byte(r[1])); err != nil {
			t.Fatal(err)
		}
	}
	if w.BytesWritten() != int64(buf.Len()) {
		t.Fatalf("BytesWritten = %d, buffer has %d", w.BytesWritten(), buf.Len())
	}
	r := NewReader(&buf)
	for i, want := range records {
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(rec.Key) != want[0] || string(rec.Value) != want[1] {
			t.Fatalf("record %d = %q/%q, want %q/%q", i, rec.Key, rec.Value, want[0], want[1])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
}

func TestRecordRoundTripProperty(t *testing.T) {
	f := func(pairs [][2][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, p := range pairs {
			if err := w.Write(p[0], p[1]); err != nil {
				return false
			}
		}
		r := NewReader(&buf)
		for _, p := range pairs {
			rec, err := r.Read()
			if err != nil {
				return false
			}
			if !bytes.Equal(rec.Key, p[0]) || !bytes.Equal(rec.Value, p[1]) {
				return false
			}
		}
		_, err := r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write([]byte("key"), []byte("a long enough value")); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 1; cut < len(data); cut++ {
		r := NewReader(bytes.NewReader(data[:cut]))
		_, err := r.Read()
		if err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d reported as clean EOF", cut)
		}
	}
}

func TestReaderRejectsImplausibleLengths(t *testing.T) {
	// Varint claims a 2^40-byte key.
	bad := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40, 0x00}
	r := NewReader(bytes.NewReader(bad))
	if _, err := r.Read(); err == nil {
		t.Fatal("implausible length accepted")
	}
}

func TestInt64ZigzagRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		got, err := DecodeInt64(EncodeInt64(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInt64SmallMagnitudesAreShort(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64} {
		if n := len(EncodeInt64(v)); n != 1 {
			t.Fatalf("EncodeInt64(%d) = %d bytes, want 1", v, n)
		}
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	f := func(v float64) bool {
		got, err := DecodeFloat64(EncodeFloat64(v))
		if err != nil {
			return false
		}
		// NaN != NaN; compare bit patterns via re-encode.
		return bytes.Equal(EncodeFloat64(got), EncodeFloat64(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortableKeysPreserveOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		ka, kb := SortableUint64Key(a), SortableUint64Key(b)
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortableKeyRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		got, err := FromSortableUint64Key(SortableUint64Key(v))
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrorsOnShortInput(t *testing.T) {
	if _, err := Uint64([]byte{1, 2}); err == nil {
		t.Fatal("short Uint64 accepted")
	}
	if _, err := DecodeFloat64(nil); err == nil {
		t.Fatal("nil float accepted")
	}
	if _, err := FromSortableUint64Key([]byte{1}); err == nil {
		t.Fatal("short sortable key accepted")
	}
	if _, _, err := Int64(nil); err == nil {
		t.Fatal("empty Int64 accepted")
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	key := bytes.Repeat([]byte("k"), 10)
	val := bytes.Repeat([]byte("v"), 90)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.SetBytes(100)
	for i := 0; i < b.N; i++ {
		if buf.Len() > 64<<20 {
			buf.Reset()
		}
		_ = w.Write(key, val)
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	key := bytes.Repeat([]byte("k"), 10)
	val := bytes.Repeat([]byte("v"), 90)
	for i := 0; i < 10000; i++ {
		_ = w.Write(key, val)
	}
	data := buf.Bytes()
	b.SetBytes(100)
	b.ResetTimer()
	r := NewReader(bytes.NewReader(data))
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err == io.EOF {
			r = NewReader(bytes.NewReader(data))
		}
	}
}
