package serde

import (
	"encoding/binary"
	"fmt"
)

// Column encodings. The encoder picks the smallest representation per
// column chunk; the decoder dispatches on the tag byte.
const (
	encPlainInt   = byte(1) // zigzag varints
	encRLEInt     = byte(2) // (value, runLength) pairs of varints
	encPlainStr   = byte(3) // varint-length-prefixed strings
	encDictStr    = byte(4) // dictionary + varint indexes
	encDeltaInt   = byte(5) // first value + zigzag varint deltas
	maxColumnRows = 1 << 28
)

// IntColumn is a chunk of int64 values with adaptive encoding: it tries
// plain, RLE and delta and emits the smallest. Sorted or repetitive data
// (timestamps, counters, categorical codes) compresses heavily.
type IntColumn []int64

// Encode serializes the column.
func (c IntColumn) Encode() []byte {
	plain := c.encodePlain()
	rle := c.encodeRLE()
	delta := c.encodeDelta()
	best := plain
	if len(rle) < len(best) {
		best = rle
	}
	if len(delta) < len(best) {
		best = delta
	}
	return best
}

func (c IntColumn) encodePlain() []byte {
	out := []byte{encPlainInt}
	out = binary.AppendUvarint(out, uint64(len(c)))
	for _, v := range c {
		out = AppendInt64(out, v)
	}
	return out
}

func (c IntColumn) encodeRLE() []byte {
	out := []byte{encRLEInt}
	out = binary.AppendUvarint(out, uint64(len(c)))
	for i := 0; i < len(c); {
		j := i + 1
		for j < len(c) && c[j] == c[i] {
			j++
		}
		out = AppendInt64(out, c[i])
		out = binary.AppendUvarint(out, uint64(j-i))
		i = j
	}
	return out
}

func (c IntColumn) encodeDelta() []byte {
	out := []byte{encDeltaInt}
	out = binary.AppendUvarint(out, uint64(len(c)))
	prev := int64(0)
	for _, v := range c {
		out = AppendInt64(out, v-prev)
		prev = v
	}
	return out
}

// DecodeIntColumn inverts IntColumn.Encode.
func DecodeIntColumn(b []byte) (IntColumn, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, ErrCorrupt
	}
	b = b[sz:]
	out := make(IntColumn, 0, n)
	switch tag {
	case encPlainInt:
		for uint64(len(out)) < n {
			v, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			out = append(out, v)
		}
	case encRLEInt:
		for uint64(len(out)) < n {
			v, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			run, sz := binary.Uvarint(b)
			if sz <= 0 || run == 0 || uint64(len(out))+run > n {
				return nil, ErrCorrupt
			}
			b = b[sz:]
			for k := uint64(0); k < run; k++ {
				out = append(out, v)
			}
		}
	case encDeltaInt:
		prev := int64(0)
		for uint64(len(out)) < n {
			d, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			prev += d
			out = append(out, prev)
		}
	default:
		return nil, fmt.Errorf("%w: unknown int encoding %d", ErrCorrupt, tag)
	}
	return out, nil
}

// StringColumn is a chunk of string values with adaptive plain/dictionary
// encoding. Low-cardinality columns (country, event type) dict-encode to a
// fraction of their plain size.
type StringColumn []string

// Encode serializes the column.
func (c StringColumn) Encode() []byte {
	plain := c.encodePlain()
	dict := c.encodeDict()
	if dict != nil && len(dict) < len(plain) {
		return dict
	}
	return plain
}

func (c StringColumn) encodePlain() []byte {
	out := []byte{encPlainStr}
	out = binary.AppendUvarint(out, uint64(len(c)))
	for _, s := range c {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	return out
}

// encodeDict returns nil when cardinality is too high to bother.
func (c StringColumn) encodeDict() []byte {
	index := map[string]uint64{}
	var dict []string
	for _, s := range c {
		if _, ok := index[s]; !ok {
			index[s] = uint64(len(dict))
			dict = append(dict, s)
			if len(dict) > len(c)/2+1 {
				return nil
			}
		}
	}
	out := []byte{encDictStr}
	out = binary.AppendUvarint(out, uint64(len(c)))
	out = binary.AppendUvarint(out, uint64(len(dict)))
	for _, s := range dict {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	for _, s := range c {
		out = binary.AppendUvarint(out, index[s])
	}
	return out
}

// DecodeStringColumn inverts StringColumn.Encode.
func DecodeStringColumn(b []byte) (StringColumn, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, ErrCorrupt
	}
	b = b[sz:]
	readStr := func() (string, error) {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < l {
			return "", ErrCorrupt
		}
		s := string(b[sz : sz+int(l)])
		b = b[sz+int(l):]
		return s, nil
	}
	out := make(StringColumn, 0, n)
	switch tag {
	case encPlainStr:
		for uint64(len(out)) < n {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
	case encDictStr:
		dn, sz := binary.Uvarint(b)
		if sz <= 0 || dn > n {
			return nil, ErrCorrupt
		}
		b = b[sz:]
		dict := make([]string, 0, dn)
		for uint64(len(dict)) < dn {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			dict = append(dict, s)
		}
		for uint64(len(out)) < n {
			idx, sz := binary.Uvarint(b)
			if sz <= 0 || idx >= uint64(len(dict)) {
				return nil, ErrCorrupt
			}
			b = b[sz:]
			out = append(out, dict[idx])
		}
	default:
		return nil, fmt.Errorf("%w: unknown string encoding %d", ErrCorrupt, tag)
	}
	return out, nil
}
