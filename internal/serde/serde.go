// Package serde defines the wire formats the framework moves data in: a
// varint-framed key/value record stream (the shuffle and DFS block format)
// and typed codecs for common scalar types. A columnar batch format with
// dictionary and run-length encodings lives in columnar.go.
package serde

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt is returned when a stream fails structural validation.
var ErrCorrupt = errors.New("serde: corrupt stream")

// Record is one key/value pair on the wire. Key and Value alias the
// decoder's buffer until the next Read; copy them to retain.
type Record struct {
	Key, Value []byte
}

// Writer encodes records as [varint keyLen][key][varint valLen][value].
type Writer struct {
	w   io.Writer
	buf [2 * binary.MaxVarintLen64]byte
	n   int64
}

// NewWriter returns a record writer on w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Write appends one record. It reports the first underlying write error.
func (w *Writer) Write(key, value []byte) error {
	n := binary.PutUvarint(w.buf[:], uint64(len(key)))
	n += binary.PutUvarint(w.buf[n:], uint64(len(value)))
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return err
	}
	if _, err := w.w.Write(key); err != nil {
		return err
	}
	if _, err := w.w.Write(value); err != nil {
		return err
	}
	w.n += int64(n + len(key) + len(value))
	return nil
}

// BytesWritten returns the total encoded bytes so far.
func (w *Writer) BytesWritten() int64 { return w.n }

// Reader decodes a record stream produced by Writer.
type Reader struct {
	r   *countingByteReader
	buf []byte
}

type countingByteReader struct {
	r   io.Reader
	one [1]byte
}

func (c *countingByteReader) ReadByte() (byte, error) {
	_, err := io.ReadFull(c.r, c.one[:])
	return c.one[0], err
}

// NewReader returns a record reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: &countingByteReader{r: r}}
}

// maxRecordLen guards against corrupt length prefixes allocating the world.
const maxRecordLen = 1 << 30

// Read returns the next record, or io.EOF at a clean end of stream. The
// returned slices are valid until the next Read.
func (r *Reader) Read() (Record, error) {
	kl, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	vl, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Record{}, fmt.Errorf("%w: truncated value length", ErrCorrupt)
	}
	if kl > maxRecordLen || vl > maxRecordLen {
		return Record{}, fmt.Errorf("%w: implausible record size %d/%d", ErrCorrupt, kl, vl)
	}
	need := int(kl + vl)
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	r.buf = r.buf[:need]
	if _, err := io.ReadFull(r.r.r, r.buf); err != nil {
		return Record{}, fmt.Errorf("%w: truncated record body", ErrCorrupt)
	}
	return Record{Key: r.buf[:kl], Value: r.buf[kl:need]}, nil
}

// AppendUint64 appends v in little-endian fixed width.
func AppendUint64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// Uint64 decodes a fixed-width little-endian uint64.
func Uint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, ErrCorrupt
	}
	return binary.LittleEndian.Uint64(b), nil
}

// zigzag maps signed to unsigned so small magnitudes stay small varints.
func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendInt64 appends v as a zigzag varint.
func AppendInt64(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, zigzag(v))
}

// Int64 decodes a zigzag varint, returning the value and bytes consumed.
func Int64(b []byte) (int64, int, error) {
	u, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, ErrCorrupt
	}
	return unzigzag(u), n, nil
}

// EncodeInt64 encodes v standalone.
func EncodeInt64(v int64) []byte { return AppendInt64(nil, v) }

// DecodeInt64 decodes a standalone int64.
func DecodeInt64(b []byte) (int64, error) {
	v, _, err := Int64(b)
	return v, err
}

// EncodeFloat64 encodes v as fixed 8 bytes (IEEE 754 bits, little-endian).
func EncodeFloat64(v float64) []byte {
	return AppendUint64(nil, math.Float64bits(v))
}

// DecodeFloat64 decodes EncodeFloat64's output.
func DecodeFloat64(b []byte) (float64, error) {
	u, err := Uint64(b)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(u), nil
}

// SortableUint64Key encodes v so that byte-wise comparison matches numeric
// order (big-endian) — the TeraSort key format.
func SortableUint64Key(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// FromSortableUint64Key inverts SortableUint64Key.
func FromSortableUint64Key(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, ErrCorrupt
	}
	return binary.BigEndian.Uint64(b), nil
}
