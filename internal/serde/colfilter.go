package serde

import (
	"encoding/binary"
	"math"
)

// Encoding-aware column scans. These are the primitives the query layer's
// predicate pushdown compiles onto: instead of decode-then-filter, the
// predicate runs against the encoded representation and exploits it —
// an RLE run evaluates the predicate once per run regardless of length,
// and a dictionary-encoded string column evaluates it once per distinct
// dictionary entry rather than once per row. The returned selection
// vector then drives SelectXColumn, which materializes only the chosen
// positions (and skips entirely-unselected RLE runs without building
// their values).
//
// FilterStats reports how much work the encoding saved: Rows is the
// column length, PredEvals how many times the predicate actually ran.
// For plain encodings PredEvals == Rows; for RLE and dictionary columns
// it is the run or dictionary count.
type FilterStats struct {
	Rows      int
	PredEvals int
}

// FilterIntColumn evaluates keep over an encoded int column and returns
// the selection vector. RLE runs are evaluated once per run.
func FilterIntColumn(b []byte, keep func(int64) bool) ([]bool, FilterStats, error) {
	var st FilterStats
	if len(b) == 0 {
		return nil, st, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, st, ErrCorrupt
	}
	b = b[sz:]
	sel := make([]bool, n)
	st.Rows = int(n)
	switch tag {
	case encPlainInt:
		for i := uint64(0); i < n; i++ {
			v, used, err := Int64(b)
			if err != nil {
				return nil, st, err
			}
			b = b[used:]
			st.PredEvals++
			sel[i] = keep(v)
		}
	case encRLEInt:
		at := uint64(0)
		for at < n {
			v, used, err := Int64(b)
			if err != nil {
				return nil, st, err
			}
			b = b[used:]
			run, sz := binary.Uvarint(b)
			if sz <= 0 || run == 0 || at+run > n {
				return nil, st, ErrCorrupt
			}
			b = b[sz:]
			st.PredEvals++
			if keep(v) {
				for k := uint64(0); k < run; k++ {
					sel[at+k] = true
				}
			}
			at += run
		}
	case encDeltaInt:
		prev := int64(0)
		for i := uint64(0); i < n; i++ {
			d, used, err := Int64(b)
			if err != nil {
				return nil, st, err
			}
			b = b[used:]
			prev += d
			st.PredEvals++
			sel[i] = keep(prev)
		}
	default:
		return nil, st, ErrCorrupt
	}
	return sel, st, nil
}

// SelectIntColumn decodes only the selected positions of an encoded int
// column, in position order. RLE runs with no selected position are
// skipped without materializing their values. sel must have the column's
// length.
func SelectIntColumn(b []byte, sel []bool) ([]int64, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, ErrCorrupt
	}
	b = b[sz:]
	if uint64(len(sel)) != n {
		return nil, ErrCorrupt
	}
	var out []int64
	switch tag {
	case encPlainInt:
		for i := uint64(0); i < n; i++ {
			v, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			if sel[i] {
				out = append(out, v)
			}
		}
	case encRLEInt:
		at := uint64(0)
		for at < n {
			v, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			run, sz := binary.Uvarint(b)
			if sz <= 0 || run == 0 || at+run > n {
				return nil, ErrCorrupt
			}
			b = b[sz:]
			for k := uint64(0); k < run; k++ {
				if sel[at+k] {
					out = append(out, v)
				}
			}
			at += run
		}
	case encDeltaInt:
		prev := int64(0)
		for i := uint64(0); i < n; i++ {
			d, used, err := Int64(b)
			if err != nil {
				return nil, err
			}
			b = b[used:]
			prev += d
			if sel[i] {
				out = append(out, prev)
			}
		}
	default:
		return nil, ErrCorrupt
	}
	return out, nil
}

// FloatColumn is a chunk of float64 values, stored as the IEEE-754 bit
// patterns in an IntColumn (repeated values RLE-compress; the adaptive
// int encodings do the rest). NaNs round-trip bit-exactly.
type FloatColumn []float64

// Encode serializes the column.
func (c FloatColumn) Encode() []byte {
	ints := make(IntColumn, len(c))
	for i, v := range c {
		ints[i] = int64(math.Float64bits(v))
	}
	return ints.Encode()
}

// DecodeFloatColumn inverts FloatColumn.Encode.
func DecodeFloatColumn(b []byte) (FloatColumn, error) {
	ints, err := DecodeIntColumn(b)
	if err != nil {
		return nil, err
	}
	out := make(FloatColumn, len(ints))
	for i, v := range ints {
		out[i] = math.Float64frombits(uint64(v))
	}
	return out, nil
}

// FilterFloatColumn evaluates keep over an encoded float column,
// RLE-aware like FilterIntColumn.
func FilterFloatColumn(b []byte, keep func(float64) bool) ([]bool, FilterStats, error) {
	return FilterIntColumn(b, func(v int64) bool {
		return keep(math.Float64frombits(uint64(v)))
	})
}

// SelectFloatColumn decodes only the selected positions of an encoded
// float column.
func SelectFloatColumn(b []byte, sel []bool) ([]float64, error) {
	ints, err := SelectIntColumn(b, sel)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(ints))
	for i, v := range ints {
		out[i] = math.Float64frombits(uint64(v))
	}
	return out, nil
}

// FilterStringColumn evaluates keep over an encoded string column. On a
// dictionary-encoded column the predicate runs once per dictionary entry
// — for a low-cardinality column that is a small constant instead of one
// evaluation per row — and the per-row pass only tests a bit per index.
func FilterStringColumn(b []byte, keep func(string) bool) ([]bool, FilterStats, error) {
	var st FilterStats
	if len(b) == 0 {
		return nil, st, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, st, ErrCorrupt
	}
	b = b[sz:]
	sel := make([]bool, n)
	st.Rows = int(n)
	readStr := func() (string, error) {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < l {
			return "", ErrCorrupt
		}
		s := string(b[sz : sz+int(l)])
		b = b[sz+int(l):]
		return s, nil
	}
	switch tag {
	case encPlainStr:
		for i := uint64(0); i < n; i++ {
			s, err := readStr()
			if err != nil {
				return nil, st, err
			}
			st.PredEvals++
			sel[i] = keep(s)
		}
	case encDictStr:
		dn, sz := binary.Uvarint(b)
		if sz <= 0 || dn > n {
			return nil, st, ErrCorrupt
		}
		b = b[sz:]
		keepIdx := make([]bool, dn)
		for d := uint64(0); d < dn; d++ {
			s, err := readStr()
			if err != nil {
				return nil, st, err
			}
			st.PredEvals++
			keepIdx[d] = keep(s)
		}
		for i := uint64(0); i < n; i++ {
			idx, sz := binary.Uvarint(b)
			if sz <= 0 || idx >= dn {
				return nil, st, ErrCorrupt
			}
			b = b[sz:]
			sel[i] = keepIdx[idx]
		}
	default:
		return nil, st, ErrCorrupt
	}
	return sel, st, nil
}

// SelectStringColumn decodes only the selected positions of an encoded
// string column. On a dictionary column, dictionary entries are decoded
// once and selected rows share them.
func SelectStringColumn(b []byte, sel []bool) ([]string, error) {
	if len(b) == 0 {
		return nil, ErrCorrupt
	}
	tag := b[0]
	b = b[1:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > maxColumnRows {
		return nil, ErrCorrupt
	}
	b = b[sz:]
	if uint64(len(sel)) != n {
		return nil, ErrCorrupt
	}
	readStr := func() (string, error) {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < l {
			return "", ErrCorrupt
		}
		s := string(b[sz : sz+int(l)])
		b = b[sz+int(l):]
		return s, nil
	}
	var out []string
	switch tag {
	case encPlainStr:
		for i := uint64(0); i < n; i++ {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			if sel[i] {
				out = append(out, s)
			}
		}
	case encDictStr:
		dn, sz := binary.Uvarint(b)
		if sz <= 0 || dn > n {
			return nil, ErrCorrupt
		}
		b = b[sz:]
		dict := make([]string, 0, dn)
		for uint64(len(dict)) < dn {
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			dict = append(dict, s)
		}
		for i := uint64(0); i < n; i++ {
			idx, sz := binary.Uvarint(b)
			if sz <= 0 || idx >= dn {
				return nil, ErrCorrupt
			}
			b = b[sz:]
			if sel[i] {
				out = append(out, dict[idx])
			}
		}
	default:
		return nil, ErrCorrupt
	}
	return out, nil
}
