package serde

import (
	"testing"
	"testing/quick"
)

func TestIntColumnRoundTrip(t *testing.T) {
	cases := map[string]IntColumn{
		"empty":     {},
		"single":    {42},
		"mixed":     {1, -5, 1 << 40, 0, 7, 7, 7},
		"all-same":  {9, 9, 9, 9, 9, 9, 9, 9},
		"ascending": {100, 101, 102, 103, 104},
		"negatives": {-1, -2, -3, -1000000},
	}
	for name, col := range cases {
		enc := col.Encode()
		dec, err := DecodeIntColumn(enc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dec) != len(col) {
			t.Fatalf("%s: length %d, want %d", name, len(dec), len(col))
		}
		for i := range col {
			if dec[i] != col[i] {
				t.Fatalf("%s[%d] = %d, want %d", name, i, dec[i], col[i])
			}
		}
	}
}

func TestIntColumnRoundTripProperty(t *testing.T) {
	f := func(vals []int64) bool {
		col := IntColumn(vals)
		dec, err := DecodeIntColumn(col.Encode())
		if err != nil || len(dec) != len(col) {
			return false
		}
		for i := range col {
			if dec[i] != col[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntColumnRLEWinsOnRuns(t *testing.T) {
	runs := make(IntColumn, 10000)
	for i := range runs {
		runs[i] = int64(i / 1000) // 10 long runs
	}
	enc := runs.Encode()
	plain := runs.encodePlain()
	if len(enc) >= len(plain)/10 {
		t.Fatalf("run data encoded to %d bytes, plain is %d — RLE not chosen?", len(enc), len(plain))
	}
}

func TestIntColumnDeltaWinsOnSorted(t *testing.T) {
	sorted := make(IntColumn, 10000)
	for i := range sorted {
		sorted[i] = 1_000_000_000 + int64(i)*3
	}
	enc := sorted.Encode()
	plain := sorted.encodePlain()
	if len(enc) >= len(plain)/2 {
		t.Fatalf("sorted data encoded to %d bytes, plain is %d — delta not chosen?", len(enc), len(plain))
	}
}

func TestStringColumnRoundTrip(t *testing.T) {
	cases := map[string]StringColumn{
		"empty":    {},
		"single":   {"hello"},
		"mixed":    {"a", "", "bb", "a", "ccc", "a"},
		"binary":   {"\x00\x01", "\xff"},
		"repeated": {"x", "x", "x", "x"},
	}
	for name, col := range cases {
		dec, err := DecodeStringColumn(col.Encode())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dec) != len(col) {
			t.Fatalf("%s: length %d, want %d", name, len(dec), len(col))
		}
		for i := range col {
			if dec[i] != col[i] {
				t.Fatalf("%s[%d] = %q, want %q", name, i, dec[i], col[i])
			}
		}
	}
}

func TestStringColumnRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		col := StringColumn(vals)
		dec, err := DecodeStringColumn(col.Encode())
		if err != nil || len(dec) != len(col) {
			return false
		}
		for i := range col {
			if dec[i] != col[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringColumnDictWinsOnLowCardinality(t *testing.T) {
	col := make(StringColumn, 5000)
	countries := []string{"united-states", "germany", "japan", "brazil"}
	for i := range col {
		col[i] = countries[i%len(countries)]
	}
	enc := col.Encode()
	plain := col.encodePlain()
	if len(enc) >= len(plain)/4 {
		t.Fatalf("low-cardinality column encoded to %d bytes, plain is %d", len(enc), len(plain))
	}
}

func TestStringColumnHighCardinalityFallsBackToPlain(t *testing.T) {
	col := make(StringColumn, 100)
	for i := range col {
		col[i] = string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune('A'+i%26))
	}
	if col.encodeDict() != nil && len(col.encodeDict()) < len(col.encodePlain()) {
		// Dict may still win legitimately; just verify round trip.
		t.Skip("dict legitimately smaller")
	}
	dec, err := DecodeStringColumn(col.Encode())
	if err != nil || len(dec) != len(col) {
		t.Fatal("high-cardinality round trip failed")
	}
}

func TestColumnDecodeRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {}, {99}, {encPlainInt}, {encRLEInt, 5, 1}, {encDictStr, 10}} {
		if _, err := DecodeIntColumn(b); err == nil && len(b) > 0 && b[0] != encDictStr {
			t.Fatalf("DecodeIntColumn(%v) accepted garbage", b)
		}
		if _, err := DecodeStringColumn(b); err == nil && len(b) > 0 && b[0] == encDictStr {
			t.Fatalf("DecodeStringColumn(%v) accepted garbage", b)
		}
	}
}

func BenchmarkIntColumnEncode(b *testing.B) {
	col := make(IntColumn, 10000)
	for i := range col {
		col[i] = int64(i * 7)
	}
	b.SetBytes(int64(len(col) * 8))
	for i := 0; i < b.N; i++ {
		_ = col.Encode()
	}
}

func BenchmarkStringColumnDictEncode(b *testing.B) {
	col := make(StringColumn, 10000)
	words := []string{"get", "put", "scan", "delete"}
	for i := range col {
		col[i] = words[i%4]
	}
	for i := 0; i < b.N; i++ {
		_ = col.Encode()
	}
}
