package serde

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestSortableInt64OrderAndRoundTrip(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := SortableInt64Key(a), SortableInt64Key(b)
		cmp := bytes.Compare(ka, kb)
		if (a < b) != (cmp < 0) || (a == b) != (cmp == 0) {
			return false
		}
		ra, err := FromSortableInt64Key(ka)
		return err == nil && ra == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortableInt64Extremes(t *testing.T) {
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		if bytes.Compare(SortableInt64Key(vals[i-1]), SortableInt64Key(vals[i])) >= 0 {
			t.Fatalf("order broken between %d and %d", vals[i-1], vals[i])
		}
	}
}

func TestSortableFloat64OrderAndRoundTrip(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN ordering is unspecified beyond being total
		}
		ka, kb := SortableFloat64Key(a), SortableFloat64Key(b)
		cmp := bytes.Compare(ka, kb)
		if a < b && cmp >= 0 {
			return false
		}
		if a > b && cmp <= 0 {
			return false
		}
		ra, err := FromSortableFloat64Key(ka)
		if err != nil {
			return false
		}
		return ra == a || (ra == 0 && a == 0) // -0/+0 both decode to a zero
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortableFloat64Extremes(t *testing.T) {
	vals := []float64{math.Inf(-1), -math.MaxFloat64, -1, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 1, math.MaxFloat64, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if bytes.Compare(SortableFloat64Key(vals[i-1]), SortableFloat64Key(vals[i])) >= 0 {
			t.Fatalf("order broken between %v and %v", vals[i-1], vals[i])
		}
	}
}

func TestSortableStringOrderAndRoundTrip(t *testing.T) {
	f := func(a, b string) bool {
		ka, kb := SortableStringKey(a), SortableStringKey(b)
		cmp := bytes.Compare(ka, kb)
		if (a < b) != (cmp < 0) || (a == b) != (cmp == 0) {
			return false
		}
		ra, n, err := FromSortableStringKey(ka)
		return err == nil && ra == a && n == len(ka)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSortableStringSelfDelimiting(t *testing.T) {
	// Concatenated keys decode one at a time and preserve composite order.
	k := append(SortableStringKey("ab"), SortableStringKey("cd")...)
	s1, n, err := FromSortableStringKey(k)
	if err != nil || s1 != "ab" {
		t.Fatalf("first = %q, %v", s1, err)
	}
	s2, _, err := FromSortableStringKey(k[n:])
	if err != nil || s2 != "cd" {
		t.Fatalf("second = %q, %v", s2, err)
	}
	// Composite ordering: ("a","z") < ("ab","a") iff "a" < "ab".
	k1 := append(SortableStringKey("a"), SortableStringKey("z")...)
	k2 := append(SortableStringKey("ab"), SortableStringKey("a")...)
	if bytes.Compare(k1, k2) >= 0 {
		t.Fatal("composite key order broken")
	}
}

func TestSortableStringEmbeddedNulAndPrefix(t *testing.T) {
	cases := [][2]string{
		{"a\x00b", "a\x00c"},
		{"a", "a\x00"},
		{"", "a"},
		{"a", "ab"},
	}
	for _, c := range cases {
		ka, kb := SortableStringKey(c[0]), SortableStringKey(c[1])
		if bytes.Compare(ka, kb) >= 0 {
			t.Fatalf("%q not below %q after encoding", c[0], c[1])
		}
	}
}

func TestSortableDecodeErrors(t *testing.T) {
	if _, err := FromSortableInt64Key([]byte{1}); err == nil {
		t.Fatal("short int key accepted")
	}
	if _, err := FromSortableFloat64Key(nil); err == nil {
		t.Fatal("nil float key accepted")
	}
	for _, bad := range [][]byte{{}, {0x00}, {0x61, 0x00}, {0x00, 0x02}} {
		if _, _, err := FromSortableStringKey(bad); err == nil {
			t.Fatalf("bad string key %v accepted", bad)
		}
	}
}
