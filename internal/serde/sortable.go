package serde

import (
	"encoding/binary"
	"math"
)

// Order-preserving scalar encodings: byte-wise lexicographic comparison of
// the encodings matches the natural ordering of the values. These are the
// key formats for range partitioning and distributed sorts (SortByKey, the
// table layer's ORDER BY).

// SortableInt64Key encodes v so byte order equals signed numeric order:
// flip the sign bit, then big-endian.
func SortableInt64Key(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v)^(1<<63))
	return b[:]
}

// FromSortableInt64Key inverts SortableInt64Key.
func FromSortableInt64Key(b []byte) (int64, error) {
	if len(b) < 8 {
		return 0, ErrCorrupt
	}
	return int64(binary.BigEndian.Uint64(b) ^ (1 << 63)), nil
}

// SortableFloat64Key encodes v with the IEEE-754 total-order trick:
// non-negative floats get their sign bit flipped; negative floats get all
// bits flipped. Byte order then matches numeric order (with -0 < +0 and
// NaNs ordered by payload at the extremes).
func SortableFloat64Key(v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], bits)
	return b[:]
}

// FromSortableFloat64Key inverts SortableFloat64Key.
func FromSortableFloat64Key(b []byte) (float64, error) {
	if len(b) < 8 {
		return 0, ErrCorrupt
	}
	bits := binary.BigEndian.Uint64(b)
	if bits&(1<<63) != 0 {
		bits &^= 1 << 63
	} else {
		bits = ^bits
	}
	return math.Float64frombits(bits), nil
}

// SortableStringKey encodes s so concatenated multi-column keys stay
// order-preserving and self-delimiting: each 0x00 byte becomes 0x00 0xFF,
// and the string ends with 0x00 0x01. (Standard "escape and terminate"
// encoding used by ordered key-value stores.)
func SortableStringKey(s string) []byte {
	out := make([]byte, 0, len(s)+2)
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			out = append(out, 0x00, 0xFF)
		} else {
			out = append(out, s[i])
		}
	}
	return append(out, 0x00, 0x01)
}

// FromSortableStringKey decodes the next SortableStringKey from b,
// returning the string and the bytes consumed.
func FromSortableStringKey(b []byte) (string, int, error) {
	var out []byte
	for i := 0; i < len(b); {
		if b[i] != 0x00 {
			out = append(out, b[i])
			i++
			continue
		}
		if i+1 >= len(b) {
			return "", 0, ErrCorrupt
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i += 2
		case 0x01:
			return string(out), i + 2, nil
		default:
			return "", 0, ErrCorrupt
		}
	}
	return "", 0, ErrCorrupt
}
