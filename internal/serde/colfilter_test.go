package serde

import (
	"math"
	"testing"
)

func applySel[T any](vals []T, sel []bool) []T {
	var out []T
	for i, v := range vals {
		if sel[i] {
			out = append(out, v)
		}
	}
	return out
}

func TestFilterIntColumnMatchesDecode(t *testing.T) {
	cases := map[string]IntColumn{
		"plain": {9, -4, 17, 0, 3, 9, 1 << 40},
		"rle":   {5, 5, 5, 5, 5, 7, 7, 7, 7, 7, 7, 7, 2},
		"delta": {100, 101, 102, 103, 104, 105, 106, 107, 108, 109},
		"empty": {},
	}
	keep := func(v int64) bool { return v >= 5 }
	for name, col := range cases {
		enc := col.Encode()
		sel, st, err := FilterIntColumn(enc, keep)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Rows != len(col) {
			t.Fatalf("%s: stats rows %d, want %d", name, st.Rows, len(col))
		}
		for i, v := range col {
			if sel[i] != keep(v) {
				t.Fatalf("%s: sel[%d] = %v for value %d", name, i, sel[i], v)
			}
		}
		got, err := SelectIntColumn(enc, sel)
		if err != nil {
			t.Fatalf("%s: select: %v", name, err)
		}
		want := applySel(col, sel)
		if len(got) != len(want) {
			t.Fatalf("%s: selected %d, want %d", name, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: [%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestFilterIntColumnRLESavesEvals(t *testing.T) {
	col := make(IntColumn, 1000)
	for i := range col {
		col[i] = int64(i / 100) // 10 runs of 100
	}
	enc := col.Encode()
	if enc[0] != encRLEInt {
		t.Fatalf("expected RLE encoding, got tag %d", enc[0])
	}
	_, st, err := FilterIntColumn(enc, func(v int64) bool { return v%2 == 0 })
	if err != nil {
		t.Fatal(err)
	}
	if st.PredEvals != 10 {
		t.Fatalf("pred evals = %d, want 10 (one per run)", st.PredEvals)
	}
}

func TestFilterStringColumnDictSavesEvals(t *testing.T) {
	col := make(StringColumn, 600)
	kinds := []string{"emea", "apac", "amer"}
	for i := range col {
		col[i] = kinds[i%3]
	}
	enc := col.Encode()
	if enc[0] != encDictStr {
		t.Fatalf("expected dict encoding, got tag %d", enc[0])
	}
	sel, st, err := FilterStringColumn(enc, func(s string) bool { return s == "apac" })
	if err != nil {
		t.Fatal(err)
	}
	if st.PredEvals != 3 {
		t.Fatalf("pred evals = %d, want 3 (one per dict entry)", st.PredEvals)
	}
	got, err := SelectStringColumn(enc, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 200 {
		t.Fatalf("selected %d, want 200", len(got))
	}
	for _, s := range got {
		if s != "apac" {
			t.Fatalf("leaked %q", s)
		}
	}
}

func TestFilterStringColumnPlain(t *testing.T) {
	col := StringColumn{"a", "bb", "ccc", "dddd", "eeeee", "x", "yy", "zzz"}
	enc := col.encodePlain()
	sel, st, err := FilterStringColumn(enc, func(s string) bool { return len(s) > 2 })
	if err != nil {
		t.Fatal(err)
	}
	if st.PredEvals != len(col) {
		t.Fatalf("pred evals = %d, want %d", st.PredEvals, len(col))
	}
	got, err := SelectStringColumn(enc, sel)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ccc", "dddd", "eeeee", "zzz"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFloatColumnRoundTripAndFilter(t *testing.T) {
	col := FloatColumn{1.5, -2.25, 0, math.Inf(1), math.Inf(-1), 1.5, 1.5, math.NaN(), math.Copysign(0, -1)}
	enc := col.Encode()
	dec, err := DecodeFloatColumn(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(col) {
		t.Fatalf("decoded %d, want %d", len(dec), len(col))
	}
	for i := range col {
		if math.Float64bits(dec[i]) != math.Float64bits(col[i]) {
			t.Fatalf("[%d] = %v bits, want %v", i, dec[i], col[i])
		}
	}
	sel, _, err := FilterFloatColumn(enc, func(v float64) bool { return v > 0 })
	if err != nil {
		t.Fatal(err)
	}
	got, err := SelectFloatColumn(enc, sel)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, math.Inf(1), 1.5, 1.5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFilterCorruptColumns(t *testing.T) {
	if _, _, err := FilterIntColumn(nil, func(int64) bool { return true }); err == nil {
		t.Fatal("nil int column accepted")
	}
	if _, _, err := FilterStringColumn([]byte{99, 1}, func(string) bool { return true }); err == nil {
		t.Fatal("unknown string tag accepted")
	}
	if _, err := SelectIntColumn(IntColumn{1, 2, 3}.Encode(), []bool{true}); err == nil {
		t.Fatal("selection length mismatch accepted")
	}
	if _, err := SelectStringColumn(StringColumn{"a", "b"}.Encode(), []bool{true}); err == nil {
		t.Fatal("selection length mismatch accepted")
	}
	// Truncated RLE body.
	enc := IntColumn{7, 7, 7, 7}.encodeRLE()
	if _, _, err := FilterIntColumn(enc[:3], func(int64) bool { return true }); err == nil {
		t.Fatal("truncated RLE accepted")
	}
}
