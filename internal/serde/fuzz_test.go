package serde

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// Fuzz targets for the decode paths: arbitrary bytes must never panic —
// every malformed input has to surface as ErrCorrupt (or a clean EOF),
// and anything that does decode must survive a re-encode/re-decode
// round trip unchanged.

func FuzzReaderDecode(f *testing.F) {
	// A well-formed two-record stream, a truncated body, an implausible
	// length prefix, and junk.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.Write([]byte("key"), []byte("value"))
	_ = w.Write(nil, []byte{0x00, 0xff})
	f.Add(buf.Bytes())
	f.Add([]byte{0x05, 0x01, 'a'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add([]byte("not a record stream"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var recs []Record
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decode error is not ErrCorrupt: %v", err)
				}
				return // malformed input, correctly classified
			}
			recs = append(recs, Record{
				Key:   append([]byte(nil), rec.Key...),
				Value: append([]byte(nil), rec.Value...),
			})
		}
		// Clean decode: re-encoding and re-decoding must reproduce the
		// records (the byte stream itself may differ — varints accept
		// non-minimal encodings the writer never emits).
		var out bytes.Buffer
		w := NewWriter(&out)
		for _, rec := range recs {
			if err := w.Write(rec.Key, rec.Value); err != nil {
				t.Fatal(err)
			}
		}
		r2 := NewReader(bytes.NewReader(out.Bytes()))
		for i, want := range recs {
			got, err := r2.Read()
			if err != nil {
				t.Fatalf("re-decode record %d: %v", i, err)
			}
			if !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
				t.Fatalf("record %d changed across round trip", i)
			}
		}
		if _, err := r2.Read(); err != io.EOF {
			t.Fatalf("re-decode has trailing data: %v", err)
		}
	})
}

func FuzzIntColumnDecode(f *testing.F) {
	f.Add(IntColumn{1, 2, 3}.Encode())
	f.Add(IntColumn{7, 7, 7, 7, 7, 7, 7, 7}.Encode())       // RLE wins
	f.Add(IntColumn{100, 101, 102, 103, 104, 105}.Encode()) // delta wins
	f.Add([]byte{encRLEInt, 0xff, 0xff, 0xff, 0xff, 0x7f})  // huge row count
	f.Add([]byte{encDeltaInt, 0x02, 0x02})                  // truncated deltas
	f.Add([]byte{0x09, 0x01})                               // unknown tag
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := DecodeIntColumn(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		got, err := DecodeIntColumn(col.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(got) != len(col) {
			t.Fatalf("round trip changed length: %d vs %d", len(got), len(col))
		}
		for i := range col {
			if got[i] != col[i] {
				t.Fatalf("round trip changed value %d: %d vs %d", i, got[i], col[i])
			}
		}
	})
}

func FuzzStringColumnDecode(f *testing.F) {
	f.Add(StringColumn{"a", "b", "c"}.Encode())
	f.Add(StringColumn{"x", "x", "x", "x", "y", "y"}.Encode())   // dict wins
	f.Add([]byte{encDictStr, 0x01, 0x01, 'a', 0x02, 0x00, 0x05}) // index out of range
	f.Add([]byte{encPlainStr, 0x03, 0x01, 'q'})                  // truncated strings
	f.Fuzz(func(t *testing.T, data []byte) {
		col, err := DecodeStringColumn(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		got, err := DecodeStringColumn(col.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(got) != len(col) {
			t.Fatalf("round trip changed length: %d vs %d", len(got), len(col))
		}
		for i := range col {
			if got[i] != col[i] {
				t.Fatalf("round trip changed value %d: %q vs %q", i, got[i], col[i])
			}
		}
	})
}
