package workload

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestTeraGenShape(t *testing.T) {
	recs := TeraGen(1000, 1)
	if len(recs) != 1000 {
		t.Fatalf("n = %d", len(recs))
	}
	for _, r := range recs {
		if len(r.Key) != 10 || len(r.Value) != 90 {
			t.Fatalf("record shape %d/%d", len(r.Key), len(r.Value))
		}
	}
}

func TestTeraGenDeterministicAndSpread(t *testing.T) {
	a := TeraGen(100, 7)
	b := TeraGen(100, 7)
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) {
			t.Fatal("not deterministic")
		}
	}
	// Keys must be well spread: first bytes should cover many values.
	firsts := map[byte]bool{}
	for _, r := range a {
		firsts[r.Key[0]] = true
	}
	if len(firsts) < 50 {
		t.Fatalf("only %d distinct first key bytes in 100 records", len(firsts))
	}
}

func TestTeraSplitsOrderedAndBalanced(t *testing.T) {
	splits := TeraSplits(8)
	if len(splits) != 7 {
		t.Fatalf("splits = %d", len(splits))
	}
	for i := 1; i < len(splits); i++ {
		if bytes.Compare(splits[i-1], splits[i]) >= 0 {
			t.Fatal("splits not ascending")
		}
	}
	// Empirical balance: partition 100k random keys, no partition over 2x.
	recs := TeraGen(20000, 3)
	counts := make([]int, 8)
	for _, r := range recs {
		p := sort.Search(len(splits), func(i int) bool {
			return bytes.Compare(splits[i], r.Key) > 0
		})
		counts[p]++
	}
	for p, c := range counts {
		if c < 1000 || c > 5000 {
			t.Fatalf("partition %d has %d of 20000 keys", p, c)
		}
	}
}

func TestTextShapeAndSkew(t *testing.T) {
	lines := Text(200, 10, 100, 1.0, 5)
	if len(lines) != 200 {
		t.Fatalf("lines = %d", len(lines))
	}
	counts := map[string]int{}
	for _, l := range lines {
		ws := strings.Fields(l)
		if len(ws) != 10 {
			t.Fatalf("line has %d words", len(ws))
		}
		for _, w := range ws {
			counts[w]++
		}
	}
	// Zipf: the most common word appears far more than the median word.
	var freqs []int
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	if freqs[0] < 5*freqs[len(freqs)/2] {
		t.Fatalf("no skew: top=%d median=%d", freqs[0], freqs[len(freqs)/2])
	}
}

func TestKVOpsMix(t *testing.T) {
	ops := KVOps(10000, 1000, 0.99, 0.9, 64, 11)
	reads := 0
	keyCounts := map[string]int{}
	for _, op := range ops {
		if op.Kind == OpGet {
			reads++
			if op.Value != nil {
				t.Fatal("get carries a value")
			}
		} else if len(op.Value) != 64 {
			t.Fatalf("put value size %d", len(op.Value))
		}
		keyCounts[op.Key]++
	}
	frac := float64(reads) / 10000
	if frac < 0.88 || frac > 0.92 {
		t.Fatalf("read fraction %.3f, want ~0.9", frac)
	}
	// Zipf skew: hottest key much hotter than average.
	max := 0
	for _, c := range keyCounts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest key only %d/10000 ops; skew missing", max)
	}
}

func TestRMATShapeAndSkew(t *testing.T) {
	edges := RMAT(10, 8, 13) // 1024 vertices, 8192 edges
	if len(edges) != 8192 {
		t.Fatalf("edges = %d", len(edges))
	}
	deg := map[int64]int{}
	n := int64(1 << 10)
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			t.Fatalf("edge out of range: %+v", e)
		}
		if e.Weight < 1 || e.Weight > 2 {
			t.Fatalf("weight %v out of [1,2]", e.Weight)
		}
		deg[e.From]++
	}
	// Power-law-ish: max out-degree much larger than mean (8).
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	if max < 40 {
		t.Fatalf("max degree %d; R-MAT skew missing", max)
	}
}

func TestClickstreamTimestampsMostlyOrdered(t *testing.T) {
	clicks := Clickstream(5000, 100, 20, 1000, 50*time.Millisecond, 17)
	if len(clicks) != 5000 {
		t.Fatal("wrong count")
	}
	outOfOrder := 0
	var prev time.Duration
	for _, c := range clicks {
		if c.EventTime < prev {
			outOfOrder++
		} else {
			prev = c.EventTime
		}
	}
	if outOfOrder == 0 {
		t.Fatal("expected some out-of-order events")
	}
	if outOfOrder > 1000 {
		t.Fatalf("%d/5000 out of order; too many", outOfOrder)
	}
	// Mean rate ~1000/s → 5000 events in ~5s.
	span := clicks[len(clicks)-1].EventTime
	if span < 3*time.Second || span > 8*time.Second {
		t.Fatalf("span = %v, want ~5s", span)
	}
}

func TestLogisticLearnable(t *testing.T) {
	data := Logistic(2000, 10, 19)
	if len(data.X) != 2000 || len(data.Y) != 2000 || len(data.TrueWeights) != 10 {
		t.Fatal("shape wrong")
	}
	// The true weights must classify most points correctly (~5% noise).
	correct := 0
	for i := range data.X {
		dot := 0.0
		for j := range data.X[i] {
			dot += data.X[i][j] * data.TrueWeights[j]
		}
		pred := 0.0
		if dot > 0 {
			pred = 1
		}
		if pred == data.Y[i] {
			correct++
		}
	}
	acc := float64(correct) / 2000
	if acc < 0.80 {
		t.Fatalf("true weights accuracy %.3f; data not learnable", acc)
	}
}

func TestDiurnalTraceShape(t *testing.T) {
	trace := DiurnalTrace(288, 5*time.Minute, 100, 1000, 3, 23)
	if len(trace) != 288 {
		t.Fatal("wrong length")
	}
	min, max := trace[0].Rate, trace[0].Rate
	for _, p := range trace {
		if p.Rate < min {
			min = p.Rate
		}
		if p.Rate > max {
			max = p.Rate
		}
	}
	if min < 90 {
		t.Fatalf("rate dipped to %v below base", min)
	}
	if max < 900 {
		t.Fatalf("peak %v never approached peakRate", max)
	}
}

func BenchmarkTeraGen(b *testing.B) {
	b.SetBytes(100 * 10000)
	for i := 0; i < b.N; i++ {
		_ = TeraGen(10000, uint64(i))
	}
}

func BenchmarkRMAT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RMAT(12, 8, uint64(i))
	}
}

// TestKVOpsSkewZeroUniform verifies the hpbdc-kvbench `-skew 0` claim:
// a zero Zipf exponent must produce near-uniform key frequencies.
func TestKVOpsSkewZeroUniform(t *testing.T) {
	cases := []struct {
		name string
		n    int
		keys int
	}{
		{"small-keyspace", 40000, 16},
		{"medium-keyspace", 60000, 64},
		{"wide-keyspace", 100000, 256},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := KVOps(tc.n, tc.keys, 0, 0.5, 16, 99)
			freq := map[string]int{}
			for _, op := range ops {
				freq[op.Key]++
			}
			if len(freq) != tc.keys {
				t.Fatalf("saw %d distinct keys, want %d", len(freq), tc.keys)
			}
			expect := float64(tc.n) / float64(tc.keys)
			for k, c := range freq {
				// 4-sigma binomial bound around the uniform expectation.
				sigma := math.Sqrt(expect * (1 - 1/float64(tc.keys)))
				if d := float64(c) - expect; d > 4*sigma || d < -4*sigma {
					t.Fatalf("key %s count %d deviates from uniform %f beyond 4 sigma", k, c, expect)
				}
			}
		})
	}
	// Sanity contrast: heavy skew must NOT be uniform.
	ops := KVOps(40000, 16, 1.2, 0.5, 16, 99)
	freq := map[string]int{}
	for _, op := range ops {
		freq[op.Key]++
	}
	max, min := 0, 1<<30
	for _, c := range freq {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if max < 4*min {
		t.Fatalf("zipf 1.2 looks uniform: max %d min %d", max, min)
	}
}

func TestArrivalGenRateAndFactor(t *testing.T) {
	spec := TenantSpec{ID: "t0", RatePerSec: 1000, ReadFrac: 0.95, Keys: 64}
	g := NewArrivalGen(0, spec, 5)
	var last time.Duration
	n := 0
	for g.Peek() < time.Second {
		a := g.Next()
		if a.At < last {
			t.Fatalf("arrivals out of order: %v after %v", a.At, last)
		}
		if !strings.HasPrefix(a.Op.Key, "t0-") {
			t.Fatalf("key %q not tenant-prefixed", a.Op.Key)
		}
		last = a.At
		n++
	}
	// Poisson(1000) over 1s: 4-sigma is ~±127.
	if n < 850 || n > 1150 {
		t.Fatalf("1s at 1000/s produced %d arrivals", n)
	}
	// Doubling the factor doubles the rate from here on.
	g.SetFactor(2)
	n2 := 0
	for g.Peek() < 2*time.Second {
		g.Next()
		n2++
	}
	if n2 < 1700 || n2 > 2300 {
		t.Fatalf("1s at factor 2 produced %d arrivals", n2)
	}
	// Determinism.
	h1 := NewArrivalGen(0, spec, 5)
	h2 := NewArrivalGen(0, spec, 5)
	for i := 0; i < 100; i++ {
		a, b := h1.Next(), h2.Next()
		if a.At != b.At || a.Op.Key != b.Op.Key || a.Op.Kind != b.Op.Kind {
			t.Fatalf("arrival %d differs between same-seed generators", i)
		}
	}
}

func TestMultiTenantArrivals(t *testing.T) {
	rfA, _ := YCSBMix("A")
	rfC, ok := YCSBMix("C")
	if !ok || rfA != 0.5 || rfC != 1.0 {
		t.Fatalf("YCSB mixes wrong: A=%v C=%v", rfA, rfC)
	}
	if _, ok := YCSBMix("Z"); ok {
		t.Fatal("unknown mix accepted")
	}
	tenants := []TenantSpec{
		{ID: "alpha", RatePerSec: 500, ReadFrac: rfA, Keys: 32},
		{ID: "beta", RatePerSec: 250, ReadFrac: rfC, Keys: 32},
	}
	trace := MultiTenantArrivals(tenants, time.Second, 21)
	if len(trace) < 600 || len(trace) > 900 {
		t.Fatalf("trace length %d for 750/s over 1s", len(trace))
	}
	counts := map[int]int{}
	writes := map[int]int{}
	for i, a := range trace {
		if i > 0 && a.At < trace[i-1].At {
			t.Fatalf("merged trace out of order at %d", i)
		}
		if a.At >= time.Second {
			t.Fatalf("arrival %v past the horizon", a.At)
		}
		counts[a.Tenant]++
		if a.Op.Kind == OpPut {
			writes[a.Tenant]++
		}
	}
	if counts[0] < counts[1] {
		t.Fatalf("rate 500 tenant produced fewer arrivals (%d) than rate 250 (%d)", counts[0], counts[1])
	}
	if writes[1] != 0 {
		t.Fatalf("read-only YCSB-C tenant issued %d writes", writes[1])
	}
	if writes[0] == 0 {
		t.Fatal("YCSB-A tenant issued no writes")
	}
}

func TestTxnOpsDeterministicAndDistinct(t *testing.T) {
	spec := TxnSpec{N: 50, Keys: 64, Span: 3, Skew: 0.9, ValueSize: 16, Seed: 5}
	a := TxnOps(spec)
	b := TxnOps(spec)
	if len(a) != 50 {
		t.Fatalf("len = %d, want 50", len(a))
	}
	for i := range a {
		if len(a[i].Reads) != 3 || len(a[i].Writes) != 3 {
			t.Fatalf("txn %d spans %d/%d keys, want 3/3", i, len(a[i].Reads), len(a[i].Writes))
		}
		seen := map[string]bool{}
		for _, k := range a[i].Reads {
			if seen[k] {
				t.Fatalf("txn %d repeats key %s", i, k)
			}
			seen[k] = true
			if b[i].Reads == nil || string(a[i].Writes[k]) != string(b[i].Writes[k]) {
				t.Fatalf("txn %d not deterministic at key %s", i, k)
			}
		}
	}
}
