// Package workload generates every synthetic dataset the experiments run
// on, standing in for the production traces and benchmark inputs the
// domain's papers use: TeraSort records, Zipf-worded text corpora, skewed
// key-value operation streams, R-MAT power-law graphs, clickstream events,
// labelled classification data and diurnal load traces. All generators are
// seeded and deterministic.
package workload

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/rng"
	"repro/internal/serde"
)

// ---------------------------------------------------------------------------
// TeraSort

// TeraRecord is the classic 100-byte sort record: a 10-byte random key and
// a 90-byte payload.
type TeraRecord struct {
	Key   []byte // 10 bytes
	Value []byte // 90 bytes
}

// TeraGen produces n TeraSort records.
func TeraGen(n int, seed uint64) []TeraRecord {
	r := rng.New(seed)
	out := make([]TeraRecord, n)
	for i := range out {
		k := make([]byte, 10)
		v := make([]byte, 90)
		r.Bytes(k)
		r.Bytes(v)
		out[i] = TeraRecord{Key: k, Value: v}
	}
	return out
}

// TeraSplits returns p-1 ascending split points that partition the 10-byte
// key space evenly — the range partitioner input for a p-way TeraSort.
func TeraSplits(p int) [][]byte {
	var out [][]byte
	for i := 1; i < p; i++ {
		v := uint64(i) * (math.MaxUint64 / uint64(p))
		key := make([]byte, 10)
		copy(key, serde.SortableUint64Key(v))
		out = append(out, key)
	}
	return out
}

// ---------------------------------------------------------------------------
// Text

// Vocabulary returns n distinct synthetic words.
func Vocabulary(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("word%05d", i)
	}
	return out
}

// Text generates `lines` lines of wordsPerLine words drawn from a Zipf(s)
// distribution over a vocabulary of vocab words — the WordCount input.
func Text(lines, wordsPerLine, vocab int, s float64, seed uint64) []string {
	r := rng.New(seed)
	z := rng.NewZipf(r, vocab, s)
	words := Vocabulary(vocab)
	out := make([]string, lines)
	var sb strings.Builder
	for i := range out {
		sb.Reset()
		for w := 0; w < wordsPerLine; w++ {
			if w > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(words[z.Next()])
		}
		out[i] = sb.String()
	}
	return out
}

// ---------------------------------------------------------------------------
// Key-value operations

// OpKind discriminates KV operations.
type OpKind int

// KV operation kinds.
const (
	OpGet OpKind = iota
	OpPut
)

// Op is one key-value store operation.
type Op struct {
	Kind  OpKind
	Key   string
	Value []byte
}

// KVOps generates n operations over `keys` distinct keys with Zipf(s) skew
// and the given read fraction. Values are valueSize random bytes.
func KVOps(n, keys int, s, readFrac float64, valueSize int, seed uint64) []Op {
	r := rng.New(seed)
	z := rng.NewZipf(r, keys, s)
	out := make([]Op, n)
	for i := range out {
		k := fmt.Sprintf("key-%08d", z.Next())
		if r.Float64() < readFrac {
			out[i] = Op{Kind: OpGet, Key: k}
		} else {
			v := make([]byte, valueSize)
			r.Bytes(v)
			out[i] = Op{Kind: OpPut, Key: k, Value: v}
		}
	}
	return out
}

// TxnSpec parameterizes a transactional trace: each transaction reads
// and writes Span distinct keys drawn Zipf(Skew) from Keys.
type TxnSpec struct {
	// N is the transaction count.
	N int
	// Keys is the keyspace size; Span the distinct keys per transaction.
	Keys, Span int
	// Skew is the Zipf exponent (0 = uniform).
	Skew float64
	// ValueSize is the written value length in bytes.
	ValueSize int
	// Seed drives the generator.
	Seed uint64
}

// TxnOp is one generated multi-key transaction: read all Reads, write
// all Writes atomically.
type TxnOp struct {
	Reads  []string
	Writes map[string][]byte
}

// TxnOps generates a deterministic transactional trace from spec. Every
// transaction touches spec.Span distinct keys, reading each and writing
// each — the classic read-modify-write shape that maximizes conflict
// pressure under skew.
func TxnOps(spec TxnSpec) []TxnOp {
	if spec.Span <= 0 {
		spec.Span = 2
	}
	if spec.Span > spec.Keys {
		spec.Span = spec.Keys
	}
	r := rng.New(spec.Seed)
	z := rng.NewZipf(r, spec.Keys, spec.Skew)
	out := make([]TxnOp, spec.N)
	for i := range out {
		seen := map[string]bool{}
		reads := make([]string, 0, spec.Span)
		writes := make(map[string][]byte, spec.Span)
		for len(reads) < spec.Span {
			k := fmt.Sprintf("key-%08d", z.Next())
			if seen[k] {
				continue
			}
			seen[k] = true
			reads = append(reads, k)
			v := make([]byte, spec.ValueSize)
			r.Bytes(v)
			writes[k] = v
		}
		out[i] = TxnOp{Reads: reads, Writes: writes}
	}
	return out
}

// ---------------------------------------------------------------------------
// Multi-tenant open-loop arrival traces

// YCSBMix returns the read fraction of the named YCSB core-workload mix:
// A (update-heavy, 50% reads), B (read-mostly, 95%) or C (read-only).
func YCSBMix(name string) (readFrac float64, ok bool) {
	switch name {
	case "A", "a":
		return 0.5, true
	case "B", "b":
		return 0.95, true
	case "C", "c":
		return 1.0, true
	}
	return 0, false
}

// TenantSpec describes one tenant of a multi-tenant serving workload:
// its open-loop arrival rate, its fair-queueing weight and shedding
// priority at admission, and its YCSB-style operation mix over a private
// Zipf-skewed keyspace.
type TenantSpec struct {
	// ID names the tenant and prefixes its keys (tenants never collide).
	ID string
	// RatePerSec is the open-loop mean arrival rate (Poisson).
	RatePerSec float64
	// Weight is the tenant's weighted-fair share at admission (default 1).
	Weight float64
	// Priority is the shedding tier (lower sheds first).
	Priority int
	// ReadFrac is the read fraction of the op mix (see YCSBMix).
	ReadFrac float64
	// Keys is the tenant keyspace size (default 1024); Skew the Zipf
	// exponent over it (0 = uniform); ValueSize the write payload bytes
	// (default 128).
	Keys      int
	Skew      float64
	ValueSize int
}

func (t *TenantSpec) fill() {
	if t.Weight <= 0 {
		t.Weight = 1
	}
	if t.Keys <= 0 {
		t.Keys = 1024
	}
	if t.ValueSize <= 0 {
		t.ValueSize = 128
	}
}

// Arrival is one event of a multi-tenant arrival trace.
type Arrival struct {
	At     time.Duration
	Tenant int
	Op     Op
}

// ArrivalGen generates one tenant's open-loop arrival stream
// incrementally: exponential inter-arrival gaps at RatePerSec scaled by
// a mutable rate factor (the hook traffic-burst and tenant-flood chaos
// events turn), operations drawn Zipf(Skew) over the tenant keyspace
// with the tenant's read fraction. Deterministic given the seed and the
// virtual times at which SetFactor is called. Not safe for concurrent
// use; the simulator drives it from its single event loop.
type ArrivalGen struct {
	spec   TenantSpec
	tenant int
	r      *rng.RNG
	z      *rng.Zipf
	next   time.Duration
	factor float64
}

// NewArrivalGen builds a generator for tenant (an index the trace
// carries through to admission) from spec. The first arrival is one
// exponential gap after the epoch.
func NewArrivalGen(tenant int, spec TenantSpec, seed uint64) *ArrivalGen {
	spec.fill()
	r := rng.New(seed + uint64(tenant)*0x9e3779b97f4a7c15)
	g := &ArrivalGen{
		spec:   spec,
		tenant: tenant,
		r:      r,
		z:      rng.NewZipf(r, spec.Keys, spec.Skew),
		factor: 1,
	}
	g.next = g.gap()
	return g
}

func (g *ArrivalGen) gap() time.Duration {
	rate := g.spec.RatePerSec * g.factor
	if rate <= 0 {
		rate = 1e-9 // effectively paused
	}
	return time.Duration(g.r.ExpFloat64() / rate * float64(time.Second))
}

// Peek returns the next arrival time without consuming it.
func (g *ArrivalGen) Peek() time.Duration { return g.next }

// SetFactor scales the tenant's arrival rate from now on (burst and
// flood injection); factor 1 restores the configured rate.
func (g *ArrivalGen) SetFactor(f float64) {
	if f <= 0 {
		f = 1
	}
	g.factor = f
}

// Next consumes and returns the next arrival.
func (g *ArrivalGen) Next() Arrival {
	at := g.next
	g.next += g.gap()
	key := fmt.Sprintf("%s-%07d", g.spec.ID, g.z.Next())
	op := Op{Kind: OpGet, Key: key}
	if g.r.Float64() >= g.spec.ReadFrac {
		v := make([]byte, g.spec.ValueSize)
		g.r.Bytes(v)
		op = Op{Kind: OpPut, Key: key, Value: v}
	}
	return Arrival{At: at, Tenant: g.tenant, Op: op}
}

// MultiTenantArrivals materializes the merged, time-ordered arrival
// trace of all tenants over [0, duration) — the open-loop equivalent of
// KVOps for million-client multi-tenant serving. Rates are fixed at
// their configured values; simulators that need mid-run bursts drive
// ArrivalGen directly.
func MultiTenantArrivals(tenants []TenantSpec, duration time.Duration, seed uint64) []Arrival {
	gens := make([]*ArrivalGen, len(tenants))
	for i, t := range tenants {
		gens[i] = NewArrivalGen(i, t, seed)
	}
	var out []Arrival
	for {
		best := -1
		for i, g := range gens {
			if g.Peek() >= duration {
				continue
			}
			if best < 0 || g.Peek() < gens[best].Peek() {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, gens[best].Next())
	}
}

// ---------------------------------------------------------------------------
// Graphs

// Edge is a directed, weighted graph edge.
type Edge struct {
	From, To int64
	Weight   float64
}

// RMAT generates 2^scale vertices and edgeFactor*2^scale edges with the
// R-MAT recursive partitioning (a=0.57 b=0.19 c=0.19 d=0.05), yielding the
// skewed degree distribution of real-world graphs.
func RMAT(scale, edgeFactor int, seed uint64) []Edge {
	r := rng.New(seed)
	n := int64(1) << uint(scale)
	m := int(n) * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	out := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		var src, dst int64
		for bit := int64(n) >> 1; bit > 0; bit >>= 1 {
			u := r.Float64()
			switch {
			case u < a:
				// top-left: neither bit set
			case u < a+b:
				dst |= bit
			case u < a+b+c:
				src |= bit
			default:
				src |= bit
				dst |= bit
			}
		}
		out = append(out, Edge{From: src, To: dst, Weight: 1 + r.Float64()})
	}
	return out
}

// ---------------------------------------------------------------------------
// Clickstream

// Click is one clickstream event for the streaming experiments.
type Click struct {
	User      string
	Page      string
	EventTime time.Duration
}

// Clickstream generates n events over `users` users (Zipf-skewed) and
// `pages` pages at a mean rate of ratePerSec, with exponential
// inter-arrival times and occasional out-of-order timestamps (up to
// maxDisorder behind).
func Clickstream(n, users, pages int, ratePerSec float64, maxDisorder time.Duration, seed uint64) []Click {
	r := rng.New(seed)
	zu := rng.NewZipf(r, users, 0.9)
	now := time.Duration(0)
	out := make([]Click, n)
	for i := range out {
		now += time.Duration(r.ExpFloat64() / ratePerSec * float64(time.Second))
		t := now
		if maxDisorder > 0 && r.Float64() < 0.1 {
			back := time.Duration(r.Float64() * float64(maxDisorder))
			if back < t {
				t -= back
			}
		}
		out[i] = Click{
			User:      fmt.Sprintf("user-%05d", zu.Next()),
			Page:      fmt.Sprintf("/page/%d", r.Intn(pages)),
			EventTime: t,
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Classification data

// LogisticData is a synthetic binary classification dataset generated from
// a known true weight vector, for the parameter-server experiments.
type LogisticData struct {
	X           [][]float64
	Y           []float64 // 0 or 1
	TrueWeights []float64
}

// Logistic generates n examples of dimension d: labels are the sign of
// w·x under a random true weight vector, with 5% of labels flipped, so a
// well-trained model reaches ~95% accuracy.
func Logistic(n, d int, seed uint64) LogisticData {
	r := rng.New(seed)
	w := make([]float64, d)
	for i := range w {
		w[i] = r.NormFloat64()
	}
	data := LogisticData{
		X:           make([][]float64, n),
		Y:           make([]float64, n),
		TrueWeights: w,
	}
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		dot := 0.0
		for j := range x {
			x[j] = r.NormFloat64()
			dot += x[j] * w[j]
		}
		y := 0.0
		if dot > 0 {
			y = 1
		}
		if r.Float64() < 0.05 {
			y = 1 - y
		}
		data.X[i] = x
		data.Y[i] = y
	}
	return data
}

// ---------------------------------------------------------------------------
// Load traces

// LoadPoint is one step of an offered-load trace.
type LoadPoint struct {
	Time time.Duration
	Rate float64 // requests per second
}

// DiurnalTrace generates a load trace of the given length with a sinusoidal
// day/night cycle between baseRate and peakRate plus random bursts of up to
// burstFactor times the current level.
func DiurnalTrace(steps int, step time.Duration, baseRate, peakRate, burstFactor float64, seed uint64) []LoadPoint {
	r := rng.New(seed)
	out := make([]LoadPoint, steps)
	period := 24 * time.Hour
	for i := range out {
		t := time.Duration(i) * step
		phase := 2 * math.Pi * float64(t%period) / float64(period)
		level := baseRate + (peakRate-baseRate)*(0.5-0.5*math.Cos(phase))
		if r.Float64() < 0.03 {
			level *= 1 + r.Float64()*(burstFactor-1)
		}
		out[i] = LoadPoint{Time: t, Rate: level}
	}
	return out
}
