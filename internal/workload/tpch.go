package workload

import (
	"fmt"
	"time"

	"repro/internal/rng"
)

// A miniature TPC-H-style star schema for the table-layer workloads:
// customers (dimension), orders (dimension) and line items (fact). Sizes
// scale linearly with the scale factor, keys are referentially consistent,
// and all values are seeded-deterministic.

// Customer is one row of the customer dimension.
type Customer struct {
	CustKey int64
	Name    string
	Segment string // market segment, low cardinality
	Nation  string
}

// Order is one row of the orders dimension.
type Order struct {
	OrderKey  int64
	CustKey   int64
	OrderDate time.Duration // offset from epoch; days resolution
	Priority  string
}

// LineItem is one fact row.
type LineItem struct {
	OrderKey int64
	Quantity int64
	Price    float64
	Discount float64
	ShipDate time.Duration
}

// TPCH holds one generated dataset.
type TPCH struct {
	Customers []Customer
	Orders    []Order
	Items     []LineItem
}

// Segments and nations used by the generator.
var (
	tpchSegments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	tpchNations  = []string{"BRAZIL", "CANADA", "FRANCE", "GERMANY", "INDIA", "JAPAN", "KENYA", "PERU"}
	tpchPrio     = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-LOW", "5-NONE"}
)

// GenTPCH generates sf-scaled data: 100·sf customers, 1000·sf orders,
// ~4000·sf line items. Every order references an existing customer and
// every line item an existing order.
func GenTPCH(sf int, seed uint64) TPCH {
	if sf <= 0 {
		sf = 1
	}
	r := rng.New(seed)
	nCust := 100 * sf
	nOrd := 1000 * sf
	out := TPCH{}
	for i := 0; i < nCust; i++ {
		out.Customers = append(out.Customers, Customer{
			CustKey: int64(i),
			Name:    fmt.Sprintf("Customer#%06d", i),
			Segment: tpchSegments[r.Intn(len(tpchSegments))],
			Nation:  tpchNations[r.Intn(len(tpchNations))],
		})
	}
	day := 24 * time.Hour
	for o := 0; o < nOrd; o++ {
		ord := Order{
			OrderKey:  int64(o),
			CustKey:   int64(r.Intn(nCust)),
			OrderDate: time.Duration(r.Intn(365*2)) * day,
			Priority:  tpchPrio[r.Intn(len(tpchPrio))],
		}
		out.Orders = append(out.Orders, ord)
		nItems := 1 + r.Intn(7)
		for l := 0; l < nItems; l++ {
			out.Items = append(out.Items, LineItem{
				OrderKey: ord.OrderKey,
				Quantity: int64(1 + r.Intn(50)),
				Price:    float64(100+r.Intn(100000)) / 100,
				Discount: float64(r.Intn(11)) / 100, // 0.00 - 0.10
				ShipDate: ord.OrderDate + time.Duration(1+r.Intn(90))*day,
			})
		}
	}
	return out
}
