// Package topology models datacenter cluster shapes: nodes grouped into
// racks connected by an (optionally oversubscribed) core. The network
// simulator uses it to count hops and find bottleneck links; the DFS uses
// it for rack-aware replica placement; the scheduler uses it to rank task
// placement by data locality.
package topology

import "fmt"

// NodeID identifies a machine in the cluster.
type NodeID int

// Locality classifies how close a data source is to a compute placement.
// Lower is closer.
type Locality int

// Locality levels, from best to worst.
const (
	LocalNode Locality = iota // data on the same machine
	LocalRack                 // data in the same rack
	Remote                    // data across the core
)

func (l Locality) String() string {
	switch l {
	case LocalNode:
		return "node-local"
	case LocalRack:
		return "rack-local"
	default:
		return "remote"
	}
}

// Topology is an immutable description of the cluster shape.
type Topology struct {
	rackOf  []int // node -> rack
	racks   [][]NodeID
	oversub float64 // core oversubscription factor (>= 1)
}

// TwoTier builds the standard leaf/spine shape: racks of nodesPerRack
// machines behind top-of-rack switches, joined by a core whose capacity is
// oversub times thinner than the sum of rack uplinks (oversub = 1 means a
// full-bisection fabric).
func TwoTier(racks, nodesPerRack int, oversub float64) *Topology {
	if racks <= 0 || nodesPerRack <= 0 {
		panic("topology: racks and nodesPerRack must be positive")
	}
	if oversub < 1 {
		oversub = 1
	}
	t := &Topology{
		rackOf:  make([]int, racks*nodesPerRack),
		racks:   make([][]NodeID, racks),
		oversub: oversub,
	}
	for r := 0; r < racks; r++ {
		for i := 0; i < nodesPerRack; i++ {
			id := NodeID(r*nodesPerRack + i)
			t.rackOf[id] = r
			t.racks[r] = append(t.racks[r], id)
		}
	}
	return t
}

// Single builds a one-rack cluster of n nodes (no core hop ever taken).
func Single(n int) *Topology { return TwoTier(1, n, 1) }

// Size returns the number of nodes.
func (t *Topology) Size() int { return len(t.rackOf) }

// Racks returns the number of racks.
func (t *Topology) Racks() int { return len(t.racks) }

// Oversub returns the core oversubscription factor.
func (t *Topology) Oversub() float64 { return t.oversub }

// RackOf returns the rack index of node id. It panics on unknown nodes.
func (t *Topology) RackOf(id NodeID) int {
	if int(id) < 0 || int(id) >= len(t.rackOf) {
		panic(fmt.Sprintf("topology: unknown node %d", id))
	}
	return t.rackOf[id]
}

// NodesInRack returns the members of rack r.
func (t *Topology) NodesInRack(r int) []NodeID { return t.racks[r] }

// SameRack reports whether a and b share a rack.
func (t *Topology) SameRack(a, b NodeID) bool { return t.RackOf(a) == t.RackOf(b) }

// Hops returns the switch hops between two nodes: 0 on the same machine,
// 2 within a rack (up to ToR and back), 4 across the core.
func (t *Topology) Hops(a, b NodeID) int {
	switch {
	case a == b:
		return 0
	case t.SameRack(a, b):
		return 2
	default:
		return 4
	}
}

// LocalityOf classifies where data at node `data` sits relative to compute
// at node `exec`.
func (t *Topology) LocalityOf(data, exec NodeID) Locality {
	switch {
	case data == exec:
		return LocalNode
	case t.SameRack(data, exec):
		return LocalRack
	default:
		return Remote
	}
}

// CrossCore reports whether traffic between a and b traverses the
// (potentially oversubscribed) core.
func (t *Topology) CrossCore(a, b NodeID) bool {
	return a != b && !t.SameRack(a, b)
}
