package topology

import "testing"

// Table-driven locality-distance tests: every (data, exec) placement
// class on a 2x4 two-tier topology, with the Hops/Locality/CrossCore
// answers pinned explicitly. Node layout: rack 0 holds 0-3, rack 1
// holds 4-7.
func TestLocalityDistanceTable(t *testing.T) {
	top := TwoTier(2, 4, 2.0)
	cases := []struct {
		name       string
		data, exec NodeID
		hops       int
		locality   Locality
		sameRack   bool
		crossCore  bool
	}{
		{"same-node", 0, 0, 0, LocalNode, true, false},
		{"same-node-last", 7, 7, 0, LocalNode, true, false},
		{"same-rack-adjacent", 0, 1, 2, LocalRack, true, false},
		{"same-rack-ends", 4, 7, 2, LocalRack, true, false},
		{"cross-rack", 0, 4, 4, Remote, false, true},
		{"cross-rack-reverse", 7, 3, 4, Remote, false, true},
		{"rack-boundary", 3, 4, 4, Remote, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := top.Hops(tc.data, tc.exec); got != tc.hops {
				t.Errorf("Hops(%d,%d) = %d, want %d", tc.data, tc.exec, got, tc.hops)
			}
			if got := top.LocalityOf(tc.data, tc.exec); got != tc.locality {
				t.Errorf("LocalityOf(%d,%d) = %v, want %v", tc.data, tc.exec, got, tc.locality)
			}
			if got := top.SameRack(tc.data, tc.exec); got != tc.sameRack {
				t.Errorf("SameRack(%d,%d) = %v, want %v", tc.data, tc.exec, got, tc.sameRack)
			}
			if got := top.CrossCore(tc.data, tc.exec); got != tc.crossCore {
				t.Errorf("CrossCore(%d,%d) = %v, want %v", tc.data, tc.exec, got, tc.crossCore)
			}
			// Distance is symmetric in every representation.
			if top.Hops(tc.exec, tc.data) != tc.hops {
				t.Errorf("Hops(%d,%d) not symmetric", tc.exec, tc.data)
			}
			if top.CrossCore(tc.exec, tc.data) != tc.crossCore {
				t.Errorf("CrossCore(%d,%d) not symmetric", tc.exec, tc.data)
			}
		})
	}
}

// Locality ordering must track physical distance: the scheduler compares
// Locality values directly when ranking placements.
func TestLocalityOrderAndStrings(t *testing.T) {
	if !(LocalNode < LocalRack && LocalRack < Remote) {
		t.Fatal("locality constants out of distance order")
	}
	for _, tc := range []struct {
		l    Locality
		want string
	}{
		{LocalNode, "node-local"},
		{LocalRack, "rack-local"},
		{Remote, "remote"},
		{Locality(99), "remote"}, // anything past LocalRack reads as remote
	} {
		if got := tc.l.String(); got != tc.want {
			t.Errorf("Locality(%d).String() = %q, want %q", tc.l, got, tc.want)
		}
	}
}

// Shape invariants across topology sizes: rack membership, rack count
// and node count must agree for every cell in the table.
func TestTwoTierShapeTable(t *testing.T) {
	cases := []struct {
		racks, perRack int
	}{
		{1, 1}, {1, 8}, {2, 4}, {4, 4}, {8, 2},
	}
	for _, tc := range cases {
		top := TwoTier(tc.racks, tc.perRack, 1.0)
		if top.Size() != tc.racks*tc.perRack {
			t.Errorf("TwoTier(%d,%d).Size() = %d", tc.racks, tc.perRack, top.Size())
		}
		if top.Racks() != tc.racks {
			t.Errorf("TwoTier(%d,%d).Racks() = %d", tc.racks, tc.perRack, top.Racks())
		}
		for r := 0; r < tc.racks; r++ {
			nodes := top.NodesInRack(r)
			if len(nodes) != tc.perRack {
				t.Errorf("rack %d has %d nodes, want %d", r, len(nodes), tc.perRack)
			}
			for _, n := range nodes {
				if top.RackOf(n) != r {
					t.Errorf("RackOf(%d) = %d, want %d", n, top.RackOf(n), r)
				}
			}
		}
	}
}
