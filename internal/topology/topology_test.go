package topology

import (
	"testing"
	"testing/quick"
)

func TestTwoTierShape(t *testing.T) {
	top := TwoTier(4, 8, 3)
	if top.Size() != 32 {
		t.Fatalf("size = %d, want 32", top.Size())
	}
	if top.Racks() != 4 {
		t.Fatalf("racks = %d, want 4", top.Racks())
	}
	if top.Oversub() != 3 {
		t.Fatalf("oversub = %v, want 3", top.Oversub())
	}
	if top.RackOf(0) != 0 || top.RackOf(7) != 0 || top.RackOf(8) != 1 || top.RackOf(31) != 3 {
		t.Fatal("rack assignment wrong")
	}
	if got := len(top.NodesInRack(2)); got != 8 {
		t.Fatalf("rack 2 has %d nodes, want 8", got)
	}
}

func TestHops(t *testing.T) {
	top := TwoTier(2, 4, 1)
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 3, 2},
		{0, 4, 4},
		{5, 7, 2},
	}
	for _, c := range cases {
		if got := top.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLocality(t *testing.T) {
	top := TwoTier(2, 2, 1)
	if top.LocalityOf(0, 0) != LocalNode {
		t.Fatal("same node not LocalNode")
	}
	if top.LocalityOf(0, 1) != LocalRack {
		t.Fatal("same rack not LocalRack")
	}
	if top.LocalityOf(0, 2) != Remote {
		t.Fatal("cross rack not Remote")
	}
	if LocalNode.String() != "node-local" || LocalRack.String() != "rack-local" || Remote.String() != "remote" {
		t.Fatal("locality strings wrong")
	}
}

func TestSingle(t *testing.T) {
	top := Single(5)
	if top.Racks() != 1 || top.Size() != 5 {
		t.Fatal("Single shape wrong")
	}
	if top.CrossCore(0, 4) {
		t.Fatal("single rack should never cross core")
	}
}

func TestCrossCoreSymmetric(t *testing.T) {
	top := TwoTier(3, 3, 2)
	f := func(a, b uint8) bool {
		x := NodeID(int(a) % top.Size())
		y := NodeID(int(b) % top.Size())
		return top.CrossCore(x, y) == top.CrossCore(y, x) &&
			top.Hops(x, y) == top.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOversubClamped(t *testing.T) {
	top := TwoTier(1, 1, 0.1)
	if top.Oversub() != 1 {
		t.Fatalf("oversub = %v, want clamped to 1", top.Oversub())
	}
}

func TestPanicOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TwoTier(0,1) did not panic")
		}
	}()
	TwoTier(0, 1, 1)
}

func TestPanicOnUnknownNode(t *testing.T) {
	top := Single(2)
	defer func() {
		if recover() == nil {
			t.Fatal("RackOf(99) did not panic")
		}
	}()
	top.RackOf(99)
}
