package ml

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func dataset() workload.LogisticData {
	return workload.Logistic(4000, 10, 42)
}

func TestBSPConverges(t *testing.T) {
	data := dataset()
	res := Train(data, Config{Workers: 4, Mode: BSP, Steps: 150, Seed: 1})
	if res.Accuracy < 0.8 {
		t.Fatalf("BSP accuracy = %.3f, want >= 0.8", res.Accuracy)
	}
	initial := Loss(data, make([]float64, 10))
	if res.FinalLoss >= initial {
		t.Fatalf("loss did not decrease: %v -> %v", initial, res.FinalLoss)
	}
}

func TestAllModesConverge(t *testing.T) {
	data := dataset()
	for _, mode := range []Mode{BSP, ASP, SSP} {
		res := Train(data, Config{Workers: 4, Mode: mode, Steps: 150, Seed: 2})
		if res.Accuracy < 0.75 {
			t.Fatalf("%v accuracy = %.3f", mode, res.Accuracy)
		}
	}
}

func TestLossCurveDecreases(t *testing.T) {
	data := dataset()
	res := Train(data, Config{Workers: 2, Mode: BSP, Steps: 200, Seed: 3})
	if len(res.LossCurve) < 3 {
		t.Fatalf("loss curve has %d points", len(res.LossCurve))
	}
	first := res.LossCurve[0]
	last := res.LossCurve[len(res.LossCurve)-1]
	if last >= first {
		t.Fatalf("loss curve not decreasing: %v -> %v", first, last)
	}
}

func TestHiccupsSlowBSPMoreThanASP(t *testing.T) {
	// Transient stragglers: every worker hiccups on a random 15% of steps.
	// BSP pays the max hiccup each round; ASP pays only each worker's own.
	data := workload.Logistic(1000, 8, 7)
	cfg := Config{
		Workers:         4,
		Steps:           50,
		StragglerWorker: -1,
		HiccupProb:      0.15,
		HiccupDelay:     2 * time.Millisecond,
		Seed:            4,
	}
	cfg.Mode = BSP
	bsp := Train(data, cfg)
	cfg.Mode = ASP
	asp := Train(data, cfg)
	if float64(bsp.WallTime) < 1.3*float64(asp.WallTime) {
		t.Fatalf("BSP %v not clearly slower than ASP %v under hiccups",
			bsp.WallTime, asp.WallTime)
	}
	if bsp.WaitTime <= asp.WaitTime {
		t.Fatalf("BSP wait %v <= ASP wait %v", bsp.WaitTime, asp.WaitTime)
	}
}

func TestSSPBetweenBSPAndASPUnderHiccups(t *testing.T) {
	data := workload.Logistic(1000, 8, 9)
	base := Config{
		Workers:         4,
		Steps:           50,
		Staleness:       5,
		StragglerWorker: -1,
		HiccupProb:      0.15,
		HiccupDelay:     2 * time.Millisecond,
		Seed:            5,
	}
	times := map[Mode]time.Duration{}
	for _, m := range []Mode{BSP, ASP, SSP} {
		cfg := base
		cfg.Mode = m
		times[m] = Train(data, cfg).WallTime
	}
	if times[SSP] >= times[BSP] {
		t.Fatalf("SSP %v not faster than BSP %v", times[SSP], times[BSP])
	}
	// SSP should land much closer to ASP than to BSP.
	if times[SSP] > 2*times[ASP] {
		t.Fatalf("SSP %v far slower than ASP %v", times[SSP], times[ASP])
	}
}

func TestSSPStalenessBoundHolds(t *testing.T) {
	// Indirect check: with staleness 1 and a straggler, total wait time is
	// substantial; with huge staleness it is ~zero.
	data := workload.Logistic(500, 6, 11)
	base := Config{
		Workers:         3,
		Mode:            SSP,
		Steps:           30,
		StragglerWorker: 0,
		StragglerDelay:  time.Millisecond,
		Seed:            6,
	}
	tight := base
	tight.Staleness = 1
	loose := base
	loose.Staleness = 1 << 20
	rTight := Train(data, tight)
	rLoose := Train(data, loose)
	if rTight.WaitTime <= rLoose.WaitTime {
		t.Fatalf("tight staleness wait %v <= loose wait %v", rTight.WaitTime, rLoose.WaitTime)
	}
}

func TestSingleWorkerMatchesSequentialSGD(t *testing.T) {
	data := workload.Logistic(1000, 6, 13)
	res := Train(data, Config{Workers: 1, Mode: BSP, Steps: 300, Seed: 7})
	if res.Accuracy < 0.8 {
		t.Fatalf("single worker accuracy %.3f", res.Accuracy)
	}
}

func TestLossAndAccuracyHelpers(t *testing.T) {
	data := workload.Logistic(500, 5, 17)
	zero := make([]float64, 5)
	lossZero := Loss(data, zero)
	// log(2) ~ 0.693 for an uninformative model.
	if lossZero < 0.6 || lossZero > 0.8 {
		t.Fatalf("zero-weight loss = %v, want ~0.69", lossZero)
	}
	lossTrue := Loss(data, data.TrueWeights)
	if lossTrue >= lossZero {
		t.Fatalf("true weights loss %v not below zero-weight loss %v", lossTrue, lossZero)
	}
	if acc := Accuracy(data, data.TrueWeights); acc < 0.8 {
		t.Fatalf("true weights accuracy %.3f", acc)
	}
}

func BenchmarkTrainBSP(b *testing.B) {
	data := workload.Logistic(2000, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Train(data, Config{Workers: 4, Mode: BSP, Steps: 50, Seed: uint64(i)})
	}
}
