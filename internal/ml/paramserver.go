// Package ml implements data-parallel machine learning on a parameter
// server: workers pull the shared weight vector, compute minibatch
// gradients over their data shard, and push updates, under one of three
// consistency disciplines — BSP (lockstep barriers), ASP (fully
// asynchronous, Hogwild-style), and SSP (stale-synchronous: the fastest
// worker may lead the slowest by at most a bounded number of steps).
// Experiment E10 measures time-to-loss for the three modes with an
// injected straggler, reproducing the classic SSP result: near-ASP speed
// at near-BSP quality.
package ml

import (
	"math"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Mode selects the parameter-server consistency discipline.
type Mode int

// Consistency modes.
const (
	BSP Mode = iota // bulk-synchronous: staleness 0
	ASP             // asynchronous: unbounded staleness
	SSP             // stale-synchronous: staleness <= Config.Staleness
)

func (m Mode) String() string {
	switch m {
	case BSP:
		return "bsp"
	case ASP:
		return "asp"
	default:
		return "ssp"
	}
}

// Config configures a training run.
type Config struct {
	// Workers is the data-parallel width. Default 4.
	Workers int
	// Mode is the consistency discipline.
	Mode Mode
	// Staleness bounds the fast-slow worker gap under SSP. Default 3.
	Staleness int
	// LearningRate for SGD. Default 0.1.
	LearningRate float64
	// BatchSize per step. Default 32.
	BatchSize int
	// Steps is the per-worker step count. Default 100.
	Steps int
	// StragglerWorker, if >= 0, sleeps StragglerDelay every step — a
	// permanently slow machine.
	StragglerWorker int
	// StragglerDelay is the per-step slowdown of the straggler.
	StragglerDelay time.Duration
	// HiccupProb makes every worker sleep HiccupDelay on a random
	// fraction of its steps — the transient-straggler fault model of the
	// E10 experiment (all workers have the same expected speed, but BSP
	// pays the max of the hiccups each round).
	HiccupProb  float64
	HiccupDelay time.Duration
	// Seed drives batch sampling.
	Seed uint64
}

// Result summarizes a training run.
type Result struct {
	Weights   []float64
	FinalLoss float64
	Accuracy  float64
	// WallTime is the end-to-end duration; WaitTime sums the time workers
	// spent blocked on the staleness condition (the sync overhead BSP
	// pays under stragglers).
	WallTime time.Duration
	WaitTime time.Duration
	// LossCurve samples the full-data loss after each global round
	// (minimum worker clock advancing).
	LossCurve []float64
}

// server is the shared parameter state plus the staleness clock.
type server struct {
	mu     sync.Mutex
	cond   *sync.Cond
	w      []float64
	clocks []int
}

func newServer(dim, workers int) *server {
	s := &server{w: make([]float64, dim), clocks: make([]int, workers)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *server) minClock() int {
	min := s.clocks[0]
	for _, c := range s.clocks[1:] {
		if c < min {
			min = c
		}
	}
	return min
}

// waitForSlack blocks worker `me` until its lead over the slowest worker is
// within `staleness` steps. It returns the time spent waiting.
func (s *server) waitForSlack(me, staleness int) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	for s.clocks[me]-s.minClock() > staleness {
		s.cond.Wait()
	}
	return time.Since(start)
}

// pull snapshots the weights.
func (s *server) pull(dst []float64) {
	s.mu.Lock()
	copy(dst, s.w)
	s.mu.Unlock()
}

// push applies a gradient step and advances the worker's clock.
func (s *server) push(me int, grad []float64, lr float64) {
	s.mu.Lock()
	for i, g := range grad {
		s.w[i] -= lr * g
	}
	s.clocks[me]++
	s.cond.Broadcast()
	s.mu.Unlock()
}

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Loss computes the mean log-loss of weights w on the dataset.
func Loss(data workload.LogisticData, w []float64) float64 {
	total := 0.0
	for i := range data.X {
		z := dot(data.X[i], w)
		p := sigmoid(z)
		// Clamp for numerical safety.
		if p < 1e-12 {
			p = 1e-12
		}
		if p > 1-1e-12 {
			p = 1 - 1e-12
		}
		if data.Y[i] > 0.5 {
			total += -math.Log(p)
		} else {
			total += -math.Log(1 - p)
		}
	}
	return total / float64(len(data.X))
}

// Accuracy computes the 0/1 accuracy of weights w on the dataset.
func Accuracy(data workload.LogisticData, w []float64) float64 {
	correct := 0
	for i := range data.X {
		pred := 0.0
		if dot(data.X[i], w) > 0 {
			pred = 1
		}
		if pred == data.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(data.X))
}

func dot(x, w []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * w[i]
	}
	return s
}

// Train runs data-parallel logistic regression SGD under cfg.
func Train(data workload.LogisticData, cfg Config) Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Staleness <= 0 {
		cfg.Staleness = 3
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Steps <= 0 {
		cfg.Steps = 100
	}
	dim := len(data.TrueWeights)
	srv := newServer(dim, cfg.Workers)

	staleness := 0
	switch cfg.Mode {
	case ASP:
		staleness = math.MaxInt32
	case SSP:
		staleness = cfg.Staleness
	}

	// Shard data round-robin.
	shards := make([][]int, cfg.Workers)
	for i := range data.X {
		w := i % cfg.Workers
		shards[w] = append(shards[w], i)
	}

	// Loss sampler: watch the global round (min clock) advance.
	var lossMu sync.Mutex
	var lossCurve []float64
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		lastRound := -1
		ticker := time.NewTicker(200 * time.Microsecond)
		defer ticker.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-ticker.C:
				srv.mu.Lock()
				round := srv.minClock()
				var snapshot []float64
				if round > lastRound {
					lastRound = round
					snapshot = append([]float64(nil), srv.w...)
				}
				srv.mu.Unlock()
				if snapshot != nil {
					l := Loss(data, snapshot)
					lossMu.Lock()
					lossCurve = append(lossCurve, l)
					lossMu.Unlock()
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	waits := make([]time.Duration, cfg.Workers)
	for me := 0; me < cfg.Workers; me++ {
		me := me
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rng.New(cfg.Seed + uint64(me)*7919)
			local := make([]float64, dim)
			grad := make([]float64, dim)
			shard := shards[me]
			for step := 0; step < cfg.Steps; step++ {
				waits[me] += srv.waitForSlack(me, staleness)
				if me == cfg.StragglerWorker && cfg.StragglerDelay > 0 {
					time.Sleep(cfg.StragglerDelay)
				}
				if cfg.HiccupProb > 0 && r.Float64() < cfg.HiccupProb {
					time.Sleep(cfg.HiccupDelay)
				}
				srv.pull(local)
				for i := range grad {
					grad[i] = 0
				}
				for b := 0; b < cfg.BatchSize; b++ {
					idx := shard[r.Intn(len(shard))]
					x, y := data.X[idx], data.Y[idx]
					err := sigmoid(dot(x, local)) - y
					for j := range grad {
						grad[j] += err * x[j]
					}
				}
				inv := 1 / float64(cfg.BatchSize)
				for j := range grad {
					grad[j] *= inv
				}
				srv.push(me, grad, cfg.LearningRate)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	close(stopSampler)
	<-samplerDone

	final := append([]float64(nil), srv.w...)
	var totalWait time.Duration
	for _, w := range waits {
		totalWait += w
	}
	lossMu.Lock()
	curve := append([]float64(nil), lossCurve...)
	lossMu.Unlock()
	return Result{
		Weights:   final,
		FinalLoss: Loss(data, final),
		Accuracy:  Accuracy(data, final),
		WallTime:  wall,
		WaitTime:  totalWait,
		LossCurve: curve,
	}
}
