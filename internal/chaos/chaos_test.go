package chaos

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestParseRoundTrip(t *testing.T) {
	text := `
# warm-up, then carnage
2 crash 3
3 partition 0-3|4-7
5 heal
6 slow 1 40ms
7 flaky 2 0.8
8 drop 0.25
9 degrade 5 4
10 undegrade 5
11 undrop
12 unflaky 2
13 unslow 1
14 revive 3
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 12 {
		t.Fatalf("parsed %d events, want 12", len(s))
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", s, s2)
	}
	if s[1].Kind != Partition || len(s[1].Group) != 2 || len(s[1].Group[0]) != 4 {
		t.Fatalf("partition parsed wrong: %+v", s[1])
	}
	if s[3].Delay != 40*time.Millisecond {
		t.Fatalf("slow delay = %v", s[3].Delay)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"x crash 1",         // bad time
		"1 explode 2",       // unknown kind
		"1 crash",           // missing node
		"1 slow 1",          // missing duration
		"1 partition 0-3",   // one group
		"1 drop 1.5",        // probability > 1
		"1 flaky 1 -0.5",    // negative prob
		"1 partition a-b|c", // garbage groups
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// fakeTargets records the call sequence so tests can compare replays.
type fakeTargets struct{ log []string }

func (f *fakeTargets) Kill(n topology.NodeID) error {
	f.log = append(f.log, "kill", nodeString(n))
	return nil
}
func (f *fakeTargets) Revive(n topology.NodeID) error {
	f.log = append(f.log, "revive", nodeString(n))
	return nil
}
func (f *fakeTargets) SetSlowdown(n topology.NodeID, d time.Duration) error {
	f.log = append(f.log, "slow", nodeString(n), d.String())
	return nil
}
func (f *fakeTargets) KillNode(n topology.NodeID) error {
	f.log = append(f.log, "fskill", nodeString(n))
	return nil
}
func (f *fakeTargets) ReviveNode(n topology.NodeID) error {
	f.log = append(f.log, "fsrevive", nodeString(n))
	return nil
}
func (f *fakeTargets) SetPartition(groups ...[]topology.NodeID) error {
	f.log = append(f.log, "partition")
	return nil
}
func (f *fakeTargets) Heal() { f.log = append(f.log, "heal") }
func (f *fakeTargets) CutLink(src, dst topology.NodeID) {
	f.log = append(f.log, "cut", nodeString(src)+">"+nodeString(dst))
}
func (f *fakeTargets) HealLink(src, dst topology.NodeID) {
	f.log = append(f.log, "healink", nodeString(src)+">"+nodeString(dst))
}
func (f *fakeTargets) SetNodeDegrade(n topology.NodeID, v float64) {
	f.log = append(f.log, "degrade", nodeString(n))
}
func (f *fakeTargets) SetNodeFailProb(n topology.NodeID, p float64) {
	f.log = append(f.log, "flaky", nodeString(n))
}
func (f *fakeTargets) CrashWorker(id int) error {
	f.log = append(f.log, "stream-crash", nodeString(topology.NodeID(id)))
	return nil
}
func (f *fakeTargets) RestoreWorker(id int) error {
	f.log = append(f.log, "stream-restore", nodeString(topology.NodeID(id)))
	return nil
}

func targetsOf(f *fakeTargets) Targets {
	return Targets{Nodes: 8, Compute: f, Storage: f, Network: f, Faults: f, Stream: f}
}

func run(t *testing.T, sched Schedule, seed uint64, ticks int) ([]string, *metrics.Registry) {
	t.Helper()
	f := &fakeTargets{}
	reg := metrics.NewRegistry()
	c := New(sched, seed, targetsOf(f), reg)
	for i := 0; i < ticks; i++ {
		c.Tick()
	}
	return f.log, reg
}

func TestDeterministicReplay(t *testing.T) {
	sched, err := Parse("1 crash *\n2 slow * 5ms\n3 partition 0-3|4-7\n5 heal\n6 revive *\n7 unslow *\n")
	if err != nil {
		t.Fatal(err)
	}
	log1, reg1 := run(t, sched, 42, 10)
	log2, reg2 := run(t, sched, 42, 10)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", log1, log2)
	}
	var p1, p2 strings.Builder
	if err := reg1.WritePrometheus(&p1); err != nil {
		t.Fatal(err)
	}
	if err := reg2.WritePrometheus(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Fatal("metric snapshots diverged under same seed")
	}
	// A different seed may pick different wildcard nodes, but the event
	// count and kinds are schedule-determined.
	log3, _ := run(t, sched, 7, 10)
	if len(log3) != len(log1) {
		t.Fatalf("event volume changed across seeds: %d vs %d", len(log3), len(log1))
	}
}

func TestWildcardPairing(t *testing.T) {
	sched, err := Parse("1 crash *\n5 revive *\n")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeTargets{}
	c := New(sched, 99, targetsOf(f), nil)
	c.AdvanceTo(10)
	// kill X ... revive X with the same X.
	if len(f.log) != 8 {
		t.Fatalf("log = %v", f.log)
	}
	if f.log[1] != f.log[5] {
		t.Fatalf("crash/revive wildcard unpaired: %v", f.log)
	}
	if !c.Done() {
		t.Fatal("controller not done after final event")
	}
}

func TestControllerCountersAndNilSafety(t *testing.T) {
	sched := Schedule{
		{At: 1, Kind: Partition, Group: [][]topology.NodeID{{0}, {1}}},
		{At: 2, Kind: Heal},
		{At: 3, Kind: Crash, Node: 0},
	}
	reg := metrics.NewRegistry()
	// All-nil targets: events must be skipped without panics.
	c := New(sched, 1, Targets{}, reg)
	c.AdvanceTo(5)
	if got := c.Applied(); got != 3 {
		t.Fatalf("Applied = %d, want 3", got)
	}
	if got := reg.Counter("partition_heals").Value(); got != 1 {
		t.Fatalf("partition_heals = %d", got)
	}
	crashes := reg.CounterVec("chaos_events_applied", "kind").With(string(Crash)).Value()
	if crashes != 1 {
		t.Fatalf("chaos_events_applied{crash} = %d", crashes)
	}
	if got := reg.Gauge("chaos_vtime").Value(); got != 5 {
		t.Fatalf("chaos_vtime = %d", got)
	}
	// A nil controller is a no-op host hook.
	var nc *Controller
	nc.Tick()
	nc.AdvanceTo(3)
	if nc.Now() != 0 || nc.Applied() != 0 || !nc.Done() {
		t.Fatal("nil controller misbehaved")
	}
}

func TestStreamEventKinds(t *testing.T) {
	sched, err := Parse("2 stream-crash 1\n5 stream-restore 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(sched.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	f := &fakeTargets{}
	c := New(sched, 1, targetsOf(f), nil)
	c.AdvanceTo(6)
	want := []string{"stream-crash", "1", "stream-restore", "1"}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v, want %v", f.log, want)
	}
	// Wildcard restore pairs with the wildcard crash's worker.
	sched, err = Parse("1 stream-crash *\n4 stream-restore *\n")
	if err != nil {
		t.Fatal(err)
	}
	f = &fakeTargets{}
	New(sched, 7, targetsOf(f), nil).AdvanceTo(5)
	if len(f.log) != 4 || f.log[1] != f.log[3] {
		t.Fatalf("wildcard stream crash/restore unpaired: %v", f.log)
	}
	// The stream preset round-trips and stays out of the compute sweep.
	s, err := Preset("stream", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(s.String()); err != nil {
		t.Fatalf("stream preset round trip: %v", err)
	}
	for _, name := range PresetNames() {
		if name == "stream" {
			t.Fatal("stream preset leaked into the compute preset sweep")
		}
	}
}

func TestPresets(t *testing.T) {
	for _, name := range PresetNames() {
		s, err := Preset(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		// Round-trippable through the text format.
		if _, err := Parse(s.String()); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := Preset("nope", 8); err == nil {
		t.Fatal("unknown preset accepted")
	}
	// Load resolves preset names and schedule text alike.
	if s, err := Load("crash", 8); err != nil || len(s) != 2 {
		t.Fatalf("Load preset: %v %v", s, err)
	}
	if s, err := Load("4 crash 2\n9 revive 2\n", 8); err != nil || len(s) != 2 {
		t.Fatalf("Load text: %v %v", s, err)
	}
}
