// Package chaos is a deterministic, seed-driven fault scheduler. A
// declarative Schedule of events — node crash/revive, network partition
// and link degradation, per-node slowdown (stragglers), membership
// message loss, transient task faults — is applied against a set of
// Targets (executor cluster, network fabric, DFS, SWIM membership, Raft
// consensus) as virtual time advances.
//
// Virtual time is a plain counter the host system advances at its own
// deterministic points: the dataflow engine ticks once per scheduling
// wave and once per job attempt, protocol harnesses tick once per round.
// Because events fire only inside Tick — always from the driver thread —
// a run is exactly reproducible from (schedule, seed): the seed resolves
// wildcard ("*") target nodes at construction, and everything else is
// explicit in the schedule. See DESIGN.md "Chaos engineering".
package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topology"
	"repro/internal/trace"
)

// ComputeTarget is the executor-cluster surface chaos drives
// (implemented by *cluster.Cluster).
type ComputeTarget interface {
	Kill(topology.NodeID) error
	Revive(topology.NodeID) error
	SetSlowdown(topology.NodeID, time.Duration) error
}

// StorageTarget is the DFS surface (implemented by *dfs.DFS): a crashed
// machine loses its replicas until revival or re-replication.
type StorageTarget interface {
	KillNode(topology.NodeID) error
	ReviveNode(topology.NodeID) error
}

// NetworkTarget is the fabric surface (implemented by *netsim.Fabric).
// CutLink/HealLink act on the directed reachability layer (gray faults);
// SetPartition rejects overlapping groups with an error, which the
// controller discards like every other target error (a bad partition spec
// is caught by schedule tests, not at injection time).
type NetworkTarget interface {
	SetPartition(groups ...[]topology.NodeID) error
	Heal()
	SetNodeDegrade(topology.NodeID, float64)
	CutLink(src, dst topology.NodeID)
	HealLink(src, dst topology.NodeID)
}

// MembershipTarget is the SWIM surface (implemented by *gossip.Cluster).
type MembershipTarget interface {
	Crash(id int)
	Revive(id int)
	SetLossProb(p float64)
}

// ConsensusTarget is the Raft surface (implemented by
// *consensus.Cluster). CutLink/HealLink mirror the fabric's directed
// reachability layer onto the consensus message transport.
type ConsensusTarget interface {
	Crash(id int)
	Restart(id int)
	Partition(groups ...[]int)
	Heal()
	CutLink(from, to int)
	HealLink(from, to int)
}

// FaultInjector receives per-node transient task fault probabilities
// (implemented by *core.Engine).
type FaultInjector interface {
	SetNodeFailProb(topology.NodeID, float64)
}

// NamenodeTarget is the replicated control-plane surface (implemented
// by *ha.Group). Member ids are consensus replica indices, not cluster
// nodes; a negative id means "the current leader" for CrashMember and
// "the most recently crashed member" for ReviveMember.
type NamenodeTarget interface {
	CrashMember(id int) error
	ReviveMember(id int) error
}

// CoordinatorTarget is the job-coordinator surface (implemented by
// *core.Engine): CrashCoordinator discards the driver's volatile state
// at its next recovery point and the progress journal takes over.
type CoordinatorTarget interface {
	CrashCoordinator()
}

// BlockCorrupter flips bits in one stored DFS replica (implemented by
// *dfs.DFS), exercising checksum verification and read-repair.
type BlockCorrupter interface {
	CorruptBlock(topology.NodeID) error
}

// StreamTarget is the stream-engine surface (implemented by
// *stream.Runner): CrashWorker kills one stream worker's state,
// RestoreWorker triggers recovery from the last committed checkpoint
// with source-tail replay. The id is the worker index.
type StreamTarget interface {
	CrashWorker(id int) error
	RestoreWorker(id int) error
}

// KVTarget is the quorum KV store surface (implemented by
// *kvstore.Store): a crashed node stops serving reads and writes (its
// share of the ring rides on hinted handoff) until recovery delivers
// the hints held for it.
type KVTarget interface {
	FailNode(topology.NodeID) error
	RecoverNode(topology.NodeID) error
}

// OverloadTarget is the open-loop traffic surface (implemented by
// *admission.Sim): SetBurst scales every tenant's arrival rate, and
// SetTenantFlood scales one tenant's. Factor 1 restores normal traffic.
type OverloadTarget interface {
	SetBurst(factor float64)
	SetTenantFlood(tenant int, factor float64)
}

// TxnTarget is the sharded transactional plane surface (implemented by
// *kvstore.Sharded): OrphanNext arms a one-shot coordinator crash at a
// named protocol point (begin, prepare, before-commit, commit, apply,
// split, split-copy, split-commit, merge), and Recover drives every
// orphaned transaction and half-done topology change to its
// deterministic resolution from replicated state.
type TxnTarget interface {
	OrphanNext(point string) error
	Recover() error
}

// Targets wires a controller to the systems it acts on. Any field may be
// nil; events silently skip absent targets, so one schedule drives
// whatever subset a test or experiment assembles.
type Targets struct {
	// Nodes is the cluster size, used to resolve wildcard ("*") event
	// nodes. Required only when the schedule contains wildcards.
	Nodes       int
	Compute     ComputeTarget
	Storage     StorageTarget
	Network     NetworkTarget
	Membership  MembershipTarget
	Consensus   ConsensusTarget
	Faults      FaultInjector
	Stream      StreamTarget
	KV          KVTarget
	Namenode    NamenodeTarget
	Coordinator CoordinatorTarget
	Corrupt     BlockCorrupter
	Overload    OverloadTarget
	Txn         TxnTarget
}

// Controller replays a schedule against its targets as virtual time
// advances. Safe for concurrent use, though deterministic replay depends
// on the host ticking from one driver thread.
type Controller struct {
	mu      sync.Mutex
	sched   Schedule
	idx     int
	now     int64
	seed    uint64
	targets Targets

	// flaps are the active link-flap coins; while any is active, virtual
	// time advances tick by tick (each tick re-rolls every flapping pair)
	// instead of jumping event to event.
	flaps []*flapState

	applied     *metrics.CounterVec // chaos_events_applied{kind}
	heals       *metrics.Counter    // partition_heals
	flapToggles *metrics.Counter    // chaos_flap_toggles
	vtime       *metrics.Gauge      // chaos_vtime

	tracer *trace.Recorder // optional: instant events per injected fault
}

// flapState is one active flap event: a seeded coin per src->dst pair,
// re-rolled every virtual tick. state tracks the current cut set so the
// controller only calls targets on transitions.
type flapState struct {
	srcs, dsts []topology.NodeID
	p          float64
	r          *rng.RNG
	state      map[[2]int]bool
}

// SetTracer attaches a trace recorder: every applied fault is recorded
// as an instant event on the track of the component it hits (the node's
// executor track, "network", "ha", the driver), so injections appear
// inline on the cross-node timeline next to the work they disrupted.
// Nil detaches.
func (c *Controller) SetTracer(r *trace.Recorder) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.tracer = r
	c.mu.Unlock()
}

// trackOf maps an event to the timeline track it annotates.
func trackOf(e Event) string {
	switch e.Kind {
	case Partition, Heal, Drop, Undrop, PartialPartition, LinkCut, LinkHeal, Flap, Unflap:
		return "network"
	case StreamCrash, StreamRestore:
		return fmt.Sprintf("stream-worker-%02d", int(e.Node))
	case NNCrash, NNRevive:
		return "ha"
	case CoordCrash:
		return "driver"
	case Burst, Unburst:
		return "clients"
	case TxnCrash, TxnRecover:
		return "txn"
	case TenantFlood, Unflood:
		return fmt.Sprintf("tenant-%02d", int(e.Node))
	default:
		return fmt.Sprintf("node-%02d", int(e.Node))
	}
}

// New builds a controller over a schedule. Wildcard event nodes are
// resolved immediately from seed (see WildcardNode), so two controllers
// built from the same (schedule, seed) apply identical events. reg
// receives chaos_events_applied{kind}, partition_heals and chaos_vtime;
// nil disables counting.
func New(sched Schedule, seed uint64, targets Targets, reg *metrics.Registry) *Controller {
	c := &Controller{
		sched:   resolveWildcards(sched.sorted(), seed, targets.Nodes),
		seed:    seed,
		targets: targets,
	}
	if reg != nil {
		c.applied = reg.CounterVec("chaos_events_applied", "kind")
		c.heals = reg.Counter("partition_heals")
		c.flapToggles = reg.Counter("chaos_flap_toggles")
		c.vtime = reg.Gauge("chaos_vtime")
	}
	return c
}

// resolveWildcards replaces WildcardNode targets with seeded picks. An
// "undo" kind (revive/unslow/unflaky/undegrade) wildcard reuses the node
// of the most recent resolved wildcard of its starting kind, so
// crash/revive pairs stay paired.
func resolveWildcards(sched Schedule, seed uint64, nodes int) Schedule {
	r := rng.New(seed)
	last := map[Kind]topology.NodeID{}
	undoOf := map[Kind]Kind{
		Revive:        Crash,
		Unslow:        Slow,
		Unflaky:       Flaky,
		Undegrade:     Degrade,
		StreamRestore: StreamCrash,
	}
	out := append(Schedule(nil), sched...)
	for i := range out {
		if out[i].Node != WildcardNode {
			continue
		}
		if start, ok := undoOf[out[i].Kind]; ok {
			if n, ok := last[start]; ok {
				out[i].Node = n
				continue
			}
		}
		if nodes <= 0 {
			panic("chaos: wildcard node in schedule but Targets.Nodes is 0")
		}
		n := topology.NodeID(r.Intn(nodes))
		out[i].Node = n
		last[out[i].Kind] = n
	}
	return out
}

// Tick advances virtual time by one and applies every event now due.
func (c *Controller) Tick() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceToLocked(c.now + 1)
}

// AdvanceTo moves virtual time forward to t (never backward), applying
// due events in schedule order.
func (c *Controller) AdvanceTo(t int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.advanceToLocked(t)
	}
}

func (c *Controller) advanceToLocked(t int64) {
	for c.now < t {
		if len(c.flaps) == 0 {
			// No per-tick faults active: jump straight to the next event
			// (or the target time) in one step.
			next := t
			if c.idx < len(c.sched) && c.sched[c.idx].At > c.now && c.sched[c.idx].At < next {
				next = c.sched[c.idx].At
			}
			c.now = next
		} else {
			c.now++
		}
		for c.idx < len(c.sched) && c.sched[c.idx].At <= c.now {
			c.apply(c.sched[c.idx])
			c.idx++
		}
		c.flapTickLocked()
	}
	c.vtime.Set(c.now)
}

// flapTickLocked re-rolls every active flapping pair once, applying only
// the transitions. Roll order (flap activation order, then srcs x dsts) is
// fixed, so a run is exactly reproducible from (schedule, seed).
func (c *Controller) flapTickLocked() {
	for _, f := range c.flaps {
		for _, s := range f.srcs {
			for _, d := range f.dsts {
				if s == d {
					continue
				}
				want := f.r.Float64() < f.p
				key := [2]int{int(s), int(d)}
				if want == f.state[key] {
					continue
				}
				f.state[key] = want
				c.flapToggles.Inc()
				if want {
					c.cutPair(s, d)
				} else {
					c.healPair(s, d)
				}
			}
		}
	}
}

// cutPair / healPair apply one directed link transition to every wired
// gray-capable target.
func (c *Controller) cutPair(s, d topology.NodeID) {
	if c.targets.Network != nil {
		c.targets.Network.CutLink(s, d)
	}
	if c.targets.Consensus != nil {
		c.targets.Consensus.CutLink(int(s), int(d))
	}
}

func (c *Controller) healPair(s, d topology.NodeID) {
	if c.targets.Network != nil {
		c.targets.Network.HealLink(s, d)
	}
	if c.targets.Consensus != nil {
		c.targets.Consensus.HealLink(int(s), int(d))
	}
}

func (c *Controller) cutPairs(srcs, dsts []topology.NodeID) {
	for _, s := range srcs {
		for _, d := range dsts {
			if s != d {
				c.cutPair(s, d)
			}
		}
	}
}

func (c *Controller) healPairs(srcs, dsts []topology.NodeID) {
	for _, s := range srcs {
		for _, d := range dsts {
			if s != d {
				c.healPair(s, d)
			}
		}
	}
}

// Now returns the current virtual time.
func (c *Controller) Now() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Applied returns how many events have fired.
func (c *Controller) Applied() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx
}

// Done reports whether every scheduled event has fired.
func (c *Controller) Done() bool {
	if c == nil {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx >= len(c.sched)
}

// apply fires one event against every wired target.
func (c *Controller) apply(e Event) {
	t := c.targets
	switch e.Kind {
	case Crash:
		if t.Compute != nil {
			_ = t.Compute.Kill(e.Node)
		}
		if t.Storage != nil {
			_ = t.Storage.KillNode(e.Node)
		}
		if t.Membership != nil {
			t.Membership.Crash(int(e.Node))
		}
		if t.Consensus != nil {
			t.Consensus.Crash(int(e.Node))
		}
		if t.KV != nil {
			_ = t.KV.FailNode(e.Node)
		}
	case Revive:
		if t.Compute != nil {
			_ = t.Compute.Revive(e.Node)
		}
		if t.Storage != nil {
			_ = t.Storage.ReviveNode(e.Node)
		}
		if t.Membership != nil {
			t.Membership.Revive(int(e.Node))
		}
		if t.Consensus != nil {
			t.Consensus.Restart(int(e.Node))
		}
		if t.KV != nil {
			_ = t.KV.RecoverNode(e.Node)
		}
	case Partition:
		if t.Network != nil {
			_ = t.Network.SetPartition(e.Group...)
		}
		if t.Consensus != nil {
			groups := make([][]int, len(e.Group))
			for i, g := range e.Group {
				groups[i] = make([]int, len(g))
				for j, n := range g {
					groups[i][j] = int(n)
				}
			}
			t.Consensus.Partition(groups...)
		}
	case PartialPartition:
		// Non-transitive partial partition: every cross-group link is cut
		// (both directions) but, unlike Partition, nodes OUTSIDE the listed
		// groups still reach everyone — connectivity stops being transitive.
		for i := range e.Group {
			for j := i + 1; j < len(e.Group); j++ {
				c.cutPairs(e.Group[i], e.Group[j])
				c.cutPairs(e.Group[j], e.Group[i])
			}
		}
	case LinkCut:
		c.cutPairs(e.Group[0], e.Group[1])
	case LinkHeal:
		c.healPairs(e.Group[0], e.Group[1])
	case Flap:
		c.flaps = append(c.flaps, &flapState{
			srcs:  e.Group[0],
			dsts:  e.Group[1],
			p:     e.Value,
			r:     rng.New(c.seed ^ (uint64(c.idx)+1)*0x9e3779b97f4a7c15),
			state: map[[2]int]bool{},
		})
	case Unflap:
		kept := c.flaps[:0]
		for _, f := range c.flaps {
			if nodesEqual(f.srcs, e.Group[0]) && nodesEqual(f.dsts, e.Group[1]) {
				// Heal whatever the coin currently holds cut.
				for key, cut := range f.state {
					if cut {
						c.healPair(topology.NodeID(key[0]), topology.NodeID(key[1]))
					}
				}
				continue
			}
			kept = append(kept, f)
		}
		c.flaps = kept
	case Heal:
		if t.Network != nil {
			t.Network.Heal()
		}
		if t.Consensus != nil {
			t.Consensus.Heal()
		}
		// Heal is total: drop any active flap coins too, so a trailing
		// "T heal" leaves the run with a fully clean fabric.
		c.flaps = nil
		c.heals.Inc()
	case Slow:
		if t.Compute != nil {
			_ = t.Compute.SetSlowdown(e.Node, e.Delay)
		}
	case Unslow:
		if t.Compute != nil {
			_ = t.Compute.SetSlowdown(e.Node, 0)
		}
	case Flaky:
		if t.Faults != nil {
			t.Faults.SetNodeFailProb(e.Node, e.Value)
		}
	case Unflaky:
		if t.Faults != nil {
			t.Faults.SetNodeFailProb(e.Node, 0)
		}
	case Drop:
		if t.Membership != nil {
			t.Membership.SetLossProb(e.Value)
		}
	case Undrop:
		if t.Membership != nil {
			t.Membership.SetLossProb(0)
		}
	case Degrade:
		if t.Network != nil {
			t.Network.SetNodeDegrade(e.Node, e.Value)
		}
	case Undegrade:
		if t.Network != nil {
			t.Network.SetNodeDegrade(e.Node, 1)
		}
	case StreamCrash:
		if t.Stream != nil {
			_ = t.Stream.CrashWorker(int(e.Node))
		}
	case StreamRestore:
		if t.Stream != nil {
			_ = t.Stream.RestoreWorker(int(e.Node))
		}
	case NNCrash:
		if t.Namenode != nil {
			_ = t.Namenode.CrashMember(memberID(e.Node))
		}
	case NNRevive:
		if t.Namenode != nil {
			_ = t.Namenode.ReviveMember(memberID(e.Node))
		}
	case CoordCrash:
		if t.Coordinator != nil {
			t.Coordinator.CrashCoordinator()
		}
	case CorruptBlock:
		if t.Corrupt != nil {
			_ = t.Corrupt.CorruptBlock(e.Node)
		}
	case Burst:
		if t.Overload != nil {
			t.Overload.SetBurst(e.Value)
		}
	case Unburst:
		if t.Overload != nil {
			t.Overload.SetBurst(1)
		}
	case TenantFlood:
		if t.Overload != nil {
			t.Overload.SetTenantFlood(int(e.Node), e.Value)
		}
	case Unflood:
		if t.Overload != nil {
			t.Overload.SetTenantFlood(int(e.Node), 1)
		}
	case TxnCrash:
		if t.Txn != nil {
			_ = t.Txn.OrphanNext(e.Point)
		}
	case TxnRecover:
		if t.Txn != nil {
			_ = t.Txn.Recover()
		}
	}
	c.applied.With(string(e.Kind)).Inc()
	c.tracer.Instant(fmt.Sprintf("chaos %s", e.Kind), "chaos", trackOf(e), map[string]string{
		"kind":  string(e.Kind),
		"vtime": fmt.Sprint(e.At),
	})
}

// nodesEqual reports whether two node lists are identical (order matters:
// Unflap must name the same src/dst lists its Flap used).
func nodesEqual(a, b []topology.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// memberID translates a schedule member token into the ha.Group call
// convention: "leader" becomes -1 (crash the leader / revive the most
// recently crashed member).
func memberID(n topology.NodeID) int {
	if n == LeaderNode {
		return -1
	}
	return int(n)
}
