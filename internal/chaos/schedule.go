package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/topology"
)

// Kind names a fault event type.
type Kind string

// Event kinds. Crash/Revive hit a whole machine across every wired target
// (executors, DFS replicas, membership, consensus). Partition/Heal act on
// the network fabric and consensus transport. Slow/Unslow inject compute
// stragglers, Degrade/Undegrade network stragglers, Flaky/Unflaky
// transient task faults, Drop/Undrop membership message loss.
// StreamCrash/StreamRestore kill and recover one stream-engine worker
// (the node id is the worker index); recovery restores from the last
// committed checkpoint and replays the source tail.
// NNCrash/NNRevive kill and restart one member of the replicated
// control-plane group (the node id is the member index, or "leader");
// CoordCrash kills the job coordinator (volatile driver state is lost
// and the journal takes over); CorruptBlock flips bits in one stored
// DFS replica on the target node, exercising checksum read-repair.
const (
	Crash         Kind = "crash"
	Revive        Kind = "revive"
	Partition     Kind = "partition"
	Heal          Kind = "heal"
	Slow          Kind = "slow"
	Unslow        Kind = "unslow"
	Flaky         Kind = "flaky"
	Unflaky       Kind = "unflaky"
	Drop          Kind = "drop"
	Undrop        Kind = "undrop"
	Degrade       Kind = "degrade"
	Undegrade     Kind = "undegrade"
	StreamCrash   Kind = "stream-crash"
	StreamRestore Kind = "stream-restore"
	NNCrash       Kind = "nn-crash"
	NNRevive      Kind = "nn-revive"
	CoordCrash    Kind = "coord-crash"
	CorruptBlock  Kind = "corrupt-block"
	// Burst/Unburst scale every tenant's open-loop arrival rate by a
	// factor (traffic burst); TenantFlood/Unflood scale one tenant's rate
	// (a noisy neighbour flooding its share). Both act on the Overload
	// target; the Node field carries the tenant index for floods.
	Burst       Kind = "burst"
	Unburst     Kind = "unburst"
	TenantFlood Kind = "tenant-flood"
	Unflood     Kind = "unflood"
	// TxnCrash arms a one-shot transaction-coordinator crash at a named
	// 2PC/topology protocol point on the sharded KV plane; the next
	// operation through that point dies there, leaving its replicated
	// record behind. TxnRecover drives every orphaned transaction and
	// half-done range split/merge to its deterministic resolution.
	TxnCrash   Kind = "txn-crash"
	TxnRecover Kind = "txn-recover"
	// Gray-failure kinds act on the DIRECTED reachability layer of the
	// network fabric and consensus transport. LinkCut blocks every src->dst
	// pair between two node lists one way only (the reverse direction keeps
	// flowing); LinkHeal reverses exactly those cuts. PartialPartition cuts
	// both directions pairwise between its groups but — unlike Partition —
	// leaves intra-group and unlisted links alone, so non-transitive shapes
	// (A-B and B-C alive, A-C dead) are expressible. Flap seeds a per-tick
	// coin for every src->dst pair: each tick the link is cut with the given
	// probability, else healed (a flapping NIC or LB route); Unflap stops
	// the coin and heals its pairs.
	LinkCut          Kind = "link-cut"
	LinkHeal         Kind = "link-heal"
	PartialPartition Kind = "partial-partition"
	Flap             Kind = "flap"
	Unflap           Kind = "unflap"
)

// WildcardNode marks an event whose target node is chosen by the
// controller's seeded RNG at construction time (written "*" in the text
// form). A revive/unslow/unflaky/undegrade wildcard resolves to the node
// picked by the most recent wildcard of its starting kind, so
// "crash * ... revive *" always pairs up.
const WildcardNode = topology.NodeID(-1)

// LeaderNode marks an nn-crash/nn-revive event targeting whichever
// member currently leads the control-plane group (written "leader" in
// the text form). For nn-revive it resolves to the most recently
// crashed member, so "nn-crash leader ... nn-revive leader" pairs up.
const LeaderNode = topology.NodeID(-2)

// Event is one scheduled fault, fired when virtual time reaches At.
type Event struct {
	At    int64
	Kind  Kind
	Node  topology.NodeID     // crash/revive/slow/unslow/flaky/unflaky/degrade/undegrade
	Value float64             // flaky probability, drop probability, degrade factor
	Delay time.Duration       // slow delay
	Group [][]topology.NodeID // partition groups
	Point string              // txn-crash protocol point
}

// Schedule is an ordered fault plan. Build one with Parse, a Preset, or
// literal Events; the controller sorts it stably by At.
type Schedule []Event

// sorted returns a stable At-ordered copy.
func (s Schedule) sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the schedule in the text format Parse accepts.
func (s Schedule) String() string {
	var b strings.Builder
	for _, e := range s {
		fmt.Fprintf(&b, "%d %s", e.At, e.Kind)
		switch e.Kind {
		case Crash, Revive, Unslow, Unflaky, Undegrade, StreamCrash, StreamRestore,
			NNCrash, NNRevive, CorruptBlock:
			b.WriteString(" " + nodeString(e.Node))
		case Slow:
			fmt.Fprintf(&b, " %s %s", nodeString(e.Node), e.Delay)
		case Flaky:
			fmt.Fprintf(&b, " %s %g", nodeString(e.Node), e.Value)
		case Degrade:
			fmt.Fprintf(&b, " %s %g", nodeString(e.Node), e.Value)
		case Drop, Burst:
			fmt.Fprintf(&b, " %g", e.Value)
		case TenantFlood:
			fmt.Fprintf(&b, " %d %g", int(e.Node), e.Value)
		case Unflood:
			fmt.Fprintf(&b, " %d", int(e.Node))
		case TxnCrash:
			b.WriteString(" " + e.Point)
		case Partition, PartialPartition:
			b.WriteString(" " + groupsString(e.Group, "|"))
		case LinkCut, LinkHeal, Unflap:
			b.WriteString(" " + groupsString(e.Group, " "))
		case Flap:
			fmt.Fprintf(&b, " %s %g", groupsString(e.Group, " "), e.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// groupsString renders node groups in the comma-list form Parse accepts,
// joined by sep ("|" for partition groups, " " for src/dst list pairs).
func groupsString(groups [][]topology.NodeID, sep string) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		ids := make([]string, len(g))
		for j, n := range g {
			ids[j] = strconv.Itoa(int(n))
		}
		parts[i] = strings.Join(ids, ",")
	}
	return strings.Join(parts, sep)
}

func nodeString(n topology.NodeID) string {
	switch n {
	case WildcardNode:
		return "*"
	case LeaderNode:
		return "leader"
	}
	return strconv.Itoa(int(n))
}

// kindSpec drives the parser: the exact argument count, the usage shown
// in errors, and the function consuming the arguments. Adding a fault
// kind is one table entry plus an apply case in the controller.
type kindSpec struct {
	usage string
	nargs int
	parse func(e *Event, args []string) error
}

func nodeArg(e *Event, args []string) error {
	n, err := parseNode(args[0])
	if err != nil {
		return err
	}
	e.Node = n
	return nil
}

func memberArg(e *Event, args []string) error {
	n, err := parseMember(args[0])
	if err != nil {
		return err
	}
	e.Node = n
	return nil
}

// tenantArg reads a tenant index into Node. Tenants are workload
// indices, not cluster nodes, so the "*" wildcard is rejected.
func tenantArg(e *Event, args []string) error {
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return fmt.Errorf("bad tenant %q", args[0])
	}
	e.Node = topology.NodeID(n)
	return nil
}

func valueArg(e *Event, args []string) error {
	if err := nodeArg(e, args); err != nil {
		return err
	}
	v, err := strconv.ParseFloat(args[1], 64)
	if err != nil || v < 0 {
		return fmt.Errorf("bad value %q", args[1])
	}
	e.Value = v
	return nil
}

var kindTable = map[Kind]kindSpec{
	Crash:         {"<node>", 1, nodeArg},
	Revive:        {"<node>", 1, nodeArg},
	Unslow:        {"<node>", 1, nodeArg},
	Unflaky:       {"<node>", 1, nodeArg},
	Undegrade:     {"<node>", 1, nodeArg},
	StreamCrash:   {"<worker>", 1, nodeArg},
	StreamRestore: {"<worker>", 1, nodeArg},
	CorruptBlock:  {"<node>", 1, nodeArg},
	NNCrash:       {"<member|leader>", 1, memberArg},
	NNRevive:      {"<member|leader>", 1, memberArg},
	Slow: {"<node> <duration>", 2, func(e *Event, args []string) error {
		if err := nodeArg(e, args); err != nil {
			return err
		}
		d, err := time.ParseDuration(args[1])
		if err != nil || d < 0 {
			return fmt.Errorf("bad duration %q", args[1])
		}
		e.Delay = d
		return nil
	}},
	Flaky:   {"<node> <probability>", 2, valueArg},
	Degrade: {"<node> <factor>", 2, valueArg},
	Drop: {"<probability>", 1, func(e *Event, args []string) error {
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v < 0 || v > 1 {
			return fmt.Errorf("bad probability %q", args[0])
		}
		e.Value = v
		return nil
	}},
	Undrop:     {"", 0, nil},
	Heal:       {"", 0, nil},
	CoordCrash: {"", 0, nil},
	Unburst:    {"", 0, nil},
	Burst: {"<factor>", 1, func(e *Event, args []string) error {
		v, err := strconv.ParseFloat(args[0], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad factor %q", args[0])
		}
		e.Value = v
		return nil
	}},
	TenantFlood: {"<tenant> <factor>", 2, func(e *Event, args []string) error {
		if err := tenantArg(e, args); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[1], 64)
		if err != nil || v <= 0 {
			return fmt.Errorf("bad factor %q", args[1])
		}
		e.Value = v
		return nil
	}},
	Unflood:    {"<tenant>", 1, tenantArg},
	TxnRecover: {"", 0, nil},
	TxnCrash: {"<point>", 1, func(e *Event, args []string) error {
		// Point names are validated by the target (kvstore.Sharded
		// rejects unknown ones); the parser only requires one token.
		e.Point = args[0]
		return nil
	}},
	Partition: {"<groups like 0-3|4-7>", 1, func(e *Event, args []string) error {
		groups, err := parseGroups(args[0])
		if err != nil {
			return err
		}
		e.Group = groups
		return nil
	}},
	PartialPartition: {"<groups like 0|2-4>", 1, func(e *Event, args []string) error {
		groups, err := parseGroups(args[0])
		if err != nil {
			return err
		}
		e.Group = groups
		return nil
	}},
	LinkCut:  {"<srcs> <dsts> (e.g. 0-3 4)", 2, linkArgs},
	LinkHeal: {"<srcs> <dsts>", 2, linkArgs},
	Unflap:   {"<srcs> <dsts>", 2, linkArgs},
	Flap: {"<srcs> <dsts> <probability>", 3, func(e *Event, args []string) error {
		if err := linkArgs(e, args); err != nil {
			return err
		}
		v, err := strconv.ParseFloat(args[2], 64)
		if err != nil || v <= 0 || v > 1 {
			return fmt.Errorf("bad flap probability %q (want 0 < p <= 1)", args[2])
		}
		e.Value = v
		return nil
	}},
}

// linkArgs reads a <srcs> <dsts> pair of node lists ("0-3 4", "0,2 1-4")
// into Group[0] (sources) and Group[1] (destinations).
func linkArgs(e *Event, args []string) error {
	srcs, err := parseNodeList(args[0])
	if err != nil {
		return err
	}
	dsts, err := parseNodeList(args[1])
	if err != nil {
		return err
	}
	e.Group = [][]topology.NodeID{srcs, dsts}
	return nil
}

// Parse reads the text schedule format: one event per line,
//
//	<at> <kind> [args]
//
// with '#' comments and blank lines ignored. Examples:
//
//	2 crash 3          # kill node 3 at virtual time 2
//	8 revive 3
//	3 partition 0-3|4-7
//	9 heal
//	1 slow 1 40ms      # node 1 tasks take 40ms longer
//	5 flaky 2 0.8      # tasks on node 2 fail with p=0.8
//	4 drop 0.2         # membership messages lost with p=0.2
//	6 degrade 5 4      # transfers touching node 5 cost 4x
//	7 stream-crash 2   # kill stream worker 2 (state lost)
//	9 stream-restore 2 # recover from the last committed checkpoint
//	2 nn-crash leader  # kill the control-plane leader member
//	9 nn-revive leader # restart the most recently crashed member
//	5 coord-crash      # kill the job coordinator (journal recovers)
//	3 corrupt-block 4  # flip bits in one replica stored on node 4
//	4 link-cut 0-3 4   # gray: nodes 0..3 can no longer reach 4 (one way)
//	9 link-heal 0-3 4
//	5 partial-partition 0|2-4  # pairwise two-way cuts, non-transitive
//	6 flap 0 1-4 0.3   # each 0->x link cut with p=0.3 per tick
//	9 unflap 0 1-4     # stop flapping and heal those links
//
// Unknown kinds, wrong argument counts and trailing junk are all
// rejected with the offending line number. A node written "*" is a
// wildcard resolved from the controller seed; see WildcardNode.
func Parse(text string) (Schedule, error) {
	var s Schedule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(why string) (Schedule, error) {
			return nil, fmt.Errorf("chaos: line %d %q: %s", lineNo+1, strings.TrimSpace(raw), why)
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || at < 0 {
			return bad("want non-negative integer virtual time first")
		}
		if len(fields) < 2 {
			return bad("missing event kind")
		}
		e := Event{At: at, Kind: Kind(fields[1])}
		args := fields[2:]
		spec, ok := kindTable[e.Kind]
		if !ok {
			return bad(fmt.Sprintf("unknown event kind %q", fields[1]))
		}
		if len(args) != spec.nargs {
			if spec.nargs == 0 {
				return bad(fmt.Sprintf("%s takes no arguments", e.Kind))
			}
			return bad(fmt.Sprintf("%s wants %s", e.Kind, spec.usage))
		}
		if spec.parse != nil {
			if err := spec.parse(&e, args); err != nil {
				return bad(err.Error())
			}
		}
		s = append(s, e)
	}
	return s, nil
}

func parseNode(tok string) (topology.NodeID, error) {
	if tok == "*" {
		return WildcardNode, nil
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node %q", tok)
	}
	return topology.NodeID(n), nil
}

// parseMember reads a control-plane member id: a non-negative index or
// "leader" (the wildcard "*" makes no sense for a 3-member group whose
// ids are unrelated to cluster nodes, so it is rejected).
func parseMember(tok string) (topology.NodeID, error) {
	if tok == "leader" {
		return LeaderNode, nil
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad member %q (want an index or \"leader\")", tok)
	}
	return topology.NodeID(n), nil
}

// parseNodeList reads a comma list of ids or lo-hi ranges ("0-3", "0,2,5").
func parseNodeList(part string) ([]topology.NodeID, error) {
	var g []topology.NodeID
	for _, tok := range strings.Split(part, ",") {
		if tok == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(tok, "-"); ok {
			a, err1 := strconv.Atoi(lo)
			b, err2 := strconv.Atoi(hi)
			if err1 != nil || err2 != nil || a < 0 || b < a {
				return nil, fmt.Errorf("bad range %q", tok)
			}
			for n := a; n <= b; n++ {
				g = append(g, topology.NodeID(n))
			}
		} else {
			n, err := strconv.Atoi(tok)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad node %q", tok)
			}
			g = append(g, topology.NodeID(n))
		}
	}
	if len(g) == 0 {
		return nil, fmt.Errorf("empty node list %q", part)
	}
	return g, nil
}

// parseGroups reads "0-3|4-7" or "0,2|1,3" style partition specs: groups
// separated by '|', each a comma list of ids or lo-hi ranges.
func parseGroups(spec string) ([][]topology.NodeID, error) {
	var groups [][]topology.NodeID
	for _, part := range strings.Split(spec, "|") {
		g, err := parseNodeList(part)
		if err != nil {
			return nil, fmt.Errorf("%v in %q", err, spec)
		}
		groups = append(groups, g)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("partition wants at least two groups, got %q", spec)
	}
	return groups, nil
}
