package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/topology"
)

// Kind names a fault event type.
type Kind string

// Event kinds. Crash/Revive hit a whole machine across every wired target
// (executors, DFS replicas, membership, consensus). Partition/Heal act on
// the network fabric and consensus transport. Slow/Unslow inject compute
// stragglers, Degrade/Undegrade network stragglers, Flaky/Unflaky
// transient task faults, Drop/Undrop membership message loss.
// StreamCrash/StreamRestore kill and recover one stream-engine worker
// (the node id is the worker index); recovery restores from the last
// committed checkpoint and replays the source tail.
const (
	Crash         Kind = "crash"
	Revive        Kind = "revive"
	Partition     Kind = "partition"
	Heal          Kind = "heal"
	Slow          Kind = "slow"
	Unslow        Kind = "unslow"
	Flaky         Kind = "flaky"
	Unflaky       Kind = "unflaky"
	Drop          Kind = "drop"
	Undrop        Kind = "undrop"
	Degrade       Kind = "degrade"
	Undegrade     Kind = "undegrade"
	StreamCrash   Kind = "stream-crash"
	StreamRestore Kind = "stream-restore"
)

// WildcardNode marks an event whose target node is chosen by the
// controller's seeded RNG at construction time (written "*" in the text
// form). A revive/unslow/unflaky/undegrade wildcard resolves to the node
// picked by the most recent wildcard of its starting kind, so
// "crash * ... revive *" always pairs up.
const WildcardNode = topology.NodeID(-1)

// Event is one scheduled fault, fired when virtual time reaches At.
type Event struct {
	At    int64
	Kind  Kind
	Node  topology.NodeID     // crash/revive/slow/unslow/flaky/unflaky/degrade/undegrade
	Value float64             // flaky probability, drop probability, degrade factor
	Delay time.Duration       // slow delay
	Group [][]topology.NodeID // partition groups
}

// Schedule is an ordered fault plan. Build one with Parse, a Preset, or
// literal Events; the controller sorts it stably by At.
type Schedule []Event

// sorted returns a stable At-ordered copy.
func (s Schedule) sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// String renders the schedule in the text format Parse accepts.
func (s Schedule) String() string {
	var b strings.Builder
	for _, e := range s {
		fmt.Fprintf(&b, "%d %s", e.At, e.Kind)
		switch e.Kind {
		case Crash, Revive, Unslow, Unflaky, Undegrade, StreamCrash, StreamRestore:
			b.WriteString(" " + nodeString(e.Node))
		case Slow:
			fmt.Fprintf(&b, " %s %s", nodeString(e.Node), e.Delay)
		case Flaky:
			fmt.Fprintf(&b, " %s %g", nodeString(e.Node), e.Value)
		case Degrade:
			fmt.Fprintf(&b, " %s %g", nodeString(e.Node), e.Value)
		case Drop:
			fmt.Fprintf(&b, " %g", e.Value)
		case Partition:
			parts := make([]string, len(e.Group))
			for i, g := range e.Group {
				ids := make([]string, len(g))
				for j, n := range g {
					ids[j] = strconv.Itoa(int(n))
				}
				parts[i] = strings.Join(ids, ",")
			}
			b.WriteString(" " + strings.Join(parts, "|"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func nodeString(n topology.NodeID) string {
	if n == WildcardNode {
		return "*"
	}
	return strconv.Itoa(int(n))
}

// Parse reads the text schedule format: one event per line,
//
//	<at> <kind> [args]
//
// with '#' comments and blank lines ignored. Examples:
//
//	2 crash 3          # kill node 3 at virtual time 2
//	8 revive 3
//	3 partition 0-3|4-7
//	9 heal
//	1 slow 1 40ms      # node 1 tasks take 40ms longer
//	5 flaky 2 0.8      # tasks on node 2 fail with p=0.8
//	4 drop 0.2         # membership messages lost with p=0.2
//	6 degrade 5 4      # transfers touching node 5 cost 4x
//	7 stream-crash 2   # kill stream worker 2 (state lost)
//	9 stream-restore 2 # recover from the last committed checkpoint
//
// A node written "*" is a wildcard resolved from the controller seed; see
// WildcardNode.
func Parse(text string) (Schedule, error) {
	var s Schedule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		bad := func(why string) (Schedule, error) {
			return nil, fmt.Errorf("chaos: line %d %q: %s", lineNo+1, strings.TrimSpace(raw), why)
		}
		at, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || at < 0 {
			return bad("want non-negative integer virtual time first")
		}
		if len(fields) < 2 {
			return bad("missing event kind")
		}
		e := Event{At: at, Kind: Kind(fields[1])}
		args := fields[2:]
		needNode := func() error {
			if len(args) < 1 {
				return fmt.Errorf("missing node")
			}
			n, err := parseNode(args[0])
			if err != nil {
				return err
			}
			e.Node = n
			return nil
		}
		switch e.Kind {
		case Crash, Revive, Unslow, Unflaky, Undegrade, StreamCrash, StreamRestore:
			if err := needNode(); err != nil {
				return bad(err.Error())
			}
		case Slow:
			if err := needNode(); err != nil {
				return bad(err.Error())
			}
			if len(args) < 2 {
				return bad("slow wants <node> <duration>")
			}
			d, err := time.ParseDuration(args[1])
			if err != nil || d < 0 {
				return bad("bad duration")
			}
			e.Delay = d
		case Flaky, Degrade:
			if err := needNode(); err != nil {
				return bad(err.Error())
			}
			if len(args) < 2 {
				return bad(string(e.Kind) + " wants <node> <value>")
			}
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v < 0 {
				return bad("bad value")
			}
			e.Value = v
		case Drop:
			if len(args) < 1 {
				return bad("drop wants <probability>")
			}
			v, err := strconv.ParseFloat(args[0], 64)
			if err != nil || v < 0 || v > 1 {
				return bad("bad probability")
			}
			e.Value = v
		case Undrop, Heal:
			// no args
		case Partition:
			if len(args) < 1 {
				return bad("partition wants groups like 0-3|4-7")
			}
			groups, err := parseGroups(args[0])
			if err != nil {
				return bad(err.Error())
			}
			e.Group = groups
		default:
			return bad("unknown event kind")
		}
		s = append(s, e)
	}
	return s, nil
}

func parseNode(tok string) (topology.NodeID, error) {
	if tok == "*" {
		return WildcardNode, nil
	}
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad node %q", tok)
	}
	return topology.NodeID(n), nil
}

// parseGroups reads "0-3|4-7" or "0,2|1,3" style partition specs: groups
// separated by '|', each a comma list of ids or lo-hi ranges.
func parseGroups(spec string) ([][]topology.NodeID, error) {
	var groups [][]topology.NodeID
	for _, part := range strings.Split(spec, "|") {
		var g []topology.NodeID
		for _, tok := range strings.Split(part, ",") {
			if tok == "" {
				continue
			}
			if lo, hi, ok := strings.Cut(tok, "-"); ok {
				a, err1 := strconv.Atoi(lo)
				b, err2 := strconv.Atoi(hi)
				if err1 != nil || err2 != nil || a < 0 || b < a {
					return nil, fmt.Errorf("bad range %q", tok)
				}
				for n := a; n <= b; n++ {
					g = append(g, topology.NodeID(n))
				}
			} else {
				n, err := strconv.Atoi(tok)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("bad node %q", tok)
				}
				g = append(g, topology.NodeID(n))
			}
		}
		if len(g) == 0 {
			return nil, fmt.Errorf("empty partition group in %q", spec)
		}
		groups = append(groups, g)
	}
	if len(groups) < 2 {
		return nil, fmt.Errorf("partition wants at least two groups, got %q", spec)
	}
	return groups, nil
}
