package chaos

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestGrayKindsParseRoundTrip covers the directed-fault text forms.
func TestGrayKindsParseRoundTrip(t *testing.T) {
	text := `
4 link-cut 0-3 4
9 link-heal 0-3 4
5 partial-partition 0|2-4
6 flap 0 1-4 0.3
9 unflap 0 1-4
12 heal
`
	s, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 6 {
		t.Fatalf("parsed %d events, want 6", len(s))
	}
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if !reflect.DeepEqual(s, s2) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", s, s2)
	}
	if s[0].Kind != LinkCut || len(s[0].Group) != 2 || len(s[0].Group[0]) != 4 || len(s[0].Group[1]) != 1 {
		t.Fatalf("link-cut parsed wrong: %+v", s[0])
	}
	if s[3].Kind != Flap || s[3].Value != 0.3 {
		t.Fatalf("flap parsed wrong: %+v", s[3])
	}
}

func TestGrayParseErrors(t *testing.T) {
	for _, bad := range []string{
		"1 link-cut 0-3",            // missing dsts
		"1 link-cut 0-3 4 5",        // trailing junk
		"1 link-cut a 4",            // garbage srcs
		"1 flap 0 1-4",              // missing probability
		"1 flap 0 1-4 0",            // p must be > 0
		"1 flap 0 1-4 1.5",          // p must be <= 1
		"1 partial-partition 0-4",   // one group
		"1 unflap 0",                // missing dsts
		"1 link-heal 3- 4",          // bad range
		"1 partial-partition 0|b-c", // garbage group
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestGrayApplySequence pins the exact target calls each directed kind
// makes: link-cut/link-heal fan src x dst one way, partial-partition cuts
// pairwise in both directions, heal wipes everything.
func TestGrayApplySequence(t *testing.T) {
	sched, err := Parse("2 link-cut 0,1 2\n4 partial-partition 0|2\n6 link-heal 0,1 2\n8 heal\n")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeTargets{}
	c := New(sched, 1, targetsOf(f), nil)
	c.AdvanceTo(10)
	want := []string{
		"cut", "0>2", "cut", "1>2", // link-cut 0,1 -> 2
		"cut", "0>2", "cut", "2>0", // partial-partition 0|2: both ways
		"healink", "0>2", "healink", "1>2",
		"heal",
	}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v\nwant  %v", f.log, want)
	}
	if !c.Done() {
		t.Fatal("controller not done")
	}
}

// TestFlapDeterminismAndUnflap: a flap window toggles links with the
// seeded coin (same seed -> identical transition log), unflap heals
// whatever the coin left cut, and the toggle counter moves.
func TestFlapDeterminismAndUnflap(t *testing.T) {
	text := "1 flap 0 1,2 0.5\n30 unflap 0 1,2\n"
	run := func(seed uint64) ([]string, int64) {
		sched, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		f := &fakeTargets{}
		reg := metrics.NewRegistry()
		c := New(sched, seed, targetsOf(f), reg)
		c.AdvanceTo(40)
		return f.log, reg.Counter("chaos_flap_toggles").Value()
	}
	log1, tog1 := run(42)
	log2, tog2 := run(42)
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed diverged:\n%v\nvs\n%v", log1, log2)
	}
	if tog1 != tog2 || tog1 == 0 {
		t.Fatalf("flap toggles = %d / %d, want equal and > 0", tog1, tog2)
	}
	// Net effect of the whole run: every flapped pair ends healed.
	state := map[string]bool{}
	for i := 0; i+1 < len(log1); i += 2 {
		switch log1[i] {
		case "cut":
			state[log1[i+1]] = true
		case "healink":
			state[log1[i+1]] = false
		}
	}
	for pair, cut := range state {
		if cut {
			t.Fatalf("pair %s still cut after unflap", pair)
		}
	}
}

// TestFlapTickStepping: with no flap active the controller jumps event to
// event; once a flap is armed it must advance tick by tick so the coin is
// rolled at every virtual instant (otherwise long AdvanceTo jumps would
// skip flapping entirely).
func TestFlapTickStepping(t *testing.T) {
	sched, err := Parse("5 flap 0 1 1\n")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeTargets{}
	c := New(sched, 7, targetsOf(f), nil)
	c.AdvanceTo(1000)
	if c.Now() != 1000 {
		t.Fatalf("vtime = %d, want 1000", c.Now())
	}
	// p=1: the link is cut on the first roll and never healed — exactly
	// one transition no matter how far time advanced.
	want := []string{"cut", "0>1"}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v, want %v", f.log, want)
	}
}

// TestGrayPreset: the gray preset parses, round-trips, ends with a total
// heal, and stays out of the compute-preset sweep.
func TestGrayPreset(t *testing.T) {
	s, err := Preset("gray", 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(s.String()); err != nil {
		t.Fatalf("gray preset round trip: %v", err)
	}
	if s[len(s)-1].Kind != Heal {
		t.Fatalf("gray preset must end with heal, got %s", s[len(s)-1].Kind)
	}
	for _, name := range PresetNames() {
		if name == "gray" {
			t.Fatal("gray preset leaked into the compute preset sweep")
		}
	}
	// Replaying the preset against targets leaves every link healed: the
	// final heal is a real event, not decoration.
	f := &fakeTargets{}
	c := New(s, 3, targetsOf(f), nil)
	c.AdvanceTo(30)
	if !c.Done() {
		t.Fatal("gray preset did not finish by vtime 30")
	}
	if len(f.log) == 0 || f.log[len(f.log)-1] != "heal" {
		t.Fatalf("last target call = %v, want heal", f.log)
	}
}

// FuzzParseSchedule: anything Parse accepts must render back through
// String into a schedule Parse accepts again and that compares equal —
// the property every preset and experiment schedule relies on.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		"2 crash 3\n8 revive 3\n",
		"3 partition 0-3|4-7\n5 heal\n",
		"1 slow 1 40ms\n13 unslow 1\n",
		"7 flaky 2 0.8\n12 unflaky 2\n",
		"8 drop 0.25\n11 undrop\n",
		"9 degrade 5 4\n10 undegrade 5\n",
		"7 stream-crash 2\n9 stream-restore 2\n",
		"2 nn-crash leader\n9 nn-revive leader\n",
		"5 coord-crash\n3 corrupt-block 4\n",
		"2 burst 3\n10 unburst\n4 tenant-flood 0 5\n9 unflood 0\n",
		"2 txn-crash before-commit\n4 txn-recover\n",
		"4 link-cut 0-3 4\n9 link-heal 0-3 4\n",
		"5 partial-partition 0|2-4\n12 heal\n",
		"6 flap 0 1-4 0.3\n9 unflap 0 1-4\n",
		"1 crash *\n5 revive *\n",
		"# comment only\n\n",
		"x crash 1\n",
		"1 explode 2\n",
		"1 flap 0 1 2\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return // invalid input is fine; it just must not panic
		}
		rendered := s.String()
		s2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() output rejected: %v\ninput: %q\nrendered: %q", err, text, rendered)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip mismatch for %q:\n%#v\nvs\n%#v", text, s, s2)
		}
		// Rendering is also a fixed point: String(Parse(String(s))) == String(s).
		if r2 := s2.String(); r2 != rendered {
			t.Fatalf("String not a fixed point:\n%q\nvs\n%q", rendered, r2)
		}
		if strings.Count(rendered, "\n") != len(s) {
			t.Fatalf("rendered %d lines for %d events", strings.Count(rendered, "\n"), len(s))
		}
	})
}
