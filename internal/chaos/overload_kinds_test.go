package chaos

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func (f *fakeTargets) SetBurst(factor float64) {
	f.log = append(f.log, "burst", fmt.Sprintf("%g", factor))
}
func (f *fakeTargets) SetTenantFlood(tenant int, factor float64) {
	f.log = append(f.log, "flood", fmt.Sprintf("%d:%g", tenant, factor))
}

func TestOverloadEventKinds(t *testing.T) {
	sched, err := Parse("2 burst 3\n4 tenant-flood 1 5\n8 unflood 1\n9 unburst\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(sched.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	f := &fakeTargets{}
	targets := targetsOf(f)
	targets.Overload = f
	New(sched, 1, targets, nil).AdvanceTo(10)
	want := []string{"burst", "3", "flood", "1:5", "flood", "1:1", "burst", "1"}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v, want %v", f.log, want)
	}

	// Absent target: events are silently skipped, never panic.
	New(sched, 1, targetsOf(&fakeTargets{}), nil).AdvanceTo(10)

	// The strict parser rejects malformed overload lines.
	for _, bad := range []string{
		"1 burst",            // missing factor
		"1 burst 0",          // non-positive factor
		"1 burst -2",         // negative factor
		"1 burst 2 3",        // trailing junk
		"1 unburst 2",        // unburst takes no args
		"1 tenant-flood 1",   // missing factor
		"1 tenant-flood * 2", // tenants are not wildcardable
		"1 tenant-flood -1 2",
		"1 unflood",
		"1 unflood *",
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("parser accepted %q", bad)
		}
	}
}

func TestOverloadPreset(t *testing.T) {
	s, err := Preset("overload", 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(s.String()); err != nil {
		t.Fatalf("overload preset round trip: %v", err)
	}
	// Every disturbance must be undone so the system ends healthy.
	undo := map[Kind]Kind{Burst: Unburst, TenantFlood: Unflood, Degrade: Undegrade}
	open := map[string]bool{}
	for _, e := range s {
		if _, ok := undo[e.Kind]; ok {
			open[string(e.Kind)+nodeString(e.Node)] = true
		}
		switch e.Kind {
		case Unburst:
			delete(open, string(Burst)+nodeString(e.Node))
		case Unflood:
			delete(open, string(TenantFlood)+nodeString(e.Node))
		case Undegrade:
			delete(open, string(Degrade)+nodeString(e.Node))
		}
	}
	if len(open) != 0 {
		t.Fatalf("overload preset leaves faults active: %v", open)
	}
	// Kept out of the compute sweep, like stream/ha.
	if strings.Contains(strings.Join(PresetNames(), " "), "overload") {
		t.Fatal("overload preset leaked into the compute preset sweep")
	}
}
