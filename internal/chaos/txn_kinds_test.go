package chaos

import (
	"reflect"
	"strings"
	"testing"
)

func (f *fakeTargets) OrphanNext(point string) error {
	f.log = append(f.log, "orphan", point)
	return nil
}
func (f *fakeTargets) Recover() error {
	f.log = append(f.log, "recover")
	return nil
}

func TestTxnEventKinds(t *testing.T) {
	sched, err := Parse("2 txn-crash before-commit\n4 txn-recover\n6 txn-crash split-copy\n8 txn-recover\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(sched.String()); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	f := &fakeTargets{}
	targets := targetsOf(f)
	targets.Txn = f
	New(sched, 1, targets, nil).AdvanceTo(10)
	want := []string{"orphan", "before-commit", "recover", "orphan", "split-copy", "recover"}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v, want %v", f.log, want)
	}

	// Absent target: events are silently skipped, never panic.
	New(sched, 1, targetsOf(&fakeTargets{}), nil).AdvanceTo(10)

	// The strict parser rejects malformed txn lines.
	for _, bad := range []string{
		"1 txn-crash",              // missing point
		"1 txn-crash commit extra", // trailing junk
		"1 txn-recover commit",     // takes no arguments
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestTxnPresetHiddenFromComputeSweeps(t *testing.T) {
	sched, err := Preset("txn", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 4 {
		t.Fatalf("txn preset has %d events, want 4", len(sched))
	}
	for _, name := range PresetNames() {
		if name == "txn" {
			t.Fatal("txn preset leaked into PresetNames")
		}
	}
	// Load resolves it like any named preset.
	if _, err := Load("txn", 8); err != nil {
		t.Fatalf("Load(txn): %v", err)
	}
	if !strings.Contains(sched.String(), "txn-crash before-commit") {
		t.Fatalf("preset text missing crash point:\n%s", sched.String())
	}
}
