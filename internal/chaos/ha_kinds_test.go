package chaos

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/topology"
)

// TestParseRejectsBadLines is the table-driven parser contract: every
// malformed line is rejected with an error naming its line number.
func TestParseRejectsBadLines(t *testing.T) {
	cases := []struct {
		name, text, wantLine, wantMsg string
	}{
		{"unknown kind", "1 crash 2\n3 explode 4", "line 2", "unknown event kind"},
		{"bad time", "x crash 1", "line 1", "virtual time"},
		{"missing kind", "7", "line 1", "missing event kind"},
		{"missing node", "1 crash", "line 1", "crash wants"},
		{"trailing junk", "1 crash 2 3", "line 1", "crash wants"},
		{"heal with args", "1 heal now", "line 1", "takes no arguments"},
		{"coord-crash with args", "1 coord-crash 2", "line 1", "takes no arguments"},
		{"nn-crash missing member", "1 nn-crash", "line 1", "nn-crash wants"},
		{"nn-crash wildcard", "1 nn-crash *", "line 1", "bad member"},
		{"nn-revive bad member", "1 nn-revive boss", "line 1", "bad member"},
		{"corrupt-block missing node", "2 corrupt-block", "line 1", "corrupt-block wants"},
		{"slow missing duration", "1 slow 1", "line 1", "slow wants"},
		{"slow bad duration", "1 slow 1 fast", "line 1", "bad duration"},
		{"drop out of range", "1 drop 1.5", "line 1", "bad probability"},
		{"flaky negative", "1 flaky 1 -0.5", "line 1", "bad value"},
		{"partition one group", "1 partition 0-3", "line 1", "at least two groups"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.text)
			if err == nil {
				t.Fatalf("Parse(%q) accepted", tc.text)
			}
			for _, want := range []string{tc.wantLine, tc.wantMsg} {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error %q does not mention %q", err, want)
				}
			}
		})
	}
}

// haTargets fakes the control-plane surfaces the new kinds drive.
type haTargets struct {
	log []string
}

func (f *haTargets) CrashMember(id int) error {
	f.log = append(f.log, "nn-crash", strconv.Itoa(id))
	return nil
}

func (f *haTargets) ReviveMember(id int) error {
	f.log = append(f.log, "nn-revive", strconv.Itoa(id))
	return nil
}

func (f *haTargets) CrashCoordinator() {
	f.log = append(f.log, "coord-crash")
}

func (f *haTargets) CorruptBlock(n topology.NodeID) error {
	f.log = append(f.log, "corrupt-block", nodeString(n))
	return nil
}

func TestControlPlaneEventKinds(t *testing.T) {
	text := "2 nn-crash leader\n3 corrupt-block 4\n5 coord-crash\n7 nn-revive leader\n8 nn-crash 1\n"
	sched, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trippable, including the "leader" token.
	s2, err := Parse(sched.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !reflect.DeepEqual(sched, s2) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", sched, s2)
	}
	f := &haTargets{}
	c := New(sched, 1, Targets{Namenode: f, Coordinator: f, Corrupt: f}, nil)
	c.AdvanceTo(10)
	want := []string{
		"nn-crash", "-1", // leader resolves to -1 for ha.Group
		"corrupt-block", "4",
		"coord-crash",
		"nn-revive", "-1", // revive "leader" = most recently crashed
		"nn-crash", "1",
	}
	if !reflect.DeepEqual(f.log, want) {
		t.Fatalf("log = %v, want %v", f.log, want)
	}
	// Absent targets skip the events without panicking.
	New(sched, 1, Targets{}, nil).AdvanceTo(10)
}

func TestHAPresets(t *testing.T) {
	for _, name := range []string{"nn-crash", "coord-crash", "ha"} {
		s, err := Preset(name, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(s) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
		if _, err := Parse(s.String()); err != nil {
			t.Fatalf("%s round trip: %v", name, err)
		}
		for _, compute := range PresetNames() {
			if compute == name {
				t.Fatalf("%s preset leaked into the compute preset sweep", name)
			}
		}
	}
	// The ha preset pairs its nn-crash with an nn-revive so the group is
	// back to full strength after the schedule.
	s, _ := Preset("ha", 8)
	var crashes, revives int
	for _, e := range s {
		switch e.Kind {
		case NNCrash:
			crashes++
		case NNRevive:
			revives++
		}
	}
	if crashes == 0 || crashes != revives {
		t.Fatalf("ha preset nn-crash/nn-revive unpaired: %d vs %d", crashes, revives)
	}
}
