package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/topology"
)

// Preset builds a named canned schedule sized for a cluster of n nodes.
// Presets are what the CLI -chaos flag and scripts/chaos.sh use; every
// preset leaves the cluster fully healthy once its last event fires, so a
// job that outlives the schedule can always finish. Known names: crash,
// partition, straggler, flaky, mixed — plus "stream", which targets the
// stream engine (stream-crash/stream-restore of one worker), and the
// control-plane presets "nn-crash" (kill + revive the namenode leader),
// "coord-crash" (kill the job coordinator) and "ha" (both),
// "overload" (traffic burst + tenant flood + per-node slowdown against
// the admission layer), "txn" (transaction-coordinator crashes
// bracketing the 2PC commit point, each followed by recovery), and
// "gray" (directed link cuts, link flapping, and a non-transitive
// partial partition — the asymmetric faults E-GRAY sweeps). Those are
// kept out of PresetNames so the compute-preset sweeps (EFT, chaos.sh)
// skip them; E-SFT/E-HA/E-OVL/E-TXN and the -stream-chaos/-ha flags use
// them.
func Preset(name string, n int) (Schedule, error) {
	if n < 2 {
		return nil, fmt.Errorf("chaos: preset needs >= 2 nodes, got %d", n)
	}
	victim := topology.NodeID(n / 2)
	last := topology.NodeID(n - 1)
	half := firstHalf(n)
	rest := secondHalf(n)
	switch name {
	case "crash":
		return Schedule{
			{At: 2, Kind: Crash, Node: victim},
			{At: 8, Kind: Revive, Node: victim},
		}, nil
	case "partition":
		return Schedule{
			{At: 2, Kind: Partition, Group: [][]topology.NodeID{half, rest}},
			{At: 6, Kind: Heal},
		}, nil
	case "straggler":
		return Schedule{
			{At: 1, Kind: Slow, Node: last, Delay: 25 * time.Millisecond},
			{At: 12, Kind: Unslow, Node: last},
		}, nil
	case "flaky":
		return Schedule{
			{At: 1, Kind: Flaky, Node: victim, Value: 0.8},
			{At: 10, Kind: Unflaky, Node: victim},
		}, nil
	case "stream":
		return Schedule{
			{At: 4, Kind: StreamCrash, Node: victim},
			{At: 10, Kind: StreamRestore, Node: victim},
		}, nil
	case "nn-crash":
		return Schedule{
			{At: 2, Kind: NNCrash, Node: LeaderNode},
			{At: 4, Kind: NNRevive, Node: LeaderNode},
		}, nil
	case "coord-crash":
		return Schedule{
			{At: 4, Kind: CoordCrash},
		}, nil
	case "ha":
		return Schedule{
			{At: 2, Kind: NNCrash, Node: LeaderNode},
			{At: 4, Kind: CoordCrash},
			{At: 5, Kind: NNRevive, Node: LeaderNode},
		}, nil
	case "overload":
		// Traffic burst + tenant flood + a per-node slowdown on the
		// serving path. The slow node is modelled with degrade (a fabric
		// cost multiplier) rather than the compute Slow kind, because the
		// KV quorum path is network-bound: every rtt through the victim
		// rises 4x, which is what a saturated server looks like to its
		// clients. Kept out of PresetNames like stream/ha so compute
		// sweeps skip it; E-OVL and the overload acceptance test use it.
		return Schedule{
			{At: 2, Kind: Burst, Value: 3},
			{At: 4, Kind: TenantFlood, Node: 0, Value: 5},
			{At: 5, Kind: Degrade, Node: victim, Value: 4},
			{At: 8, Kind: Undegrade, Node: victim},
			{At: 9, Kind: Unflood, Node: 0},
			{At: 10, Kind: Unburst},
		}, nil
	case "txn":
		// Coordinator crashes bracketing the 2PC commit point, each
		// followed by a recovery pass: the pre-commit orphan must resolve
		// as an abort, the post-commit one as a resumed apply. Kept out of
		// PresetNames like stream/ha/overload so compute sweeps skip it;
		// E-TXN and the txn acceptance test use it.
		return Schedule{
			{At: 2, Kind: TxnCrash, Point: "before-commit"},
			{At: 4, Kind: TxnRecover},
			{At: 6, Kind: TxnCrash, Point: "commit"},
			{At: 8, Kind: TxnRecover},
		}, nil
	case "gray":
		// Gray-failure sampler: a one-way cut toward the last node (it can
		// still send — the inbound-isolation shape), then a short flapping
		// window on the same links, then a non-transitive partial partition,
		// with a total heal at the end so the run finishes clean. Kept out
		// of PresetNames like stream/ha/overload/txn so compute sweeps skip
		// it; E-GRAY, the gray acceptance test and the -gray CLI flags use
		// it.
		others := make([]topology.NodeID, 0, n-1)
		for i := 0; i < n-1; i++ {
			others = append(others, topology.NodeID(i))
		}
		return Schedule{
			{At: 2, Kind: LinkCut, Group: [][]topology.NodeID{others, {last}}},
			{At: 8, Kind: LinkHeal, Group: [][]topology.NodeID{others, {last}}},
			{At: 10, Kind: Flap, Group: [][]topology.NodeID{others, {last}}, Value: 0.3},
			{At: 16, Kind: Unflap, Group: [][]topology.NodeID{others, {last}}},
			{At: 18, Kind: PartialPartition, Group: [][]topology.NodeID{{0}, {last}}},
			{At: 24, Kind: Heal},
		}, nil
	case "mixed":
		return Schedule{
			{At: 1, Kind: Slow, Node: last, Delay: 20 * time.Millisecond},
			{At: 2, Kind: Flaky, Node: victim, Value: 0.9},
			{At: 3, Kind: Crash, Node: topology.NodeID(1)},
			{At: 4, Kind: Partition, Group: [][]topology.NodeID{half, rest}},
			{At: 6, Kind: Heal},
			{At: 8, Kind: Revive, Node: topology.NodeID(1)},
			{At: 10, Kind: Unflaky, Node: victim},
			{At: 14, Kind: Unslow, Node: last},
		}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown preset %q (want %s)", name, strings.Join(PresetNames(), ", "))
	}
}

// PresetNames lists the available presets, sorted.
func PresetNames() []string {
	names := []string{"crash", "partition", "straggler", "flaky", "mixed"}
	sort.Strings(names)
	return names
}

// Load resolves spec as a preset name first, then as a schedule text.
// CLIs call it with either a preset name or the contents of a schedule
// file.
func Load(spec string, nodes int) (Schedule, error) {
	if !strings.ContainsAny(spec, " \n\t") {
		if s, err := Preset(spec, nodes); err == nil {
			return s, nil
		}
	}
	return Parse(spec)
}

func firstHalf(n int) []topology.NodeID {
	out := make([]topology.NodeID, 0, n/2)
	for i := 0; i < n/2; i++ {
		out = append(out, topology.NodeID(i))
	}
	return out
}

func secondHalf(n int) []topology.NodeID {
	out := make([]topology.NodeID, 0, n-n/2)
	for i := n / 2; i < n; i++ {
		out = append(out, topology.NodeID(i))
	}
	return out
}
