package shuffle

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/compress"
	"repro/internal/rng"
	"repro/internal/serde"
)

func writers(cfg Config) map[string]func(Config) (Writer, error) {
	return map[string]func(Config) (Writer, error){
		"hash": NewHashWriter,
		"sort": NewSortWriter,
	}
}

func TestRoundTripBothWriters(t *testing.T) {
	for name, mk := range writers(Config{}) {
		t.Run(name, func(t *testing.T) {
			w, err := mk(Config{Partitions: 4})
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]string{}
			for i := 0; i < 1000; i++ {
				k := fmt.Sprintf("key-%04d", i)
				v := fmt.Sprintf("val-%d", i)
				want[k] = v
				if err := w.Write([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
			}
			blocks, stats, err := w.Close()
			if err != nil {
				t.Fatal(err)
			}
			if stats.RecordsIn != 1000 || stats.RecordsOut != 1000 {
				t.Fatalf("stats = %+v", stats)
			}
			got := map[string]string{}
			seenParts := map[int]bool{}
			for _, b := range blocks {
				seenParts[b.Partition] = true
				recs, err := ReadBlocks(compress.None{}, []Block{b})
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range recs {
					got[string(r.Key)] = string(r.Value)
					// Record must belong to its block's partition.
					if p := Partition(r.Key, 4); p != b.Partition {
						t.Fatalf("key %q in partition %d, belongs in %d", r.Key, b.Partition, p)
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("got %d keys, want %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("key %q = %q, want %q", k, got[k], v)
				}
			}
			if len(seenParts) < 2 {
				t.Fatal("records did not spread across partitions")
			}
		})
	}
}

func TestSortWriterProducesSortedBlocks(t *testing.T) {
	w, err := NewSortWriter(Config{Partitions: 3, SpillThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(1)
	for i := 0; i < 500; i++ {
		k := make([]byte, 8)
		gen.Bytes(k)
		if err := w.Write(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	blocks, stats, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spills == 0 {
		t.Fatal("tiny spill threshold produced no spills")
	}
	for _, b := range blocks {
		if !b.Sorted {
			t.Fatal("sort writer produced unsorted block")
		}
		recs, err := ReadBlocks(compress.None{}, []Block{b})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(recs); i++ {
			if bytes.Compare(recs[i-1].Key, recs[i].Key) > 0 {
				t.Fatalf("partition %d not sorted at %d", b.Partition, i)
			}
		}
	}
}

func TestMergedReadPreservesGlobalOrder(t *testing.T) {
	// Two sorted map outputs for the same partition merge into one sorted
	// stream.
	var all []Block
	for m := 0; m < 3; m++ {
		w, _ := NewSortWriter(Config{Partitions: 1})
		for i := 0; i < 100; i++ {
			k := []byte(fmt.Sprintf("%03d-%d", i*3+m, m))
			_ = w.Write(k, []byte("v"))
		}
		blocks, _, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, blocks...)
	}
	recs, err := ReadBlocks(compress.None{}, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 300 {
		t.Fatalf("merged %d records, want 300", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if bytes.Compare(recs[i-1].Key, recs[i].Key) > 0 {
			t.Fatalf("merge broke order at %d: %q > %q", i, recs[i-1].Key, recs[i].Key)
		}
	}
}

func TestCombinerReducesRecords(t *testing.T) {
	add := func(a, b []byte) []byte {
		x, _ := serde.DecodeInt64(a)
		y, _ := serde.DecodeInt64(b)
		return serde.EncodeInt64(x + y)
	}
	for name, mk := range writers(Config{}) {
		t.Run(name, func(t *testing.T) {
			w, err := mk(Config{Partitions: 2, Combiner: add})
			if err != nil {
				t.Fatal(err)
			}
			// 100 distinct words, 50 occurrences each.
			for rep := 0; rep < 50; rep++ {
				for i := 0; i < 100; i++ {
					_ = w.Write([]byte(fmt.Sprintf("w%02d", i)), serde.EncodeInt64(1))
				}
			}
			blocks, stats, err := w.Close()
			if err != nil {
				t.Fatal(err)
			}
			if stats.RecordsIn != 5000 {
				t.Fatalf("in = %d", stats.RecordsIn)
			}
			if stats.RecordsOut != 100 {
				t.Fatalf("combiner emitted %d records, want 100", stats.RecordsOut)
			}
			total := int64(0)
			for _, b := range blocks {
				recs, _ := ReadBlocks(compress.None{}, []Block{b})
				for _, r := range recs {
					v, _ := serde.DecodeInt64(r.Value)
					if v != 50 {
						t.Fatalf("key %q count %d, want 50", r.Key, v)
					}
					total += v
				}
			}
			if total != 5000 {
				t.Fatalf("total count %d", total)
			}
		})
	}
}

func TestCompressionShrinksWireBytes(t *testing.T) {
	run := func(codec compress.Codec) Stats {
		w, _ := NewHashWriter(Config{Partitions: 2, Codec: codec})
		for i := 0; i < 2000; i++ {
			_ = w.Write([]byte(fmt.Sprintf("key-%d", i%20)), []byte("the same repetitive value payload"))
		}
		_, stats, _ := w.Close()
		return stats
	}
	plain := run(compress.None{})
	lz := run(compress.LZ{})
	if lz.WireBytes >= plain.WireBytes/2 {
		t.Fatalf("lz wire bytes %d vs plain %d: compression ineffective", lz.WireBytes, plain.WireBytes)
	}
	if lz.RawBytes != plain.RawBytes {
		t.Fatalf("raw bytes differ: %d vs %d", lz.RawBytes, plain.RawBytes)
	}
}

func TestCompressedRoundTrip(t *testing.T) {
	w, _ := NewSortWriter(Config{Partitions: 3, Codec: compress.LZ{}})
	for i := 0; i < 500; i++ {
		_ = w.Write([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	blocks, _, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range blocks {
		recs, err := ReadBlocks(compress.LZ{}, []Block{b})
		if err != nil {
			t.Fatal(err)
		}
		n += len(recs)
	}
	if n != 500 {
		t.Fatalf("read back %d records", n)
	}
}

func TestRangePartitioner(t *testing.T) {
	rp := NewRangePartitioner([][]byte{[]byte("g"), []byte("p")})
	if rp.Partitions() != 3 {
		t.Fatalf("partitions = %d", rp.Partitions())
	}
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "m": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := rp.Partition([]byte(k)); got != want {
			t.Fatalf("Partition(%q) = %d, want %d", k, got, want)
		}
	}
}

func TestRangePartitionerPreservesOrderAcrossPartitions(t *testing.T) {
	f := func(a, b []byte) bool {
		rp := NewRangePartitioner([][]byte{{0x40}, {0x80}, {0xc0}})
		pa, pb := rp.Partition(a), rp.Partition(b)
		if bytes.Compare(a, b) < 0 {
			return pa <= pb
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	for name, mk := range writers(Config{}) {
		w, _ := mk(Config{Partitions: 1})
		_, _, _ = w.Close()
		if err := w.Write([]byte("k"), []byte("v")); err != ErrClosed {
			t.Fatalf("%s: err = %v", name, err)
		}
		if _, _, err := w.Close(); err != ErrClosed {
			t.Fatalf("%s: double close err = %v", name, err)
		}
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := NewHashWriter(Config{}); err == nil {
		t.Fatal("zero partitions accepted")
	}
	if _, err := NewSortWriter(Config{Partitions: -1}); err == nil {
		t.Fatal("negative partitions accepted")
	}
}

func TestHashVsSortEquivalence(t *testing.T) {
	// Property: both writers deliver exactly the same multiset of records.
	f := func(seed uint64) bool {
		gen := rng.New(seed)
		n := 200 + gen.Intn(300)
		type kv struct{ k, v string }
		var input []kv
		for i := 0; i < n; i++ {
			input = append(input, kv{
				k: fmt.Sprintf("k%d", gen.Intn(50)),
				v: fmt.Sprintf("v%d", gen.Intn(1000)),
			})
		}
		collect := func(mk func(Config) (Writer, error)) []string {
			w, _ := mk(Config{Partitions: 4})
			for _, r := range input {
				_ = w.Write([]byte(r.k), []byte(r.v))
			}
			blocks, _, _ := w.Close()
			var out []string
			for _, b := range blocks {
				recs, _ := ReadBlocks(compress.None{}, []Block{b})
				for _, r := range recs {
					out = append(out, string(r.Key)+"="+string(r.Value))
				}
			}
			sort.Strings(out)
			return out
		}
		h := collect(NewHashWriter)
		s := collect(NewSortWriter)
		if len(h) != len(s) {
			return false
		}
		for i := range h {
			if h[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func benchWrite(b *testing.B, mk func(Config) (Writer, error), codec compress.Codec) {
	gen := rng.New(1)
	keys := make([][]byte, 1000)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%06d", gen.Intn(100000)))
	}
	val := bytes.Repeat([]byte("v"), 90)
	b.SetBytes(100 * 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := mk(Config{Partitions: 16, Codec: codec})
		for _, k := range keys {
			_ = w.Write(k, val)
		}
		_, _, _ = w.Close()
	}
}

func BenchmarkHashWriter(b *testing.B)      { benchWrite(b, NewHashWriter, compress.None{}) }
func BenchmarkSortWriter(b *testing.B)      { benchWrite(b, NewSortWriter, compress.None{}) }
func BenchmarkHashWriterLZ(b *testing.B)    { benchWrite(b, NewHashWriter, compress.LZ{}) }
func BenchmarkSortWriterFlate(b *testing.B) { benchWrite(b, NewSortWriter, compress.Flate{}) }
