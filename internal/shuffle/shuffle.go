// Package shuffle implements the all-to-all data exchange at the heart of
// the dataflow engine: map tasks partition their output records by key into
// per-reducer blocks, optionally combining, spilling and sorting on the
// way; reduce tasks fetch and merge those blocks. Two strategies are
// provided behind one interface — hash shuffle (per-partition append
// buffers) and sort shuffle (one buffer sorted by (partition, key), merged
// on read) — which experiment E2 ablates, along with the compression codec.
package shuffle

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/compress"
	"repro/internal/serde"
)

// ErrClosed is returned when writing to a closed writer.
var ErrClosed = errors.New("shuffle: writer closed")

// Partition maps a key to one of n reduce partitions (hash partitioning).
func Partition(key []byte, n int) int {
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int(h.Sum32() % uint32(n))
}

// RangePartitioner assigns keys to partitions by comparing against sorted
// split points — the TeraSort partitioner. Keys below splits[0] go to
// partition 0, and so on.
type RangePartitioner struct {
	splits [][]byte
}

// NewRangePartitioner builds a partitioner with the given ascending split
// points, producing len(splits)+1 partitions.
func NewRangePartitioner(splits [][]byte) *RangePartitioner {
	cp := make([][]byte, len(splits))
	for i, s := range splits {
		cp[i] = append([]byte(nil), s...)
	}
	return &RangePartitioner{splits: cp}
}

// Partitions returns the partition count.
func (r *RangePartitioner) Partitions() int { return len(r.splits) + 1 }

// Partition returns the partition for key.
func (r *RangePartitioner) Partition(key []byte) int {
	return sort.Search(len(r.splits), func(i int) bool {
		return bytes.Compare(r.splits[i], key) > 0
	})
}

// Block is one map task's output for one reduce partition.
type Block struct {
	Partition int
	Data      []byte // compressed record stream
	Records   int
	RawBytes  int64 // pre-compression size
	Sorted    bool  // records within the block are ordered by key
}

// Stats accumulates writer-side counters.
type Stats struct {
	RecordsIn  int
	RecordsOut int // differs from RecordsIn when a combiner runs
	RawBytes   int64
	WireBytes  int64
	Spills     int
	// PartitionRecords and PartitionBytes hold the post-combine,
	// pre-compression distribution across reduce partitions (length
	// Config.Partitions, zero entries for empty partitions). They feed the
	// engine's shuffle-skew analysis.
	PartitionRecords []int
	PartitionBytes   []int64
}

// Writer receives a map task's records and produces per-partition blocks.
type Writer interface {
	// Write adds one record.
	Write(key, value []byte) error
	// Close seals the writer and returns one block per non-empty
	// partition plus statistics.
	Close() ([]Block, Stats, error)
}

// Config configures a writer.
type Config struct {
	// Partitions is the reduce-side partition count; required.
	Partitions int
	// Partitioner overrides hash partitioning (e.g. range partitioning
	// for sorts). Nil means Partition().
	Partitioner func(key []byte) int
	// Codec compresses blocks. Nil means compress.None.
	Codec compress.Codec
	// SpillThreshold is the buffered-bytes level that triggers a spill
	// (simulated: spilled runs stay in memory but are segmented and, for
	// the sort writer, pre-sorted like on-disk runs). Default 4 MiB.
	SpillThreshold int64
	// Combiner, if non-nil, merges values with equal keys map-side.
	Combiner func(a, b []byte) []byte
}

func (c *Config) fill() error {
	if c.Partitions <= 0 {
		return fmt.Errorf("shuffle: Partitions must be positive, got %d", c.Partitions)
	}
	if c.Codec == nil {
		c.Codec = compress.None{}
	}
	if c.SpillThreshold <= 0 {
		c.SpillThreshold = 4 << 20
	}
	if c.Partitioner == nil {
		n := c.Partitions
		c.Partitioner = func(key []byte) int { return Partition(key, n) }
	}
	return nil
}

// record is an owned key/value pair.
type record struct {
	key, value []byte
}

// ---------------------------------------------------------------------------
// Hash shuffle

// hashWriter appends records to one buffer per partition, spilling segments
// when memory crosses the threshold. Output blocks are unsorted.
type hashWriter struct {
	cfg      Config
	bufs     []bytes.Buffer
	writers  []*serde.Writer
	combine  []map[string][]byte // per-partition combiner state
	buffered int64
	segments [][][]byte // partition -> spilled segments
	stats    Stats
	closed   bool
}

// NewHashWriter returns a hash-shuffle writer.
func NewHashWriter(cfg Config) (Writer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	w := &hashWriter{
		cfg:      cfg,
		bufs:     make([]bytes.Buffer, cfg.Partitions),
		writers:  make([]*serde.Writer, cfg.Partitions),
		segments: make([][][]byte, cfg.Partitions),
	}
	for i := range w.bufs {
		w.writers[i] = serde.NewWriter(&w.bufs[i])
	}
	if cfg.Combiner != nil {
		w.combine = make([]map[string][]byte, cfg.Partitions)
		for i := range w.combine {
			w.combine[i] = map[string][]byte{}
		}
	}
	return w, nil
}

func (w *hashWriter) Write(key, value []byte) error {
	if w.closed {
		return ErrClosed
	}
	w.stats.RecordsIn++
	p := w.cfg.Partitioner(key)
	if w.combine != nil {
		m := w.combine[p]
		if prev, ok := m[string(key)]; ok {
			m[string(key)] = w.cfg.Combiner(prev, value)
		} else {
			m[string(key)] = append([]byte(nil), value...)
			w.buffered += int64(len(key) + len(value))
		}
	} else {
		if err := w.writers[p].Write(key, value); err != nil {
			return err
		}
		w.buffered += int64(len(key) + len(value))
	}
	if w.buffered >= w.cfg.SpillThreshold {
		w.spill()
	}
	return nil
}

// spill moves buffered data into per-partition segments.
func (w *hashWriter) spill() {
	w.flushCombiner()
	for p := range w.bufs {
		if w.bufs[p].Len() == 0 {
			continue
		}
		seg := append([]byte(nil), w.bufs[p].Bytes()...)
		w.segments[p] = append(w.segments[p], seg)
		w.bufs[p].Reset()
		w.writers[p] = serde.NewWriter(&w.bufs[p])
	}
	w.buffered = 0
	w.stats.Spills++
}

// flushCombiner drains combiner maps into the per-partition buffers.
func (w *hashWriter) flushCombiner() {
	if w.combine == nil {
		return
	}
	for p, m := range w.combine {
		if len(m) == 0 {
			continue
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys) // determinism
		for _, k := range keys {
			_ = w.writers[p].Write([]byte(k), m[k])
			w.stats.RecordsOut++
		}
		w.combine[p] = map[string][]byte{}
	}
}

func (w *hashWriter) Close() ([]Block, Stats, error) {
	if w.closed {
		return nil, w.stats, ErrClosed
	}
	w.closed = true
	w.flushCombiner()
	w.stats.PartitionRecords = make([]int, w.cfg.Partitions)
	w.stats.PartitionBytes = make([]int64, w.cfg.Partitions)
	var blocks []Block
	for p := range w.bufs {
		var raw []byte
		for _, seg := range w.segments[p] {
			raw = append(raw, seg...)
		}
		raw = append(raw, w.bufs[p].Bytes()...)
		if len(raw) == 0 {
			continue
		}
		n := countRecords(raw)
		if w.combine == nil {
			w.stats.RecordsOut += n
		}
		data := w.cfg.Codec.Compress(raw)
		w.stats.RawBytes += int64(len(raw))
		w.stats.WireBytes += int64(len(data))
		w.stats.PartitionRecords[p] = n
		w.stats.PartitionBytes[p] = int64(len(raw))
		blocks = append(blocks, Block{Partition: p, Data: data, Records: n, RawBytes: int64(len(raw))})
	}
	return blocks, w.stats, nil
}

func countRecords(stream []byte) int {
	r := serde.NewReader(bytes.NewReader(stream))
	n := 0
	for {
		if _, err := r.Read(); err != nil {
			return n
		}
		n++
	}
}

// ---------------------------------------------------------------------------
// Sort shuffle

// sortWriter buffers whole records, sorting each spill run by (partition,
// key) and merging runs at close — the Spark "sort shuffle" design. Output
// blocks are key-sorted, which lets downstream merges stream.
type sortWriter struct {
	cfg      Config
	buf      []record
	buffered int64
	runs     [][]record // each run sorted by (partition, key)
	combine  map[string][]byte
	stats    Stats
	closed   bool
}

// NewSortWriter returns a sort-shuffle writer.
func NewSortWriter(cfg Config) (Writer, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	w := &sortWriter{cfg: cfg}
	if cfg.Combiner != nil {
		w.combine = map[string][]byte{}
	}
	return w, nil
}

func (w *sortWriter) Write(key, value []byte) error {
	if w.closed {
		return ErrClosed
	}
	w.stats.RecordsIn++
	if w.combine != nil {
		if prev, ok := w.combine[string(key)]; ok {
			w.combine[string(key)] = w.cfg.Combiner(prev, value)
		} else {
			w.combine[string(key)] = append([]byte(nil), value...)
			w.buffered += int64(len(key) + len(value))
		}
	} else {
		w.buf = append(w.buf, record{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
		})
		w.buffered += int64(len(key) + len(value))
	}
	if w.buffered >= w.cfg.SpillThreshold {
		w.spill()
	}
	return nil
}

func (w *sortWriter) drainCombiner() {
	if w.combine == nil {
		return
	}
	for k, v := range w.combine {
		w.buf = append(w.buf, record{key: []byte(k), value: v})
	}
	w.combine = map[string][]byte{}
}

func (w *sortWriter) sortRun(run []record) {
	part := w.cfg.Partitioner
	sort.SliceStable(run, func(i, j int) bool {
		pi, pj := part(run[i].key), part(run[j].key)
		if pi != pj {
			return pi < pj
		}
		return bytes.Compare(run[i].key, run[j].key) < 0
	})
}

func (w *sortWriter) spill() {
	w.drainCombiner()
	if len(w.buf) == 0 {
		return
	}
	w.sortRun(w.buf)
	w.runs = append(w.runs, w.buf)
	w.buf = nil
	w.buffered = 0
	w.stats.Spills++
}

func (w *sortWriter) Close() ([]Block, Stats, error) {
	if w.closed {
		return nil, w.stats, ErrClosed
	}
	w.closed = true
	w.drainCombiner()
	if len(w.buf) > 0 {
		w.sortRun(w.buf)
		w.runs = append(w.runs, w.buf)
		w.buf = nil
	}
	// K-way merge of sorted runs, split into per-partition streams.
	bufs := make([]bytes.Buffer, w.cfg.Partitions)
	writers := make([]*serde.Writer, w.cfg.Partitions)
	counts := make([]int, w.cfg.Partitions)
	for i := range bufs {
		writers[i] = serde.NewWriter(&bufs[i])
	}
	idx := make([]int, len(w.runs))
	part := w.cfg.Partitioner
	for {
		best := -1
		bestPart := 0
		var bestKey []byte
		for r := range w.runs {
			if idx[r] >= len(w.runs[r]) {
				continue
			}
			rec := w.runs[r][idx[r]]
			p := part(rec.key)
			if best < 0 || p < bestPart || (p == bestPart && bytes.Compare(rec.key, bestKey) < 0) {
				best = r
				bestPart = p
				bestKey = rec.key
			}
		}
		if best < 0 {
			break
		}
		rec := w.runs[best][idx[best]]
		idx[best]++
		if err := writers[bestPart].Write(rec.key, rec.value); err != nil {
			return nil, w.stats, err
		}
		counts[bestPart]++
	}
	w.stats.PartitionRecords = make([]int, w.cfg.Partitions)
	w.stats.PartitionBytes = make([]int64, w.cfg.Partitions)
	var blocks []Block
	for p := range bufs {
		if bufs[p].Len() == 0 {
			continue
		}
		raw := bufs[p].Bytes()
		data := w.cfg.Codec.Compress(raw)
		w.stats.RawBytes += int64(len(raw))
		w.stats.WireBytes += int64(len(data))
		w.stats.RecordsOut += counts[p]
		w.stats.PartitionRecords[p] = counts[p]
		w.stats.PartitionBytes[p] = int64(len(raw))
		blocks = append(blocks, Block{
			Partition: p, Data: data, Records: counts[p],
			RawBytes: int64(len(raw)), Sorted: true,
		})
	}
	w.runs = nil
	return blocks, w.stats, nil
}

// ---------------------------------------------------------------------------
// Reader

// Record is a decoded shuffle record with owned buffers.
type Record struct {
	Key, Value []byte
}

// ReadBlocks decodes the records of the given blocks (all for the same
// reduce partition). When every block is sorted, the result is a streaming
// k-way merge preserving global key order; otherwise records appear in
// block order.
func ReadBlocks(codec compress.Codec, blocks []Block) ([]Record, error) {
	if codec == nil {
		codec = compress.None{}
	}
	decoded := make([][]Record, len(blocks))
	allSorted := true
	total := 0
	for i, b := range blocks {
		raw, err := codec.Decompress(b.Data)
		if err != nil {
			return nil, fmt.Errorf("shuffle: block %d: %w", i, err)
		}
		r := serde.NewReader(bytes.NewReader(raw))
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, fmt.Errorf("shuffle: block %d: %w", i, err)
			}
			decoded[i] = append(decoded[i], Record{
				Key:   append([]byte(nil), rec.Key...),
				Value: append([]byte(nil), rec.Value...),
			})
		}
		total += len(decoded[i])
		if !b.Sorted {
			allSorted = false
		}
	}
	out := make([]Record, 0, total)
	if !allSorted || len(blocks) <= 1 {
		for _, recs := range decoded {
			out = append(out, recs...)
		}
		return out, nil
	}
	// Streaming merge of sorted blocks.
	idx := make([]int, len(decoded))
	for {
		best := -1
		for i := range decoded {
			if idx[i] >= len(decoded[i]) {
				continue
			}
			if best < 0 || bytes.Compare(decoded[i][idx[i]].Key, decoded[best][idx[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, decoded[best][idx[best]])
		idx[best]++
	}
	return out, nil
}
