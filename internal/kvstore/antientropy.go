package kvstore

import (
	"sort"

	"repro/internal/topology"
)

// AntiEntropy is the background repair pass that complements read repair:
// for every key on any replica, push the newest version to the other
// nodes in the key's current preference list, and drop copies from nodes
// no longer responsible (e.g. sloppy-quorum leftovers after recovery). It
// returns the number of replica copies written and removed.
//
// Real Dynamo-style stores drive this with Merkle-tree diffs per key
// range; with in-process replicas a full sweep is the honest equivalent
// and keeps the invariant the tests check: after AntiEntropy, every key
// is present and newest on exactly its N preference nodes.
func (s *Store) AntiEntropy() (written, removed int) {
	// Gather the newest version of every key across all replicas.
	newest := map[string]versioned{}
	for _, rp := range s.replica {
		rp.mu.RLock()
		for k, v := range rp.data {
			if cur, ok := newest[k]; !ok || v.version > cur.version {
				newest[k] = v
			}
		}
		rp.mu.RUnlock()
	}
	keys := make([]string, 0, len(newest))
	for k := range newest {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic repair order

	for _, k := range keys {
		v := newest[k]
		prefs := s.ring.preferenceList(k, s.cfg.N)
		want := map[topology.NodeID]bool{}
		for _, n := range prefs {
			want[n] = true
		}
		for id, rp := range s.replica {
			node := topology.NodeID(id)
			rp.mu.Lock()
			cur, has := rp.data[k]
			switch {
			case want[node] && (!has || cur.version < v.version):
				if s.isAliveLocked(node) {
					rp.data[k] = v
					written++
				}
			case !want[node] && has:
				delete(rp.data, k)
				removed++
			}
			rp.mu.Unlock()
		}
	}
	if written > 0 {
		s.Reg.Counter("anti_entropy_writes").Add(int64(written))
	}
	if removed > 0 {
		s.Reg.Counter("anti_entropy_removals").Add(int64(removed))
	}
	return written, removed
}

// isAliveLocked is isAlive without taking s.mu twice in the sweep's inner
// loop; the alive flags only flip via Fail/RecoverNode.
func (s *Store) isAliveLocked(n topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[n]
}
