package kvstore

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

func antiEntropyStore(t *testing.T) *Store {
	t.Helper()
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 3, R: 1, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAntiEntropyRestoresFullReplication(t *testing.T) {
	s := antiEntropyStore(t)
	// Write while one preference-list node is down: the key lands on a
	// sloppy successor instead.
	prefs := s.ring.preferenceList("k1", 3)
	victim := prefs[1]
	_ = s.FailNode(victim)
	if _, err := s.Put(0, "k1", []byte("v")); err != nil {
		t.Fatal(err)
	}
	_ = s.RecoverNode(victim) // hints deliver the value back
	// Drop the sloppy copy and any stragglers via anti-entropy.
	s.AntiEntropy()

	// Now the key must live on exactly its 3 preference nodes.
	holders := 0
	for id, rp := range s.replica {
		if _, ok := rp.get("k1"); ok {
			holders++
			found := false
			for _, p := range prefs {
				if topology.NodeID(id) == p {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d holds k1 but is not in preference list %v", id, prefs)
			}
		}
	}
	if holders != 3 {
		t.Fatalf("k1 on %d nodes after anti-entropy, want 3", holders)
	}
}

func TestAntiEntropyPushesNewestVersion(t *testing.T) {
	s := antiEntropyStore(t)
	if _, err := s.Put(0, "k2", []byte("new")); err != nil {
		t.Fatal(err)
	}
	prefs := s.ring.preferenceList("k2", 3)
	// Manually roll one replica back.
	stale := prefs[2]
	s.replica[stale].mu.Lock()
	s.replica[stale].data["k2"] = versioned{value: []byte("old"), version: 0}
	s.replica[stale].mu.Unlock()

	written, _ := s.AntiEntropy()
	if written == 0 {
		t.Fatal("anti-entropy repaired nothing")
	}
	got, ok := s.replica[stale].get("k2")
	if !ok || string(got.value) != "new" {
		t.Fatalf("stale replica holds %q after anti-entropy", got.value)
	}
}

func TestAntiEntropyIdempotent(t *testing.T) {
	s := antiEntropyStore(t)
	for i := 0; i < 50; i++ {
		if _, err := s.Put(topology.NodeID(i%8), fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s.AntiEntropy()
	w, r := s.AntiEntropy()
	if w != 0 || r != 0 {
		t.Fatalf("second anti-entropy pass did work: wrote %d removed %d", w, r)
	}
}

func TestAntiEntropySkipsDeadTargets(t *testing.T) {
	s := antiEntropyStore(t)
	if _, err := s.Put(0, "k3", []byte("v")); err != nil {
		t.Fatal(err)
	}
	prefs := s.ring.preferenceList("k3", 3)
	victim := prefs[0]
	_ = s.FailNode(victim)
	// Remove the dead node's copy to create a gap it cannot fill.
	s.replica[victim].mu.Lock()
	delete(s.replica[victim].data, "k3")
	s.replica[victim].mu.Unlock()
	s.AntiEntropy()
	if _, ok := s.replica[victim].get("k3"); ok {
		t.Fatal("anti-entropy wrote to a dead node")
	}
	// After recovery, another pass completes the repair.
	_ = s.RecoverNode(victim)
	s.AntiEntropy()
	if _, ok := s.replica[victim].get("k3"); !ok {
		t.Fatal("anti-entropy did not repair recovered node")
	}
}
