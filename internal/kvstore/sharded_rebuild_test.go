package kvstore

// Member crash/rebuild and error-path coverage for the sharded plane:
// a revived group member must reconstruct every machine type (range
// cells + locks, directory, transaction records) from its compaction
// snapshot plus the committed log tail, and the client surface must
// fail typed — not hang — when orphaned locks or expired budgets block
// an operation.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/ha"
)

// TestShardedMemberRebuildFromSnapshot drives enough traffic through a
// single group to force log compaction (CompactEvery proposals), with
// an orphaned transaction's locks and record parked in the replicated
// state, then crashes a follower, revives it (snapshot Restore + log
// catch-up) and fails the leader over — possibly onto the rebuilt
// member. Every write, both tombstones and the orphan resolution must
// survive the rebuild.
func TestShardedMemberRebuildFromSnapshot(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 9, Groups: 1, InitialSplits: []string{"k50"}})

	// Park an orphaned cross-range transaction: record pending, locks
	// held on k10 and k60 — state the snapshot must carry.
	if err := s.OrphanNext("before-commit"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Txn(bg(), nil, map[string][]byte{
		"k10": []byte("orphan"), "k60": []byte("orphan"),
	})
	if !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("orphaned txn = %v, want ErrTxnOrphaned", err)
	}

	// Well past the default CompactEvery (128) so every member compacts
	// and records a state-machine snapshot of dir + ranges + txn table.
	for i := 0; i < 70; i++ {
		mustPut(t, s, fmt.Sprintf("a%02d", i), fmt.Sprintf("lo%d", i))
		mustPut(t, s, fmt.Sprintf("z%02d", i), fmt.Sprintf("hi%d", i))
	}
	if err := s.Delete(bg(), "a01"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(bg(), "z01"); err != nil {
		t.Fatal(err)
	}

	leader := s.GroupLeader(0)
	victim := (leader + 1) % 3
	if err := s.CrashGroupMember(0, victim); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ { // traffic the rebuilt member must catch up on
		mustPut(t, s, fmt.Sprintf("c%02d", i), fmt.Sprintf("mid%d", i))
	}
	if err := s.ReviveGroupMember(0, victim); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashGroupMember(0, -1); err != nil { // failover off the old leader
		t.Fatal(err)
	}

	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if n, err := s.LockCount(); err != nil || n != 0 {
		t.Fatalf("locks after rebuild+recovery = (%d, %v), want 0", n, err)
	}
	if n, err := s.PendingTxnRecords(); err != nil || n != 0 {
		t.Fatalf("txn records after rebuild+recovery = (%d, %v), want 0", n, err)
	}
	for _, key := range []string{"k10", "k60", "a01", "z01"} {
		if _, found := mustGet(t, s, key); found {
			t.Fatalf("%s present after rebuild; aborted/deleted state leaked", key)
		}
	}
	for i := 0; i < 10; i++ {
		if v, _ := mustGet(t, s, fmt.Sprintf("c%02d", i)); v != fmt.Sprintf("mid%d", i) {
			t.Fatalf("c%02d = %q after rebuild, want mid%d", i, v, i)
		}
	}
	if v, _ := mustGet(t, s, "a42"); v != "lo42" {
		t.Fatalf("a42 = %q after rebuild, want lo42", v)
	}
	if v, _ := mustGet(t, s, "z42"); v != "hi42" {
		t.Fatalf("z42 = %q after rebuild, want hi42", v)
	}
	rs := s.Ranges()
	if len(rs) != 2 || rs[1].Start != "k50" {
		t.Fatalf("Ranges after rebuild = %+v, want 2 ranges split at k50", rs)
	}
}

// TestShardedOpsAgainstOrphanedLocks pins the client-surface contract
// when a crashed coordinator's locks are still parked: Put/Get/Delete
// exhaust their bounded retries with ErrKeyLocked (no hang), a dirty
// read bypasses the lock, and recovery unblocks everything.
func TestShardedOpsAgainstOrphanedLocks(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 3, MaxOpAttempts: 3, InitialSplits: []string{"k50"}})
	mustPut(t, s, "k10", "old")
	if err := s.OrphanNext("before-commit"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Txn(bg(), nil, map[string][]byte{
		"k10": []byte("stuck"), "k60": []byte("stuck"),
	}); !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("orphaned txn = %v, want ErrTxnOrphaned", err)
	}

	if err := s.Put(bg(), "k10", []byte("new")); !errors.Is(err, ErrKeyLocked) {
		t.Fatalf("Put on locked key = %v, want ErrKeyLocked", err)
	}
	if err := s.Delete(bg(), "k10"); !errors.Is(err, ErrKeyLocked) {
		t.Fatalf("Delete on locked key = %v, want ErrKeyLocked", err)
	}
	if _, _, err := s.Get(bg(), "k10"); !errors.Is(err, ErrKeyLocked) {
		t.Fatalf("Get on locked key = %v, want ErrKeyLocked", err)
	}
	// A dirty read is exactly the read that ignores the lock — it sees
	// the pre-transaction value, which is why the checker must reject
	// histories produced this way.
	s.SetDirtyReads(true)
	if v, found := mustGet(t, s, "k10"); !found || v != "old" {
		t.Fatalf("dirty Get = (%q, %v), want pre-txn \"old\"", v, found)
	}
	s.SetDirtyReads(false)

	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(bg(), "k10", []byte("new")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if err := s.Delete(bg(), "k10"); err != nil {
		t.Fatalf("Delete after recovery: %v", err)
	}
	if _, found := mustGet(t, s, "k10"); found {
		t.Fatal("k10 present after delete")
	}
}

// TestShardedBudgetExhaustionMidOp covers the deadline charge paths: a
// budget too small for even one proposal fails each op with the shared
// deadline sentinel, both up front (already spent) and mid-operation.
func TestShardedBudgetExhaustionMidOp(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 4})
	mustPut(t, s, "k1", "v1")

	ctx := admission.WithBudget(context.Background(), time.Nanosecond)
	if err := s.Put(ctx, "k2", []byte("v")); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Put with 1ns budget = %v, want ErrDeadlineExceeded", err)
	}
	if _, _, err := s.Get(ctx, "k1"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Get with 1ns budget = %v, want ErrDeadlineExceeded", err)
	}
	if err := s.Delete(ctx, "k1"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Delete with 1ns budget = %v, want ErrDeadlineExceeded", err)
	}
	if _, err := s.Txn(ctx, []string{"k1"}, nil); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Txn with 1ns budget = %v, want ErrDeadlineExceeded", err)
	}
	// The sentinel unifies with the admission layer's. (The write may
	// still have applied — the budget is charged after the proposal
	// commits, and the contract is honest about that ambiguity.)
	if err := s.Put(ctx, "k2", []byte("v")); !admission.IsDeadline(err) {
		t.Fatalf("Put deadline error %v does not satisfy admission.IsDeadline", err)
	}
}

// TestRecoverFinishesCrashedAbort covers the recovery-of-recovery
// branch: a transaction record left in the *aborted* state (a prior
// recovery pass crashed after replicating the abort decision but
// before retiring the record) must be driven to done on the next pass.
func TestRecoverFinishesCrashedAbort(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 8, InitialSplits: []string{"k50"}})
	rs := s.Ranges()
	parts := []uint64{rs[0].ID, rs[1].ID}
	writes := []rmWrite{{Key: "k10", Val: []byte("x")}, {Key: "k60", Val: []byte("x")}}
	// Inject the half-aborted record directly into the replicated table:
	// begin then abort, with no participant aborts and no tDone.
	const id = 9001
	if resp, _, err := s.propose(0, txnMachineName, encTxBegin(id, parts, writes)); err != nil || resp[0] != rspOK {
		t.Fatalf("inject begin = (%v, %v)", resp, err)
	}
	if resp, _, err := s.propose(0, txnMachineName, encTxAbort(id)); err != nil || resp[0] != rspOK {
		t.Fatalf("inject abort = (%v, %v)", resp, err)
	}
	if n, err := s.PendingTxnRecords(); err != nil || n != 1 {
		t.Fatalf("injected records = (%d, %v), want 1", n, err)
	}

	rec, err := s.RecoverTxns()
	if err != nil {
		t.Fatalf("RecoverTxns: %v", err)
	}
	if rec.Aborted != 1 || rec.Resumed != 0 {
		t.Fatalf("recovery = %+v, want exactly the crashed abort finished", rec)
	}
	if n, err := s.PendingTxnRecords(); err != nil || n != 0 {
		t.Fatalf("records after recovery = (%d, %v), want 0", n, err)
	}
	if _, found := mustGet(t, s, "k10"); found {
		t.Fatal("aborted write visible")
	}
}

// TestDirectoryEpochAdvancesOnTopologyChange pins that every routing
// change bumps the replicated directory epoch (what stale-cache
// detection keys on), and that rejected changes do not.
func TestDirectoryEpochAdvancesOnTopologyChange(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 2, InitialSplits: []string{"k50"}})
	epoch := func() uint64 {
		var e uint64
		if err := s.groups[0].Query(dirMachineName, func(sm ha.StateMachine) error {
			e = sm.(*dirMachine).epochVal()
			return nil
		}); err != nil {
			t.Fatalf("dir query: %v", err)
		}
		return e
	}
	e0 := epoch()
	if err := s.Split("k20"); err != nil {
		t.Fatal(err)
	}
	e1 := epoch()
	if e1 <= e0 {
		t.Fatalf("epoch after split = %d, want > %d", e1, e0)
	}
	if err := s.Merge("k99"); err == nil {
		t.Fatal("Merge at non-boundary succeeded")
	}
	if got := epoch(); got != e1 {
		t.Fatalf("epoch after rejected merge = %d, want unchanged %d", got, e1)
	}
	if err := s.Merge("k20"); err != nil {
		t.Fatal(err)
	}
	if got := epoch(); got <= e1 {
		t.Fatalf("epoch after merge = %d, want > %d", got, e1)
	}
}

// TestMachinesRejectMalformedCommands pins the replicated machines'
// decode hardening: truncated or garbage commands must come back as
// rspConflict, never panic or mutate state — a replicated log entry is
// the one input a state machine can never refuse to run.
func TestMachinesRejectMalformedCommands(t *testing.T) {
	rm := newRangeMachine()
	rm.Apply(encRmAdopt("", "", nil)) // init empty-bounds owner
	dm := newDirMachine()
	dm.Apply(encDirInit(1, nil))
	tm := newTxnMachine()

	cmds := [][]byte{
		nil, {}, {0xff},
		{rmOpPut}, {rmOpDel}, {rmOpGet}, {rmOpPrepare}, {rmOpApply},
		{rmOpAbort}, {rmOpAdopt}, {rmOpFreeze}, {rmOpTrim},
		{rmOpMigrate},
		encRmPut("k", []byte("v"), 1)[:3],
	}
	for _, cmd := range cmds {
		if resp := rm.Apply(cmd); len(resp) == 0 || resp[0] != rspConflict {
			t.Fatalf("rangeMachine.Apply(% x) = % x, want rspConflict", cmd, resp)
		}
	}
	if len(rm.data) != 0 || len(rm.locks) != 0 {
		t.Fatal("malformed commands mutated range state")
	}
	for _, cmd := range [][]byte{nil, {0xee},
		encDirSplitReserve(1, "k")[:2], encDirU64(dirOpMergeReserve, 1)[:3]} {
		if resp := dm.Apply(cmd); len(resp) == 0 || resp[0] != rspConflict {
			t.Fatalf("dirMachine.Apply(% x) = % x, want rspConflict", cmd, resp)
		}
	}
	for _, cmd := range [][]byte{nil, {0xee},
		encTxBegin(1, []uint64{1}, nil)[:2], encTxAbort(1)[:3]} {
		if resp := tm.Apply(cmd); len(resp) == 0 || resp[0] != rspConflict {
			t.Fatalf("txnMachine.Apply(% x) = % x, want rspConflict", cmd, resp)
		}
	}
	if tm.recordCount() != 0 {
		t.Fatal("malformed commands created txn records")
	}
}

// TestMaybeSplitMergeEdgeCases covers the size-policy boundaries the
// main policy test does not reach: a single range cannot merge, an
// empty plane never splits, and both policies leave routing intact.
func TestMaybeSplitMergeEdgeCases(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 12})
	if did, err := s.MaybeMerge(100); did || err != nil {
		t.Fatalf("MaybeMerge on single range = (%v, %v), want (false, nil)", did, err)
	}
	if did, err := s.MaybeSplit(2); did || err != nil {
		t.Fatalf("MaybeSplit on empty plane = (%v, %v), want (false, nil)", did, err)
	}
	for i := 0; i < 6; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), "v")
	}
	if did, err := s.MaybeSplit(4); !did || err != nil {
		t.Fatalf("MaybeSplit past threshold = (%v, %v), want (true, nil)", did, err)
	}
	if did, err := s.MaybeMerge(100); !did || err != nil {
		t.Fatalf("MaybeMerge under threshold = (%v, %v), want (true, nil)", did, err)
	}
	for i := 0; i < 6; i++ {
		if v, _ := mustGet(t, s, fmt.Sprintf("k%02d", i)); v != "v" {
			t.Fatalf("k%02d = %q after policy churn, want v", i, v)
		}
	}
}

// TestShardedTopologyArgumentErrors pins the typed failures for
// malformed split/merge boundaries.
func TestShardedTopologyArgumentErrors(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{Seed: 6, InitialSplits: []string{"k50"}})
	if err := s.Split("k50"); err == nil {
		t.Fatal("Split at an existing boundary succeeded")
	}
	if err := s.Split(""); err == nil {
		t.Fatal("Split at the keyspace origin succeeded")
	}
	if err := s.Merge("k99"); err == nil {
		t.Fatal("Merge at a non-boundary succeeded")
	}
	if err := s.OrphanNext("bogus-point"); err == nil {
		t.Fatal("OrphanNext accepted an unknown crash point")
	}
	if got := s.RangeCount(); got != 2 {
		t.Fatalf("RangeCount after rejected topology ops = %d, want 2", got)
	}
}
