package kvstore

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/admission"
)

func TestCtxOpsPassThrough(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	ctx := context.Background()
	if _, err := s.PutCtx(ctx, 0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.GetCtx(ctx, 1, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("GetCtx = %q, %v", v, err)
	}
	if _, err := s.DeleteCtx(ctx, 0, "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetCtx(ctx, 1, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestCtxDeadline(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	if _, err := s.Put(0, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// A request whose budget expired in the queue is rejected in O(1).
	dead := admission.WithBudget(context.Background(), 0)
	if _, _, err := s.GetCtx(dead, 0, "k"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired budget: %v", err)
	}
	// The typed error must read as a deadline, not a quorum failure.
	if _, _, err := s.GetCtx(dead, 0, "k"); !admission.IsDeadline(err) || errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("error identity wrong: %v", err)
	}

	// A budget below the op's simulated latency burns exactly the budget.
	tiny := admission.WithBudget(context.Background(), time.Nanosecond)
	_, lat, err := s.GetCtx(tiny, 0, "k")
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("tiny budget: %v", err)
	}
	if lat != time.Nanosecond {
		t.Fatalf("burned %v, want the 1ns budget", lat)
	}
	if _, err := s.PutCtx(tiny, 0, "k", []byte("v2")); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("tiny-budget put: %v", err)
	}
	// The overrun write is ambiguous: it may be durable. Verify it is,
	// so callers can never assume "deadline" means "not written".
	v, _, err := s.Get(0, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("ambiguous write not durable: %q, %v", v, err)
	}

	// An ample budget changes nothing.
	ample := admission.WithBudget(context.Background(), time.Second)
	if _, _, err := s.GetCtx(ample, 0, "k"); err != nil {
		t.Fatalf("ample budget: %v", err)
	}

	// DeleteCtx carries the same contract: expired budget is O(1)
	// rejection, an overrun is ambiguous but here durable.
	if _, err := s.DeleteCtx(dead, 0, "k"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("expired-budget delete: %v", err)
	}
	if _, err := s.DeleteCtx(tiny, 0, "k"); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("tiny-budget delete: %v", err)
	}
	if _, _, err := s.Get(0, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ambiguous delete not durable: %v", err)
	}

	// Cancellation maps to context.Canceled, distinct from deadline.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.GetCtx(cctx, 0, "k"); !errors.Is(err, context.Canceled) || admission.IsDeadline(err) {
		t.Fatalf("cancel: %v", err)
	}
	if got := s.Reg.Counter("deadline_exceeded").Value(); got < 4 {
		t.Fatalf("deadline_exceeded counter = %d", got)
	}
}
