package kvstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
)

func newStore(t *testing.T, n, r, w int) *Store {
	t.Helper()
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: n, R: r, W: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	if _, err := s.Put(0, "user:1", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, lat, err := s.Get(1, "user:1")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "alice" {
		t.Fatalf("got %q", v)
	}
	if lat <= 0 {
		t.Fatal("zero read latency")
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	if _, _, err := s.Get(0, "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	for i := 0; i < 10; i++ {
		if _, err := s.Put(topology.NodeID(i%8), "k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, _, err := s.Get(3, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v9" {
		t.Fatalf("got %q, want v9", v)
	}
}

func TestDelete(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	_, _ = s.Put(0, "k", []byte("v"))
	if _, err := s.Delete(0, "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(0, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key readable: %v", err)
	}
}

func TestReplicationPlacesNReplicas(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	_, _ = s.Put(0, "replicated", []byte("x"))
	if got := s.ReplicaCount("replicated"); got != 3 {
		t.Fatalf("replicas = %d, want 3", got)
	}
}

func TestReadYourWritesWithQuorumOverlap(t *testing.T) {
	// R+W > N guarantees the read quorum intersects the write quorum even
	// when a replica is down.
	s := newStore(t, 3, 2, 2)
	prefs := s.ring.preferenceList("key-under-test", 3)
	if err := s.FailNode(prefs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(0, "key-under-test", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, _, err := s.Get(5, "key-under-test")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v1" {
		t.Fatalf("read-your-writes violated: got %q", v)
	}
}

func TestQuorumFailure(t *testing.T) {
	fab := netsim.NewFabric(topology.Single(3), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 3, R: 2, W: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.FailNode(0)
	if _, err := s.Put(1, "k", []byte("v")); !errors.Is(err, ErrQuorumFailed) {
		// W=3 needs all three; with hinted handoff impossible (no spare
		// nodes in a 3-node cluster), the write must fail.
		t.Fatalf("err = %v, want quorum failure", err)
	}
}

func TestHintedHandoffAndDelivery(t *testing.T) {
	s := newStore(t, 3, 1, 2) // 8 nodes, so a successor exists for handoff
	prefs := s.ring.preferenceList("hh-key", 3)
	victim := prefs[0]
	_ = s.FailNode(victim)
	if _, err := s.Put(0, "hh-key", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.PendingHints() == 0 {
		t.Fatal("no hint recorded for dead replica")
	}
	if err := s.RecoverNode(victim); err != nil {
		t.Fatal(err)
	}
	if s.PendingHints() != 0 {
		t.Fatal("hints not delivered on recovery")
	}
	// The recovered node must now hold the value.
	v, ok := s.replica[victim].get("hh-key")
	if !ok || string(v.value) != "v" {
		t.Fatal("recovered node missing hinted write")
	}
	if s.Reg.Counter("hints_delivered").Value() == 0 {
		t.Fatal("hints_delivered not counted")
	}
}

func TestReadRepair(t *testing.T) {
	s := newStore(t, 3, 3, 2)
	prefs := s.ring.preferenceList("rr-key", 3)
	// Write v1 everywhere, then manually roll one replica back to simulate
	// a stale copy.
	if _, err := s.Put(0, "rr-key", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	stale := prefs[2]
	s.replica[stale].mu.Lock()
	s.replica[stale].data["rr-key"] = versioned{value: []byte("v1"), version: 0}
	s.replica[stale].mu.Unlock()

	v, _, err := s.Get(0, "rr-key") // R=3 touches all replicas
	if err != nil || string(v) != "v2" {
		t.Fatalf("got %q, %v", v, err)
	}
	if s.Reg.Counter("read_repairs").Value() == 0 {
		t.Fatal("read repair not performed")
	}
	got, _ := s.replica[stale].get("rr-key")
	if string(got.value) != "v2" {
		t.Fatal("stale replica not repaired")
	}
}

func TestQuorumLatencyOrdering(t *testing.T) {
	// Larger write quorums cannot be faster: latency(W=1) <= latency(W=3).
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.TCP40G)
	lat := map[int]int64{}
	for _, w := range []int{1, 3} {
		s, err := New(Config{Fabric: fab, N: 3, R: 1, W: w})
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for i := 0; i < 200; i++ {
			d, err := s.Put(topology.NodeID(i%8), fmt.Sprintf("k%d", i), []byte("value"))
			if err != nil {
				t.Fatal(err)
			}
			sum += int64(d)
		}
		lat[w] = sum
	}
	if lat[1] >= lat[3] {
		t.Fatalf("W=1 total latency %d not below W=3 latency %d", lat[1], lat[3])
	}
}

func TestInvalidQuorumRejected(t *testing.T) {
	fab := netsim.NewFabric(topology.Single(4), netsim.RDMA40G)
	if _, err := New(Config{Fabric: fab, N: 3, R: 4, W: 1}); !errors.Is(err, ErrBadQuorum) {
		t.Fatalf("err = %v", err)
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil fabric accepted")
	}
}

func TestPreferenceListProperties(t *testing.T) {
	r := newRing(10, 64)
	f := func(key string) bool {
		prefs := r.preferenceList(key, 3)
		if len(prefs) != 3 {
			return false
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range prefs {
			if n < 0 || n >= 10 || seen[n] {
				return false
			}
			seen[n] = true
		}
		// Deterministic.
		again := r.preferenceList(key, 3)
		for i := range prefs {
			if prefs[i] != again[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalance(t *testing.T) {
	r := newRing(8, 128)
	counts := make([]int, 8)
	gen := rng.New(5)
	const keys = 20000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d-%d", i, gen.Uint64())
		counts[r.preferenceList(k, 1)[0]]++
	}
	for n, c := range counts {
		frac := float64(c) / keys
		if frac < 0.05 || frac > 0.25 {
			t.Fatalf("node %d owns %.1f%% of keys; ring unbalanced", n, frac*100)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("c%d-k%d", c, i)
				if _, err := s.Put(topology.NodeID(c), key, []byte(key)); err != nil {
					errs <- err
					return
				}
				v, _, err := s.Get(topology.NodeID(c), key)
				if err != nil {
					errs <- err
					return
				}
				if string(v) != key {
					errs <- fmt.Errorf("got %q want %q", v, key)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFailUnknownNode(t *testing.T) {
	s := newStore(t, 3, 2, 2)
	if err := s.FailNode(99); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
	if err := s.RecoverNode(-1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("err = %v", err)
	}
}

func BenchmarkPut(b *testing.B) {
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Put(topology.NodeID(i%8), fmt.Sprintf("bench-%d", i%100000), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	fab := netsim.NewFabric(topology.TwoTier(2, 4, 2), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		if _, err := s.Put(0, fmt.Sprintf("bench-%d", i), val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Get(topology.NodeID(i%8), fmt.Sprintf("bench-%d", i%10000)); err != nil {
			b.Fatal(err)
		}
	}
}
