package kvstore

import (
	"context"
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/topology"
)

// ErrDeadlineExceeded is returned by the context-aware quorum ops when
// the operation cannot finish within the caller's virtual budget (see
// admission.WithBudget) or the context is already done. It wraps
// admission.ErrDeadline, so errors.Is separates a timeout from a quorum
// failure (ErrQuorumFailed) at every call site — the distinction the
// retry policy needs, because a timeout is retry-worthy while a quorum
// config error is not.
var ErrDeadlineExceeded = fmt.Errorf("kvstore: deadline exceeded: %w", admission.ErrDeadline)

// ctxGate maps a finished context to the store's typed errors before any
// work is done: a request that expired while queueing is rejected in
// O(1) without fanning out to replicas — under overload this is where
// deadline propagation stops the wasted-work spiral.
func ctxGate(ctx context.Context) (budget time.Duration, hasBudget bool, err error) {
	select {
	case <-ctx.Done():
		if ctx.Err() == context.DeadlineExceeded {
			return 0, false, ErrDeadlineExceeded
		}
		return 0, false, ctx.Err()
	default:
	}
	budget, hasBudget = admission.Budget(ctx)
	if hasBudget && budget <= 0 {
		return 0, false, ErrDeadlineExceeded
	}
	return budget, hasBudget, nil
}

// GetCtx is Get with cancellation and virtual-deadline propagation. If
// the read's simulated latency exceeds the remaining budget the client
// gives up at the deadline: the returned latency is the budget actually
// burned and the error is ErrDeadlineExceeded.
func (s *Store) GetCtx(ctx context.Context, coordinator topology.NodeID, key string) ([]byte, time.Duration, error) {
	budget, has, err := ctxGate(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, 0, err
	}
	value, lat, err := s.Get(coordinator, key)
	if has && lat > budget {
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, budget, ErrDeadlineExceeded
	}
	return value, lat, err
}

// PutCtx is Put with cancellation and virtual-deadline propagation.
// A put that overruns its budget returns ErrDeadlineExceeded but is
// *ambiguous*, exactly like a timed-out write in a real quorum store:
// the replicas that acknowledged keep the value, so a later read may
// observe it. Callers must treat the error as "unknown outcome", never
// "not written" — the linearizability oracle in internal/check scores
// such writes as concurrent, which is why shedding cannot corrupt
// histories.
func (s *Store) PutCtx(ctx context.Context, coordinator topology.NodeID, key string, value []byte) (time.Duration, error) {
	budget, has, err := ctxGate(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return 0, err
	}
	lat, err := s.Put(coordinator, key, value)
	if has && lat > budget {
		s.Reg.Counter("deadline_exceeded").Inc()
		return budget, ErrDeadlineExceeded
	}
	return lat, err
}

// DeleteCtx is Delete with cancellation and virtual-deadline
// propagation; overruns carry the same write ambiguity as PutCtx.
func (s *Store) DeleteCtx(ctx context.Context, coordinator topology.NodeID, key string) (time.Duration, error) {
	budget, has, err := ctxGate(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return 0, err
	}
	lat, err := s.Delete(coordinator, key)
	if has && lat > budget {
		s.Reg.Counter("deadline_exceeded").Inc()
		return budget, ErrDeadlineExceeded
	}
	return lat, err
}
