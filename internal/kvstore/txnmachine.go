// txnMachine is the replicated transaction-record table: the 2PC
// coordinator's durable state, run as the "txn" machine on the control
// group. The commit point of every cross-range transaction is the
// single Raft commit of its tMarkCommit record here — participants
// apply writes only after that record exists, and recovery resolves any
// orphaned transaction purely from this table: pending → abort
// everywhere, committed → re-apply everywhere. A coordinator crash can
// therefore delay a transaction but never leave it dangling.
package kvstore

// Transaction record opcodes.
const (
	txOpBegin  = 0x01 // id, participant range ids, writes
	txOpCommit = 0x02 // id, commit version
	txOpAbort  = 0x03 // id
	txOpDone   = 0x04 // id — record retired after cleanup
)

// Transaction record states.
const (
	txnStPending   byte = 1
	txnStCommitted byte = 2
	txnStAborted   byte = 3
)

// txnRec is one transaction's replicated record.
type txnRec struct {
	status byte
	ver    uint64 // commit version (set at commit)
	parts  []uint64
	writes []rmWrite
}

// txnRecSnap is the query-side copy handed to recovery.
type txnRecSnap struct {
	ID     uint64
	Status byte
	Ver    uint64
	Parts  []uint64
	Writes []rmWrite
}

type txnMachine struct {
	recs map[uint64]*txnRec
}

func newTxnMachine() *txnMachine { return &txnMachine{recs: map[uint64]*txnRec{}} }

func (m *txnMachine) Apply(cmd []byte) []byte {
	d := &wdec{buf: cmd}
	op := d.u8()
	id := d.u64()
	switch op {
	case txOpBegin:
		parts := decodeU64s(d)
		writes := decodeWrites(d)
		if d.err {
			return []byte{rspConflict}
		}
		if _, ok := m.recs[id]; ok {
			return []byte{rspOK}
		}
		m.recs[id] = &txnRec{status: txnStPending, parts: parts, writes: writes}
		return []byte{rspOK}

	case txOpCommit:
		ver := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		rec, ok := m.recs[id]
		if !ok {
			// Unknown id: the record was aborted and retired (recovery
			// raced the coordinator). The txn must not apply.
			return []byte{rspAborted}
		}
		switch rec.status {
		case txnStAborted:
			return []byte{rspAborted}
		case txnStPending:
			rec.status = txnStCommitted
			rec.ver = ver
		}
		return []byte{rspOK}

	case txOpAbort:
		if d.err {
			return []byte{rspConflict}
		}
		rec, ok := m.recs[id]
		if !ok {
			return []byte{rspOK} // already retired
		}
		switch rec.status {
		case txnStCommitted:
			// Too late: the commit record is the point of no return.
			return wAppendU64([]byte{rspCommitted}, rec.ver)
		case txnStPending:
			rec.status = txnStAborted
		}
		return []byte{rspOK}

	case txOpDone:
		if d.err {
			return []byte{rspConflict}
		}
		delete(m.recs, id)
		return []byte{rspOK}
	}
	return []byte{rspConflict}
}

// Query-side accessors.

func (m *txnMachine) snapshotRecs() []txnRecSnap {
	ids := make([]uint64, 0, len(m.recs))
	for id := range m.recs {
		ids = append(ids, id)
	}
	sortU64s(ids)
	out := make([]txnRecSnap, 0, len(ids))
	for _, id := range ids {
		r := m.recs[id]
		out = append(out, txnRecSnap{
			ID: id, Status: r.status, Ver: r.ver,
			Parts:  append([]uint64(nil), r.parts...),
			Writes: append([]rmWrite(nil), r.writes...),
		})
	}
	return out
}

func (m *txnMachine) recordCount() int { return len(m.recs) }

func (m *txnMachine) Snapshot() []byte {
	recs := m.snapshotRecs()
	buf := wAppendU32(nil, uint32(len(recs)))
	for _, r := range recs {
		buf = wAppendU64(buf, r.ID)
		buf = append(buf, r.Status)
		buf = wAppendU64(buf, r.Ver)
		buf = appendU64s(buf, r.Parts)
		buf = appendWrites(buf, r.Writes)
	}
	return buf
}

func (m *txnMachine) Restore(snap []byte) {
	d := &wdec{buf: snap}
	m.recs = map[uint64]*txnRec{}
	n := int(d.u32())
	for i := 0; i < n && !d.err; i++ {
		id := d.u64()
		rec := &txnRec{status: d.u8(), ver: d.u64()}
		rec.parts = decodeU64s(d)
		rec.writes = decodeWrites(d)
		if d.err {
			break
		}
		m.recs[id] = rec
	}
}

// Command encoders.

func encTxBegin(id uint64, parts []uint64, writes []rmWrite) []byte {
	b := wAppendU64([]byte{txOpBegin}, id)
	b = appendU64s(b, parts)
	return appendWrites(b, writes)
}

func encTxCommit(id, ver uint64) []byte {
	b := wAppendU64([]byte{txOpCommit}, id)
	return wAppendU64(b, ver)
}

func encTxAbort(id uint64) []byte { return wAppendU64([]byte{txOpAbort}, id) }
func encTxDone(id uint64) []byte  { return wAppendU64([]byte{txOpDone}, id) }

func appendU64s(b []byte, vs []uint64) []byte {
	b = wAppendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = wAppendU64(b, v)
	}
	return b
}

func decodeU64s(d *wdec) []uint64 {
	n := int(d.u32())
	var vs []uint64
	for i := 0; i < n && !d.err; i++ {
		vs = append(vs, d.u64())
	}
	return vs
}
