// Wire encoding for the sharded data plane's replicated commands.
// Commands and responses are byte slices (the ha.StateMachine contract),
// encoded big-endian with length-prefixed strings and a sticky-error
// decoder, mirroring the envelope idiom in internal/ha. Every command is
// applied on three replicas, so encodings must be deterministic: maps
// are always flattened in sorted-key order before encoding.
package kvstore

import (
	"encoding/binary"
	"sort"
)

func sortStrs(ss []string) { sort.Strings(ss) }

func sortU64s(vs []uint64) { sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] }) }

func sortPairs(ps []kvPair) { sort.Slice(ps, func(i, j int) bool { return ps[i].key < ps[j].key }) }

func wAppendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }
func wAppendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }

func wAppendStr(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func wAppendBlob(b, p []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func wAppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// wdec is a sticky-error decoder: after the first short read every
// subsequent accessor returns a zero value, so callers check err once.
type wdec struct {
	buf []byte
	err bool
}

func (d *wdec) u8() byte {
	if d.err || len(d.buf) < 1 {
		d.err = true
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *wdec) boolv() bool { return d.u8() == 1 }

func (d *wdec) u32() uint32 {
	if d.err || len(d.buf) < 4 {
		d.err = true
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}

func (d *wdec) u64() uint64 {
	if d.err || len(d.buf) < 8 {
		d.err = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *wdec) str() string { return string(d.blob()) }

func (d *wdec) blob() []byte {
	n := int(d.u32())
	if d.err || len(d.buf) < n {
		d.err = true
		return nil
	}
	v := d.buf[:n:n]
	d.buf = d.buf[n:]
	return v
}
