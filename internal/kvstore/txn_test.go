package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func bg() context.Context { return context.Background() }

func TestTxnCommitsAtomicallyAcrossRanges(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "acct-a", "100")
	mustPut(t, s, "zcct-b", "50")
	reads, err := s.Txn(bg(),
		[]string{"acct-a", "zcct-b"},
		map[string][]byte{"acct-a": []byte("70"), "zcct-b": []byte("80")})
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if string(reads["acct-a"]) != "100" || string(reads["zcct-b"]) != "50" {
		t.Fatalf("txn reads = %q/%q, want 100/50", reads["acct-a"], reads["zcct-b"])
	}
	if v, _ := mustGet(t, s, "acct-a"); v != "70" {
		t.Fatalf("acct-a = %q, want 70", v)
	}
	if v, _ := mustGet(t, s, "zcct-b"); v != "80" {
		t.Fatalf("zcct-b = %q, want 80", v)
	}
	// Absent reads are omitted from the result map.
	reads, err = s.Txn(bg(), []string{"missing"}, map[string][]byte{"acct-a": []byte("x")})
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if _, ok := reads["missing"]; ok {
		t.Fatal("absent key present in txn reads")
	}
	// A nil write value is a transactional delete.
	if _, err := s.Txn(bg(), nil, map[string][]byte{"acct-a": nil}); err != nil {
		t.Fatalf("Txn delete: %v", err)
	}
	if _, ok := mustGet(t, s, "acct-a"); ok {
		t.Fatal("transactionally deleted key still found")
	}
	if n, err := s.PendingTxnRecords(); err != nil || n != 0 {
		t.Fatalf("pending txn records = (%d, %v), want 0", n, err)
	}
}

// orphanTxn runs a transaction armed to crash at the given point and
// asserts it reports ErrTxnOrphaned.
func orphanTxn(t *testing.T, s *Sharded, point string, reads []string, writes map[string][]byte) {
	t.Helper()
	if err := s.OrphanNext(point); err != nil {
		t.Fatalf("OrphanNext(%s): %v", point, err)
	}
	if _, err := s.Txn(bg(), reads, writes); !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("Txn with crash at %s = %v, want ErrTxnOrphaned", point, err)
	}
}

func TestTxnCoordinatorCrashAlwaysResolves(t *testing.T) {
	// Pre-commit crash points must resolve as aborted (writes absent);
	// post-commit points as resumed (writes present). Either way: zero
	// locks, zero pending records after recovery — never dangling.
	cases := []struct {
		point     string
		wantApply bool
	}{
		{"begin", false},
		{"prepare", false},
		{"before-commit", false},
		{"commit", true},
		{"apply", true},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}, MaxOpAttempts: 4})
			mustPut(t, s, "aa", "old-a")
			mustPut(t, s, "zz", "old-z")
			orphanTxn(t, s, tc.point,
				[]string{"aa", "zz"},
				map[string][]byte{"aa": []byte("new-a"), "zz": []byte("new-z")})

			rec, err := s.RecoverTxns()
			if err != nil {
				t.Fatalf("RecoverTxns: %v", err)
			}
			if tc.wantApply && rec.Resumed != 1 {
				t.Fatalf("recovery = %+v, want 1 resumed", rec)
			}
			if !tc.wantApply && rec.Aborted != 1 {
				t.Fatalf("recovery = %+v, want 1 aborted", rec)
			}
			wantA, wantZ := "old-a", "old-z"
			if tc.wantApply {
				wantA, wantZ = "new-a", "new-z"
			}
			if v, _ := mustGet(t, s, "aa"); v != wantA {
				t.Fatalf("aa after recovery = %q, want %q", v, wantA)
			}
			if v, _ := mustGet(t, s, "zz"); v != wantZ {
				t.Fatalf("zz after recovery = %q, want %q", v, wantZ)
			}
			if n, err := s.LockCount(); err != nil || n != 0 {
				t.Fatalf("locks after recovery = (%d, %v), want 0", n, err)
			}
			if n, err := s.PendingTxnRecords(); err != nil || n != 0 {
				t.Fatalf("records after recovery = (%d, %v), want 0", n, err)
			}
			// Recovery is idempotent.
			if rec, _ := s.RecoverTxns(); rec.Resumed+rec.Aborted != 0 {
				t.Fatalf("second recovery resolved %+v, want nothing", rec)
			}
		})
	}
}

func TestTxnOrphanedLocksBlockThenRelease(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}, MaxOpAttempts: 3, MaxTxnAttempts: 2})
	mustPut(t, s, "k1", "v")
	orphanTxn(t, s, "before-commit", []string{"k1"}, map[string][]byte{"k1": []byte("w")})
	if n, _ := s.LockCount(); n != 1 {
		t.Fatalf("locks while orphaned = %d, want 1", n)
	}
	// Single-key ops and transactions on the locked key fail cleanly.
	if err := s.Put(bg(), "k1", []byte("x")); !errors.Is(err, ErrKeyLocked) {
		t.Fatalf("Put on locked key = %v, want ErrKeyLocked", err)
	}
	if _, err := s.Txn(bg(), nil, map[string][]byte{"k1": []byte("y")}); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Txn on locked key = %v, want ErrTxnConflict", err)
	}
	if _, err := s.RecoverTxns(); err != nil {
		t.Fatalf("RecoverTxns: %v", err)
	}
	if n, _ := s.LockCount(); n != 0 {
		t.Fatalf("locks after recovery = %d, want 0", n)
	}
	// The aborted orphan's write never landed; the plane flows again.
	if v, _ := mustGet(t, s, "k1"); v != "v" {
		t.Fatalf("k1 = %q, want v (orphan aborted)", v)
	}
	mustPut(t, s, "k1", "fresh")
}

func TestTxnPartitionSpanningCommitPoint(t *testing.T) {
	// Partition the control group's leader away right before the commit
	// proposal: the coordinator cannot learn the outcome (ErrTxnOrphaned)
	// and recovery after heal must resolve it deterministically.
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}, MaxOpTicks: 120, MaxOpAttempts: 4})
	mustPut(t, s, "aa", "old")
	mustPut(t, s, "zz", "old")

	leader := s.GroupLeader(0)
	var rest []int
	for id := 0; id < 3; id++ {
		if id != leader {
			rest = append(rest, id)
		}
	}
	// Prepare happens on both groups; then we cut group 0 before commit
	// by doing the partition inside the crash hook window: arm a crash
	// at before-commit, run the txn (locks held, no commit record), then
	// partition and let recovery race the resolution.
	orphanTxn(t, s, "before-commit", []string{"aa", "zz"},
		map[string][]byte{"aa": []byte("new"), "zz": []byte("new")})
	s.PartitionGroup(0, []int{leader}, rest)

	// With the old leader isolated, the rest elect a new one; recovery
	// reads the replicated record (still pending: no commit ever made it)
	// and aborts.
	rec, err := s.RecoverTxns()
	if err != nil {
		t.Fatalf("RecoverTxns under partition: %v", err)
	}
	if rec.Aborted != 1 {
		t.Fatalf("recovery = %+v, want 1 aborted", rec)
	}
	s.HealGroup(0)
	if v, _ := mustGet(t, s, "aa"); v != "old" {
		t.Fatalf("aa = %q, want old", v)
	}
	if n, _ := s.LockCount(); n != 0 {
		t.Fatalf("locks = %d, want 0", n)
	}
}

func TestTxnSplitRacingTransactionsResolve(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{MaxOpAttempts: 4, MaxTxnAttempts: 2})
	for i := 0; i < 10; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), "v")
	}
	// An orphaned txn holds locks across the would-be split point: the
	// split must back off (ErrRangeBusy), not strand the locks.
	orphanTxn(t, s, "before-commit", nil,
		map[string][]byte{"k04": []byte("w"), "k06": []byte("w")})
	if err := s.Split("k05"); !errors.Is(err, ErrRangeBusy) {
		t.Fatalf("Split over locked span = %v, want ErrRangeBusy", err)
	}
	if _, err := s.RecoverTxns(); err != nil {
		t.Fatalf("RecoverTxns: %v", err)
	}
	if err := s.Split("k05"); err != nil {
		t.Fatalf("Split after recovery: %v", err)
	}

	// Conversely: a split frozen mid-flight (crash between copy and
	// commit) fences the moving span; transactions touching it abort
	// cleanly and succeed once recovery completes the split.
	if err := s.OrphanNext("split-copy"); err != nil {
		t.Fatalf("OrphanNext: %v", err)
	}
	if err := s.Split("k08"); !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("Split with armed crash = %v, want ErrTxnOrphaned", err)
	}
	if _, err := s.Txn(bg(), nil, map[string][]byte{"k09": []byte("w")}); !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Txn into frozen span = %v, want ErrTxnConflict", err)
	}
	if _, err := s.RecoverRanges(); err != nil {
		t.Fatalf("RecoverRanges: %v", err)
	}
	if _, err := s.Txn(bg(), nil, map[string][]byte{"k09": []byte("w")}); err != nil {
		t.Fatalf("Txn after recovered split: %v", err)
	}
	if v, _ := mustGet(t, s, "k09"); v != "w" {
		t.Fatalf("k09 = %q, want w", v)
	}
}

func TestTxnDirtyReadInjectionServesStaleState(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{})
	mustPut(t, s, "k", "v1")
	mustPut(t, s, "k", "v2")
	if v, _ := mustGet(t, s, "k"); v != "v2" {
		t.Fatalf("clean read = %q, want v2", v)
	}
	s.SetDirtyReads(true)
	if v, _ := mustGet(t, s, "k"); v != "v1" {
		t.Fatalf("dirty read = %q, want the stale v1", v)
	}
	s.SetDirtyReads(false)
	if v, _ := mustGet(t, s, "k"); v != "v2" {
		t.Fatalf("read after disabling injection = %q, want v2", v)
	}
}

func TestTxnReadOnlyAndConflictRetry(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "a1", "x")
	mustPut(t, s, "z1", "y")
	// Read-only txn observes a consistent snapshot and leaves no locks.
	reads, err := s.Txn(bg(), []string{"a1", "z1"}, nil)
	if err != nil {
		t.Fatalf("read-only Txn: %v", err)
	}
	if string(reads["a1"]) != "x" || string(reads["z1"]) != "y" {
		t.Fatalf("read-only txn = %q/%q, want x/y", reads["a1"], reads["z1"])
	}
	if n, _ := s.LockCount(); n != 0 {
		t.Fatalf("locks after read-only txn = %d, want 0", n)
	}
	if n, _ := s.PendingTxnRecords(); n != 0 {
		t.Fatalf("records after read-only txn = %d, want 0", n)
	}
}
