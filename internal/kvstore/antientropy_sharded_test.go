package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// sweepUntilClean runs AntiEntropy until a sweep moves and trims nothing,
// proving convergence, and returns the totals of the converging run.
func sweepUntilClean(t *testing.T, s *Sharded) (int, int) {
	t.Helper()
	totalMoved, totalTrimmed := 0, 0
	for i := 0; i < 8; i++ {
		moved, trimmed, err := s.AntiEntropy()
		if err != nil {
			t.Fatalf("AntiEntropy: %v", err)
		}
		totalMoved += moved
		totalTrimmed += trimmed
		if moved == 0 && trimmed == 0 {
			return totalMoved, totalTrimmed
		}
	}
	t.Fatal("AntiEntropy did not converge within 8 sweeps")
	return 0, 0
}

func TestAntiEntropyRepairsStrayCells(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "apple", "right")
	mustPut(t, s, "zebra", "right")

	// Plant a stray: a cell for a key the left range does not own, as if
	// a migration landed on a stale owner. Newer version than the real
	// copy so the sweep must carry it forward, not discard it.
	left, err := s.locate("apple")
	if err != nil {
		t.Fatalf("locate: %v", err)
	}
	stray := []kvPair{{key: "zebra", rval: rval{val: []byte("stray-newer"), ver: s.nextVersion()}}}
	if _, _, err := s.propose(s.groupOf(left.ID), rangeName(left.ID), encRmMigrate(stray)); err != nil {
		t.Fatalf("inject stray: %v", err)
	}

	moved, trimmed := sweepUntilClean(t, s)
	if moved == 0 || trimmed == 0 {
		t.Fatalf("sweep = (moved %d, trimmed %d), want both > 0", moved, trimmed)
	}
	// The stray's newer version won at the true owner, and the source no
	// longer holds the out-of-bounds cell.
	if v, _ := mustGet(t, s, "zebra"); v != "stray-newer" {
		t.Fatalf("zebra = %q, want stray-newer", v)
	}
	if v, _ := mustGet(t, s, "apple"); v != "right" {
		t.Fatalf("apple = %q, want right", v)
	}
}

func TestAntiEntropyIdempotentAfterSplitCrash(t *testing.T) {
	// Anti-entropy doubles as topology recovery: a split crashed after
	// the copy must be driven to completion by the sweep, with no lost
	// or duplicated versions, and replay must be a no-op.
	s := newTestSharded(t, ShardedConfig{MaxOpAttempts: 4})
	want := map[string]string{}
	for i := 0; i < 16; i++ {
		k := fmt.Sprintf("k%02d", i)
		want[k] = fmt.Sprintf("v%d", i)
		mustPut(t, s, k, want[k])
	}
	if err := s.OrphanNext("split-copy"); err != nil {
		t.Fatalf("OrphanNext: %v", err)
	}
	if err := s.Split("k08"); !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("Split = %v, want ErrTxnOrphaned", err)
	}
	sweepUntilClean(t, s)
	if got := s.RangeCount(); got != 2 {
		t.Fatalf("RangeCount after sweep = %d, want 2", got)
	}
	for k, v := range want {
		if got, ok := mustGet(t, s, k); !ok || got != v {
			t.Fatalf("%s = (%q, %v), want %q", k, got, ok, v)
		}
	}
	// Second sweep from scratch: nothing left to move or trim.
	if m, tr, err := s.AntiEntropy(); err != nil || m != 0 || tr != 0 {
		t.Fatalf("replay sweep = (%d, %d, %v), want (0, 0, nil)", m, tr, err)
	}
}

func TestAntiEntropyRacesSplitMergeNoLostVersions(t *testing.T) {
	// Concurrent writers, split/merge cycles, and anti-entropy sweeps all
	// race (run under -race in CI). Invariant: every acknowledged write is
	// readable afterwards, and the plane converges to a clean sweep.
	s := newTestSharded(t, ShardedConfig{Seed: 11, MaxOpAttempts: 12, MaxTxnAttempts: 8})
	const (
		writers       = 4
		keysPerWriter = 6
		rounds        = 8
	)
	var mu sync.Mutex
	acked := map[string]string{} // last value each writer got an OK for

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("w%d-k%d", w, r%keysPerWriter)
				v := fmt.Sprintf("w%d.r%d", w, r)
				err := s.Put(context.Background(), k, []byte(v))
				if err != nil {
					// ErrKeyLocked guarantees no effect; anything else
					// would leave the outcome ambiguous and fail below.
					if !errors.Is(err, ErrKeyLocked) {
						mu.Lock()
						acked["__err"] = err.Error()
						mu.Unlock()
					}
					continue
				}
				mu.Lock()
				acked[k] = v
				mu.Unlock()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		splits := []string{"w1", "w2", "w3"}
		for i := 0; i < 6; i++ {
			key := splits[i%len(splits)]
			if i%2 == 0 {
				s.Split(key) //nolint:errcheck — ErrRangeBusy under contention is fine
			} else {
				s.Merge(key) //nolint:errcheck
			}
			s.AntiEntropy() //nolint:errcheck — racing sweep; final sweep below is checked
		}
	}()
	wg.Wait()

	if msg, bad := acked["__err"]; bad {
		t.Fatalf("writer hit unexpected error: %s", msg)
	}
	delete(acked, "__err")

	// Quiesce: drive any crashed/pending topology change home and sweep
	// until clean; then every acked write must be visible.
	if err := s.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	sweepUntilClean(t, s)
	if m, tr, err := s.AntiEntropy(); err != nil || m != 0 || tr != 0 {
		t.Fatalf("post-quiesce sweep = (%d, %d, %v), want (0, 0, nil)", m, tr, err)
	}
	for k, v := range acked {
		got, ok := mustGet(t, s, k)
		if !ok || got != v {
			t.Fatalf("acked write lost: %s = (%q, %v), want %q", k, got, ok, v)
		}
	}
	if n, _ := s.LockCount(); n != 0 {
		t.Fatalf("locks after quiesce = %d, want 0", n)
	}
}
