// dirMachine is the replicated range directory: the authoritative map
// from key spans to range ids, plus the pending split/merge records
// that make topology changes crash-resumable. It runs as the "dir"
// machine on the control group, so routing survives coordinator crashes
// exactly like the data it routes.
//
// A split or merge is a three-phase replicated protocol:
//
//	reserve — allocate the new topology and record a pending change
//	          (no routing change yet; data copy happens in between)
//	commit  — atomically switch routing to the new topology
//	finish  — drop the pending record once cleanup (trim) is done
//
// Any coordinator can re-drive an interrupted change from the pending
// record: every data-plane step in between (freeze, adopt, trim) is
// idempotent, so recovery simply replays the remaining phases.
package kvstore

import "sort"

const (
	dirMachineName = "dir"
	txnMachineName = "txn"
)

// Directory command opcodes.
const (
	dirOpInit         = 0x01 // groups, split points
	dirOpSplitReserve = 0x02 // old range id, split key
	dirOpSplitCommit  = 0x03 // new range id
	dirOpSplitFinish  = 0x04 // new range id
	dirOpSplitAbort   = 0x05 // new range id
	dirOpMergeReserve = 0x06 // left range id
	dirOpMergeCommit  = 0x07 // left range id
	dirOpMergeFinish  = 0x08 // left range id
	dirOpMergeAbort   = 0x09 // left range id
)

// RangeInfo describes one key range [Start, End) (End "" = +inf) and
// the Raft group hosting its machine. Group is derived: a range's
// machine always lives on group ID % Groups, so any node can route to a
// range id without a directory round trip.
type RangeInfo struct {
	ID    uint64
	Start string
	End   string
	Group int
}

// pendingChange is an in-flight split or merge.
type pendingChange struct {
	Split     bool
	Old       uint64 // split: source range; merge: surviving left range
	Right     uint64 // merge: absorbed right range
	New       uint64 // split: newly created range
	Key       string // split point
	Committed bool   // routing switched; only cleanup remains
}

type dirMachine struct {
	groups int
	nextID uint64
	epoch  uint64      // bumped on every routing change
	ranges []RangeInfo // sorted by Start
	pend   []pendingChange
}

func newDirMachine() *dirMachine { return &dirMachine{} }

func (m *dirMachine) rangeIdx(id uint64) int {
	for i, r := range m.ranges {
		if r.ID == id {
			return i
		}
	}
	return -1
}

func (m *dirMachine) pendIdx(match func(pendingChange) bool) int {
	for i, p := range m.pend {
		if match(p) {
			return i
		}
	}
	return -1
}

// touched reports whether any pending change involves range id —
// concurrent topology changes on the same range are serialized by
// refusing the reserve.
func (m *dirMachine) touched(id uint64) bool {
	for _, p := range m.pend {
		if p.Old == id || (!p.Split && p.Right == id) || (p.Split && p.New == id) {
			return true
		}
	}
	return false
}

func (m *dirMachine) Apply(cmd []byte) []byte {
	d := &wdec{buf: cmd}
	op := d.u8()
	switch op {
	case dirOpInit:
		groups := int(d.u32())
		splits := decodeStrs(d)
		if d.err || groups <= 0 {
			return []byte{rspConflict}
		}
		if m.epoch > 0 {
			return []byte{rspOK} // idempotent re-init
		}
		m.groups = groups
		bounds := append([]string{""}, splits...)
		for i, lo := range bounds {
			hi := ""
			if i+1 < len(bounds) {
				hi = bounds[i+1]
			}
			m.ranges = append(m.ranges, RangeInfo{
				ID: uint64(i), Start: lo, End: hi, Group: i % groups,
			})
		}
		m.nextID = uint64(len(bounds))
		m.epoch = 1
		return []byte{rspOK}

	case dirOpSplitReserve:
		old := d.u64()
		key := d.str()
		if d.err {
			return []byte{rspConflict}
		}
		i := m.rangeIdx(old)
		if i < 0 || m.touched(old) {
			return []byte{rspConflict}
		}
		r := m.ranges[i]
		if key <= r.Start || (r.End != "" && key >= r.End) {
			return []byte{rspConflict} // split point must be interior
		}
		newID := m.nextID
		m.nextID++
		m.pend = append(m.pend, pendingChange{Split: true, Old: old, New: newID, Key: key})
		b := wAppendU64([]byte{rspOK}, newID)
		return wAppendU32(b, uint32(newID)%uint32(m.groups))

	case dirOpSplitCommit:
		id := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return p.Split && p.New == id })
		if pi < 0 {
			return []byte{rspOK} // already finished elsewhere
		}
		p := &m.pend[pi]
		if p.Committed {
			return []byte{rspOK}
		}
		oi := m.rangeIdx(p.Old)
		if oi < 0 {
			return []byte{rspConflict}
		}
		oldEnd := m.ranges[oi].End
		m.ranges[oi].End = p.Key
		m.ranges = append(m.ranges, RangeInfo{
			ID: p.New, Start: p.Key, End: oldEnd, Group: int(p.New % uint64(m.groups)),
		})
		sort.Slice(m.ranges, func(a, b int) bool { return m.ranges[a].Start < m.ranges[b].Start })
		p.Committed = true
		m.epoch++
		return []byte{rspOK}

	case dirOpSplitFinish:
		id := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return p.Split && p.New == id })
		if pi < 0 {
			return []byte{rspOK}
		}
		if !m.pend[pi].Committed {
			return []byte{rspConflict} // finish before commit is a protocol bug
		}
		m.pend = append(m.pend[:pi], m.pend[pi+1:]...)
		return []byte{rspOK}

	case dirOpSplitAbort:
		id := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return p.Split && p.New == id })
		if pi < 0 {
			return []byte{rspOK}
		}
		if m.pend[pi].Committed {
			return []byte{rspConflict} // routing already switched; must roll forward
		}
		m.pend = append(m.pend[:pi], m.pend[pi+1:]...)
		return []byte{rspOK}

	case dirOpMergeReserve:
		left := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		li := m.rangeIdx(left)
		if li < 0 || li == len(m.ranges)-1 {
			return []byte{rspConflict} // no right neighbor
		}
		right := m.ranges[li+1]
		if m.touched(left) || m.touched(right.ID) {
			return []byte{rspConflict}
		}
		// Key records the absorbed range's lower bound: after commit the
		// range leaves the routing table, but recovery still needs the
		// bound to retire its machine.
		m.pend = append(m.pend, pendingChange{Old: left, Right: right.ID, Key: right.Start})
		b := wAppendU64([]byte{rspOK}, right.ID)
		b = wAppendU32(b, uint32(right.Group))
		return wAppendStr(b, right.Start)

	case dirOpMergeCommit:
		left := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return !p.Split && p.Old == left })
		if pi < 0 {
			return []byte{rspOK}
		}
		p := &m.pend[pi]
		if p.Committed {
			return []byte{rspOK}
		}
		li := m.rangeIdx(p.Old)
		ri := m.rangeIdx(p.Right)
		if li < 0 || ri < 0 {
			return []byte{rspConflict}
		}
		m.ranges[li].End = m.ranges[ri].End
		m.ranges = append(m.ranges[:ri], m.ranges[ri+1:]...)
		p.Committed = true
		m.epoch++
		return []byte{rspOK}

	case dirOpMergeFinish:
		left := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return !p.Split && p.Old == left })
		if pi < 0 {
			return []byte{rspOK}
		}
		if !m.pend[pi].Committed {
			return []byte{rspConflict}
		}
		m.pend = append(m.pend[:pi], m.pend[pi+1:]...)
		return []byte{rspOK}

	case dirOpMergeAbort:
		left := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		pi := m.pendIdx(func(p pendingChange) bool { return !p.Split && p.Old == left })
		if pi < 0 {
			return []byte{rspOK}
		}
		if m.pend[pi].Committed {
			return []byte{rspConflict}
		}
		m.pend = append(m.pend[:pi], m.pend[pi+1:]...)
		return []byte{rspOK}
	}
	return []byte{rspConflict}
}

// Query-side accessors.

func (m *dirMachine) snapshotRanges() []RangeInfo {
	return append([]RangeInfo(nil), m.ranges...)
}

func (m *dirMachine) pendingChanges() []pendingChange {
	return append([]pendingChange(nil), m.pend...)
}

func (m *dirMachine) epochVal() uint64 { return m.epoch }

func (m *dirMachine) Snapshot() []byte {
	buf := wAppendU32(nil, uint32(m.groups))
	buf = wAppendU64(buf, m.nextID)
	buf = wAppendU64(buf, m.epoch)
	buf = wAppendU32(buf, uint32(len(m.ranges)))
	for _, r := range m.ranges {
		buf = wAppendU64(buf, r.ID)
		buf = wAppendStr(buf, r.Start)
		buf = wAppendStr(buf, r.End)
		buf = wAppendU32(buf, uint32(r.Group))
	}
	buf = wAppendU32(buf, uint32(len(m.pend)))
	for _, p := range m.pend {
		buf = wAppendBool(buf, p.Split)
		buf = wAppendU64(buf, p.Old)
		buf = wAppendU64(buf, p.Right)
		buf = wAppendU64(buf, p.New)
		buf = wAppendStr(buf, p.Key)
		buf = wAppendBool(buf, p.Committed)
	}
	return buf
}

func (m *dirMachine) Restore(snap []byte) {
	d := &wdec{buf: snap}
	m.groups = int(d.u32())
	m.nextID = d.u64()
	m.epoch = d.u64()
	m.ranges = nil
	m.pend = nil
	n := int(d.u32())
	for i := 0; i < n && !d.err; i++ {
		r := RangeInfo{ID: d.u64(), Start: d.str(), End: d.str()}
		r.Group = int(d.u32())
		m.ranges = append(m.ranges, r)
	}
	n = int(d.u32())
	for i := 0; i < n && !d.err; i++ {
		p := pendingChange{Split: d.boolv(), Old: d.u64(), Right: d.u64(), New: d.u64()}
		p.Key = d.str()
		p.Committed = d.boolv()
		m.pend = append(m.pend, p)
	}
}

// Command encoders.

func encDirInit(groups int, splits []string) []byte {
	b := wAppendU32([]byte{dirOpInit}, uint32(groups))
	return appendStrs(b, splits)
}

func encDirSplitReserve(old uint64, key string) []byte {
	b := wAppendU64([]byte{dirOpSplitReserve}, old)
	return wAppendStr(b, key)
}

func encDirU64(op byte, id uint64) []byte { return wAppendU64([]byte{op}, id) }
