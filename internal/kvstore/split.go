// Range split and merge: crash-resumable three-phase topology changes
// (reserve → copy → commit, then trim/finish), driven by the Sharded
// coordinator against the replicated directory. Every data-plane step
// is idempotent, so an interrupted change is re-driven to completion by
// RecoverRanges from the directory's pending record — the same
// roll-forward discipline as transaction recovery.
//
// Splits and merges are fenced against transactions, not the other way
// around: freezing a span with live locks is refused (ErrRangeBusy) and
// the change aborts at the reserve stage, while a transaction touching
// a frozen span gets rspMoved and retries through the directory. A
// split racing an in-flight transaction therefore always resolves —
// one of them backs off, neither blocks, and no key is ever owned by
// zero or two ranges.
package kvstore

import (
	"errors"
	"fmt"

	"repro/internal/ha"
)

// Split carves the range containing key at key: [lo, hi) becomes
// [lo, key) + [key, hi), the new right half living on group newID %
// Groups. Returns ErrRangeBusy when in-flight transactions hold locks
// in the moving span.
func (s *Sharded) Split(key string) error {
	r, err := s.locate(key)
	if err != nil {
		return err
	}
	if key == r.Start {
		return fmt.Errorf("kvstore: split at %q: already a range boundary", key)
	}
	resp, _, err := s.propose(0, dirMachineName, encDirSplitReserve(r.ID, key))
	if err != nil {
		return fmt.Errorf("kvstore: split reserve: %w", err)
	}
	if resp[0] != rspOK {
		return fmt.Errorf("kvstore: split at %q: %w", key, ErrRangeBusy)
	}
	d := &wdec{buf: resp[1:]}
	p := pendingChange{Split: true, Old: r.ID, New: d.u64(), Key: key}
	if s.takeCrash("split") {
		s.Reg.Counter("range_change_orphaned").Inc()
		return ErrTxnOrphaned
	}
	return s.completeSplit(p)
}

// completeSplit drives a reserved split to completion; every step is
// idempotent so recovery can re-enter at any point.
func (s *Sharded) completeSplit(p pendingChange) error {
	oldName, newName := rangeName(p.Old), rangeName(p.New)
	if !p.Committed {
		// Fence [key, +inf) on the source and collect the moving cells.
		resp, _, err := s.propose(s.groupOf(p.Old), oldName, encRmFreeze(p.Key))
		if err != nil {
			return fmt.Errorf("kvstore: split freeze: %w", err)
		}
		if resp[0] == rspConflict {
			// Live locks in the span: abort the reservation cleanly.
			if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpSplitAbort, p.New)); err != nil {
				return err
			}
			return ErrRangeBusy
		}
		d := &wdec{buf: resp[1:]}
		pairs := decodePairs(d)
		// Old bounds of the source tell the new range its upper bound;
		// refresh first so the lookup never sees a stale cache.
		if err := s.refreshDir(); err != nil {
			return err
		}
		var oldHi string
		for _, r := range s.rangesSnapshot() {
			if r.ID == p.Old {
				oldHi = r.End
			}
		}
		if _, _, err := s.propose(s.groupOf(p.New), newName, encRmAdopt(p.Key, oldHi, pairs)); err != nil {
			return fmt.Errorf("kvstore: split adopt: %w", err)
		}
		if s.takeCrash("split-copy") {
			s.Reg.Counter("range_change_orphaned").Inc()
			return ErrTxnOrphaned
		}
		if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpSplitCommit, p.New)); err != nil {
			return fmt.Errorf("kvstore: split commit: %w", err)
		}
		if s.takeCrash("split-commit") {
			s.Reg.Counter("range_change_orphaned").Inc()
			return ErrTxnOrphaned
		}
	}
	// Routing switched: drop the moved span from the source (also lifts
	// its fence by shrinking hi to the split key) and retire the record.
	if _, _, err := s.propose(s.groupOf(p.Old), oldName, encRmTrim(p.Key)); err != nil {
		return fmt.Errorf("kvstore: split trim: %w", err)
	}
	if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpSplitFinish, p.New)); err != nil {
		return err
	}
	s.Reg.Counter("range_splits").Inc()
	return s.refreshDir()
}

// Merge absorbs the range to the right of the range containing key:
// [lo, mid) + [mid, hi) become [lo, hi) on the left range's machine.
func (s *Sharded) Merge(key string) error {
	left, err := s.locate(key)
	if err != nil {
		return err
	}
	resp, _, err := s.propose(0, dirMachineName, encDirU64(dirOpMergeReserve, left.ID))
	if err != nil {
		return fmt.Errorf("kvstore: merge reserve: %w", err)
	}
	if resp[0] != rspOK {
		return fmt.Errorf("kvstore: merge at %q: %w", key, ErrRangeBusy)
	}
	d := &wdec{buf: resp[1:]}
	rightID := d.u64()
	d.u32() // right group (derivable; kept in the response for tooling)
	rightLo := d.str()
	p := pendingChange{Old: left.ID, Right: rightID, Key: rightLo}
	if s.takeCrash("merge") {
		s.Reg.Counter("range_change_orphaned").Inc()
		return ErrTxnOrphaned
	}
	return s.completeMerge(p)
}

// completeMerge drives a reserved merge to completion (idempotent).
func (s *Sharded) completeMerge(p pendingChange) error {
	leftName, rightName := rangeName(p.Old), rangeName(p.Right)
	// The absorbed range's lower bound rides the pending record (p.Key);
	// the other bounds come from the routing table, which still lists
	// both halves until commit. Refresh so the lookup is never stale.
	if !p.Committed {
		if err := s.refreshDir(); err != nil {
			return err
		}
	}
	var leftLo, rightHi string
	for _, r := range s.rangesSnapshot() {
		switch r.ID {
		case p.Old:
			leftLo = r.Start
		case p.Right:
			rightHi = r.End
		}
	}
	if !p.Committed {
		// Fence the entire right range and collect its cells.
		resp, _, err := s.propose(s.groupOf(p.Right), rightName, encRmFreeze(p.Key))
		if err != nil {
			return fmt.Errorf("kvstore: merge freeze: %w", err)
		}
		if resp[0] == rspConflict {
			if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpMergeAbort, p.Old)); err != nil {
				return err
			}
			return ErrRangeBusy
		}
		d := &wdec{buf: resp[1:]}
		pairs := decodePairs(d)
		// Extend the left range's bounds and install the copied cells.
		if _, _, err := s.propose(s.groupOf(p.Old), leftName, encRmAdopt(leftLo, rightHi, pairs)); err != nil {
			return fmt.Errorf("kvstore: merge adopt: %w", err)
		}
		if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpMergeCommit, p.Old)); err != nil {
			return fmt.Errorf("kvstore: merge commit: %w", err)
		}
	}
	// Retire the absorbed machine: trim from its own lower bound leaves
	// it owning the empty span [lo, lo) — every future op gets rspMoved.
	// (p.Key is never "", because the absorbed range always has a left
	// neighbor, so the trim can't accidentally widen hi to +inf.)
	if _, _, err := s.propose(s.groupOf(p.Right), rightName, encRmTrim(p.Key)); err != nil {
		return fmt.Errorf("kvstore: merge retire: %w", err)
	}
	if _, _, err := s.propose(0, dirMachineName, encDirU64(dirOpMergeFinish, p.Old)); err != nil {
		return err
	}
	s.Reg.Counter("range_merges").Inc()
	return s.refreshDir()
}

// RecoverRanges completes every interrupted split/merge recorded in the
// directory. Changes still blocked by live locks abort cleanly (splits)
// or stay pending for the next pass. Returns how many changes resolved.
func (s *Sharded) RecoverRanges() (int, error) {
	var pend []pendingChange
	err := s.groups[0].Query(dirMachineName, func(sm ha.StateMachine) error {
		pend = sm.(*dirMachine).pendingChanges()
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("kvstore: range recovery scan: %w", err)
	}
	if err := s.refreshDir(); err != nil {
		return 0, err
	}
	n := 0
	for _, p := range pend {
		var derr error
		if p.Split {
			derr = s.completeSplit(p)
		} else {
			derr = s.completeMerge(p)
		}
		switch {
		case derr == nil:
			s.Reg.Counter("range_changes_recovered").Inc()
			n++
		case errors.Is(derr, ErrRangeBusy):
			// Aborted (split) or deferred — not a failure.
			n++
		default:
			return n, derr
		}
	}
	return n, nil
}

// AntiEntropy is the sharded plane's repair sweep: complete interrupted
// topology changes, then migrate any out-of-bounds residue (stale cells
// left by crashed migrations or misrouted repairs) to its owning range
// and trim it from the non-owner — newest version wins, tombstones
// travel like writes, and a second sweep over a quiet store is a no-op.
// Returns (cells migrated, cells trimmed).
func (s *Sharded) AntiEntropy() (moved, trimmed int, err error) {
	if _, err := s.RecoverRanges(); err != nil {
		return 0, 0, err
	}
	if err := s.refreshDir(); err != nil {
		return 0, 0, err
	}
	for _, r := range s.rangesSnapshot() {
		var pairs []kvPair
		qerr := s.groups[s.groupOf(r.ID)].Query(rangeName(r.ID), func(sm ha.StateMachine) error {
			pairs = sm.(*rangeMachine).allPairs()
			return nil
		})
		if qerr != nil {
			return moved, trimmed, qerr
		}
		var stray []kvPair
		for _, p := range pairs {
			if p.key < r.Start || (r.End != "" && p.key >= r.End) {
				stray = append(stray, p)
			}
		}
		if len(stray) == 0 {
			continue
		}
		// Route each stray cell to its current owner; skip anything that
		// turns out to be owned here after all (bounds moved mid-sweep).
		byOwner := map[uint64][]kvPair{}
		for _, p := range stray {
			owner, lerr := s.locate(p.key)
			if lerr != nil {
				return moved, trimmed, lerr
			}
			if owner.ID == r.ID {
				continue
			}
			byOwner[owner.ID] = append(byOwner[owner.ID], p)
		}
		ownerIDs := make([]uint64, 0, len(byOwner))
		for id := range byOwner {
			ownerIDs = append(ownerIDs, id)
		}
		sortU64s(ownerIDs)
		var delivered []kvPair
		for _, oid := range ownerIDs {
			if _, _, perr := s.propose(s.groupOf(oid), rangeName(oid), encRmMigrate(byOwner[oid])); perr != nil {
				return moved, trimmed, perr
			}
			moved += len(byOwner[oid])
			delivered = append(delivered, byOwner[oid]...)
		}
		if len(delivered) == 0 {
			continue
		}
		// Trim only what we delivered, guarded by version: a newer cell
		// that raced in since the query survives.
		sortPairs(delivered)
		resp, _, perr := s.propose(s.groupOf(r.ID), rangeName(r.ID), encRmTrimKeys(delivered))
		if perr != nil {
			return moved, trimmed, perr
		}
		d := &wdec{buf: resp[1:]}
		trimmed += int(d.u32())
	}
	s.Reg.Counter("antientropy_moved").Add(int64(moved))
	s.Reg.Counter("antientropy_trimmed").Add(int64(trimmed))
	return moved, trimmed, nil
}

// MaybeSplit splits the largest range at its median live key when it
// holds at least threshold live keys — the size-driven split policy.
// Returns whether a split happened.
func (s *Sharded) MaybeSplit(threshold int) (bool, error) {
	if threshold < 2 {
		threshold = 2
	}
	var best RangeInfo
	bestSize := -1
	for _, r := range s.rangesSnapshot() {
		n, err := s.rangeSize(r)
		if err != nil {
			return false, err
		}
		if n > bestSize {
			best, bestSize = r, n
		}
	}
	if bestSize < threshold {
		return false, nil
	}
	var keys []string
	err := s.groups[s.groupOf(best.ID)].Query(rangeName(best.ID), func(sm ha.StateMachine) error {
		keys = sm.(*rangeMachine).liveKeys()
		return nil
	})
	if err != nil {
		return false, err
	}
	mid := keys[len(keys)/2]
	if mid == best.Start {
		return false, nil // degenerate: all live keys at the boundary
	}
	if err := s.Split(mid); err != nil {
		if errors.Is(err, ErrRangeBusy) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// MaybeMerge merges the smallest adjacent pair of ranges when their
// combined live size is at most threshold — the load-driven merge
// policy. Returns whether a merge happened.
func (s *Sharded) MaybeMerge(threshold int) (bool, error) {
	rs := s.rangesSnapshot()
	if len(rs) < 2 {
		return false, nil
	}
	sizes := make([]int, len(rs))
	for i, r := range rs {
		n, err := s.rangeSize(r)
		if err != nil {
			return false, err
		}
		sizes[i] = n
	}
	bestIdx, bestSum := -1, threshold+1
	for i := 0; i+1 < len(rs); i++ {
		if sum := sizes[i] + sizes[i+1]; sum < bestSum {
			bestIdx, bestSum = i, sum
		}
	}
	if bestIdx < 0 {
		return false, nil
	}
	// Merge keyed by any key of the left range; its Start routes there.
	if err := s.Merge(rs[bestIdx].Start); err != nil {
		if errors.Is(err, ErrRangeBusy) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}
