package kvstore

import (
	"errors"
	"testing"

	"repro/internal/netsim"
	"repro/internal/topology"
)

func TestSuccessorsSkipsExcluded(t *testing.T) {
	r := newRing(5, 16)
	prefs := r.preferenceList("some-key", 3)
	exclude := map[topology.NodeID]bool{}
	for _, n := range prefs {
		exclude[n] = true
	}
	succ, err := r.successors("some-key", exclude, 2)
	if err != nil {
		t.Fatalf("successors: %v", err)
	}
	if len(succ) != 2 {
		t.Fatalf("successors = %v, want 2 nodes", succ)
	}
	for _, n := range succ {
		if exclude[n] {
			t.Fatalf("successors returned excluded node %d", n)
		}
	}
}

func TestSuccessorsExhaustedRingIsTypedError(t *testing.T) {
	r := newRing(3, 8)
	exclude := map[topology.NodeID]bool{0: true, 1: true, 2: true}
	succ, err := r.successors("k", exclude, 1)
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("successors with all nodes excluded = (%v, %v), want ErrNoReplicas", succ, err)
	}
	if len(succ) != 0 {
		t.Fatalf("successors returned nodes alongside error: %v", succ)
	}
	// n == 0 asks for nothing and is not an error.
	if _, err := r.successors("k", exclude, 0); err != nil {
		t.Fatalf("successors(n=0) = %v, want nil", err)
	}
}

func TestWriteSurfacesNoReplicasCause(t *testing.T) {
	// 4 nodes, N=4: the preference list covers the whole ring, so with
	// dead replicas there is no handoff target left and the quorum
	// failure must carry ErrNoReplicas as its cause.
	fab := netsim.NewFabric(topology.TwoTier(1, 4, 1), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 4, R: 2, W: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode(2); err != nil {
		t.Fatal(err)
	}
	if err := s.FailNode(3); err != nil {
		t.Fatal(err)
	}
	_, err = s.Put(0, "k", []byte("v"))
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("Put = %v, want ErrQuorumFailed", err)
	}
	if !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("Put = %v, want ErrNoReplicas cause attached", err)
	}
}

// TestStaleReadInjectionServesOverwrittenVersion pins the quorum
// store's planted fault: under SetStaleReads, replicas serve their
// displaced version and skip read write-back — the behaviour the
// linearizability checker's self-test must catch.
func TestStaleReadInjectionServesOverwrittenVersion(t *testing.T) {
	fab := netsim.NewFabric(topology.TwoTier(1, 4, 1), netsim.RDMA40G)
	s, err := New(Config{Fabric: fab, N: 3, R: 2, W: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Config(); got.N != 3 || got.R != 2 || got.W != 2 {
		t.Fatalf("Config = %+v, want N3 R2 W2", got)
	}
	if _, err := s.Put(0, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(0, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	s.SetStaleReads(true)
	v, _, err := s.Get(0, "k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("stale Get = (%q, %v), want overwritten v1", v, err)
	}
	s.SetStaleReads(false)
	v, _, err = s.Get(0, "k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get after disabling injection = (%q, %v), want v2", v, err)
	}
}
