// Cross-range transactions: two-phase commit over the range machines,
// with the transaction record replicated in the txn machine (see
// txnmachine.go). The protocol, per transaction:
//
//	begin    — replicate the record: participants + write set (pending)
//	prepare  — per range, in sorted range order: take exclusive locks on
//	           every touched key and observe the read values. A lock
//	           conflict aborts immediately (no waiting → no deadlocks)
//	           and the coordinator retries the whole transaction.
//	commit   — replicate tMarkCommit(id, version). THE commit point.
//	apply    — per range: install writes at the commit version, release
//	           locks (idempotent — recovery may replay it).
//	done     — retire the record.
//
// A coordinator crash at any point leaves the replicated record as the
// single source of truth: RecoverTxns aborts pending records (releasing
// their locks) and re-drives committed ones to completion. Locks can
// therefore never leak past a recovery pass, and the commit/abort
// decision is deterministic — exactly one of the two, decided by
// whether tMarkCommit reached the Raft log.
package kvstore

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ha"
)

// errRetryTxn signals the Txn retry loop that the attempt aborted
// cleanly (conflict or stale routing) and should be retried.
var errRetryTxn = errors.New("kvstore: retry transaction")

// txnPart groups one range's share of a transaction.
type txnPart struct {
	lockKeys []string // every touched key, sorted
	readKeys []string // subset to observe
	writes   []rmWrite
}

// Txn atomically reads the `reads` keys and applies `writes` (a nil
// value writes a tombstone). It returns the read values — absent keys
// are omitted from the map — observed at the serialization point.
//
// Error semantics (the capture harness and callers rely on these):
//   - ErrTxnConflict, ErrTxnAborted, ErrDeadlineExceeded: no effect,
//     guaranteed — locks released before returning.
//   - ErrTxnOrphaned: outcome deferred to RecoverTxns (abort or resume).
//   - other errors: outcome unknown (treat as pending).
func (s *Sharded) Txn(ctx context.Context, reads []string, writes map[string][]byte) (map[string][]byte, error) {
	b, err := newOpBudget(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, err
	}
	for attempt := 0; attempt < s.cfg.MaxTxnAttempts; attempt++ {
		res, err := s.tryTxn(b, reads, writes)
		if errors.Is(err, errRetryTxn) {
			s.Reg.Counter("txn_retries").Inc()
			continue
		}
		return res, err
	}
	s.Reg.Counter("txn_conflict_exhausted").Inc()
	return nil, ErrTxnConflict
}

// partition routes the transaction's keys into per-range parts.
func (s *Sharded) partition(reads []string, writes map[string][]byte) (map[uint64]*txnPart, []uint64, error) {
	keys := map[string]bool{}
	for _, k := range reads {
		keys[k] = true
	}
	for k := range writes {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sortStrs(sorted)
	readSet := map[string]bool{}
	for _, k := range reads {
		readSet[k] = true
	}
	parts := map[uint64]*txnPart{}
	for _, k := range sorted {
		r, err := s.locate(k)
		if err != nil {
			return nil, nil, err
		}
		p := parts[r.ID]
		if p == nil {
			p = &txnPart{}
			parts[r.ID] = p
		}
		p.lockKeys = append(p.lockKeys, k)
		if readSet[k] {
			p.readKeys = append(p.readKeys, k)
		}
		if v, ok := writes[k]; ok {
			p.writes = append(p.writes, rmWrite{Key: k, Val: v, Del: v == nil})
		}
	}
	ids := make([]uint64, 0, len(parts))
	for id := range parts {
		ids = append(ids, id)
	}
	sortU64s(ids)
	return parts, ids, nil
}

func (s *Sharded) tryTxn(b *opBudget, reads []string, writes map[string][]byte) (map[string][]byte, error) {
	if b.exhausted() {
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, ErrDeadlineExceeded
	}
	parts, partIDs, err := s.partition(reads, writes)
	if err != nil {
		return nil, err
	}
	var flatWrites []rmWrite
	for _, id := range partIDs {
		flatWrites = append(flatWrites, parts[id].writes...)
	}
	id := s.nextTxnID()

	// 1. Replicate the transaction record.
	resp, c, err := s.propose(0, txnMachineName, encTxBegin(id, partIDs, flatWrites))
	if err != nil {
		// The record may or may not exist; either way nothing is locked
		// and nothing can commit it — recovery retires it as aborted.
		return nil, fmt.Errorf("kvstore: txn %d begin: %w", id, ErrTxnOrphaned)
	}
	if resp[0] != rspOK {
		return nil, fmt.Errorf("kvstore: txn %d begin: status %d", id, resp[0])
	}
	if cerr := b.charge(c); cerr != nil {
		s.abortTxn(id, nil)
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, cerr
	}
	if s.takeCrash("begin") {
		s.Reg.Counter("txn_orphaned").Inc()
		return nil, ErrTxnOrphaned
	}

	// 2. Prepare every participant in sorted range order.
	readVals := map[string][]byte{}
	var prepared []uint64
	for _, rid := range partIDs {
		p := parts[rid]
		resp, c, err := s.propose(s.groupOf(rid), rangeName(rid), encRmPrepare(id, s.dirtyReads(), p.lockKeys, p.readKeys))
		if err != nil {
			// Unknown outcome: this range may hold our locks.
			s.Reg.Counter("txn_orphaned").Inc()
			return nil, fmt.Errorf("kvstore: txn %d prepare range %d: %w", id, rid, ErrTxnOrphaned)
		}
		switch resp[0] {
		case rspOK:
			d := &wdec{buf: resp[1:]}
			for _, r := range decodeReads(d, p.readKeys) {
				if r.Found {
					readVals[r.Key] = r.Val
				}
			}
			prepared = append(prepared, rid)
		case rspConflict, rspLocked:
			s.Reg.Counter("txn_conflicts").Inc()
			s.abortTxn(id, prepared)
			return nil, errRetryTxn
		case rspMoved:
			s.Reg.Counter("txn_moved").Inc()
			s.abortTxn(id, prepared)
			if err := s.refreshDir(); err != nil {
				return nil, err
			}
			return nil, errRetryTxn
		case rspAborted:
			// Recovery raced us and aborted the record; earlier locks
			// are already released by its rAbort pass.
			return nil, ErrTxnAborted
		default:
			s.abortTxn(id, prepared)
			return nil, fmt.Errorf("kvstore: txn %d prepare range %d: status %d", id, rid, resp[0])
		}
		if cerr := b.charge(c); cerr != nil {
			s.abortTxn(id, prepared)
			s.Reg.Counter("deadline_exceeded").Inc()
			return nil, cerr
		}
		if s.takeCrash("prepare") {
			s.Reg.Counter("txn_orphaned").Inc()
			return nil, ErrTxnOrphaned
		}
	}
	if s.takeCrash("before-commit") {
		s.Reg.Counter("txn_orphaned").Inc()
		return nil, ErrTxnOrphaned
	}
	if b.exhausted() {
		// Last budget check before the point of no return: abort clean.
		s.abortTxn(id, prepared)
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, ErrDeadlineExceeded
	}

	// 3. Commit point: one replicated record flips the transaction from
	// abortable to unabortable.
	ver := s.nextVersion()
	resp, c, err = s.propose(0, txnMachineName, encTxCommit(id, ver))
	if err != nil {
		// The commit record may or may not be in the log — the classic
		// "partition spanning the commit point". Only recovery, reading
		// the replicated record, can tell.
		s.Reg.Counter("txn_orphaned").Inc()
		return nil, fmt.Errorf("kvstore: txn %d commit: %w", id, ErrTxnOrphaned)
	}
	if resp[0] == rspAborted {
		return nil, ErrTxnAborted
	}
	b.charge(c) // post-commit: account but never abandon
	s.Reg.Counter("txn_committed").Inc()
	if s.takeCrash("commit") {
		s.Reg.Counter("txn_orphaned").Inc()
		return nil, ErrTxnOrphaned
	}

	// 4. Apply on every participant, then retire the record. Failures
	// here leave a committed record that recovery re-drives.
	for _, rid := range partIDs {
		resp, _, err := s.propose(s.groupOf(rid), rangeName(rid), encRmApply(id, ver, parts[rid].writes))
		if err != nil || resp[0] != rspOK {
			s.Reg.Counter("txn_orphaned").Inc()
			return nil, fmt.Errorf("kvstore: txn %d apply range %d: %w", id, rid, ErrTxnOrphaned)
		}
		if s.takeCrash("apply") {
			s.Reg.Counter("txn_orphaned").Inc()
			return nil, ErrTxnOrphaned
		}
	}
	if _, _, err := s.propose(0, txnMachineName, encTxDone(id)); err != nil {
		// Effects are fully applied; the lingering record is retired by
		// the next recovery pass. The transaction still succeeded.
		s.Reg.Counter("txn_done_deferred").Inc()
	}
	return readVals, nil
}

// abortTxn cleanly aborts an attempt: mark the record aborted, release
// locks on every prepared range, retire the record. Errors are ignored
// — recovery finishes whatever this pass could not.
func (s *Sharded) abortTxn(id uint64, prepared []uint64) {
	if resp, _, err := s.propose(0, txnMachineName, encTxAbort(id)); err != nil || resp[0] == rspCommitted {
		return // unreachable record or already committed: recovery's job
	}
	for _, rid := range prepared {
		s.propose(s.groupOf(rid), rangeName(rid), encRmAbort(id)) //nolint:errcheck
	}
	s.propose(0, txnMachineName, encTxDone(id)) //nolint:errcheck
	s.Reg.Counter("txn_aborted").Inc()
}

// TxnRecovery reports what RecoverTxns resolved.
type TxnRecovery struct {
	// Resumed transactions had a commit record: their writes were
	// re-applied to every participant and the record retired.
	Resumed int
	// Aborted transactions were still pending: every participant's
	// locks were released and the record retired.
	Aborted int
}

// RecoverTxns scans the replicated transaction table and resolves every
// record: pending → abort, committed → resume. Idempotent — a recovery
// pass that itself crashes is simply re-run; every step it replays is a
// no-op on ranges that already saw it.
func (s *Sharded) RecoverTxns() (TxnRecovery, error) {
	var out TxnRecovery
	var recs []txnRecSnap
	err := s.groups[0].Query(txnMachineName, func(sm ha.StateMachine) error {
		recs = sm.(*txnMachine).snapshotRecs()
		return nil
	})
	if err != nil {
		return out, fmt.Errorf("kvstore: txn recovery scan: %w", err)
	}
	for _, rec := range recs {
		switch rec.Status {
		case txnStPending:
			// Abort-first: replicating the abort decision closes the
			// race with a live coordinator — its tMarkCommit afterwards
			// gets rspAborted and it gives up.
			resp, _, err := s.propose(0, txnMachineName, encTxAbort(rec.ID))
			if err != nil {
				return out, fmt.Errorf("kvstore: recover txn %d: %w", rec.ID, err)
			}
			if resp[0] == rspCommitted {
				// The coordinator committed between our scan and now.
				d := &wdec{buf: resp[1:]}
				rec.Ver = d.u64()
				if err := s.resumeTxn(rec); err != nil {
					return out, err
				}
				out.Resumed++
				continue
			}
			for _, rid := range rec.Parts {
				if _, _, err := s.propose(s.groupOf(rid), rangeName(rid), encRmAbort(rec.ID)); err != nil {
					return out, fmt.Errorf("kvstore: recover txn %d abort range %d: %w", rec.ID, rid, err)
				}
			}
			if _, _, err := s.propose(0, txnMachineName, encTxDone(rec.ID)); err != nil {
				return out, err
			}
			s.Reg.Counter("txn_recovered_aborted").Inc()
			out.Aborted++
		case txnStCommitted:
			if err := s.resumeTxn(rec); err != nil {
				return out, err
			}
			out.Resumed++
		case txnStAborted:
			// A previous recovery pass crashed mid-abort: finish it.
			for _, rid := range rec.Parts {
				if _, _, err := s.propose(s.groupOf(rid), rangeName(rid), encRmAbort(rec.ID)); err != nil {
					return out, err
				}
			}
			if _, _, err := s.propose(0, txnMachineName, encTxDone(rec.ID)); err != nil {
				return out, err
			}
			s.Reg.Counter("txn_recovered_aborted").Inc()
			out.Aborted++
		}
	}
	return out, nil
}

// resumeTxn re-drives a committed transaction to completion. The write
// set is routed through the current directory — safe because every
// touched key is still locked by this txn, and ranges with locks cannot
// have split or merged away from under it (freeze refuses spans with
// live locks).
func (s *Sharded) resumeTxn(rec txnRecSnap) error {
	byRange := map[uint64][]rmWrite{}
	for _, w := range rec.Writes {
		r, err := s.locate(w.Key)
		if err != nil {
			return err
		}
		byRange[r.ID] = append(byRange[r.ID], w)
	}
	// Apply to every recorded participant — including read-only ones,
	// whose locks must be released too.
	for _, rid := range rec.Parts {
		resp, _, err := s.propose(s.groupOf(rid), rangeName(rid), encRmApply(rec.ID, rec.Ver, byRange[rid]))
		if err != nil {
			return fmt.Errorf("kvstore: resume txn %d range %d: %w", rec.ID, rid, err)
		}
		if resp[0] != rspOK {
			return fmt.Errorf("kvstore: resume txn %d range %d: status %d", rec.ID, rid, resp[0])
		}
	}
	if _, _, err := s.propose(0, txnMachineName, encTxDone(rec.ID)); err != nil {
		return err
	}
	s.Reg.Counter("txn_recovered_resumed").Inc()
	return nil
}
