// Package kvstore is a Dynamo-style distributed key-value store: keys are
// placed on a consistent-hash ring with virtual nodes, replicated to N
// physical nodes, and read/written under (R, W) quorums with read repair
// and hinted handoff. Operation latency is charged against the cluster's
// network fabric so the quorum-vs-latency trade-off (experiment E5) is
// measurable without a testbed.
package kvstore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/topology"
)

// ErrNoReplicas reports that a ring walk found no eligible physical node:
// every candidate was excluded. Callers must treat this as a hard routing
// failure rather than silently proceeding with a shrunken replica set.
var ErrNoReplicas = errors.New("kvstore: no eligible replicas on ring")

// ring is a consistent-hash ring with virtual nodes. Immutable after build.
type ring struct {
	points []ringPoint // sorted by hash
	nodes  int
}

type ringPoint struct {
	hash uint64
	node topology.NodeID
}

// newRing places vnodes virtual points per physical node.
func newRing(nodes, vnodes int) *ring {
	r := &ring{nodes: nodes}
	for n := 0; n < nodes; n++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hashString(fmt.Sprintf("node-%d-vnode-%d", n, v)),
				node: topology.NodeID(n),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix(h.Sum64())
}

// mix is the SplitMix64 finalizer; FNV alone clusters badly on the short,
// similar strings vnode labels are made of.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// preferenceList returns the first n distinct physical nodes clockwise from
// key's hash — the replica set in ring order.
func (r *ring) preferenceList(key string, n int) []topology.NodeID {
	if n > r.nodes {
		n = r.nodes
	}
	h := hashString(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[topology.NodeID]bool{}
	var out []topology.NodeID
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// successors returns up to n distinct physical nodes clockwise from the
// preference list's end, excluding the given set — the hinted-handoff
// targets. When n > 0 and every physical node is excluded it returns
// ErrNoReplicas so the caller can surface the exhausted ring instead of
// quietly operating on fewer replicas than requested.
func (r *ring) successors(key string, exclude map[topology.NodeID]bool, n int) ([]topology.NodeID, error) {
	h := hashString(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[topology.NodeID]bool{}
	var out []topology.NodeID
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if exclude[p.node] || seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	if n > 0 && len(out) == 0 {
		return nil, ErrNoReplicas
	}
	return out, nil
}
