package kvstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Errors returned by store operations.
var (
	ErrNotFound      = errors.New("kvstore: key not found")
	ErrQuorumFailed  = errors.New("kvstore: quorum unavailable")
	ErrBadQuorum     = errors.New("kvstore: invalid N/R/W configuration")
	ErrUnknownNode   = errors.New("kvstore: unknown node")
	ErrStoreDegraded = errors.New("kvstore: too few live nodes")
)

// Config configures a Store.
type Config struct {
	// Fabric supplies topology and network cost accounting; required.
	Fabric *netsim.Fabric
	// N is the replica count; R and W the read/write quorum sizes.
	// Strong read-your-writes requires R+W > N. Defaults: N=3, R=2, W=2.
	N, R, W int
	// VNodes is the virtual node count per physical node (default 64).
	VNodes int
}

type versioned struct {
	value     []byte
	version   int64
	tombstone bool
}

type replica struct {
	mu   sync.RWMutex
	data map[string]versioned
	// prev retains the overwritten version of each key. It exists only
	// to power the stale-read fault injection (Store.SetStaleReads),
	// the deliberate linearizability violation the checker's self-test
	// must catch.
	prev map[string]versioned
}

func (rp *replica) get(key string) (versioned, bool) {
	rp.mu.RLock()
	defer rp.mu.RUnlock()
	v, ok := rp.data[key]
	return v, ok
}

// getPrev returns the last overwritten version of key, if any.
func (rp *replica) getPrev(key string) (versioned, bool) {
	rp.mu.RLock()
	defer rp.mu.RUnlock()
	v, ok := rp.prev[key]
	return v, ok
}

// put stores v if it is newer than what the replica holds, retaining
// the displaced version for the stale-read fault injection.
func (rp *replica) put(key string, v versioned) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	if cur, ok := rp.data[key]; !ok || v.version > cur.version {
		if ok {
			rp.prev[key] = cur
		}
		rp.data[key] = v
	}
}

type hint struct {
	key  string
	v    versioned
	for_ topology.NodeID
}

// Store is the full cluster: ring, replicas, failure state and metrics.
// Safe for concurrent use.
type Store struct {
	cfg     Config
	ring    *ring
	replica []*replica

	mu    sync.Mutex // guards alive, hints, clock, stale
	alive []bool
	hints map[topology.NodeID][]hint // held-by-node -> hints it carries
	clock int64
	stale bool // fault injection: serve overwritten versions (SetStaleReads)

	// Metrics observed by the experiments.
	Reg *metrics.Registry
}

// New builds a store across every node of the fabric's topology.
func New(cfg Config) (*Store, error) {
	if cfg.Fabric == nil {
		return nil, errors.New("kvstore: Config.Fabric is required")
	}
	size := cfg.Fabric.Topology().Size()
	if cfg.N <= 0 {
		cfg.N = 3
	}
	if cfg.R <= 0 {
		cfg.R = 2
	}
	if cfg.W <= 0 {
		cfg.W = 2
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.N > size {
		cfg.N = size
	}
	if cfg.R > cfg.N || cfg.W > cfg.N {
		return nil, fmt.Errorf("%w: N=%d R=%d W=%d", ErrBadQuorum, cfg.N, cfg.R, cfg.W)
	}
	s := &Store{
		cfg:     cfg,
		ring:    newRing(size, cfg.VNodes),
		replica: make([]*replica, size),
		alive:   make([]bool, size),
		hints:   map[topology.NodeID][]hint{},
		Reg:     metrics.NewRegistry(),
	}
	for i := range s.replica {
		s.replica[i] = &replica{data: map[string]versioned{}, prev: map[string]versioned{}}
		s.alive[i] = true
	}
	return s, nil
}

// SetStaleReads toggles a deliberate fault: reads serve each replica's
// previously overwritten version when one exists, and skip the
// read-back that makes reads linearizable. This exists so the
// linearizability checker's self-test can prove it has teeth — a
// sequential put/put/get under stale reads yields a history with no
// sequential witness.
func (s *Store) SetStaleReads(enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stale = enabled
}

func (s *Store) staleReads() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stale
}

// Config returns the effective configuration.
func (s *Store) Config() Config { return s.cfg }

// nextVersion issues a monotonically increasing version (a Lamport-style
// coordinator clock; sufficient because all coordinators share a process).
func (s *Store) nextVersion() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	return s.clock
}

func (s *Store) isAlive(n topology.NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alive[n]
}

// Put writes key=value from the given coordinator node. It returns the
// simulated client latency: the W-th fastest replica acknowledgement
// (writes fan out in parallel). Hinted handoff covers dead replicas.
func (s *Store) Put(coordinator topology.NodeID, key string, value []byte) (time.Duration, error) {
	return s.write(coordinator, key, versioned{value: append([]byte(nil), value...), version: s.nextVersion()})
}

// Delete writes a tombstone.
func (s *Store) Delete(coordinator topology.NodeID, key string) (time.Duration, error) {
	return s.write(coordinator, key, versioned{tombstone: true, version: s.nextVersion()})
}

func (s *Store) write(coordinator topology.NodeID, key string, v versioned) (time.Duration, error) {
	prefs := s.ring.preferenceList(key, s.cfg.N)
	var acks []time.Duration
	var deadTargets []topology.NodeID
	for _, n := range prefs {
		if s.isAlive(n) {
			s.replica[n].put(key, v)
			acks = append(acks, s.rtt(coordinator, n, int64(len(v.value))))
		} else {
			deadTargets = append(deadTargets, n)
		}
	}
	// Hinted handoff: sloppy quorum via ring successors. An exhausted
	// ring (ErrNoReplicas) means no handoff target exists outside the
	// preference list; the quorum check below then decides the outcome
	// with that cause attached rather than a silently shrunken quorum.
	var handoffErr error
	if len(deadTargets) > 0 {
		exclude := map[topology.NodeID]bool{}
		for _, n := range prefs {
			exclude[n] = true
		}
		succ, err := s.ring.successors(key, exclude, len(deadTargets))
		if err != nil {
			handoffErr = err
			s.Reg.Counter("handoff_no_replicas").Inc()
		}
		for i, holder := range succ {
			if i >= len(deadTargets) || !s.isAlive(holder) {
				continue
			}
			s.mu.Lock()
			s.hints[holder] = append(s.hints[holder], hint{key: key, v: v, for_: deadTargets[i]})
			s.mu.Unlock()
			s.replica[holder].put(key, v) // sloppy replica also serves reads
			acks = append(acks, s.rtt(coordinator, holder, int64(len(v.value))))
			s.Reg.Counter("hinted_handoffs").Inc()
		}
	}
	if len(acks) < s.cfg.W {
		s.Reg.Counter("put_failures").Inc()
		if handoffErr != nil {
			return 0, fmt.Errorf("%w: %d/%d write acks: %w", ErrQuorumFailed, len(acks), s.cfg.W, handoffErr)
		}
		return 0, fmt.Errorf("%w: %d/%d write acks", ErrQuorumFailed, len(acks), s.cfg.W)
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] < acks[j] })
	lat := acks[s.cfg.W-1]
	s.Reg.Histogram("put_latency_ns").ObserveDuration(lat)
	return lat, nil
}

// Get reads key from the given coordinator node, contacting R live
// replicas and returning the newest version. The latency is the R-th
// fastest replica response (reads fan out in parallel).
//
// Before returning, the winning version is written back to every live
// replica in the preference list that lacks it (read repair, upgraded
// to the ABD second phase): once a read returns version v, every
// subsequent read observes a version >= v, which closes the read-read
// inversion a concurrent, partially applied write could otherwise
// expose. The linearizability checker (internal/check) verifies exactly
// this property against captured histories.
func (s *Store) Get(coordinator topology.NodeID, key string) ([]byte, time.Duration, error) {
	stale := s.staleReads()
	prefs := s.ring.preferenceList(key, s.cfg.N)
	type resp struct {
		node topology.NodeID
		v    versioned
		ok   bool
		lat  time.Duration
	}
	var resps []resp
	for _, n := range prefs {
		if !s.isAlive(n) {
			continue
		}
		v, ok := s.replica[n].get(key)
		if stale {
			// Fault injection: serve the overwritten version if the
			// replica retains one (see SetStaleReads).
			if pv, pok := s.replica[n].getPrev(key); pok {
				v, ok = pv, true
			}
		}
		sz := int64(64)
		if ok {
			sz += int64(len(v.value))
		}
		resps = append(resps, resp{node: n, v: v, ok: ok, lat: s.rtt(coordinator, n, sz)})
	}
	if len(resps) < s.cfg.R {
		s.Reg.Counter("get_failures").Inc()
		return nil, 0, fmt.Errorf("%w: %d/%d read responses", ErrQuorumFailed, len(resps), s.cfg.R)
	}
	// Contact the R fastest replicas (closest-first fan-out).
	sort.Slice(resps, func(i, j int) bool { return resps[i].lat < resps[j].lat })
	contacted := resps[:s.cfg.R]
	lat := contacted[s.cfg.R-1].lat

	// Resolve: newest version among contacted replicas wins.
	var newest versioned
	found := false
	for _, r := range contacted {
		if r.ok && r.v.version > newest.version {
			newest = r.v
			found = true
		}
	}
	// Read write-back: the winning version must be durable at every
	// live preference replica before the read returns (the stale-read
	// fault skips this, which is part of what makes it a fault).
	if found && !stale {
		for _, r := range resps {
			if !r.ok || r.v.version < newest.version {
				s.replica[r.node].put(key, newest)
				s.Reg.Counter("read_repairs").Inc()
			}
		}
	}
	s.Reg.Histogram("get_latency_ns").ObserveDuration(lat)
	if !found || newest.tombstone {
		return nil, lat, ErrNotFound
	}
	return append([]byte(nil), newest.value...), lat, nil
}

// rtt models one request/response exchange between coordinator and replica.
func (s *Store) rtt(a, b topology.NodeID, bytes int64) time.Duration {
	// Request is small; response carries the payload. Add a fixed server
	// processing cost so even local operations take nonzero time.
	const serverCost = 2 * time.Microsecond
	return s.cfg.Fabric.Cost(a, b, 64) + s.cfg.Fabric.Cost(b, a, bytes) + serverCost
}

// FailNode marks a node down. Subsequent operations route around it.
func (s *Store) FailNode(n topology.NodeID) error {
	if int(n) < 0 || int(n) >= len(s.alive) {
		return ErrUnknownNode
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.alive[n] = false
	return nil
}

// RecoverNode revives a node and delivers any hints held for it.
func (s *Store) RecoverNode(n topology.NodeID) error {
	if int(n) < 0 || int(n) >= len(s.alive) {
		return ErrUnknownNode
	}
	s.mu.Lock()
	s.alive[n] = true
	// Collect hints destined for n from every holder.
	var deliver []hint
	for holder, hs := range s.hints {
		var keep []hint
		for _, h := range hs {
			if h.for_ == n {
				deliver = append(deliver, h)
			} else {
				keep = append(keep, h)
			}
		}
		s.hints[holder] = keep
	}
	s.mu.Unlock()
	for _, h := range deliver {
		s.replica[n].put(h.key, h.v)
		s.Reg.Counter("hints_delivered").Inc()
	}
	return nil
}

// PendingHints returns the number of undelivered hinted writes.
func (s *Store) PendingHints() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, hs := range s.hints {
		total += len(hs)
	}
	return total
}

// ReplicaCount returns how many replicas currently hold key (live or dead),
// for placement tests.
func (s *Store) ReplicaCount(key string) int {
	count := 0
	for _, rp := range s.replica {
		if _, ok := rp.get(key); ok {
			count++
		}
	}
	return count
}
