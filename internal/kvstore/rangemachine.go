// rangeMachine is the replicated state machine behind one key range of
// the sharded data plane. Each range is a deterministic LWW-versioned
// map plus a transaction lock table, replicated as a named machine
// ("range-<id>") on a 3-member Raft group (internal/ha). All mutation
// goes through Apply, so the three replicas stay byte-identical; the
// Sharded coordinator talks to it only via Propose/Query.
//
// The machine knows its own key bounds [lo, hi). Every client-facing
// command (put/get/del/prepare) is bounds-checked, which is what makes
// splits and merges safe against stale client routing caches: after a
// split trims this machine, a client still routing an old key here gets
// rspMoved and refreshes its directory — the write is never silently
// accepted by a non-owner.
package kvstore

// Range command opcodes (first byte of every Apply payload).
const (
	rmOpPut      = 0x01 // key, ver, val
	rmOpGet      = 0x02 // key, dirty
	rmOpDel      = 0x03 // key, ver
	rmOpPrepare  = 0x04 // txn, dirty, lockKeys, readKeys
	rmOpApply    = 0x05 // txn, ver, writes
	rmOpAbort    = 0x06 // txn
	rmOpAdopt    = 0x07 // lo, hi, pairs — set bounds + LWW upsert
	rmOpFreeze   = 0x08 // from — fence [from, +inf), return its pairs
	rmOpTrim     = 0x09 // from — delete [from, +inf), shrink hi
	rmOpMigrate  = 0x0a // pairs — LWW upsert (anti-entropy repair)
	rmOpTrimKeys = 0x0b // (key, maxVer) list — conditional delete
)

// Response status codes, shared by the range, directory and txn
// machines (first byte of every Apply response).
const (
	rspOK        = 0x00
	rspMoved     = 0x01 // key outside bounds or fenced by a freeze
	rspLocked    = 0x02 // key locked by another in-flight transaction
	rspConflict  = 0x03 // prepare/freeze/reserve lost a conflict check
	rspAborted   = 0x04 // transaction already finished as aborted
	rspCommitted = 0x05 // transaction already finished as committed
)

// Transaction terminal states recorded per range (dedup + late-message
// guard: a prepare arriving after recovery aborted the txn is refused).
const (
	txnApplied byte = 1
	txnAborted byte = 2
)

// rval is one versioned cell. dead marks a tombstone: versioned
// deletions must round-trip through freeze/migrate or a merged range
// could resurrect a deleted key from a stale live copy.
type rval struct {
	val  []byte
	ver  uint64
	dead bool
}

// kvPair is a key plus its cell, the unit of range migration.
type kvPair struct {
	key string
	rval
}

// rmWrite is one write inside a transaction.
type rmWrite struct {
	Key string
	Val []byte
	Del bool
}

// rmRead is one observed value from a prepare.
type rmRead struct {
	Key   string
	Val   []byte
	Found bool
}

type rangeMachine struct {
	lo, hi string // owned bounds [lo, hi); hi "" = +inf
	init   bool   // bounds assigned (adopt seen)
	fenced bool   // split/merge in progress: [fence, +inf) refused
	fence  string

	data  map[string]rval
	prev  map[string]rval   // last overwritten cell per key (dirty reads)
	locks map[string]uint64 // key -> owning txn id
	done  map[uint64]byte   // txn id -> txnApplied | txnAborted
}

func newRangeMachine() *rangeMachine {
	return &rangeMachine{
		data:  map[string]rval{},
		prev:  map[string]rval{},
		locks: map[string]uint64{},
		done:  map[uint64]byte{},
	}
}

// owns reports whether key is inside the machine's current bounds and
// not fenced by an in-progress split/merge.
func (m *rangeMachine) owns(key string) bool {
	if !m.init || key < m.lo || (m.hi != "" && key >= m.hi) {
		return false
	}
	if m.fenced && key >= m.fence {
		return false
	}
	return true
}

// upsert installs a cell if it is newer than the current one, retaining
// the overwritten cell in prev. Returns whether it was installed.
func (m *rangeMachine) upsert(key string, v rval) bool {
	cur, ok := m.data[key]
	if ok && v.ver <= cur.ver {
		return false
	}
	if ok {
		m.prev[key] = cur
	}
	m.data[key] = v
	return true
}

func (m *rangeMachine) Apply(cmd []byte) []byte {
	d := &wdec{buf: cmd}
	op := d.u8()
	switch op {
	case rmOpPut, rmOpDel:
		key := d.str()
		ver := d.u64()
		var val []byte
		if op == rmOpPut {
			val = d.blob()
		}
		if d.err {
			return []byte{rspConflict}
		}
		if !m.owns(key) {
			return []byte{rspMoved}
		}
		if owner, locked := m.locks[key]; locked {
			return wAppendU64([]byte{rspLocked}, owner)
		}
		m.upsert(key, rval{val: val, ver: ver, dead: op == rmOpDel})
		return []byte{rspOK}

	case rmOpGet:
		key := d.str()
		dirty := d.boolv()
		if d.err {
			return []byte{rspConflict}
		}
		if !m.owns(key) {
			return []byte{rspMoved}
		}
		if _, locked := m.locks[key]; locked && !dirty {
			return []byte{rspLocked}
		}
		return m.readResp(key, dirty)

	case rmOpPrepare:
		return m.applyPrepare(d)
	case rmOpApply:
		return m.applyCommit(d)
	case rmOpAbort:
		txn := d.u64()
		if d.err {
			return []byte{rspConflict}
		}
		if m.done[txn] == txnApplied {
			return []byte{rspCommitted}
		}
		m.releaseLocks(txn)
		m.done[txn] = txnAborted
		return []byte{rspOK}

	case rmOpAdopt:
		lo, hi := d.str(), d.str()
		pairs := decodePairs(d)
		if d.err {
			return []byte{rspConflict}
		}
		m.lo, m.hi, m.init = lo, hi, true
		installed := uint32(0)
		for _, p := range pairs {
			if m.upsert(p.key, p.rval) {
				installed++
			}
		}
		return wAppendU32([]byte{rspOK}, installed)

	case rmOpFreeze:
		from := d.str()
		if d.err {
			return []byte{rspConflict}
		}
		if m.fenced && m.fence != from {
			return []byte{rspConflict}
		}
		for k := range m.locks {
			if k >= from {
				return []byte{rspConflict} // in-flight txn holds the span
			}
		}
		m.fenced, m.fence = true, from
		resp := []byte{rspOK}
		return appendPairs(resp, m.pairsFrom(from))

	case rmOpTrim:
		from := d.str()
		if d.err {
			return []byte{rspConflict}
		}
		n := uint32(0)
		for k := range m.data {
			if k >= from {
				delete(m.data, k)
				delete(m.prev, k)
				n++
			}
		}
		for k := range m.prev {
			if k >= from {
				delete(m.prev, k)
			}
		}
		m.hi = from
		if m.fenced && m.fence == from {
			m.fenced, m.fence = false, ""
		}
		return wAppendU32([]byte{rspOK}, n)

	case rmOpMigrate:
		pairs := decodePairs(d)
		if d.err {
			return []byte{rspConflict}
		}
		installed := uint32(0)
		for _, p := range pairs {
			if m.upsert(p.key, p.rval) {
				installed++
			}
		}
		return wAppendU32([]byte{rspOK}, installed)

	case rmOpTrimKeys:
		n := int(d.u32())
		removed := uint32(0)
		for i := 0; i < n && !d.err; i++ {
			key := d.str()
			maxVer := d.u64()
			if d.err {
				break
			}
			if cur, ok := m.data[key]; ok && cur.ver <= maxVer {
				delete(m.data, key)
				delete(m.prev, key)
				removed++
			}
		}
		return wAppendU32([]byte{rspOK}, removed)
	}
	return []byte{rspConflict}
}

// applyPrepare locks the txn's keys (all-or-nothing within this range)
// and returns the observed read values. Conflicts abort immediately —
// no lock waiting, so cross-range deadlock is impossible by
// construction and contention resolves by coordinator retry.
func (m *rangeMachine) applyPrepare(d *wdec) []byte {
	txn := d.u64()
	dirty := d.boolv()
	lockKeys := decodeStrs(d)
	readKeys := decodeStrs(d)
	if d.err {
		return []byte{rspConflict}
	}
	switch m.done[txn] {
	case txnAborted:
		// Recovery already aborted this txn (coordinator presumed dead);
		// refusing the late prepare keeps its locks from resurrecting.
		return []byte{rspAborted}
	case txnApplied:
		return []byte{rspCommitted}
	}
	for _, k := range lockKeys {
		if !m.owns(k) {
			return []byte{rspMoved}
		}
		if owner, locked := m.locks[k]; locked && owner != txn {
			return []byte{rspConflict}
		}
	}
	for _, k := range lockKeys {
		m.locks[k] = txn
	}
	resp := wAppendU32([]byte{rspOK}, uint32(len(readKeys)))
	for _, k := range readKeys {
		resp = append(resp, m.readResp(k, dirty)[1:]...)
	}
	return resp
}

// applyCommit installs a committed txn's writes at the commit version
// and releases its locks. Idempotent: recovery may replay it.
func (m *rangeMachine) applyCommit(d *wdec) []byte {
	txn := d.u64()
	ver := d.u64()
	writes := decodeWrites(d)
	if d.err {
		return []byte{rspConflict}
	}
	if m.done[txn] == txnApplied {
		return []byte{rspOK}
	}
	for _, w := range writes {
		m.upsert(w.Key, rval{val: w.Val, ver: ver, dead: w.Del})
	}
	m.releaseLocks(txn)
	m.done[txn] = txnApplied
	return []byte{rspOK}
}

func (m *rangeMachine) releaseLocks(txn uint64) {
	for k, owner := range m.locks {
		if owner == txn {
			delete(m.locks, k)
		}
	}
}

// readResp renders a cell as status+found+value. A dirty read serves
// the retained overwritten cell when one exists — the deliberately
// broken isolation mode that proves the txn checker has teeth.
func (m *rangeMachine) readResp(key string, dirty bool) []byte {
	cell, ok := m.data[key]
	if dirty {
		if p, stale := m.prev[key]; stale {
			cell, ok = p, true
		}
	}
	resp := []byte{rspOK}
	found := ok && !cell.dead
	resp = wAppendBool(resp, found)
	if found {
		return wAppendBlob(resp, cell.val)
	}
	return wAppendBlob(resp, nil)
}

// pairsFrom returns the cells (tombstones included) at or above from,
// in sorted key order.
func (m *rangeMachine) pairsFrom(from string) []kvPair {
	var pairs []kvPair
	for k, v := range m.data {
		if k >= from {
			pairs = append(pairs, kvPair{key: k, rval: v})
		}
	}
	sortPairs(pairs)
	return pairs
}

// Query-side accessors (called under the group mutex via ha.Query; must
// not mutate).

func (m *rangeMachine) allPairs() []kvPair { return m.pairsFrom("") }

func (m *rangeMachine) lockCount() int { return len(m.locks) }

// liveSize counts live (non-tombstone) keys — the size signal for
// load-driven split/merge.
func (m *rangeMachine) liveSize() int {
	n := 0
	for _, v := range m.data {
		if !v.dead {
			n++
		}
	}
	return n
}

// liveKeys returns the sorted live keys (split-point selection).
func (m *rangeMachine) liveKeys() []string {
	keys := make([]string, 0, len(m.data))
	for k, v := range m.data {
		if !v.dead {
			keys = append(keys, k)
		}
	}
	sortStrs(keys)
	return keys
}

// Snapshot/Restore: deterministic serialization in sorted order, so all
// replicas produce identical snapshots for identical state.

func (m *rangeMachine) Snapshot() []byte {
	buf := wAppendStr(nil, m.lo)
	buf = wAppendStr(buf, m.hi)
	buf = wAppendBool(buf, m.init)
	buf = wAppendBool(buf, m.fenced)
	buf = wAppendStr(buf, m.fence)
	buf = appendPairs(buf, m.allPairs())
	prevPairs := make([]kvPair, 0, len(m.prev))
	for k, v := range m.prev {
		prevPairs = append(prevPairs, kvPair{key: k, rval: v})
	}
	sortPairs(prevPairs)
	buf = appendPairs(buf, prevPairs)
	lockKeys := make([]string, 0, len(m.locks))
	for k := range m.locks {
		lockKeys = append(lockKeys, k)
	}
	sortStrs(lockKeys)
	buf = wAppendU32(buf, uint32(len(lockKeys)))
	for _, k := range lockKeys {
		buf = wAppendStr(buf, k)
		buf = wAppendU64(buf, m.locks[k])
	}
	doneIDs := make([]uint64, 0, len(m.done))
	for id := range m.done {
		doneIDs = append(doneIDs, id)
	}
	sortU64s(doneIDs)
	buf = wAppendU32(buf, uint32(len(doneIDs)))
	for _, id := range doneIDs {
		buf = wAppendU64(buf, id)
		buf = append(buf, m.done[id])
	}
	return buf
}

func (m *rangeMachine) Restore(snap []byte) {
	d := &wdec{buf: snap}
	m.lo = d.str()
	m.hi = d.str()
	m.init = d.boolv()
	m.fenced = d.boolv()
	m.fence = d.str()
	m.data = map[string]rval{}
	m.prev = map[string]rval{}
	m.locks = map[string]uint64{}
	m.done = map[uint64]byte{}
	for _, p := range decodePairs(d) {
		m.data[p.key] = p.rval
	}
	for _, p := range decodePairs(d) {
		m.prev[p.key] = p.rval
	}
	n := int(d.u32())
	for i := 0; i < n && !d.err; i++ {
		k := d.str()
		m.locks[k] = d.u64()
	}
	n = int(d.u32())
	for i := 0; i < n && !d.err; i++ {
		id := d.u64()
		m.done[id] = d.u8()
	}
}

// Command encoders (coordinator side).

func encRmPut(key string, val []byte, ver uint64) []byte {
	b := wAppendStr([]byte{rmOpPut}, key)
	b = wAppendU64(b, ver)
	return wAppendBlob(b, val)
}

func encRmGet(key string, dirty bool) []byte {
	b := wAppendStr([]byte{rmOpGet}, key)
	return wAppendBool(b, dirty)
}

func encRmDel(key string, ver uint64) []byte {
	b := wAppendStr([]byte{rmOpDel}, key)
	return wAppendU64(b, ver)
}

func encRmPrepare(txn uint64, dirty bool, lockKeys, readKeys []string) []byte {
	b := wAppendU64([]byte{rmOpPrepare}, txn)
	b = wAppendBool(b, dirty)
	b = appendStrs(b, lockKeys)
	return appendStrs(b, readKeys)
}

func encRmApply(txn, ver uint64, writes []rmWrite) []byte {
	b := wAppendU64([]byte{rmOpApply}, txn)
	b = wAppendU64(b, ver)
	return appendWrites(b, writes)
}

func encRmAbort(txn uint64) []byte { return wAppendU64([]byte{rmOpAbort}, txn) }

func encRmAdopt(lo, hi string, pairs []kvPair) []byte {
	b := wAppendStr([]byte{rmOpAdopt}, lo)
	b = wAppendStr(b, hi)
	return appendPairs(b, pairs)
}

func encRmFreeze(from string) []byte { return wAppendStr([]byte{rmOpFreeze}, from) }
func encRmTrim(from string) []byte   { return wAppendStr([]byte{rmOpTrim}, from) }

func encRmMigrate(pairs []kvPair) []byte { return appendPairs([]byte{rmOpMigrate}, pairs) }

func encRmTrimKeys(pairs []kvPair) []byte {
	b := wAppendU32([]byte{rmOpTrimKeys}, uint32(len(pairs)))
	for _, p := range pairs {
		b = wAppendStr(b, p.key)
		b = wAppendU64(b, p.ver)
	}
	return b
}

// Shared sub-encodings.

func appendPairs(b []byte, pairs []kvPair) []byte {
	b = wAppendU32(b, uint32(len(pairs)))
	for _, p := range pairs {
		b = wAppendStr(b, p.key)
		b = wAppendU64(b, p.ver)
		b = wAppendBool(b, p.dead)
		b = wAppendBlob(b, p.val)
	}
	return b
}

func decodePairs(d *wdec) []kvPair {
	n := int(d.u32())
	var pairs []kvPair
	for i := 0; i < n && !d.err; i++ {
		p := kvPair{key: d.str()}
		p.ver = d.u64()
		p.dead = d.boolv()
		p.val = d.blob()
		if d.err {
			break
		}
		pairs = append(pairs, p)
	}
	return pairs
}

func appendStrs(b []byte, ss []string) []byte {
	b = wAppendU32(b, uint32(len(ss)))
	for _, s := range ss {
		b = wAppendStr(b, s)
	}
	return b
}

func decodeStrs(d *wdec) []string {
	n := int(d.u32())
	var ss []string
	for i := 0; i < n && !d.err; i++ {
		ss = append(ss, d.str())
	}
	return ss
}

func appendWrites(b []byte, ws []rmWrite) []byte {
	b = wAppendU32(b, uint32(len(ws)))
	for _, w := range ws {
		b = wAppendStr(b, w.Key)
		b = wAppendBool(b, w.Del)
		b = wAppendBlob(b, w.Val)
	}
	return b
}

func decodeWrites(d *wdec) []rmWrite {
	n := int(d.u32())
	var ws []rmWrite
	for i := 0; i < n && !d.err; i++ {
		w := rmWrite{Key: d.str()}
		w.Del = d.boolv()
		w.Val = d.blob()
		if d.err {
			break
		}
		ws = append(ws, w)
	}
	return ws
}

// decodeReads parses the prepare response payload after its status byte.
func decodeReads(d *wdec, keys []string) []rmRead {
	n := int(d.u32())
	var rs []rmRead
	for i := 0; i < n && i < len(keys) && !d.err; i++ {
		r := rmRead{Key: keys[i]}
		r.Found = d.boolv()
		r.Val = d.blob()
		if d.err {
			break
		}
		rs = append(rs, r)
	}
	return rs
}
