package kvstore

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/admission"
)

func newTestSharded(t *testing.T, cfg ShardedConfig) *Sharded {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.Groups == 0 {
		cfg.Groups = 2
	}
	return NewSharded(cfg)
}

func mustPut(t *testing.T, s *Sharded, key, val string) {
	t.Helper()
	if err := s.Put(context.Background(), key, []byte(val)); err != nil {
		t.Fatalf("Put(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, s *Sharded, key string) (string, bool) {
	t.Helper()
	v, found, err := s.Get(context.Background(), key)
	if err != nil {
		t.Fatalf("Get(%s): %v", key, err)
	}
	return string(v), found
}

func TestShardedBasicOps(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	if got := s.RangeCount(); got != 2 {
		t.Fatalf("RangeCount = %d, want 2", got)
	}
	mustPut(t, s, "apple", "1")
	mustPut(t, s, "zebra", "2")
	if v, ok := mustGet(t, s, "apple"); !ok || v != "1" {
		t.Fatalf("apple = (%q, %v), want (1, true)", v, ok)
	}
	if v, ok := mustGet(t, s, "zebra"); !ok || v != "2" {
		t.Fatalf("zebra = (%q, %v), want (2, true)", v, ok)
	}
	if _, ok := mustGet(t, s, "nope"); ok {
		t.Fatal("absent key reported found")
	}
	if err := s.Delete(context.Background(), "apple"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := mustGet(t, s, "apple"); ok {
		t.Fatal("deleted key still found")
	}
	// Overwrite wins by version.
	mustPut(t, s, "zebra", "3")
	if v, _ := mustGet(t, s, "zebra"); v != "3" {
		t.Fatalf("zebra after overwrite = %q, want 3", v)
	}
}

func TestShardedSplitMergePreservesData(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{})
	want := map[string]string{}
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		v := fmt.Sprintf("v%d", i)
		mustPut(t, s, k, v)
		want[k] = v
	}
	if err := s.Split("k15"); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if got := s.RangeCount(); got != 2 {
		t.Fatalf("RangeCount after split = %d, want 2", got)
	}
	for k, v := range want {
		if got, ok := mustGet(t, s, k); !ok || got != v {
			t.Fatalf("after split %s = (%q, %v), want %q", k, got, ok, v)
		}
	}
	// Writes after the split land on the right machines and survive the
	// merge back.
	mustPut(t, s, "k07", "left-new")
	want["k07"] = "left-new"
	mustPut(t, s, "k22", "right-new")
	want["k22"] = "right-new"
	if err := s.Merge("k00"); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := s.RangeCount(); got != 1 {
		t.Fatalf("RangeCount after merge = %d, want 1", got)
	}
	for k, v := range want {
		if got, ok := mustGet(t, s, k); !ok || got != v {
			t.Fatalf("after merge %s = (%q, %v), want %q", k, got, ok, v)
		}
	}
}

func TestShardedDeleteSurvivesMerge(t *testing.T) {
	// A tombstone in the absorbed range must not be resurrected by a
	// stale live copy surviving the merge.
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "pear", "old")
	if err := s.Delete(context.Background(), "pear"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := s.Merge("a"); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if v, ok := mustGet(t, s, "pear"); ok {
		t.Fatalf("deleted key resurrected by merge: %q", v)
	}
}

func TestShardedSplitCrashPointsRecover(t *testing.T) {
	for _, point := range []string{"split", "split-copy", "split-commit"} {
		t.Run(point, func(t *testing.T) {
			s := newTestSharded(t, ShardedConfig{MaxOpAttempts: 4})
			want := map[string]string{}
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("k%02d", i)
				want[k] = fmt.Sprintf("v%d", i)
				mustPut(t, s, k, want[k])
			}
			if err := s.OrphanNext(point); err != nil {
				t.Fatalf("OrphanNext: %v", err)
			}
			if err := s.Split("k10"); !errors.Is(err, ErrTxnOrphaned) {
				t.Fatalf("Split with armed crash = %v, want ErrTxnOrphaned", err)
			}
			n, err := s.RecoverRanges()
			if err != nil {
				t.Fatalf("RecoverRanges: %v", err)
			}
			if n != 1 {
				t.Fatalf("RecoverRanges resolved %d changes, want 1", n)
			}
			if got := s.RangeCount(); got != 2 {
				t.Fatalf("RangeCount after recovery = %d, want 2", got)
			}
			for k, v := range want {
				if got, ok := mustGet(t, s, k); !ok || got != v {
					t.Fatalf("after recovered split %s = (%q, %v), want %q", k, got, ok, v)
				}
			}
			// And the plane accepts writes everywhere again.
			mustPut(t, s, "k05", "post")
			mustPut(t, s, "k15", "post")
			// Idempotent: a second recovery pass has nothing to do.
			if n, _ := s.RecoverRanges(); n != 0 {
				t.Fatalf("second RecoverRanges resolved %d, want 0", n)
			}
		})
	}
}

func TestShardedMergeCrashRecovers(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "alpha", "1")
	mustPut(t, s, "omega", "2")
	if err := s.OrphanNext("merge"); err != nil {
		t.Fatalf("OrphanNext: %v", err)
	}
	if err := s.Merge("alpha"); !errors.Is(err, ErrTxnOrphaned) {
		t.Fatalf("Merge with armed crash = %v, want ErrTxnOrphaned", err)
	}
	if _, err := s.RecoverRanges(); err != nil {
		t.Fatalf("RecoverRanges: %v", err)
	}
	if got := s.RangeCount(); got != 1 {
		t.Fatalf("RangeCount after recovered merge = %d, want 1", got)
	}
	if v, _ := mustGet(t, s, "alpha"); v != "1" {
		t.Fatalf("alpha = %q, want 1", v)
	}
	if v, _ := mustGet(t, s, "omega"); v != "2" {
		t.Fatalf("omega = %q, want 2", v)
	}
}

func TestShardedDeadlinePropagation(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{})
	ctx := admission.WithBudget(context.Background(), time.Nanosecond)
	err := s.Put(ctx, "k", []byte("v"))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Put with 1ns budget = %v, want ErrDeadlineExceeded", err)
	}
	// The unified sentinel: every deadline error matches the shared
	// admission sentinel via errors.Is.
	if !errors.Is(err, admission.ErrDeadline) {
		t.Fatalf("deadline error does not match admission.ErrDeadline: %v", err)
	}
	if _, _, err := s.Get(ctx, "k"); !errors.Is(err, admission.ErrDeadline) {
		t.Fatalf("Get with 1ns budget = %v, want deadline", err)
	}
	if _, err := s.Txn(ctx, []string{"k"}, nil); !errors.Is(err, admission.ErrDeadline) {
		t.Fatalf("Txn with 1ns budget = %v, want deadline", err)
	}
	// A cancelled context is refused before any replicated work.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Put(cctx, "k", []byte("v")); err == nil {
		t.Fatal("Put with cancelled context succeeded")
	}
	// No budget: everything proceeds.
	mustPut(t, s, "k", "v")
}

func TestShardedGroupMemberCrashTolerated(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{InitialSplits: []string{"m"}})
	mustPut(t, s, "aa", "1")
	mustPut(t, s, "zz", "2")
	for g := 0; g < s.Groups(); g++ {
		if err := s.CrashGroupMember(g, -1); err != nil {
			t.Fatalf("CrashGroupMember(%d, leader): %v", g, err)
		}
	}
	// One member down per group: quorum holds, ops keep flowing.
	mustPut(t, s, "ab", "3")
	mustPut(t, s, "zy", "4")
	if v, _ := mustGet(t, s, "aa"); v != "1" {
		t.Fatalf("aa after crashes = %q, want 1", v)
	}
	for g := 0; g < s.Groups(); g++ {
		for id := 0; id < 3; id++ {
			s.ReviveGroupMember(g, id) //nolint:errcheck — only one is crashed
		}
	}
	mustPut(t, s, "ac", "5")
	if v, _ := mustGet(t, s, "zy"); v != "4" {
		t.Fatalf("zy after revival = %q, want 4", v)
	}
}

func TestShardedDeterministicVirtualCost(t *testing.T) {
	run := func() (time.Duration, string) {
		s := newTestSharded(t, ShardedConfig{Seed: 7, InitialSplits: []string{"h", "q"}})
		for i := 0; i < 40; i++ {
			mustPut(t, s, fmt.Sprintf("k%02d", i%10), fmt.Sprintf("v%d", i))
		}
		for i := 0; i < 10; i++ {
			mustGet(t, s, fmt.Sprintf("k%02d", i))
		}
		if _, err := s.Txn(context.Background(),
			[]string{"k01", "k09"},
			map[string][]byte{"k01": []byte("t1"), "k09": []byte("t9")}); err != nil {
			t.Fatalf("Txn: %v", err)
		}
		state := ""
		for i := 0; i < 10; i++ {
			v, _ := mustGet(t, s, fmt.Sprintf("k%02d", i))
			state += v + "|"
		}
		return s.VirtualCost(), state
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 {
		t.Fatalf("virtual cost not deterministic: %v vs %v", c1, c2)
	}
	if s1 != s2 {
		t.Fatalf("final state not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	if c1 <= 0 {
		t.Fatal("virtual cost did not accumulate")
	}
}

func TestMaybeSplitAndMergePolicies(t *testing.T) {
	s := newTestSharded(t, ShardedConfig{})
	for i := 0; i < 24; i++ {
		mustPut(t, s, fmt.Sprintf("k%02d", i), "v")
	}
	did, err := s.MaybeSplit(16)
	if err != nil || !did {
		t.Fatalf("MaybeSplit = (%v, %v), want (true, nil)", did, err)
	}
	if got := s.RangeCount(); got != 2 {
		t.Fatalf("RangeCount = %d, want 2", got)
	}
	// Below threshold: no further split.
	if did, _ := s.MaybeSplit(100); did {
		t.Fatal("MaybeSplit split below threshold")
	}
	// Shrink the data, merge back.
	for i := 0; i < 20; i++ {
		if err := s.Delete(context.Background(), fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("Delete: %v", err)
		}
	}
	did, err = s.MaybeMerge(8)
	if err != nil || !did {
		t.Fatalf("MaybeMerge = (%v, %v), want (true, nil)", did, err)
	}
	if got := s.RangeCount(); got != 1 {
		t.Fatalf("RangeCount after merge = %d, want 1", got)
	}
}
