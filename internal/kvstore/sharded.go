// Sharded is the range-sharded data plane: the keyspace is partitioned
// into contiguous ranges, each range is its own replicated state
// machine (rangeMachine) on a 3-member Raft group, and range machines
// are multiplexed onto a small fixed set of groups by id (range id %
// Groups). Group 0 additionally hosts the control machines: the range
// directory ("dir") and the transaction-record table ("txn").
//
// Compared with the quorum Store (store.go), every operation here is a
// Raft log command, so a range serves linearizable reads and writes as
// long as its group has a quorum — and multi-key atomicity comes from
// the 2PC coordinator in txn.go whose commit point is itself a
// replicated record. Latency is modeled in virtual time: each proposal
// costs ProposeCost plus TickCost per consensus tick it consumed, which
// keeps runs deterministic and lets admission budgets (context virtual
// deadlines) propagate into the transactional path.
package kvstore

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/ha"
	"repro/internal/metrics"
)

// Typed errors of the sharded plane.
var (
	// ErrKeyLocked: a single-key op kept losing to in-flight transaction
	// locks (or an in-progress split) for all its attempts. The op took
	// no effect.
	ErrKeyLocked = errors.New("kvstore: key locked or range busy, retries exhausted")
	// ErrTxnConflict: the transaction lost its lock conflicts on every
	// attempt and was cleanly aborted. No effect.
	ErrTxnConflict = errors.New("kvstore: transaction conflict, aborted")
	// ErrTxnAborted: recovery resolved this transaction as aborted while
	// the coordinator was still working. No effect.
	ErrTxnAborted = errors.New("kvstore: transaction aborted by recovery")
	// ErrTxnOrphaned: the coordinator crashed (simulated) or lost its
	// group mid-protocol. The outcome is owned by the replicated txn
	// record now: RecoverTxns will abort it (no commit record) or resume
	// it (commit record present) — never leave it dangling.
	ErrTxnOrphaned = errors.New("kvstore: transaction orphaned, awaiting recovery")
	// ErrRangeBusy: a split/merge could not fence its span because
	// transactions hold locks there; try again later.
	ErrRangeBusy = errors.New("kvstore: range busy, split/merge deferred")
)

// ShardedConfig parameterizes the sharded store.
type ShardedConfig struct {
	// Groups is the number of Raft groups the range machines are spread
	// over. Default 2. Group 0 also carries the dir and txn machines.
	Groups int
	// Seed drives every group's election timers.
	Seed uint64
	// InitialSplits pre-carves the keyspace at these boundaries (sorted,
	// interior). Empty means one range owning everything.
	InitialSplits []string
	// MaxOpAttempts bounds a single-key op's moved/locked retries.
	// Default 24.
	MaxOpAttempts int
	// MaxTxnAttempts bounds a transaction's conflict retries. Default 8.
	MaxTxnAttempts int
	// ProposeCost and TickCost model virtual latency: each proposal
	// costs ProposeCost + ticks*TickCost. Defaults 120µs and 25µs.
	ProposeCost time.Duration
	TickCost    time.Duration
	// MaxOpTicks caps the consensus ticks one proposal may consume
	// before the outcome is declared unknown (passed to ha.Config).
	MaxOpTicks int
}

// Sharded is the range-sharded, transactional KV store.
type Sharded struct {
	cfg    ShardedConfig
	groups []*ha.Group
	// Reg carries the data-plane counters (txn_*, range_*, sharded_*).
	Reg *metrics.Registry

	mu        sync.Mutex
	clock     uint64 // global version clock (Lamport-style)
	nextTxn   uint64 // transaction id allocator
	dirty     bool   // dirty-read fault injection
	crashNext string // one-shot coordinator crash point
	cost      time.Duration
	ranges    []RangeInfo // directory cache; refreshed on rspMoved
}

// NewSharded builds the groups, initializes the directory and adopts
// the initial ranges.
func NewSharded(cfg ShardedConfig) *Sharded {
	if cfg.Groups <= 0 {
		cfg.Groups = 2
	}
	if cfg.MaxOpAttempts <= 0 {
		cfg.MaxOpAttempts = 24
	}
	if cfg.MaxTxnAttempts <= 0 {
		cfg.MaxTxnAttempts = 8
	}
	if cfg.ProposeCost <= 0 {
		cfg.ProposeCost = 120 * time.Microsecond
	}
	if cfg.TickCost <= 0 {
		cfg.TickCost = 25 * time.Microsecond
	}
	sort.Strings(cfg.InitialSplits)
	s := &Sharded{cfg: cfg, Reg: metrics.NewRegistry()}
	dynamic := func(string) ha.StateMachine { return newRangeMachine() }
	for g := 0; g < cfg.Groups; g++ {
		hc := ha.Config{
			Seed:       cfg.Seed + uint64(g)*0x9e3779b97f4a7c15,
			Dynamic:    dynamic,
			MaxOpTicks: cfg.MaxOpTicks,
			Metrics:    s.Reg, // ha_* counters summed across groups
		}
		if g == 0 {
			hc.Machines = map[string]func() ha.StateMachine{
				dirMachineName: func() ha.StateMachine { return newDirMachine() },
				txnMachineName: func() ha.StateMachine { return newTxnMachine() },
			}
		}
		s.groups = append(s.groups, ha.NewGroup(hc))
	}
	if _, _, err := s.propose(0, dirMachineName, encDirInit(cfg.Groups, cfg.InitialSplits)); err != nil {
		panic(fmt.Sprintf("kvstore: directory init failed: %v", err))
	}
	if err := s.refreshDir(); err != nil {
		panic(fmt.Sprintf("kvstore: directory read failed: %v", err))
	}
	// Adopt bounds on every initial range machine so bounds checks hold
	// from the first op.
	for _, r := range s.rangesSnapshot() {
		if _, _, err := s.propose(r.Group, rangeName(r.ID), encRmAdopt(r.Start, r.End, nil)); err != nil {
			panic(fmt.Sprintf("kvstore: range %d adopt failed: %v", r.ID, err))
		}
	}
	return s
}

func rangeName(id uint64) string { return fmt.Sprintf("range-%d", id) }

// groupOf maps a range id to its hosting Raft group.
func (s *Sharded) groupOf(id uint64) int { return int(id % uint64(s.cfg.Groups)) }

// propose submits one replicated command and charges its virtual cost.
func (s *Sharded) propose(group int, machine string, cmd []byte) ([]byte, time.Duration, error) {
	g := s.groups[group]
	before := g.Ticks()
	resp, err := g.Propose(machine, cmd)
	vcost := s.cfg.ProposeCost + time.Duration(g.Ticks()-before)*s.cfg.TickCost
	s.mu.Lock()
	s.cost += vcost
	s.mu.Unlock()
	return resp, vcost, err
}

// VirtualCost returns the accumulated virtual latency of every proposal
// issued so far — the deterministic clock the perf trajectory windows by.
func (s *Sharded) VirtualCost() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cost
}

func (s *Sharded) nextVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	return s.clock
}

func (s *Sharded) nextTxnID() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextTxn++
	return s.nextTxn
}

// SetDirtyReads toggles the dirty-read fault injection: reads (single
// and transactional) bypass locks and serve the retained overwritten
// cell when one exists. Strict serializability must break — the txn
// checker proving it has teeth.
func (s *Sharded) SetDirtyReads(on bool) {
	s.mu.Lock()
	s.dirty = on
	s.mu.Unlock()
}

func (s *Sharded) dirtyReads() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dirty
}

// Directory cache.

func (s *Sharded) refreshDir() error {
	var rs []RangeInfo
	err := s.groups[0].Query(dirMachineName, func(sm ha.StateMachine) error {
		rs = sm.(*dirMachine).snapshotRanges()
		return nil
	})
	if err != nil {
		return fmt.Errorf("kvstore: directory refresh: %w", err)
	}
	s.mu.Lock()
	s.ranges = rs
	s.mu.Unlock()
	return nil
}

func (s *Sharded) rangesSnapshot() []RangeInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]RangeInfo(nil), s.ranges...)
}

// Ranges returns the current routing table (diagnostics and tests).
func (s *Sharded) Ranges() []RangeInfo { return s.rangesSnapshot() }

// RangeCount returns the number of ranges in the cached directory.
func (s *Sharded) RangeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ranges)
}

// locate routes a key through the cached directory, refreshing once on
// a cache miss (mid-change window).
func (s *Sharded) locate(key string) (RangeInfo, error) {
	for attempt := 0; attempt < 2; attempt++ {
		rs := s.rangesSnapshot()
		// Last range with Start <= key; ranges are sorted by Start.
		i := sort.Search(len(rs), func(i int) bool { return rs[i].Start > key }) - 1
		if i >= 0 {
			r := rs[i]
			if r.End == "" || key < r.End {
				return r, nil
			}
		}
		if err := s.refreshDir(); err != nil {
			return RangeInfo{}, err
		}
	}
	return RangeInfo{}, fmt.Errorf("kvstore: no range owns key %q", key)
}

// opBudget tracks an operation's remaining virtual deadline budget.
type opBudget struct {
	remaining time.Duration
	has       bool
}

func newOpBudget(ctx context.Context) (*opBudget, error) {
	budget, has, err := ctxGate(ctx)
	if err != nil {
		return nil, err
	}
	return &opBudget{remaining: budget, has: has}, nil
}

// charge burns virtual cost; once the budget is exhausted it returns
// ErrDeadlineExceeded (callers decide whether the op already applied).
func (b *opBudget) charge(c time.Duration) error {
	if !b.has {
		return nil
	}
	b.remaining -= c
	if b.remaining < 0 {
		return ErrDeadlineExceeded
	}
	return nil
}

func (b *opBudget) exhausted() bool { return b.has && b.remaining <= 0 }

// Single-key operations. Each is one replicated command on the owning
// range, retried through directory refreshes (rspMoved) and transaction
// locks (rspLocked) up to MaxOpAttempts.

// Put writes key=value. An ErrDeadlineExceeded return may still have
// applied (the command committed before the budget check, mirroring
// PutCtx on the quorum store); ErrKeyLocked guarantees no effect.
func (s *Sharded) Put(ctx context.Context, key string, value []byte) error {
	b, err := newOpBudget(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return err
	}
	for attempt := 0; attempt < s.cfg.MaxOpAttempts; attempt++ {
		r, err := s.locate(key)
		if err != nil {
			return err
		}
		resp, c, err := s.propose(s.groupOf(r.ID), rangeName(r.ID), encRmPut(key, value, s.nextVersion()))
		if err != nil {
			return fmt.Errorf("kvstore: put %q: %w", key, err)
		}
		if cerr := b.charge(c); cerr != nil {
			s.Reg.Counter("deadline_exceeded").Inc()
			return cerr
		}
		switch resp[0] {
		case rspOK:
			s.Reg.Counter("sharded_puts").Inc()
			return nil
		case rspMoved:
			s.Reg.Counter("sharded_moved_retries").Inc()
			if err := s.refreshDir(); err != nil {
				return err
			}
		case rspLocked:
			s.Reg.Counter("sharded_lock_retries").Inc()
		default:
			return fmt.Errorf("kvstore: put %q: unexpected status %d", key, resp[0])
		}
	}
	return fmt.Errorf("kvstore: put %q: %w", key, ErrKeyLocked)
}

// Get reads key. Absent keys return found=false with a nil error.
func (s *Sharded) Get(ctx context.Context, key string) ([]byte, bool, error) {
	b, err := newOpBudget(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return nil, false, err
	}
	dirty := s.dirtyReads()
	for attempt := 0; attempt < s.cfg.MaxOpAttempts; attempt++ {
		r, err := s.locate(key)
		if err != nil {
			return nil, false, err
		}
		resp, c, err := s.propose(s.groupOf(r.ID), rangeName(r.ID), encRmGet(key, dirty))
		if err != nil {
			return nil, false, fmt.Errorf("kvstore: get %q: %w", key, err)
		}
		if cerr := b.charge(c); cerr != nil {
			s.Reg.Counter("deadline_exceeded").Inc()
			return nil, false, cerr
		}
		switch resp[0] {
		case rspOK:
			d := &wdec{buf: resp[1:]}
			found := d.boolv()
			val := d.blob()
			s.Reg.Counter("sharded_gets").Inc()
			return val, found, nil
		case rspMoved:
			s.Reg.Counter("sharded_moved_retries").Inc()
			if err := s.refreshDir(); err != nil {
				return nil, false, err
			}
		case rspLocked:
			s.Reg.Counter("sharded_lock_retries").Inc()
		default:
			return nil, false, fmt.Errorf("kvstore: get %q: unexpected status %d", key, resp[0])
		}
	}
	return nil, false, fmt.Errorf("kvstore: get %q: %w", key, ErrKeyLocked)
}

// Delete removes key (a versioned tombstone, so deletions survive
// migration and anti-entropy like any other write).
func (s *Sharded) Delete(ctx context.Context, key string) error {
	b, err := newOpBudget(ctx)
	if err != nil {
		s.Reg.Counter("deadline_exceeded").Inc()
		return err
	}
	for attempt := 0; attempt < s.cfg.MaxOpAttempts; attempt++ {
		r, err := s.locate(key)
		if err != nil {
			return err
		}
		resp, c, err := s.propose(s.groupOf(r.ID), rangeName(r.ID), encRmDel(key, s.nextVersion()))
		if err != nil {
			return fmt.Errorf("kvstore: delete %q: %w", key, err)
		}
		if cerr := b.charge(c); cerr != nil {
			s.Reg.Counter("deadline_exceeded").Inc()
			return cerr
		}
		switch resp[0] {
		case rspOK:
			s.Reg.Counter("sharded_deletes").Inc()
			return nil
		case rspMoved:
			s.Reg.Counter("sharded_moved_retries").Inc()
			if err := s.refreshDir(); err != nil {
				return err
			}
		case rspLocked:
			s.Reg.Counter("sharded_lock_retries").Inc()
		default:
			return fmt.Errorf("kvstore: delete %q: unexpected status %d", key, resp[0])
		}
	}
	return fmt.Errorf("kvstore: delete %q: %w", key, ErrKeyLocked)
}

// Fault-injection and chaos surface.

// validCrashPoints lists the coordinator crash points OrphanNext accepts.
var validCrashPoints = map[string]bool{
	"begin": true, "prepare": true, "before-commit": true,
	"commit": true, "apply": true,
	"split": true, "split-copy": true, "split-commit": true, "merge": true,
}

// OrphanNext arms a one-shot coordinator crash at the named protocol
// point: the next transaction (or split/merge) to reach it returns
// ErrTxnOrphaned with its replicated state left exactly as a real
// coordinator crash would, for RecoverTxns/RecoverRanges to resolve.
// Points: begin, prepare, before-commit, commit, apply (transactions);
// split, split-copy, split-commit, merge (topology changes).
func (s *Sharded) OrphanNext(point string) error {
	if !validCrashPoints[point] {
		return fmt.Errorf("kvstore: unknown crash point %q", point)
	}
	s.mu.Lock()
	s.crashNext = point
	s.mu.Unlock()
	return nil
}

// takeCrash consumes the armed crash point if it matches.
func (s *Sharded) takeCrash(point string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.crashNext == point {
		s.crashNext = ""
		return true
	}
	return false
}

// Recover resolves all orphaned transactions and completes interrupted
// splits/merges — the chaos engine's "txn-recover" hook.
func (s *Sharded) Recover() error {
	if _, err := s.RecoverTxns(); err != nil {
		return err
	}
	_, err := s.RecoverRanges()
	return err
}

// PartitionGroup splits a Raft group's members into isolated sides.
func (s *Sharded) PartitionGroup(group int, sides ...[]int) { s.groups[group].Partition(sides...) }

// HealGroup removes a group's partition.
func (s *Sharded) HealGroup(group int) { s.groups[group].Heal() }

// CutGroupLink severs the directed from -> to link inside one group's
// Raft cluster (gray one-way fault); the reverse direction stays up.
func (s *Sharded) CutGroupLink(group, from, to int) { s.groups[group].CutLink(from, to) }

// HealGroupLink restores a directed link cut by CutGroupLink.
func (s *Sharded) HealGroupLink(group, from, to int) { s.groups[group].HealLink(from, to) }

// GroupMaxTerm returns one group's highest consensus term — the
// gray-failure livelock telltale.
func (s *Sharded) GroupMaxTerm(group int) uint64 { return s.groups[group].MaxTerm() }

// GroupStepDowns sums one group's CheckQuorum leader abdications.
func (s *Sharded) GroupStepDowns(group int) uint64 { return s.groups[group].StepDowns() }

// CrashGroupMember crashes one member of a group (-1 = current leader).
func (s *Sharded) CrashGroupMember(group, id int) error {
	return s.groups[group].CrashMember(id)
}

// ReviveGroupMember revives a crashed member (snapshot + log catch-up).
func (s *Sharded) ReviveGroupMember(group, id int) error {
	return s.groups[group].ReviveMember(id)
}

// GroupLeader returns a group's current leader member id, or -1.
func (s *Sharded) GroupLeader(group int) int { return s.groups[group].Leader() }

// GroupMembers returns one group's consensus cluster size.
func (s *Sharded) GroupMembers(group int) int { return s.groups[group].Members() }

// Groups returns the number of Raft groups.
func (s *Sharded) Groups() int { return s.cfg.Groups }

// Introspection for invariant assertions.

// LockCount sums live transaction locks across all ranges — zero after
// recovery means no lock leaked.
func (s *Sharded) LockCount() (int, error) {
	total := 0
	for _, r := range s.rangesSnapshot() {
		n := 0
		err := s.groups[s.groupOf(r.ID)].Query(rangeName(r.ID), func(sm ha.StateMachine) error {
			n = sm.(*rangeMachine).lockCount()
			return nil
		})
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// PendingTxnRecords counts transaction records not yet retired.
func (s *Sharded) PendingTxnRecords() (int, error) {
	n := 0
	err := s.groups[0].Query(txnMachineName, func(sm ha.StateMachine) error {
		n = sm.(*txnMachine).recordCount()
		return nil
	})
	return n, err
}

// rangeSize returns a range's live key count.
func (s *Sharded) rangeSize(r RangeInfo) (int, error) {
	n := 0
	err := s.groups[s.groupOf(r.ID)].Query(rangeName(r.ID), func(sm ha.StateMachine) error {
		n = sm.(*rangeMachine).liveSize()
		return nil
	})
	return n, err
}
