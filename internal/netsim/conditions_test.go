package netsim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestPartitionReachability(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, RDMA40G)
	reg := metrics.NewRegistry()
	f.Instrument(reg)

	if !f.Reachable(0, 7) || f.Partitioned() {
		t.Fatal("clean fabric must be fully reachable")
	}
	f.SetPartition(
		[]topology.NodeID{0, 1, 2, 3},
		[]topology.NodeID{4, 5, 6},
	)
	if !f.Partitioned() {
		t.Fatal("partition not in effect")
	}
	if f.Reachable(0, 4) {
		t.Fatal("cross-group transfer must be blocked")
	}
	if !f.Reachable(0, 3) || !f.Reachable(4, 6) {
		t.Fatal("same-group transfers must stay reachable")
	}
	// Node 7 was not mentioned: isolated in its own group.
	if f.Reachable(7, 6) || f.Reachable(0, 7) {
		t.Fatal("unmentioned node must be isolated")
	}
	if !f.Reachable(7, 7) {
		t.Fatal("same-node transfers never partition away")
	}
	f.Heal()
	if f.Partitioned() || !f.Reachable(0, 4) {
		t.Fatal("heal must restore reachability")
	}
	if got := reg.Counter("net_partitions_set").Value(); got != 1 {
		t.Fatalf("net_partitions_set = %d, want 1", got)
	}
	if got := reg.Counter("net_partition_heals").Value(); got != 1 {
		t.Fatalf("net_partition_heals = %d, want 1", got)
	}
	// Healing a healthy fabric is a no-op, not a phantom heal.
	f.Heal()
	if got := reg.Counter("net_partition_heals").Value(); got != 1 {
		t.Fatalf("redundant heal counted: %d", got)
	}
}

func TestNodeDegradeScalesCost(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, TCP40G)
	const bytes = 1 << 20
	clean := f.Cost(0, 5, bytes)
	cleanLocalRack := f.Cost(0, 1, bytes)
	f.SetNodeDegrade(5, 4)
	degraded := f.Cost(0, 5, bytes)
	if degraded < 3*clean || degraded > 5*clean {
		t.Fatalf("degraded cost %v not ~4x clean %v", degraded, clean)
	}
	// Transfers not touching node 5 are unaffected.
	if got := f.Cost(0, 1, bytes); got != cleanLocalRack {
		t.Fatalf("unrelated link degraded: %v vs %v", got, cleanLocalRack)
	}
	// Same-node copies never degrade.
	local := f.Cost(5, 5, bytes)
	f.SetNodeDegrade(5, 1) // clears
	if got := f.Cost(5, 5, bytes); got != local {
		t.Fatalf("local copy changed under degradation: %v vs %v", got, local)
	}
	if got := f.Cost(0, 5, bytes); got != clean {
		t.Fatalf("clear failed: %v vs %v", got, clean)
	}
}

func TestDegradeSlowsSimulatedFlows(t *testing.T) {
	top := topology.TwoTier(1, 4, 1)
	f := NewFabric(top, RDMA40G)
	flows := []Flow{{Src: 0, Dst: 1, Bytes: 8 << 20}}
	clean := f.Simulate(flows)[0].Finish
	f.SetNodeDegrade(1, 8)
	slow := f.Simulate(flows)[0].Finish
	if slow < 4*clean {
		t.Fatalf("degraded flow finished in %v, clean %v; want >= 4x slower", slow, clean)
	}
	f.ClearConditions()
	if got := f.Simulate(flows)[0].Finish; got != clean {
		t.Fatalf("ClearConditions failed: %v vs %v", got, clean)
	}
}
