package netsim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestPartitionReachability(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, RDMA40G)
	reg := metrics.NewRegistry()
	f.Instrument(reg)

	if !f.Reachable(0, 7) || f.Partitioned() {
		t.Fatal("clean fabric must be fully reachable")
	}
	if err := f.SetPartition(
		[]topology.NodeID{0, 1, 2, 3},
		[]topology.NodeID{4, 5, 6},
	); err != nil {
		t.Fatalf("SetPartition: %v", err)
	}
	if !f.Partitioned() {
		t.Fatal("partition not in effect")
	}
	if f.Reachable(0, 4) {
		t.Fatal("cross-group transfer must be blocked")
	}
	if !f.Reachable(0, 3) || !f.Reachable(4, 6) {
		t.Fatal("same-group transfers must stay reachable")
	}
	// Node 7 was not mentioned: isolated in its own group.
	if f.Reachable(7, 6) || f.Reachable(0, 7) {
		t.Fatal("unmentioned node must be isolated")
	}
	if !f.Reachable(7, 7) {
		t.Fatal("same-node transfers never partition away")
	}
	f.Heal()
	if f.Partitioned() || !f.Reachable(0, 4) {
		t.Fatal("heal must restore reachability")
	}
	if got := reg.Counter("net_partitions_set").Value(); got != 1 {
		t.Fatalf("net_partitions_set = %d, want 1", got)
	}
	if got := reg.Counter("net_partition_heals").Value(); got != 1 {
		t.Fatalf("net_partition_heals = %d, want 1", got)
	}
	// Healing a healthy fabric is a no-op, not a phantom heal.
	f.Heal()
	if got := reg.Counter("net_partition_heals").Value(); got != 1 {
		t.Fatalf("redundant heal counted: %d", got)
	}
}

func TestSetPartitionRejectsOverlap(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, RDMA40G)
	if err := f.SetPartition(
		[]topology.NodeID{0, 1, 2},
		[]topology.NodeID{2, 3},
	); err == nil {
		t.Fatal("overlapping groups must be rejected")
	}
	// The failed call must not have installed a partial partition.
	if f.Partitioned() || !f.Reachable(0, 3) {
		t.Fatal("rejected SetPartition mutated conditions")
	}
	// A node repeated inside the same group is harmless, not an overlap.
	if err := f.SetPartition([]topology.NodeID{0, 0, 1}, []topology.NodeID{2}); err != nil {
		t.Fatalf("duplicate within one group rejected: %v", err)
	}
	f.Heal()
}

func TestDirectedLinkCuts(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, RDMA40G)
	reg := metrics.NewRegistry()
	f.Instrument(reg)

	// One-way cut: 0->1 blocked, 1->0 still flows.
	f.CutLink(0, 1)
	if f.Reachable(0, 1) {
		t.Fatal("cut link 0->1 must be unreachable")
	}
	if !f.Reachable(1, 0) {
		t.Fatal("reverse direction 1->0 must stay reachable")
	}
	if !f.Partitioned() {
		t.Fatal("directed cut must report Partitioned")
	}
	// Non-transitive shape: 0->1 cut, 1->2 and 0->2 alive.
	if !f.Reachable(1, 2) || !f.Reachable(0, 2) {
		t.Fatal("uncut links must stay reachable")
	}
	// Idempotent cut, directed heal.
	f.CutLink(0, 1)
	f.HealLink(0, 1)
	if !f.Reachable(0, 1) {
		t.Fatal("HealLink must restore the direction")
	}
	f.HealLink(0, 1) // healing a healthy link is a no-op
	if got := reg.Counter("net_link_heals").Value(); got != 1 {
		t.Fatalf("net_link_heals = %d, want 1", got)
	}
	if got := reg.Counter("net_link_cuts").Value(); got != 2 {
		t.Fatalf("net_link_cuts = %d, want 2", got)
	}

	// Cuts compose with group partitions, and Heal clears both layers.
	f.CutLink(4, 5)
	if err := f.SetPartition([]topology.NodeID{0, 1, 2, 3}, []topology.NodeID{4, 5, 6, 7}); err != nil {
		t.Fatalf("SetPartition: %v", err)
	}
	if f.Reachable(4, 5) {
		t.Fatal("same-group transfer must still honor the directed cut")
	}
	if f.Reachable(0, 4) {
		t.Fatal("cross-group transfer must be blocked")
	}
	f.Heal()
	if f.Partitioned() || !f.Reachable(4, 5) || !f.Reachable(0, 4) {
		t.Fatal("Heal must clear both the partition and directed cuts")
	}
	// Self-cuts are ignored: local transfers never partition away.
	f.CutLink(3, 3)
	if !f.Reachable(3, 3) || f.Partitioned() {
		t.Fatal("self-cut must be a no-op")
	}
}

func TestNodeDegradeScalesCost(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	f := NewFabric(top, TCP40G)
	const bytes = 1 << 20
	clean := f.Cost(0, 5, bytes)
	cleanLocalRack := f.Cost(0, 1, bytes)
	f.SetNodeDegrade(5, 4)
	degraded := f.Cost(0, 5, bytes)
	if degraded < 3*clean || degraded > 5*clean {
		t.Fatalf("degraded cost %v not ~4x clean %v", degraded, clean)
	}
	// Transfers not touching node 5 are unaffected.
	if got := f.Cost(0, 1, bytes); got != cleanLocalRack {
		t.Fatalf("unrelated link degraded: %v vs %v", got, cleanLocalRack)
	}
	// Same-node copies never degrade.
	local := f.Cost(5, 5, bytes)
	f.SetNodeDegrade(5, 1) // clears
	if got := f.Cost(5, 5, bytes); got != local {
		t.Fatalf("local copy changed under degradation: %v vs %v", got, local)
	}
	if got := f.Cost(0, 5, bytes); got != clean {
		t.Fatalf("clear failed: %v vs %v", got, clean)
	}
}

func TestDegradeSlowsSimulatedFlows(t *testing.T) {
	top := topology.TwoTier(1, 4, 1)
	f := NewFabric(top, RDMA40G)
	flows := []Flow{{Src: 0, Dst: 1, Bytes: 8 << 20}}
	clean := f.Simulate(flows)[0].Finish
	f.SetNodeDegrade(1, 8)
	slow := f.Simulate(flows)[0].Finish
	if slow < 4*clean {
		t.Fatalf("degraded flow finished in %v, clean %v; want >= 4x slower", slow, clean)
	}
	f.ClearConditions()
	if got := f.Simulate(flows)[0].Finish; got != clean {
		t.Fatalf("ClearConditions failed: %v vs %v", got, clean)
	}
}
