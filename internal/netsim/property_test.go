package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"
)

// Adding flows can only slow existing ones down (max-min fairness is
// monotone in contention).
func TestAddingFlowsNeverSpeedsUp(t *testing.T) {
	f := NewFabric(topology.TwoTier(2, 4, 2), RDMA40G)
	base := []Flow{{Src: 0, Dst: 5, Bytes: 8 << 20}}
	solo := f.Simulate(base)[0].Finish
	prop := func(srcs, dsts [3]uint8) bool {
		flows := append([]Flow(nil), base...)
		for i := 0; i < 3; i++ {
			flows = append(flows, Flow{
				Src:   topology.NodeID(srcs[i] % 8),
				Dst:   topology.NodeID(dsts[i] % 8),
				Bytes: 4 << 20,
			})
		}
		res := f.Simulate(flows)
		return res[0].Finish >= solo-time.Microsecond
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// A flow set's completion is never earlier than the uncontended Cost of
// its largest member along the same path.
func TestSimulateLowerBoundedByCost(t *testing.T) {
	f := NewFabric(topology.TwoTier(2, 4, 2), TCP40G)
	prop := func(sz uint32, a, b uint8) bool {
		src := topology.NodeID(a % 8)
		dst := topology.NodeID(b % 8)
		bytes := int64(sz%(4<<20)) + 1
		res := f.Simulate([]Flow{{Src: src, Dst: dst, Bytes: bytes}})
		lower := f.Cost(src, dst, bytes)
		// Allow 1% numeric slack from the fluid stepping.
		return res[0].Finish >= lower-lower/100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Doubling a flow's size cannot shorten its completion.
func TestSimulateMonotoneInSize(t *testing.T) {
	f := NewFabric(topology.TwoTier(2, 4, 2), IPoIB40G)
	for _, size := range []int64{1 << 10, 1 << 16, 1 << 22} {
		small := f.Simulate([]Flow{{Src: 0, Dst: 4, Bytes: size}})[0].Finish
		big := f.Simulate([]Flow{{Src: 0, Dst: 4, Bytes: size * 2}})[0].Finish
		if big < small {
			t.Fatalf("size %d: doubled flow finished earlier (%v < %v)", size, big, small)
		}
	}
}
