package netsim

import (
	"math"
	"time"

	"repro/internal/topology"
)

// Flow is one transfer submitted to the flow simulator.
type Flow struct {
	Src, Dst topology.NodeID
	Bytes    int64
	Start    time.Duration // offset at which the flow begins
}

// FlowResult reports when a flow finished and its average goodput.
type FlowResult struct {
	Finish     time.Duration
	GoodputBps float64
}

// resource identifiers for the max-min allocator. Every flow consumes its
// source NIC egress, destination NIC ingress and, if it crosses the core,
// the (possibly oversubscribed) rack uplink/downlink pair.
type resKind int

const (
	resEgress resKind = iota
	resIngress
	resRackUp
	resRackDown
)

type resKey struct {
	kind resKind
	id   int
}

type flowState struct {
	remaining float64 // wire bytes left
	active    bool
	started   bool
	resources []resKey
	start     time.Duration
	payload   float64
}

// Simulate runs all flows to completion under max-min fair bandwidth
// sharing and returns per-flow results in input order. The algorithm is
// the classic fluid model: repeatedly compute the max-min allocation via
// progressive filling, advance virtual time to the next flow completion
// (or arrival), and repeat. Runtime is O(F^2 · R), fine for the thousands
// of flows a shuffle round produces.
func (f *Fabric) Simulate(flows []Flow) []FlowResult {
	n := len(flows)
	results := make([]FlowResult, n)
	if n == 0 {
		return results
	}
	if im := f.m.Load(); im != nil {
		im.simFlows.Add(int64(n))
		for _, fl := range flows {
			if fl.Bytes > 0 {
				im.simFlowBytes.Add(fl.Bytes)
			}
		}
	}

	states := make([]*flowState, n)
	m := f.model
	for i, fl := range flows {
		bytes := fl.Bytes
		if bytes < 0 {
			bytes = 0
		}
		st := &flowState{
			remaining: float64(bytes) * (1 + m.WireOverhead),
			start:     fl.Start + f.fixedLatency(fl.Src, fl.Dst, bytes),
			payload:   float64(bytes),
		}
		if fl.Src != fl.Dst {
			st.resources = []resKey{
				{resEgress, int(fl.Src)},
				{resIngress, int(fl.Dst)},
			}
			if f.top.CrossCore(fl.Src, fl.Dst) {
				st.resources = append(st.resources,
					resKey{resRackUp, f.top.RackOf(fl.Src)},
					resKey{resRackDown, f.top.RackOf(fl.Dst)})
			}
		} else {
			// Local copy: a private memory channel, no shared resources.
			st.remaining = float64(bytes)
		}
		states[i] = st
	}

	now := time.Duration(0)
	done := 0
	for done < n {
		// Activate flows whose start time has arrived; find next arrival.
		nextArrival := time.Duration(math.MaxInt64)
		for i, st := range states {
			if st.started {
				continue
			}
			if st.start <= now {
				st.started = true
				if st.remaining <= 0 {
					results[i] = FlowResult{Finish: st.start}
					done++
				} else {
					st.active = true
				}
			} else if st.start < nextArrival {
				nextArrival = st.start
			}
		}
		if done >= n {
			break
		}

		anyActive := false
		for _, st := range states {
			if st.active {
				anyActive = true
				break
			}
		}
		if !anyActive {
			now = nextArrival
			continue
		}

		rates := f.maxMinRates(states)

		// Time until the first active flow completes at current rates.
		dt := math.MaxFloat64
		for i, st := range states {
			if !st.active || rates[i] <= 0 {
				continue
			}
			if t := st.remaining / rates[i]; t < dt {
				dt = t
			}
		}
		step := time.Duration(dt * float64(time.Second))
		if step < time.Nanosecond {
			step = time.Nanosecond
		}
		if nextArrival != time.Duration(math.MaxInt64) && now+step > nextArrival {
			step = nextArrival - now
			if step <= 0 {
				step = time.Nanosecond
			}
		}
		elapsed := step.Seconds()
		now += step
		for i, st := range states {
			if !st.active {
				continue
			}
			st.remaining -= rates[i] * elapsed
			if st.remaining <= 1e-6 {
				st.active = false
				results[i] = FlowResult{Finish: now}
				done++
			}
		}
	}

	for i := range results {
		dur := results[i].Finish - flows[i].Start
		if dur > 0 && states[i].payload > 0 {
			results[i].GoodputBps = states[i].payload / dur.Seconds()
		}
	}
	return results
}

// fixedLatency is the rate-independent part of a transfer: setup, hops and
// sender CPU. It is folded into the flow's effective start time.
func (f *Fabric) fixedLatency(src, dst topology.NodeID, bytes int64) time.Duration {
	if src == dst {
		return 0
	}
	m := f.model
	return m.SetupLatency +
		time.Duration(f.top.Hops(src, dst))*m.PerHopLatency
}

// capacity returns the bytes/sec capacity of a shared resource. Degraded
// nodes (see conditions.go) present proportionally thinner NICs.
func (f *Fabric) capacity(r resKey) float64 {
	switch r.kind {
	case resEgress, resIngress:
		return f.model.BandwidthBps / f.nodeDegrade(topology.NodeID(r.id))
	default:
		// A rack uplink aggregates its members' NICs, thinned by the core
		// oversubscription factor.
		members := len(f.top.NodesInRack(r.id))
		return float64(members) * f.model.BandwidthBps / f.top.Oversub()
	}
}

// maxMinRates computes the max-min fair allocation (wire bytes/sec) for all
// active flows via progressive filling: repeatedly find the most congested
// resource, freeze its flows at the fair share, release capacity, repeat.
func (f *Fabric) maxMinRates(states []*flowState) []float64 {
	rates := make([]float64, len(states))
	// Same-node flows get the private memory channel rate immediately.
	frozen := make([]bool, len(states))
	remainingCap := map[resKey]float64{}
	usersOf := map[resKey][]int{}
	unfrozenOn := map[resKey]int{}
	for i, st := range states {
		if !st.active {
			frozen[i] = true
			continue
		}
		if len(st.resources) == 0 {
			rates[i] = memBandwidthBps
			frozen[i] = true
			continue
		}
		for _, r := range st.resources {
			if _, ok := remainingCap[r]; !ok {
				remainingCap[r] = f.capacity(r)
			}
			usersOf[r] = append(usersOf[r], i)
			unfrozenOn[r]++
		}
	}

	for {
		// Find the bottleneck: minimum fair share across resources with
		// unfrozen users.
		bottleneck := resKey{}
		minShare := math.MaxFloat64
		found := false
		for r, cnt := range unfrozenOn {
			if cnt == 0 {
				continue
			}
			share := remainingCap[r] / float64(cnt)
			if share < minShare {
				minShare = share
				bottleneck = r
				found = true
			}
		}
		if !found {
			break
		}
		// Freeze every unfrozen flow on the bottleneck at the fair share.
		for _, i := range usersOf[bottleneck] {
			if frozen[i] {
				continue
			}
			frozen[i] = true
			rates[i] = minShare
			for _, r := range states[i].resources {
				remainingCap[r] -= minShare
				if remainingCap[r] < 0 {
					remainingCap[r] = 0
				}
				unfrozenOn[r]--
			}
		}
	}
	// A single flow cannot exceed the host CPU pipeline rate.
	rateCap := f.effectiveRate()
	for i := range rates {
		if states[i].active && rates[i] > rateCap {
			rates[i] = rateCap
		}
	}
	return rates
}
