package netsim

import (
	"fmt"
	"time"

	"repro/internal/topology"
)

// linkKey packs a directed src->dst pair into one map key.
type linkKey struct{ src, dst topology.NodeID }

// conditions is the mutable fault layer over a fabric's immutable cost
// model: a network partition (nodes in different groups cannot reach each
// other), a set of directed link cuts (src->dst blocked while dst->src may
// still flow — the gray-failure shapes: one-way cuts, non-transitive
// partial partitions, flapping links), and per-node link degradation
// factors (a factor f > 1 slows every transfer touching that node by f).
// The struct is immutable once built; Fabric swaps whole snapshots through
// an atomic pointer, so condition changes are safe against concurrent Cost
// queries without locking the query path.
type conditions struct {
	// groupOf maps node -> partition group; nil means no partition.
	groupOf []int
	// cut holds directed src->dst blocks; nil means no cuts.
	cut map[linkKey]bool
	// degrade maps node -> slowdown factor; nil or factor <= 1 means clean.
	degrade map[topology.NodeID]float64
}

func (c *conditions) clone(size int) *conditions {
	out := &conditions{}
	if c != nil && c.groupOf != nil {
		out.groupOf = append([]int(nil), c.groupOf...)
	}
	if c != nil && len(c.cut) > 0 {
		out.cut = make(map[linkKey]bool, len(c.cut))
		for k := range c.cut {
			out.cut[k] = true
		}
	}
	if c != nil && len(c.degrade) > 0 {
		out.degrade = make(map[topology.NodeID]float64, len(c.degrade))
		for k, v := range c.degrade {
			out.degrade[k] = v
		}
	}
	_ = size
	return out
}

// SetPartition splits the fabric into the given groups: transfers between
// nodes in different groups are blocked (Reachable reports false) until
// Heal. Nodes not mentioned in any group are isolated in their own
// singleton group, mirroring consensus.Cluster.Partition semantics. A node
// listed in more than one group is a schedule bug — the call rejects it
// with an error and leaves the previous conditions untouched.
func (f *Fabric) SetPartition(groups ...[]topology.NodeID) error {
	size := f.top.Size()
	seen := make(map[topology.NodeID]int)
	for gi, g := range groups {
		for _, n := range g {
			if int(n) < 0 || int(n) >= size {
				continue
			}
			if prev, ok := seen[n]; ok && prev != gi {
				return fmt.Errorf("netsim: SetPartition: node %d appears in groups %d and %d (groups must be disjoint)", n, prev, gi)
			}
			seen[n] = gi
		}
	}
	c := f.cond.Load().clone(size)
	c.groupOf = make([]int, size)
	for i := range c.groupOf {
		c.groupOf[i] = -1
	}
	for n, gi := range seen {
		c.groupOf[n] = gi
	}
	next := len(groups)
	for i, g := range c.groupOf {
		if g < 0 {
			c.groupOf[i] = next
			next++
		}
	}
	f.cond.Store(c)
	if im := f.m.Load(); im != nil {
		im.partitionsSet.Inc()
	}
	return nil
}

// CutLink blocks transfers in the src->dst direction only; dst->src keeps
// flowing. Directed cuts compose with (and are independent of) group
// partitions: a transfer is blocked if either layer blocks it. Cutting the
// same link twice is idempotent.
func (f *Fabric) CutLink(src, dst topology.NodeID) {
	if src == dst {
		return
	}
	c := f.cond.Load().clone(f.top.Size())
	if c.cut == nil {
		c.cut = map[linkKey]bool{}
	}
	c.cut[linkKey{src, dst}] = true
	f.cond.Store(c)
	if im := f.m.Load(); im != nil {
		im.linkCuts.Inc()
	}
}

// HealLink removes a directed src->dst cut. Healing a link that is not cut
// is a no-op.
func (f *Fabric) HealLink(src, dst topology.NodeID) {
	c := f.cond.Load()
	if c == nil || !c.cut[linkKey{src, dst}] {
		return
	}
	n := c.clone(f.top.Size())
	delete(n.cut, linkKey{src, dst})
	if len(n.cut) == 0 {
		n.cut = nil
	}
	f.cond.Store(n)
	if im := f.m.Load(); im != nil {
		im.linkHeals.Inc()
	}
}

// Heal removes any partition and every directed link cut, leaving
// degradation factors in place.
func (f *Fabric) Heal() {
	c := f.cond.Load().clone(f.top.Size())
	if c.groupOf == nil && c.cut == nil {
		return // nothing to heal; keep the heal counter honest
	}
	c.groupOf = nil
	c.cut = nil
	f.cond.Store(c)
	if im := f.m.Load(); im != nil {
		im.partitionHeals.Inc()
	}
}

// Partitioned reports whether a partition or any directed cut is currently
// in effect.
func (f *Fabric) Partitioned() bool {
	c := f.cond.Load()
	return c != nil && (c.groupOf != nil || len(c.cut) > 0)
}

// Reachable reports whether src can currently transfer to dst. Same-node
// transfers are always reachable (local memory never partitions away).
// Reachability is directed: a one-way cut blocks src->dst while dst->src
// still succeeds.
func (f *Fabric) Reachable(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	c := f.cond.Load()
	if c == nil {
		return true
	}
	if c.cut != nil && c.cut[linkKey{src, dst}] {
		return false
	}
	if c.groupOf == nil {
		return true
	}
	if int(src) < 0 || int(src) >= len(c.groupOf) ||
		int(dst) < 0 || int(dst) >= len(c.groupOf) {
		return true
	}
	return c.groupOf[src] == c.groupOf[dst]
}

// SetNodeDegrade multiplies the cost of every transfer touching node n by
// factor (a straggler link, a flapping NIC, an overloaded ToR port).
// factor <= 1 clears the degradation.
func (f *Fabric) SetNodeDegrade(n topology.NodeID, factor float64) {
	c := f.cond.Load().clone(f.top.Size())
	if factor <= 1 {
		delete(c.degrade, n)
		if len(c.degrade) == 0 {
			c.degrade = nil
		}
	} else {
		if c.degrade == nil {
			c.degrade = map[topology.NodeID]float64{}
		}
		c.degrade[n] = factor
	}
	f.cond.Store(c)
}

// ClearConditions drops every partition, link cut and degradation,
// restoring the clean fabric.
func (f *Fabric) ClearConditions() {
	f.cond.Store(&conditions{})
}

// degradeFactor returns the slowdown multiplier for a src->dst transfer:
// the worst factor of the two endpoints, at least 1.
func (f *Fabric) degradeFactor(src, dst topology.NodeID) float64 {
	c := f.cond.Load()
	if c == nil || c.degrade == nil {
		return 1
	}
	factor := 1.0
	if v, ok := c.degrade[src]; ok && v > factor {
		factor = v
	}
	if v, ok := c.degrade[dst]; ok && v > factor {
		factor = v
	}
	return factor
}

// nodeDegrade returns node n's own degradation factor, at least 1; the
// flow simulator divides NIC capacity by it.
func (f *Fabric) nodeDegrade(n topology.NodeID) float64 {
	c := f.cond.Load()
	if c == nil || c.degrade == nil {
		return 1
	}
	if v, ok := c.degrade[n]; ok && v > 1 {
		return v
	}
	return 1
}

// applyConditions scales a computed transfer duration by the current link
// degradation and counts degraded queries.
func (f *Fabric) applyConditions(src, dst topology.NodeID, d time.Duration) time.Duration {
	factor := f.degradeFactor(src, dst)
	if factor <= 1 {
		return d
	}
	if im := f.m.Load(); im != nil {
		im.degradedQueries.Inc()
	}
	return time.Duration(float64(d) * factor)
}
