package netsim

import (
	"time"

	"repro/internal/topology"
)

// conditions is the mutable fault layer over a fabric's immutable cost
// model: a network partition (nodes in different groups cannot reach each
// other) and per-node link degradation factors (a factor f > 1 slows every
// transfer touching that node by f). The struct is immutable once built;
// Fabric swaps whole snapshots through an atomic pointer, so condition
// changes are safe against concurrent Cost queries without locking the
// query path.
type conditions struct {
	// groupOf maps node -> partition group; nil means no partition.
	groupOf []int
	// degrade maps node -> slowdown factor; nil or factor <= 1 means clean.
	degrade map[topology.NodeID]float64
}

func (c *conditions) clone(size int) *conditions {
	out := &conditions{}
	if c != nil && c.groupOf != nil {
		out.groupOf = append([]int(nil), c.groupOf...)
	}
	if c != nil && len(c.degrade) > 0 {
		out.degrade = make(map[topology.NodeID]float64, len(c.degrade))
		for k, v := range c.degrade {
			out.degrade[k] = v
		}
	}
	_ = size
	return out
}

// SetPartition splits the fabric into the given groups: transfers between
// nodes in different groups are blocked (Reachable reports false) until
// Heal. Nodes not mentioned in any group are isolated in their own
// singleton group, mirroring consensus.Cluster.Partition semantics.
func (f *Fabric) SetPartition(groups ...[]topology.NodeID) {
	size := f.top.Size()
	c := f.cond.Load().clone(size)
	c.groupOf = make([]int, size)
	for i := range c.groupOf {
		c.groupOf[i] = -1
	}
	for gi, g := range groups {
		for _, n := range g {
			if int(n) >= 0 && int(n) < size {
				c.groupOf[n] = gi
			}
		}
	}
	next := len(groups)
	for i, g := range c.groupOf {
		if g < 0 {
			c.groupOf[i] = next
			next++
		}
	}
	f.cond.Store(c)
	if im := f.m.Load(); im != nil {
		im.partitionsSet.Inc()
	}
}

// Heal removes any partition, leaving degradation factors in place.
func (f *Fabric) Heal() {
	c := f.cond.Load().clone(f.top.Size())
	if c.groupOf == nil {
		return // nothing to heal; keep the heal counter honest
	}
	c.groupOf = nil
	f.cond.Store(c)
	if im := f.m.Load(); im != nil {
		im.partitionHeals.Inc()
	}
}

// Partitioned reports whether a partition is currently in effect.
func (f *Fabric) Partitioned() bool {
	c := f.cond.Load()
	return c != nil && c.groupOf != nil
}

// Reachable reports whether src can currently transfer to dst. Same-node
// transfers are always reachable (local memory never partitions away).
func (f *Fabric) Reachable(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	c := f.cond.Load()
	if c == nil || c.groupOf == nil {
		return true
	}
	if int(src) < 0 || int(src) >= len(c.groupOf) ||
		int(dst) < 0 || int(dst) >= len(c.groupOf) {
		return true
	}
	return c.groupOf[src] == c.groupOf[dst]
}

// SetNodeDegrade multiplies the cost of every transfer touching node n by
// factor (a straggler link, a flapping NIC, an overloaded ToR port).
// factor <= 1 clears the degradation.
func (f *Fabric) SetNodeDegrade(n topology.NodeID, factor float64) {
	c := f.cond.Load().clone(f.top.Size())
	if factor <= 1 {
		delete(c.degrade, n)
		if len(c.degrade) == 0 {
			c.degrade = nil
		}
	} else {
		if c.degrade == nil {
			c.degrade = map[topology.NodeID]float64{}
		}
		c.degrade[n] = factor
	}
	f.cond.Store(c)
}

// ClearConditions drops every partition and degradation, restoring the
// clean fabric.
func (f *Fabric) ClearConditions() {
	f.cond.Store(&conditions{})
}

// degradeFactor returns the slowdown multiplier for a src->dst transfer:
// the worst factor of the two endpoints, at least 1.
func (f *Fabric) degradeFactor(src, dst topology.NodeID) float64 {
	c := f.cond.Load()
	if c == nil || c.degrade == nil {
		return 1
	}
	factor := 1.0
	if v, ok := c.degrade[src]; ok && v > factor {
		factor = v
	}
	if v, ok := c.degrade[dst]; ok && v > factor {
		factor = v
	}
	return factor
}

// nodeDegrade returns node n's own degradation factor, at least 1; the
// flow simulator divides NIC capacity by it.
func (f *Fabric) nodeDegrade(n topology.NodeID) float64 {
	c := f.cond.Load()
	if c == nil || c.degrade == nil {
		return 1
	}
	if v, ok := c.degrade[n]; ok && v > 1 {
		return v
	}
	return 1
}

// applyConditions scales a computed transfer duration by the current link
// degradation and counts degraded queries.
func (f *Fabric) applyConditions(src, dst topology.NodeID, d time.Duration) time.Duration {
	factor := f.degradeFactor(src, dst)
	if factor <= 1 {
		return d
	}
	if im := f.m.Load(); im != nil {
		im.degradedQueries.Inc()
	}
	return time.Duration(float64(d) * factor)
}
