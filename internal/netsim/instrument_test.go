package netsim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestInstrumentCountsCostAndSim(t *testing.T) {
	top := topology.TwoTier(2, 2, 2)
	f := NewFabric(top, RDMA40G)
	reg := metrics.NewRegistry()
	f.Instrument(reg)

	d1 := f.Cost(0, 3, 1000)
	d2 := f.Cost(0, 0, 500) // same-node memcpy path must be counted too
	if got := reg.Counter("net_cost_queries").Value(); got != 2 {
		t.Fatalf("cost queries = %d, want 2", got)
	}
	if got := reg.Counter("net_cost_payload_bytes").Value(); got != 1500 {
		t.Fatalf("cost payload bytes = %d, want 1500", got)
	}
	if got := reg.Counter("net_cost_time_ns").Value(); got != int64(d1+d2) {
		t.Fatalf("cost time = %d, want %d", got, int64(d1+d2))
	}

	f.Simulate([]Flow{
		{Src: 0, Dst: 1, Bytes: 4096},
		{Src: 2, Dst: 3, Bytes: 8192},
	})
	if got := reg.Counter("net_sim_flows").Value(); got != 2 {
		t.Fatalf("sim flows = %d, want 2", got)
	}
	if got := reg.Counter("net_sim_payload_bytes").Value(); got != 12288 {
		t.Fatalf("sim payload bytes = %d, want 12288", got)
	}

	// Detach: counters must stop moving.
	f.Instrument(nil)
	f.Cost(0, 3, 1000)
	if got := reg.Counter("net_cost_queries").Value(); got != 2 {
		t.Fatalf("counter moved after detach: %d", got)
	}
}

func TestInstrumentationDoesNotChangeCosts(t *testing.T) {
	top := topology.TwoTier(2, 2, 2)
	plain := NewFabric(top, TCP40G)
	instr := NewFabric(top, TCP40G)
	instr.Instrument(metrics.NewRegistry())
	for _, bytes := range []int64{0, 64, 4096, 1 << 20} {
		if a, b := plain.Cost(0, 3, bytes), instr.Cost(0, 3, bytes); a != b {
			t.Fatalf("instrumentation changed Cost(%d): %v vs %v", bytes, a, b)
		}
	}
}
