package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/topology"
)

func fabric(model Model) *Fabric {
	return NewFabric(topology.TwoTier(2, 4, 3), model)
}

func TestRDMABeatsTCPAtSmallMessages(t *testing.T) {
	tcp := fabric(TCP40G)
	rdma := fabric(RDMA40G)
	ct := tcp.Cost(0, 1, 64)
	cr := rdma.Cost(0, 1, 64)
	if ratio := float64(ct) / float64(cr); ratio < 5 {
		t.Fatalf("TCP/RDMA small-message latency ratio = %.1f, want >= 5", ratio)
	}
}

func TestTransportsConvergeAtLargeMessages(t *testing.T) {
	tcp := fabric(TCP40G)
	rdma := fabric(RDMA40G)
	const size = 64 << 20
	ct := tcp.Cost(0, 1, size)
	cr := rdma.Cost(0, 1, size)
	ratio := float64(ct) / float64(cr)
	if ratio > 2 {
		t.Fatalf("large-message ratio = %.2f, transports should be bandwidth-bound", ratio)
	}
	if ratio < 1 {
		t.Fatalf("TCP faster than RDMA at large messages (ratio %.2f)", ratio)
	}
}

func TestIPoIBBetweenTCPAndRDMA(t *testing.T) {
	tcp, ib, rdma := fabric(TCP40G), fabric(IPoIB40G), fabric(RDMA40G)
	for _, size := range []int64{64, 4096, 1 << 20} {
		ct, ci, cr := tcp.Cost(0, 1, size), ib.Cost(0, 1, size), rdma.Cost(0, 1, size)
		if !(cr <= ci && ci <= ct) {
			t.Fatalf("size %d: want rdma <= ipoib <= tcp, got %v %v %v", size, cr, ci, ct)
		}
	}
}

func TestCostMonotonicInSizeAndDistance(t *testing.T) {
	f := fabric(TCP40G)
	if f.Cost(0, 1, 1000) > f.Cost(0, 1, 100000) {
		t.Fatal("cost not monotonic in size")
	}
	// node 0 and 1 share a rack; node 4 is across the core
	if f.Cost(0, 1, 1024) >= f.Cost(0, 4, 1024) {
		t.Fatal("cross-rack transfer not more expensive than intra-rack")
	}
	if f.Cost(0, 0, 1024) >= f.Cost(0, 1, 1024) {
		t.Fatal("local copy not cheaper than network transfer")
	}
}

func TestCostNonNegativeProperty(t *testing.T) {
	f := fabric(RDMA40G)
	prop := func(a, b uint8, sz int32) bool {
		src := topology.NodeID(int(a) % 8)
		dst := topology.NodeID(int(b) % 8)
		return f.Cost(src, dst, int64(sz)) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputCurveShape(t *testing.T) {
	f := fabric(RDMA40G)
	// Throughput must rise with message size toward line rate.
	t64 := f.Throughput(0, 1, 64)
	t1m := f.Throughput(0, 1, 1<<20)
	if t1m <= t64 {
		t.Fatal("throughput did not increase with message size")
	}
	if t1m > f.Model().BandwidthBps {
		t.Fatalf("throughput %v exceeds line rate %v", t1m, f.Model().BandwidthBps)
	}
	if t1m < 0.5*f.Model().BandwidthBps {
		t.Fatalf("1MB messages reach only %.0f%% of line rate", 100*t1m/f.Model().BandwidthBps)
	}
}

func TestCPUCostRDMAVsTCP(t *testing.T) {
	tcp, rdma := fabric(TCP40G), fabric(RDMA40G)
	ct := tcp.CPUCost(1 << 20)
	cr := rdma.CPUCost(1 << 20)
	if float64(ct)/float64(cr) < 5 {
		t.Fatalf("TCP CPU cost should dominate RDMA's: %v vs %v", ct, cr)
	}
}

func TestSimulateSingleFlowMatchesCost(t *testing.T) {
	f := fabric(RDMA40G)
	const size = 10 << 20
	res := f.Simulate([]Flow{{Src: 0, Dst: 1, Bytes: size}})
	want := f.Cost(0, 1, size)
	got := res[0].Finish
	diff := float64(got-want) / float64(want)
	if diff < -0.05 || diff > 0.05 {
		t.Fatalf("single flow finish %v vs Cost %v (%.1f%% off)", got, want, 100*diff)
	}
}

func TestSimulateFairSharing(t *testing.T) {
	f := fabric(RDMA40G)
	const size = 32 << 20
	one := f.Simulate([]Flow{{Src: 0, Dst: 1, Bytes: size}})[0].Finish
	// Two flows from the same source share its egress NIC: each should take
	// about twice as long.
	two := f.Simulate([]Flow{
		{Src: 0, Dst: 1, Bytes: size},
		{Src: 0, Dst: 2, Bytes: size},
	})
	for _, r := range two {
		ratio := float64(r.Finish) / float64(one)
		if ratio < 1.7 || ratio > 2.3 {
			t.Fatalf("shared-egress slowdown = %.2f, want ~2", ratio)
		}
	}
}

func TestSimulateDisjointFlowsDontInterfere(t *testing.T) {
	f := fabric(RDMA40G)
	const size = 32 << 20
	solo := f.Simulate([]Flow{{Src: 0, Dst: 1, Bytes: size}})[0].Finish
	pair := f.Simulate([]Flow{
		{Src: 0, Dst: 1, Bytes: size},
		{Src: 2, Dst: 3, Bytes: size},
	})
	for _, r := range pair {
		ratio := float64(r.Finish) / float64(solo)
		if ratio > 1.1 {
			t.Fatalf("disjoint flows slowed each other: ratio %.2f", ratio)
		}
	}
}

func TestSimulateOversubscribedCore(t *testing.T) {
	// 3x oversubscription: enough simultaneous cross-core flows must be
	// slower than the same flows within a rack.
	f := NewFabric(topology.TwoTier(2, 4, 3), RDMA40G)
	const size = 16 << 20
	var intra, cross []Flow
	for i := 0; i < 4; i++ {
		intra = append(intra, Flow{Src: topology.NodeID(i), Dst: topology.NodeID((i + 1) % 4), Bytes: size})
		cross = append(cross, Flow{Src: topology.NodeID(i), Dst: topology.NodeID(i + 4), Bytes: size})
	}
	intraRes := f.Simulate(intra)
	crossRes := f.Simulate(cross)
	var intraMax, crossMax time.Duration
	for i := range intraRes {
		if intraRes[i].Finish > intraMax {
			intraMax = intraRes[i].Finish
		}
		if crossRes[i].Finish > crossMax {
			crossMax = crossRes[i].Finish
		}
	}
	ratio := float64(crossMax) / float64(intraMax)
	if ratio < 2 {
		t.Fatalf("3x-oversubscribed core slowdown = %.2f, want >= 2", ratio)
	}
}

func TestSimulateStaggeredArrivals(t *testing.T) {
	f := fabric(RDMA40G)
	const size = 8 << 20
	res := f.Simulate([]Flow{
		{Src: 0, Dst: 1, Bytes: size},
		{Src: 2, Dst: 3, Bytes: size, Start: time.Second},
	})
	if res[1].Finish <= time.Second {
		t.Fatal("flow finished before it started")
	}
	if res[0].Finish >= res[1].Finish {
		t.Fatal("earlier disjoint flow should finish first")
	}
}

func TestSimulateZeroByteFlow(t *testing.T) {
	f := fabric(TCP40G)
	res := f.Simulate([]Flow{{Src: 0, Dst: 1, Bytes: 0}})
	if res[0].Finish < f.Model().SetupLatency {
		t.Fatal("zero-byte flow should still pay setup latency")
	}
}

func TestSimulateEmptyAndLocal(t *testing.T) {
	f := fabric(TCP40G)
	if got := f.Simulate(nil); len(got) != 0 {
		t.Fatal("Simulate(nil) should return empty results")
	}
	res := f.Simulate([]Flow{{Src: 0, Dst: 0, Bytes: 1 << 20}})
	if res[0].Finish <= 0 {
		t.Fatal("local flow should take positive time")
	}
	if res[0].Finish > time.Millisecond {
		t.Fatalf("local 1MB copy took %v, too slow for memcpy model", res[0].Finish)
	}
}

func TestSimulateConservation(t *testing.T) {
	// Property: total goodput across any concurrent flow set never exceeds
	// aggregate NIC capacity.
	f := fabric(RDMA40G)
	flows := []Flow{
		{Src: 0, Dst: 4, Bytes: 8 << 20},
		{Src: 1, Dst: 5, Bytes: 8 << 20},
		{Src: 2, Dst: 6, Bytes: 8 << 20},
		{Src: 3, Dst: 7, Bytes: 8 << 20},
	}
	res := f.Simulate(flows)
	var total float64
	for _, r := range res {
		total += r.GoodputBps
	}
	capacity := 8 * f.Model().BandwidthBps
	if total > capacity {
		t.Fatalf("aggregate goodput %.0f exceeds cluster capacity %.0f", total, capacity)
	}
}

func TestNewFabricPanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFabric(topology.Single(2), Model{})
}

func BenchmarkCost(b *testing.B) {
	f := fabric(RDMA40G)
	for i := 0; i < b.N; i++ {
		_ = f.Cost(0, 5, 1<<20)
	}
}

func BenchmarkSimulate64Flows(b *testing.B) {
	f := NewFabric(topology.TwoTier(4, 4, 2), RDMA40G)
	flows := make([]Flow, 64)
	for i := range flows {
		flows[i] = Flow{
			Src:   topology.NodeID(i % 16),
			Dst:   topology.NodeID((i * 7) % 16),
			Bytes: 1 << 20,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Simulate(flows)
	}
}
