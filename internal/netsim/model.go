// Package netsim is a flow-level datacenter network simulator. It stands in
// for the RDMA/InfiniBand testbeds that high-performance big data papers
// evaluate on: transports are calibrated cost models (per-message software
// overhead, per-hop switch latency, line rate, host CPU cost per byte), and
// concurrent transfers share links with max-min fairness, including
// oversubscribed rack uplinks.
//
// The simulator is deliberately flow-level, not packet-level: the phenomena
// the experiments measure — the RDMA-vs-TCP overhead gap at small messages,
// bandwidth-bound convergence at large messages, incast contention during
// shuffle — are all visible at flow granularity, and flow simulation is
// deterministic and fast enough to run inside testing.B loops.
package netsim

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Model is a transport cost model. All transfers over a fabric built with
// this model pay SetupLatency once, PerHopLatency per switch hop, and move
// payload at BandwidthBps (shared under contention). CPUPerByte accounts for
// host-side copy/kernel cost: it is the term kernel-bypass transports
// eliminate, and it is charged on top of wire time for the sender.
type Model struct {
	Name          string
	SetupLatency  time.Duration // per-message software + NIC doorbell overhead
	PerHopLatency time.Duration // per switch hop (propagation + forwarding)
	BandwidthBps  float64       // NIC line rate, bytes per second
	CPUNsPerByte  float64       // host CPU time per payload byte, nanoseconds (copies, protocol)
	WireOverhead  float64       // framing overhead: wire bytes = payload * (1 + WireOverhead)
}

// The predefined models are calibrated to the ratios reported across the
// RDMA-for-big-data literature (e.g. ~1-2 us verbs latency vs ~25 us
// kernel TCP, and near-zero CPU per byte for zero-copy transports). The
// absolute numbers matter less than the ratios; see DESIGN.md.
var (
	// TCP40G is kernel TCP over 40 GbE.
	TCP40G = Model{
		Name:          "tcp-40g",
		SetupLatency:  25 * time.Microsecond,
		PerHopLatency: 1500 * time.Nanosecond,
		BandwidthBps:  0.85 * 5e9, // protocol efficiency ~85% of 40 Gb/s
		CPUNsPerByte:  0.30,
		WireOverhead:  0.06,
	}
	// IPoIB40G is IP-over-InfiniBand: InfiniBand wire, kernel IP stack.
	IPoIB40G = Model{
		Name:          "ipoib-40g",
		SetupLatency:  12 * time.Microsecond,
		PerHopLatency: 700 * time.Nanosecond,
		BandwidthBps:  0.90 * 5e9,
		CPUNsPerByte:  0.20,
		WireOverhead:  0.04,
	}
	// RDMA40G is native verbs (kernel bypass, zero copy).
	RDMA40G = Model{
		Name:          "rdma-40g",
		SetupLatency:  1500 * time.Nanosecond,
		PerHopLatency: 300 * time.Nanosecond,
		BandwidthBps:  0.97 * 5e9,
		CPUNsPerByte:  0.015,
		WireOverhead:  0.02,
	}
)

// memBandwidthBps approximates a local memcpy for same-node "transfers".
const memBandwidthBps = 20e9

// fabricMetrics holds the optional counters; nil fields are no-ops.
type fabricMetrics struct {
	costQueries     *metrics.Counter
	costBytes       *metrics.Counter
	costTimeNs      *metrics.Counter
	simFlows        *metrics.Counter
	simFlowBytes    *metrics.Counter
	partitionsSet   *metrics.Counter
	partitionHeals  *metrics.Counter
	linkCuts        *metrics.Counter
	linkHeals       *metrics.Counter
	degradedQueries *metrics.Counter
}

// Fabric combines a topology with a transport model and answers cost
// queries. The cost model is immutable; instrumentation and mutable fault
// conditions (partitions, degraded links — see conditions.go) attach
// through atomic pointers, so Fabric stays safe for concurrent use.
type Fabric struct {
	top    *topology.Topology
	model  Model
	m      atomic.Pointer[fabricMetrics]
	cond   atomic.Pointer[conditions]
	tracer atomic.Pointer[trace.Recorder]
}

// SetTracer attaches a trace recorder: CostCtx calls record each
// simulated transfer as a causally-linked span on the destination
// node's track. Nil detaches. Plain Cost stays untraced — per-query
// span overhead is only paid where a caller opted in with context.
func (f *Fabric) SetTracer(r *trace.Recorder) { f.tracer.Store(r) }

// CostCtx is Cost plus causal tracing: when a tracer is attached and
// parent carries a live trace, the transfer is recorded as a "net"
// span on dst's track, parented under the task (or barrier, or
// proposal) that issued it. The span's Duration is the simulated
// transfer time, not wall time — the trace shows what the fabric
// charged. label names the transfer (e.g. "fetch s1 p3 b0").
func (f *Fabric) CostCtx(src, dst topology.NodeID, bytes int64, parent trace.TraceContext, label string) time.Duration {
	d := f.Cost(src, dst, bytes)
	if r := f.tracer.Load(); r != nil && parent.Valid() {
		r.AddCtx(trace.Span{
			Name:     label,
			Category: "net",
			Track:    fmt.Sprintf("node-%02d", int(dst)),
			Start:    r.Now(),
			Duration: d,
			Args: map[string]string{
				"src":   fmt.Sprintf("%d", int(src)),
				"dst":   fmt.Sprintf("%d", int(dst)),
				"bytes": fmt.Sprintf("%d", bytes),
			},
		}, parent)
	}
	return d
}

// Instrument attaches transfer counters to reg: cost-query volume
// (net_cost_queries / net_cost_payload_bytes / net_cost_time_ns) and
// flow-simulation volume (net_sim_flows / net_sim_payload_bytes). Safe
// to call concurrently with cost queries; a nil reg detaches.
func (f *Fabric) Instrument(reg *metrics.Registry) {
	if reg == nil {
		f.m.Store(nil)
		return
	}
	f.m.Store(&fabricMetrics{
		costQueries:     reg.Counter("net_cost_queries"),
		costBytes:       reg.Counter("net_cost_payload_bytes"),
		costTimeNs:      reg.Counter("net_cost_time_ns"),
		simFlows:        reg.Counter("net_sim_flows"),
		simFlowBytes:    reg.Counter("net_sim_payload_bytes"),
		partitionsSet:   reg.Counter("net_partitions_set"),
		partitionHeals:  reg.Counter("net_partition_heals"),
		linkCuts:        reg.Counter("net_link_cuts"),
		linkHeals:       reg.Counter("net_link_heals"),
		degradedQueries: reg.Counter("net_degraded_queries"),
	})
}

// NewFabric builds a fabric over top using model.
func NewFabric(top *topology.Topology, model Model) *Fabric {
	if model.BandwidthBps <= 0 {
		panic("netsim: model bandwidth must be positive")
	}
	return &Fabric{top: top, model: model}
}

// Topology returns the fabric's topology.
func (f *Fabric) Topology() *topology.Topology { return f.top }

// Model returns the fabric's transport model.
func (f *Fabric) Model() Model { return f.model }

// Cost returns the uncontended one-way latency to move `bytes` of payload
// from src to dst: setup + per-hop latency + serialization at line rate +
// sender CPU, scaled by any link degradation in effect. Same-node
// transfers cost a memcpy. Cost does not model partitions — callers that
// care whether the transfer can happen at all check Reachable first.
func (f *Fabric) Cost(src, dst topology.NodeID, bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	var d time.Duration
	if src == dst {
		d = time.Duration(float64(bytes) / memBandwidthBps * float64(time.Second))
	} else {
		m := f.model
		wire := float64(bytes) * (1 + m.WireOverhead)
		d = m.SetupLatency
		d += time.Duration(f.top.Hops(src, dst)) * m.PerHopLatency
		// The host CPU pipeline (copies, protocol processing) overlaps with
		// NIC transmission; the transfer proceeds at whichever is slower.
		d += time.Duration(wire / f.effectiveRate() * float64(time.Second))
		d = f.applyConditions(src, dst, d)
	}
	if im := f.m.Load(); im != nil {
		im.costQueries.Inc()
		im.costBytes.Add(bytes)
		im.costTimeNs.Add(int64(d))
	}
	return d
}

// effectiveRate is the per-flow transfer rate in wire bytes/sec: line rate
// unless the host CPU pipeline is the bottleneck (the kernel-TCP regime).
func (f *Fabric) effectiveRate() float64 {
	rate := f.model.BandwidthBps
	if f.model.CPUNsPerByte > 0 {
		if cpuRate := 1e9 / f.model.CPUNsPerByte; cpuRate < rate {
			rate = cpuRate
		}
	}
	return rate
}

// CPUCost returns the host CPU time consumed by one endpoint to move
// `bytes` of payload — the quantity kernel-bypass transports save.
func (f *Fabric) CPUCost(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return f.model.SetupLatency/4 + time.Duration(float64(bytes)*f.model.CPUNsPerByte)
}

// Throughput returns the uncontended achievable goodput in bytes/sec for
// back-to-back messages of the given payload size — the standard transport
// microbenchmark curve (experiment E1).
func (f *Fabric) Throughput(src, dst topology.NodeID, msgBytes int64) float64 {
	if msgBytes <= 0 {
		return 0
	}
	per := f.Cost(src, dst, msgBytes)
	if per <= 0 {
		return 0
	}
	return float64(msgBytes) / per.Seconds()
}
