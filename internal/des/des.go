// Package des implements a deterministic discrete-event simulator: a
// virtual clock and an event heap. The network fabric, failure injectors and
// the scheduler/elasticity experiments run on virtual time so that results
// are exact and reproducible regardless of host load.
package des

import (
	"container/heap"
	"time"
)

// Event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (stable by sequence number), which keeps simulations
// deterministic.
type Event struct {
	At  time.Duration // virtual time at which the event fires
	Fn  func()
	seq uint64
	idx int
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Sim is a single-threaded discrete-event simulation. It is not safe for
// concurrent use; drive it from one goroutine.
type Sim struct {
	now    time.Duration
	events eventHeap
	seq    uint64
}

// New returns an empty simulation at virtual time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Schedule registers fn to run delay from now. Negative delays fire
// immediately (at the current time). The returned event can be cancelled.
func (s *Sim) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	e := &Event{At: s.now + delay, Fn: fn, seq: s.seq}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.idx < 0 || e.idx >= len(s.events) || s.events[e.idx] != e {
		return
	}
	heap.Remove(&s.events, e.idx)
}

// Pending reports the number of events still scheduled.
func (s *Sim) Pending() int { return len(s.events) }

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event fired.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*Event)
	s.now = e.At
	e.Fn()
	return true
}

// Run fires events until none remain, returning the final virtual time.
func (s *Sim) Run() time.Duration {
	for s.Step() {
	}
	return s.now
}

// RunUntil fires events with At <= deadline, then advances the clock to
// deadline. Events scheduled during execution are honoured if they fall
// within the deadline.
func (s *Sim) RunUntil(deadline time.Duration) {
	for len(s.events) > 0 && s.events[0].At <= deadline {
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}
