package des

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	end := s.Run()
	if end != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", got)
	}
}

func TestTiesFireInScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: got %v", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := New()
	var at time.Duration
	s.Schedule(7*time.Second, func() { at = s.Now() })
	s.Run()
	if at != 7*time.Second {
		t.Fatalf("Now() inside event = %v, want 7s", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(time.Second, func() {
		fired++
		s.Schedule(time.Second, func() { fired++ })
	})
	end := s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if end != 2*time.Second {
		t.Fatalf("end = %v, want 2s", end)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(time.Second, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double cancel is a no-op.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	e := s.Schedule(2*time.Second, func() { got = append(got, 2) })
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Cancel(e)
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("got %v, want [1 3]", got)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	fired := 0
	s.Schedule(1*time.Second, func() { fired++ })
	s.Schedule(5*time.Second, func() { fired++ })
	s.RunUntil(3 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d before deadline, want 1", fired)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("Now() = %v, want 3s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after Run, want 2", fired)
	}
}

func TestNegativeDelayFiresNow(t *testing.T) {
	s := New()
	s.Schedule(time.Second, func() {
		s.Schedule(-time.Hour, func() {
			if s.Now() != time.Second {
				t.Fatalf("negative delay fired at %v", s.Now())
			}
		})
	})
	s.Run()
}

// Property: for any set of delays, events fire in nondecreasing time order.
func TestMonotonicFiring(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var times []time.Duration
		for _, d := range delays {
			s.Schedule(time.Duration(d)*time.Millisecond, func() {
				times = append(times, s.Now())
			})
		}
		s.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 100; j++ {
			s.Schedule(time.Duration(j%17)*time.Millisecond, func() {})
		}
		s.Run()
	}
}
