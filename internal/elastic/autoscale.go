// Package elastic simulates cloud elasticity: a utilization-targeting
// autoscaler (with provisioning delay, cooldown and min/max bounds) tracks
// an offered-load trace, optionally under spot-instance preemptions, and
// is compared against static provisioning on cost (node-steps), average
// utilization and SLO violations — experiment E11.
package elastic

import (
	"math"

	"repro/internal/rng"
	"repro/internal/workload"
)

// Policy is the autoscaler configuration.
type Policy struct {
	// TargetUtil is the utilization setpoint the scaler sizes for.
	// Default 0.65.
	TargetUtil float64
	// Min and Max bound the fleet size. Defaults 1 and 1024.
	Min, Max int
	// CooldownSteps is how many steps must pass between scale-downs
	// (scale-ups are never delayed by cooldown). Default 3.
	CooldownSteps int
	// ProvisionDelaySteps is how long a launched node takes to come up.
	// Default 2.
	ProvisionDelaySteps int
	// Disabled freezes the fleet at Min (static provisioning baseline).
	Disabled bool
}

func (p *Policy) fill() {
	if p.TargetUtil <= 0 || p.TargetUtil > 1 {
		p.TargetUtil = 0.65
	}
	if p.Min <= 0 {
		p.Min = 1
	}
	if p.Max <= 0 {
		p.Max = 1024
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.CooldownSteps <= 0 {
		p.CooldownSteps = 3
	}
	if p.ProvisionDelaySteps < 0 {
		p.ProvisionDelaySteps = 2
	}
}

// Config configures a simulation.
type Config struct {
	// PerNodeCapacity is the request rate one node sustains; required.
	PerNodeCapacity float64
	// SLOUtil is the utilization above which a step counts as an SLO
	// violation (queueing delay blows up past it). Default 0.9.
	SLOUtil float64
	// Policy is the autoscaler.
	Policy Policy
	// SpotPreemptProb is the per-step, per-node probability of losing a
	// node to a spot reclaim.
	SpotPreemptProb float64
	// Seed drives preemption randomness.
	Seed uint64
}

// Result summarizes a run.
type Result struct {
	// NodeSteps is the cost integral: Σ active nodes per step.
	NodeSteps int64
	// AvgUtil is the mean utilization over steps (capped at 1 per step).
	AvgUtil float64
	// Violations counts steps where utilization exceeded SLOUtil.
	Violations int
	// ViolationFrac = Violations / steps.
	ViolationFrac float64
	// Preemptions counts nodes lost to spot reclaims.
	Preemptions int
	// ScaleUps and ScaleDowns count scaling actions taken.
	ScaleUps, ScaleDowns int
	// PeakNodes is the largest active fleet seen.
	PeakNodes int
	// UtilSeries is the per-step utilization (for plotting).
	UtilSeries []float64
	// NodeSeries is the per-step active fleet size.
	NodeSeries []int
}

// Simulate runs the trace under cfg.
func Simulate(trace []workload.LoadPoint, cfg Config) Result {
	if cfg.PerNodeCapacity <= 0 {
		panic("elastic: PerNodeCapacity must be positive")
	}
	if cfg.SLOUtil <= 0 {
		cfg.SLOUtil = 0.9
	}
	cfg.Policy.fill()
	r := rng.New(cfg.Seed)

	active := cfg.Policy.Min
	pending := make([]int, 0) // steps remaining until each pending node is up
	cooldown := 0
	res := Result{}

	for _, pt := range trace {
		// Pending nodes come up.
		var still []int
		for _, left := range pending {
			if left <= 1 {
				active++
			} else {
				still = append(still, left-1)
			}
		}
		pending = still

		// Spot preemptions.
		if cfg.SpotPreemptProb > 0 {
			lost := 0
			for i := 0; i < active; i++ {
				if r.Float64() < cfg.SpotPreemptProb {
					lost++
				}
			}
			if active-lost < 1 {
				lost = active - 1
			}
			active -= lost
			res.Preemptions += lost
		}

		// Serve this step.
		capTotal := float64(active) * cfg.PerNodeCapacity
		util := pt.Rate / capTotal
		recorded := math.Min(util, 1)
		res.UtilSeries = append(res.UtilSeries, recorded)
		res.NodeSeries = append(res.NodeSeries, active)
		res.AvgUtil += recorded
		if util > cfg.SLOUtil {
			res.Violations++
		}
		res.NodeSteps += int64(active)
		if active > res.PeakNodes {
			res.PeakNodes = active
		}

		// Autoscaler reacts to the observed utilization.
		if cooldown > 0 {
			cooldown--
		}
		if !cfg.Policy.Disabled {
			desired := int(math.Ceil(pt.Rate / (cfg.PerNodeCapacity * cfg.Policy.TargetUtil)))
			if desired < cfg.Policy.Min {
				desired = cfg.Policy.Min
			}
			if desired > cfg.Policy.Max {
				desired = cfg.Policy.Max
			}
			provisioned := active + len(pending)
			switch {
			case desired > provisioned:
				for i := provisioned; i < desired; i++ {
					if cfg.Policy.ProvisionDelaySteps == 0 {
						active++
					} else {
						pending = append(pending, cfg.Policy.ProvisionDelaySteps)
					}
				}
				res.ScaleUps++
			case desired < active && cooldown == 0:
				active = desired
				cooldown = cfg.Policy.CooldownSteps
				res.ScaleDowns++
			}
		} else if active < cfg.Policy.Min {
			// Static fleets replace preempted nodes immediately.
			active = cfg.Policy.Min
		}
	}
	if len(trace) > 0 {
		res.AvgUtil /= float64(len(trace))
		res.ViolationFrac = float64(res.Violations) / float64(len(trace))
	}
	return res
}

// Static runs the trace with a fixed fleet of n nodes.
func Static(trace []workload.LoadPoint, cfg Config, n int) Result {
	cfg.Policy = Policy{Min: n, Max: n, Disabled: true}
	return Simulate(trace, cfg)
}

// PeakNodesFor returns the fleet size needed to hold the trace's peak at
// or under targetUtil — the peak-static provisioning baseline.
func PeakNodesFor(trace []workload.LoadPoint, perNodeCapacity, targetUtil float64) int {
	peak := 0.0
	for _, p := range trace {
		if p.Rate > peak {
			peak = p.Rate
		}
	}
	return int(math.Ceil(peak / (perNodeCapacity * targetUtil)))
}
