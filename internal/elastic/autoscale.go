// Package elastic simulates cloud elasticity: a utilization-targeting
// autoscaler (with provisioning delay, cooldown and min/max bounds) tracks
// an offered-load trace, optionally under spot-instance preemptions, and
// is compared against static provisioning on cost (node-steps), average
// utilization and SLO violations — experiment E11.
package elastic

import (
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/workload"
)

// Policy is the autoscaler configuration.
type Policy struct {
	// TargetUtil is the utilization setpoint the scaler sizes for.
	// Default 0.65.
	TargetUtil float64
	// Min and Max bound the fleet size. Defaults 1 and 1024.
	Min, Max int
	// CooldownSteps is how many steps must pass between scale-downs
	// (scale-ups are never delayed by cooldown). Default 3.
	CooldownSteps int
	// ProvisionDelaySteps is how long a launched node takes to come up.
	// Default 2.
	ProvisionDelaySteps int
	// SLOTargetP99, when positive, switches the scaler from utilization
	// tracking to SLO tracking: each step's request latency is modeled
	// from the fleet's load and observed into a windowed histogram
	// (metrics.WindowedHistogram), and the scaler reacts to the window's
	// p99 — up 25% on a breach, down one node when p99 sits below half
	// the target. Latency is the signal users actually feel; utilization
	// is only a proxy for it, and the proxy misreads workloads whose
	// per-request cost varies (the admission layer's shed decisions are
	// p99-driven for the same reason).
	SLOTargetP99 time.Duration
	// Disabled freezes the fleet at Min (static provisioning baseline).
	Disabled bool
}

func (p *Policy) fill() {
	if p.TargetUtil <= 0 || p.TargetUtil > 1 {
		p.TargetUtil = 0.65
	}
	if p.Min <= 0 {
		p.Min = 1
	}
	if p.Max <= 0 {
		p.Max = 1024
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.CooldownSteps <= 0 {
		p.CooldownSteps = 3
	}
	if p.ProvisionDelaySteps < 0 {
		p.ProvisionDelaySteps = 2
	}
}

// Config configures a simulation.
type Config struct {
	// PerNodeCapacity is the request rate one node sustains; required.
	PerNodeCapacity float64
	// SLOUtil is the utilization above which a step counts as an SLO
	// violation (queueing delay blows up past it). Default 0.9.
	SLOUtil float64
	// Policy is the autoscaler.
	Policy Policy
	// SpotPreemptProb is the per-step, per-node probability of losing a
	// node to a spot reclaim.
	SpotPreemptProb float64
	// BaseLatency is the unloaded per-request latency of the modeled
	// service, used by the SLO-driven policy (SLOTargetP99). Default 2ms.
	BaseLatency time.Duration
	// Seed drives preemption and latency-jitter randomness.
	Seed uint64
}

// Result summarizes a run.
type Result struct {
	// NodeSteps is the cost integral: Σ active nodes per step.
	NodeSteps int64
	// AvgUtil is the mean utilization over steps (capped at 1 per step).
	AvgUtil float64
	// Violations counts steps where utilization exceeded SLOUtil.
	Violations int
	// ViolationFrac = Violations / steps.
	ViolationFrac float64
	// Preemptions counts nodes lost to spot reclaims.
	Preemptions int
	// ScaleUps and ScaleDowns count scaling actions taken.
	ScaleUps, ScaleDowns int
	// PeakNodes is the largest active fleet seen.
	PeakNodes int
	// UtilSeries is the per-step utilization (for plotting).
	UtilSeries []float64
	// NodeSeries is the per-step active fleet size.
	NodeSeries []int
	// P99Series is the per-step windowed p99 of modeled request latency
	// (only populated when the SLO-driven policy runs).
	P99Series []time.Duration
}

// Simulate runs the trace under cfg.
func Simulate(trace []workload.LoadPoint, cfg Config) Result {
	if cfg.PerNodeCapacity <= 0 {
		panic("elastic: PerNodeCapacity must be positive")
	}
	if cfg.SLOUtil <= 0 {
		cfg.SLOUtil = 0.9
	}
	cfg.Policy.fill()
	if cfg.BaseLatency <= 0 {
		cfg.BaseLatency = 2 * time.Millisecond
	}
	r := rng.New(cfg.Seed)
	// One trace step is one virtual second; the latency histogram
	// windows at the same width so each step reads its own window's p99.
	hist := metrics.NewWindowedHistogram(time.Second)

	active := cfg.Policy.Min
	pending := make([]int, 0) // steps remaining until each pending node is up
	cooldown := 0
	res := Result{}

	for step, pt := range trace {
		// Pending nodes come up.
		var still []int
		for _, left := range pending {
			if left <= 1 {
				active++
			} else {
				still = append(still, left-1)
			}
		}
		pending = still

		// Spot preemptions.
		if cfg.SpotPreemptProb > 0 {
			lost := 0
			for i := 0; i < active; i++ {
				if r.Float64() < cfg.SpotPreemptProb {
					lost++
				}
			}
			if active-lost < 1 {
				lost = active - 1
			}
			active -= lost
			res.Preemptions += lost
		}

		// Serve this step.
		capTotal := float64(active) * cfg.PerNodeCapacity
		util := pt.Rate / capTotal
		recorded := math.Min(util, 1)
		res.UtilSeries = append(res.UtilSeries, recorded)
		res.NodeSeries = append(res.NodeSeries, active)
		res.AvgUtil += recorded
		if util > cfg.SLOUtil {
			res.Violations++
		}
		res.NodeSteps += int64(active)
		if active > res.PeakNodes {
			res.PeakNodes = active
		}

		// The SLO-driven policy observes modeled request latency for this
		// step regardless of whether it will scale, so P99Series and the
		// histogram reflect the whole run.
		var p99 time.Duration
		if cfg.Policy.SLOTargetP99 > 0 {
			p99 = observeStepLatency(hist, r, step, util, cfg.BaseLatency)
			res.P99Series = append(res.P99Series, p99)
		}

		// Autoscaler reacts to the observed signal.
		if cooldown > 0 {
			cooldown--
		}
		switch {
		case cfg.Policy.Disabled:
			if active < cfg.Policy.Min {
				// Static fleets replace preempted nodes immediately.
				active = cfg.Policy.Min
			}
		case cfg.Policy.SLOTargetP99 > 0:
			// SLO tracking: scale on the windowed p99, not utilization.
			provisioned := active + len(pending)
			switch {
			case p99 > cfg.Policy.SLOTargetP99 && provisioned < cfg.Policy.Max:
				add := provisioned / 4
				if add < 1 {
					add = 1
				}
				if provisioned+add > cfg.Policy.Max {
					add = cfg.Policy.Max - provisioned
				}
				for i := 0; i < add; i++ {
					if cfg.Policy.ProvisionDelaySteps == 0 {
						active++
					} else {
						pending = append(pending, cfg.Policy.ProvisionDelaySteps)
					}
				}
				res.ScaleUps++
			case p99 < cfg.Policy.SLOTargetP99/2 && cooldown == 0 && active > cfg.Policy.Min && len(pending) == 0:
				// Latency holds far under target: shed one node at a
				// time, gated by cooldown — scale-down mistakes cost
				// SLO breaches, so the policy is deliberately slower
				// downhill than uphill.
				active--
				cooldown = cfg.Policy.CooldownSteps
				res.ScaleDowns++
			}
		default:
			desired := int(math.Ceil(pt.Rate / (cfg.PerNodeCapacity * cfg.Policy.TargetUtil)))
			if desired < cfg.Policy.Min {
				desired = cfg.Policy.Min
			}
			if desired > cfg.Policy.Max {
				desired = cfg.Policy.Max
			}
			provisioned := active + len(pending)
			switch {
			case desired > provisioned:
				for i := provisioned; i < desired; i++ {
					if cfg.Policy.ProvisionDelaySteps == 0 {
						active++
					} else {
						pending = append(pending, cfg.Policy.ProvisionDelaySteps)
					}
				}
				res.ScaleUps++
			case desired < active && cooldown == 0:
				active = desired
				cooldown = cfg.Policy.CooldownSteps
				res.ScaleDowns++
			}
		}
	}
	if len(trace) > 0 {
		res.AvgUtil /= float64(len(trace))
		res.ViolationFrac = float64(res.Violations) / float64(len(trace))
	}
	return res
}

// observeStepLatency models one step of request latency on a fleet at
// the given utilization and returns the step window's p99. The model is
// the M/M/1 queueing curve lat = base/(1-rho) with rho capped at 0.98
// (past saturation the backlog term below takes over), plus a linear
// backlog penalty once offered load exceeds capacity, sampled with
// seeded uniform jitter so the window has a distribution rather than a
// point.
func observeStepLatency(hist *metrics.WindowedHistogram, r *rng.RNG, step int, util float64, base time.Duration) time.Duration {
	rho := math.Min(util, 0.98)
	lat := float64(base) / (1 - rho)
	if util > 1 {
		lat += float64(base) * (util - 1) * 25
	}
	at := time.Duration(step) * time.Second
	const samples = 24
	for k := 0; k < samples; k++ {
		f := 0.75 + 0.5*r.Float64()
		hist.Observe(at, int64(lat*f))
	}
	for _, w := range hist.Series() {
		if w.Start == at {
			return time.Duration(w.P99)
		}
	}
	return 0
}

// Static runs the trace with a fixed fleet of n nodes.
func Static(trace []workload.LoadPoint, cfg Config, n int) Result {
	cfg.Policy = Policy{Min: n, Max: n, Disabled: true}
	return Simulate(trace, cfg)
}

// PeakNodesFor returns the fleet size needed to hold the trace's peak at
// or under targetUtil — the peak-static provisioning baseline.
func PeakNodesFor(trace []workload.LoadPoint, perNodeCapacity, targetUtil float64) int {
	peak := 0.0
	for _, p := range trace {
		if p.Rate > peak {
			peak = p.Rate
		}
	}
	return int(math.Ceil(peak / (perNodeCapacity * targetUtil)))
}
