package elastic

import (
	"testing"
	"time"

	"repro/internal/workload"
)

func trace() []workload.LoadPoint {
	// 2 simulated days at 5-minute steps, 100..1000 req/s diurnal cycle.
	return workload.DiurnalTrace(576, 5*time.Minute, 100, 1000, 2.5, 1)
}

func TestAutoscalerTracksLoad(t *testing.T) {
	tr := trace()
	res := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: 64},
		Seed:            1,
	})
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Fatalf("no scaling activity: ups=%d downs=%d", res.ScaleUps, res.ScaleDowns)
	}
	// Fleet must grow toward the peak (peak 1000 r/s needs ~31 nodes at 0.65).
	if res.PeakNodes < 20 {
		t.Fatalf("peak fleet %d never approached demand", res.PeakNodes)
	}
	if res.ViolationFrac > 0.1 {
		t.Fatalf("SLO violations %.1f%% with a working autoscaler", res.ViolationFrac*100)
	}
}

func TestAutoscalerCheaperThanPeakStatic(t *testing.T) {
	tr := trace()
	cfg := Config{PerNodeCapacity: 50, Seed: 2}
	peak := PeakNodesFor(tr, 50, 0.65)
	static := Static(tr, cfg, peak)
	auto := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: peak + 10},
		Seed:            2,
	})
	if auto.NodeSteps >= static.NodeSteps {
		t.Fatalf("autoscaler cost %d not below peak-static cost %d", auto.NodeSteps, static.NodeSteps)
	}
	// And clearly cheaper: at least 20% savings on a diurnal trace.
	if float64(auto.NodeSteps) > 0.8*float64(static.NodeSteps) {
		t.Fatalf("autoscaler saved only %d vs %d", auto.NodeSteps, static.NodeSteps)
	}
	// Peak-static never violates; autoscaler must stay close.
	if static.Violations != 0 {
		t.Fatalf("peak-static violated SLO %d times", static.Violations)
	}
}

func TestAutoscalerBetterUtilThanPeakStatic(t *testing.T) {
	tr := trace()
	cfg := Config{PerNodeCapacity: 50, Seed: 3}
	peak := PeakNodesFor(tr, 50, 0.65)
	static := Static(tr, cfg, peak)
	auto := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: peak + 10},
		Seed:            3,
	})
	if auto.AvgUtil <= static.AvgUtil {
		t.Fatalf("autoscaler util %.2f not above static %.2f", auto.AvgUtil, static.AvgUtil)
	}
}

func TestUnderProvisionedStaticViolates(t *testing.T) {
	tr := trace()
	cfg := Config{PerNodeCapacity: 50, Seed: 4}
	mean := Static(tr, cfg, 8) // ~mean-level fleet for a 100-1000 r/s cycle
	if mean.ViolationFrac < 0.2 {
		t.Fatalf("mean-static violated only %.1f%%; expected heavy violations", mean.ViolationFrac*100)
	}
}

func TestSpotPreemptionsRecovered(t *testing.T) {
	tr := trace()
	res := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: 64},
		SpotPreemptProb: 0.01,
		Seed:            5,
	})
	if res.Preemptions == 0 {
		t.Fatal("no preemptions with 1% per-node-step probability")
	}
	// The autoscaler replaces lost nodes; violations stay bounded.
	if res.ViolationFrac > 0.25 {
		t.Fatalf("violations %.1f%% under spot preemption", res.ViolationFrac*100)
	}
}

func TestProvisionDelayCausesTransientViolations(t *testing.T) {
	// A step-function load with slow provisioning must violate during
	// ramp-up; instant provisioning must not.
	var tr []workload.LoadPoint
	for i := 0; i < 40; i++ {
		rate := 100.0
		if i >= 10 {
			rate = 1500
		}
		tr = append(tr, workload.LoadPoint{Time: time.Duration(i) * time.Minute, Rate: rate})
	}
	slow := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: 64, ProvisionDelaySteps: 5},
		Seed:            6,
	})
	fast := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: 64, ProvisionDelaySteps: 0},
		Seed:            6,
	})
	if slow.Violations <= fast.Violations {
		t.Fatalf("slow provisioning violations %d <= fast %d", slow.Violations, fast.Violations)
	}
}

func TestBoundsRespected(t *testing.T) {
	tr := trace()
	res := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 3, Max: 10},
		Seed:            7,
	})
	for i, n := range res.NodeSeries {
		if n < 1 || n > 10 {
			t.Fatalf("step %d fleet %d outside [1,10]", i, n)
		}
	}
	if res.PeakNodes != 10 {
		t.Fatalf("peak %d; demand should hit the max bound", res.PeakNodes)
	}
}

func TestEmptyTrace(t *testing.T) {
	res := Simulate(nil, Config{PerNodeCapacity: 10})
	if res.NodeSteps != 0 || res.AvgUtil != 0 {
		t.Fatalf("empty trace: %+v", res)
	}
}

func TestPeakNodesFor(t *testing.T) {
	tr := []workload.LoadPoint{{Rate: 100}, {Rate: 650}, {Rate: 300}}
	if got := PeakNodesFor(tr, 100, 0.65); got != 10 {
		t.Fatalf("PeakNodesFor = %d, want 10", got)
	}
}

func TestSLOPolicyTracksLatency(t *testing.T) {
	tr := trace()
	res := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{Min: 2, Max: 64, SLOTargetP99: 20 * time.Millisecond},
		Seed:            8,
	})
	if len(res.P99Series) != len(tr) {
		t.Fatalf("P99Series has %d points, want %d", len(res.P99Series), len(tr))
	}
	if res.ScaleUps == 0 || res.ScaleDowns == 0 {
		t.Fatalf("no scaling activity: ups=%d downs=%d", res.ScaleUps, res.ScaleDowns)
	}
	// Once the fleet settles, the windowed p99 must sit at or under the
	// target for the vast majority of steps. A 20ms target on a 2ms base
	// latency puts the breach point just under the rho=0.9 utilization SLO
	// line, so the policy reacts before a utilization violation lands.
	breaches := 0
	for _, p := range res.P99Series {
		if p > 20*time.Millisecond {
			breaches++
		}
	}
	if frac := float64(breaches) / float64(len(res.P99Series)); frac > 0.15 {
		t.Fatalf("p99 over target on %.1f%% of steps", frac*100)
	}
	if res.ViolationFrac > 0.1 {
		t.Fatalf("SLO violations %.1f%% under latency-driven scaling", res.ViolationFrac*100)
	}
}

func TestSLOPolicyScalesUpOnBreach(t *testing.T) {
	// Step-function load: latency blows past target at the step, and the
	// SLO policy must react by growing the fleet.
	var tr []workload.LoadPoint
	for i := 0; i < 30; i++ {
		rate := 100.0
		if i >= 10 {
			rate = 1200
		}
		tr = append(tr, workload.LoadPoint{Time: time.Duration(i) * time.Minute, Rate: rate})
	}
	res := Simulate(tr, Config{
		PerNodeCapacity: 50,
		Policy:          Policy{Min: 2, Max: 64, SLOTargetP99: 40 * time.Millisecond, ProvisionDelaySteps: 1},
		Seed:            9,
	})
	if res.ScaleUps == 0 {
		t.Fatal("SLO policy never scaled up across a 12x load step")
	}
	// p99 must breach at the step and recover by the end.
	if res.P99Series[10] <= 40*time.Millisecond {
		t.Fatalf("p99 at the load step = %v, expected a breach", res.P99Series[10])
	}
	if last := res.P99Series[len(res.P99Series)-1]; last > 40*time.Millisecond {
		t.Fatalf("p99 never recovered: %v at end of trace", last)
	}
	if res.PeakNodes < 20 {
		t.Fatalf("peak fleet %d never approached the 1200 r/s demand", res.PeakNodes)
	}
}

func TestSLOPolicyDeterministic(t *testing.T) {
	tr := trace()
	cfg := Config{
		PerNodeCapacity: 50,
		Policy:          Policy{Min: 2, Max: 64, SLOTargetP99: 40 * time.Millisecond},
		Seed:            10,
	}
	a, b := Simulate(tr, cfg), Simulate(tr, cfg)
	if a.NodeSteps != b.NodeSteps || a.ScaleUps != b.ScaleUps || a.ScaleDowns != b.ScaleDowns {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.P99Series {
		if a.P99Series[i] != b.P99Series[i] {
			t.Fatalf("P99Series diverged at step %d: %v vs %v", i, a.P99Series[i], b.P99Series[i])
		}
	}
}

func TestUtilizationPolicySkipsP99Series(t *testing.T) {
	res := Simulate(trace(), Config{
		PerNodeCapacity: 50,
		Policy:          Policy{TargetUtil: 0.65, Min: 2, Max: 64},
		Seed:            11,
	})
	if len(res.P99Series) != 0 {
		t.Fatalf("utilization policy populated P99Series (%d points)", len(res.P99Series))
	}
}

func BenchmarkSimulate(b *testing.B) {
	tr := workload.DiurnalTrace(2016, 5*time.Minute, 100, 1000, 2.5, 1)
	cfg := Config{PerNodeCapacity: 50, Policy: Policy{TargetUtil: 0.65, Min: 2, Max: 64}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Simulate(tr, cfg)
	}
}
