// Package gossip implements SWIM-style cluster membership: periodic random
// probing with indirect pings, suspicion with incarnation-numbered
// refutation, and infection-style dissemination of membership updates. A
// phi-accrual failure detector (phi.go) provides the adaptive
// per-connection suspicion signal long-running services use on top.
//
// The protocol runs in deterministic rounds inside a harness (no real
// sockets): each round every live member probes one random peer,
// piggybacking its gossip buffer. Message loss is injected with a seeded
// probability, which is how the tests exercise indirect probing and false
// positives.
package gossip

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/rng"
)

// Status is a member's believed state.
type Status int

// Member states, ordered by precedence for equal incarnations.
const (
	Alive Status = iota
	Suspect
	Dead
)

func (s Status) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	default:
		return "dead"
	}
}

// update is a disseminated membership claim.
type update struct {
	about       int
	status      Status
	incarnation uint64
}

// supersedes reports whether u should overwrite cur in a member's view.
// Higher incarnation wins; at equal incarnation the stronger claim wins
// (Dead > Suspect > Alive).
func (u update) supersedes(cur update) bool {
	if u.incarnation != cur.incarnation {
		return u.incarnation > cur.incarnation
	}
	return u.status > cur.status
}

// Config tunes the protocol.
type Config struct {
	// SuspicionRounds is how many rounds a Suspect has to refute before
	// being declared Dead. Default 3.
	SuspicionRounds int
	// IndirectProbes is the number of proxies used when a direct ping
	// fails. Default 3.
	IndirectProbes int
	// GossipFanout bounds piggybacked updates per message. Default 8.
	GossipFanout int
	// LossProb is the probability any single message is lost. Default 0.
	LossProb float64
	// Seed drives probe target selection and loss.
	Seed uint64
	// Metrics, when non-nil, receives protocol counters (rounds, pings,
	// lost messages, suspicions, false positives). Optional.
	Metrics *metrics.Registry
}

// gossipMetrics holds the optional counters; nil fields are no-ops.
type gossipMetrics struct {
	rounds         *metrics.Counter
	pings          *metrics.Counter
	indirectProbes *metrics.Counter
	messagesLost   *metrics.Counter
	suspicions     *metrics.Counter
	falsePositives *metrics.Counter
}

type memberView struct {
	update
	suspectAt int // round at which suspicion started
}

type node struct {
	id          int
	incarnation uint64
	view        map[int]*memberView
	// gossip buffer: updates to piggyback, with remaining transmission
	// budget (lambda log n transmissions in real SWIM; fixed budget here).
	buffer []bufferedUpdate
}

type bufferedUpdate struct {
	update
	remaining int
}

// Cluster is the in-process protocol harness.
type Cluster struct {
	cfg     Config
	nodes   []*node
	crashed []bool
	rand    *rng.RNG
	round   int

	// FalsePositives counts distinct live members ever declared Dead by
	// anyone while they were actually running.
	FalsePositives int
	fpSeen         map[int]bool
	m              gossipMetrics
}

// NewCluster builds n members that all know each other as Alive.
func NewCluster(n int, cfg Config) *Cluster {
	if cfg.SuspicionRounds <= 0 {
		cfg.SuspicionRounds = 3
	}
	if cfg.IndirectProbes <= 0 {
		cfg.IndirectProbes = 3
	}
	if cfg.GossipFanout <= 0 {
		cfg.GossipFanout = 8
	}
	c := &Cluster{
		cfg:     cfg,
		nodes:   make([]*node, n),
		crashed: make([]bool, n),
		rand:    rng.New(cfg.Seed),
		fpSeen:  map[int]bool{},
	}
	if reg := cfg.Metrics; reg != nil {
		c.m = gossipMetrics{
			rounds:         reg.Counter("gossip_rounds"),
			pings:          reg.Counter("gossip_pings"),
			indirectProbes: reg.Counter("gossip_indirect_probes"),
			messagesLost:   reg.Counter("gossip_messages_lost"),
			suspicions:     reg.Counter("gossip_suspicions"),
			falsePositives: reg.Counter("gossip_false_positives"),
		}
	}
	for i := 0; i < n; i++ {
		nd := &node{id: i, view: map[int]*memberView{}}
		for j := 0; j < n; j++ {
			nd.view[j] = &memberView{update: update{about: j, status: Alive}}
		}
		c.nodes[i] = nd
	}
	return c
}

// Crash kills a member silently (it stops responding).
func (c *Cluster) Crash(id int) { c.crashed[id] = true }

// SetLossProb changes the per-message loss probability mid-run — the knob
// the chaos engine turns for lossy-network phases. The harness is
// single-threaded (the driver calls Round), so no locking is needed.
func (c *Cluster) SetLossProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.cfg.LossProb = p
}

// Revive restarts a crashed member with a higher incarnation so it can
// refute its own death.
func (c *Cluster) Revive(id int) {
	c.crashed[id] = false
	n := c.nodes[id]
	n.incarnation++
	n.enqueue(update{about: id, status: Alive, incarnation: n.incarnation}, c.budget())
}

// budget is the dissemination budget for a fresh update.
func (c *Cluster) budget() int {
	// ~3·log2(n) transmissions spreads an update with high probability.
	b := 3
	for n := len(c.nodes); n > 1; n >>= 1 {
		b += 3
	}
	return b
}

func (n *node) enqueue(u update, budget int) {
	// Replace any older buffered update about the same member.
	for i := range n.buffer {
		if n.buffer[i].about == u.about {
			if u.supersedes(n.buffer[i].update) {
				n.buffer[i] = bufferedUpdate{update: u, remaining: budget}
			}
			return
		}
	}
	n.buffer = append(n.buffer, bufferedUpdate{update: u, remaining: budget})
}

// takeGossip pops up to fanout updates to piggyback, decrementing budgets.
func (n *node) takeGossip(fanout int) []update {
	var out []update
	var keep []bufferedUpdate
	for _, b := range n.buffer {
		if len(out) < fanout {
			out = append(out, b.update)
			b.remaining--
		}
		if b.remaining > 0 {
			keep = append(keep, b)
		}
	}
	n.buffer = keep
	return out
}

// merge applies a received claim to the node's view.
func (c *Cluster) merge(n *node, u update, budget int) {
	if u.about == n.id {
		// Refutation: if someone claims we are suspect/dead, bump our
		// incarnation and gossip that we are alive.
		if u.status != Alive && u.incarnation >= n.incarnation {
			n.incarnation = u.incarnation + 1
			n.enqueue(update{about: n.id, status: Alive, incarnation: n.incarnation}, budget)
		}
		return
	}
	cur := n.view[u.about]
	if cur == nil {
		n.view[u.about] = &memberView{update: u, suspectAt: c.round}
		n.enqueue(u, budget)
		return
	}
	if u.supersedes(cur.update) {
		wasSuspect := cur.status == Suspect
		cur.update = u
		if u.status == Suspect && !wasSuspect {
			cur.suspectAt = c.round
		}
		if u.status == Dead && !c.crashed[u.about] && !c.fpSeen[u.about] {
			c.fpSeen[u.about] = true
			c.FalsePositives++
			c.m.falsePositives.Inc()
		}
		n.enqueue(u, budget)
	}
}

// lost reports whether a message is dropped this time.
func (c *Cluster) lost() bool {
	if c.cfg.LossProb > 0 && c.rand.Float64() < c.cfg.LossProb {
		c.m.messagesLost.Inc()
		return true
	}
	return false
}

// deliverGossip hands piggybacked updates to a receiver.
func (c *Cluster) deliverGossip(to *node, gossip []update) {
	for _, u := range gossip {
		c.merge(to, u, c.budget())
	}
}

// Round executes one protocol period: every live member probes one random
// peer (with indirect fallback), then suspicion timeouts fire.
func (c *Cluster) Round() {
	c.round++
	c.m.rounds.Inc()
	order := c.rand.Perm(len(c.nodes))
	for _, i := range order {
		if c.crashed[i] {
			continue
		}
		c.probe(c.nodes[i])
	}
	// Suspicion timeouts.
	for i, n := range c.nodes {
		if c.crashed[i] {
			continue
		}
		for _, mv := range n.view {
			if mv.status == Suspect && c.round-mv.suspectAt >= c.cfg.SuspicionRounds {
				u := update{about: mv.about, status: Dead, incarnation: mv.incarnation}
				c.merge(n, u, c.budget())
			}
		}
	}
}

// probe performs one SWIM probe from n.
func (c *Cluster) probe(n *node) {
	target := c.pickTarget(n)
	if target < 0 {
		return
	}
	gossip := n.takeGossip(c.cfg.GossipFanout)
	acked := c.ping(n, target, gossip)
	if !acked {
		// Indirect probes through k random proxies.
		proxies := c.pickProxies(n, target, c.cfg.IndirectProbes)
		c.m.indirectProbes.Add(int64(len(proxies)))
		for _, p := range proxies {
			if c.crashed[p] || c.lost() {
				continue
			}
			// Proxy pings the target on our behalf.
			if c.ping(c.nodes[p], target, nil) {
				acked = true
				break
			}
		}
	}
	if !acked {
		mv := n.view[target]
		if mv.status == Alive {
			c.m.suspicions.Inc()
			u := update{about: target, status: Suspect, incarnation: mv.incarnation}
			c.merge(n, u, c.budget())
		}
	} else {
		// A successful ack refutes local suspicion at the same incarnation.
		mv := n.view[target]
		if mv.status == Suspect {
			c.merge(n, update{about: target, status: Alive, incarnation: mv.incarnation + 1}, c.budget())
		}
	}
}

// ping sends ping+gossip and returns whether an ack came back. Both legs
// can be lost.
func (c *Cluster) ping(from *node, target int, gossip []update) bool {
	c.m.pings.Inc()
	if c.crashed[target] || c.lost() {
		return false
	}
	c.deliverGossip(c.nodes[target], gossip)
	// Ack leg, carrying the target's gossip back.
	if c.lost() {
		return false
	}
	back := c.nodes[target].takeGossip(c.cfg.GossipFanout)
	c.deliverGossip(from, back)
	return true
}

func (c *Cluster) pickTarget(n *node) int {
	// Random member other than self that n does not believe Dead.
	var candidates []int
	for id, mv := range n.view {
		if id != n.id && mv.status != Dead {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	sort.Ints(candidates)
	return candidates[c.rand.Intn(len(candidates))]
}

func (c *Cluster) pickProxies(n *node, target, k int) []int {
	var candidates []int
	for id, mv := range n.view {
		if id != n.id && id != target && mv.status == Alive {
			candidates = append(candidates, id)
		}
	}
	sort.Ints(candidates)
	c.rand.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if len(candidates) > k {
		candidates = candidates[:k]
	}
	return candidates
}

// StatusAt returns what member `at` believes about member `about`.
func (c *Cluster) StatusAt(at, about int) Status {
	return c.nodes[at].view[about].status
}

// AllBelieve reports whether every live member believes `about` has the
// given status.
func (c *Cluster) AllBelieve(about int, status Status) bool {
	for i, n := range c.nodes {
		if c.crashed[i] || i == about {
			continue
		}
		if n.view[about].status != status {
			return false
		}
	}
	return true
}

// RoundsToDetect crashes `victim` and returns how many rounds until every
// live member believes it Dead (capped at maxRounds, returning -1).
func (c *Cluster) RoundsToDetect(victim, maxRounds int) int {
	c.Crash(victim)
	for r := 1; r <= maxRounds; r++ {
		c.Round()
		if c.AllBelieve(victim, Dead) {
			return r
		}
	}
	return -1
}
