package gossip

import (
	"testing"

	"repro/internal/metrics"
)

func TestMetricsRecordedDuringDetection(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCluster(8, Config{Seed: 42, Metrics: reg})
	rounds := c.RoundsToDetect(3, 50)
	if rounds < 0 {
		t.Fatal("victim never detected")
	}
	if got := reg.Counter("gossip_rounds").Value(); got != int64(rounds) {
		t.Fatalf("rounds counter = %d, want %d", got, rounds)
	}
	if reg.Counter("gossip_pings").Value() == 0 {
		t.Fatal("no pings counted")
	}
	if reg.Counter("gossip_suspicions").Value() == 0 {
		t.Fatal("no suspicions counted despite a crash")
	}
	// The victim really crashed: a correct run records no false positives.
	if got := reg.Counter("gossip_false_positives").Value(); got != int64(c.FalsePositives) {
		t.Fatalf("false positive counter = %d, field = %d", got, c.FalsePositives)
	}
}

func TestLossCounterTracksInjectedLoss(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewCluster(10, Config{Seed: 7, LossProb: 0.3, Metrics: reg})
	for i := 0; i < 20; i++ {
		c.Round()
	}
	if reg.Counter("gossip_messages_lost").Value() == 0 {
		t.Fatal("no lost messages counted at 30% loss")
	}
	if reg.Counter("gossip_indirect_probes").Value() == 0 {
		t.Fatal("no indirect probes counted despite loss")
	}
}
