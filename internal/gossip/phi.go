package gossip

import (
	"math"
	"time"
)

// PhiDetector is a phi-accrual failure detector: rather than a binary
// timeout, it emits a suspicion level phi = -log10(P(heartbeat still
// coming)), computed from the observed inter-arrival distribution. Callers
// act at an application-chosen threshold (phi=8 ~ 10^-8 false-positive
// rate under the model). Not safe for concurrent use.
type PhiDetector struct {
	intervals []time.Duration // ring buffer of recent inter-arrivals
	next      int
	full      bool
	last      time.Time
	seen      bool
}

// NewPhiDetector returns a detector remembering the last `window`
// inter-arrival samples (default 100 if window <= 0).
func NewPhiDetector(window int) *PhiDetector {
	if window <= 0 {
		window = 100
	}
	return &PhiDetector{intervals: make([]time.Duration, window)}
}

// Heartbeat records an arrival at time t.
func (d *PhiDetector) Heartbeat(t time.Time) {
	if d.seen {
		iv := t.Sub(d.last)
		if iv > 0 {
			d.intervals[d.next] = iv
			d.next++
			if d.next == len(d.intervals) {
				d.next = 0
				d.full = true
			}
		}
	}
	d.last = t
	d.seen = true
}

// Samples returns how many inter-arrival samples the detector holds.
func (d *PhiDetector) Samples() int {
	if d.full {
		return len(d.intervals)
	}
	return d.next
}

// Phi returns the suspicion level at time now. With fewer than two samples
// it returns 0 (no basis for suspicion).
func (d *PhiDetector) Phi(now time.Time) float64 {
	n := d.Samples()
	if !d.seen || n < 2 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := d.intervals[i].Seconds()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	std := math.Sqrt(variance)
	// Guard: a perfectly regular heartbeat would make std 0 and phi jump
	// instantly; floor it at a fraction of the mean, as Cassandra does.
	if std < mean/10 {
		std = mean / 10
	}
	elapsed := now.Sub(d.last).Seconds()
	if elapsed <= 0 {
		return 0
	}
	// P(next heartbeat later than elapsed) under N(mean, std), upper tail.
	z := (elapsed - mean) / std
	if z > 5 {
		// erfc underflows for large z; use the asymptotic tail
		// P ≈ φ(z)/z, so -log10 P ≈ (z²/2 + ln(z·√(2π))) / ln(10),
		// which keeps phi monotone for arbitrarily long silences.
		return (z*z/2 + math.Log(z*math.Sqrt(2*math.Pi))) / math.Ln10
	}
	p := 0.5 * math.Erfc(z/math.Sqrt2)
	if p < 1e-300 {
		p = 1e-300
	}
	return -math.Log10(p)
}
