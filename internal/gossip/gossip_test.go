package gossip

import (
	"testing"
	"time"
)

func TestStableClusterStaysAlive(t *testing.T) {
	c := NewCluster(16, Config{Seed: 1})
	for r := 0; r < 50; r++ {
		c.Round()
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			if i == j {
				continue
			}
			if got := c.StatusAt(i, j); got != Alive {
				t.Fatalf("node %d believes %d is %v in a healthy cluster", i, j, got)
			}
		}
	}
	if c.FalsePositives != 0 {
		t.Fatalf("%d false positives without loss or crashes", c.FalsePositives)
	}
}

func TestCrashDetectedByAll(t *testing.T) {
	c := NewCluster(16, Config{Seed: 2})
	rounds := c.RoundsToDetect(5, 200)
	if rounds < 0 {
		t.Fatal("crash never detected")
	}
	if rounds > 60 {
		t.Fatalf("detection took %d rounds, too slow", rounds)
	}
}

func TestDetectionScalesWithClusterSize(t *testing.T) {
	for _, n := range []int{8, 32} {
		c := NewCluster(n, Config{Seed: 3})
		if r := c.RoundsToDetect(0, 400); r < 0 {
			t.Fatalf("n=%d: never detected", n)
		}
	}
}

func TestSuspicionPrecedesDeath(t *testing.T) {
	c := NewCluster(8, Config{Seed: 4, SuspicionRounds: 5})
	c.Crash(3)
	sawSuspect := false
	for r := 0; r < 100; r++ {
		c.Round()
		for i := 0; i < 8; i++ {
			if i == 3 {
				continue
			}
			if c.StatusAt(i, 3) == Suspect {
				sawSuspect = true
			}
		}
		if c.AllBelieve(3, Dead) {
			break
		}
	}
	if !sawSuspect {
		t.Fatal("victim went straight to Dead without a Suspect phase")
	}
	if !c.AllBelieve(3, Dead) {
		t.Fatal("victim never declared dead")
	}
}

func TestRefutationOnRevival(t *testing.T) {
	c := NewCluster(8, Config{Seed: 5})
	if r := c.RoundsToDetect(2, 200); r < 0 {
		t.Fatal("never detected")
	}
	c.Revive(2)
	for r := 0; r < 100; r++ {
		c.Round()
		if c.AllBelieve(2, Alive) {
			return
		}
	}
	t.Fatal("revived node never rejoined as Alive everywhere")
}

func TestMessageLossToleratedByIndirectProbes(t *testing.T) {
	// 20% loss: indirect probing plus a refutation window sized like real
	// SWIM deployments (several gossip periods, ~log n) keeps false
	// positives negligible.
	c := NewCluster(16, Config{Seed: 6, LossProb: 0.2, SuspicionRounds: 12})
	for r := 0; r < 100; r++ {
		c.Round()
	}
	if c.FalsePositives > 3 {
		t.Fatalf("%d false positives at 20%% loss", c.FalsePositives)
	}
	// A real crash is still detected under loss.
	if r := c.RoundsToDetect(7, 400); r < 0 {
		t.Fatal("crash undetected under loss")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := NewCluster(12, Config{Seed: 7})
	b := NewCluster(12, Config{Seed: 7})
	ra := a.RoundsToDetect(4, 300)
	rb := b.RoundsToDetect(4, 300)
	if ra != rb {
		t.Fatalf("same seed, different detection: %d vs %d", ra, rb)
	}
}

func TestSupersedes(t *testing.T) {
	cases := []struct {
		u, cur update
		want   bool
	}{
		{update{0, Suspect, 1}, update{0, Alive, 1}, true},
		{update{0, Alive, 1}, update{0, Suspect, 1}, false},
		{update{0, Alive, 2}, update{0, Dead, 1}, true},
		{update{0, Dead, 1}, update{0, Suspect, 1}, true},
		{update{0, Alive, 1}, update{0, Alive, 1}, false},
	}
	for i, c := range cases {
		if got := c.u.supersedes(c.cur); got != c.want {
			t.Fatalf("case %d: supersedes = %v, want %v", i, got, c.want)
		}
	}
}

func TestPhiGrowsWithSilence(t *testing.T) {
	d := NewPhiDetector(0)
	start := time.Unix(1000, 0)
	for i := 0; i < 50; i++ {
		d.Heartbeat(start.Add(time.Duration(i) * time.Second))
	}
	last := start.Add(49 * time.Second)
	phiSoon := d.Phi(last.Add(1 * time.Second))
	phiLate := d.Phi(last.Add(5 * time.Second))
	phiVeryLate := d.Phi(last.Add(20 * time.Second))
	if !(phiSoon < phiLate && phiLate < phiVeryLate) {
		t.Fatalf("phi not increasing: %v %v %v", phiSoon, phiLate, phiVeryLate)
	}
	if phiVeryLate < 8 {
		t.Fatalf("phi after 20x the interval = %v, want >= 8", phiVeryLate)
	}
}

func TestPhiLowWhileHealthy(t *testing.T) {
	d := NewPhiDetector(0)
	start := time.Unix(0, 0)
	for i := 0; i < 100; i++ {
		d.Heartbeat(start.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	now := start.Add(9900*time.Millisecond + 50*time.Millisecond)
	if phi := d.Phi(now); phi > 1 {
		t.Fatalf("phi = %v mid-interval, want < 1", phi)
	}
}

func TestPhiNoSamples(t *testing.T) {
	d := NewPhiDetector(10)
	if d.Phi(time.Now()) != 0 {
		t.Fatal("phi with no samples should be 0")
	}
	d.Heartbeat(time.Unix(0, 0))
	if d.Phi(time.Unix(100, 0)) != 0 {
		t.Fatal("phi with one sample should be 0")
	}
}

func TestPhiWindowBounded(t *testing.T) {
	d := NewPhiDetector(10)
	start := time.Unix(0, 0)
	for i := 0; i < 1000; i++ {
		d.Heartbeat(start.Add(time.Duration(i) * time.Second))
	}
	if d.Samples() != 10 {
		t.Fatalf("samples = %d, want capped at 10", d.Samples())
	}
}

func TestPhiAdaptsToJitterylHeartbeats(t *testing.T) {
	// With high-variance intervals, the same silence yields lower phi than
	// with regular intervals — the adaptive property.
	regular := NewPhiDetector(0)
	jittery := NewPhiDetector(0)
	tm := time.Unix(0, 0)
	for i := 0; i < 60; i++ {
		regular.Heartbeat(tm.Add(time.Duration(i) * time.Second))
	}
	jt := time.Unix(0, 0)
	cur := jt
	for i := 0; i < 60; i++ {
		var step time.Duration
		if i%2 == 0 {
			step = 100 * time.Millisecond
		} else {
			step = 1900 * time.Millisecond
		}
		cur = cur.Add(step)
		jittery.Heartbeat(cur)
	}
	// Both have ~1s mean interval; probe 3s after last heartbeat.
	pr := regular.Phi(tm.Add(59*time.Second + 3*time.Second))
	pj := jittery.Phi(cur.Add(3 * time.Second))
	if pj >= pr {
		t.Fatalf("jittery phi %v >= regular phi %v; detector not adaptive", pj, pr)
	}
}

func BenchmarkRound64Nodes(b *testing.B) {
	c := NewCluster(64, Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Round()
	}
}
