// Package trace records engine execution timelines — stages, tasks,
// retries — and exports them as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto) so a job's parallelism, stragglers and
// recovery behaviour can be inspected visually. Recording is lock-cheap
// and disabled by default; the engine emits events when a Recorder is
// configured.
//
// Spans can be causally linked across process and message boundaries: a
// TraceContext (trace id + span id) is handed to downstream work — a
// task launched by a stage, a shuffle fetch issued by a task, a
// checkpoint barrier riding a worker queue, a Raft proposal carrying a
// journal record — and the child span records the parent's id. Package
// timeline.go reconstructs one merged cross-node tree per trace from
// those links. Instant events (zero-duration annotations, e.g. chaos
// fault injections) mark a moment on a track without parenting.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceContext identifies a span as a potential parent for downstream
// work. The zero value means "no parent": beginning a span under it
// starts a fresh trace. TraceContext is a small value type — carry it
// on messages by copy, never by pointer.
type TraceContext struct {
	Trace uint64 // trace (job) id; 0 = none
	Span  uint64 // parent span id within the trace; 0 = root
}

// Valid reports whether the context belongs to a trace.
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// Span is one completed interval on some named track (e.g. a task on an
// executor node).
type Span struct {
	Name     string        // e.g. "task p3"
	Category string        // e.g. "task", "stage"
	Track    string        // e.g. "node-2" — rendered as a thread row
	Start    time.Duration // relative to the recorder epoch
	Duration time.Duration
	Args     map[string]string // extra key/values shown on click

	// Causal identity: Trace groups spans of one job, ID names this span,
	// Parent names the span that caused it (0 = root). Zero values mean
	// the span was recorded without causal context (legacy Begin/Add).
	Trace  uint64
	ID     uint64
	Parent uint64

	// Instant marks a zero-duration annotation (chaos fault injection,
	// barrier arrival); exported as a Chrome instant event (ph="i").
	Instant bool
}

// Recorder collects spans. Safe for concurrent use. The zero value is NOT
// usable; call New.
type Recorder struct {
	mu       sync.Mutex
	epoch    time.Time
	spans    []Span
	traceSeq uint64
	spanSeq  uint64
}

// New returns an empty recorder with its epoch at now.
func New() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// nextIDs allocates a span id, and a trace id when parent carries none.
func (r *Recorder) nextIDs(parent TraceContext) TraceContext {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spanSeq++
	tc := TraceContext{Trace: parent.Trace, Span: r.spanSeq}
	if tc.Trace == 0 {
		r.traceSeq++
		tc.Trace = r.traceSeq
	}
	return tc
}

// Now returns the current offset from the recorder's epoch — the Start
// value a caller should stamp on a virtual-duration span recorded via
// Add/AddCtx so it lines up with wall-clock spans on the same timeline.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch)
}

// Begin starts a span now; call the returned func to end it. Args are
// attached at end time (a nil args map is fine — panic-recovery paths end
// spans with nil). The closure is idempotent: the span is recorded exactly
// once even if both a deferred recovery handler and the normal path call it.
func (r *Recorder) Begin(name, category, track string) func(args map[string]string) {
	end, _ := r.BeginCtx(name, category, track, TraceContext{})
	return end
}

// BeginCtx is Begin with causal linkage: the new span records parent as
// its cause (a zero parent starts a fresh trace), and the returned
// TraceContext identifies the new span so downstream work — tasks,
// fetches, barriers, proposals — can parent under it. On a nil recorder
// the end func is a no-op and the context is zero.
func (r *Recorder) BeginCtx(name, category, track string, parent TraceContext) (func(args map[string]string), TraceContext) {
	if r == nil {
		return func(map[string]string) {}, TraceContext{}
	}
	tc := r.nextIDs(parent)
	start := time.Now()
	var once sync.Once
	end := func(args map[string]string) {
		once.Do(func() {
			endT := time.Now()
			r.mu.Lock()
			r.spans = append(r.spans, Span{
				Name:     name,
				Category: category,
				Track:    track,
				Start:    start.Sub(r.epoch),
				Duration: endT.Sub(start),
				Args:     args,
				Trace:    tc.Trace,
				ID:       tc.Span,
				Parent:   parent.Span,
			})
			r.mu.Unlock()
		})
	}
	return end, tc
}

// Add records a fully-formed span (for virtual-time simulations). Causal
// ids already present on s are preserved; otherwise the span stays
// unlinked.
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// AddCtx records a fully-formed span linked under parent, allocating its
// causal ids, and returns the new span's context. Virtual-duration spans
// (e.g. simulated network transfers) use this: the caller supplies Start
// and Duration, the recorder supplies identity.
func (r *Recorder) AddCtx(s Span, parent TraceContext) TraceContext {
	if r == nil {
		return TraceContext{}
	}
	tc := r.nextIDs(parent)
	s.Trace, s.ID, s.Parent = tc.Trace, tc.Span, parent.Span
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return tc
}

// Instant records a zero-duration annotation on a track at now — the
// shape chaos fault injections use to mark "a crash happened HERE" on
// the affected node's row. Instants carry no causal parent (they are
// external interventions, not effects of the traced work).
func (r *Recorder) Instant(name, category, track string, args map[string]string) {
	if r == nil {
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.spans = append(r.spans, Span{
		Name:     name,
		Category: category,
		Track:    track,
		Start:    now.Sub(r.epoch),
		Args:     args,
		Instant:  true,
	})
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded, in deterministic order:
// by start time, with ties broken by track, then name, then span id —
// so exports are byte-stable for virtual-time recordings and usable in
// golden tests.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// chromeEvent is the trace-event format's "complete event" (ph=X) or
// "instant event" (ph=i).
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	Ts    float64           `json:"ts"`            // microseconds
	Dur   float64           `json:"dur,omitempty"` // microseconds
	Pid   int               `json:"pid"`
	Tid   int               `json:"tid"`
	Scope string            `json:"s,omitempty"` // instant scope ("t")
	Args  map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace emits the spans as a Chrome trace-event JSON array.
// Tracks map to thread rows, named via metadata events; instant spans
// become thread-scoped instant events; causal ids ride the args
// (trace/span/parent) so the linkage survives export. A nil or empty
// recorder writes an empty (but valid) event array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	// Assign stable tids per track, sorted for determinism.
	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	tid := map[string]int{}
	events := []any{}
	for i, t := range tracks {
		tid[t] = i + 1
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": t},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  s.Category,
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  float64(s.Duration.Microseconds()),
			Pid:  1,
			Tid:  tid[s.Track],
			Args: s.Args,
		}
		if s.Instant {
			ev.Ph, ev.Dur, ev.Scope = "i", 0, "t"
		}
		if s.Trace != 0 {
			ev.Args = argsWithIDs(s)
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// argsWithIDs copies a span's args and adds its causal identity, leaving
// the recorded span untouched.
func argsWithIDs(s Span) map[string]string {
	out := make(map[string]string, len(s.Args)+3)
	for k, v := range s.Args {
		out[k] = v
	}
	out["trace"] = u64str(s.Trace)
	out["span"] = u64str(s.ID)
	if s.Parent != 0 {
		out["parent"] = u64str(s.Parent)
	}
	return out
}

func u64str(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
