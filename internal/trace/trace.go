// Package trace records engine execution timelines — stages, tasks,
// retries — and exports them as Chrome trace-event JSON (load in
// chrome://tracing or Perfetto) so a job's parallelism, stragglers and
// recovery behaviour can be inspected visually. Recording is lock-cheap
// and disabled by default; the engine emits events when a Recorder is
// configured.
package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Span is one completed interval on some named track (e.g. a task on an
// executor node).
type Span struct {
	Name     string        // e.g. "task p3"
	Category string        // e.g. "task", "stage"
	Track    string        // e.g. "node-2" — rendered as a thread row
	Start    time.Duration // relative to the recorder epoch
	Duration time.Duration
	Args     map[string]string // extra key/values shown on click
}

// Recorder collects spans. Safe for concurrent use. The zero value is NOT
// usable; call New.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	spans []Span
}

// New returns an empty recorder with its epoch at now.
func New() *Recorder {
	return &Recorder{epoch: time.Now()}
}

// Begin starts a span now; call the returned func to end it. Args are
// attached at end time (a nil args map is fine — panic-recovery paths end
// spans with nil). The closure is idempotent: the span is recorded exactly
// once even if both a deferred recovery handler and the normal path call it.
func (r *Recorder) Begin(name, category, track string) func(args map[string]string) {
	if r == nil {
		return func(map[string]string) {}
	}
	start := time.Now()
	var once sync.Once
	return func(args map[string]string) {
		once.Do(func() {
			end := time.Now()
			r.mu.Lock()
			r.spans = append(r.spans, Span{
				Name:     name,
				Category: category,
				Track:    track,
				Start:    start.Sub(r.epoch),
				Duration: end.Sub(start),
				Args:     args,
			})
			r.mu.Unlock()
		})
	}
}

// Add records a fully-formed span (for virtual-time simulations).
func (r *Recorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of everything recorded, ordered by start time. A
// nil recorder returns nil.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// chromeEvent is the trace-event format's "complete event" (ph=X).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// WriteChromeTrace emits the spans as a Chrome trace-event JSON array.
// Tracks map to thread rows, named via metadata events. A nil or empty
// recorder writes an empty (but valid) event array.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	// Assign stable tids per track, sorted for determinism.
	trackSet := map[string]bool{}
	for _, s := range spans {
		trackSet[s.Track] = true
	}
	tracks := make([]string, 0, len(trackSet))
	for t := range trackSet {
		tracks = append(tracks, t)
	}
	sort.Strings(tracks)
	tid := map[string]int{}
	events := []any{}
	for i, t := range tracks {
		tid[t] = i + 1
		events = append(events, chromeMeta{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": t},
		})
	}
	for _, s := range spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Category,
			Ph:   "X",
			Ts:   float64(s.Start.Microseconds()),
			Dur:  float64(s.Duration.Microseconds()),
			Pid:  1,
			Tid:  tid[s.Track],
			Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
