package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpansTieBreakDeterministic(t *testing.T) {
	// Equal starts must order by track, then name, then id, so exports
	// are byte-stable and usable as goldens.
	r := New()
	r.Add(Span{Name: "b", Track: "node-01", Start: time.Second})
	r.Add(Span{Name: "a", Track: "node-01", Start: time.Second})
	r.Add(Span{Name: "z", Track: "node-00", Start: time.Second})
	spans := r.Spans()
	got := []string{spans[0].Name, spans[1].Name, spans[2].Name}
	want := []string{"z", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestChromeTraceByteStable(t *testing.T) {
	build := func() *Recorder {
		r := New()
		// Insert in different orders; equal-start ties exercise the sort.
		r.Add(Span{Name: "t2", Category: "task", Track: "node-01", Start: time.Millisecond, Duration: time.Millisecond})
		r.Add(Span{Name: "t1", Category: "task", Track: "node-00", Start: time.Millisecond, Duration: time.Millisecond})
		r.Add(Span{Name: "s", Category: "stage", Track: "driver", Duration: 3 * time.Millisecond})
		return r
	}
	build2 := func() *Recorder {
		r := New()
		r.Add(Span{Name: "s", Category: "stage", Track: "driver", Duration: 3 * time.Millisecond})
		r.Add(Span{Name: "t1", Category: "task", Track: "node-00", Start: time.Millisecond, Duration: time.Millisecond})
		r.Add(Span{Name: "t2", Category: "task", Track: "node-01", Start: time.Millisecond, Duration: time.Millisecond})
		return r
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build2().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("export not byte-stable:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestBeginCtxLinksParent(t *testing.T) {
	r := New()
	endJob, jobTC := r.BeginCtx("job", "job", "driver", TraceContext{})
	if !jobTC.Valid() {
		t.Fatal("job context invalid")
	}
	endTask, taskTC := r.BeginCtx("task", "task", "node-00", jobTC)
	if taskTC.Trace != jobTC.Trace {
		t.Fatalf("task trace %d != job trace %d", taskTC.Trace, jobTC.Trace)
	}
	endTask(nil)
	endJob(nil)
	var task Span
	for _, s := range r.Spans() {
		if s.Name == "task" {
			task = s
		}
	}
	if task.Name == "" {
		t.Fatal("task span missing")
	}
	if task.Parent != jobTC.Span {
		t.Fatalf("task parent = %d, want %d", task.Parent, jobTC.Span)
	}
}

func TestAddCtxAllocatesIdentity(t *testing.T) {
	r := New()
	_, root := r.BeginCtx("root", "job", "driver", TraceContext{})
	tc := r.AddCtx(Span{Name: "net", Category: "net", Track: "fabric",
		Start: time.Millisecond, Duration: time.Microsecond}, root)
	if tc.Trace != root.Trace || tc.Span == 0 {
		t.Fatalf("AddCtx context = %+v", tc)
	}
	// Nil recorder: no-op, zero context.
	var nr *Recorder
	if got := nr.AddCtx(Span{}, root); got.Valid() {
		t.Fatalf("nil AddCtx = %+v", got)
	}
	nr.Instant("x", "y", "z", nil)
	if _, tc2 := nr.BeginCtx("a", "b", "c", root); tc2.Valid() {
		t.Fatalf("nil BeginCtx = %+v", tc2)
	}
}

func TestInstantExportsAsInstantEvent(t *testing.T) {
	r := New()
	r.Instant("crash node-02", "chaos", "node-02", map[string]string{"kind": "crash"})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range events {
		if e["ph"] == "i" {
			found = true
			if e["s"] != "t" {
				t.Fatalf("instant scope = %v", e["s"])
			}
		}
	}
	if !found {
		t.Fatalf("no instant event in export: %s", buf.String())
	}
}

// buildSampleTrace records a job → stage → {task on node-00, task on
// node-01} → fetch tree with virtual timings, plus a chaos instant.
func buildSampleTrace(r *Recorder) (jobTC TraceContext) {
	endJob, jobTC := r.BeginCtx("job p9", "job", "driver", TraceContext{})
	endStage, stageTC := r.BeginCtx("map s1", "stage", "driver", jobTC)
	endT0, t0 := r.BeginCtx("task p0 a0", "task", "node-00", stageTC)
	r.AddCtx(Span{Name: "fetch s0 p0", Category: "net", Track: "node-00",
		Start: time.Millisecond, Duration: 40 * time.Microsecond}, t0)
	endT0(nil)
	endT1, _ := r.BeginCtx("task p1 a0", "task", "node-01", stageTC)
	endT1(nil)
	r.Instant("crash node-01", "chaos", "node-01", map[string]string{"kind": "crash"})
	endStage(nil)
	endJob(nil)
	return jobTC
}

func TestBuildTimelineReconstructsTree(t *testing.T) {
	r := New()
	jobTC := buildSampleTrace(r)
	ids := TraceIDs(r.Spans())
	if len(ids) != 1 || ids[0] != jobTC.Trace {
		t.Fatalf("trace ids = %v, want [%d]", ids, jobTC.Trace)
	}
	tl := BuildTimeline(r.Spans(), jobTC.Trace)
	if len(tl.Roots) != 1 {
		t.Fatalf("roots = %d, want 1", len(tl.Roots))
	}
	if tl.Roots[0].Span.Name != "job p9" {
		t.Fatalf("root = %q", tl.Roots[0].Span.Name)
	}
	if tl.Len() != 5 {
		t.Fatalf("timeline spans = %d, want 5", tl.Len())
	}
	// The fetch span must path back to the stage span on the driver.
	var fetchID uint64
	for _, s := range r.Spans() {
		if s.Category == "net" {
			fetchID = s.ID
		}
	}
	path := tl.PathToRoot(fetchID)
	if len(path) != 4 {
		t.Fatalf("path len = %d, want 4 (fetch→task→stage→job)", len(path))
	}
	if path[2].Span.Category != "stage" || path[2].Span.Track != "driver" {
		t.Fatalf("path[2] = %+v, want the driver stage span", path[2].Span)
	}
	// The chaos instant must be attached as an annotation.
	if len(tl.Annotations) != 1 || tl.Annotations[0].Name != "crash node-01" {
		t.Fatalf("annotations = %+v", tl.Annotations)
	}
	// Render must mention every span and the annotation.
	out := tl.String()
	for _, want := range []string{"job p9", "map s1", "task p0 a0", "fetch s0 p0", "! crash node-01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestBuildTimelineOrphanPromotedToRoot(t *testing.T) {
	r := New()
	_, root := r.BeginCtx("root", "job", "driver", TraceContext{})
	// A child whose parent span was never ended/recorded (e.g. the
	// parent's component crashed): parent id points at nothing.
	ghost := TraceContext{Trace: root.Trace, Span: 9999}
	end, _ := r.BeginCtx("orphan", "task", "node-00", ghost)
	end(nil)
	tl := BuildTimeline(r.Spans(), root.Trace)
	// Only the orphan was recorded (root never ended) — it must surface
	// as a root, not vanish.
	if tl.Len() != 1 || len(tl.Roots) != 1 || tl.Roots[0].Span.Name != "orphan" {
		t.Fatalf("timeline = %s", tl.String())
	}
	if tl.Lookup(tl.Roots[0].Span.ID) == nil {
		t.Fatal("Lookup failed for recorded span")
	}
	if got := tl.PathToRoot(12345); got != nil {
		t.Fatalf("PathToRoot(unknown) = %v", got)
	}
}

func TestBuildTimelineEmptyTrace(t *testing.T) {
	tl := BuildTimeline(nil, 7)
	if tl.Len() != 0 || len(tl.Roots) != 0 || len(tl.Annotations) != 0 {
		t.Fatalf("empty timeline = %+v", tl)
	}
}
