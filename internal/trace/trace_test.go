package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBeginEndRecordsSpan(t *testing.T) {
	r := New()
	end := r.Begin("work", "task", "node-0")
	time.Sleep(time.Millisecond)
	end(map[string]string{"outcome": "ok"})
	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Name != "work" || s.Category != "task" || s.Track != "node-0" {
		t.Fatalf("span = %+v", s)
	}
	if s.Duration < time.Millisecond {
		t.Fatalf("duration = %v", s.Duration)
	}
	if s.Args["outcome"] != "ok" {
		t.Fatalf("args = %v", s.Args)
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	end := r.Begin("x", "y", "z")
	end(nil) // must not panic
	r.Add(Span{})
	if r.Len() != 0 {
		t.Fatal("nil recorder recorded")
	}
	if r.Spans() != nil {
		t.Fatal("nil recorder returned spans")
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil recorder export: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("nil recorder export is not a JSON array: %v (%q)", err, buf.String())
	}
	if len(events) != 0 {
		t.Fatalf("nil recorder exported %d events", len(events))
	}
}

func TestEndClosureIdempotent(t *testing.T) {
	r := New()
	end := r.Begin("work", "task", "node-0")
	// A panicking task path ends the span from a deferred recovery handler
	// with nil args; the normal path may then call it again.
	end(nil)
	end(map[string]string{"outcome": "ok"})
	if r.Len() != 1 {
		t.Fatalf("span recorded %d times, want exactly once", r.Len())
	}
	if args := r.Spans()[0].Args; args != nil {
		t.Fatalf("second end() overwrote the recorded span: args = %v", args)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(track string) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				end := r.Begin("op", "task", track)
				end(nil)
			}
		}(string(rune('a' + i)))
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Fatalf("spans = %d", r.Len())
	}
}

func TestSpansSortedByStart(t *testing.T) {
	r := New()
	r.Add(Span{Name: "b", Start: 2 * time.Second})
	r.Add(Span{Name: "a", Start: time.Second})
	spans := r.Spans()
	if spans[0].Name != "a" || spans[1].Name != "b" {
		t.Fatalf("order = %v, %v", spans[0].Name, spans[1].Name)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := New()
	r.Add(Span{Name: "task p0", Category: "task", Track: "node-00",
		Start: time.Millisecond, Duration: 2 * time.Millisecond,
		Args: map[string]string{"outcome": "ok"}})
	r.Add(Span{Name: "task p1", Category: "task", Track: "node-01",
		Start: 2 * time.Millisecond, Duration: time.Millisecond})
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 2 thread_name metadata + 2 complete events.
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	metas, completes := 0, 0
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "X":
			completes++
			if e["ts"].(float64) < 0 || e["dur"].(float64) <= 0 {
				t.Fatalf("bad timing in %v", e)
			}
		}
	}
	if metas != 2 || completes != 2 {
		t.Fatalf("metas=%d completes=%d", metas, completes)
	}
	if !strings.Contains(buf.String(), "node-00") {
		t.Fatal("track name missing from export")
	}
}
