// Timeline reconstruction: fold the flat span list back into one causal
// tree per trace. Spans recorded on different tracks (driver, executor
// nodes, the stream coordinator, the ha group) carry parent ids that
// cross those track boundaries — a shuffle fetch on node-03 parents to
// the task that issued it, which parents to its stage on the driver —
// so the tree is the cross-node "what caused what" view of a job.
// Instant events (chaos injections) have no parent; they are attached
// to the timeline as annotations so a fault shows up next to the work
// it disrupted.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Node is one span plus the spans it caused, children ordered like
// Spans() (start, then track, then name, then id).
type Node struct {
	Span     Span
	Children []*Node
}

// Timeline is the reconstructed causal view of a single trace.
type Timeline struct {
	Trace uint64
	// Roots are spans with no recorded parent (normally one: the job
	// span). Orphans — spans whose parent id was never recorded, e.g.
	// because the parent belongs to a crashed component — are promoted
	// to roots rather than dropped.
	Roots []*Node
	// Annotations are the instant events that fired while the trace was
	// active (Start within [first span start, last span end]), in time
	// order. They carry no causal parent by design.
	Annotations []Span

	byID map[uint64]*Node
}

// TraceIDs lists the distinct trace ids present in spans, ascending.
func TraceIDs(spans []Span) []uint64 {
	set := map[uint64]bool{}
	for _, s := range spans {
		if s.Trace != 0 {
			set[s.Trace] = true
		}
	}
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// BuildTimeline reconstructs the causal tree for one trace id from a
// span list (normally Recorder.Spans()). Spans of other traces are
// ignored; unlinked non-instant spans (Trace==0) are ignored too.
func BuildTimeline(spans []Span, traceID uint64) *Timeline {
	tl := &Timeline{Trace: traceID, byID: map[uint64]*Node{}}
	var members []Span
	var lo, hi time.Duration
	for _, s := range spans {
		if s.Instant || s.Trace != traceID {
			continue
		}
		members = append(members, s)
		end := s.Start + s.Duration
		if len(members) == 1 || s.Start < lo {
			lo = s.Start
		}
		if end > hi {
			hi = end
		}
	}
	// Keep Spans() order so sibling order is deterministic.
	sortSpans(members)
	for i := range members {
		tl.byID[members[i].ID] = &Node{Span: members[i]}
	}
	for i := range members {
		n := tl.byID[members[i].ID]
		if p, ok := tl.byID[n.Span.Parent]; ok && n.Span.Parent != 0 {
			p.Children = append(p.Children, n)
		} else {
			tl.Roots = append(tl.Roots, n)
		}
	}
	if len(members) > 0 {
		for _, s := range spans {
			if s.Instant && s.Start >= lo && s.Start <= hi {
				tl.Annotations = append(tl.Annotations, s)
			}
		}
		sortSpans(tl.Annotations)
	}
	return tl
}

func sortSpans(ss []Span) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Start != ss[j].Start {
			return ss[i].Start < ss[j].Start
		}
		if ss[i].Track != ss[j].Track {
			return ss[i].Track < ss[j].Track
		}
		if ss[i].Name != ss[j].Name {
			return ss[i].Name < ss[j].Name
		}
		return ss[i].ID < ss[j].ID
	})
}

// Lookup returns the node for a span id, or nil.
func (tl *Timeline) Lookup(id uint64) *Node {
	return tl.byID[id]
}

// Len returns the number of spans in the timeline (annotations excluded).
func (tl *Timeline) Len() int { return len(tl.byID) }

// PathToRoot walks parent links from span id up to its root, returning
// the chain starting at the span itself. Nil if the id is not in the
// timeline.
func (tl *Timeline) PathToRoot(id uint64) []*Node {
	n := tl.byID[id]
	if n == nil {
		return nil
	}
	var path []*Node
	for n != nil {
		path = append(path, n)
		if n.Span.Parent == 0 {
			break
		}
		n = tl.byID[n.Span.Parent]
	}
	return path
}

// Walk visits every node depth-first in deterministic order.
func (tl *Timeline) Walk(fn func(n *Node, depth int)) {
	for _, r := range tl.Roots {
		walkNode(r, 0, fn)
	}
}

func walkNode(n *Node, depth int, fn func(n *Node, depth int)) {
	fn(n, depth)
	for _, c := range n.Children {
		walkNode(c, depth+1, fn)
	}
}

// String renders the timeline as an indented text tree with annotations
// appended — the human-readable form of the merged cross-node view.
func (tl *Timeline) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %d (%d spans)\n", tl.Trace, len(tl.byID))
	tl.Walk(func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s [%s] on %s +%v dur=%v\n",
			strings.Repeat("  ", depth+1),
			n.Span.Name, n.Span.Category, n.Span.Track,
			n.Span.Start.Round(time.Microsecond),
			n.Span.Duration.Round(time.Microsecond))
	})
	for _, a := range tl.Annotations {
		fmt.Fprintf(&b, "  ! %s [%s] on %s +%v\n",
			a.Name, a.Category, a.Track, a.Start.Round(time.Microsecond))
	}
	return b.String()
}
