// Windowed histogram: the per-window time series behind the perf
// trajectory. A benchmark does not want one percentile for the whole
// run — warmup, checkpoint stalls, and fault recovery all wash out in a
// single summary. WindowedHistogram buckets observations into fixed-
// width time windows keyed by the caller-supplied observation time (wall
// or virtual), keeping a full log-bucketed Histogram per window plus one
// cumulative histogram for the run summary, so a bench family can report
// "throughput and p99 per second over the run" and "p999 overall" from
// the same instrument.
package metrics

import (
	"sort"
	"sync"
	"time"
)

// WindowedHistogram partitions observations into fixed-width windows by
// observation time. Safe for concurrent use. The zero value is unusable;
// call NewWindowedHistogram. Nil-receiver methods are no-ops, matching
// the rest of the package.
type WindowedHistogram struct {
	mu      sync.Mutex
	width   time.Duration
	windows map[int64]*Histogram // window index -> per-window values
	total   *Histogram           // cumulative, for run-level summary
}

// NewWindowedHistogram creates a windowed histogram with the given
// window width (<= 0 defaults to one second).
func NewWindowedHistogram(width time.Duration) *WindowedHistogram {
	if width <= 0 {
		width = time.Second
	}
	return &WindowedHistogram{
		width:   width,
		windows: map[int64]*Histogram{},
		total:   NewHistogram(),
	}
}

// Observe records value v (e.g. a latency in nanoseconds) at observation
// time `at`, measured from the run's own epoch. `at` may be wall-clock
// elapsed time or fully simulated time — the instrument does not care,
// which is what lets KV benches window by deterministic virtual latency
// accumulation.
func (w *WindowedHistogram) Observe(at time.Duration, v int64) {
	if w == nil {
		return
	}
	idx := int64(at / w.width)
	if at < 0 {
		idx = -1 // clamp pre-epoch observations into one catch-all window
	}
	w.mu.Lock()
	h := w.windows[idx]
	if h == nil {
		h = NewHistogram()
		w.windows[idx] = h
	}
	w.mu.Unlock()
	h.Observe(v)
	w.total.Observe(v)
}

// ObserveDuration records a duration sample at observation time `at`.
func (w *WindowedHistogram) ObserveDuration(at, d time.Duration) {
	w.Observe(at, int64(d))
}

// Width returns the window width.
func (w *WindowedHistogram) Width() time.Duration {
	if w == nil {
		return 0
	}
	return w.width
}

// WindowSample is one window of the trajectory: its start offset, how
// many observations landed in it, and their distribution summary.
type WindowSample struct {
	Start  time.Duration // window start, relative to the run epoch
	Count  int64
	Mean   float64
	Min    int64
	Max    int64
	P50    int64
	P95    int64
	P99    int64
	P999   int64
	PerSec float64 // Count / window width — the windowed throughput
}

// Series returns the non-empty windows in time order. Gaps (windows with
// zero observations) are omitted; the differ treats window count as part
// of the workload shape, so a run that stalls long enough to skip a
// window shows up as a shape change, not a silent hole.
func (w *WindowedHistogram) Series() []WindowSample {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	idxs := make([]int64, 0, len(w.windows))
	for i := range w.windows {
		idxs = append(idxs, i)
	}
	hs := make(map[int64]*Histogram, len(w.windows))
	for i, h := range w.windows {
		hs[i] = h
	}
	width := w.width
	w.mu.Unlock()

	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	out := make([]WindowSample, 0, len(idxs))
	secs := width.Seconds()
	for _, i := range idxs {
		h := hs[i]
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		out = append(out, WindowSample{
			Start:  time.Duration(i) * width,
			Count:  s.Count,
			Mean:   s.Mean,
			Min:    s.Min,
			Max:    s.Max,
			P50:    s.P50,
			P95:    s.P95,
			P99:    s.P99,
			P999:   s.P999,
			PerSec: float64(s.Count) / secs,
		})
	}
	return out
}

// Total summarizes all observations across every window.
func (w *WindowedHistogram) Total() HistogramSnapshot {
	if w == nil {
		return HistogramSnapshot{}
	}
	return w.total.Snapshot()
}
