package metrics

import "net/http"

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — mount it at /metrics. For the full debug
// surface (/metrics, /debug/trace, /debug/jobs) see internal/obs.NewMux.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
