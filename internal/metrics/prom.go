package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges map directly; histograms are
// exposed as summaries (quantile series plus _sum and _count), which fits
// the log-bucketed quantile estimates the Histogram type keeps. Metric
// names are sanitized to the [a-zA-Z_:][a-zA-Z0-9_:]* charset; output is
// sorted by name then labels, so scrapes are deterministic and the text
// round-trips through a parser.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var b strings.Builder

	writeFamily := func(kind string, names []string, emit func(name string)) {
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				continue
			}
			seen[n] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", n, kind)
			emit(n)
		}
	}

	counterNames := make([]string, 0, len(snap.Counters))
	byName := map[string][]CounterSample{}
	for _, s := range snap.Counters {
		n := SanitizeName(s.Name)
		if _, ok := byName[n]; !ok {
			counterNames = append(counterNames, n)
		}
		byName[n] = append(byName[n], s)
	}
	sort.Strings(counterNames)
	writeFamily("counter", counterNames, func(n string) {
		for _, s := range byName[n] {
			fmt.Fprintf(&b, "%s%s %d\n", n, renderLabels(s.Labels, ""), s.Value)
		}
	})

	gaugeNames := make([]string, 0, len(snap.Gauges))
	gaugesByName := map[string][]GaugeSample{}
	for _, s := range snap.Gauges {
		n := SanitizeName(s.Name)
		if _, ok := gaugesByName[n]; !ok {
			gaugeNames = append(gaugeNames, n)
		}
		gaugesByName[n] = append(gaugesByName[n], s)
	}
	sort.Strings(gaugeNames)
	writeFamily("gauge", gaugeNames, func(n string) {
		for _, s := range gaugesByName[n] {
			fmt.Fprintf(&b, "%s%s %d\n", n, renderLabels(s.Labels, ""), s.Value)
		}
	})

	histNames := make([]string, 0, len(snap.Histograms))
	histsByName := map[string][]HistogramSample{}
	for _, s := range snap.Histograms {
		n := SanitizeName(s.Name)
		if _, ok := histsByName[n]; !ok {
			histNames = append(histNames, n)
		}
		histsByName[n] = append(histsByName[n], s)
	}
	sort.Strings(histNames)
	writeFamily("summary", histNames, func(n string) {
		for _, s := range histsByName[n] {
			for _, q := range []struct {
				q string
				v int64
			}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
				fmt.Fprintf(&b, "%s%s %d\n", n, renderLabels(s.Labels, `quantile="`+q.q+`"`), q.v)
			}
			fmt.Fprintf(&b, "%s_sum%s %d\n", n, renderLabels(s.Labels, ""), s.Sum)
			fmt.Fprintf(&b, "%s_count%s %d\n", n, renderLabels(s.Labels, ""), s.Count)
		}
	})

	_, err := io.WriteString(w, b.String())
	return err
}

// SanitizeName maps an internal metric name onto the Prometheus name
// charset: runs of invalid characters become '_', and a leading digit gets
// a '_' prefix.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	for i, c := range name {
		valid := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if c >= '0' && c <= '9' && i == 0 {
			b.WriteByte('_')
			b.WriteRune(c)
			continue
		}
		if valid {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// renderLabels formats a label set as {k="v",...}, escaping backslash,
// quote and newline per the exposition format. extra, when non-empty, is a
// pre-rendered pair appended last (used for quantile).
func renderLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}
