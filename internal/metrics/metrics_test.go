package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	if g.Add(-3) != 7 {
		t.Fatal("gauge Add result wrong")
	}
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram returned nonzero summaries")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{10, 20, 30, 40, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 150 {
		t.Fatalf("sum = %d", h.Sum())
	}
	if h.Mean() != 30 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	// Quantile estimates are upper bounds within one bucket (~±50% of the
	// true value) and never exceed the true max.
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		var mx int64
		for _, v := range raw {
			x := int64(v%1000000) + 1
			h.Observe(x)
			if x > mx {
				mx = x
			}
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			est := h.Quantile(q)
			if est > mx || est < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramQuantileOrdering(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 10000; i++ {
		h.Observe(i)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 > p99 {
		t.Fatalf("p50 %d > p99 %d", p50, p99)
	}
	// p50 of uniform [1,10000] should be within a bucket of 5000.
	if p50 < 2500 || p50 > 10000 {
		t.Fatalf("p50 = %d, want within bucket of 5000", p50)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for j := int64(0); j < 1000; j++ {
				h.Observe(base + j)
			}
		}(int64(i) * 1000)
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("count = %d, want 4000", h.Count())
	}
	if h.Min() != 0 && h.Min() != 1 {
		// Observe clamps values < 1 into bucket for 1 but min records raw 0.
		t.Fatalf("min = %d", h.Min())
	}
	if h.Max() != 3999 {
		t.Fatalf("max = %d, want 3999", h.Max())
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(5 * time.Millisecond)
	if h.Count() != 1 || h.Sum() != int64(5*time.Millisecond) {
		t.Fatal("ObserveDuration did not record nanoseconds")
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("snapshot count = %d", s.Count)
	}
	if s.String() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestRegistryCreatesOnFirstUse(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Inc()
	r.Counter("a").Inc()
	if r.Counter("a").Value() != 2 {
		t.Fatal("registry did not return the same counter")
	}
	r.Gauge("b").Set(7)
	if r.Gauge("b").Value() != 7 {
		t.Fatal("registry did not return the same gauge")
	}
	r.Histogram("c").Observe(1)
	if r.Histogram("c").Count() != 1 {
		t.Fatal("registry did not return the same histogram")
	}
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("x").Inc()
				r.Histogram("y").Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if r.Counter("x").Value() != 800 {
		t.Fatalf("x = %d", r.Counter("x").Value())
	}
	if r.Histogram("y").Count() != 800 {
		t.Fatalf("y count = %d", r.Histogram("y").Count())
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	prev := -1
	for v := int64(1); v < 1<<20; v = v*3/2 + 1 {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex not monotonic at %d", v)
		}
		prev = idx
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i)%100000 + 1)
	}
}
