package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Metric vectors: families of counters/gauges/histograms keyed by a small,
// fixed set of label keys (e.g. shuffle_partition_bytes{shuffle,partition}).
// Children are created on first use. Vectors are nil-receiver safe the same
// way the scalar types are: With on a nil vector returns a nil child, whose
// methods are themselves no-ops, so disabled instrumentation stays one
// branch deep.

// labelKey joins label values into a map key. 0x1f (ASCII unit separator)
// cannot appear in reasonable label values; collisions would need a value
// containing it, which Each would still render unambiguously.
const labelSep = "\x1f"

func joinLabels(values []string) string { return strings.Join(values, labelSep) }

type vec[M any] struct {
	name     string
	keys     []string
	mu       sync.RWMutex
	children map[string]*M
	newM     func() *M
}

func (v *vec[M]) with(values []string) *M {
	if v == nil {
		return nil
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("metrics: %s expects %d label values %v, got %d",
			v.name, len(v.keys), v.keys, len(values)))
	}
	k := joinLabels(values)
	v.mu.RLock()
	m, ok := v.children[k]
	v.mu.RUnlock()
	if ok {
		return m
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if m, ok = v.children[k]; ok {
		return m
	}
	m = v.newM()
	v.children[k] = m
	return m
}

// each visits children sorted by label values for deterministic iteration.
func (v *vec[M]) each(fn func(labels []Label, m *M)) {
	if v == nil {
		return
	}
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	children := make(map[string]*M, len(v.children))
	for k, m := range v.children {
		children[k] = m
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		values := strings.Split(k, labelSep)
		labels := make([]Label, len(v.keys))
		for i, key := range v.keys {
			val := ""
			if i < len(values) {
				val = values[i]
			}
			labels[i] = Label{Key: key, Value: val}
		}
		fn(labels, children[k])
	}
}

// CounterVec is a family of counters sharing a name and label keys.
type CounterVec struct {
	name string
	keys []string
	v    vec[Counter]
}

func newCounterVec(name string, keys []string) *CounterVec {
	cv := &CounterVec{name: name, keys: keys}
	cv.v = vec[Counter]{name: name, keys: keys, children: map[string]*Counter{}, newM: func() *Counter { return &Counter{} }}
	return cv
}

// With returns the child counter for the given label values (one per key,
// in declaration order), creating it on first use. Nil-safe: a nil vector
// yields a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.v.with(values)
}

// Each visits every child with its labels, ordered by label values.
func (v *CounterVec) Each(fn func(labels []Label, c *Counter)) {
	if v == nil {
		return
	}
	v.v.each(fn)
}

// GaugeVec is a family of gauges sharing a name and label keys.
type GaugeVec struct {
	name string
	keys []string
	v    vec[Gauge]
}

func newGaugeVec(name string, keys []string) *GaugeVec {
	gv := &GaugeVec{name: name, keys: keys}
	gv.v = vec[Gauge]{name: name, keys: keys, children: map[string]*Gauge{}, newM: func() *Gauge { return &Gauge{} }}
	return gv
}

// With returns the child gauge for the given label values. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.v.with(values)
}

// Each visits every child with its labels, ordered by label values.
func (v *GaugeVec) Each(fn func(labels []Label, g *Gauge)) {
	if v == nil {
		return
	}
	v.v.each(fn)
}

// HistogramVec is a family of histograms sharing a name and label keys.
type HistogramVec struct {
	name string
	keys []string
	v    vec[Histogram]
}

func newHistogramVec(name string, keys []string) *HistogramVec {
	hv := &HistogramVec{name: name, keys: keys}
	hv.v = vec[Histogram]{name: name, keys: keys, children: map[string]*Histogram{}, newM: NewHistogram}
	return hv
}

// With returns the child histogram for the given label values. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.v.with(values)
}

// Each visits every child with its labels, ordered by label values.
func (v *HistogramVec) Each(fn func(labels []Label, h *Histogram)) {
	if v == nil {
		return
	}
	v.v.each(fn)
}

// CounterVec returns the counter vector with the given name, creating it
// with the given label keys if needed. Re-requesting an existing vector
// with different keys panics: that is a programming error, and silently
// returning mismatched children would corrupt exposition.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = newCounterVec(name, append([]string(nil), keys...))
		r.counterVecs[name] = v
		return v
	}
	mustMatchKeys(name, v.keys, keys)
	return v
}

// GaugeVec returns the gauge vector with the given name, creating it if
// needed.
func (r *Registry) GaugeVec(name string, keys ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = newGaugeVec(name, append([]string(nil), keys...))
		r.gaugeVecs[name] = v
		return v
	}
	mustMatchKeys(name, v.keys, keys)
	return v
}

// HistogramVec returns the histogram vector with the given name, creating
// it if needed.
func (r *Registry) HistogramVec(name string, keys ...string) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histogramVecs[name]
	if !ok {
		v = newHistogramVec(name, append([]string(nil), keys...))
		r.histogramVecs[name] = v
		return v
	}
	mustMatchKeys(name, v.keys, keys)
	return v
}

func mustMatchKeys(name string, have, want []string) {
	if len(have) != len(want) {
		panic(fmt.Sprintf("metrics: vector %s registered with keys %v, requested with %v", name, have, want))
	}
	for i := range have {
		if have[i] != want[i] {
			panic(fmt.Sprintf("metrics: vector %s registered with keys %v, requested with %v", name, have, want))
		}
	}
}
