package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{1, 0},               // smallest representable value
		{2, 2},               // exact power of two starts its octave
		{3, 3},               // upper half of the [2,4) octave
		{4, 4},               // next exact power of two
		{1 << 10, 20},        // exact power of two, mid-range
		{1<<10 + 1, 20},      // just above a power of two stays in the low half
		{3 << 9, 21},         // 1536: upper half of the [1024,2048) octave
		{1 << 62, 124},       // 2^62: last full octave
		{1<<62 + 1, 124},     // just above 2^62
		{math.MaxInt64, 125}, // clamped into the final bucket
		{0, 0},               // sub-1 values clamp to the first bucket
		{-5, 0},              // negative values clamp to the first bucket
		{math.MinInt64, 0},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpperCoversIndex(t *testing.T) {
	// Every value must land in a bucket whose upper bound is >= the value,
	// and bucket uppers must be strictly increasing (no overflow wraps).
	prev := int64(0)
	for i := 0; i < 126; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucketUpper(%d) = %d not increasing (prev %d)", i, u, prev)
		}
		prev = u
	}
	for _, v := range []int64{1, 2, 3, 4, 1000, 1 << 30, 1 << 62, 1<<62 + 12345, math.MaxInt64} {
		if u := bucketUpper(bucketIndex(v)); u < v {
			t.Errorf("bucketUpper(bucketIndex(%d)) = %d < value", v, u)
		}
	}
}

func TestQuantileNearMaxInt64DoesNotOverflow(t *testing.T) {
	h := NewHistogram()
	h.Observe(math.MaxInt64)
	h.Observe(math.MaxInt64 - 1)
	for _, q := range []float64{0, 0.5, 1} {
		if est := h.Quantile(q); est <= 0 {
			t.Fatalf("Quantile(%v) = %d, want positive (overflowed bucket upper?)", q, est)
		}
	}
}

func TestQuantileMonotonicUnderConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	// Pre-seed with the full distribution so concurrent estimates are
	// converged; concurrent writers then only scale bucket counts.
	for v := int64(1); v <= 100_000; v += 7 {
		h.Observe(v)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				v = (v*6364136223846793005 + 1442695040888963407)
				h.Observe(v%100_000 + 1)
			}
		}(int64(i + 1))
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 1}
	for iter := 0; iter < 200; iter++ {
		prev := int64(-1)
		for _, q := range qs {
			est := h.Quantile(q)
			if est < prev {
				close(stop)
				wg.Wait()
				t.Fatalf("iter %d: Quantile(%v) = %d < previous %d", iter, q, est, prev)
			}
			if est < 0 || est > 150_000 {
				close(stop)
				wg.Wait()
				t.Fatalf("iter %d: Quantile(%v) = %d out of range", iter, q, est)
			}
			prev = est
		}
	}
	close(stop)
	wg.Wait()
}

func TestCounterVecChildrenIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("shuffle_partition_bytes", "shuffle", "partition")
	v.With("1", "0").Add(100)
	v.With("1", "1").Add(300)
	v.With("2", "0").Add(7)
	if got := v.With("1", "1").Value(); got != 300 {
		t.Fatalf("child (1,1) = %d, want 300", got)
	}
	if r.CounterVec("shuffle_partition_bytes", "shuffle", "partition") != v {
		t.Fatal("registry did not return the same vector")
	}
	var seen []string
	var sum int64
	v.Each(func(labels []Label, c *Counter) {
		if len(labels) != 2 || labels[0].Key != "shuffle" || labels[1].Key != "partition" {
			t.Fatalf("labels = %v", labels)
		}
		seen = append(seen, labels[0].Value+"/"+labels[1].Value)
		sum += c.Value()
	})
	if len(seen) != 3 || sum != 407 {
		t.Fatalf("Each saw %v sum %d", seen, sum)
	}
	// Deterministic order: sorted by label values.
	if seen[0] != "1/0" || seen[1] != "1/1" || seen[2] != "2/0" {
		t.Fatalf("order = %v", seen)
	}
}

func TestVecWrongArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong label arity")
		}
	}()
	v.With("only-one")
}

func TestVecKeyMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.GaugeVec("g", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched keys")
		}
	}()
	r.GaugeVec("g", "z")
}

func TestNilVecIsNoOp(t *testing.T) {
	var cv *CounterVec
	cv.With("x").Inc() // must not panic
	cv.Each(func([]Label, *Counter) { t.Fatal("nil vec visited a child") })
	var gv *GaugeVec
	gv.With("x").Set(5)
	var hv *HistogramVec
	hv.With("x").Observe(1)
	if hv.With("x").Count() != 0 {
		t.Fatal("nil histogram child counted")
	}
}

func TestNilScalarMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has value")
	}
	var g *Gauge
	g.Set(3)
	if g.Add(2) != 0 || g.Value() != 0 {
		t.Fatal("nil gauge has value")
	}
	var h *Histogram
	h.Observe(10)
	h.ObserveDuration(5)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram has observations")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot nonzero")
	}
}

func TestVecConcurrent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("hits", "node")
	hv := r.HistogramVec("lat", "node")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(node string) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				v.With(node).Inc()
				hv.With(node).Observe(int64(j + 1))
			}
		}(string(rune('a' + i%4)))
	}
	wg.Wait()
	var total int64
	v.Each(func(_ []Label, c *Counter) { total += c.Value() })
	if total != 8*500 {
		t.Fatalf("total = %d, want 4000", total)
	}
	hv.Each(func(labels []Label, h *Histogram) {
		if h.Count() != 1000 {
			t.Fatalf("histogram %v count = %d, want 1000", labels, h.Count())
		}
	})
}

func TestRegistryNamesDedupesAcrossKinds(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.Histogram("x").Observe(1) // same name, different kind
	r.Gauge("y").Set(2)
	r.CounterVec("z", "k").With("v").Inc()
	names := r.Names()
	want := []string{"x", "y", "z"}
	if len(names) != len(want) {
		t.Fatalf("names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestRegistrySnapshotTyped(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(10)
	r.Histogram("x").Observe(42) // name collision must stay distinguishable
	r.Gauge("g").Set(-3)
	r.CounterVec("sb", "shuffle", "partition").With("1", "0").Add(5)
	r.CounterVec("sb", "shuffle", "partition").With("1", "1").Add(9)
	snap := r.Snapshot()
	if len(snap.Counters) != 3 { // x + two sb children
		t.Fatalf("counters = %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "g" || snap.Gauges[0].Value != -3 {
		t.Fatalf("gauges = %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Name != "x" || snap.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	// Samples sorted by (name, label values).
	if snap.Counters[0].Name != "sb" || snap.Counters[1].Name != "sb" || snap.Counters[2].Name != "x" {
		t.Fatalf("counter order = %+v", snap.Counters)
	}
	if snap.Counters[0].Labels[1].Value != "0" || snap.Counters[1].Labels[1].Value != "1" {
		t.Fatalf("label order = %+v", snap.Counters)
	}
}
