package metrics

import (
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition is a minimal Prometheus text-format parser used to prove
// the writer's output round-trips: it returns TYPE declarations and every
// sample as (name, sorted-label-string) -> value.
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]float64{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set in %q", ln+1, line)
			}
			name = key[:i]
			inner := key[i+1 : len(key)-1]
			for _, pair := range splitLabelPairs(t, inner) {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
					t.Fatalf("line %d: malformed label pair %q", ln+1, pair)
				}
				if !isValidMetricName(kv[0]) {
					t.Fatalf("line %d: invalid label name %q", ln+1, kv[0])
				}
			}
		}
		if !isValidMetricName(name) {
			t.Fatalf("line %d: invalid metric name %q", ln+1, name)
		}
		samples[key] = val
	}
	return types, samples
}

func splitLabelPairs(t *testing.T, inner string) []string {
	t.Helper()
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, inner[start:i])
				start = i + 1
			}
		}
	}
	if start < len(inner) {
		out = append(out, inner[start:])
	}
	return out
}

func isValidMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func TestWritePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks_launched").Add(17)
	r.Counter("weird-name.with/chars").Add(3)
	r.Gauge("queue_depth").Set(-4)
	r.Histogram("task_duration_ns").Observe(1000)
	r.Histogram("task_duration_ns").Observe(2000)
	v := r.CounterVec("shuffle_partition_bytes", "shuffle", "partition")
	v.With("1", "0").Add(100)
	v.With("1", "1").Add(900)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, sb.String())

	if types["tasks_launched"] != "counter" {
		t.Fatalf("types = %v", types)
	}
	if types["queue_depth"] != "gauge" {
		t.Fatalf("types = %v", types)
	}
	if types["task_duration_ns"] != "summary" {
		t.Fatalf("types = %v", types)
	}
	if samples["tasks_launched"] != 17 {
		t.Fatalf("tasks_launched = %v", samples["tasks_launched"])
	}
	if samples["weird_name_with_chars"] != 3 {
		t.Fatalf("sanitized counter missing: %v", samples)
	}
	if samples["queue_depth"] != -4 {
		t.Fatalf("queue_depth = %v", samples["queue_depth"])
	}
	if samples["task_duration_ns_count"] != 2 || samples["task_duration_ns_sum"] != 3000 {
		t.Fatalf("summary sum/count wrong: %v", samples)
	}
	if _, ok := samples[`task_duration_ns{quantile="0.5"}`]; !ok {
		t.Fatalf("missing quantile series: %v", samples)
	}
	if samples[`shuffle_partition_bytes{shuffle="1",partition="0"}`] != 100 {
		t.Fatalf("labeled counter missing: %v", samples)
	}
	if samples[`shuffle_partition_bytes{shuffle="1",partition="1"}`] != 900 {
		t.Fatalf("labeled counter missing: %v", samples)
	}

	// Deterministic: a second write must be byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Fatal("exposition output is not deterministic")
	}
}

func TestWritePrometheusEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("c", "k").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := `c{k="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("output %q does not contain escaped sample %q", out, want)
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name":   "ok_name",
		"with-dash": "with_dash",
		"a.b/c d":   "a_b_c_d",
		"9starts":   "_9starts",
		"":          "_",
		"colon:ok":  "colon:ok",
		"UPPER_ok9": "UPPER_ok9",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(5)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, "hits 5") {
		t.Fatalf("body = %q", body)
	}
}

func BenchmarkCounterVecWith(b *testing.B) {
	r := NewRegistry()
	v := r.CounterVec("c", "a", "b")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.With("x", "y").Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
