// Package metrics provides the lightweight instrumentation used across the
// framework: atomic counters and gauges, log-bucketed latency histograms
// with quantile estimation, and a named registry that experiment harnesses
// snapshot into report tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta. Negative deltas are permitted for callers that use a
// counter as a net tally, but prefer Gauge for values that go down.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram records int64 observations (typically nanoseconds or bytes)
// into exponentially sized buckets: 2 buckets per power of two, covering
// [1, 2^62]. Quantile error is bounded by the bucket width (~±25%), which
// is ample for the shape-level comparisons the experiments report.
// Histogram is safe for concurrent use.
type Histogram struct {
	buckets [126]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	// log2 via bit length; two buckets per octave.
	bits := 63
	for bits > 0 && v>>uint(bits) == 0 {
		bits--
	}
	idx := bits * 2
	// Upper half of the octave goes in the second bucket.
	if bits > 0 && v>>(uint(bits)-1)&1 == 1 && v != 1<<uint(bits) {
		idx++
	}
	if idx >= 126 {
		idx = 125
	}
	return idx
}

func bucketUpper(idx int) int64 {
	octave := idx / 2
	base := int64(1) << uint(octave)
	if idx%2 == 0 {
		return base + base/2
	}
	return base * 2
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1).
// It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := bucketUpper(i)
			if mx := h.Max(); u > mx {
				return mx
			}
			return u
		}
	}
	return h.Max()
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count         int64
	Sum           int64
	Mean          float64
	Min, Max      int64
	P50, P95, P99 int64
}

// String renders the snapshot treating values as nanoseconds.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, time.Duration(int64(s.Mean)), time.Duration(s.P50),
		time.Duration(s.P99), time.Duration(s.Max))
}

// Registry is a named collection of metrics. The zero value is unusable;
// call NewRegistry. Lookup creates metrics on first use, so instrumented
// code never needs registration boilerplate.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var names []string
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
