// Package metrics provides the lightweight instrumentation used across the
// framework: atomic counters and gauges, log-bucketed latency histograms
// with quantile estimation, labeled metric vectors, and a named registry
// with a typed Snapshot that experiment harnesses turn into report tables
// and WritePrometheus exposes in the Prometheus text format.
//
// Every metric type is nil-receiver safe on its mutating and reading
// methods: instrumented packages hold nil metric pointers until a caller
// opts in (Instrument / a Metrics config field), so the disabled path costs
// one predictable branch and no allocation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds delta. Negative deltas are permitted for callers that use a
// counter as a net tally, but prefer Gauge for values that go down.
// No-op on a nil receiver.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Value returns the current count, or 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta and returns the new value (0 on a nil receiver).
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(delta)
}

// Value returns the current value, or 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram records int64 observations (typically nanoseconds or bytes)
// into exponentially sized buckets: 2 buckets per power of two, covering
// [1, 2^62]. Quantile error is bounded by the bucket width (~±25%), which
// is ample for the shape-level comparisons the experiments report.
// Histogram is safe for concurrent use.
type Histogram struct {
	buckets [126]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 1 {
		v = 1
	}
	// log2 via bit length; two buckets per octave.
	bits := 63
	for bits > 0 && v>>uint(bits) == 0 {
		bits--
	}
	idx := bits * 2
	// Upper half of the octave goes in the second bucket.
	if bits > 0 && v>>(uint(bits)-1)&1 == 1 && v != 1<<uint(bits) {
		idx++
	}
	if idx >= 126 {
		idx = 125
	}
	return idx
}

func bucketUpper(idx int) int64 {
	octave := idx / 2
	base := int64(1) << uint(octave)
	if idx%2 == 0 {
		return base + base/2
	}
	if octave >= 62 {
		// base*2 would overflow int64; the last bucket is open-ended.
		return math.MaxInt64
	}
	return base * 2
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records d in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Min returns the smallest observation, or 0 with no observations.
func (h *Histogram) Min() int64 {
	if h.Count() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation, or 0 with no observations.
func (h *Histogram) Max() int64 {
	if h.Count() == 0 {
		return 0
	}
	return h.max.Load()
}

// Quantile returns an upper-bound estimate of the q-quantile (0 <= q <= 1).
// It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			u := bucketUpper(i)
			if mx := h.Max(); u > mx {
				return mx
			}
			return u
		}
	}
	return h.Max()
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// HistogramSnapshot is a point-in-time summary of a Histogram.
type HistogramSnapshot struct {
	Count               int64
	Sum                 int64
	Mean                float64
	Min, Max            int64
	P50, P95, P99, P999 int64
}

// String renders the snapshot treating values as nanoseconds.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		s.Count, time.Duration(int64(s.Mean)), time.Duration(s.P50),
		time.Duration(s.P99), time.Duration(s.Max))
}

// Registry is a named collection of metrics. The zero value is unusable;
// call NewRegistry. Lookup creates metrics on first use, so instrumented
// code never needs registration boilerplate.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      map[string]*Counter{},
		gauges:        map[string]*Gauge{},
		histograms:    map[string]*Histogram{},
		counterVecs:   map[string]*CounterVec{},
		gaugeVecs:     map[string]*GaugeVec{},
		histogramVecs: map[string]*HistogramVec{},
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram with the given name, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Names returns all registered metric names (plain and vector), sorted and
// deduplicated: a counter and a histogram sharing a name used to yield two
// indistinguishable entries, which made report code silently double-count.
// Use Snapshot for a kind-qualified view.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for n := range r.counters {
		add(n)
	}
	for n := range r.gauges {
		add(n)
	}
	for n := range r.histograms {
		add(n)
	}
	for n := range r.counterVecs {
		add(n)
	}
	for n := range r.gaugeVecs {
		add(n)
	}
	for n := range r.histogramVecs {
		add(n)
	}
	sort.Strings(names)
	return names
}

// CounterSample is one counter value in a Snapshot. Labels is nil for plain
// (unlabeled) counters; for vector children it pairs the vector's label
// keys with this child's values, in declaration order.
type CounterSample struct {
	Name   string
	Labels []Label
	Value  int64
}

// GaugeSample is one gauge value in a Snapshot.
type GaugeSample struct {
	Name   string
	Labels []Label
	Value  int64
}

// HistogramSample is one histogram summary in a Snapshot.
type HistogramSample struct {
	Name   string
	Labels []Label
	HistogramSnapshot
}

// Label is one key="value" pair attached to a vector child.
type Label struct {
	Key, Value string
}

// Snapshot is a typed, point-in-time view of a whole registry. Samples are
// sorted by name then label values, so reports are deterministic.
type Snapshot struct {
	Counters   []CounterSample
	Gauges     []GaugeSample
	Histograms []HistogramSample
}

// Snapshot captures every metric in the registry, including vector
// children. It replaces Names()-driven report loops, which could not tell
// a counter from a histogram with the same name. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	counterVecs := make([]*CounterVec, 0, len(r.counterVecs))
	for _, v := range r.counterVecs {
		counterVecs = append(counterVecs, v)
	}
	gaugeVecs := make([]*GaugeVec, 0, len(r.gaugeVecs))
	for _, v := range r.gaugeVecs {
		gaugeVecs = append(gaugeVecs, v)
	}
	histogramVecs := make([]*HistogramVec, 0, len(r.histogramVecs))
	for _, v := range r.histogramVecs {
		histogramVecs = append(histogramVecs, v)
	}
	r.mu.Unlock()

	var snap Snapshot
	for n, c := range counters {
		snap.Counters = append(snap.Counters, CounterSample{Name: n, Value: c.Value()})
	}
	for _, v := range counterVecs {
		v.Each(func(labels []Label, c *Counter) {
			snap.Counters = append(snap.Counters, CounterSample{Name: v.name, Labels: labels, Value: c.Value()})
		})
	}
	for n, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSample{Name: n, Value: g.Value()})
	}
	for _, v := range gaugeVecs {
		v.Each(func(labels []Label, g *Gauge) {
			snap.Gauges = append(snap.Gauges, GaugeSample{Name: v.name, Labels: labels, Value: g.Value()})
		})
	}
	for n, h := range histograms {
		snap.Histograms = append(snap.Histograms, HistogramSample{Name: n, HistogramSnapshot: h.Snapshot()})
	}
	for _, v := range histogramVecs {
		v.Each(func(labels []Label, h *Histogram) {
			snap.Histograms = append(snap.Histograms, HistogramSample{Name: v.name, Labels: labels, HistogramSnapshot: h.Snapshot()})
		})
	}
	sort.Slice(snap.Counters, func(i, j int) bool {
		return sampleLess(snap.Counters[i].Name, snap.Counters[i].Labels, snap.Counters[j].Name, snap.Counters[j].Labels)
	})
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return sampleLess(snap.Gauges[i].Name, snap.Gauges[i].Labels, snap.Gauges[j].Name, snap.Gauges[j].Labels)
	})
	sort.Slice(snap.Histograms, func(i, j int) bool {
		return sampleLess(snap.Histograms[i].Name, snap.Histograms[i].Labels, snap.Histograms[j].Name, snap.Histograms[j].Labels)
	})
	return snap
}

func sampleLess(an string, al []Label, bn string, bl []Label) bool {
	if an != bn {
		return an < bn
	}
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i].Value != bl[i].Value {
			return al[i].Value < bl[i].Value
		}
	}
	return len(al) < len(bl)
}
