package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestWindowedHistogramSeries(t *testing.T) {
	w := NewWindowedHistogram(time.Second)
	// Two observations in window 0, one in window 2 (window 1 stays empty).
	w.Observe(100*time.Millisecond, 10)
	w.Observe(900*time.Millisecond, 30)
	w.Observe(2500*time.Millisecond, 50)
	series := w.Series()
	if len(series) != 2 {
		t.Fatalf("series len = %d, want 2 (empty windows omitted)", len(series))
	}
	w0, w2 := series[0], series[1]
	if w0.Start != 0 || w0.Count != 2 {
		t.Fatalf("window 0 = %+v", w0)
	}
	if w2.Start != 2*time.Second || w2.Count != 1 {
		t.Fatalf("window 2 = %+v", w2)
	}
	if w0.PerSec != 2 {
		t.Fatalf("window 0 per-sec = %v", w0.PerSec)
	}
	if w0.Min != 10 || w0.Max != 30 {
		t.Fatalf("window 0 min/max = %d/%d", w0.Min, w0.Max)
	}
	tot := w.Total()
	if tot.Count != 3 || tot.Min != 10 || tot.Max != 50 {
		t.Fatalf("total = %+v", tot)
	}
}

func TestWindowedHistogramQuantiles(t *testing.T) {
	w := NewWindowedHistogram(time.Second)
	for i := int64(1); i <= 1000; i++ {
		w.Observe(time.Millisecond, i)
	}
	s := w.Series()
	if len(s) != 1 {
		t.Fatalf("series len = %d", len(s))
	}
	// Log-bucketed quantiles are upper bounds; sanity-order them.
	if !(s[0].P50 <= s[0].P95 && s[0].P95 <= s[0].P99 && s[0].P99 <= s[0].P999) {
		t.Fatalf("quantiles out of order: %+v", s[0])
	}
	if s[0].P999 > s[0].Max*2 {
		t.Fatalf("p999 = %d implausible vs max %d", s[0].P999, s[0].Max)
	}
}

func TestWindowedHistogramDefaultsAndNil(t *testing.T) {
	w := NewWindowedHistogram(0)
	if w.Width() != time.Second {
		t.Fatalf("default width = %v", w.Width())
	}
	w.Observe(-time.Second, 5) // pre-epoch clamps into catch-all window
	if got := w.Series(); len(got) != 1 || got[0].Count != 1 {
		t.Fatalf("pre-epoch series = %+v", got)
	}

	var nilW *WindowedHistogram
	nilW.Observe(0, 1)
	nilW.ObserveDuration(0, time.Second)
	if nilW.Series() != nil || nilW.Width() != 0 {
		t.Fatal("nil WindowedHistogram not a no-op")
	}
	if nilW.Total().Count != 0 {
		t.Fatal("nil Total() nonzero")
	}
}

func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(10 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				w.ObserveDuration(time.Duration(i)*time.Millisecond, time.Duration(g+1)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := w.Total().Count; got != 4000 {
		t.Fatalf("total count = %d", got)
	}
	var n int64
	for _, s := range w.Series() {
		n += s.Count
	}
	if n != 4000 {
		t.Fatalf("series counts sum = %d", n)
	}
}

func TestHistogramSnapshotP999(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.P999 < s.P99 {
		t.Fatalf("p999 %d < p99 %d", s.P999, s.P99)
	}
}
