// Package cluster is the compute substrate the engines run on: a set of
// simulated machines, each backed by a real goroutine executor pool with a
// fixed slot count. Tasks are real Go closures operating on real data; the
// cluster contributes placement (which node a task runs on), capacity
// (slots), and failures (a killed node loses its in-flight and future
// tasks until revived). Network cost between nodes is the fabric's
// business; see internal/netsim.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Errors surfaced through task futures.
var (
	ErrNodeDead    = errors.New("cluster: node is dead")
	ErrNodeUnknown = errors.New("cluster: unknown node")
)

// Config configures a Cluster.
type Config struct {
	// Fabric supplies the topology and transfer cost model; required.
	Fabric *netsim.Fabric
	// SlotsPerNode is each node's concurrent task capacity. Default 2.
	SlotsPerNode int
}

// Cluster owns all nodes. Safe for concurrent use.
type Cluster struct {
	fabric *netsim.Fabric
	nodes  []*Node
	// Reg collects per-cluster execution metrics.
	Reg *metrics.Registry
}

// Node is one machine: a slot-limited executor with an epoch that advances
// when the node is killed, invalidating in-flight work, and an optional
// straggler slowdown every task on the node pays.
type Node struct {
	id    topology.NodeID
	slots chan struct{}

	mu    sync.Mutex
	alive bool
	epoch uint64

	tasksRun atomic.Int64
	slowNs   atomic.Int64
}

// New builds a cluster with one node per topology member.
func New(cfg Config) *Cluster {
	if cfg.Fabric == nil {
		panic("cluster: Config.Fabric is required")
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	c := &Cluster{
		fabric: cfg.Fabric,
		nodes:  make([]*Node, cfg.Fabric.Topology().Size()),
		Reg:    metrics.NewRegistry(),
	}
	for i := range c.nodes {
		c.nodes[i] = &Node{
			id:    topology.NodeID(i),
			slots: make(chan struct{}, cfg.SlotsPerNode),
			alive: true,
		}
	}
	return c
}

// Fabric returns the cluster's network fabric.
func (c *Cluster) Fabric() *netsim.Fabric { return c.fabric }

// Topology returns the cluster's topology.
func (c *Cluster) Topology() *topology.Topology { return c.fabric.Topology() }

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// SlotsPerNode returns the per-node concurrency.
func (c *Cluster) SlotsPerNode() int { return cap(c.nodes[0].slots) }

// TotalSlots returns cluster-wide task capacity.
func (c *Cluster) TotalSlots() int { return c.Size() * c.SlotsPerNode() }

// Node returns the node with the given ID, or an error.
func (c *Cluster) Node(id topology.NodeID) (*Node, error) {
	if int(id) < 0 || int(id) >= len(c.nodes) {
		return nil, fmt.Errorf("%w: %d", ErrNodeUnknown, id)
	}
	return c.nodes[id], nil
}

// ID returns the node's identity.
func (n *Node) ID() topology.NodeID { return n.id }

// Alive reports whether the node is up.
func (n *Node) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

// TasksRun returns how many tasks completed successfully on this node.
func (n *Node) TasksRun() int64 { return n.tasksRun.Load() }

// Kill marks the node dead and advances its epoch: tasks currently running
// there complete their computation but their results are discarded (the
// future reports ErrNodeDead), exactly as a real executor loss would lose
// task output.
func (c *Cluster) Kill(id topology.NodeID) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = false
	n.epoch++
	c.Reg.Counter("nodes_killed").Inc()
	return nil
}

// Revive brings a dead node back (fresh epoch, empty slots).
func (c *Cluster) Revive(id topology.NodeID) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.alive = true
	return nil
}

// SetSlowdown makes every task on the node take at least d longer — the
// straggler injection the chaos engine and speculative-execution tests
// use. Pass 0 to restore full speed.
func (c *Cluster) SetSlowdown(id topology.NodeID, d time.Duration) error {
	n, err := c.Node(id)
	if err != nil {
		return err
	}
	if d < 0 {
		d = 0
	}
	n.slowNs.Store(int64(d))
	return nil
}

// Slowdown returns the node's current straggler delay.
func (n *Node) Slowdown() time.Duration { return time.Duration(n.slowNs.Load()) }

// LiveNodes returns the IDs of nodes currently up.
func (c *Cluster) LiveNodes() []topology.NodeID {
	var out []topology.NodeID
	for _, n := range c.nodes {
		if n.Alive() {
			out = append(out, n.id)
		}
	}
	return out
}

// Future is a handle on a submitted task.
type Future struct {
	done chan struct{}
	err  error
}

// Wait blocks until the task finishes and returns its error.
func (f *Future) Wait() error {
	<-f.done
	return f.err
}

// Submit schedules f on the given node. The returned future yields f's
// error, ErrNodeDead if the node was dead at submission or died while the
// task ran, or ErrNodeUnknown. f runs on its own goroutine once a slot
// frees up.
func (c *Cluster) Submit(id topology.NodeID, f func() error) *Future {
	fut := &Future{done: make(chan struct{})}
	n, err := c.Node(id)
	if err != nil {
		fut.err = err
		close(fut.done)
		return fut
	}
	n.mu.Lock()
	if !n.alive {
		n.mu.Unlock()
		fut.err = fmt.Errorf("%w: node %d", ErrNodeDead, id)
		close(fut.done)
		return fut
	}
	startEpoch := n.epoch
	n.mu.Unlock()

	go func() {
		defer close(fut.done)
		n.slots <- struct{}{} // acquire a slot
		defer func() { <-n.slots }()

		// Re-check: the node may have died while the task queued.
		n.mu.Lock()
		deadBeforeStart := !n.alive || n.epoch != startEpoch
		n.mu.Unlock()
		if deadBeforeStart {
			fut.err = fmt.Errorf("%w: node %d", ErrNodeDead, id)
			return
		}

		err := f()

		// A straggler node drags out every task; the sleep sits before the
		// epoch re-check so a kill during the stall loses the output, just
		// like a kill during the computation.
		if slow := n.slowNs.Load(); slow > 0 {
			c.Reg.Counter("tasks_slowed").Inc()
			time.Sleep(time.Duration(slow))
		}

		n.mu.Lock()
		lostOutput := !n.alive || n.epoch != startEpoch
		n.mu.Unlock()
		switch {
		case lostOutput:
			fut.err = fmt.Errorf("%w: node %d died mid-task", ErrNodeDead, id)
		case err != nil:
			fut.err = err
		default:
			n.tasksRun.Add(1)
			c.Reg.Counter("tasks_completed").Inc()
		}
	}()
	return fut
}
