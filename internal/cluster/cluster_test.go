package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
)

func newCluster(nodes, slots int) *Cluster {
	fab := netsim.NewFabric(topology.Single(nodes), netsim.RDMA40G)
	return New(Config{Fabric: fab, SlotsPerNode: slots})
}

func TestSubmitRunsTask(t *testing.T) {
	c := newCluster(2, 2)
	ran := false
	if err := c.Submit(0, func() error { ran = true; return nil }).Wait(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	n, _ := c.Node(0)
	if n.TasksRun() != 1 {
		t.Fatalf("TasksRun = %d", n.TasksRun())
	}
}

func TestTaskErrorPropagates(t *testing.T) {
	c := newCluster(1, 1)
	boom := errors.New("boom")
	if err := c.Submit(0, func() error { return boom }).Wait(); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitToUnknownNode(t *testing.T) {
	c := newCluster(2, 1)
	if err := c.Submit(99, func() error { return nil }).Wait(); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestSubmitToDeadNode(t *testing.T) {
	c := newCluster(2, 1)
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1, func() error { return nil }).Wait(); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("err = %v", err)
	}
}

func TestKillMidTaskLosesOutput(t *testing.T) {
	c := newCluster(2, 1)
	started := make(chan struct{})
	release := make(chan struct{})
	fut := c.Submit(0, func() error {
		close(started)
		<-release
		return nil
	})
	<-started
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := fut.Wait(); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("err = %v, want ErrNodeDead for lost output", err)
	}
	n, _ := c.Node(0)
	if n.TasksRun() != 0 {
		t.Fatal("lost task counted as completed")
	}
}

func TestReviveAcceptsWork(t *testing.T) {
	c := newCluster(2, 1)
	_ = c.Kill(0)
	_ = c.Revive(0)
	if err := c.Submit(0, func() error { return nil }).Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestSlotLimitEnforced(t *testing.T) {
	c := newCluster(1, 2)
	var running, peak atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		fut := c.Submit(0, func() error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			running.Add(-1)
			return nil
		})
		go func() { defer wg.Done(); _ = fut.Wait() }()
	}
	wg.Wait()
	if got := peak.Load(); got > 2 {
		t.Fatalf("peak concurrency %d exceeds 2 slots", got)
	}
}

func TestQueuedTaskFailsIfNodeDiesFirst(t *testing.T) {
	c := newCluster(1, 1)
	blockStarted := make(chan struct{})
	release := make(chan struct{})
	blocker := c.Submit(0, func() error {
		close(blockStarted)
		<-release
		return nil
	})
	<-blockStarted
	queued := c.Submit(0, func() error { return nil })
	_ = c.Kill(0)
	close(release)
	_ = blocker.Wait()
	if err := queued.Wait(); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("queued task err = %v", err)
	}
}

func TestLiveNodes(t *testing.T) {
	c := newCluster(4, 1)
	_ = c.Kill(2)
	live := c.LiveNodes()
	if len(live) != 3 {
		t.Fatalf("live = %v", live)
	}
	for _, id := range live {
		if id == 2 {
			t.Fatal("dead node listed live")
		}
	}
}

func TestCapacityAccessors(t *testing.T) {
	c := newCluster(4, 3)
	if c.Size() != 4 || c.SlotsPerNode() != 3 || c.TotalSlots() != 12 {
		t.Fatalf("capacity accessors wrong: %d %d %d", c.Size(), c.SlotsPerNode(), c.TotalSlots())
	}
}

func TestManyConcurrentSubmitters(t *testing.T) {
	c := newCluster(4, 4)
	var wg sync.WaitGroup
	var completed atomic.Int64
	for i := 0; i < 200; i++ {
		wg.Add(1)
		node := topology.NodeID(i % 4)
		go func() {
			defer wg.Done()
			if err := c.Submit(node, func() error {
				completed.Add(1)
				return nil
			}).Wait(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if completed.Load() != 200 {
		t.Fatalf("completed = %d", completed.Load())
	}
	if c.Reg.Counter("tasks_completed").Value() != 200 {
		t.Fatal("metrics not recorded")
	}
}

func BenchmarkSubmitWait(b *testing.B) {
	c := newCluster(4, 8)
	for i := 0; i < b.N; i++ {
		if err := c.Submit(topology.NodeID(i%4), func() error { return nil }).Wait(); err != nil {
			b.Fatal(err)
		}
	}
}
