package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// TestConcurrentKillReviveDuringSubmission hammers the epoch-invalidation
// path: submitter goroutines keep launching tasks while another goroutine
// kills and revives the same nodes. Every future must resolve to either
// success or ErrNodeDead — never hang, never a stale success after the
// node's epoch advanced mid-task. Run under -race (scripts/verify.sh does).
func TestConcurrentKillReviveDuringSubmission(t *testing.T) {
	c := New(Config{
		Fabric:       netsim.NewFabric(topology.TwoTier(1, 4, 1), netsim.RDMA40G),
		SlotsPerNode: 2,
	})

	const (
		submitters    = 4
		tasksPer      = 200
		chaosFlips    = 120
		killedNode    = topology.NodeID(1)
		survivingNode = topology.NodeID(0)
	)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Chaos goroutine: flip node 1 (and occasionally node 2) dead/alive.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < chaosFlips; i++ {
			if err := c.Kill(killedNode); err != nil {
				t.Errorf("Kill: %v", err)
			}
			if i%3 == 0 {
				_ = c.Kill(topology.NodeID(2))
			}
			time.Sleep(50 * time.Microsecond)
			if err := c.Revive(killedNode); err != nil {
				t.Errorf("Revive: %v", err)
			}
			_ = c.Revive(topology.NodeID(2))
		}
		close(stop)
	}()

	var mu sync.Mutex
	var ok, dead int
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < tasksPer; i++ {
				target := killedNode
				if i%4 == 0 {
					target = survivingNode
				}
				fut := c.Submit(target, func() error {
					time.Sleep(10 * time.Microsecond)
					return nil
				})
				err := fut.Wait()
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrNodeDead):
					dead++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(s)
	}
	wg.Wait()
	<-stop

	if ok == 0 {
		t.Fatal("no task ever succeeded")
	}
	if total := ok + dead; total != submitters*tasksPer {
		t.Fatalf("resolved %d futures, want %d", total, submitters*tasksPer)
	}
	// The always-live node must have completed its share.
	n, err := c.Node(survivingNode)
	if err != nil {
		t.Fatal(err)
	}
	if n.TasksRun() == 0 {
		t.Fatal("surviving node ran nothing")
	}
}

// TestSlowdownDelaysTasks checks SetSlowdown stretches task latency and
// that clearing it restores full speed.
func TestSlowdownDelaysTasks(t *testing.T) {
	c := New(Config{
		Fabric: netsim.NewFabric(topology.Single(2), netsim.RDMA40G),
	})
	if err := c.SetSlowdown(1, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Submit(1, func() error { return nil }).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("slowed task finished in %v, want >= 20ms", d)
	}
	if err := c.SetSlowdown(1, 0); err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if err := c.Submit(1, func() error { return nil }).Wait(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("cleared slowdown still slow: %v", d)
	}
	if got := c.Reg.Counter("tasks_slowed").Value(); got != 1 {
		t.Fatalf("tasks_slowed = %d, want 1", got)
	}
}
