package dfs

import (
	"bytes"
	"testing"

	"repro/internal/topology"
)

func TestDecommissionPreservesData(t *testing.T) {
	d := newTestDFS(1024, 3)
	data := testData(20_000)
	writeFile(t, d, "/f", data)
	victim := topology.NodeID(-1)
	for i := 0; i < d.cfg.Topology.Size(); i++ {
		if d.StoredBytes(topology.NodeID(i)) > 0 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Fatal("no node holds data")
	}
	moved, err := d.Decommission(victim)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("decommission moved nothing")
	}
	// No block is under-replicated and data is intact.
	if under := d.UnderReplicated(); len(under) != 0 {
		t.Fatalf("under-replicated after decommission: %v", under)
	}
	if got := readFile(t, d, "/f"); !bytes.Equal(got, data) {
		t.Fatal("data corrupted by decommission")
	}
	if d.StoredBytes(victim) != 0 {
		t.Fatal("decommissioned node still holds data")
	}
}

func TestDecommissionTwiceFails(t *testing.T) {
	d := newTestDFS(1024, 2)
	writeFile(t, d, "/f", testData(100))
	if _, err := d.Decommission(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decommission(0); err == nil {
		t.Fatal("double decommission accepted")
	}
	if _, err := d.Decommission(99); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestBalanceEvensLoad(t *testing.T) {
	// Write everything hinted at node 0 so it is overloaded.
	d := newTestDFS(512, 1) // replication 1 concentrates data
	for i := 0; i < 40; i++ {
		w, err := d.CreateWith(pathN(i), 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(testData(512)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if d.StoredBytes(0) == 0 {
		t.Fatal("hint ignored")
	}
	before := maxMinRatio(d)
	moves, migrated := d.Balance(0.15)
	if moves == 0 || migrated == 0 {
		t.Fatalf("balancer idle: %d moves, %d bytes", moves, migrated)
	}
	after := maxMinRatio(d)
	if after >= before {
		t.Fatalf("imbalance did not improve: %.2f -> %.2f", before, after)
	}
	// Data still readable.
	for i := 0; i < 40; i++ {
		if got := readFile(t, d, pathN(i)); len(got) != 512 {
			t.Fatalf("file %d lost after balancing", i)
		}
	}
	// Balancer is idempotent at the target slack.
	if again, _ := d.Balance(0.15); again != 0 {
		t.Fatalf("second balance pass made %d moves", again)
	}
}

func pathN(i int) string {
	return "/bal/" + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func maxMinRatio(d *DFS) float64 {
	var max, total int64
	n := d.cfg.Topology.Size()
	for i := 0; i < n; i++ {
		b := d.StoredBytes(topology.NodeID(i))
		total += b
		if b > max {
			max = b
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(n)
	return float64(max) / mean
}

func TestBalanceKeepsReplicasDistinct(t *testing.T) {
	d := newTestDFS(1024, 3)
	writeFile(t, d, "/f", testData(30_000))
	d.Balance(0.05)
	locs, err := d.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range locs {
		seen := map[topology.NodeID]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Fatalf("block %d has duplicate replica on %d after balance", i, r)
			}
			seen[r] = true
		}
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas after balance", i, len(b.Replicas))
		}
	}
}
