package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/rng"
	"repro/internal/topology"
)

func newTestDFS(blockSize int64, repl int) *DFS {
	return New(Config{
		BlockSize:   blockSize,
		Replication: repl,
		Topology:    topology.TwoTier(3, 4, 2), // 12 nodes
		Seed:        1,
	})
}

func writeFile(t *testing.T, d *DFS, path string, data []byte) {
	t.Helper()
	w, err := d.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, d *DFS, path string) []byte {
	t.Helper()
	r, err := d.Open(path, -1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testData(n int) []byte {
	b := make([]byte, n)
	rng.New(42).Bytes(b)
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := newTestDFS(1024, 3)
	data := testData(10_000) // ~10 blocks
	writeFile(t, d, "/data/file1", data)
	got := readFile(t, d, "/data/file1")
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %d vs %d bytes", len(got), len(data))
	}
}

func TestEmptyFile(t *testing.T) {
	d := newTestDFS(1024, 3)
	writeFile(t, d, "/empty", nil)
	if got := readFile(t, d, "/empty"); len(got) != 0 {
		t.Fatalf("empty file read %d bytes", len(got))
	}
	fi, err := d.Stat("/empty")
	if err != nil || fi.Size != 0 || fi.Blocks != 0 {
		t.Fatalf("Stat = %+v, %v", fi, err)
	}
}

func TestBlockSplit(t *testing.T) {
	d := newTestDFS(1000, 2)
	writeFile(t, d, "/f", testData(2500))
	fi, _ := d.Stat("/f")
	if fi.Blocks != 3 {
		t.Fatalf("2500 bytes at 1000-byte blocks = %d blocks, want 3", fi.Blocks)
	}
	if fi.Size != 2500 {
		t.Fatalf("size = %d", fi.Size)
	}
	locs, err := d.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	if locs[0].Length != 1000 || locs[2].Length != 500 {
		t.Fatalf("block lengths %d,%d,%d", locs[0].Length, locs[1].Length, locs[2].Length)
	}
}

func TestReplicationCount(t *testing.T) {
	d := newTestDFS(1024, 3)
	writeFile(t, d, "/f", testData(4096))
	locs, _ := d.BlockLocations("/f")
	for i, b := range locs {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(b.Replicas))
		}
		seen := map[topology.NodeID]bool{}
		for _, n := range b.Replicas {
			if seen[n] {
				t.Fatalf("block %d duplicated replica on node %d", i, n)
			}
			seen[n] = true
		}
	}
}

func TestRackAwarePlacement(t *testing.T) {
	top := topology.TwoTier(3, 4, 2)
	d := New(Config{BlockSize: 512, Replication: 3, Topology: top, Seed: 7})
	writeFile(t, d, "/f", testData(512*20))
	locs, _ := d.BlockLocations("/f")
	for i, b := range locs {
		racks := map[int]bool{}
		for _, n := range b.Replicas {
			racks[top.RackOf(n)] = true
		}
		if len(racks) < 2 {
			t.Fatalf("block %d: all 3 replicas on one rack", i)
		}
	}
}

func TestWriterHintGetsFirstReplica(t *testing.T) {
	d := newTestDFS(1024, 3)
	w, err := d.CreateWith("/hinted", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(testData(3000)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	locs, _ := d.BlockLocations("/hinted")
	for i, b := range locs {
		if b.Replicas[0] != 5 {
			t.Fatalf("block %d first replica on %d, want hinted node 5", i, b.Replicas[0])
		}
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	d := newTestDFS(1024, 2)
	writeFile(t, d, "/dup", testData(10))
	if _, err := d.Create("/dup"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create error = %v", err)
	}
}

func TestOpenMissingFails(t *testing.T) {
	d := newTestDFS(1024, 2)
	if _, err := d.Open("/nope", -1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Stat("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if err := d.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriterClosedRejectsWrites(t *testing.T) {
	d := newTestDFS(1024, 2)
	w, _ := d.Create("/f")
	_ = w.Close()
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

func TestDeleteFreesStorage(t *testing.T) {
	d := newTestDFS(1024, 3)
	writeFile(t, d, "/f", testData(10_000))
	if d.TotalStoredBytes() != 30_000 {
		t.Fatalf("stored = %d, want 30000 (3 replicas)", d.TotalStoredBytes())
	}
	if err := d.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if d.TotalStoredBytes() != 0 {
		t.Fatalf("stored after delete = %d", d.TotalStoredBytes())
	}
}

func TestList(t *testing.T) {
	d := newTestDFS(1024, 2)
	writeFile(t, d, "/a/1", testData(1))
	writeFile(t, d, "/a/2", testData(1))
	writeFile(t, d, "/b/1", testData(1))
	got := d.List("/a/")
	if len(got) != 2 || got[0] != "/a/1" || got[1] != "/a/2" {
		t.Fatalf("List(/a/) = %v", got)
	}
	if len(d.List("")) != 3 {
		t.Fatal("List all wrong")
	}
}

func TestReadSurvivesNodeFailure(t *testing.T) {
	d := newTestDFS(1024, 3)
	data := testData(5000)
	writeFile(t, d, "/f", data)
	locs, _ := d.BlockLocations("/f")
	// Kill the first replica of every block.
	killed := map[topology.NodeID]bool{}
	for _, b := range locs {
		killed[b.Replicas[0]] = true
	}
	for n := range killed {
		if err := d.KillNode(n); err != nil {
			t.Fatal(err)
		}
	}
	got := readFile(t, d, "/f")
	if !bytes.Equal(got, data) {
		t.Fatal("read after failure mismatch")
	}
}

func TestBlockLostWhenAllReplicasDead(t *testing.T) {
	d := New(Config{BlockSize: 1024, Replication: 2, Topology: topology.Single(2), Seed: 1})
	writeFile(t, d, "/f", testData(100))
	_ = d.KillNode(0)
	_ = d.KillNode(1)
	r, err := d.Open("/f", -1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(r); !errors.Is(err, ErrBlockLost) {
		t.Fatalf("err = %v, want ErrBlockLost", err)
	}
	// Revive and the data is back.
	_ = d.ReviveNode(0)
	if got := readFile(t, d, "/f"); len(got) != 100 {
		t.Fatal("revive did not restore data")
	}
}

func TestUnderReplicatedAndRereplicate(t *testing.T) {
	d := newTestDFS(1024, 3)
	data := testData(8192)
	writeFile(t, d, "/f", data)
	locs, _ := d.BlockLocations("/f")
	victim := locs[0].Replicas[0]
	_ = d.KillNode(victim)

	under := d.UnderReplicated()
	if len(under) == 0 {
		t.Fatal("no under-replicated blocks after node kill")
	}
	n, copied := d.Rereplicate()
	if n == 0 || copied == 0 {
		t.Fatalf("Rereplicate created %d replicas, %d bytes", n, copied)
	}
	if remaining := d.UnderReplicated(); len(remaining) != 0 {
		t.Fatalf("still under-replicated after repair: %v", remaining)
	}
	// All blocks must again have 3 live replicas.
	locs, _ = d.BlockLocations("/f")
	for i, b := range locs {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d live replicas after repair", i, len(b.Replicas))
		}
	}
	if !bytes.Equal(readFile(t, d, "/f"), data) {
		t.Fatal("data corrupted by re-replication")
	}
}

func TestReadBlockPrefersLocalReplica(t *testing.T) {
	d := newTestDFS(1024, 3)
	writeFile(t, d, "/f", testData(1024))
	locs, _ := d.BlockLocations("/f")
	holder := locs[0].Replicas[1]
	_, served, err := d.ReadBlock(locs[0].ID, holder)
	if err != nil {
		t.Fatal(err)
	}
	if served != holder {
		t.Fatalf("read served from %d, want local node %d", served, holder)
	}
}

func TestReplicationClampedToClusterSize(t *testing.T) {
	d := New(Config{BlockSize: 1024, Replication: 10, Topology: topology.Single(3), Seed: 1})
	writeFile(t, d, "/f", testData(100))
	locs, _ := d.BlockLocations("/f")
	if len(locs[0].Replicas) != 3 {
		t.Fatalf("replicas = %d, want clamped to 3", len(locs[0].Replicas))
	}
}

func TestKillUnknownNode(t *testing.T) {
	d := newTestDFS(1024, 2)
	if err := d.KillNode(99); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
	if err := d.ReviveNode(-1); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("err = %v", err)
	}
}

func TestManySmallFiles(t *testing.T) {
	d := newTestDFS(256, 2)
	for i := 0; i < 50; i++ {
		path := "/small/" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		writeFile(t, d, path, testData(100+i))
	}
	if got := len(d.List("/small/")); got != 50 {
		t.Fatalf("listed %d files, want 50", got)
	}
}

func BenchmarkWrite(b *testing.B) {
	d := New(Config{BlockSize: 1 << 20, Replication: 3, Topology: topology.TwoTier(2, 4, 2), Seed: 1})
	data := testData(1 << 20)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		w, err := d.CreateWith(string(rune(i))+"/bench", 3, -1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
