package dfs

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

func TestInstrumentRecordsIOAndRecovery(t *testing.T) {
	top := topology.TwoTier(2, 2, 2)
	d := New(Config{BlockSize: 64, Replication: 2, Topology: top, Seed: 7})
	reg := metrics.NewRegistry()
	d.Instrument(reg)

	payload := bytes.Repeat([]byte("x"), 200) // 4 blocks at size 64
	w, err := d.Create("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("dfs_blocks_written").Value(); got != 4 {
		t.Fatalf("blocks written = %d, want 4", got)
	}
	if got := reg.Counter("dfs_bytes_written").Value(); got != 200 {
		t.Fatalf("bytes written = %d, want 200", got)
	}

	r, err := d.Open("/data/f", 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil || len(data) != 200 {
		t.Fatalf("read %d bytes, err %v", len(data), err)
	}
	if got := reg.Counter("dfs_blocks_read").Value(); got != 4 {
		t.Fatalf("blocks read = %d, want 4", got)
	}
	var localityTotal int64
	reg.CounterVec("dfs_reads_by_locality", "locality").Each(func(_ []metrics.Label, c *metrics.Counter) {
		localityTotal += c.Value()
	})
	if localityTotal != 4 {
		t.Fatalf("locality-labeled reads = %d, want 4", localityTotal)
	}

	// Kill a replica holder and re-replicate; recovery counters must move.
	locs, err := d.BlockLocations("/data/f")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.KillNode(locs[0].Replicas[0]); err != nil {
		t.Fatal(err)
	}
	newReplicas, bytesCopied := d.Rereplicate()
	if newReplicas == 0 {
		t.Fatal("expected re-replication work")
	}
	if got := reg.Counter("dfs_replicas_created").Value(); got != int64(newReplicas) {
		t.Fatalf("replicas created counter = %d, want %d", got, newReplicas)
	}
	if got := reg.Counter("dfs_rereplicated_bytes").Value(); got != bytesCopied {
		t.Fatalf("rereplicated bytes counter = %d, want %d", got, bytesCopied)
	}
}

func TestUninstrumentedDFSStillWorks(t *testing.T) {
	top := topology.Single(2)
	d := New(Config{BlockSize: 32, Replication: 1, Topology: top, Seed: 1})
	w, err := d.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := d.Open("/f", -1)
	if err != nil {
		t.Fatal(err)
	}
	if data, _ := io.ReadAll(r); string(data) != "hello world" {
		t.Fatalf("read %q", data)
	}
}
