package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/metrics"
	"repro/internal/topology"
)

// corruptTestFS builds a 6-node fs with one 3-replica file of a single
// block and returns the fs, the block, and the written payload.
func corruptTestFS(t *testing.T) (*DFS, BlockInfo, []byte) {
	t.Helper()
	top := topology.TwoTier(2, 3, 4)
	d := New(Config{Topology: top, BlockSize: 1 << 10, Replication: 3, Seed: 11})
	payload := bytes.Repeat([]byte("integrity!"), 50)
	w, err := d.Create("/f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	locs, err := d.BlockLocations("/f")
	if err != nil {
		t.Fatalf("BlockLocations: %v", err)
	}
	if len(locs) != 1 || len(locs[0].Replicas) != 3 {
		t.Fatalf("want 1 block with 3 replicas, got %+v", locs)
	}
	return d, locs[0], payload
}

func TestCorruptReplicaDetectedAndRepaired(t *testing.T) {
	d, blk, payload := corruptTestFS(t)
	reg := metrics.NewRegistry()
	d.Instrument(reg)
	victim := blk.Replicas[0]
	if err := d.CorruptBlock(victim); err != nil {
		t.Fatalf("CorruptBlock(%d): %v", victim, err)
	}
	// Read at the corrupt replica's node: it is the closest copy, so the
	// read must detect the mismatch and serve from a healthy replica.
	data, served, err := d.ReadBlock(blk.ID, victim)
	if err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("read returned corrupt data")
	}
	if served == victim {
		t.Fatalf("read served from the corrupt replica %d", victim)
	}
	if got := reg.Counter("dfs_checksum_failures").Value(); got != 1 {
		t.Errorf("dfs_checksum_failures = %d, want 1", got)
	}
	if got := reg.Counter("dfs_read_repairs").Value(); got != 1 {
		t.Errorf("dfs_read_repairs = %d, want 1", got)
	}
	// The repair rewrote the corrupt copy: a second read at the same node
	// is served locally again and counts no new failures.
	data, served, err = d.ReadBlock(blk.ID, victim)
	if err != nil {
		t.Fatalf("ReadBlock after repair: %v", err)
	}
	if !bytes.Equal(data, payload) || served != victim {
		t.Fatalf("after repair: served=%d (want %d), data ok=%v", served, victim, bytes.Equal(data, payload))
	}
	if got := reg.Counter("dfs_checksum_failures").Value(); got != 1 {
		t.Errorf("dfs_checksum_failures after repair = %d, want still 1", got)
	}
}

func TestAllReplicasCorruptFailsRead(t *testing.T) {
	d, blk, _ := corruptTestFS(t)
	for _, n := range blk.Replicas {
		if err := d.CorruptBlock(n); err != nil {
			t.Fatalf("CorruptBlock(%d): %v", n, err)
		}
	}
	if _, _, err := d.ReadBlock(blk.ID, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadBlock with all replicas corrupt: err = %v, want ErrCorrupt", err)
	}
}

func TestRereplicateSkipsCorruptSource(t *testing.T) {
	d, blk, payload := corruptTestFS(t)
	// Corrupt one replica, then kill a different one so the block becomes
	// under-replicated; the new copy must come from a healthy replica.
	corrupt := blk.Replicas[0]
	if err := d.CorruptBlock(corrupt); err != nil {
		t.Fatalf("CorruptBlock: %v", err)
	}
	if err := d.KillNode(blk.Replicas[1]); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	added, bytesCopied := d.Rereplicate()
	if added != 1 || bytesCopied != int64(len(payload)) {
		t.Fatalf("Rereplicate = (%d, %d), want (1, %d)", added, bytesCopied, len(payload))
	}
	locs, err := d.BlockLocations("/f")
	if err != nil {
		t.Fatalf("BlockLocations: %v", err)
	}
	var fresh topology.NodeID = -1
	for _, n := range locs[0].Replicas {
		if n != blk.Replicas[0] && n != blk.Replicas[2] {
			fresh = n
		}
	}
	if fresh < 0 {
		t.Fatalf("no fresh replica found in %v", locs[0].Replicas)
	}
	data, _, err := d.ReadBlock(blk.ID, fresh)
	if err != nil {
		t.Fatalf("ReadBlock at fresh replica: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("re-replication propagated corrupt data")
	}
}

func TestCorruptBlockErrors(t *testing.T) {
	top := topology.TwoTier(1, 3, 4)
	d := New(Config{Topology: top, Seed: 1})
	if err := d.CorruptBlock(99); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("CorruptBlock(99) = %v, want ErrNodeUnknown", err)
	}
	if err := d.CorruptBlock(0); err == nil {
		t.Fatal("CorruptBlock on an empty node succeeded, want error")
	}
}

func TestOpenReadsThroughRepair(t *testing.T) {
	d, blk, payload := corruptTestFS(t)
	if err := d.CorruptBlock(blk.Replicas[0]); err != nil {
		t.Fatalf("CorruptBlock: %v", err)
	}
	r, err := d.Open("/f", blk.Replicas[0])
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file contents differ after corruption + repair")
	}
}
