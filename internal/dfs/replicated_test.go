package dfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/ha"
	"repro/internal/topology"
)

func replicatedFS(t *testing.T, seed uint64) (*DFS, *ha.Group) {
	t.Helper()
	cfg := Config{
		Topology:    topology.TwoTier(2, 3, 4),
		BlockSize:   1 << 10,
		Replication: 3,
		Seed:        seed,
	}
	g := ha.NewGroup(ha.Config{
		Seed:     seed,
		Machines: map[string]func() ha.StateMachine{MachineName: NameMachine(cfg)},
	})
	return NewReplicated(cfg, g), g
}

func TestReplicatedRoundTrip(t *testing.T) {
	d, _ := replicatedFS(t, 3)
	payload := bytes.Repeat([]byte("replicated namenode "), 200)
	writeFile(t, d, "/a", payload)
	r, err := d.Open("/a", -1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("replicated round trip corrupted data")
	}
	if _, err := d.Create("/a"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate Create = %v, want ErrExists", err)
	}
	if _, err := d.Stat("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Stat(missing) = %v, want ErrNotFound", err)
	}
}

func TestReplicatedMatchesLocalPlacement(t *testing.T) {
	// The same seed and operation sequence must place blocks identically
	// whether the namenode is embedded or replicated: the placement RNG
	// lives in the state machine.
	cfg := Config{Topology: topology.TwoTier(2, 3, 4), BlockSize: 1 << 10, Replication: 3, Seed: 77}
	local := New(cfg)
	repl, _ := replicatedFS(t, 77)
	payload := bytes.Repeat([]byte("x"), 5<<10)
	writeFile(t, local, "/f", payload)
	writeFile(t, repl, "/f", payload)
	a, err := local.BlockLocations("/f")
	if err != nil {
		t.Fatalf("local BlockLocations: %v", err)
	}
	b, err := repl.BlockLocations("/f")
	if err != nil {
		t.Fatalf("replicated BlockLocations: %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("block counts differ: local %d, replicated %d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Length != b[i].Length {
			t.Errorf("block %d identity differs: %+v vs %+v", i, a[i], b[i])
		}
		if len(a[i].Replicas) != len(b[i].Replicas) {
			t.Fatalf("block %d replica counts differ: %v vs %v", i, a[i].Replicas, b[i].Replicas)
		}
		for j := range a[i].Replicas {
			if a[i].Replicas[j] != b[i].Replicas[j] {
				t.Errorf("block %d replica %d differs: %v vs %v", i, j, a[i].Replicas, b[i].Replicas)
			}
		}
	}
}

func TestLeaderCrashMidWriteDoesNotLoseBlockMap(t *testing.T) {
	d, g := replicatedFS(t, 5)
	payload := bytes.Repeat([]byte("failover "), 500) // several blocks
	w, err := d.Create("/journal")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	half := len(payload) / 2
	if _, err := w.Write(payload[:half]); err != nil {
		t.Fatalf("Write first half: %v", err)
	}
	// Kill the namenode leader mid-write. The remaining members elect a
	// new leader and the write continues against it.
	if err := g.CrashMember(-1); err != nil {
		t.Fatalf("CrashMember: %v", err)
	}
	if _, err := w.Write(payload[half:]); err != nil {
		t.Fatalf("Write after leader crash: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := d.Open("/journal", -1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-failover contents differ: got %d bytes, want %d", len(got), len(payload))
	}
	// The crashed member rejoins and catches up without disturbing reads.
	if err := g.ReviveMember(-1); err != nil {
		t.Fatalf("ReviveMember: %v", err)
	}
	info, err := d.Stat("/journal")
	if err != nil {
		t.Fatalf("Stat after revive: %v", err)
	}
	if info.Size != int64(len(payload)) {
		t.Fatalf("Stat size = %d, want %d", info.Size, len(payload))
	}
}

func TestReplicatedRecoveryOps(t *testing.T) {
	d, g := replicatedFS(t, 9)
	payload := bytes.Repeat([]byte("y"), 4<<10)
	writeFile(t, d, "/data", payload)
	locs, err := d.BlockLocations("/data")
	if err != nil {
		t.Fatalf("BlockLocations: %v", err)
	}
	if err := d.KillNode(locs[0].Replicas[0]); err != nil {
		t.Fatalf("KillNode: %v", err)
	}
	if n := len(d.UnderReplicated()); n == 0 {
		t.Fatal("no under-replicated blocks after node kill")
	}
	// Crash the namenode leader, then drive recovery through the new one.
	if err := g.CrashMember(-1); err != nil {
		t.Fatalf("CrashMember: %v", err)
	}
	added, _ := d.Rereplicate()
	if added == 0 {
		t.Fatal("Rereplicate created no replicas after namenode failover")
	}
	if n := len(d.UnderReplicated()); n != 0 {
		t.Fatalf("%d blocks still under-replicated after recovery", n)
	}
	r, err := d.Open("/data", -1)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("contents differ after kill + failover + rereplicate")
	}
}
