package dfs

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/rng"
	"repro/internal/topology"
)

// nameState is the namenode metadata — namespace, block map, liveness,
// placement policy — separated from the datanode stores so it can run
// either embedded in the DFS (local mode) or as a deterministic
// replicated state machine on a Raft group (HA mode). Every method is a
// pure function of the state and its arguments: all randomness flows
// through the seeded RNG, which is part of the state and included in
// snapshots, so replicas that apply the same command sequence place
// blocks identically.
//
// Mutations that require data movement (seal, rereplicate, balance,
// decommission) register the metadata first and return a plan of copies
// for the data plane to execute; the read path tolerates a replica
// whose store has not caught up yet by falling back to another replica.
type nameState struct {
	cfg       Config
	files     map[string]*fileMeta
	blocks    map[BlockID]*blockMeta
	alive     []bool
	nextBlock BlockID
	rand      *rng.RNG
}

// moveRef is one planned data copy: block id from src's store to dst.
// src < 0 means a fresh write (the data comes from the client).
type moveRef struct {
	id       BlockID
	src, dst topology.NodeID
	length   int64
}

// blockRef names a block and the nodes holding it, for store cleanup.
type blockRef struct {
	id       BlockID
	replicas []topology.NodeID
}

// withDefaults normalizes the config exactly like New always has, so
// the local DFS and every state-machine replica agree on the policy.
func (cfg Config) withDefaults() Config {
	if cfg.Topology == nil {
		panic("dfs: Config.Topology is required")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 8 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.Topology.Size() {
		cfg.Replication = cfg.Topology.Size()
	}
	return cfg
}

func newNameState(cfg Config) *nameState {
	cfg = cfg.withDefaults()
	st := &nameState{
		cfg:    cfg,
		files:  map[string]*fileMeta{},
		blocks: map[BlockID]*blockMeta{},
		alive:  make([]bool, cfg.Topology.Size()),
		rand:   rng.New(cfg.Seed),
	}
	for i := range st.alive {
		st.alive[i] = true
	}
	return st
}

func (st *nameState) size() int { return len(st.alive) }

func (st *nameState) create(path string, repl int) error {
	if _, ok := st.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if repl <= 0 {
		repl = st.cfg.Replication
	}
	if repl > st.size() {
		repl = st.size()
	}
	// Reserve the name so concurrent creators conflict deterministically.
	st.files[path] = &fileMeta{path: path, repl: repl}
	return nil
}

// seal allocates a block id, places replicas and appends the block to
// path. The caller writes the data to the returned replicas' stores.
func (st *nameState) seal(path string, hint topology.NodeID, length int64) (BlockID, []topology.NodeID, error) {
	f, ok := st.files[path]
	if !ok {
		return 0, nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	replicas, err := st.place(f.repl, hint)
	if err != nil {
		return 0, nil, err
	}
	id := st.nextBlock
	st.nextBlock++
	st.blocks[id] = &blockMeta{id: id, length: length, replicas: replicas}
	f.blocks = append(f.blocks, id)
	f.size += length
	return id, replicas, nil
}

// place chooses repl distinct live nodes using the rack-aware policy.
func (st *nameState) place(repl int, hint topology.NodeID) ([]topology.NodeID, error) {
	top := st.cfg.Topology
	var chosen []topology.NodeID
	used := map[topology.NodeID]bool{}
	pick := func(ok func(topology.NodeID) bool) bool {
		// Random start, linear probe: deterministic given the seed.
		start := st.rand.Intn(top.Size())
		for i := 0; i < top.Size(); i++ {
			n := topology.NodeID((start + i) % top.Size())
			if st.alive[n] && !used[n] && (ok == nil || ok(n)) {
				chosen = append(chosen, n)
				used[n] = true
				return true
			}
		}
		return false
	}

	// First replica: the writer's node when live, else anywhere.
	if hint >= 0 && int(hint) < top.Size() && st.alive[hint] {
		chosen = append(chosen, hint)
		used[hint] = true
	} else if !pick(nil) {
		return nil, ErrNoLiveNode
	}
	// Second replica: a different rack when possible.
	if len(chosen) < repl {
		firstRack := top.RackOf(chosen[0])
		if !pick(func(n topology.NodeID) bool { return top.RackOf(n) != firstRack }) {
			if !pick(nil) {
				return chosen, nil // degraded: fewer replicas than asked
			}
		}
	}
	// Third replica: same rack as the second.
	if len(chosen) < repl {
		secondRack := top.RackOf(chosen[1])
		if !pick(func(n topology.NodeID) bool { return top.RackOf(n) == secondRack }) {
			pick(nil)
		}
	}
	// Any further replicas: anywhere.
	for len(chosen) < repl {
		if !pick(nil) {
			break
		}
	}
	return chosen, nil
}

// deleteFile removes a file, returning the freed blocks so the data
// plane can drop the stored replicas.
func (st *nameState) deleteFile(path string) ([]blockRef, error) {
	f, ok := st.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(st.files, path)
	var freed []blockRef
	for _, id := range f.blocks {
		bm := st.blocks[id]
		if bm == nil {
			continue
		}
		freed = append(freed, blockRef{id: id, replicas: bm.replicas})
		delete(st.blocks, id)
	}
	return freed, nil
}

func (st *nameState) setAlive(n topology.NodeID, alive bool) error {
	if int(n) < 0 || int(n) >= st.size() {
		return ErrNodeUnknown
	}
	st.alive[n] = alive
	return nil
}

// replTargets maps every referenced block to its file's target count.
func (st *nameState) replTargets() map[BlockID]int {
	target := map[BlockID]int{}
	for _, f := range st.files {
		for _, id := range f.blocks {
			target[id] = f.repl
		}
	}
	return target
}

// underReplicated returns blocks whose live replica count is below their
// file's target but above zero, sorted by id.
func (st *nameState) underReplicated() []BlockID {
	target := st.replTargets()
	var out []BlockID
	for id, bm := range st.blocks {
		live := 0
		for _, n := range bm.replicas {
			if st.alive[n] {
				live++
			}
		}
		if live < target[id] && live > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rereplicate registers fresh replicas for every under-replicated block
// and returns the copy plan (src = an existing live replica).
func (st *nameState) rereplicate() []moveRef {
	target := st.replTargets()
	var plan []moveRef
	for _, id := range st.underReplicated() {
		bm := st.blocks[id]
		var src topology.NodeID = -1
		liveSet := map[topology.NodeID]bool{}
		live := 0
		for _, n := range bm.replicas {
			if st.alive[n] {
				liveSet[n] = true
				live++
				src = n
			}
		}
		for live < target[id] {
			start := st.rand.Intn(st.size())
			placed := false
			for i := 0; i < st.size(); i++ {
				n := topology.NodeID((start + i) % st.size())
				if !st.alive[n] || liveSet[n] {
					continue
				}
				bm.replicas = append(bm.replicas, n)
				liveSet[n] = true
				live++
				plan = append(plan, moveRef{id: id, src: src, dst: n, length: bm.length})
				placed = true
				break
			}
			if !placed {
				break
			}
		}
	}
	return plan
}

// storedBytes is node n's load as derivable from metadata alone (every
// replica of a block contributes its length). The data plane converges
// to this once planned copies execute.
func (st *nameState) storedBytes(n topology.NodeID) int64 {
	var total int64
	for _, bm := range st.blocks {
		for _, r := range bm.replicas {
			if r == n {
				total += bm.length
			}
		}
	}
	return total
}

// decommission drains node n: every replica it holds is reassigned to
// another live node (preferring the emptiest) and n is marked dead. The
// plan is all-or-nothing: if any block has no legal target the state is
// left untouched.
func (st *nameState) decommission(n topology.NodeID) ([]moveRef, error) {
	if int(n) < 0 || int(n) >= st.size() {
		return nil, ErrNodeUnknown
	}
	if !st.alive[n] {
		return nil, fmt.Errorf("dfs: node %d is already down", n)
	}
	var ids []BlockID
	for id, bm := range st.blocks {
		for _, r := range bm.replicas {
			if r == n {
				ids = append(ids, id)
				break
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Plan first against projected loads, then commit.
	extra := map[topology.NodeID]int64{}
	var plan []moveRef
	for _, id := range ids {
		bm := st.blocks[id]
		holds := map[topology.NodeID]bool{n: true}
		for _, r := range bm.replicas {
			holds[r] = true
		}
		best := topology.NodeID(-1)
		var bestBytes int64
		for i := 0; i < st.size(); i++ {
			cand := topology.NodeID(i)
			if !st.alive[cand] || holds[cand] {
				continue
			}
			b := st.storedBytes(cand) + extra[cand]
			if best < 0 || b < bestBytes {
				best, bestBytes = cand, b
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("%w: no target for block %d", ErrNoLiveNode, id)
		}
		extra[best] += bm.length
		plan = append(plan, moveRef{id: id, src: n, dst: best, length: bm.length})
	}
	for _, mv := range plan {
		bm := st.blocks[mv.id]
		for i, r := range bm.replicas {
			if r == n {
				bm.replicas[i] = mv.dst
				break
			}
		}
	}
	st.alive[n] = false
	return plan, nil
}

// balance migrates replicas from the fullest live nodes to the emptiest
// until every node is within slack of the live-node mean, or no legal
// move remains — the HDFS balancer as a deterministic greedy pass over
// the metadata. Returns the move plan.
func (st *nameState) balance(slack float64) []moveRef {
	if slack <= 0 {
		slack = 0.1
	}
	var plan []moveRef
	for iter := 0; iter < 10_000; iter++ {
		var live []topology.NodeID
		var total int64
		for i := 0; i < st.size(); i++ {
			n := topology.NodeID(i)
			if st.alive[n] {
				live = append(live, n)
				total += st.storedBytes(n)
			}
		}
		if len(live) < 2 {
			return plan
		}
		mean := float64(total) / float64(len(live))
		var fullest, emptiest topology.NodeID = -1, -1
		var maxB, minB int64
		for _, n := range live {
			b := st.storedBytes(n)
			if fullest < 0 || b > maxB {
				fullest, maxB = n, b
			}
			if emptiest < 0 || b < minB {
				emptiest, minB = n, b
			}
		}
		if float64(maxB) <= mean*(1+slack) || fullest == emptiest {
			return plan
		}
		// Candidates: blocks on the fullest node that the emptiest lacks.
		var candidates []*blockMeta
		for _, bm := range st.blocks {
			onFull, onEmpty := false, false
			for _, r := range bm.replicas {
				if r == fullest {
					onFull = true
				}
				if r == emptiest {
					onEmpty = true
				}
			}
			if onFull && !onEmpty {
				candidates = append(candidates, bm)
			}
		}
		if len(candidates) == 0 {
			return plan
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i].id < candidates[j].id })
		// Smallest candidate block; a move only proceeds when it strictly
		// shrinks the max-min gap, otherwise indivisible blocks ping-pong
		// between nodes forever.
		bm := candidates[0]
		for _, c := range candidates {
			if c.length < bm.length {
				bm = c
			}
		}
		if maxB-minB <= bm.length {
			return plan
		}
		for i, r := range bm.replicas {
			if r == fullest {
				bm.replicas[i] = emptiest
				break
			}
		}
		plan = append(plan, moveRef{id: bm.id, src: fullest, dst: emptiest, length: bm.length})
	}
	return plan
}

// snapshot serializes the full metadata, including the placement RNG
// state, so a restored replica continues the exact placement sequence.
func (st *nameState) snapshot() []byte {
	var buf []byte
	buf = binary.BigEndian.AppendUint64(buf, uint64(st.nextBlock))
	for _, s := range st.rand.State() {
		buf = binary.BigEndian.AppendUint64(buf, s)
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(st.alive)))
	for _, a := range st.alive {
		if a {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	paths := make([]string, 0, len(st.files))
	for p := range st.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(paths)))
	for _, p := range paths {
		f := st.files[p]
		buf = appendStr(buf, p)
		buf = binary.BigEndian.AppendUint32(buf, uint32(f.repl))
		buf = binary.BigEndian.AppendUint64(buf, uint64(f.size))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.blocks)))
		for _, id := range f.blocks {
			buf = binary.BigEndian.AppendUint64(buf, uint64(id))
		}
	}
	ids := make([]BlockID, 0, len(st.blocks))
	for id := range st.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ids)))
	for _, id := range ids {
		bm := st.blocks[id]
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
		buf = binary.BigEndian.AppendUint64(buf, uint64(bm.length))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(bm.replicas)))
		for _, r := range bm.replicas {
			buf = binary.BigEndian.AppendUint64(buf, uint64(r))
		}
	}
	return buf
}

// restore replaces the metadata from a snapshot.
func (st *nameState) restore(snap []byte) {
	d := &mreader{buf: snap}
	st.nextBlock = BlockID(d.u64())
	var rs [4]uint64
	for i := range rs {
		rs[i] = d.u64()
	}
	st.rand.SetState(rs)
	n := int(d.u32())
	st.alive = make([]bool, n)
	for i := 0; i < n; i++ {
		st.alive[i] = d.u8() == 1
	}
	st.files = map[string]*fileMeta{}
	nf := int(d.u32())
	for i := 0; i < nf && d.err == nil; i++ {
		f := &fileMeta{path: d.str()}
		f.repl = int(d.u32())
		f.size = int64(d.u64())
		nb := int(d.u32())
		for j := 0; j < nb; j++ {
			f.blocks = append(f.blocks, BlockID(d.u64()))
		}
		st.files[f.path] = f
	}
	st.blocks = map[BlockID]*blockMeta{}
	nb := int(d.u32())
	for i := 0; i < nb && d.err == nil; i++ {
		bm := &blockMeta{id: BlockID(d.u64())}
		bm.length = int64(d.u64())
		nr := int(d.u32())
		for j := 0; j < nr; j++ {
			bm.replicas = append(bm.replicas, topology.NodeID(d.u64()))
		}
		st.blocks[bm.id] = bm
	}
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

// mreader reads the metadata wire format; the first error sticks.
type mreader struct {
	buf []byte
	off int
	err error
}

func (d *mreader) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("dfs: truncated metadata encoding at offset %d", d.off)
	}
}

func (d *mreader) u8() byte {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *mreader) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *mreader) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *mreader) str() string {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}
