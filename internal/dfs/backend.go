package dfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/ha"
	"repro/internal/topology"
)

// metaBackend is the namenode as seen by the DFS data plane: every
// metadata mutation and read goes through it. localMeta embeds the
// state directly (the classic single-namenode layout); raftMeta
// proposes each mutation as a command on a replicated group, so the
// block map survives any single namenode crash.
type metaBackend interface {
	create(path string, repl int) error
	seal(path string, hint topology.NodeID, length int64) (BlockID, []topology.NodeID, error)
	deleteFile(path string) ([]blockRef, error)
	setAlive(n topology.NodeID, alive bool) error
	rereplicate() ([]moveRef, error)
	decommission(n topology.NodeID) ([]moveRef, error)
	balance(slack float64) ([]moveRef, error)
	// view runs fn against a current metadata replica. fn must only
	// read, and must not retain st past the call.
	view(fn func(st *nameState)) error
}

// localMeta is the in-process namenode: one nameState under a mutex.
type localMeta struct {
	mu sync.Mutex
	st *nameState
}

func (l *localMeta) create(path string, repl int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.create(path, repl)
}

func (l *localMeta) seal(path string, hint topology.NodeID, length int64) (BlockID, []topology.NodeID, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.seal(path, hint, length)
}

func (l *localMeta) deleteFile(path string) ([]blockRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.deleteFile(path)
}

func (l *localMeta) setAlive(n topology.NodeID, alive bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.setAlive(n, alive)
}

func (l *localMeta) rereplicate() ([]moveRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.rereplicate(), nil
}

func (l *localMeta) decommission(n topology.NodeID) ([]moveRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.decommission(n)
}

func (l *localMeta) balance(slack float64) ([]moveRef, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st.balance(slack), nil
}

func (l *localMeta) view(fn func(st *nameState)) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	fn(l.st)
	return nil
}

// MachineName is the name under which the namenode state machine is
// registered on a replicated control-plane group.
const MachineName = "nn"

// NameMachine returns an ha state-machine factory for the namenode
// metadata with the given (data-plane-identical) config. Register it in
// the group's Machines map under MachineName and hand the group to
// NewReplicated.
func NameMachine(cfg Config) func() ha.StateMachine {
	cfg = cfg.withDefaults()
	return func() ha.StateMachine { return &nameMachine{st: newNameState(cfg)} }
}

// nameMachine adapts nameState to the ha.StateMachine contract:
// commands are opcode-tagged encodings of the metaBackend mutations and
// responses carry either the result or a sentinel error code.
type nameMachine struct {
	st *nameState
}

// Command opcodes.
const (
	opCreate = iota + 1
	opSeal
	opDelete
	opSetAlive
	opRereplicate
	opDecommission
	opBalance
)

// Sentinel error codes on the response wire.
const (
	errOK = iota
	errExists
	errNotFound
	errNoLiveNode
	errNodeUnknown
	errOther
)

func encodeErr(err error) []byte {
	switch {
	case err == nil:
		return []byte{errOK}
	case errors.Is(err, ErrExists):
		return append([]byte{errExists}, err.Error()...)
	case errors.Is(err, ErrNotFound):
		return append([]byte{errNotFound}, err.Error()...)
	case errors.Is(err, ErrNoLiveNode):
		return append([]byte{errNoLiveNode}, err.Error()...)
	case errors.Is(err, ErrNodeUnknown):
		return append([]byte{errNodeUnknown}, err.Error()...)
	default:
		return append([]byte{errOther}, err.Error()...)
	}
}

// decodeResp splits a response into its payload and error. The detail
// string travels with the code so redirected clients see the same
// message a local caller would.
func decodeResp(resp []byte) ([]byte, error) {
	if len(resp) == 0 {
		return nil, errors.New("dfs: empty namenode response")
	}
	code, rest := resp[0], resp[1:]
	if code == errOK {
		return rest, nil
	}
	detail := string(rest)
	switch code {
	case errExists:
		return nil, fmt.Errorf("%w: %s", ErrExists, trimSentinel(detail, ErrExists))
	case errNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, trimSentinel(detail, ErrNotFound))
	case errNoLiveNode:
		return nil, fmt.Errorf("%w: %s", ErrNoLiveNode, trimSentinel(detail, ErrNoLiveNode))
	case errNodeUnknown:
		return nil, ErrNodeUnknown
	default:
		return nil, errors.New(detail)
	}
}

// trimSentinel strips the sentinel's own text from a detail message so
// re-wrapping with %w does not duplicate it.
func trimSentinel(detail string, sentinel error) string {
	prefix := sentinel.Error() + ": "
	if len(detail) >= len(prefix) && detail[:len(prefix)] == prefix {
		return detail[len(prefix):]
	}
	return detail
}

func (m *nameMachine) Apply(cmd []byte) []byte {
	d := &mreader{buf: cmd}
	switch op := d.u8(); op {
	case opCreate:
		path := d.str()
		repl := int(d.u32())
		if d.err != nil {
			return encodeErr(d.err)
		}
		return encodeErr(m.st.create(path, repl))
	case opSeal:
		path := d.str()
		hint := topology.NodeID(int64(d.u64()))
		length := int64(d.u64())
		if d.err != nil {
			return encodeErr(d.err)
		}
		id, replicas, err := m.st.seal(path, hint, length)
		if err != nil {
			return encodeErr(err)
		}
		buf := []byte{errOK}
		buf = binary.BigEndian.AppendUint64(buf, uint64(id))
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(replicas)))
		for _, r := range replicas {
			buf = binary.BigEndian.AppendUint64(buf, uint64(r))
		}
		return buf
	case opDelete:
		path := d.str()
		if d.err != nil {
			return encodeErr(d.err)
		}
		freed, err := m.st.deleteFile(path)
		if err != nil {
			return encodeErr(err)
		}
		buf := []byte{errOK}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(freed)))
		for _, ref := range freed {
			buf = binary.BigEndian.AppendUint64(buf, uint64(ref.id))
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(ref.replicas)))
			for _, r := range ref.replicas {
				buf = binary.BigEndian.AppendUint64(buf, uint64(r))
			}
		}
		return buf
	case opSetAlive:
		n := topology.NodeID(int64(d.u64()))
		alive := d.u8() == 1
		if d.err != nil {
			return encodeErr(d.err)
		}
		return encodeErr(m.st.setAlive(n, alive))
	case opRereplicate:
		return encodeMoves(m.st.rereplicate())
	case opDecommission:
		n := topology.NodeID(int64(d.u64()))
		if d.err != nil {
			return encodeErr(d.err)
		}
		plan, err := m.st.decommission(n)
		if err != nil {
			return encodeErr(err)
		}
		return encodeMoves(plan)
	case opBalance:
		slack := math.Float64frombits(d.u64())
		if d.err != nil {
			return encodeErr(d.err)
		}
		return encodeMoves(m.st.balance(slack))
	default:
		return encodeErr(fmt.Errorf("dfs: unknown namenode opcode %d", op))
	}
}

func (m *nameMachine) Snapshot() []byte    { return m.st.snapshot() }
func (m *nameMachine) Restore(snap []byte) { m.st.restore(snap) }

func encodeMoves(plan []moveRef) []byte {
	buf := []byte{errOK}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(plan)))
	for _, mv := range plan {
		buf = binary.BigEndian.AppendUint64(buf, uint64(mv.id))
		buf = binary.BigEndian.AppendUint64(buf, uint64(mv.src))
		buf = binary.BigEndian.AppendUint64(buf, uint64(mv.dst))
		buf = binary.BigEndian.AppendUint64(buf, uint64(mv.length))
	}
	return buf
}

func decodeMoves(payload []byte) ([]moveRef, error) {
	d := &mreader{buf: payload}
	n := int(d.u32())
	plan := make([]moveRef, 0, n)
	for i := 0; i < n; i++ {
		mv := moveRef{
			id:  BlockID(d.u64()),
			src: topology.NodeID(int64(d.u64())),
			dst: topology.NodeID(int64(d.u64())),
		}
		mv.length = int64(d.u64())
		if d.err != nil {
			return nil, d.err
		}
		plan = append(plan, mv)
	}
	return plan, nil
}

// raftMeta proposes every metadata mutation as a command on a
// replicated group; reads run against the current leader's replica.
type raftMeta struct {
	g *ha.Group
}

func (r *raftMeta) propose(cmd []byte) ([]byte, error) {
	resp, err := r.g.Propose(MachineName, cmd)
	if err != nil {
		return nil, err
	}
	return decodeResp(resp)
}

func (r *raftMeta) create(path string, repl int) error {
	cmd := appendStr([]byte{opCreate}, path)
	cmd = binary.BigEndian.AppendUint32(cmd, uint32(repl))
	_, err := r.propose(cmd)
	return err
}

func (r *raftMeta) seal(path string, hint topology.NodeID, length int64) (BlockID, []topology.NodeID, error) {
	cmd := appendStr([]byte{opSeal}, path)
	cmd = binary.BigEndian.AppendUint64(cmd, uint64(int64(hint)))
	cmd = binary.BigEndian.AppendUint64(cmd, uint64(length))
	payload, err := r.propose(cmd)
	if err != nil {
		return 0, nil, err
	}
	d := &mreader{buf: payload}
	id := BlockID(d.u64())
	n := int(d.u32())
	replicas := make([]topology.NodeID, 0, n)
	for i := 0; i < n; i++ {
		replicas = append(replicas, topology.NodeID(int64(d.u64())))
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	return id, replicas, nil
}

func (r *raftMeta) deleteFile(path string) ([]blockRef, error) {
	payload, err := r.propose(appendStr([]byte{opDelete}, path))
	if err != nil {
		return nil, err
	}
	d := &mreader{buf: payload}
	n := int(d.u32())
	freed := make([]blockRef, 0, n)
	for i := 0; i < n; i++ {
		ref := blockRef{id: BlockID(d.u64())}
		m := int(d.u32())
		for j := 0; j < m; j++ {
			ref.replicas = append(ref.replicas, topology.NodeID(int64(d.u64())))
		}
		if d.err != nil {
			return nil, d.err
		}
		freed = append(freed, ref)
	}
	return freed, nil
}

func (r *raftMeta) setAlive(n topology.NodeID, alive bool) error {
	cmd := binary.BigEndian.AppendUint64([]byte{opSetAlive}, uint64(int64(n)))
	if alive {
		cmd = append(cmd, 1)
	} else {
		cmd = append(cmd, 0)
	}
	_, err := r.propose(cmd)
	return err
}

func (r *raftMeta) rereplicate() ([]moveRef, error) {
	payload, err := r.propose([]byte{opRereplicate})
	if err != nil {
		return nil, err
	}
	return decodeMoves(payload)
}

func (r *raftMeta) decommission(n topology.NodeID) ([]moveRef, error) {
	cmd := binary.BigEndian.AppendUint64([]byte{opDecommission}, uint64(int64(n)))
	payload, err := r.propose(cmd)
	if err != nil {
		return nil, err
	}
	return decodeMoves(payload)
}

func (r *raftMeta) balance(slack float64) ([]moveRef, error) {
	cmd := binary.BigEndian.AppendUint64([]byte{opBalance}, math.Float64bits(slack))
	payload, err := r.propose(cmd)
	if err != nil {
		return nil, err
	}
	return decodeMoves(payload)
}

func (r *raftMeta) view(fn func(st *nameState)) error {
	return r.g.Query(MachineName, func(sm ha.StateMachine) error {
		fn(sm.(*nameMachine).st)
		return nil
	})
}
