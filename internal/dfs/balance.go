package dfs

import (
	"repro/internal/topology"
)

// Decommission drains a node gracefully: every replica it holds is copied
// to another live node first, then the node is marked dead. Unlike
// KillNode, no block loses a replica. It returns the bytes migrated.
//
// The namenode plans and commits the reassignment as one command (so it
// is atomic even across a leader failover); the data copies then execute
// against the stores.
func (d *DFS) Decommission(n topology.NodeID) (int64, error) {
	plan, err := d.meta.decommission(n)
	if err != nil {
		return 0, err
	}
	var moved int64
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, mv := range plan {
		if d.copyReplicaLocked(mv.id, mv.src, mv.dst) {
			moved += mv.length
		}
		delete(d.nodes[n].store, mv.id)
		delete(d.nodes[n].sums, mv.id)
	}
	return moved, nil
}

// StoredBytes returns the bytes node n currently holds.
func (d *DFS) StoredBytes(n topology.NodeID) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(n) < 0 || int(n) >= len(d.nodes) {
		return 0
	}
	var total int64
	for _, b := range d.nodes[n].store {
		total += int64(len(b))
	}
	return total
}

// Balance migrates replicas from the fullest live nodes to the emptiest
// until every node is within `slack` (e.g. 0.15 = 15%) of the live-node
// mean, or no legal move remains. It returns the moves made and bytes
// migrated — the HDFS balancer, simplified to a deterministic greedy pass.
func (d *DFS) Balance(slack float64) (moves int, migrated int64) {
	plan, err := d.meta.balance(slack)
	if err != nil {
		return 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, mv := range plan {
		if d.copyReplicaLocked(mv.id, mv.src, mv.dst) {
			migrated += mv.length
		}
		delete(d.nodes[mv.src].store, mv.id)
		delete(d.nodes[mv.src].sums, mv.id)
		moves++
	}
	return moves, migrated
}
