package dfs

import (
	"fmt"
	"sort"

	"repro/internal/topology"
)

// Decommission drains a node gracefully: every replica it holds is copied
// to another live node first, then the node is marked dead. Unlike
// KillNode, no block loses a replica. It returns the bytes migrated.
func (d *DFS) Decommission(n topology.NodeID) (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(n) < 0 || int(n) >= len(d.alive) {
		return 0, ErrNodeUnknown
	}
	if !d.alive[n] {
		return 0, fmt.Errorf("dfs: node %d is already down", n)
	}
	var moved int64
	ids := make([]BlockID, 0, len(d.nodes[n].store))
	for id := range d.nodes[n].store {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		bm := d.blocks[id]
		if bm == nil {
			delete(d.nodes[n].store, id)
			continue
		}
		dst, ok := d.pickMigrationTargetLocked(bm, n)
		if !ok {
			return moved, fmt.Errorf("%w: no target for block %d", ErrNoLiveNode, id)
		}
		data := d.nodes[n].store[id]
		cp := make([]byte, len(data))
		copy(cp, data)
		d.nodes[dst].store[id] = cp
		delete(d.nodes[n].store, id)
		for i, r := range bm.replicas {
			if r == n {
				bm.replicas[i] = dst
				break
			}
		}
		moved += bm.length
	}
	d.alive[n] = false
	return moved, nil
}

// pickMigrationTargetLocked finds a live node that does not already hold
// the block, preferring the emptiest.
func (d *DFS) pickMigrationTargetLocked(bm *blockMeta, exclude topology.NodeID) (topology.NodeID, bool) {
	holds := map[topology.NodeID]bool{exclude: true}
	for _, r := range bm.replicas {
		holds[r] = true
	}
	best := topology.NodeID(-1)
	var bestBytes int64
	for i := range d.nodes {
		n := topology.NodeID(i)
		if !d.alive[n] || holds[n] {
			continue
		}
		b := d.storedBytesLocked(n)
		if best < 0 || b < bestBytes {
			best = n
			bestBytes = b
		}
	}
	return best, best >= 0
}

func (d *DFS) storedBytesLocked(n topology.NodeID) int64 {
	var total int64
	for _, b := range d.nodes[n].store {
		total += int64(len(b))
	}
	return total
}

// StoredBytes returns the bytes node n currently holds.
func (d *DFS) StoredBytes(n topology.NodeID) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(n) < 0 || int(n) >= len(d.nodes) {
		return 0
	}
	return d.storedBytesLocked(n)
}

// Balance migrates replicas from the fullest live nodes to the emptiest
// until every node is within `slack` (e.g. 0.15 = 15%) of the live-node
// mean, or no legal move remains. It returns the moves made and bytes
// migrated — the HDFS balancer, simplified to a deterministic greedy pass.
func (d *DFS) Balance(slack float64) (moves int, migrated int64) {
	if slack <= 0 {
		slack = 0.1
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for iter := 0; iter < 10_000; iter++ {
		// Compute live-node utilizations.
		var live []topology.NodeID
		var total int64
		for i := range d.nodes {
			n := topology.NodeID(i)
			if d.alive[n] {
				live = append(live, n)
				total += d.storedBytesLocked(n)
			}
		}
		if len(live) < 2 {
			return moves, migrated
		}
		mean := float64(total) / float64(len(live))
		var fullest, emptiest topology.NodeID = -1, -1
		var maxB, minB int64
		for _, n := range live {
			b := d.storedBytesLocked(n)
			if fullest < 0 || b > maxB {
				fullest, maxB = n, b
			}
			if emptiest < 0 || b < minB {
				emptiest, minB = n, b
			}
		}
		if float64(maxB) <= mean*(1+slack) || fullest == emptiest {
			return moves, migrated
		}
		// Move one block from fullest to emptiest (one it doesn't hold),
		// smallest block that still helps, deterministic order.
		var candidates []BlockID
		for id := range d.nodes[fullest].store {
			if _, has := d.nodes[emptiest].store[id]; !has {
				candidates = append(candidates, id)
			}
		}
		if len(candidates) == 0 {
			return moves, migrated
		}
		sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
		// Pick the smallest candidate block; a move only proceeds when it
		// strictly shrinks the max-min gap, otherwise indivisible blocks
		// ping-pong between nodes forever.
		id := candidates[0]
		for _, c := range candidates {
			if int64(len(d.nodes[fullest].store[c])) < int64(len(d.nodes[fullest].store[id])) {
				id = c
			}
		}
		if maxB-minB <= int64(len(d.nodes[fullest].store[id])) {
			return moves, migrated
		}
		bm := d.blocks[id]
		data := d.nodes[fullest].store[id]
		cp := make([]byte, len(data))
		copy(cp, data)
		d.nodes[emptiest].store[id] = cp
		delete(d.nodes[fullest].store, id)
		if bm != nil {
			for i, r := range bm.replicas {
				if r == fullest {
					bm.replicas[i] = emptiest
					break
				}
			}
		}
		moves++
		migrated += int64(len(cp))
	}
	return moves, migrated
}
