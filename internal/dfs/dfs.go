// Package dfs is an in-memory, HDFS-like distributed file system: a
// namenode (namespace, block map, placement policy) over per-node block
// stores. Files are split into fixed-size blocks, each replicated with the
// standard rack-aware policy (first replica local, second off-rack, third
// on the second's rack). The dataflow engine schedules tasks against
// BlockLocations for locality, and the recovery experiments kill nodes and
// re-replicate.
//
// The namenode metadata lives behind a backend interface: New embeds it
// in-process (one namenode, the availability gap real HDFS had before
// QJM-based HA), while NewReplicated runs it as a deterministic state
// machine on a Raft group from internal/ha, so a namenode-leader crash
// fails over without losing the block map. The datanode layer — block
// stores plus CRC32 per-replica checksums with read-repair — is
// identical in both modes.
//
// Data is held in memory because the experiments measure placement,
// locality and recovery behaviour — structural properties — rather than
// disk throughput; see DESIGN.md's substitution table.
package dfs

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"repro/internal/ha"
	"repro/internal/metrics"
	"repro/internal/topology"
)

// Errors returned by namespace operations.
var (
	ErrExists       = errors.New("dfs: file already exists")
	ErrNotFound     = errors.New("dfs: file not found")
	ErrNoLiveNode   = errors.New("dfs: no live node available for placement")
	ErrBlockLost    = errors.New("dfs: all replicas of a block are dead")
	ErrCorrupt      = errors.New("dfs: block fails checksum on every live replica")
	ErrNodeUnknown  = errors.New("dfs: unknown node")
	ErrWriterClosed = errors.New("dfs: writer is closed")
)

// BlockID identifies a block cluster-wide.
type BlockID int64

// Config configures a DFS instance.
type Config struct {
	// BlockSize is the split size in bytes. Defaults to 8 MiB.
	BlockSize int64
	// Replication is the default replica count. Defaults to 3, clamped to
	// the cluster size.
	Replication int
	// Topology describes the cluster; required.
	Topology *topology.Topology
	// Seed drives placement randomness.
	Seed uint64
}

// BlockInfo describes one block of a file: its identity, length and the
// nodes currently holding live replicas (closest-first ordering is the
// caller's job via Topology).
type BlockInfo struct {
	ID       BlockID
	Length   int64
	Replicas []topology.NodeID
}

// FileInfo summarizes a file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

type blockMeta struct {
	id       BlockID
	length   int64
	replicas []topology.NodeID
}

type fileMeta struct {
	path   string
	blocks []BlockID
	size   int64
	repl   int
}

// datanode stores block replicas plus the CRC32 recorded at write time;
// every read re-computes the sum and repairs from a healthy replica on
// mismatch.
type datanode struct {
	store map[BlockID][]byte
	sums  map[BlockID]uint32
}

// dfsMetrics holds the optional instrumentation hooks. All fields are
// nil until Instrument is called; the nil-safe metric types make every
// update a single branch when disabled.
type dfsMetrics struct {
	blocksWritten     *metrics.Counter
	bytesWritten      *metrics.Counter
	blocksRead        *metrics.Counter
	bytesRead         *metrics.Counter
	readsByLocality   *metrics.CounterVec // label: locality = local|rack|remote
	replicasCreated   *metrics.Counter
	rereplicatedBytes *metrics.Counter
	checksumFailures  *metrics.Counter
	readRepairs       *metrics.Counter
}

// DFS is the whole filesystem: the namenode backend plus all datanodes.
// Safe for concurrent use.
type DFS struct {
	mu    sync.RWMutex // guards the datanode stores and checksums
	cfg   Config
	meta  metaBackend
	nodes []*datanode
	m     dfsMetrics
}

// Instrument attaches the filesystem's counters to reg: block/byte
// write and read volume, read locality (dfs_reads_by_locality, labeled
// local/rack/remote), re-replication work, and block integrity
// (dfs_checksum_failures, dfs_read_repairs). Call before serving
// traffic; a nil reg detaches.
func (d *DFS) Instrument(reg *metrics.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if reg == nil {
		d.m = dfsMetrics{}
		return
	}
	d.m = dfsMetrics{
		blocksWritten:     reg.Counter("dfs_blocks_written"),
		bytesWritten:      reg.Counter("dfs_bytes_written"),
		blocksRead:        reg.Counter("dfs_blocks_read"),
		bytesRead:         reg.Counter("dfs_bytes_read"),
		readsByLocality:   reg.CounterVec("dfs_reads_by_locality", "locality"),
		replicasCreated:   reg.Counter("dfs_replicas_created"),
		rereplicatedBytes: reg.Counter("dfs_rereplicated_bytes"),
		checksumFailures:  reg.Counter("dfs_checksum_failures"),
		readRepairs:       reg.Counter("dfs_read_repairs"),
	}
}

// New creates an empty filesystem over cfg.Topology with an in-process
// (single, unreplicated) namenode.
func New(cfg Config) *DFS {
	cfg = cfg.withDefaults()
	return newDFS(cfg, &localMeta{st: newNameState(cfg)})
}

// NewReplicated creates a filesystem whose namenode metadata is
// replicated on g: every mutation is proposed as a command on the
// group's MachineName state machine (register NameMachine(cfg) there),
// so a namenode-leader crash fails over without losing the block map.
// The group must be built with the same cfg the filesystem uses.
func NewReplicated(cfg Config, g *ha.Group) *DFS {
	cfg = cfg.withDefaults()
	return newDFS(cfg, &raftMeta{g: g})
}

func newDFS(cfg Config, meta metaBackend) *DFS {
	d := &DFS{
		cfg:   cfg,
		meta:  meta,
		nodes: make([]*datanode, cfg.Topology.Size()),
	}
	for i := range d.nodes {
		d.nodes[i] = &datanode{store: map[BlockID][]byte{}, sums: map[BlockID]uint32{}}
	}
	return d
}

// BlockSize returns the configured split size.
func (d *DFS) BlockSize() int64 { return d.cfg.BlockSize }

// Create opens a new file for writing with the default replication and no
// placement hint.
func (d *DFS) Create(path string) (*Writer, error) {
	return d.CreateWith(path, d.cfg.Replication, topology.NodeID(-1))
}

// CreateWith opens a new file with an explicit replication factor and a
// placement hint: the writer's node, which receives the first replica of
// every block (the HDFS write-local rule). Pass hint -1 for no affinity.
func (d *DFS) CreateWith(path string, replication int, hint topology.NodeID) (*Writer, error) {
	if err := d.meta.create(path, replication); err != nil {
		return nil, err
	}
	return &Writer{d: d, path: path, hint: hint}, nil
}

// Writer streams data into a file, sealing a block every BlockSize bytes.
type Writer struct {
	d      *DFS
	path   string
	hint   topology.NodeID
	buf    []byte
	closed bool
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	total := len(p)
	for len(p) > 0 {
		room := int(w.d.cfg.BlockSize) - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if int64(len(w.buf)) == w.d.cfg.BlockSize {
			if err := w.seal(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// seal commits the current buffer as a block: the namenode registers the
// block and chooses replicas, then the data lands on those stores.
func (w *Writer) seal() error {
	if len(w.buf) == 0 {
		return nil
	}
	data := w.buf
	w.buf = nil
	id, replicas, err := w.d.meta.seal(w.path, w.hint, int64(len(data)))
	if err != nil {
		return err
	}
	sum := crc32.ChecksumIEEE(data)
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	for _, n := range replicas {
		stored := make([]byte, len(data))
		copy(stored, data)
		w.d.nodes[n].store[id] = stored
		w.d.nodes[n].sums[id] = sum
	}
	w.d.m.blocksWritten.Inc()
	w.d.m.bytesWritten.Add(int64(len(data)))
	return nil
}

// Close seals the final partial block and commits the file.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	return w.seal()
}

// Stat returns file metadata.
func (d *DFS) Stat(path string) (FileInfo, error) {
	var info FileInfo
	var ok bool
	if err := d.meta.view(func(st *nameState) {
		f, found := st.files[path]
		if !found {
			return
		}
		ok = true
		info = FileInfo{Path: f.path, Size: f.size, Blocks: len(f.blocks)}
	}); err != nil {
		return FileInfo{}, err
	}
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return info, nil
}

// List returns the paths with the given prefix, sorted.
func (d *DFS) List(prefix string) []string {
	var out []string
	_ = d.meta.view(func(st *nameState) {
		for p := range st.files {
			if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
				out = append(out, p)
			}
		}
	})
	sort.Strings(out)
	return out
}

// Delete removes a file and frees replicas whose blocks belong to no file.
func (d *DFS) Delete(path string) error {
	freed, err := d.meta.deleteFile(path)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ref := range freed {
		for _, n := range ref.replicas {
			delete(d.nodes[n].store, ref.id)
			delete(d.nodes[n].sums, ref.id)
		}
	}
	return nil
}

// BlockLocations returns the live replica placement of every block of path,
// in file order.
func (d *DFS) BlockLocations(path string) ([]BlockInfo, error) {
	var out []BlockInfo
	var ok bool
	if err := d.meta.view(func(st *nameState) {
		f, found := st.files[path]
		if !found {
			return
		}
		ok = true
		out = make([]BlockInfo, 0, len(f.blocks))
		for _, id := range f.blocks {
			bm := st.blocks[id]
			var live []topology.NodeID
			for _, n := range bm.replicas {
				if st.alive[n] {
					live = append(live, n)
				}
			}
			out = append(out, BlockInfo{ID: id, Length: bm.length, Replicas: live})
		}
	}); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return out, nil
}

// ReadBlock returns a copy of block id from a live replica, preferring
// one close to `at` (node-local, then rack-local, then remote). Every
// read verifies the replica's CRC32; a corrupt replica is skipped, the
// read served from the next-closest healthy one, and the corrupt copy
// overwritten in place (read-repair). It also returns the node served
// from, so callers can charge network cost.
func (d *DFS) ReadBlock(id BlockID, at topology.NodeID) ([]byte, topology.NodeID, error) {
	var candidates []topology.NodeID
	var known bool
	var length int64
	if err := d.meta.view(func(st *nameState) {
		bm, ok := st.blocks[id]
		if !ok {
			return
		}
		known = true
		length = bm.length
		for _, n := range bm.replicas {
			if st.alive[n] {
				candidates = append(candidates, n)
			}
		}
	}); err != nil {
		return nil, -1, err
	}
	if !known {
		return nil, -1, fmt.Errorf("%w: block %d", ErrNotFound, id)
	}
	if len(candidates) == 0 {
		return nil, -1, fmt.Errorf("%w: block %d", ErrBlockLost, id)
	}
	// Closest-first, ties by node id for determinism.
	sort.SliceStable(candidates, func(i, j int) bool {
		return d.localityOf(candidates[i], at) < d.localityOf(candidates[j], at)
	})

	d.mu.RLock()
	serve, _, corrupt := d.scanReplicasLocked(id, candidates)
	d.mu.RUnlock()
	if serve < 0 || len(corrupt) > 0 {
		// Slow path: repair corrupt replicas (or conclude the block is
		// unreadable) under the write lock, re-scanning since the world
		// may have changed between the locks.
		var err error
		if serve, err = d.repairLocked(id, candidates); err != nil {
			return nil, -1, err
		}
	}
	d.mu.RLock()
	data := d.nodes[serve].store[id]
	out := make([]byte, len(data))
	copy(out, data)
	d.mu.RUnlock()

	d.m.blocksRead.Inc()
	d.m.bytesRead.Add(length)
	switch d.localityOf(serve, at) {
	case topology.LocalNode:
		d.m.readsByLocality.With("local").Inc()
	case topology.LocalRack:
		d.m.readsByLocality.With("rack").Inc()
	default:
		d.m.readsByLocality.With("remote").Inc()
	}
	return out, serve, nil
}

func (d *DFS) localityOf(n, at topology.NodeID) topology.Locality {
	if at >= 0 && at < topology.NodeID(d.cfg.Topology.Size()) {
		return d.cfg.Topology.LocalityOf(n, at)
	}
	return topology.Remote
}

// scanReplicasLocked walks candidates closest-first and returns the
// first healthy replica, how many had the data stored at all, and which
// stored copies failed their checksum.
func (d *DFS) scanReplicasLocked(id BlockID, candidates []topology.NodeID) (serve topology.NodeID, stored int, corrupt []topology.NodeID) {
	serve = -1
	for _, n := range candidates {
		data, ok := d.nodes[n].store[id]
		if !ok {
			// Replica registered but data not landed yet (a planned copy
			// in flight); another candidate holds it.
			continue
		}
		stored++
		if crc32.ChecksumIEEE(data) != d.nodes[n].sums[id] {
			corrupt = append(corrupt, n)
			continue
		}
		if serve < 0 {
			serve = n
		}
	}
	return serve, stored, corrupt
}

// repairLocked re-scans under the write lock, overwrites corrupt
// replicas from the closest healthy one, and returns the serving node.
func (d *DFS) repairLocked(id BlockID, candidates []topology.NodeID) (topology.NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	serve, stored, corrupt := d.scanReplicasLocked(id, candidates)
	d.m.checksumFailures.Add(int64(len(corrupt)))
	if serve < 0 {
		if stored > 0 {
			return -1, fmt.Errorf("%w: block %d", ErrCorrupt, id)
		}
		return -1, fmt.Errorf("%w: block %d", ErrBlockLost, id)
	}
	healthy := d.nodes[serve].store[id]
	sum := d.nodes[serve].sums[id]
	for _, n := range corrupt {
		cp := make([]byte, len(healthy))
		copy(cp, healthy)
		d.nodes[n].store[id] = cp
		d.nodes[n].sums[id] = sum
		d.m.readRepairs.Inc()
	}
	return serve, nil
}

// CorruptBlock flips a data byte of the lowest-id block stored on node n
// without updating the recorded checksum — a silent bit-rot fault for
// chaos schedules; detection shows up as dfs_checksum_failures and the
// fix as dfs_read_repairs.
func (d *DFS) CorruptBlock(n topology.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(n) < 0 || int(n) >= len(d.nodes) {
		return ErrNodeUnknown
	}
	victim := BlockID(-1)
	for id, data := range d.nodes[n].store {
		if len(data) > 0 && (victim < 0 || id < victim) {
			victim = id
		}
	}
	if victim < 0 {
		return fmt.Errorf("dfs: node %d stores no blocks to corrupt", n)
	}
	d.nodes[n].store[victim][0] ^= 0xFF
	return nil
}

// Open returns a sequential reader over the whole file, served from
// replicas closest to `at` (pass -1 for no affinity).
func (d *DFS) Open(path string, at topology.NodeID) (io.Reader, error) {
	var ids []BlockID
	var ok bool
	if err := d.meta.view(func(st *nameState) {
		f, found := st.files[path]
		if !found {
			return
		}
		ok = true
		ids = make([]BlockID, len(f.blocks))
		copy(ids, f.blocks)
	}); err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return &reader{d: d, ids: ids, at: at}, nil
}

type reader struct {
	d   *DFS
	ids []BlockID
	at  topology.NodeID
	cur []byte
}

func (r *reader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if len(r.ids) == 0 {
			return 0, io.EOF
		}
		data, _, err := r.d.ReadBlock(r.ids[0], r.at)
		if err != nil {
			return 0, err
		}
		r.ids = r.ids[1:]
		r.cur = data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// KillNode marks a node dead: its replicas become unreadable until revival
// or re-replication.
func (d *DFS) KillNode(n topology.NodeID) error {
	return d.meta.setAlive(n, false)
}

// ReviveNode brings a dead node back with its stored replicas intact.
func (d *DFS) ReviveNode(n topology.NodeID) error {
	return d.meta.setAlive(n, true)
}

// UnderReplicated returns blocks whose live replica count is below their
// file's target, sorted by id.
func (d *DFS) UnderReplicated() []BlockID {
	var out []BlockID
	_ = d.meta.view(func(st *nameState) {
		out = st.underReplicated()
	})
	return out
}

// Rereplicate copies under-replicated blocks from a live replica to fresh
// live nodes until targets are met. It returns the number of new replicas
// created and the total bytes copied (for recovery-cost accounting).
func (d *DFS) Rereplicate() (newReplicas int, bytesCopied int64) {
	plan, err := d.meta.rereplicate()
	if err != nil {
		return 0, 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, mv := range plan {
		if !d.copyReplicaLocked(mv.id, mv.src, mv.dst) {
			continue
		}
		newReplicas++
		bytesCopied += mv.length
		d.m.replicasCreated.Inc()
		d.m.rereplicatedBytes.Add(mv.length)
	}
	return newReplicas, bytesCopied
}

// copyReplicaLocked lands block id on dst from a healthy source,
// preferring src. A corrupt preferred source falls back to any replica
// whose data still matches its checksum, so re-replication never
// propagates bit-rot.
func (d *DFS) copyReplicaLocked(id BlockID, src, dst topology.NodeID) bool {
	data, sum, ok := d.healthyDataLocked(id, src)
	if !ok {
		return false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.nodes[dst].store[id] = cp
	d.nodes[dst].sums[id] = sum
	return true
}

// healthyDataLocked finds a stored copy of id whose CRC matches,
// checking prefer first then every node.
func (d *DFS) healthyDataLocked(id BlockID, prefer topology.NodeID) ([]byte, uint32, bool) {
	check := func(n topology.NodeID) ([]byte, uint32, bool) {
		data, ok := d.nodes[n].store[id]
		if !ok {
			return nil, 0, false
		}
		sum := d.nodes[n].sums[id]
		if crc32.ChecksumIEEE(data) != sum {
			return nil, 0, false
		}
		return data, sum, true
	}
	if prefer >= 0 && int(prefer) < len(d.nodes) {
		if data, sum, ok := check(prefer); ok {
			return data, sum, true
		}
	}
	for i := range d.nodes {
		if data, sum, ok := check(topology.NodeID(i)); ok {
			return data, sum, true
		}
	}
	return nil, 0, false
}

// TotalStoredBytes returns the bytes held across all datanodes (replicas
// counted individually).
func (d *DFS) TotalStoredBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, dn := range d.nodes {
		for _, b := range dn.store {
			total += int64(len(b))
		}
	}
	return total
}
