// Package dfs is an in-memory, HDFS-like distributed file system: a
// namenode (namespace, block map, placement policy) over per-node block
// stores. Files are split into fixed-size blocks, each replicated with the
// standard rack-aware policy (first replica local, second off-rack, third
// on the second's rack). The dataflow engine schedules tasks against
// BlockLocations for locality, and the recovery experiments kill nodes and
// re-replicate.
//
// Data is held in memory because the experiments measure placement,
// locality and recovery behaviour — structural properties — rather than
// disk throughput; see DESIGN.md's substitution table.
package dfs

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Errors returned by namespace operations.
var (
	ErrExists       = errors.New("dfs: file already exists")
	ErrNotFound     = errors.New("dfs: file not found")
	ErrNoLiveNode   = errors.New("dfs: no live node available for placement")
	ErrBlockLost    = errors.New("dfs: all replicas of a block are dead")
	ErrNodeUnknown  = errors.New("dfs: unknown node")
	ErrWriterClosed = errors.New("dfs: writer is closed")
)

// BlockID identifies a block cluster-wide.
type BlockID int64

// Config configures a DFS instance.
type Config struct {
	// BlockSize is the split size in bytes. Defaults to 8 MiB.
	BlockSize int64
	// Replication is the default replica count. Defaults to 3, clamped to
	// the cluster size.
	Replication int
	// Topology describes the cluster; required.
	Topology *topology.Topology
	// Seed drives placement randomness.
	Seed uint64
}

// BlockInfo describes one block of a file: its identity, length and the
// nodes currently holding live replicas (closest-first ordering is the
// caller's job via Topology).
type BlockInfo struct {
	ID       BlockID
	Length   int64
	Replicas []topology.NodeID
}

// FileInfo summarizes a file.
type FileInfo struct {
	Path   string
	Size   int64
	Blocks int
}

type blockMeta struct {
	id       BlockID
	length   int64
	replicas []topology.NodeID
}

type fileMeta struct {
	path   string
	blocks []BlockID
	size   int64
	repl   int
}

type datanode struct {
	store map[BlockID][]byte
}

// dfsMetrics holds the optional instrumentation hooks. All fields are
// nil until Instrument is called; the nil-safe metric types make every
// update a single branch when disabled.
type dfsMetrics struct {
	blocksWritten     *metrics.Counter
	bytesWritten      *metrics.Counter
	blocksRead        *metrics.Counter
	bytesRead         *metrics.Counter
	readsByLocality   *metrics.CounterVec // label: locality = local|rack|remote
	replicasCreated   *metrics.Counter
	rereplicatedBytes *metrics.Counter
}

// DFS is the whole filesystem: namenode plus all datanodes. Safe for
// concurrent use.
type DFS struct {
	mu        sync.RWMutex
	cfg       Config
	files     map[string]*fileMeta
	blocks    map[BlockID]*blockMeta
	nodes     []*datanode
	alive     []bool
	nextBlock BlockID
	rand      *rng.RNG
	m         dfsMetrics
}

// Instrument attaches the filesystem's counters to reg: block/byte
// write and read volume, read locality (dfs_reads_by_locality, labeled
// local/rack/remote) and re-replication work. Call before serving
// traffic; a nil reg detaches.
func (d *DFS) Instrument(reg *metrics.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if reg == nil {
		d.m = dfsMetrics{}
		return
	}
	d.m = dfsMetrics{
		blocksWritten:     reg.Counter("dfs_blocks_written"),
		bytesWritten:      reg.Counter("dfs_bytes_written"),
		blocksRead:        reg.Counter("dfs_blocks_read"),
		bytesRead:         reg.Counter("dfs_bytes_read"),
		readsByLocality:   reg.CounterVec("dfs_reads_by_locality", "locality"),
		replicasCreated:   reg.Counter("dfs_replicas_created"),
		rereplicatedBytes: reg.Counter("dfs_rereplicated_bytes"),
	}
}

// New creates an empty filesystem over cfg.Topology.
func New(cfg Config) *DFS {
	if cfg.Topology == nil {
		panic("dfs: Config.Topology is required")
	}
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 8 << 20
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.Replication > cfg.Topology.Size() {
		cfg.Replication = cfg.Topology.Size()
	}
	d := &DFS{
		cfg:    cfg,
		files:  map[string]*fileMeta{},
		blocks: map[BlockID]*blockMeta{},
		nodes:  make([]*datanode, cfg.Topology.Size()),
		alive:  make([]bool, cfg.Topology.Size()),
		rand:   rng.New(cfg.Seed),
	}
	for i := range d.nodes {
		d.nodes[i] = &datanode{store: map[BlockID][]byte{}}
		d.alive[i] = true
	}
	return d
}

// BlockSize returns the configured split size.
func (d *DFS) BlockSize() int64 { return d.cfg.BlockSize }

// Create opens a new file for writing with the default replication and no
// placement hint.
func (d *DFS) Create(path string) (*Writer, error) {
	return d.CreateWith(path, d.cfg.Replication, topology.NodeID(-1))
}

// CreateWith opens a new file with an explicit replication factor and a
// placement hint: the writer's node, which receives the first replica of
// every block (the HDFS write-local rule). Pass hint -1 for no affinity.
func (d *DFS) CreateWith(path string, replication int, hint topology.NodeID) (*Writer, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.files[path]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, path)
	}
	if replication <= 0 {
		replication = d.cfg.Replication
	}
	if replication > len(d.nodes) {
		replication = len(d.nodes)
	}
	// Reserve the name so concurrent creators conflict deterministically.
	d.files[path] = &fileMeta{path: path, repl: replication}
	return &Writer{d: d, meta: d.files[path], hint: hint}, nil
}

// Writer streams data into a file, sealing a block every BlockSize bytes.
type Writer struct {
	d      *DFS
	meta   *fileMeta
	hint   topology.NodeID
	buf    []byte
	closed bool
}

// Write implements io.Writer.
func (w *Writer) Write(p []byte) (int, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	total := len(p)
	for len(p) > 0 {
		room := int(w.d.cfg.BlockSize) - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		if int64(len(w.buf)) == w.d.cfg.BlockSize {
			if err := w.seal(); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// seal commits the current buffer as a block.
func (w *Writer) seal() error {
	if len(w.buf) == 0 {
		return nil
	}
	data := w.buf
	w.buf = nil
	w.d.mu.Lock()
	defer w.d.mu.Unlock()
	id := w.d.nextBlock
	w.d.nextBlock++
	replicas, err := w.d.placeLocked(w.meta.repl, w.hint)
	if err != nil {
		return err
	}
	bm := &blockMeta{id: id, length: int64(len(data)), replicas: replicas}
	w.d.blocks[id] = bm
	for _, n := range replicas {
		stored := make([]byte, len(data))
		copy(stored, data)
		w.d.nodes[n].store[id] = stored
	}
	w.meta.blocks = append(w.meta.blocks, id)
	w.meta.size += int64(len(data))
	w.d.m.blocksWritten.Inc()
	w.d.m.bytesWritten.Add(int64(len(data)))
	return nil
}

// Close seals the final partial block and commits the file.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	return w.seal()
}

// placeLocked chooses repl distinct live nodes using the rack-aware policy.
func (d *DFS) placeLocked(repl int, hint topology.NodeID) ([]topology.NodeID, error) {
	top := d.cfg.Topology
	var chosen []topology.NodeID
	used := map[topology.NodeID]bool{}
	pick := func(ok func(topology.NodeID) bool) bool {
		// Random start, linear probe: deterministic given the seed.
		start := d.rand.Intn(top.Size())
		for i := 0; i < top.Size(); i++ {
			n := topology.NodeID((start + i) % top.Size())
			if d.alive[n] && !used[n] && (ok == nil || ok(n)) {
				chosen = append(chosen, n)
				used[n] = true
				return true
			}
		}
		return false
	}

	// First replica: the writer's node when live, else anywhere.
	if hint >= 0 && int(hint) < top.Size() && d.alive[hint] {
		chosen = append(chosen, hint)
		used[hint] = true
	} else if !pick(nil) {
		return nil, ErrNoLiveNode
	}
	// Second replica: a different rack when possible.
	if len(chosen) < repl {
		firstRack := top.RackOf(chosen[0])
		if !pick(func(n topology.NodeID) bool { return top.RackOf(n) != firstRack }) {
			if !pick(nil) {
				return chosen, nil // degraded: fewer replicas than asked
			}
		}
	}
	// Third replica: same rack as the second.
	if len(chosen) < repl {
		secondRack := top.RackOf(chosen[1])
		if !pick(func(n topology.NodeID) bool { return top.RackOf(n) == secondRack }) {
			pick(nil)
		}
	}
	// Any further replicas: anywhere.
	for len(chosen) < repl {
		if !pick(nil) {
			break
		}
	}
	return chosen, nil
}

// Stat returns file metadata.
func (d *DFS) Stat(path string) (FileInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[path]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return FileInfo{Path: f.path, Size: f.size, Blocks: len(f.blocks)}, nil
}

// List returns the paths with the given prefix, sorted.
func (d *DFS) List(prefix string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []string
	for p := range d.files {
		if len(p) >= len(prefix) && p[:len(prefix)] == prefix {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes a file and frees replicas whose blocks belong to no file.
func (d *DFS) Delete(path string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	f, ok := d.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(d.files, path)
	for _, id := range f.blocks {
		bm := d.blocks[id]
		if bm == nil {
			continue
		}
		for _, n := range bm.replicas {
			delete(d.nodes[n].store, id)
		}
		delete(d.blocks, id)
	}
	return nil
}

// BlockLocations returns the live replica placement of every block of path,
// in file order.
func (d *DFS) BlockLocations(path string) ([]BlockInfo, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	f, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]BlockInfo, 0, len(f.blocks))
	for _, id := range f.blocks {
		bm := d.blocks[id]
		var live []topology.NodeID
		for _, n := range bm.replicas {
			if d.alive[n] {
				live = append(live, n)
			}
		}
		out = append(out, BlockInfo{ID: id, Length: bm.length, Replicas: live})
	}
	return out, nil
}

// ReadBlock returns a copy of block id from any live replica, preferring
// one close to `at` (node-local, then rack-local, then remote). It also
// returns the node served from, so callers can charge network cost.
func (d *DFS) ReadBlock(id BlockID, at topology.NodeID) ([]byte, topology.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	bm, ok := d.blocks[id]
	if !ok {
		return nil, -1, fmt.Errorf("%w: block %d", ErrNotFound, id)
	}
	best := topology.NodeID(-1)
	bestLoc := topology.Remote + 1
	for _, n := range bm.replicas {
		if !d.alive[n] {
			continue
		}
		loc := topology.Remote
		if at >= 0 && at < topology.NodeID(d.cfg.Topology.Size()) {
			loc = d.cfg.Topology.LocalityOf(n, at)
		}
		if loc < bestLoc {
			bestLoc = loc
			best = n
		}
	}
	if best < 0 {
		return nil, -1, fmt.Errorf("%w: block %d", ErrBlockLost, id)
	}
	d.m.blocksRead.Inc()
	d.m.bytesRead.Add(bm.length)
	switch bestLoc {
	case topology.LocalNode:
		d.m.readsByLocality.With("local").Inc()
	case topology.LocalRack:
		d.m.readsByLocality.With("rack").Inc()
	default:
		d.m.readsByLocality.With("remote").Inc()
	}
	data := d.nodes[best].store[id]
	out := make([]byte, len(data))
	copy(out, data)
	return out, best, nil
}

// Open returns a sequential reader over the whole file, served from
// replicas closest to `at` (pass -1 for no affinity).
func (d *DFS) Open(path string, at topology.NodeID) (io.Reader, error) {
	d.mu.RLock()
	f, ok := d.files[path]
	if !ok {
		d.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	ids := make([]BlockID, len(f.blocks))
	copy(ids, f.blocks)
	d.mu.RUnlock()
	return &reader{d: d, ids: ids, at: at}, nil
}

type reader struct {
	d   *DFS
	ids []BlockID
	at  topology.NodeID
	cur []byte
}

func (r *reader) Read(p []byte) (int, error) {
	for len(r.cur) == 0 {
		if len(r.ids) == 0 {
			return 0, io.EOF
		}
		data, _, err := r.d.ReadBlock(r.ids[0], r.at)
		if err != nil {
			return 0, err
		}
		r.ids = r.ids[1:]
		r.cur = data
	}
	n := copy(p, r.cur)
	r.cur = r.cur[n:]
	return n, nil
}

// KillNode marks a node dead: its replicas become unreadable until revival
// or re-replication.
func (d *DFS) KillNode(n topology.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(n) < 0 || int(n) >= len(d.alive) {
		return ErrNodeUnknown
	}
	d.alive[n] = false
	return nil
}

// ReviveNode brings a dead node back with its stored replicas intact.
func (d *DFS) ReviveNode(n topology.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(n) < 0 || int(n) >= len(d.alive) {
		return ErrNodeUnknown
	}
	d.alive[n] = true
	return nil
}

// UnderReplicated returns blocks whose live replica count is below their
// file's target, sorted by id.
func (d *DFS) UnderReplicated() []BlockID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	target := map[BlockID]int{}
	for _, f := range d.files {
		for _, id := range f.blocks {
			target[id] = f.repl
		}
	}
	var out []BlockID
	for id, bm := range d.blocks {
		live := 0
		for _, n := range bm.replicas {
			if d.alive[n] {
				live++
			}
		}
		if live < target[id] && live > 0 {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Rereplicate copies under-replicated blocks from a live replica to fresh
// live nodes until targets are met. It returns the number of new replicas
// created and the total bytes copied (for recovery-cost accounting).
func (d *DFS) Rereplicate() (newReplicas int, bytesCopied int64) {
	ids := d.UnderReplicated()
	d.mu.Lock()
	defer d.mu.Unlock()
	target := map[BlockID]int{}
	for _, f := range d.files {
		for _, id := range f.blocks {
			target[id] = f.repl
		}
	}
	for _, id := range ids {
		bm := d.blocks[id]
		if bm == nil {
			continue
		}
		var src topology.NodeID = -1
		liveSet := map[topology.NodeID]bool{}
		var liveReplicas []topology.NodeID
		for _, n := range bm.replicas {
			if d.alive[n] {
				liveSet[n] = true
				liveReplicas = append(liveReplicas, n)
				src = n
			}
		}
		if src < 0 {
			continue // lost block; nothing to copy from
		}
		for len(liveReplicas) < target[id] {
			// Place one more replica, avoiding nodes already holding one.
			start := d.rand.Intn(len(d.nodes))
			placed := false
			for i := 0; i < len(d.nodes); i++ {
				n := topology.NodeID((start + i) % len(d.nodes))
				if !d.alive[n] || liveSet[n] {
					continue
				}
				data := d.nodes[src].store[id]
				cp := make([]byte, len(data))
				copy(cp, data)
				d.nodes[n].store[id] = cp
				bm.replicas = append(bm.replicas, n)
				liveSet[n] = true
				liveReplicas = append(liveReplicas, n)
				newReplicas++
				bytesCopied += bm.length
				d.m.replicasCreated.Inc()
				d.m.rereplicatedBytes.Add(bm.length)
				placed = true
				break
			}
			if !placed {
				break
			}
		}
	}
	return newReplicas, bytesCopied
}

// TotalStoredBytes returns the bytes held across all datanodes (replicas
// counted individually).
func (d *DFS) TotalStoredBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for _, dn := range d.nodes {
		for _, b := range dn.store {
			total += int64(len(b))
		}
	}
	return total
}
