package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/topology"
)

// TestReadsRaceKillAndRereplication hammers concurrent reads while nodes
// are killed, blocks re-replicated, and nodes revived. Run under -race.
// Every read must either return the correct bytes or fail with
// ErrBlockLost — never corrupt data, never deadlock.
func TestReadsRaceKillAndRereplication(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	d := New(Config{BlockSize: 1 << 10, Replication: 2, Topology: top, Seed: 7})

	payload := bytes.Repeat([]byte("0123456789abcdef"), 1<<10) // 16 KiB, 16 blocks
	const files = 4
	for i := 0; i < files; i++ {
		w, err := d.Create(fmt.Sprintf("/race/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers: loop over every file from every node until told to stop.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := fmt.Sprintf("/race/f%d", i%files)
				at := topology.NodeID((i + r) % top.Size())
				rd, err := d.Open(path, at)
				if err != nil {
					t.Errorf("Open(%s): %v", path, err)
					return
				}
				got, err := io.ReadAll(rd)
				if err != nil {
					if errors.Is(err, ErrBlockLost) {
						continue // acceptable while both replicas are down
					}
					t.Errorf("Read(%s): %v", path, err)
					return
				}
				if !bytes.Equal(got, payload) {
					t.Errorf("Read(%s): corrupt data (%d bytes)", path, len(got))
					return
				}
			}
		}(r)
	}

	// Chaos loop: kill a rotating node, re-replicate, revive, repeat.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for round := 0; round < 40; round++ {
			victim := topology.NodeID(round % top.Size())
			if err := d.KillNode(victim); err != nil {
				t.Errorf("KillNode(%d): %v", victim, err)
				return
			}
			d.Rereplicate()
			if err := d.ReviveNode(victim); err != nil {
				t.Errorf("ReviveNode(%d): %v", victim, err)
				return
			}
		}
	}()

	wg.Wait()

	// After the dust settles every file must read back whole.
	for i := 0; i < files; i++ {
		rd, err := d.Open(fmt.Sprintf("/race/f%d", i), -1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(rd)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("file %d corrupt after chaos", i)
		}
	}
}
