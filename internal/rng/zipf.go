package rng

import "math"

// Zipf samples integers in [0, n) with probability proportional to
// 1/(k+1)^s. s = 0 degenerates to uniform. The implementation precomputes
// the CDF and samples by binary search, which is simple, exact and fast for
// the n ≤ ~10^7 key spaces used by the workload generators.
type Zipf struct {
	r   *RNG
	cdf []float64
	n   int
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0.
// It panics if n <= 0 or s < 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("rng: NewZipf with negative exponent")
	}
	z := &Zipf{r: r, n: n, cdf: make([]float64, n)}
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		z.cdf[k] = sum
	}
	inv := 1 / sum
	for k := range z.cdf {
		z.cdf[k] *= inv
	}
	z.cdf[n-1] = 1 // guard against rounding
	return z
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the size of the sampled domain.
func (z *Zipf) N() int { return z.n }
