// Package rng provides deterministic, splittable pseudo-random number
// generation and the samplers (Zipf, exponential, normal, Pareto) used by
// every workload generator and simulator in the framework.
//
// All randomness in the repository flows from a single seed through this
// package so that every experiment table is reproducible run-to-run. The
// core generator is SplitMix64 feeding a xoshiro256** state, which is fast,
// passes BigCrush, and — unlike math/rand's global source — can be split
// into independent child streams for parallel workers without locking.
package rng

import "math"

// RNG is a deterministic pseudo-random generator (xoshiro256**). It is not
// safe for concurrent use; use Split to derive independent streams for
// concurrent goroutines.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output. It is
// used for seeding so that nearby seeds yield decorrelated states.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Two generators created with the
// same seed produce identical sequences.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's internal state for serialization; restore
// it with SetState to resume the exact sequence. Replicated state machines
// use this so a snapshot captures in-flight placement randomness.
func (r *RNG) State() [4]uint64 { return r.s }

// SetState restores a state previously returned by State.
func (r *RNG) SetState(s [4]uint64) { r.s = s }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The parent advances, so
// successive Splits yield distinct streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1). Scale by dividing by the desired rate.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// NormFloat64 returns a standard normally distributed float64 using the
// Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Pareto returns a Pareto(xm, alpha) sample; used for heavy-tailed job and
// flow size distributions.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}
