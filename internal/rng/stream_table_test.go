package rng

import (
	"reflect"
	"testing"
)

// Table-driven stream-determinism tests: every seeded generator is a
// pure function of its seed, and derived (Split) streams are both
// reproducible and distinct from their parents. The whole repro story —
// chaos replay, workload generation, capture harnesses — leans on these
// properties.

func drawAll(r *RNG, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestStreamDeterminismTable(t *testing.T) {
	cases := []struct {
		name string
		seed uint64
	}{
		{"zero-seed", 0}, // must not collapse to the all-zero state
		{"one", 1},
		{"adjacent", 2}, // adjacent seeds must still diverge (splitmix init)
		{"golden-ratio", 0x9e3779b97f4a7c15},
		{"all-ones", ^uint64(0)},
	}
	seen := map[uint64]string{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := drawAll(New(tc.seed), 64)
			b := drawAll(New(tc.seed), 64)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different streams")
			}
			// No all-zero degenerate stream.
			var or uint64
			for _, v := range a {
				or |= v
			}
			if or == 0 {
				t.Fatal("stream is all zeros")
			}
			// First draw must be unique across the seed table.
			if prev, dup := seen[a[0]]; dup {
				t.Fatalf("seeds %s and %s share a first draw", prev, tc.name)
			}
			seen[a[0]] = tc.name
		})
	}
}

func TestSplitStreamsTable(t *testing.T) {
	for _, seed := range []uint64{0, 7, 42, 1 << 40} {
		p1, p2 := New(seed), New(seed)
		c1, c2 := p1.Split(), p2.Split()
		// Children of identical parents are identical.
		if a, b := drawAll(c1, 32), drawAll(c2, 32); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: split is not deterministic", seed)
		}
		// A child diverges from its (advanced) parent, and successive
		// splits from one parent diverge from each other.
		c3 := p1.Split()
		a, b, c := drawAll(New(seed), 32), drawAll(New(seed).Split(), 32), drawAll(c3, 32)
		if reflect.DeepEqual(a, b) || reflect.DeepEqual(b, c) {
			t.Fatalf("seed %d: split streams did not diverge", seed)
		}
	}
}

// Every derived draw kind must be reproducible and respect its range —
// one table covering the full RNG surface.
func TestDerivedDrawsTable(t *testing.T) {
	type draw func(*RNG) any
	cases := []struct {
		name  string
		draw  draw
		check func(t *testing.T, v any)
	}{
		{"Intn", func(r *RNG) any { return r.Intn(17) }, func(t *testing.T, v any) {
			if n := v.(int); n < 0 || n >= 17 {
				t.Fatalf("Intn out of range: %d", n)
			}
		}},
		{"Int63n", func(r *RNG) any { return r.Int63n(1 << 40) }, func(t *testing.T, v any) {
			if n := v.(int64); n < 0 || n >= 1<<40 {
				t.Fatalf("Int63n out of range: %d", n)
			}
		}},
		{"Int63", func(r *RNG) any { return r.Int63() }, func(t *testing.T, v any) {
			if n := v.(int64); n < 0 {
				t.Fatalf("Int63 negative: %d", n)
			}
		}},
		{"Float64", func(r *RNG) any { return r.Float64() }, func(t *testing.T, v any) {
			if f := v.(float64); f < 0 || f >= 1 {
				t.Fatalf("Float64 out of range: %v", f)
			}
		}},
		{"ExpFloat64", func(r *RNG) any { return r.ExpFloat64() }, func(t *testing.T, v any) {
			if f := v.(float64); f < 0 {
				t.Fatalf("ExpFloat64 negative: %v", f)
			}
		}},
		{"NormFloat64", func(r *RNG) any { return r.NormFloat64() }, nil},
		{"Pareto", func(r *RNG) any { return r.Pareto(1, 1.5) }, func(t *testing.T, v any) {
			if f := v.(float64); f < 1 {
				t.Fatalf("Pareto below xm: %v", f)
			}
		}},
		{"Perm", func(r *RNG) any { return r.Perm(9) }, func(t *testing.T, v any) {
			seen := map[int]bool{}
			for _, i := range v.([]int) {
				if i < 0 || i >= 9 || seen[i] {
					t.Fatalf("Perm not a permutation: %v", v)
				}
				seen[i] = true
			}
		}},
		{"Bytes", func(r *RNG) any { b := make([]byte, 13); r.Bytes(b); return b }, nil},
		{"Zipf", func(r *RNG) any { return NewZipf(r, 100, 0.99).Next() }, func(t *testing.T, v any) {
			if n := v.(int); n < 0 || n >= 100 {
				t.Fatalf("Zipf out of range: %d", n)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r1, r2 := New(1234), New(1234)
			for i := 0; i < 50; i++ {
				v1, v2 := tc.draw(r1), tc.draw(r2)
				if !reflect.DeepEqual(v1, v2) {
					t.Fatalf("draw %d diverged: %v vs %v", i, v1, v2)
				}
				if tc.check != nil {
					tc.check(t, v1)
				}
			}
		})
	}
}

// The guard rails: invalid arguments must panic rather than silently
// produce a biased stream.
func TestPanicTable(t *testing.T) {
	cases := []struct {
		name string
		call func()
	}{
		{"Intn-zero", func() { New(1).Intn(0) }},
		{"Intn-negative", func() { New(1).Intn(-3) }},
		{"Int63n-zero", func() { New(1).Int63n(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			tc.call()
		})
	}
}
