package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("seed 0 produced only %d distinct values in 64 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first output")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBytesDeterministicAndFull(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	New(9).Bytes(a)
	New(9).Bytes(b)
	if string(a) != string(b) {
		t.Fatal("Bytes not deterministic")
	}
	zero := 0
	for _, c := range a {
		if c == 0 {
			zero++
		}
	}
	if zero > 10 {
		t.Fatalf("suspiciously many zero bytes: %d/37", zero)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2.5, 1.2); v < 2.5 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(23)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	n := 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		frac := float64(c) / float64(n)
		if math.Abs(frac-0.1) > 0.01 {
			t.Fatalf("s=0 bucket %d frequency %v, want ~0.1", k, frac)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 1000, 0.99)
	counts := make([]int, 1000)
	n := 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate and frequencies must decay with rank.
	if counts[0] < counts[10] || counts[10] < counts[100] {
		t.Fatalf("Zipf frequencies do not decay: c0=%d c10=%d c100=%d",
			counts[0], counts[10], counts[100])
	}
	frac0 := float64(counts[0]) / float64(n)
	if frac0 < 0.05 {
		t.Fatalf("Zipf(0.99, n=1000) head frequency %v too small", frac0)
	}
}

func TestZipfRange(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipf(New(seed), 57, 1.1)
		for i := 0; i < 500; i++ {
			v := z.Next()
			if v < 0 || v >= 57 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	z := NewZipf(New(1), 1<<20, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
