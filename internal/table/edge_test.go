package table

// Edge cases the query planner exercises: empty partitions, one-sided
// and all-duplicate joins, parts=1 plans, OrderBy with fewer sampled
// keys than partitions, broadcast joins, Head and Renamed.

import (
	"testing"

	"repro/internal/metrics"
)

func TestEmptyTableOps(t *testing.T) {
	eng := testEngine()
	empty := mustTable(t, eng, salesSchema(), nil, 4)
	n, err := empty.Count()
	if err != nil || n != 0 {
		t.Fatalf("count = %d, %v", n, err)
	}
	sorted, err := empty.OrderBy("price", false, 4)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sorted.Collect()
	if err != nil || len(rows) != 0 {
		t.Fatalf("sorted empty = %d rows, %v", len(rows), err)
	}
	agg, err := empty.GroupBy("region").Agg(2, Agg{Op: Count})
	if err != nil {
		t.Fatal(err)
	}
	rows, err = agg.Collect()
	if err != nil || len(rows) != 0 {
		t.Fatalf("agg over empty = %d rows, %v", len(rows), err)
	}
}

func TestPartsOne(t *testing.T) {
	eng := testEngine()
	rows := salesRows(60, 21)
	tb, err := FromSlice(eng, salesSchema(), rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Partitions() != 1 {
		t.Fatalf("partitions = %d", tb.Partitions())
	}
	res, err := tb.GroupBy("region").Agg(1, Agg{Op: Sum, Col: "units"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Collect()
	if err != nil || len(got) == 0 {
		t.Fatalf("agg with parts=1: %d rows, %v", len(got), err)
	}
	sorted, err := tb.OrderBy("units", false, 1)
	if err != nil {
		t.Fatal(err)
	}
	srows, err := sorted.Collect()
	if err != nil || len(srows) != 60 {
		t.Fatalf("sort with parts=1: %d rows, %v", len(srows), err)
	}
}

func TestJoinEmptySides(t *testing.T) {
	eng := testEngine()
	schema := Schema{Cols: []Col{{Name: "k", Type: Int64}, {Name: "v", Type: String}}}
	full := mustTable(t, eng, schema, []Row{{int64(1), "a"}, {int64(2), "b"}}, 2)
	empty := mustTable(t, eng, schema, nil, 2)
	for name, pair := range map[string][2]*Table{
		"left-empty":  {empty, full},
		"right-empty": {full, empty},
		"both-empty":  {empty, empty},
	} {
		j, err := pair[0].HashJoin(pair[1], "k", "k", 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := j.Collect()
		if err != nil || len(rows) != 0 {
			t.Fatalf("%s: %d rows, %v", name, len(rows), err)
		}
		b, err := pair[0].BroadcastJoin(pair[1], "k", "k")
		if err != nil {
			t.Fatalf("%s broadcast: %v", name, err)
		}
		rows, err = b.Collect()
		if err != nil || len(rows) != 0 {
			t.Fatalf("%s broadcast: %d rows, %v", name, len(rows), err)
		}
	}
}

func TestJoinAllDuplicateKeys(t *testing.T) {
	eng := testEngine()
	schema := Schema{Cols: []Col{{Name: "k", Type: Int64}, {Name: "v", Type: Int64}}}
	var lrows, rrows []Row
	for i := 0; i < 20; i++ {
		lrows = append(lrows, Row{int64(7), int64(i)})
	}
	for i := 0; i < 15; i++ {
		rrows = append(rrows, Row{int64(7), int64(100 + i)})
	}
	left := mustTable(t, eng, schema, lrows, 3)
	right := mustTable(t, eng, schema, rrows, 3)
	for name, join := range map[string]func() (*Table, error){
		"hash":      func() (*Table, error) { return left.HashJoin(right, "k", "k", 4) },
		"broadcast": func() (*Table, error) { return left.BroadcastJoin(right, "k", "k") },
	} {
		j, err := join()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rows, err := j.Collect()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) != 20*15 {
			t.Fatalf("%s: cross product = %d rows, want 300", name, len(rows))
		}
	}
}

func TestBroadcastJoinMatchesHashJoin(t *testing.T) {
	eng := testEngine()
	sales := mustTable(t, eng, salesSchema(), salesRows(200, 31), 4)
	dims, _ := FromSlice(eng, Schema{Cols: []Col{
		{Name: "region", Type: String}, {Name: "manager", Type: String},
	}}, []Row{{"emea", "ada"}, {"apac", "grace"}}, 1) // amer intentionally missing
	h, err := sales.HashJoin(dims, "region", "region", 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sales.BroadcastJoin(dims, "region", "region")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := b.Schema().Names(), h.Schema().Names(); len(got) != len(want) {
		t.Fatalf("schemas differ: %v vs %v", got, want)
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("schemas differ: %v vs %v", got, want)
			}
		}
	}
	hr, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	br, err := b.Collect()
	if err != nil {
		t.Fatal(err)
	}
	count := func(rows []Row) map[string]int {
		m := map[string]int{}
		for _, r := range rows {
			m[string(encodeRow(h.Schema(), r))]++
		}
		return m
	}
	hm, bm := count(hr), count(br)
	if len(hm) != len(bm) {
		t.Fatalf("distinct rows %d vs %d", len(hm), len(bm))
	}
	for k, n := range hm {
		if bm[k] != n {
			t.Fatalf("multiset mismatch on %q: %d vs %d", k, n, bm[k])
		}
	}
	if eng.Reg.Counter("broadcast_bytes").Value() == 0 {
		t.Fatal("broadcast join charged no broadcast bytes")
	}
}

func TestOrderByFewerSamplesThanParts(t *testing.T) {
	eng := testEngine()
	// 3 rows, 8 requested partitions: sampled split points < parts.
	rows := []Row{
		{"emea", "widget", int64(3), 1.0},
		{"apac", "widget", int64(1), 2.0},
		{"amer", "widget", int64(2), 3.0},
	}
	tb := mustTable(t, eng, salesSchema(), rows, 2)
	sorted, err := tb.OrderBy("units", false, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("sorted %d rows", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1][2].(int64) > got[i][2].(int64) {
			t.Fatal("order broken")
		}
	}
}

func TestOrderByColsTiebreak(t *testing.T) {
	eng := testEngine()
	rows := []Row{
		{"emea", "b", int64(1), 1.0},
		{"emea", "a", int64(1), 1.0},
		{"apac", "c", int64(1), 2.0},
		{"apac", "a", int64(2), 2.0},
	}
	tb := mustTable(t, eng, salesSchema(), rows, 2)
	sorted, err := tb.OrderByCols([]string{"units", "product"}, []bool{true, false}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sorted.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("%d rows", len(got))
	}
	// units desc first, then product asc within ties.
	if got[0][2].(int64) != 2 {
		t.Fatalf("primary desc broken: %v", got)
	}
	if got[1][1].(string) != "a" || got[2][1].(string) != "b" || got[3][1].(string) != "c" {
		t.Fatalf("tiebreak broken: %v", got)
	}
	if _, err := tb.OrderByCols(nil, nil, 2); err == nil {
		t.Fatal("empty column list accepted")
	}
	if _, err := tb.OrderByCols([]string{"units"}, []bool{true, false}, 2); err == nil {
		t.Fatal("desc length mismatch accepted")
	}
}

func TestHeadAndRenamed(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(100, 41), 4)
	h, err := tb.Head(5)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := h.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) > 4*5 {
		t.Fatalf("head kept %d rows across 4 partitions", len(rows))
	}
	if _, err := tb.Head(-1); err == nil {
		t.Fatal("negative head accepted")
	}
	rn, err := tb.Renamed(map[string]string{"units": "qty"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Schema().Index("qty") != 2 || rn.Schema().Index("units") != -1 {
		t.Fatalf("rename schema = %v", rn.Schema().Names())
	}
	if _, err := tb.Renamed(map[string]string{"nope": "x"}); err == nil {
		t.Fatal("rename of unknown column accepted")
	}
	if _, err := tb.Renamed(map[string]string{"units": "region"}); err == nil {
		t.Fatal("rename collision accepted")
	}
}

func TestColumnarScanPushdown(t *testing.T) {
	eng := testEngine()
	rows := salesRows(400, 51)
	ct, err := BuildColumnar(salesSchema(), rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ct.RowCount() != 400 || ct.Partitions() != 4 || ct.EncodedBytes() == 0 {
		t.Fatalf("columnar shape: rows=%d parts=%d bytes=%d", ct.RowCount(), ct.Partitions(), ct.EncodedBytes())
	}

	// Full scan: everything decodes.
	full := metrics.NewRegistry()
	all, err := ct.Scan(eng, nil, nil, full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := all.Collect()
	if err != nil || len(got) != 400 {
		t.Fatalf("full scan = %d rows, %v", len(got), err)
	}
	if full.Counter(CtrBytesSkipped).Value() != 0 {
		t.Fatalf("full scan skipped %d bytes", full.Counter(CtrBytesSkipped).Value())
	}

	// Pushed predicate + projection: units >= 5, only region out.
	reg := metrics.NewRegistry()
	pred := ColPredicate{
		Col:  2,
		Keep: func(v any) bool { return v.(int64) >= 5 },
		SkipAll: func(min, max any) bool {
			return max.(int64) < 5
		},
	}
	scan, err := ct.Scan(eng, []ColPredicate{pred}, []int{0}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if names := scan.Schema().Names(); len(names) != 1 || names[0] != "region" {
		t.Fatalf("scan schema = %v", names)
	}
	prows, err := scan.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range rows {
		if r[2].(int64) >= 5 {
			want++
		}
	}
	if len(prows) != want {
		t.Fatalf("pushdown kept %d rows, want %d", len(prows), want)
	}
	if reg.Counter(CtrRowsOut).Value() != int64(want) {
		t.Fatalf("rows_out counter = %d, want %d", reg.Counter(CtrRowsOut).Value(), want)
	}
	// product and price chunks must never decode.
	if reg.Counter(CtrBytesSkipped).Value() == 0 {
		t.Fatal("projection pushdown skipped no bytes")
	}
	if reg.Counter(CtrBytesDecoded).Value() >= full.Counter(CtrBytesDecoded).Value() {
		t.Fatalf("pushdown decoded %d bytes, full scan %d",
			reg.Counter(CtrBytesDecoded).Value(), full.Counter(CtrBytesDecoded).Value())
	}
}

func TestColumnarZonePruning(t *testing.T) {
	eng := testEngine()
	schema := Schema{Cols: []Col{{Name: "ts", Type: Int64}, {Name: "v", Type: String}}}
	// Sorted timestamps: round-robin partitioning still leaves each
	// partition covering the full range, so build contiguous partitions
	// by hand via sorted input and parts=4 stripes of a sorted sequence
	// interleaved — instead use blocks: rows 0..99 have ts in [0,99], etc.
	var rows []Row
	for i := 0; i < 400; i++ {
		rows = append(rows, Row{int64(i % 4 * 1000), "x"}) // part p gets ts=p*1000
	}
	ct, err := BuildColumnar(schema, rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	pred := ColPredicate{
		Col:     0,
		Keep:    func(v any) bool { return v.(int64) >= 3000 },
		SkipAll: func(min, max any) bool { return max.(int64) < 3000 },
	}
	scan, err := ct.Scan(eng, []ColPredicate{pred}, []int{0, 1}, reg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := scan.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("kept %d rows, want 100", len(got))
	}
	if reg.Counter(CtrRowsPruned).Value() != 300 {
		t.Fatalf("pruned %d rows, want 300", reg.Counter(CtrRowsPruned).Value())
	}
	if reg.Counter(CtrRowsScanned).Value() != 100 {
		t.Fatalf("scanned %d rows, want 100", reg.Counter(CtrRowsScanned).Value())
	}
}

func TestColumnarEmptyAndBadArgs(t *testing.T) {
	eng := testEngine()
	ct, err := BuildColumnar(salesSchema(), nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	scan, err := ct.Scan(eng, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := scan.Collect()
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty columnar scan = %d rows, %v", len(rows), err)
	}
	if _, err := BuildColumnar(Schema{}, nil, 2); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := BuildColumnar(salesSchema(), []Row{{int64(1)}}, 2); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := ct.Scan(eng, nil, []int{99}, nil); err == nil {
		t.Fatal("out-of-range needed column accepted")
	}
	if _, err := ct.Scan(eng, []ColPredicate{{Col: 99, Keep: func(any) bool { return true }}}, nil, nil); err == nil {
		t.Fatal("out-of-range predicate column accepted")
	}
	if _, err := ct.Scan(eng, []ColPredicate{{Col: 0}}, nil, nil); err == nil {
		t.Fatal("nil Keep accepted")
	}
}
