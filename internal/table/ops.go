package table

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shuffle"
)

// BroadcastJoin inner-joins t with right on t.leftCol == right.rightCol
// without shuffling t: the right side is collected at the driver, built
// into a hash map, broadcast to every executor (charging the fabric for
// the transfer), and each left partition probes it map-side. The output
// schema matches HashJoin: t's columns then right's, with "right_"
// prefixes on collisions. Correct only when the right side fits in
// memory — the query optimizer picks it when table statistics say a
// dimension is small.
func (t *Table) BroadcastJoin(right *Table, leftCol, rightCol string) (*Table, error) {
	li, err := t.schema.MustIndex(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.schema.MustIndex(rightCol)
	if err != nil {
		return nil, err
	}
	if t.schema.Cols[li].Type != right.schema.Cols[ri].Type {
		return nil, fmt.Errorf("table: join column types differ: %v vs %v",
			t.schema.Cols[li].Type, right.schema.Cols[ri].Type)
	}
	outCols := append([]Col(nil), t.schema.Cols...)
	for _, c := range right.schema.Cols {
		name := c.Name
		if (Schema{Cols: outCols}).Index(name) >= 0 {
			name = "right_" + name
		}
		outCols = append(outCols, Col{Name: name, Type: c.Type})
	}

	buildRows, err := right.Collect()
	if err != nil {
		return nil, err
	}
	keyType := t.schema.Cols[li].Type
	build := make(map[string][]Row, len(buildRows))
	var size int64
	for _, r := range buildRows {
		k := string(equalityKey(keyType, r[ri]))
		build[k] = append(build[k], r)
		size += int64(len(encodeRow(right.schema, r)))
	}
	bcast := t.eng.Broadcast(build, size)

	plan := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		m := bcast.Value().(map[string][]Row)
		var out []core.Row
		for _, r := range rows {
			lrow := r.(Row)
			for _, rrow := range m[string(equalityKey(keyType, lrow[li]))] {
				joined := make(Row, 0, len(lrow)+len(rrow))
				joined = append(joined, lrow...)
				joined = append(joined, rrow...)
				out = append(out, joined)
			}
		}
		return out
	})
	return &Table{eng: t.eng, plan: plan, schema: Schema{Cols: outCols}}, nil
}

// OrderByCols globally sorts by the named columns in order: cols[0] is
// the primary key, later columns break ties. desc is per column (nil =
// all ascending). Concatenating the result's partitions in order yields
// the sorted relation. Because a full column list gives a total order
// over distinct rows, OrderByCols with every column listed is
// deterministic — the form the query layer uses under LIMIT.
func (t *Table) OrderByCols(cols []string, desc []bool, parts int) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("table: OrderByCols needs at least one column")
	}
	if desc == nil {
		desc = make([]bool, len(cols))
	}
	if len(desc) != len(cols) {
		return nil, fmt.Errorf("table: OrderByCols got %d desc flags for %d columns", len(desc), len(cols))
	}
	idx := make([]int, len(cols))
	for i, c := range cols {
		j, err := t.schema.MustIndex(c)
		if err != nil {
			return nil, err
		}
		idx[i] = j
	}
	if parts <= 0 {
		parts = t.Partitions()
	}
	schema := t.schema
	keyOf := func(r Row) []byte {
		var out []byte
		for k, j := range idx {
			out = append(out, sortableKey(schema.Cols[j].Type, r[j], desc[k])...)
		}
		return out
	}

	// Sampling job for range split points.
	sample := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		stride := len(rows)/32 + 1
		var out []core.Row
		for i := 0; i < len(rows); i += stride {
			out = append(out, keyOf(rows[i].(Row)))
		}
		return out
	})
	raw, err := t.eng.Collect(sample)
	if err != nil {
		return nil, err
	}
	keys := make([][]byte, len(raw))
	for i, r := range raw {
		keys[i] = r.([]byte)
	}
	rp := shuffle.NewRangePartitioner(pickSplits(keys, parts))

	plan := t.eng.NewShuffled(t.plan, core.ShuffleDep{
		Partitions:  rp.Partitions(),
		Partitioner: rp.Partition,
		Sorted:      true,
		KeyOf:       func(r core.Row) []byte { return keyOf(r.(Row)) },
		ValueOf:     func(r core.Row) []byte { return encodeRow(schema, r.(Row)) },
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			out := make([]core.Row, len(recs))
			for i, rec := range recs {
				row, err := decodeRow(schema, rec.Value)
				if err != nil {
					panic(fmt.Sprintf("table: orderby decode: %v", err))
				}
				out[i] = row
			}
			return out
		},
	})
	return &Table{eng: t.eng, plan: plan, schema: schema}, nil
}

// Head keeps at most n rows per partition (the partition-local half of
// LIMIT: after an OrderByCols, partition k's first n rows are the only
// candidates for the global first n, so the driver truncates the
// concatenation).
func (t *Table) Head(n int) (*Table, error) {
	if n < 0 {
		return nil, fmt.Errorf("table: Head(%d)", n)
	}
	plan := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		if len(rows) > n {
			rows = rows[:n]
		}
		return rows
	})
	return &Table{eng: t.eng, plan: plan, schema: t.schema}, nil
}

// Renamed returns the same relation with columns renamed per mapping
// (old name -> new name). Purely a schema change; no data moves.
func (t *Table) Renamed(mapping map[string]string) (*Table, error) {
	cols := append([]Col(nil), t.schema.Cols...)
	for old, new_ := range mapping {
		i := t.schema.Index(old)
		if i < 0 {
			return nil, fmt.Errorf("table: no column %q to rename", old)
		}
		cols[i].Name = new_
	}
	seen := map[string]bool{}
	for _, c := range cols {
		if seen[c.Name] {
			return nil, fmt.Errorf("table: rename collides on %q", c.Name)
		}
		seen[c.Name] = true
	}
	return &Table{eng: t.eng, plan: t.plan, schema: Schema{Cols: cols}}, nil
}
