// Package table is a relational analytics layer over the dataflow engine:
// typed schemas, projection, filtering, derived columns, hash equi-joins,
// grouped aggregation with map-side partial aggregates, and global ORDER
// BY via range-partitioned sort — the SQL-shaped workloads (reporting,
// sessionization, star joins) that big-data engines exist to serve.
// Operations are lazy plans on the engine; Collect/Count execute them
// with the engine's locality scheduling and fault tolerance.
package table

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/serde"
	"repro/internal/shuffle"
)

// Type is a column type.
type Type int

// Column types.
const (
	Int64 Type = iota
	Float64
	String
)

func (t Type) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	default:
		return "string"
	}
}

// Col is one schema column.
type Col struct {
	Name string
	Type Type
}

// Schema is an ordered set of named, typed columns.
type Schema struct {
	Cols []Col
}

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// MustIndex is Index but returns an error mentioning the schema.
func (s Schema) MustIndex(name string) (int, error) {
	if i := s.Index(name); i >= 0 {
		return i, nil
	}
	return -1, fmt.Errorf("table: no column %q in schema %v", name, s.Names())
}

// Names lists column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		out[i] = c.Name
	}
	return out
}

// Row is one record: values in schema order. Int64 columns hold int64,
// Float64 columns float64, String columns string.
type Row []any

// Table is a lazily evaluated relation.
type Table struct {
	eng    *core.Engine
	plan   *core.Plan
	schema Schema
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Partitions returns the table's partition count.
func (t *Table) Partitions() int { return t.plan.Partitions() }

// validate checks a row against the schema.
func (s Schema) validate(r Row) error {
	if len(r) != len(s.Cols) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(r), len(s.Cols))
	}
	for i, c := range s.Cols {
		switch c.Type {
		case Int64:
			if _, ok := r[i].(int64); !ok {
				return fmt.Errorf("table: column %q wants int64, got %T", c.Name, r[i])
			}
		case Float64:
			if _, ok := r[i].(float64); !ok {
				return fmt.Errorf("table: column %q wants float64, got %T", c.Name, r[i])
			}
		case String:
			if _, ok := r[i].(string); !ok {
				return fmt.Errorf("table: column %q wants string, got %T", c.Name, r[i])
			}
		}
	}
	return nil
}

// FromSlice builds a table from in-memory rows, validating each against
// the schema.
func FromSlice(eng *core.Engine, schema Schema, rows []Row, parts int) (*Table, error) {
	if len(schema.Cols) == 0 {
		return nil, errors.New("table: empty schema")
	}
	if parts <= 0 {
		parts = 4
	}
	for i, r := range rows {
		if err := schema.validate(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	owned := append([]Row(nil), rows...)
	plan := eng.NewSource(parts, func(_ *core.TaskContext, part int) []core.Row {
		var out []core.Row
		for i := part; i < len(owned); i += parts {
			out = append(out, owned[i])
		}
		return out
	}, nil)
	return &Table{eng: eng, plan: plan, schema: schema}, nil
}

// FromSource builds a table whose partitions are generated on demand (fn
// must be deterministic per partition for lineage recovery). Rows are not
// validated; the generator is trusted.
func FromSource(eng *core.Engine, schema Schema, parts int, fn func(part int) []Row) (*Table, error) {
	if len(schema.Cols) == 0 {
		return nil, errors.New("table: empty schema")
	}
	if parts <= 0 {
		return nil, errors.New("table: parts must be positive")
	}
	plan := eng.NewSource(parts, func(_ *core.TaskContext, part int) []core.Row {
		rows := fn(part)
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			out[i] = r
		}
		return out
	}, nil)
	return &Table{eng: eng, plan: plan, schema: schema}, nil
}

// Collect executes the plan and returns all rows.
func (t *Table) Collect() ([]Row, error) {
	raw, err := t.eng.Collect(t.plan)
	if err != nil {
		return nil, err
	}
	out := make([]Row, len(raw))
	for i, r := range raw {
		out[i] = r.(Row)
	}
	return out, nil
}

// Count executes the plan and returns the row count.
func (t *Table) Count() (int64, error) { return t.eng.Count(t.plan) }

// Select projects the named columns, in the given order.
func (t *Table) Select(names ...string) (*Table, error) {
	idx := make([]int, len(names))
	cols := make([]Col, len(names))
	for i, n := range names {
		j, err := t.schema.MustIndex(n)
		if err != nil {
			return nil, err
		}
		idx[i] = j
		cols[i] = t.schema.Cols[j]
	}
	plan := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			row := r.(Row)
			proj := make(Row, len(idx))
			for k, j := range idx {
				proj[k] = row[j]
			}
			out[i] = proj
		}
		return out
	})
	return &Table{eng: t.eng, plan: plan, schema: Schema{Cols: cols}}, nil
}

// Where keeps rows for which pred returns true.
func (t *Table) Where(pred func(Row) bool) *Table {
	plan := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		var out []core.Row
		for _, r := range rows {
			if pred(r.(Row)) {
				out = append(out, r)
			}
		}
		return out
	})
	return &Table{eng: t.eng, plan: plan, schema: t.schema}
}

// WithColumn appends a derived column computed by f from each row.
func (t *Table) WithColumn(name string, typ Type, f func(Row) any) (*Table, error) {
	if t.schema.Index(name) >= 0 {
		return nil, fmt.Errorf("table: column %q already exists", name)
	}
	schema := Schema{Cols: append(append([]Col(nil), t.schema.Cols...), Col{Name: name, Type: typ})}
	plan := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			row := r.(Row)
			next := make(Row, len(row)+1)
			copy(next, row)
			next[len(row)] = f(row)
			out[i] = next
		}
		return out
	})
	return &Table{eng: t.eng, plan: plan, schema: schema}, nil
}

// ---------------------------------------------------------------------------
// Row and key encodings

// encodeRow serializes a row against its schema.
func encodeRow(s Schema, r Row) []byte {
	var out []byte
	for i, c := range s.Cols {
		switch c.Type {
		case Int64:
			out = serde.AppendInt64(out, r[i].(int64))
		case Float64:
			out = serde.AppendUint64(out, floatBits(r[i].(float64)))
		case String:
			str := r[i].(string)
			out = serde.AppendInt64(out, int64(len(str)))
			out = append(out, str...)
		}
	}
	return out
}

func floatBits(f float64) uint64 {
	b := serde.EncodeFloat64(f)
	v, _ := serde.Uint64(b)
	return v
}

// decodeRow inverts encodeRow.
func decodeRow(s Schema, b []byte) (Row, error) {
	out := make(Row, len(s.Cols))
	for i, c := range s.Cols {
		switch c.Type {
		case Int64:
			v, n, err := serde.Int64(b)
			if err != nil {
				return nil, err
			}
			out[i] = v
			b = b[n:]
		case Float64:
			u, err := serde.Uint64(b)
			if err != nil {
				return nil, err
			}
			f, err := serde.DecodeFloat64(serde.AppendUint64(nil, u))
			if err != nil {
				return nil, err
			}
			out[i] = f
			b = b[8:]
		case String:
			l, n, err := serde.Int64(b)
			if err != nil || int64(len(b)-n) < l {
				return nil, serde.ErrCorrupt
			}
			out[i] = string(b[n : n+int(l)])
			b = b[n+int(l):]
		}
	}
	return out, nil
}

// sortableKey encodes one column value order-preservingly.
func sortableKey(typ Type, v any, desc bool) []byte {
	var key []byte
	switch typ {
	case Int64:
		key = serde.SortableInt64Key(v.(int64))
	case Float64:
		key = serde.SortableFloat64Key(v.(float64))
	default:
		key = serde.SortableStringKey(v.(string))
	}
	if desc {
		inv := make([]byte, len(key))
		for i, b := range key {
			inv[i] = ^b
		}
		return inv
	}
	return key
}

// equalityKey encodes one column value for equality grouping (compact,
// need not preserve order).
func equalityKey(typ Type, v any) []byte {
	switch typ {
	case Int64:
		return serde.AppendInt64(nil, v.(int64))
	case Float64:
		return serde.AppendUint64(nil, floatBits(v.(float64)))
	default:
		return append([]byte(nil), v.(string)...)
	}
}

// compositeKey concatenates self-delimiting sortable keys for the given
// column indexes.
func compositeKey(s Schema, idx []int, r Row) []byte {
	var out []byte
	for _, i := range idx {
		// Sortable encodings are self-delimiting (fixed width or
		// terminated), so concatenation is unambiguous and ordered.
		out = append(out, sortableKey(s.Cols[i].Type, r[i], false)...)
	}
	return out
}

// ---------------------------------------------------------------------------
// Join

// HashJoin inner-joins t with right on t.leftCol == right.rightCol. The
// result schema is t's columns followed by right's columns; name
// collisions on the right gain a "right_" prefix.
func (t *Table) HashJoin(right *Table, leftCol, rightCol string, parts int) (*Table, error) {
	li, err := t.schema.MustIndex(leftCol)
	if err != nil {
		return nil, err
	}
	ri, err := right.schema.MustIndex(rightCol)
	if err != nil {
		return nil, err
	}
	if t.schema.Cols[li].Type != right.schema.Cols[ri].Type {
		return nil, fmt.Errorf("table: join column types differ: %v vs %v",
			t.schema.Cols[li].Type, right.schema.Cols[ri].Type)
	}
	if parts <= 0 {
		parts = t.Partitions()
	}
	outCols := append([]Col(nil), t.schema.Cols...)
	for _, c := range right.schema.Cols {
		name := c.Name
		if (Schema{Cols: outCols}).Index(name) >= 0 {
			name = "right_" + name
		}
		outCols = append(outCols, Col{Name: name, Type: c.Type})
	}
	outSchema := Schema{Cols: outCols}

	leftSchema, rightSchema := t.schema, right.schema
	keyType := t.schema.Cols[li].Type
	// Tag rows: 'L' + encoded left row / 'R' + encoded right row.
	tagL := t.eng.NewNarrow(t.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			out[i] = taggedRow{left: true, key: equalityKey(keyType, r.(Row)[li]), payload: encodeRow(leftSchema, r.(Row))}
		}
		return out
	})
	tagR := t.eng.NewNarrow(right.plan, func(_ *core.TaskContext, rows []core.Row) []core.Row {
		out := make([]core.Row, len(rows))
		for i, r := range rows {
			out[i] = taggedRow{left: false, key: equalityKey(keyType, r.(Row)[ri]), payload: encodeRow(rightSchema, r.(Row))}
		}
		return out
	})
	both := t.eng.NewUnion(tagL, tagR)
	plan := t.eng.NewShuffled(both, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return r.(taggedRow).key },
		ValueOf: func(r core.Row) []byte {
			tr := r.(taggedRow)
			tag := byte('R')
			if tr.left {
				tag = 'L'
			}
			return append([]byte{tag}, tr.payload...)
		},
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			type bucket struct{ lefts, rights [][]byte }
			groups := map[string]*bucket{}
			var order []string
			for _, rec := range recs {
				k := string(rec.Key)
				g, ok := groups[k]
				if !ok {
					g = &bucket{}
					groups[k] = g
					order = append(order, k)
				}
				if rec.Value[0] == 'L' {
					g.lefts = append(g.lefts, rec.Value[1:])
				} else {
					g.rights = append(g.rights, rec.Value[1:])
				}
			}
			var out []core.Row
			for _, k := range order {
				g := groups[k]
				for _, lb := range g.lefts {
					lrow, err := decodeRow(leftSchema, lb)
					if err != nil {
						panic(fmt.Sprintf("table: join decode: %v", err))
					}
					for _, rb := range g.rights {
						rrow, err := decodeRow(rightSchema, rb)
						if err != nil {
							panic(fmt.Sprintf("table: join decode: %v", err))
						}
						joined := make(Row, 0, len(lrow)+len(rrow))
						joined = append(joined, lrow...)
						joined = append(joined, rrow...)
						out = append(out, joined)
					}
				}
			}
			return out
		},
	})
	return &Table{eng: t.eng, plan: plan, schema: outSchema}, nil
}

type taggedRow struct {
	left    bool
	key     []byte
	payload []byte
}

// ---------------------------------------------------------------------------
// Order by

// OrderBy globally sorts the table by the named column (all columns
// retained): concatenating the result's partitions in order yields the
// sorted relation. Range boundaries come from sampling. Rows with equal
// keys land in key order but otherwise arbitrary relative order; use
// OrderByCols with tiebreak columns for a deterministic total order.
func (t *Table) OrderBy(col string, desc bool, parts int) (*Table, error) {
	return t.OrderByCols([]string{col}, []bool{desc}, parts)
}

func pickSplits(sample [][]byte, parts int) [][]byte {
	sorted := append([][]byte(nil), sample...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && bytes.Compare(sorted[j], sorted[j-1]) < 0; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out [][]byte
	for i := 1; i < parts && len(sorted) > 0; i++ {
		idx := i * len(sorted) / parts
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		s := sorted[idx]
		if len(out) == 0 || !bytes.Equal(out[len(out)-1], s) {
			out = append(out, s)
		}
	}
	return out
}
