package table

import (
	"math"
	"testing"
	"time"

	"repro/internal/workload"
)

// tpchTables loads the generated star schema into the table layer.
func tpchTables(t *testing.T, sf int) (*Table, *Table, *Table) {
	t.Helper()
	eng := testEngine()
	data := workload.GenTPCH(sf, 11)

	var custRows []Row
	for _, c := range data.Customers {
		custRows = append(custRows, Row{c.CustKey, c.Segment, c.Nation})
	}
	customers, err := FromSlice(eng, Schema{Cols: []Col{
		{Name: "custkey", Type: Int64},
		{Name: "segment", Type: String},
		{Name: "nation", Type: String},
	}}, custRows, 2)
	if err != nil {
		t.Fatal(err)
	}

	var ordRows []Row
	for _, o := range data.Orders {
		ordRows = append(ordRows, Row{o.OrderKey, o.CustKey, int64(o.OrderDate / (24 * time.Hour)), o.Priority})
	}
	orders, err := FromSlice(eng, Schema{Cols: []Col{
		{Name: "orderkey", Type: Int64},
		{Name: "custkey", Type: Int64},
		{Name: "orderday", Type: Int64},
		{Name: "priority", Type: String},
	}}, ordRows, 4)
	if err != nil {
		t.Fatal(err)
	}

	var itemRows []Row
	for _, l := range data.Items {
		itemRows = append(itemRows, Row{l.OrderKey, l.Quantity, l.Price, l.Discount})
	}
	items, err := FromSlice(eng, Schema{Cols: []Col{
		{Name: "orderkey", Type: Int64},
		{Name: "quantity", Type: Int64},
		{Name: "price", Type: Float64},
		{Name: "discount", Type: Float64},
	}}, itemRows, 8)
	if err != nil {
		t.Fatal(err)
	}
	return customers, orders, items
}

// Q1-style: per-discount-band revenue aggregate over the fact table.
func TestTPCHPricingSummary(t *testing.T) {
	_, _, items := tpchTables(t, 2)
	withRev, err := items.WithColumn("revenue", Float64, func(r Row) any {
		return r[2].(float64) * float64(r[1].(int64)) * (1 - r[3].(float64))
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := withRev.GroupBy("discount").Agg(4,
		Agg{Op: Sum, Col: "revenue", As: "revenue"},
		Agg{Op: Count, As: "items"},
		Agg{Op: Avg, Col: "quantity", As: "avg_qty"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 11 { // discounts 0.00..0.10
		t.Fatalf("discount bands = %d, want 11", len(rows))
	}
	var items2 int64
	for _, r := range rows {
		items2 += r[2].(int64)
		if r[1].(float64) <= 0 {
			t.Fatalf("nonpositive revenue in band %v", r[0])
		}
		q := r[3].(float64)
		if q < 1 || q > 50 {
			t.Fatalf("avg quantity %v out of range", q)
		}
	}
	n, _ := items.Count()
	if items2 != n {
		t.Fatalf("aggregated %d items, table has %d", items2, n)
	}
}

// Q3-style: revenue by customer segment via a two-join star query.
func TestTPCHStarJoinRevenueBySegment(t *testing.T) {
	customers, orders, items := tpchTables(t, 1)
	oi, err := orders.HashJoin(items, "orderkey", "orderkey", 4)
	if err != nil {
		t.Fatal(err)
	}
	full, err := oi.HashJoin(customers, "custkey", "custkey", 4)
	if err != nil {
		t.Fatal(err)
	}
	withRev, err := full.WithColumn("revenue", Float64, func(r Row) any {
		s := full.Schema()
		pi, _ := s.MustIndex("price")
		qi, _ := s.MustIndex("quantity")
		di, _ := s.MustIndex("discount")
		return r[pi].(float64) * float64(r[qi].(int64)) * (1 - r[di].(float64))
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := withRev.GroupBy("segment").Agg(2,
		Agg{Op: Sum, Col: "revenue", As: "revenue"},
		Agg{Op: Count, As: "lineitems"},
	)
	if err != nil {
		t.Fatal(err)
	}
	ranked, err := res.OrderBy("revenue", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ranked.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // five market segments
		t.Fatalf("segments = %d: %v", len(rows), rows)
	}
	// Every line item lands in exactly one segment.
	var total int64
	prev := math.Inf(1)
	for _, r := range rows {
		total += r[2].(int64)
		rev := r[1].(float64)
		if rev > prev {
			t.Fatal("not ordered by revenue desc")
		}
		prev = rev
	}
	n, _ := items.Count()
	if total != n {
		t.Fatalf("star join covered %d items, table has %d", total, n)
	}
}

func TestGenTPCHReferentialIntegrity(t *testing.T) {
	data := workload.GenTPCH(1, 3)
	if len(data.Customers) != 100 || len(data.Orders) != 1000 {
		t.Fatalf("sizes: %d customers, %d orders", len(data.Customers), len(data.Orders))
	}
	custs := map[int64]bool{}
	for _, c := range data.Customers {
		custs[c.CustKey] = true
	}
	ords := map[int64]bool{}
	for _, o := range data.Orders {
		if !custs[o.CustKey] {
			t.Fatalf("order %d references missing customer %d", o.OrderKey, o.CustKey)
		}
		ords[o.OrderKey] = true
	}
	for _, l := range data.Items {
		if !ords[l.OrderKey] {
			t.Fatalf("line item references missing order %d", l.OrderKey)
		}
		if l.Discount < 0 || l.Discount > 0.10 {
			t.Fatalf("discount %v out of range", l.Discount)
		}
	}
}
