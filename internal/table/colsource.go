package table

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/serde"
)

// ColumnarTable is a relation stored column-encoded: each partition
// holds one adaptively encoded chunk per column (dict/RLE/delta, see
// internal/serde) plus a zone map (per-column min/max). It is the
// storage format the query layer's predicate and projection pushdown
// compile onto: a scan can prune whole partitions from the zone map
// before touching a byte, filter predicate columns against their
// encoded form (one predicate evaluation per RLE run or dictionary
// entry), and decode only the selected positions of only the needed
// columns.
type ColumnarTable struct {
	schema Schema
	parts  []colPart
}

type colPart struct {
	rows int
	cols [][]byte // encoded chunk per schema column
	mins []any    // zone map; nil values when rows == 0
	maxs []any
}

// BuildColumnar validates rows against the schema and encodes them into
// parts round-robin partitions of column chunks.
func BuildColumnar(schema Schema, rows []Row, parts int) (*ColumnarTable, error) {
	if len(schema.Cols) == 0 {
		return nil, errors.New("table: empty schema")
	}
	if parts <= 0 {
		parts = 4
	}
	for i, r := range rows {
		if err := schema.validate(r); err != nil {
			return nil, fmt.Errorf("row %d: %w", i, err)
		}
	}
	ct := &ColumnarTable{schema: schema, parts: make([]colPart, parts)}
	for p := 0; p < parts; p++ {
		var prows []Row
		for i := p; i < len(rows); i += parts {
			prows = append(prows, rows[i])
		}
		cp := colPart{
			rows: len(prows),
			cols: make([][]byte, len(schema.Cols)),
			mins: make([]any, len(schema.Cols)),
			maxs: make([]any, len(schema.Cols)),
		}
		for c, col := range schema.Cols {
			switch col.Type {
			case Int64:
				vals := make(serde.IntColumn, len(prows))
				for i, r := range prows {
					vals[i] = r[c].(int64)
				}
				cp.cols[c] = vals.Encode()
				if len(vals) > 0 {
					mn, mx := vals[0], vals[0]
					for _, v := range vals[1:] {
						if v < mn {
							mn = v
						}
						if v > mx {
							mx = v
						}
					}
					cp.mins[c], cp.maxs[c] = mn, mx
				}
			case Float64:
				vals := make(serde.FloatColumn, len(prows))
				for i, r := range prows {
					vals[i] = r[c].(float64)
				}
				cp.cols[c] = vals.Encode()
				if len(vals) > 0 {
					mn, mx := vals[0], vals[0]
					for _, v := range vals[1:] {
						if v < mn {
							mn = v
						}
						if v > mx {
							mx = v
						}
					}
					cp.mins[c], cp.maxs[c] = mn, mx
				}
			case String:
				vals := make(serde.StringColumn, len(prows))
				for i, r := range prows {
					vals[i] = r[c].(string)
				}
				cp.cols[c] = vals.Encode()
				if len(vals) > 0 {
					mn, mx := vals[0], vals[0]
					for _, v := range vals[1:] {
						if v < mn {
							mn = v
						}
						if v > mx {
							mx = v
						}
					}
					cp.mins[c], cp.maxs[c] = mn, mx
				}
			}
		}
		ct.parts[p] = cp
	}
	return ct, nil
}

// Schema returns the table's schema.
func (c *ColumnarTable) Schema() Schema { return c.schema }

// Partitions returns the partition count.
func (c *ColumnarTable) Partitions() int { return len(c.parts) }

// RowCount returns the total stored rows.
func (c *ColumnarTable) RowCount() int {
	n := 0
	for _, p := range c.parts {
		n += p.rows
	}
	return n
}

// EncodedBytes returns the total encoded size across partitions.
func (c *ColumnarTable) EncodedBytes() int64 {
	var n int64
	for _, p := range c.parts {
		for _, col := range p.cols {
			n += int64(len(col))
		}
	}
	return n
}

// ColPredicate is one pushed-down single-column predicate.
type ColPredicate struct {
	// Col is the schema column index the predicate reads.
	Col int
	// Keep reports whether a value passes; it receives int64, float64
	// or string per the column type. Required.
	Keep func(v any) bool
	// SkipAll optionally reports, from the partition's zone map, that no
	// value in [min, max] can pass — the whole partition is then pruned
	// without decoding anything. Nil when the predicate has no usable
	// range form.
	SkipAll func(min, max any) bool
}

// Scan counter names recorded against the registry passed to Scan (the
// query layer surfaces them through internal/obs):
//
//	sql_rows_scanned   rows in partitions that survived zone pruning
//	sql_rows_pruned    rows skipped wholesale by zone maps
//	sql_rows_out       rows emitted after pushed predicates
//	sql_bytes_decoded  encoded bytes of chunks actually decoded
//	sql_bytes_skipped  encoded bytes of chunks never decoded
//	sql_pred_evals     predicate evaluations actually run (RLE runs /
//	                   dictionary entries, not rows)
const (
	CtrRowsScanned  = "sql_rows_scanned"
	CtrRowsPruned   = "sql_rows_pruned"
	CtrRowsOut      = "sql_rows_out"
	CtrBytesDecoded = "sql_bytes_decoded"
	CtrBytesSkipped = "sql_bytes_skipped"
	CtrPredEvals    = "sql_pred_evals"
)

// Scan builds a lazy Table over the columnar data. preds are pushed
// predicates ANDed together; needed lists the schema column indexes the
// output rows carry, in output order (nil = all columns). Chunk decode
// effort and zone-map pruning are recorded on reg (nil-safe).
func (c *ColumnarTable) Scan(eng *core.Engine, preds []ColPredicate, needed []int, reg *metrics.Registry) (*Table, error) {
	if needed == nil {
		needed = make([]int, len(c.schema.Cols))
		for i := range needed {
			needed[i] = i
		}
	}
	outCols := make([]Col, len(needed))
	for i, idx := range needed {
		if idx < 0 || idx >= len(c.schema.Cols) {
			return nil, fmt.Errorf("table: scan column index %d out of range", idx)
		}
		outCols[i] = c.schema.Cols[idx]
	}
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(c.schema.Cols) {
			return nil, fmt.Errorf("table: predicate column index %d out of range", p.Col)
		}
		if p.Keep == nil {
			return nil, errors.New("table: ColPredicate.Keep is required")
		}
	}
	var (
		rowsScanned, rowsPruned, rowsOut  *metrics.Counter
		bytesDecoded, bytesSkip, predEval *metrics.Counter
	)
	if reg != nil {
		rowsScanned = reg.Counter(CtrRowsScanned)
		rowsPruned = reg.Counter(CtrRowsPruned)
		rowsOut = reg.Counter(CtrRowsOut)
		bytesDecoded = reg.Counter(CtrBytesDecoded)
		bytesSkip = reg.Counter(CtrBytesSkipped)
		predEval = reg.Counter(CtrPredEvals)
	}
	schema := c.schema
	parts := c.parts
	plan := eng.NewSource(len(parts), func(_ *core.TaskContext, part int) []core.Row {
		cp := parts[part]
		if cp.rows == 0 {
			return nil
		}
		partBytes := func() int64 {
			var n int64
			for _, col := range cp.cols {
				n += int64(len(col))
			}
			return n
		}
		// Zone-map pruning: any pushed predicate proving the partition
		// empty skips every chunk in it.
		for _, p := range preds {
			if p.SkipAll != nil && p.SkipAll(cp.mins[p.Col], cp.maxs[p.Col]) {
				rowsPruned.Add(int64(cp.rows))
				bytesSkip.Add(partBytes())
				return nil
			}
		}
		rowsScanned.Add(int64(cp.rows))

		// Filter pass over the predicate columns' encoded chunks.
		touched := make(map[int]bool)
		var sel []bool
		nSel := cp.rows
		for _, p := range preds {
			var (
				psel []bool
				st   serde.FilterStats
				err  error
			)
			switch schema.Cols[p.Col].Type {
			case Int64:
				psel, st, err = serde.FilterIntColumn(cp.cols[p.Col], func(v int64) bool { return p.Keep(v) })
			case Float64:
				psel, st, err = serde.FilterFloatColumn(cp.cols[p.Col], func(v float64) bool { return p.Keep(v) })
			case String:
				psel, st, err = serde.FilterStringColumn(cp.cols[p.Col], func(v string) bool { return p.Keep(v) })
			}
			if err != nil {
				panic(fmt.Sprintf("table: columnar filter: %v", err))
			}
			if !touched[p.Col] {
				touched[p.Col] = true
				bytesDecoded.Add(int64(len(cp.cols[p.Col])))
			}
			predEval.Add(int64(st.PredEvals))
			if sel == nil {
				sel = psel
			} else {
				for i := range sel {
					sel[i] = sel[i] && psel[i]
				}
			}
		}
		if sel == nil {
			sel = make([]bool, cp.rows)
			for i := range sel {
				sel[i] = true
			}
		} else {
			nSel = 0
			for _, s := range sel {
				if s {
					nSel++
				}
			}
		}
		rowsOut.Add(int64(nSel))

		// Decode pass: only needed columns, only selected positions.
		colVals := make(map[int][]any, len(needed))
		for _, idx := range needed {
			if _, ok := colVals[idx]; ok {
				continue
			}
			if nSel == 0 {
				if !touched[idx] {
					touched[idx] = true
					bytesSkip.Add(int64(len(cp.cols[idx])))
				}
				colVals[idx] = nil
				continue
			}
			if !touched[idx] {
				touched[idx] = true
				bytesDecoded.Add(int64(len(cp.cols[idx])))
			}
			vals := make([]any, 0, nSel)
			var err error
			switch schema.Cols[idx].Type {
			case Int64:
				var vs []int64
				if vs, err = serde.SelectIntColumn(cp.cols[idx], sel); err == nil {
					for _, v := range vs {
						vals = append(vals, v)
					}
				}
			case Float64:
				var vs []float64
				if vs, err = serde.SelectFloatColumn(cp.cols[idx], sel); err == nil {
					for _, v := range vs {
						vals = append(vals, v)
					}
				}
			case String:
				var vs []string
				if vs, err = serde.SelectStringColumn(cp.cols[idx], sel); err == nil {
					for _, v := range vs {
						vals = append(vals, v)
					}
				}
			}
			if err != nil {
				panic(fmt.Sprintf("table: columnar decode: %v", err))
			}
			colVals[idx] = vals
		}
		// Untouched columns were neither filtered nor needed.
		for i, col := range cp.cols {
			if !touched[i] {
				if _, isNeeded := colVals[i]; !isNeeded {
					bytesSkip.Add(int64(len(col)))
				}
			}
		}
		out := make([]core.Row, nSel)
		for i := 0; i < nSel; i++ {
			row := make(Row, len(needed))
			for k, idx := range needed {
				row[k] = colVals[idx][i]
			}
			out[i] = row
		}
		return out
	}, nil)
	return &Table{eng: eng, plan: plan, schema: Schema{Cols: outCols}}, nil
}
