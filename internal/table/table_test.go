package table

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/topology"
)

func testEngine() *core.Engine {
	fab := netsim.NewFabric(topology.TwoTier(2, 2, 2), netsim.RDMA40G)
	cl := cluster.New(cluster.Config{Fabric: fab, SlotsPerNode: 2})
	return core.NewEngine(core.Config{Cluster: cl})
}

func salesSchema() Schema {
	return Schema{Cols: []Col{
		{Name: "region", Type: String},
		{Name: "product", Type: String},
		{Name: "units", Type: Int64},
		{Name: "price", Type: Float64},
	}}
}

func salesRows(n int, seed uint64) []Row {
	gen := rng.New(seed)
	regions := []string{"emea", "apac", "amer"}
	products := []string{"widget", "gadget", "doohickey", "gizmo"}
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			regions[gen.Intn(len(regions))],
			products[gen.Intn(len(products))],
			int64(1 + gen.Intn(10)),
			float64(gen.Intn(10000)) / 100,
		}
	}
	return rows
}

func mustTable(t *testing.T, eng *core.Engine, schema Schema, rows []Row, parts int) *Table {
	t.Helper()
	tb, err := FromSlice(eng, schema, rows, parts)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestFromSliceValidation(t *testing.T) {
	eng := testEngine()
	schema := salesSchema()
	if _, err := FromSlice(eng, schema, []Row{{"emea", "widget", "oops", 1.0}}, 2); err == nil {
		t.Fatal("wrong-typed row accepted")
	}
	if _, err := FromSlice(eng, schema, []Row{{"emea"}}, 2); err == nil {
		t.Fatal("short row accepted")
	}
	if _, err := FromSlice(eng, Schema{}, nil, 2); err == nil {
		t.Fatal("empty schema accepted")
	}
}

func TestCollectAndCount(t *testing.T) {
	eng := testEngine()
	rows := salesRows(100, 1)
	tb := mustTable(t, eng, salesSchema(), rows, 4)
	n, err := tb.Count()
	if err != nil || n != 100 {
		t.Fatalf("count = %d, %v", n, err)
	}
	got, err := tb.Collect()
	if err != nil || len(got) != 100 {
		t.Fatalf("collect = %d rows, %v", len(got), err)
	}
}

func TestSelect(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(50, 2), 4)
	proj, err := tb.Select("units", "region")
	if err != nil {
		t.Fatal(err)
	}
	if names := proj.Schema().Names(); names[0] != "units" || names[1] != "region" {
		t.Fatalf("schema = %v", names)
	}
	rows, err := proj.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("row width %d", len(r))
		}
		if _, ok := r[0].(int64); !ok {
			t.Fatal("units not int64 after projection")
		}
	}
	if _, err := tb.Select("nope"); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestWhere(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(200, 3), 4)
	ui, _ := tb.Schema().MustIndex("units")
	big := tb.Where(func(r Row) bool { return r[ui].(int64) >= 5 })
	rows, err := big.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r[ui].(int64) < 5 {
			t.Fatal("filter leaked")
		}
	}
	if len(rows) == 0 || len(rows) == 200 {
		t.Fatalf("filter kept %d of 200", len(rows))
	}
}

func TestWithColumn(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(50, 4), 2)
	rev, err := tb.WithColumn("revenue", Float64, func(r Row) any {
		return float64(r[2].(int64)) * r[3].(float64)
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := rev.Collect()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		want := float64(r[2].(int64)) * r[3].(float64)
		if r[4].(float64) != want {
			t.Fatalf("revenue %v, want %v", r[4], want)
		}
	}
	if _, err := tb.WithColumn("region", String, nil); err == nil {
		t.Fatal("duplicate column accepted")
	}
}

func TestGroupByAgg(t *testing.T) {
	eng := testEngine()
	rows := salesRows(500, 5)
	tb := mustTable(t, eng, salesSchema(), rows, 8)
	res, err := tb.GroupBy("region").Agg(4,
		Agg{Op: Sum, Col: "units"},
		Agg{Op: Count},
		Agg{Op: Min, Col: "price"},
		Agg{Op: Max, Col: "price"},
		Agg{Op: Avg, Col: "units", As: "avg_units"},
	)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Reference aggregation.
	type ref struct {
		sum, count int64
		min, max   float64
	}
	want := map[string]*ref{}
	for _, r := range rows {
		k := r[0].(string)
		w, ok := want[k]
		if !ok {
			w = &ref{min: math.Inf(1), max: math.Inf(-1)}
			want[k] = w
		}
		w.sum += r[2].(int64)
		w.count++
		if p := r[3].(float64); p < w.min {
			w.min = p
		}
		if p := r[3].(float64); p > w.max {
			w.max = p
		}
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %d, want %d", len(got), len(want))
	}
	for _, r := range got {
		k := r[0].(string)
		w := want[k]
		if w == nil {
			t.Fatalf("unexpected group %q", k)
		}
		if r[1].(int64) != w.sum {
			t.Fatalf("%s sum = %v, want %d", k, r[1], w.sum)
		}
		if r[2].(int64) != w.count {
			t.Fatalf("%s count = %v, want %d", k, r[2], w.count)
		}
		if r[3].(float64) != w.min || r[4].(float64) != w.max {
			t.Fatalf("%s min/max = %v/%v, want %v/%v", k, r[3], r[4], w.min, w.max)
		}
		wantAvg := float64(w.sum) / float64(w.count)
		if math.Abs(r[5].(float64)-wantAvg) > 1e-9 {
			t.Fatalf("%s avg = %v, want %v", k, r[5], wantAvg)
		}
	}
	// Output schema names and types.
	names := res.Schema().Names()
	if names[0] != "region" || names[1] != "sum_units" || names[2] != "count" ||
		names[5] != "avg_units" {
		t.Fatalf("output schema = %v", names)
	}
}

func TestGroupByMultipleKeys(t *testing.T) {
	eng := testEngine()
	rows := salesRows(300, 6)
	tb := mustTable(t, eng, salesSchema(), rows, 4)
	res, err := tb.GroupBy("region", "product").Agg(4, Agg{Op: Count})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	keys := map[string]bool{}
	for _, r := range got {
		k := r[0].(string) + "|" + r[1].(string)
		if keys[k] {
			t.Fatalf("duplicate group %q", k)
		}
		keys[k] = true
		total += r[2].(int64)
	}
	if total != 300 {
		t.Fatalf("total count %d", total)
	}
}

func TestGroupByRejectsBadSpecs(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(10, 7), 2)
	if _, err := tb.GroupBy("region").Agg(2, Agg{Op: Sum, Col: "product"}); err == nil {
		t.Fatal("sum over string accepted")
	}
	if _, err := tb.GroupBy("nope").Agg(2, Agg{Op: Count}); err == nil {
		t.Fatal("unknown group key accepted")
	}
	if _, err := tb.GroupBy("region").Agg(2); err == nil {
		t.Fatal("no aggregates accepted")
	}
}

func TestHashJoin(t *testing.T) {
	eng := testEngine()
	users, _ := FromSlice(eng, Schema{Cols: []Col{
		{Name: "uid", Type: Int64}, {Name: "name", Type: String},
	}}, []Row{
		{int64(1), "alice"}, {int64(2), "bob"}, {int64(3), "carol"},
	}, 2)
	orders, _ := FromSlice(eng, Schema{Cols: []Col{
		{Name: "uid", Type: Int64}, {Name: "amount", Type: Float64},
	}}, []Row{
		{int64(1), 10.0}, {int64(1), 20.0}, {int64(3), 5.0}, {int64(9), 1.0},
	}, 2)
	joined, err := users.HashJoin(orders, "uid", "uid", 2)
	if err != nil {
		t.Fatal(err)
	}
	names := joined.Schema().Names()
	if fmt.Sprint(names) != "[uid name right_uid amount]" {
		t.Fatalf("join schema = %v", names)
	}
	rows, err := joined.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("joined %d rows, want 3", len(rows))
	}
	total := 0.0
	for _, r := range rows {
		if r[0].(int64) != r[2].(int64) {
			t.Fatal("join key mismatch in output")
		}
		total += r[3].(float64)
	}
	if total != 35 {
		t.Fatalf("joined amounts %v", total)
	}
}

func TestHashJoinTypeMismatch(t *testing.T) {
	eng := testEngine()
	a, _ := FromSlice(eng, Schema{Cols: []Col{{Name: "k", Type: Int64}}}, []Row{{int64(1)}}, 1)
	b, _ := FromSlice(eng, Schema{Cols: []Col{{Name: "k", Type: String}}}, []Row{{"1"}}, 1)
	if _, err := a.HashJoin(b, "k", "k", 1); err == nil {
		t.Fatal("mismatched join types accepted")
	}
}

func TestOrderByAscDesc(t *testing.T) {
	eng := testEngine()
	rows := salesRows(400, 8)
	tb := mustTable(t, eng, salesSchema(), rows, 8)
	for _, desc := range []bool{false, true} {
		res, err := tb.OrderBy("price", desc, 4)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := res.eng.Run(res.plan)
		if err != nil {
			t.Fatal(err)
		}
		var prices []float64
		for _, part := range parts {
			for _, r := range part {
				prices = append(prices, r.(Row)[3].(float64))
			}
		}
		if len(prices) != 400 {
			t.Fatalf("ordered %d rows", len(prices))
		}
		for i := 1; i < len(prices); i++ {
			if !desc && prices[i-1] > prices[i] {
				t.Fatalf("asc order broken at %d", i)
			}
			if desc && prices[i-1] < prices[i] {
				t.Fatalf("desc order broken at %d", i)
			}
		}
	}
}

func TestOrderByString(t *testing.T) {
	eng := testEngine()
	tb := mustTable(t, eng, salesSchema(), salesRows(100, 9), 4)
	res, err := tb.OrderBy("product", false, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Collect()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, r := range rows {
		names = append(names, r[1].(string))
	}
	if !sort.StringsAreSorted(names) {
		t.Fatal("string order broken")
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	schema := salesSchema()
	f := func(region, product string, units int64, price float64) bool {
		if math.IsNaN(price) {
			return true
		}
		row := Row{region, product, units, price}
		got, err := decodeRow(schema, encodeRow(schema, row))
		if err != nil {
			return false
		}
		return got[0] == region && got[1] == product && got[2] == units && got[3] == price
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndPipeline(t *testing.T) {
	// The kitchen sink: derive, filter, join, group, order.
	eng := testEngine()
	sales := mustTable(t, eng, salesSchema(), salesRows(600, 10), 8)
	regions, _ := FromSlice(eng, Schema{Cols: []Col{
		{Name: "region", Type: String}, {Name: "manager", Type: String},
	}}, []Row{
		{"emea", "ada"}, {"apac", "grace"}, {"amer", "katherine"},
	}, 1)

	withRev, err := sales.WithColumn("revenue", Float64, func(r Row) any {
		return float64(r[2].(int64)) * r[3].(float64)
	})
	if err != nil {
		t.Fatal(err)
	}
	joined, err := withRev.HashJoin(regions, "region", "region", 4)
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := joined.GroupBy("manager").Agg(2,
		Agg{Op: Sum, Col: "revenue", As: "total"},
		Agg{Op: Count},
	)
	if err != nil {
		t.Fatal(err)
	}
	final, err := grouped.OrderBy("total", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := final.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("managers = %d", len(rows))
	}
	var counts int64
	for _, r := range rows {
		counts += r[2].(int64)
	}
	if counts != 600 {
		t.Fatalf("row counts sum to %d", counts)
	}
	// Descending by total.
	if rows[0][1].(float64) < rows[1][1].(float64) || rows[1][1].(float64) < rows[2][1].(float64) {
		t.Fatalf("not ordered by total desc: %v", rows)
	}
}

func BenchmarkGroupByAgg(b *testing.B) {
	eng := testEngine()
	rows := salesRows(20000, 1)
	tb, err := FromSlice(eng, salesSchema(), rows, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tb.GroupBy("region", "product").Agg(4,
			Agg{Op: Sum, Col: "units"}, Agg{Op: Avg, Col: "price"})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := res.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}
