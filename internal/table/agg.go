package table

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/serde"
	"repro/internal/shuffle"
)

// AggOp is an aggregation operator.
type AggOp int

// Aggregation operators.
const (
	Sum AggOp = iota
	Count
	Min
	Max
	Avg
)

func (o AggOp) String() string {
	switch o {
	case Sum:
		return "sum"
	case Count:
		return "count"
	case Min:
		return "min"
	case Max:
		return "max"
	default:
		return "avg"
	}
}

// Agg describes one aggregate: Op over Col, named As in the output
// (default "<op>_<col>"). Count ignores Col.
type Agg struct {
	Op  AggOp
	Col string
	As  string
}

func (a Agg) name() string {
	if a.As != "" {
		return a.As
	}
	if a.Op == Count {
		return "count"
	}
	return fmt.Sprintf("%s_%s", a.Op, a.Col)
}

// Grouped is a group-by builder; call Agg to produce the result table.
type Grouped struct {
	t    *Table
	keys []string
}

// GroupBy starts a grouped aggregation on the named key columns.
func (t *Table) GroupBy(keys ...string) *Grouped {
	return &Grouped{t: t, keys: keys}
}

// aggState is one group's partial aggregate: one slot per Agg spec.
type aggState struct {
	sumI  []int64   // Sum over Int64
	sumF  []float64 // Sum over Float64, Avg sums
	count []int64   // Count, Avg counts
	mmSet []bool    // Min/Max present
	mmI   []int64
	mmF   []float64
	mmS   []string
}

// aggPlan is the resolved execution info per spec.
type aggPlan struct {
	spec   Agg
	colIdx int  // -1 for Count
	typ    Type // column type (Int64 for Count)
}

// Agg executes the grouped aggregation with map-side partial aggregation
// (the combiner merges encoded states before the shuffle).
func (g *Grouped) Agg(parts int, aggs ...Agg) (*Table, error) {
	t := g.t
	if len(aggs) == 0 {
		return nil, fmt.Errorf("table: GroupBy.Agg needs at least one aggregate")
	}
	if parts <= 0 {
		parts = t.Partitions()
	}
	keyIdx := make([]int, len(g.keys))
	outCols := make([]Col, 0, len(g.keys)+len(aggs))
	for i, k := range g.keys {
		j, err := t.schema.MustIndex(k)
		if err != nil {
			return nil, err
		}
		keyIdx[i] = j
		outCols = append(outCols, t.schema.Cols[j])
	}
	plans := make([]aggPlan, len(aggs))
	for i, a := range aggs {
		p := aggPlan{spec: a, colIdx: -1, typ: Int64}
		if a.Op != Count {
			j, err := t.schema.MustIndex(a.Col)
			if err != nil {
				return nil, err
			}
			p.colIdx = j
			p.typ = t.schema.Cols[j].Type
			if a.Op != Min && a.Op != Max && p.typ == String {
				return nil, fmt.Errorf("table: %s over string column %q", a.Op, a.Col)
			}
		}
		outType := Int64
		switch a.Op {
		case Sum, Min, Max:
			outType = p.typ
		case Avg:
			outType = Float64
		}
		outCols = append(outCols, Col{Name: a.name(), Type: outType})
		plans[i] = p
	}
	outSchema := Schema{Cols: outCols}
	schema := t.schema

	combiner := func(a, b []byte) []byte {
		sa, err := decodeState(plans, a)
		if err != nil {
			panic(fmt.Sprintf("table: agg state decode: %v", err))
		}
		sb, err := decodeState(plans, b)
		if err != nil {
			panic(fmt.Sprintf("table: agg state decode: %v", err))
		}
		mergeState(plans, sa, sb)
		return encodeState(plans, sa)
	}

	plan := t.eng.NewShuffled(t.plan, core.ShuffleDep{
		Partitions: parts,
		KeyOf:      func(r core.Row) []byte { return compositeKey(schema, keyIdx, r.(Row)) },
		ValueOf: func(r core.Row) []byte {
			return encodeState(plans, initState(plans, r.(Row)))
		},
		Combiner: combiner,
		Post: func(_ *core.TaskContext, recs []shuffle.Record) []core.Row {
			merged := map[string]*aggState{}
			var order []string
			for _, rec := range recs {
				k := string(rec.Key)
				st, err := decodeState(plans, rec.Value)
				if err != nil {
					panic(fmt.Sprintf("table: agg state decode: %v", err))
				}
				if cur, ok := merged[k]; ok {
					mergeState(plans, cur, st)
				} else {
					merged[k] = st
					order = append(order, k)
				}
			}
			out := make([]core.Row, 0, len(merged))
			for _, k := range order {
				keyVals, err := decodeCompositeKey(schema, keyIdx, []byte(k))
				if err != nil {
					panic(fmt.Sprintf("table: group key decode: %v", err))
				}
				row := make(Row, 0, len(keyVals)+len(plans))
				row = append(row, keyVals...)
				row = append(row, finalize(plans, merged[k])...)
				out = append(out, row)
			}
			return out
		},
	})
	return &Table{eng: t.eng, plan: plan, schema: outSchema}, nil
}

func newState(n int) *aggState {
	return &aggState{
		sumI:  make([]int64, n),
		sumF:  make([]float64, n),
		count: make([]int64, n),
		mmSet: make([]bool, n),
		mmI:   make([]int64, n),
		mmF:   make([]float64, n),
		mmS:   make([]string, n),
	}
}

// initState builds the state of a single-row group.
func initState(plans []aggPlan, r Row) *aggState {
	st := newState(len(plans))
	for i, p := range plans {
		switch p.spec.Op {
		case Count:
			st.count[i] = 1
		case Sum:
			if p.typ == Int64 {
				st.sumI[i] = r[p.colIdx].(int64)
			} else {
				st.sumF[i] = r[p.colIdx].(float64)
			}
		case Avg:
			st.count[i] = 1
			if p.typ == Int64 {
				st.sumF[i] = float64(r[p.colIdx].(int64))
			} else {
				st.sumF[i] = r[p.colIdx].(float64)
			}
		case Min, Max:
			st.mmSet[i] = true
			switch p.typ {
			case Int64:
				st.mmI[i] = r[p.colIdx].(int64)
			case Float64:
				st.mmF[i] = r[p.colIdx].(float64)
			default:
				st.mmS[i] = r[p.colIdx].(string)
			}
		}
	}
	return st
}

// mergeState folds b into a.
func mergeState(plans []aggPlan, a, b *aggState) {
	for i, p := range plans {
		switch p.spec.Op {
		case Count:
			a.count[i] += b.count[i]
		case Sum:
			a.sumI[i] += b.sumI[i]
			a.sumF[i] += b.sumF[i]
		case Avg:
			a.count[i] += b.count[i]
			a.sumF[i] += b.sumF[i]
		case Min, Max:
			if !b.mmSet[i] {
				continue
			}
			if !a.mmSet[i] {
				a.mmSet[i] = true
				a.mmI[i], a.mmF[i], a.mmS[i] = b.mmI[i], b.mmF[i], b.mmS[i]
				continue
			}
			cmp := 0
			switch p.typ {
			case Int64:
				switch {
				case b.mmI[i] < a.mmI[i]:
					cmp = -1
				case b.mmI[i] > a.mmI[i]:
					cmp = 1
				}
			case Float64:
				switch {
				case b.mmF[i] < a.mmF[i]:
					cmp = -1
				case b.mmF[i] > a.mmF[i]:
					cmp = 1
				}
			default:
				switch {
				case b.mmS[i] < a.mmS[i]:
					cmp = -1
				case b.mmS[i] > a.mmS[i]:
					cmp = 1
				}
			}
			if (p.spec.Op == Min && cmp < 0) || (p.spec.Op == Max && cmp > 0) {
				a.mmI[i], a.mmF[i], a.mmS[i] = b.mmI[i], b.mmF[i], b.mmS[i]
			}
		}
	}
}

// finalize renders output values.
func finalize(plans []aggPlan, st *aggState) []any {
	out := make([]any, len(plans))
	for i, p := range plans {
		switch p.spec.Op {
		case Count:
			out[i] = st.count[i]
		case Sum:
			if p.typ == Int64 {
				out[i] = st.sumI[i]
			} else {
				out[i] = st.sumF[i]
			}
		case Avg:
			if st.count[i] == 0 {
				out[i] = math.NaN()
			} else {
				out[i] = st.sumF[i] / float64(st.count[i])
			}
		case Min, Max:
			switch p.typ {
			case Int64:
				out[i] = st.mmI[i]
			case Float64:
				out[i] = st.mmF[i]
			default:
				out[i] = st.mmS[i]
			}
		}
	}
	return out
}

// encodeState serializes per-spec slots.
func encodeState(plans []aggPlan, st *aggState) []byte {
	var out []byte
	for i, p := range plans {
		switch p.spec.Op {
		case Count:
			out = serde.AppendInt64(out, st.count[i])
		case Sum:
			if p.typ == Int64 {
				out = serde.AppendInt64(out, st.sumI[i])
			} else {
				out = serde.AppendUint64(out, floatBits(st.sumF[i]))
			}
		case Avg:
			out = serde.AppendUint64(out, floatBits(st.sumF[i]))
			out = serde.AppendInt64(out, st.count[i])
		case Min, Max:
			if !st.mmSet[i] {
				out = append(out, 0)
				continue
			}
			out = append(out, 1)
			switch p.typ {
			case Int64:
				out = serde.AppendInt64(out, st.mmI[i])
			case Float64:
				out = serde.AppendUint64(out, floatBits(st.mmF[i]))
			default:
				out = serde.AppendInt64(out, int64(len(st.mmS[i])))
				out = append(out, st.mmS[i]...)
			}
		}
	}
	return out
}

// decodeState inverts encodeState.
func decodeState(plans []aggPlan, b []byte) (*aggState, error) {
	st := newState(len(plans))
	readI := func() (int64, error) {
		v, n, err := serde.Int64(b)
		if err != nil {
			return 0, err
		}
		b = b[n:]
		return v, nil
	}
	readF := func() (float64, error) {
		u, err := serde.Uint64(b)
		if err != nil {
			return 0, err
		}
		b = b[8:]
		return serde.DecodeFloat64(serde.AppendUint64(nil, u))
	}
	for i, p := range plans {
		var err error
		switch p.spec.Op {
		case Count:
			st.count[i], err = readI()
		case Sum:
			if p.typ == Int64 {
				st.sumI[i], err = readI()
			} else {
				st.sumF[i], err = readF()
			}
		case Avg:
			if st.sumF[i], err = readF(); err == nil {
				st.count[i], err = readI()
			}
		case Min, Max:
			if len(b) == 0 {
				return nil, serde.ErrCorrupt
			}
			present := b[0]
			b = b[1:]
			if present == 0 {
				continue
			}
			st.mmSet[i] = true
			switch p.typ {
			case Int64:
				st.mmI[i], err = readI()
			case Float64:
				st.mmF[i], err = readF()
			default:
				var l int64
				if l, err = readI(); err == nil {
					if int64(len(b)) < l {
						return nil, serde.ErrCorrupt
					}
					st.mmS[i] = string(b[:l])
					b = b[l:]
				}
			}
		}
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

// decodeCompositeKey inverts compositeKey for the group-key columns.
func decodeCompositeKey(s Schema, idx []int, key []byte) ([]any, error) {
	out := make([]any, len(idx))
	for k, i := range idx {
		switch s.Cols[i].Type {
		case Int64:
			v, err := serde.FromSortableInt64Key(key)
			if err != nil {
				return nil, err
			}
			out[k] = v
			key = key[8:]
		case Float64:
			v, err := serde.FromSortableFloat64Key(key)
			if err != nil {
				return nil, err
			}
			out[k] = v
			key = key[8:]
		default:
			v, n, err := serde.FromSortableStringKey(key)
			if err != nil {
				return nil, err
			}
			out[k] = v
			key = key[n:]
		}
	}
	return out, nil
}
