package sched

import (
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/topology"
)

func simpleJob(id int, arrival time.Duration, tasks int, dur time.Duration) JobSpec {
	j := JobSpec{ID: id, Arrival: arrival}
	for i := 0; i < tasks; i++ {
		j.Tasks = append(j.Tasks, TaskSpec{Duration: dur})
	}
	return j
}

func TestSingleJobMakespan(t *testing.T) {
	// 8 tasks of 1s on 2 nodes x 2 slots = 4 parallel → 2s makespan.
	res := Run(Config{
		Topology:     topology.Single(2),
		SlotsPerNode: 2,
		Policy:       FIFO{},
	}, []JobSpec{simpleJob(0, 0, 8, time.Second)})
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s", res.Makespan)
	}
	if res.JobCompletion[0] != 2*time.Second {
		t.Fatalf("job completion = %v", res.JobCompletion[0])
	}
}

func TestArrivalRespected(t *testing.T) {
	res := Run(Config{
		Topology:     topology.Single(1),
		SlotsPerNode: 1,
		Policy:       FIFO{},
	}, []JobSpec{simpleJob(0, 5*time.Second, 1, time.Second)})
	if res.Makespan != 6*time.Second {
		t.Fatalf("makespan = %v, want 6s", res.Makespan)
	}
	if res.JobCompletion[0] != time.Second {
		t.Fatalf("job time = %v, want 1s after arrival", res.JobCompletion[0])
	}
}

func TestFIFOHeadOfLineBlocking(t *testing.T) {
	// A long job ahead of a short job: FIFO makes the short job wait;
	// Fair gives it a share of slots immediately.
	top := topology.Single(2)
	jobs := []JobSpec{
		simpleJob(0, 0, 16, time.Second),               // long
		simpleJob(1, time.Millisecond, 2, time.Second), // short
	}
	fifo := Run(Config{Topology: top, SlotsPerNode: 2, Policy: FIFO{}}, jobs)
	fair := Run(Config{Topology: top, SlotsPerNode: 2, Policy: Fair{}}, jobs)
	if fair.JobCompletion[1] >= fifo.JobCompletion[1] {
		t.Fatalf("fair did not help the short job: fair=%v fifo=%v",
			fair.JobCompletion[1], fifo.JobCompletion[1])
	}
	if fair.Fairness < fifo.Fairness {
		t.Fatalf("fair fairness %v < fifo %v", fair.Fairness, fifo.Fairness)
	}
}

func TestAllTasksRun(t *testing.T) {
	top := topology.TwoTier(2, 2, 1)
	gen := rng.New(3)
	var jobs []JobSpec
	total := 0
	for j := 0; j < 5; j++ {
		nt := 1 + gen.Intn(6)
		total += nt
		jobs = append(jobs, simpleJob(j, time.Duration(gen.Intn(3))*time.Second, nt, time.Duration(1+gen.Intn(4))*time.Second))
	}
	for _, p := range []Policy{FIFO{}, Fair{}, Capacity{}, Delay{}} {
		res := Run(Config{Topology: top, SlotsPerNode: 2, Policy: p}, jobs)
		ran := res.NodeLocal + res.RackLocal + res.RemoteRun + res.NoPreference
		if ran != total {
			t.Fatalf("%s: ran %d tasks, want %d", p.Name(), ran, total)
		}
		for i, jt := range res.JobCompletion {
			if jt <= 0 {
				t.Fatalf("%s: job %d has nonpositive completion %v", p.Name(), i, jt)
			}
		}
	}
}

func localityJobs(top *topology.Topology, n int, gen *rng.RNG) []JobSpec {
	var jobs []JobSpec
	for j := 0; j < n; j++ {
		job := JobSpec{ID: j, Arrival: time.Duration(j) * 100 * time.Millisecond}
		for t := 0; t < 6; t++ {
			pref := topology.NodeID(gen.Intn(top.Size()))
			job.Tasks = append(job.Tasks, TaskSpec{
				Duration:  time.Second,
				Preferred: []topology.NodeID{pref},
			})
		}
		jobs = append(jobs, job)
	}
	return jobs
}

func TestDelaySchedulingImprovesLocality(t *testing.T) {
	top := topology.TwoTier(2, 4, 2)
	jobs := localityJobs(top, 12, rng.New(7))
	fair := Run(Config{Topology: top, SlotsPerNode: 1, Policy: Fair{}}, jobs)
	delay := Run(Config{Topology: top, SlotsPerNode: 1, Policy: Delay{MaxSkips: 8}}, jobs)
	if delay.LocalityRate() <= fair.LocalityRate() {
		t.Fatalf("delay locality %.2f <= fair locality %.2f",
			delay.LocalityRate(), fair.LocalityRate())
	}
	// Delay scheduling must not blow up the makespan (< 50% worse).
	if float64(delay.Makespan) > 1.5*float64(fair.Makespan) {
		t.Fatalf("delay makespan %v vs fair %v", delay.Makespan, fair.Makespan)
	}
}

func TestCapacityQueues(t *testing.T) {
	// Two queues, 75/25 split. Both submit identical workloads at t=0;
	// the production queue should finish its jobs sooner on average.
	top := topology.Single(4)
	var jobs []JobSpec
	for i := 0; i < 4; i++ {
		j := simpleJob(i, 0, 8, time.Second)
		if i%2 == 0 {
			j.Queue = "prod"
		} else {
			j.Queue = "batch"
		}
		jobs = append(jobs, j)
	}
	res := Run(Config{
		Topology:     top,
		SlotsPerNode: 1,
		Policy:       Capacity{Shares: map[string]float64{"prod": 0.75, "batch": 0.25}},
	}, jobs)
	prodAvg := (res.JobCompletion[0] + res.JobCompletion[2]) / 2
	batchAvg := (res.JobCompletion[1] + res.JobCompletion[3]) / 2
	if prodAvg >= batchAvg {
		t.Fatalf("prod avg %v not faster than batch avg %v under 75/25 split", prodAvg, batchAvg)
	}
}

func TestLocalityPenaltyAppliedToMakespan(t *testing.T) {
	// One task preferring node 0 but forced onto another rack runs longer.
	top := topology.TwoTier(2, 1, 1) // 2 nodes, different racks
	job := JobSpec{ID: 0, Tasks: []TaskSpec{
		{Duration: time.Second, Preferred: []topology.NodeID{0}},
		{Duration: time.Second, Preferred: []topology.NodeID{0}},
	}}
	res := Run(Config{
		Topology:      top,
		SlotsPerNode:  1,
		Policy:        FIFO{},
		RemotePenalty: 2.0,
	}, []JobSpec{job})
	// One task runs on node 0 (1s), one remote on node 1 (2s).
	if res.Makespan != 2*time.Second {
		t.Fatalf("makespan = %v, want 2s with remote penalty", res.Makespan)
	}
	if res.NodeLocal != 1 || res.RemoteRun != 1 {
		t.Fatalf("locality counts = local %d remote %d", res.NodeLocal, res.RemoteRun)
	}
}

func TestFairnessIndexBounds(t *testing.T) {
	top := topology.Single(2)
	gen := rng.New(11)
	var jobs []JobSpec
	for j := 0; j < 8; j++ {
		jobs = append(jobs, simpleJob(j, time.Duration(gen.Intn(5))*time.Second, 1+gen.Intn(8), time.Second))
	}
	for _, p := range []Policy{FIFO{}, Fair{}} {
		res := Run(Config{Topology: top, SlotsPerNode: 2, Policy: p}, jobs)
		if res.Fairness <= 0 || res.Fairness > 1.0001 {
			t.Fatalf("%s: Jain index %v out of (0,1]", p.Name(), res.Fairness)
		}
	}
}

func TestEmptyJobList(t *testing.T) {
	res := Run(Config{Topology: topology.Single(1), Policy: Fair{}}, nil)
	if res.Makespan != 0 || len(res.JobCompletion) != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestDeterministic(t *testing.T) {
	top := topology.TwoTier(2, 2, 1)
	jobs := localityJobs(top, 6, rng.New(13))
	a := Run(Config{Topology: top, SlotsPerNode: 2, Policy: Delay{}}, jobs)
	b := Run(Config{Topology: top, SlotsPerNode: 2, Policy: Delay{}}, jobs)
	if a.Makespan != b.Makespan || a.NodeLocal != b.NodeLocal {
		t.Fatal("same inputs produced different schedules")
	}
}

func BenchmarkFairScheduler(b *testing.B) {
	top := topology.TwoTier(4, 4, 2)
	jobs := localityJobs(top, 50, rng.New(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Run(Config{Topology: top, SlotsPerNode: 2, Policy: Fair{}}, jobs)
	}
}
