package sched

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/trace"
)

func TestRunRecordsMetricsAndSpans(t *testing.T) {
	top := topology.TwoTier(2, 2, 2)
	reg := metrics.NewRegistry()
	rec := trace.New()
	jobs := []JobSpec{
		{ID: 1, Tasks: []TaskSpec{
			{Duration: 10 * time.Millisecond, Preferred: []topology.NodeID{0}},
			{Duration: 10 * time.Millisecond, Preferred: []topology.NodeID{1}},
			{Duration: 10 * time.Millisecond},
		}},
		{ID: 2, Arrival: time.Millisecond, Tasks: []TaskSpec{
			{Duration: 5 * time.Millisecond, Preferred: []topology.NodeID{3}},
		}},
	}
	res := Run(Config{Topology: top, SlotsPerNode: 2, Policy: Fair{},
		Metrics: reg, Tracer: rec}, jobs)
	if res.Makespan <= 0 {
		t.Fatalf("makespan = %v", res.Makespan)
	}

	// One counter increment and one span per task.
	var counted int64
	reg.CounterVec("sched_tasks_by_locality", "policy", "locality").Each(
		func(labels []metrics.Label, c *metrics.Counter) {
			if labels[0].Key != "policy" || labels[0].Value != "fair" {
				t.Fatalf("labels = %v", labels)
			}
			counted += c.Value()
		})
	if counted != 4 {
		t.Fatalf("counted tasks = %d, want 4", counted)
	}
	if got := reg.Histogram("sched_task_duration_ns").Count(); got != 4 {
		t.Fatalf("duration observations = %d, want 4", got)
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(spans))
	}
	for _, s := range spans {
		if s.Category != "task" || s.Duration <= 0 {
			t.Fatalf("span = %+v", s)
		}
		if s.Args["stage"] == "" || s.Args["locality"] == "" {
			t.Fatalf("span args = %v", s.Args)
		}
		if end := s.Start + s.Duration; end > res.Makespan {
			t.Fatalf("span ends at %v beyond makespan %v", end, res.Makespan)
		}
	}
}

func TestRunWithoutInstrumentationUnchanged(t *testing.T) {
	top := topology.Single(2)
	jobs := []JobSpec{{ID: 1, Tasks: []TaskSpec{{Duration: time.Millisecond}}}}
	plain := Run(Config{Topology: top, Policy: FIFO{}}, jobs)
	instr := Run(Config{Topology: top, Policy: FIFO{},
		Metrics: metrics.NewRegistry(), Tracer: trace.New()}, jobs)
	if plain.Makespan != instr.Makespan {
		t.Fatalf("instrumentation changed the simulation: %v vs %v",
			plain.Makespan, instr.Makespan)
	}
}
