// Package sched simulates cluster task scheduling policies — FIFO, Fair,
// Capacity and delay scheduling — over a slot-based cluster in virtual
// time. Jobs are bags of tasks with data-locality preferences; running a
// task away from its data inflates its duration (rack/remote multipliers),
// which is exactly the trade-off delay scheduling navigates. Experiment E6
// compares makespan, mean job completion, fairness and locality rates
// across policies.
package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/trace"
)

// TaskSpec is one task of a job.
type TaskSpec struct {
	// Duration is the task's run time when executed node-locally.
	Duration time.Duration
	// Preferred lists nodes holding the task's input (empty = no
	// preference, no penalty anywhere).
	Preferred []topology.NodeID
}

// JobSpec is a job submitted to the simulated cluster.
type JobSpec struct {
	ID      int
	Arrival time.Duration
	Tasks   []TaskSpec
	// Queue routes the job under the Capacity policy.
	Queue string
	// Weight scales the job's fair share (default 1).
	Weight float64
}

// Config configures a simulation run.
type Config struct {
	Topology     *topology.Topology
	SlotsPerNode int
	Policy       Policy
	// RackPenalty and RemotePenalty multiply task duration when the task
	// runs rack-local / remote from its preferred nodes.
	// Defaults: 1.15 and 1.6.
	RackPenalty   float64
	RemotePenalty float64
	// Metrics, when non-nil, receives per-task counters labeled by policy
	// and locality (sched_tasks_by_locality) plus a task-duration
	// histogram. Optional.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives one virtual-time span per scheduled
	// task (track = executor node, stage arg = the job). Optional.
	Tracer *trace.Recorder
}

// Result summarizes a run.
type Result struct {
	Makespan time.Duration
	// JobCompletion maps job position (input order) to completion time
	// minus arrival.
	JobCompletion []time.Duration
	MeanJobTime   time.Duration
	// Locality counts tasks by where they ran relative to their data.
	NodeLocal, RackLocal, RemoteRun, NoPreference int
	// Fairness is Jain's index over per-job normalized service
	// (ideal/actual completion); 1 = perfectly fair.
	Fairness float64
}

// LocalityRate returns the fraction of placement-sensitive tasks that ran
// node-local.
func (r Result) LocalityRate() float64 {
	total := r.NodeLocal + r.RackLocal + r.RemoteRun
	if total == 0 {
		return 1
	}
	return float64(r.NodeLocal) / float64(total)
}

// jobState is the runtime view policies see.
type jobState struct {
	spec     JobSpec
	pos      int   // input order
	pending  []int // task indices not yet started
	running  int
	finished int
	skips    int // delay-scheduling skip count
	arrived  bool
	done     time.Duration
	idealSum time.Duration
}

// State is the scheduler-visible simulation state.
type State struct {
	jobs []*jobState
	top  *topology.Topology
}

// Jobs returns the indices of arrived jobs with pending tasks.
func (s *State) Jobs() []int {
	var out []int
	for i, j := range s.jobs {
		if j.arrived && len(j.pending) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// bestTaskOn returns the pending task of job j with the best locality on
// node n: node-local first, then rack-local, then anything. The returned
// locality is what that placement would be.
func (s *State) bestTaskOn(j *jobState, n topology.NodeID) (taskIdx int, loc topology.Locality) {
	bestIdx := -1
	bestLoc := topology.Remote + 1
	for _, ti := range j.pending {
		t := j.spec.Tasks[ti]
		loc := localityOf(s.top, t.Preferred, n)
		if loc < bestLoc {
			bestLoc = loc
			bestIdx = ti
			if loc == topology.LocalNode {
				break
			}
		}
	}
	return bestIdx, bestLoc
}

func localityOf(top *topology.Topology, preferred []topology.NodeID, n topology.NodeID) topology.Locality {
	if len(preferred) == 0 {
		return topology.LocalNode // no data to be far from
	}
	best := topology.Remote
	for _, p := range preferred {
		if l := top.LocalityOf(p, n); l < best {
			best = l
		}
	}
	return best
}

// Policy picks the next task for a freed slot. Implementations return the
// job index (into State.jobs) and task index, or (-1, -1) to leave the slot
// idle for now.
type Policy interface {
	Name() string
	Pick(s *State, node topology.NodeID) (jobIdx, taskIdx int)
}

// FIFO runs jobs strictly in arrival order (within a job, tasks pick their
// best-locality placement on the offered node).
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Pick implements Policy.
func (FIFO) Pick(s *State, node topology.NodeID) (int, int) {
	candidates := s.Jobs()
	sort.Slice(candidates, func(a, b int) bool {
		ja, jb := s.jobs[candidates[a]], s.jobs[candidates[b]]
		if ja.spec.Arrival != jb.spec.Arrival {
			return ja.spec.Arrival < jb.spec.Arrival
		}
		return ja.pos < jb.pos
	})
	for _, ji := range candidates {
		if ti, _ := s.bestTaskOn(s.jobs[ji], node); ti >= 0 {
			return ji, ti
		}
	}
	return -1, -1
}

// Fair offers each slot to the job with the smallest running/weight ratio —
// weighted max-min fair sharing of slots.
type Fair struct{}

// Name implements Policy.
func (Fair) Name() string { return "fair" }

func fairOrder(s *State) []int {
	candidates := s.Jobs()
	sort.Slice(candidates, func(a, b int) bool {
		ja, jb := s.jobs[candidates[a]], s.jobs[candidates[b]]
		ra := float64(ja.running) / weight(ja)
		rb := float64(jb.running) / weight(jb)
		if ra != rb {
			return ra < rb
		}
		if ja.spec.Arrival != jb.spec.Arrival {
			return ja.spec.Arrival < jb.spec.Arrival
		}
		return ja.pos < jb.pos
	})
	return candidates
}

func weight(j *jobState) float64 {
	if j.spec.Weight > 0 {
		return j.spec.Weight
	}
	return 1
}

// Pick implements Policy.
func (Fair) Pick(s *State, node topology.NodeID) (int, int) {
	for _, ji := range fairOrder(s) {
		if ti, _ := s.bestTaskOn(s.jobs[ji], node); ti >= 0 {
			return ji, ti
		}
	}
	return -1, -1
}

// Capacity divides the cluster between named queues in fixed proportions,
// picking from the most underserved queue first (FIFO within a queue).
type Capacity struct {
	// Shares maps queue name to its capacity fraction; missing queues get
	// the "default" share or an equal split of the remainder.
	Shares map[string]float64
}

// Name implements Policy.
func (Capacity) Name() string { return "capacity" }

// Pick implements Policy.
func (c Capacity) Pick(s *State, node topology.NodeID) (int, int) {
	// Compute per-queue running counts and demand.
	type qstat struct {
		running int
		share   float64
		jobs    []int
	}
	queues := map[string]*qstat{}
	for i, j := range s.jobs {
		if !j.arrived {
			continue
		}
		q, ok := queues[j.spec.Queue]
		if !ok {
			q = &qstat{share: c.Shares[j.spec.Queue]}
			if q.share <= 0 {
				q.share = 0.01
			}
			queues[j.spec.Queue] = q
		}
		q.running += j.running
		if len(j.pending) > 0 {
			q.jobs = append(q.jobs, i)
		}
	}
	// Most underserved queue (running/share smallest) with pending work.
	var names []string
	for name, q := range queues {
		if len(q.jobs) > 0 {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(a, b int) bool {
		qa, qb := queues[names[a]], queues[names[b]]
		ra := float64(qa.running) / qa.share
		rb := float64(qb.running) / qb.share
		if ra != rb {
			return ra < rb
		}
		return names[a] < names[b]
	})
	for _, name := range names {
		jobs := queues[name].jobs
		sort.Slice(jobs, func(a, b int) bool {
			ja, jb := s.jobs[jobs[a]], s.jobs[jobs[b]]
			if ja.spec.Arrival != jb.spec.Arrival {
				return ja.spec.Arrival < jb.spec.Arrival
			}
			return ja.pos < jb.pos
		})
		for _, ji := range jobs {
			if ti, _ := s.bestTaskOn(s.jobs[ji], node); ti >= 0 {
				return ji, ti
			}
		}
	}
	return -1, -1
}

// Delay is delay scheduling (Zaharia et al., EuroSys'10) on top of fair
// ordering: a job declines up to MaxSkips scheduling opportunities that
// would run its tasks non-locally, waiting for a slot where its data lives.
type Delay struct {
	// MaxSkips is how many offers a job may decline. Default 8.
	MaxSkips int
}

// Name implements Policy.
func (Delay) Name() string { return "delay" }

// Pick implements Policy.
func (d Delay) Pick(s *State, node topology.NodeID) (int, int) {
	maxSkips := d.MaxSkips
	if maxSkips <= 0 {
		maxSkips = 8
	}
	for _, ji := range fairOrder(s) {
		j := s.jobs[ji]
		ti, loc := s.bestTaskOn(j, node)
		if ti < 0 {
			continue
		}
		if loc == topology.LocalNode {
			j.skips = 0
			return ji, ti
		}
		if j.skips >= maxSkips {
			j.skips = 0
			return ji, ti // waited long enough; accept non-local
		}
		j.skips++ // decline this offer, let the next job try
	}
	return -1, -1
}

// Run simulates the jobs to completion and returns the summary.
func Run(cfg Config, jobs []JobSpec) Result {
	if cfg.Topology == nil {
		panic("sched: Config.Topology required")
	}
	if cfg.SlotsPerNode <= 0 {
		cfg.SlotsPerNode = 2
	}
	if cfg.Policy == nil {
		cfg.Policy = FIFO{}
	}
	if cfg.RackPenalty <= 0 {
		cfg.RackPenalty = 1.15
	}
	if cfg.RemotePenalty <= 0 {
		cfg.RemotePenalty = 1.6
	}

	state := &State{top: cfg.Topology}
	for i, spec := range jobs {
		js := &jobState{spec: spec, pos: i}
		for ti := range spec.Tasks {
			js.pending = append(js.pending, ti)
			js.idealSum += spec.Tasks[ti].Duration
		}
		state.jobs = append(state.jobs, js)
	}

	sim := des.New()
	freeSlots := make([]int, cfg.Topology.Size())
	for i := range freeSlots {
		freeSlots[i] = cfg.SlotsPerNode
	}
	res := Result{JobCompletion: make([]time.Duration, len(jobs))}

	// Optional instrumentation: all handles stay nil (and every update a
	// no-op) when cfg.Metrics is unset.
	var tasksByLocality *metrics.CounterVec
	var taskDur *metrics.Histogram
	if cfg.Metrics != nil {
		tasksByLocality = cfg.Metrics.CounterVec("sched_tasks_by_locality", "policy", "locality")
		taskDur = cfg.Metrics.Histogram("sched_task_duration_ns")
	}

	var dispatch func()
	dispatch = func() {
		progress := true
		for progress {
			progress = false
			for n := 0; n < cfg.Topology.Size(); n++ {
				node := topology.NodeID(n)
				for freeSlots[n] > 0 {
					ji, ti := cfg.Policy.Pick(state, node)
					if ji < 0 {
						break
					}
					j := state.jobs[ji]
					// Remove ti from pending.
					for k, v := range j.pending {
						if v == ti {
							j.pending = append(j.pending[:k], j.pending[k+1:]...)
							break
						}
					}
					t := j.spec.Tasks[ti]
					loc := localityOf(cfg.Topology, t.Preferred, node)
					dur := t.Duration
					locName := "none"
					if len(t.Preferred) == 0 {
						res.NoPreference++
					} else {
						switch loc {
						case topology.LocalNode:
							res.NodeLocal++
							locName = "local"
						case topology.LocalRack:
							res.RackLocal++
							locName = "rack"
							dur = time.Duration(float64(dur) * cfg.RackPenalty)
						default:
							res.RemoteRun++
							locName = "remote"
							dur = time.Duration(float64(dur) * cfg.RemotePenalty)
						}
					}
					tasksByLocality.With(cfg.Policy.Name(), locName).Inc()
					taskDur.ObserveDuration(dur)
					cfg.Tracer.Add(trace.Span{
						Name:     fmt.Sprintf("job%d t%d", j.spec.ID, ti),
						Category: "task",
						Track:    fmt.Sprintf("node-%02d", n),
						Start:    sim.Now(),
						Duration: dur,
						Args: map[string]string{
							"stage":    fmt.Sprintf("job %d", j.spec.ID),
							"locality": locName,
						},
					})
					j.running++
					freeSlots[n]--
					progress = true
					jiCopy, nCopy := ji, n
					sim.Schedule(dur, func() {
						jj := state.jobs[jiCopy]
						jj.running--
						jj.finished++
						freeSlots[nCopy]++
						if jj.finished == len(jj.spec.Tasks) {
							jj.done = sim.Now()
						}
						dispatch()
					})
				}
			}
		}
	}

	for i := range state.jobs {
		i := i
		sim.Schedule(state.jobs[i].spec.Arrival, func() {
			state.jobs[i].arrived = true
			dispatch()
		})
	}
	res.Makespan = sim.Run()

	// Summaries.
	var sumJob time.Duration
	var sumService, sumServiceSq float64
	totalSlots := cfg.Topology.Size() * cfg.SlotsPerNode
	for i, j := range state.jobs {
		jt := j.done - j.spec.Arrival
		res.JobCompletion[i] = jt
		sumJob += jt
		// Normalized service = ideal parallel runtime (the job alone on the
		// whole cluster) over actual runtime, in (0, 1]. Jain's index over
		// this captures how evenly the scheduler spread slowdown.
		var longest time.Duration
		for _, t := range j.spec.Tasks {
			if t.Duration > longest {
				longest = t.Duration
			}
		}
		ideal := j.idealSum / time.Duration(totalSlots)
		if longest > ideal {
			ideal = longest
		}
		service := float64(ideal) / float64(jt)
		if service > 1 {
			service = 1
		}
		sumService += service
		sumServiceSq += service * service
	}
	if len(jobs) > 0 {
		res.MeanJobTime = sumJob / time.Duration(len(jobs))
		if sumServiceSq > 0 {
			res.Fairness = sumService * sumService / (float64(len(jobs)) * sumServiceSq)
		}
	}
	return res
}
