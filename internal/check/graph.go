// Dense power-iteration reference for the Pregel-style PageRank
// program. The BSP engine computes ranks vertex-centrically with
// per-worker message buckets; the reference iterates a plain dense
// rank vector over the raw edge list. Both drop dangling mass (a
// vertex with no out-edges contributes nothing), both apply the
// damping update to every vertex each round, and both run `iters`
// send rounds — so the two agree up to floating-point summation order,
// which DiffFloats absorbs with a relative tolerance.
package check

import "repro/internal/workload"

// ReferencePageRank runs iters rounds of damped PageRank over the edge
// list and returns the per-vertex ranks. Edges referencing vertices
// outside [0, n) are dropped, mirroring graph.FromEdges.
func ReferencePageRank(n int64, edges []workload.Edge, damping float64, iters int) []float64 {
	outDeg := make([]int64, n)
	valid := make([]workload.Edge, 0, len(edges))
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			continue
		}
		valid = append(valid, e)
		outDeg[e.From]++
	}
	rank := make([]float64, n)
	for v := range rank {
		rank[v] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		inbox := make([]float64, n)
		for _, e := range valid {
			inbox[e.To] += rank[e.From] / float64(outDeg[e.From])
		}
		base := (1 - damping) / float64(n)
		for v := range rank {
			rank[v] = base + damping*inbox[v]
		}
	}
	return rank
}

// DiffPageRank compares an engine run's rank vector to the dense
// reference within a relative tolerance.
func DiffPageRank(name string, got []float64, n int64, edges []workload.Edge, damping float64, iters int, tol float64) Diff {
	return DiffFloats(name, got, ReferencePageRank(n, edges, damping, iters), tol)
}
