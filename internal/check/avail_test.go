package check

import "testing"

func TestAvailabilityWindows(t *testing.T) {
	pts := []AvailPoint{
		{T: 1, OK: true, MajorityConnected: true},
		{T: 2, OK: false, MajorityConnected: true}, // window 1: 2..4
		{T: 3, OK: false, MajorityConnected: true},
		{T: 4, OK: false, MajorityConnected: true},
		{T: 5, OK: true, MajorityConnected: true},
		{T: 6, OK: false, MajorityConnected: false}, // excused: no quorum
		{T: 7, OK: false, MajorityConnected: true},  // window 2: 7..7
		{T: 8, OK: true, MajorityConnected: true},
	}
	r := Availability(pts)
	if r.Probes != 8 || r.Failed != 4 || r.ExcusedFails != 1 {
		t.Fatalf("counts wrong: %+v", r)
	}
	if r.Windows != 2 || r.Longest != 3 || r.Total != 4 {
		t.Fatalf("windows wrong: %+v", r)
	}
}

func TestAvailabilityExcusedBreaksWindow(t *testing.T) {
	// A no-quorum failure between two charged failures must split them
	// into two windows, not bridge one long one.
	pts := []AvailPoint{
		{T: 1, OK: false, MajorityConnected: true},
		{T: 2, OK: false, MajorityConnected: false},
		{T: 3, OK: false, MajorityConnected: true},
	}
	r := Availability(pts)
	if r.Windows != 2 || r.Longest != 1 || r.Total != 2 {
		t.Fatalf("excused failure did not break the window: %+v", r)
	}
}

func TestAvailabilityUnsortedAndEdge(t *testing.T) {
	// Input order must not matter, and an empty or all-OK series is clean.
	pts := []AvailPoint{
		{T: 3, OK: false, MajorityConnected: true},
		{T: 1, OK: true, MajorityConnected: true},
		{T: 2, OK: false, MajorityConnected: true},
	}
	r := Availability(pts)
	if r.Windows != 1 || r.Longest != 2 || r.Total != 2 {
		t.Fatalf("unsorted input mishandled: %+v", r)
	}
	if r := Availability(nil); r.Windows != 0 || r.Total != 0 || r.Probes != 0 {
		t.Fatalf("empty series: %+v", r)
	}
	// A trailing open window is closed at the last probe.
	r = Availability([]AvailPoint{{T: 5, OK: false, MajorityConnected: true}})
	if r.Windows != 1 || r.Longest != 1 || r.Total != 1 {
		t.Fatalf("trailing window: %+v", r)
	}
}

func TestDiffAvailability(t *testing.T) {
	r := AvailReport{Probes: 10, Failed: 3, Windows: 1, Longest: 3, Total: 3}
	if d := DiffAvailability("a", r, 5, 5); !d.OK {
		t.Fatalf("within bounds rejected: %v", d)
	}
	if d := DiffAvailability("b", r, 2, 5); d.OK {
		t.Fatal("longest bound not enforced")
	}
	if d := DiffAvailability("c", r, 5, 2); d.OK {
		t.Fatal("total bound not enforced")
	}
	if d := DiffAvailability("d", r, -1, -1); !d.OK {
		t.Fatal("negative bounds must skip limits")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty summary")
	}
}
