// Strict serializability checking for multi-key transactional histories.
// Unlike the per-key register model in linearize.go, transactions touch
// several keys atomically, so the history cannot be partitioned: the
// checker searches for ONE total order of all transactions that respects
// real time (strictness) and gives every transactional read the value of
// the latest preceding write to its key (serializability). Single-key
// gets and puts are degenerate one-operation transactions in the same
// order, which is what makes the verdict end-to-end: a dirty read leaks
// into the order as a read no serial witness can satisfy.
package check

import (
	"fmt"
	"sort"
	"strings"
)

// TxnRead is one key observation inside a transaction.
type TxnRead struct {
	// Key is the observed register.
	Key string
	// Value is the observed value; meaningful only when Found.
	Value string
	// Found reports whether the key existed at observation time.
	Found bool
}

// TxnWrite is one key mutation inside a transaction.
type TxnWrite struct {
	// Key is the mutated register.
	Key string
	// Value is the new value (ignored when Del).
	Value string
	// Del marks a transactional delete.
	Del bool
}

// TxnOp is one recorded transaction: all Reads observed and all Writes
// applied atomically at a single point between Invoke and Return.
type TxnOp struct {
	// Client identifies the issuing client (diagnostic only).
	Client int
	// Reads lists the observations; empty for blind writes.
	Reads []TxnRead
	// Writes lists the mutations; empty for read-only transactions.
	Writes []TxnWrite
	// Invoke and Return are logical timestamps from History.Stamp.
	// Return=InfTime marks a pending transaction whose effects are
	// unknown: the checker may order it (it committed) or omit it (it
	// aborted) — reads of a pending transaction are dropped by the
	// capture harness since they were never reported to the client.
	Invoke, Return int64
}

func (o TxnOp) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "c%d txn{", o.Client)
	for i, r := range o.Reads {
		if i > 0 {
			b.WriteString(" ")
		}
		if r.Found {
			fmt.Fprintf(&b, "r(%s)=%q", r.Key, r.Value)
		} else {
			fmt.Fprintf(&b, "r(%s)=absent", r.Key)
		}
	}
	if len(o.Reads) > 0 && len(o.Writes) > 0 {
		b.WriteString(" ")
	}
	for i, w := range o.Writes {
		if i > 0 {
			b.WriteString(" ")
		}
		if w.Del {
			fmt.Fprintf(&b, "del(%s)", w.Key)
		} else {
			fmt.Fprintf(&b, "w(%s,%q)", w.Key, w.Value)
		}
	}
	if o.Return == InfTime {
		fmt.Fprintf(&b, "} [%d,∞]", o.Invoke)
	} else {
		fmt.Fprintf(&b, "} [%d,%d]", o.Invoke, o.Return)
	}
	return b.String()
}

// CheckTxns checks a transactional history for strict serializability:
// there must exist a total order of the transactions that (a) respects
// real time — A before B whenever A.Return < B.Invoke — and (b) starts
// from an empty store and gives every read exactly the value of the
// latest preceding write to its key (or absent after none or a delete).
// Transactions with Return=InfTime are pending and may be omitted.
func CheckTxns(ops []TxnOp) Outcome {
	keys := map[string]struct{}{}
	for _, op := range ops {
		for _, r := range op.Reads {
			keys[r.Key] = struct{}{}
		}
		for _, w := range op.Writes {
			keys[w.Key] = struct{}{}
		}
	}
	out := Outcome{OK: true, Ops: len(ops), Keys: len(keys)}
	if detail, ok := checkTxnOrder(ops); !ok {
		return Outcome{OK: false, Ops: len(ops), Keys: len(keys), Detail: detail}
	}
	return out
}

// checkTxnOrder runs the witness search over the whole history. The
// state is the full store image (every key's register), serialized into
// the memo key alongside the chosen-set bitmask, the direct analogue of
// checkKey's (linearized-set, register-state) memoization.
func checkTxnOrder(ops []TxnOp) (string, bool) {
	sort.SliceStable(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })
	n := len(ops)
	preds := make([][]int, n)
	required := 0
	for i := range ops {
		if ops[i].Return != InfTime {
			required++
		}
		for j := range ops {
			if j != i && ops[j].Return < ops[i].Invoke {
				preds[i] = append(preds[i], j)
			}
		}
	}

	words := (n + 63) / 64
	chosen := make([]uint64, words)
	has := func(i int) bool { return chosen[i/64]&(1<<(i%64)) != 0 }
	set := func(i int) { chosen[i/64] |= 1 << (i % 64) }
	unset := func(i int) { chosen[i/64] &^= 1 << (i % 64) }

	state := map[string]regState{}
	visited := map[string]struct{}{}
	memoKey := func() string {
		var b strings.Builder
		for _, w := range chosen {
			for s := 0; s < 64; s += 8 {
				b.WriteByte(byte(w >> s))
			}
		}
		ks := make([]string, 0, len(state))
		for k := range state {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			st := state[k]
			if !st.found {
				continue // absent keys are not part of the image
			}
			b.WriteString(k)
			b.WriteByte(0)
			b.WriteString(st.value)
			b.WriteByte(0)
		}
		return b.String()
	}

	// fires reports whether op i's reads all hold in the current state.
	fires := func(i int) bool {
		for _, r := range ops[i].Reads {
			st := state[r.Key]
			if r.Found != st.found || (st.found && r.Value != st.value) {
				return false
			}
		}
		return true
	}

	bestDepth := 0
	var dfs func(done int) bool
	dfs = func(done int) bool {
		if done > bestDepth {
			bestDepth = done
		}
		if done == required {
			return true
		}
		mk := memoKey()
		if _, seen := visited[mk]; seen {
			return false
		}
		visited[mk] = struct{}{}
		for i := 0; i < n; i++ {
			if has(i) {
				continue
			}
			eligible := true
			for _, j := range preds[i] {
				if !has(j) {
					eligible = false
					break
				}
			}
			if !eligible || !fires(i) {
				continue
			}
			// Apply writes, remembering the displaced image for undo.
			undo := make(map[string]regState, len(ops[i].Writes))
			for _, w := range ops[i].Writes {
				if _, dup := undo[w.Key]; !dup {
					undo[w.Key] = state[w.Key]
				}
				if w.Del {
					state[w.Key] = regState{}
				} else {
					state[w.Key] = regState{value: w.Value, found: true}
				}
			}
			nd := done
			if ops[i].Return != InfTime {
				nd++
			}
			set(i)
			if dfs(nd) {
				return true
			}
			unset(i)
			for k, st := range undo {
				state[k] = st
			}
		}
		return false
	}
	if dfs(0) {
		return "", true
	}
	return fmt.Sprintf("no serial witness over %d txns (longest valid prefix: %d); first txns: %s",
		n, bestDepth, sampleTxns(ops)), false
}

// sampleTxns renders up to four transactions for failure diagnostics.
func sampleTxns(ops []TxnOp) string {
	s := ""
	for i, op := range ops {
		if i == 4 {
			s += ", ..."
			break
		}
		if i > 0 {
			s += ", "
		}
		s += op.String()
	}
	return s
}
