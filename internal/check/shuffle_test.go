package check

import (
	"fmt"
	"testing"

	"repro/internal/compress"
	"repro/internal/shuffle"
)

// makeInputs builds per-map-task record lists with colliding keys.
func makeInputs(tasks, recsPerTask int) [][]shuffle.Record {
	inputs := make([][]shuffle.Record, tasks)
	for t := 0; t < tasks; t++ {
		for i := 0; i < recsPerTask; i++ {
			inputs[t] = append(inputs[t], shuffle.Record{
				Key:   []byte(fmt.Sprintf("key-%03d", (t*recsPerTask+i)%17)),
				Value: []byte(fmt.Sprintf("v-%d-%d", t, i)),
			})
		}
	}
	return inputs
}

// runShuffle pushes inputs through real writers and reads each reduce
// partition back, mirroring the engine's map/fetch path.
func runShuffle(t *testing.T, inputs [][]shuffle.Record, partitions int, newWriter func() (shuffle.Writer, error)) [][]shuffle.Record {
	t.Helper()
	byPart := make([][]shuffle.Block, partitions)
	for _, task := range inputs {
		w, err := newWriter()
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range task {
			if err := w.Write(rec.Key, rec.Value); err != nil {
				t.Fatal(err)
			}
		}
		blocks, _, err := w.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range blocks {
			byPart[b.Partition] = append(byPart[b.Partition], b)
		}
	}
	out := make([][]shuffle.Record, partitions)
	for p := range byPart {
		recs, err := shuffle.ReadBlocks(compress.None{}, byPart[p])
		if err != nil {
			t.Fatal(err)
		}
		out[p] = recs
	}
	return out
}

func TestReferenceShuffleHashWriter(t *testing.T) {
	const parts = 4
	inputs := makeInputs(3, 40)
	got := runShuffle(t, inputs, parts, func() (shuffle.Writer, error) {
		return shuffle.NewHashWriter(shuffle.Config{Partitions: parts})
	})
	if d := DiffShuffle("hash", got, inputs, parts, nil, false); !d.OK {
		t.Fatalf("hash writer vs reference: %s", d)
	}
}

func TestReferenceShuffleSortWriter(t *testing.T) {
	const parts = 4
	inputs := makeInputs(3, 40)
	got := runShuffle(t, inputs, parts, func() (shuffle.Writer, error) {
		return shuffle.NewSortWriter(shuffle.Config{Partitions: parts})
	})
	// Sort shuffle guarantees key order within each partition.
	if d := DiffShuffle("sort", got, inputs, parts, nil, true); !d.OK {
		t.Fatalf("sort writer vs reference: %s", d)
	}
}

func TestReferenceShuffleCustomPartitioner(t *testing.T) {
	const parts = 3
	inputs := makeInputs(2, 30)
	pick := func(key []byte) int { return int(key[len(key)-1]) % parts }
	got := runShuffle(t, inputs, parts, func() (shuffle.Writer, error) {
		return shuffle.NewHashWriter(shuffle.Config{Partitions: parts, Partitioner: pick})
	})
	if d := DiffShuffle("custom", got, inputs, parts, pick, false); !d.OK {
		t.Fatalf("custom partitioner vs reference: %s", d)
	}
}

func TestDiffShuffleCatchesTampering(t *testing.T) {
	const parts = 2
	inputs := makeInputs(2, 10)
	got := ReferenceShuffle(inputs, parts, nil, false)
	// Drop one record from one partition.
	for p := range got {
		if len(got[p]) > 0 {
			got[p] = got[p][1:]
			break
		}
	}
	if d := DiffShuffle("dropped", got, inputs, parts, nil, false); d.OK {
		t.Fatal("dropped record not detected")
	}
	// Partition-count mismatch.
	if d := DiffShuffle("shape", got[:1], inputs, parts, nil, false); d.OK {
		t.Fatal("partition count mismatch not detected")
	}
}

func TestDiffShuffleSortedOrderMatters(t *testing.T) {
	const parts = 1
	inputs := [][]shuffle.Record{{
		{Key: []byte("b"), Value: []byte("1")},
		{Key: []byte("a"), Value: []byte("2")},
	}}
	// Unsorted comparison accepts input order...
	if d := DiffShuffle("multiset", inputs, inputs, parts, func([]byte) int { return 0 }, false); !d.OK {
		t.Fatalf("multiset comparison: %s", d)
	}
	// ...sorted comparison demands key order.
	if d := DiffShuffle("ordered", inputs, inputs, parts, func([]byte) int { return 0 }, true); d.OK {
		t.Fatal("unsorted records passed a sorted comparison")
	}
}
