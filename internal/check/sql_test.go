package check

import (
	"testing"

	"repro/internal/query"
	"repro/internal/table"
)

func sqlInputs() map[string]QueryInput {
	sales := QueryInput{
		Schema: table.Schema{Cols: []table.Col{
			{Name: "cust_id", Type: table.Int64},
			{Name: "units", Type: table.Int64},
			{Name: "amount", Type: table.Float64},
		}},
		Rows: []table.Row{
			{int64(1), int64(3), 10.5},
			{int64(1), int64(1), 2.25},
			{int64(2), int64(7), 100.0},
			{int64(3), int64(2), 0.75},
		},
	}
	customer := QueryInput{
		Schema: table.Schema{Cols: []table.Col{
			{Name: "cust_id", Type: table.Int64},
			{Name: "region", Type: table.String},
		}},
		Rows: []table.Row{
			{int64(1), "emea"},
			{int64(2), "apac"},
			// cust 3 has no dimension row: drops out of the join
		},
	}
	return map[string]QueryInput{"sales": sales, "customer": customer}
}

func TestReferenceQueryJoinAggSort(t *testing.T) {
	lp := query.Scan("sales").
		Join(query.Scan("customer"), "cust_id", "cust_id").
		GroupBy([]string{"region"},
			table.Agg{Op: table.Sum, Col: "amount", As: "rev"},
			table.Agg{Op: table.Count}).
		OrderBy("rev", true)
	schema, rows, err := ReferenceQuery(lp, sqlInputs())
	if err != nil {
		t.Fatal(err)
	}
	if got := schema.Names(); len(got) != 3 || got[0] != "region" || got[1] != "rev" || got[2] != "count" {
		t.Fatalf("schema = %v", got)
	}
	want := []table.Row{
		{"apac", 100.0, int64(1)},
		{"emea", 12.75, int64(2)},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if FormatRow(rows[i]) != FormatRow(want[i]) {
			t.Fatalf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
}

func TestReferenceQueryFilterProject(t *testing.T) {
	lp := query.Scan("sales").
		Where(query.Cmp("units", query.Ge, int64(2))).
		Project([]string{"cust_id", "amount"}, []string{"c", "a"})
	_, rows, err := ReferenceQuery(lp, sqlInputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("row width = %v", r)
		}
	}
}

// TestDiffQueryTeeth proves the oracle actually bites: correct output
// passes, and dropped rows, corrupted values, wrong multiplicities and
// misordered sorted output all fail.
func TestDiffQueryTeeth(t *testing.T) {
	inputs := sqlInputs()
	unordered := query.Scan("sales").Where(query.Cmp("units", query.Ge, int64(2)))
	_, want, err := ReferenceQuery(unordered, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffQuery("ok", want, unordered, inputs); !d.OK {
		t.Fatalf("correct output flagged: %s", d)
	}

	if d := DiffQuery("dropped", want[:len(want)-1], unordered, inputs); d.OK {
		t.Fatal("dropped row not detected")
	}
	corrupt := append([]table.Row(nil), want...)
	corrupt[0] = append(table.Row(nil), corrupt[0]...)
	corrupt[0][2] = corrupt[0][2].(float64) + 0.25
	if d := DiffQuery("corrupt", corrupt, unordered, inputs); d.OK {
		t.Fatal("corrupted value not detected")
	}
	dup := append(append([]table.Row(nil), want...), want[0])
	if d := DiffQuery("dup", dup, unordered, inputs); d.OK {
		t.Fatal("duplicated row not detected")
	}
	// Unordered plans accept any permutation.
	rev := make([]table.Row, len(want))
	for i, r := range want {
		rev[len(want)-1-i] = r
	}
	if d := DiffQuery("permuted", rev, unordered, inputs); !d.OK {
		t.Fatalf("permutation of unordered output flagged: %s", d)
	}

	// Ordered plans reject the same permutation.
	ordered := unordered.OrderBy("amount", false)
	_, sorted, err := ReferenceQuery(ordered, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffQuery("sorted-ok", sorted, ordered, inputs); !d.OK {
		t.Fatalf("correct sorted output flagged: %s", d)
	}
	srev := make([]table.Row, len(sorted))
	for i, r := range sorted {
		srev[len(sorted)-1-i] = r
	}
	if d := DiffQuery("sorted-permuted", srev, ordered, inputs); d.OK {
		t.Fatal("misordered sorted output not detected")
	}
}

func TestReferenceQueryErrors(t *testing.T) {
	if _, _, err := ReferenceQuery(query.Scan("nope"), sqlInputs()); err == nil {
		t.Fatal("unknown table accepted")
	}
	bad := query.Scan("sales").Where(query.Cmp("nope", query.Eq, int64(1)))
	if _, _, err := ReferenceQuery(bad, sqlInputs()); err == nil {
		t.Fatal("unknown filter column accepted")
	}
	d := DiffQuery("bad", nil, bad, sqlInputs())
	if d.OK {
		t.Fatal("reference error must fail the diff")
	}
}
