package check

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestReferencePageRankAgainstEngine(t *testing.T) {
	edges := workload.RMAT(8, 4, 3) // 256 vertices
	n := int64(256)
	g := graph.FromEdges(n, edges)
	for _, part := range []graph.Partitioning{graph.Contiguous, graph.Hashed} {
		res := g.PageRankWith(0.85, 10, graph.RunConfig{Workers: 4, Partitioning: part})
		d := DiffPageRank("pagerank/"+part.String(), res.State, n, edges, 0.85, 10, 1e-9)
		if !d.OK {
			t.Fatalf("%s: %s", part, d)
		}
		if d.Compared != int(n) {
			t.Fatalf("Compared = %d, want %d", d.Compared, n)
		}
	}
}

func TestReferencePageRankSmallGraph(t *testing.T) {
	// 3-cycle: stationary ranks are exactly uniform at every iteration.
	edges := []workload.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 0}}
	ranks := ReferencePageRank(3, edges, 0.85, 20)
	for v, r := range ranks {
		if abs(r-1.0/3) > 1e-12 {
			t.Fatalf("rank[%d] = %g, want 1/3", v, r)
		}
	}
}

func TestReferencePageRankDropsBadEdges(t *testing.T) {
	edges := []workload.Edge{
		{From: 0, To: 1},
		{From: 1, To: 0},
		{From: 5, To: 0},  // out of range: dropped
		{From: 0, To: -1}, // out of range: dropped
	}
	got := ReferencePageRank(2, edges, 0.85, 5)
	want := ReferencePageRank(2, edges[:2], 0.85, 5)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("bad edges changed ranks: %v vs %v", got, want)
		}
	}
}

func TestReferencePageRankDanglingMass(t *testing.T) {
	// Vertex 1 is dangling; its mass is dropped, matching the engine.
	edges := []workload.Edge{{From: 0, To: 1}}
	g := graph.FromEdges(2, edges)
	res := g.PageRank(0.85, 5, 2)
	if d := DiffPageRank("dangling", res.State, 2, edges, 0.85, 5, 1e-12); !d.OK {
		t.Fatalf("dangling graph: %s", d)
	}
}

func TestDiffPageRankCatchesCorruption(t *testing.T) {
	edges := []workload.Edge{{From: 0, To: 1}, {From: 1, To: 0}}
	ranks := ReferencePageRank(2, edges, 0.85, 5)
	ranks[0] *= 1.5
	if d := DiffPageRank("corrupt", ranks, 2, edges, 0.85, 5, 1e-9); d.OK {
		t.Fatal("corrupted rank vector not detected")
	}
}
